#include "soc/control_core.h"

#include "kernel/sync_domain.h"
#include "soc/accelerator.h"

namespace tdsim::soc {

ControlCore::ControlCore(Module& parent, const std::string& name,
                         Config config)
    : Module(parent, name),
      config_(std::move(config)),
      socket_(full_name() + ".socket") {
  if (config_.domain != nullptr) {
    set_default_domain(*config_.domain);
  }
  thread("software", [this] { software(); });
}

void ControlCore::software() {
  const auto reg_address = [](std::uint64_t base, std::size_t index) {
    return base + index * 4;
  };
  // Kick off every accelerator.
  for (std::uint64_t base : config_.accelerator_bases) {
    socket_.write32(reg_address(base, Accelerator::kCtrl), 1);
  }
  if (recorder_ != nullptr) {
    recorder_->record("core: all accelerators started");
  }
  SyncDomain& domain = kernel().current_domain();
  // Move the polling dates off the streams' integer-nanosecond grid (see
  // Config::poll_phase).
  domain.inc(config_.poll_phase);
  // Poll until everything reports done; read the FIFO-level monitor
  // registers on some rounds (low-rate accesses, paper SIII.C).
  std::vector<bool> done(config_.accelerator_bases.size(), false);
  std::size_t remaining = done.size();
  unsigned round = 0;
  while (remaining > 0) {
    domain.inc_and_sync_if_needed(config_.poll_period);
    round++;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (done[i]) {
        continue;
      }
      polls_++;
      const std::uint64_t base = config_.accelerator_bases[i];
      if (socket_.read32(reg_address(base, Accelerator::kStatus)) != 0) {
        done[i] = true;
        remaining--;
        if (recorder_ != nullptr) {
          recorder_->record("core: accelerator " + std::to_string(i) +
                            " done");
        }
      } else if (config_.monitor_every != 0 &&
                 round % config_.monitor_every == 0) {
        const std::uint32_t level =
            socket_.read32(reg_address(base, Accelerator::kInputLevel));
        if (recorder_ != nullptr) {
          recorder_->record("core: accelerator " + std::to_string(i) +
                                " input level",
                            level);
        }
      }
    }
  }
  domain.sync(SyncCause::SyncPoint);
  all_done_date_ = domain.local_time_stamp();
  if (recorder_ != nullptr) {
    recorder_->record("core: all done");
  }
}

}  // namespace tdsim::soc
