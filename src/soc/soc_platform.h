// The heterogeneous many-core SoC of the case study (paper SIV.C):
// streams of hardware accelerators (source -> transform -> sink) connected
// by hardwired FIFOs and by a stream NoC through packetizing network
// interfaces, plus one control core programming and monitoring everything
// over a memory-mapped TLM bus.
//
// The platform is built in one of two flavors with identical timing:
//   * FifoFlavor::Smart -- Smart FIFOs + method network interfaces (the
//     paper's solution);
//   * FifoFlavor::Sync  -- FIFOs synchronizing at each access + paced
//     synchronized network interfaces (the paper's baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fifo_interface.h"
#include "kernel/module.h"
#include "kernel/quantum_controller.h"
#include "noc/mesh.h"
#include "noc/network_interface.h"
#include "soc/accelerator.h"
#include "soc/control_core.h"
#include "tlm/bus.h"
#include "tlm/memory.h"
#include "trace/trace.h"

namespace tdsim::soc {

enum class FifoFlavor { Smart, Sync };

inline const char* to_string(FifoFlavor flavor) {
  return flavor == FifoFlavor::Smart ? "Smart" : "Sync";
}

struct SocConfig {
  FifoFlavor flavor = FifoFlavor::Smart;
  std::uint16_t mesh_columns = 2;
  std::uint16_t mesh_rows = 2;
  /// Number of source -> transform -> sink streams.
  std::size_t streams = 4;
  /// Words processed per stream; must be a multiple of packet_words.
  std::uint64_t words_per_stream = 4096;
  /// Depth of the accelerator-side word FIFOs.
  std::size_t fifo_depth = 16;
  std::size_t packet_words = 16;
  Time source_per_word = 3_ns;
  Time transform_per_word = 2_ns;
  Time sink_per_word = 3_ns;
  Time ni_per_word = 1_ns;
  noc::Router::Timing router_timing{};
  std::size_t noc_link_depth = 2;
  /// Global quantum for the control core's memory-mapped decoupling.
  Time quantum = 1_us;
  Time poll_period = 2_us;
  unsigned monitor_every = 4;
  /// See ControlCore::Config::poll_phase.
  Time poll_phase = Time(500, TimeUnit::PS);
  std::uint64_t block_words = 256;
  /// When true, the platform partitions its processes into three
  /// synchronization domains instead of the kernel default: "soc.cpu"
  /// (control core), "soc.periph" (accelerators) and "soc.noc" (network
  /// interfaces), each created with `quantum`. Dates are bit-exact either
  /// way -- only the per-domain attribution of the sync statistics moves --
  /// and each domain's quantum can then be tuned independently.
  bool split_domains = false;
  /// Attaches this adaptive quantum policy to every split domain
  /// (requires split_domains), so each subsystem's quantum is tuned from
  /// its own sync-cause profile instead of hand-picked. `quantum` seeds
  /// the starting point, clamped into the policy's range.
  std::optional<QuantumPolicy> adaptive;
};

class SocPlatform : public Module {
 public:
  SocPlatform(Kernel& kernel, const SocConfig& config);

  /// Runs the full workload to completion; returns the simulated end date.
  Time run_to_completion();

  /// Records accelerator/core events for cross-flavor validation.
  void set_recorder(trace::Recorder* recorder);

  const SocConfig& config() const { return config_; }
  ControlCore& core() { return *core_; }
  noc::Mesh& mesh() { return *mesh_; }

  std::size_t accelerator_count() const { return accelerators_.size(); }
  Accelerator& accelerator(std::size_t i) { return *accelerators_.at(i); }

  std::size_t network_interface_count() const { return nis_.size(); }
  noc::NetworkInterfaceBase& network_interface(std::size_t i) {
    return *nis_.at(i);
  }

  /// Checksum accumulated by stream `s`'s sink.
  std::uint32_t sink_checksum(std::size_t s) const;
  /// The checksum the sink must produce, computed arithmetically.
  std::uint32_t expected_checksum(std::size_t s) const;
  bool all_streams_correct() const;

  std::uint64_t total_fifo_accesses() const;

 private:
  FifoInterface<std::uint32_t>& make_fifo(const std::string& name);

  SocConfig config_;
  std::unique_ptr<tlm::Bus> bus_;
  std::unique_ptr<tlm::Memory> memory_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::vector<std::unique_ptr<FifoInterface<std::uint32_t>>> fifos_;
  std::vector<std::unique_ptr<noc::NetworkInterfaceBase>> nis_;
  std::vector<std::unique_ptr<Accelerator>> accelerators_;
  std::vector<std::size_t> sink_index_;  ///< accelerator index of sink s
  std::unique_ptr<ControlCore> core_;
};

}  // namespace tdsim::soc
