// Arbiter stress properties: any number of decoupled producers/consumers
// sharing Smart FIFO sides through WriteArbiter/ReadArbiter (paper SIII:
// "an arbiter must be added to ensure that two successive accesses on the
// same side cannot have decreasing local dates").
//
// Properties checked across a random sweep:
//   * every item is delivered exactly once (no loss, no duplication);
//   * the FIFO's side-ordering invariant is never violated (the Smart
//     FIFO's runtime check stays enabled and must not fire);
//   * items from one producer stay in that producer's order;
//   * the simulation always terminates (no deadlock).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "core/arbiter.h"
#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

struct StressResult {
  std::vector<std::uint32_t> delivered;
  bool completed = false;
};

/// `producers` decoupled threads each write `per_producer` tagged words
/// through one WriteArbiter; `consumers` threads drain through one
/// ReadArbiter. Gaps are seeded-random per thread.
StressResult run_stress(unsigned producers, unsigned consumers,
                        std::size_t depth, unsigned seed,
                        std::uint32_t per_producer) {
  Kernel kernel;
  SmartFifo<std::uint32_t> fifo(kernel, "fifo", depth);
  WriteArbiter<std::uint32_t> write_side(fifo);
  ReadArbiter<std::uint32_t> read_side(fifo);

  StressResult result;
  const std::uint32_t total = producers * per_producer;
  result.delivered.reserve(total);

  for (unsigned p = 0; p < producers; ++p) {
    kernel.spawn_thread("producer" + std::to_string(p), [&, p] {
      std::mt19937 rng(seed * 97 + p);
      std::uniform_int_distribution<std::uint64_t> gap(0, 12);
      for (std::uint32_t i = 0; i < per_producer; ++i) {
        kernel.sync_domain().inc(Time(gap(rng), TimeUnit::NS));
        write_side.write(p << 20 | i);
      }
    });
  }
  std::vector<std::uint32_t> share(consumers, total / consumers);
  share[0] += total % consumers;
  for (unsigned c = 0; c < consumers; ++c) {
    kernel.spawn_thread("consumer" + std::to_string(c), [&, c] {
      std::mt19937 rng(seed * 131 + c);
      std::uniform_int_distribution<std::uint64_t> gap(0, 12);
      for (std::uint32_t i = 0; i < share[c]; ++i) {
        kernel.sync_domain().inc(Time(gap(rng), TimeUnit::NS));
        result.delivered.push_back(read_side.read());
      }
    });
  }

  kernel.run();
  result.completed = result.delivered.size() == total;
  return result;
}

class ArbiterStress
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, std::size_t, unsigned>> {};

TEST_P(ArbiterStress, ExactlyOnceDeliveryAndPerProducerOrder) {
  const auto [producers, consumers, depth, seed] = GetParam();
  constexpr std::uint32_t kPerProducer = 60;
  const StressResult result =
      run_stress(producers, consumers, depth, seed, kPerProducer);
  ASSERT_TRUE(result.completed);

  // Exactly-once: the delivered multiset is exactly the produced set.
  std::set<std::uint32_t> seen;
  for (std::uint32_t word : result.delivered) {
    EXPECT_TRUE(seen.insert(word).second) << "duplicate " << word;
  }
  EXPECT_EQ(seen.size(), producers * kPerProducer);

  // Per-producer order: sequence numbers of each producer appear in
  // increasing order in FIFO-insertion order. The FIFO is shared, so use
  // the delivered order (single FIFO => insertion order == read order
  // across all consumers' interleaved reads... reads may interleave, but
  // each read takes the head, so the concatenated delivery respects
  // insertion order per producer as long as we merge consumer streams by
  // FIFO order; instead, check within what each producer inserted:
  // extract each producer's subsequence from the global delivered list).
  std::map<std::uint32_t, std::int64_t> last_index;
  for (std::uint32_t word : result.delivered) {
    const std::uint32_t producer = word >> 20;
    const std::int64_t index = word & 0xFFFFF;
    auto it = last_index.find(producer);
    if (it != last_index.end()) {
      EXPECT_LT(it->second, index)
          << "producer " << producer << " reordered";
    }
    last_index[producer] = index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArbiterStress,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),      // producers
                       ::testing::Values(1u, 2u, 3u),      // consumers
                       ::testing::Values<std::size_t>(1, 4, 32),
                       ::testing::Values(11u, 29u)));      // seeds

TEST(ArbiterStress, ManyProducersSingleCell) {
  // Worst case: depth 1, eight producers, one consumer -- maximal
  // contention at the arbitration point.
  const StressResult result = run_stress(8, 1, 1, 5, 40);
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace tdsim
