// Reference timed FIFO ("TDless", paper SII.B): a regular FIFO with a
// sync() at the beginning of each public method. One context switch per
// access, but "it represents the behavior and the timing of the real system
// as faithfully as possible" -- the Smart FIFO must match its dates exactly.
//
// Also UntimedFifo, the regular FIFO behind the FifoInterface, for the
// untimed model of the paper's Fig. 5 benchmark.
#pragma once

#include <string>
#include <utility>

#include "core/fifo_interface.h"
#include "kernel/domain_link.h"
#include "kernel/fifo.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace tdsim {

template <typename T>
class SyncFifo final : public FifoInterface<T> {
 public:
  SyncFifo(Kernel& kernel, std::string name, std::size_t depth)
      : kernel_(kernel), fifo_(kernel, std::move(name), depth) {
    domain_link_.set_label(fifo_.name());
  }

  /// Sync-cause hint for the adaptive quantum controller: the per-access
  /// syncs of this reference FIFO are attributed to `cause` (default
  /// SyncCause::Explicit, the historical attribution -- both are
  /// accuracy_relevant()). A model that treats a SyncFifo as a
  /// date-accurate hand-off point can reclassify it as
  /// SyncCause::SyncPoint to make the controller's decision trace name
  /// the pressure precisely.
  void set_data_sync_cause(SyncCause cause) { data_sync_cause_ = cause; }

  /// Declares the FIFO's minimum modeling latency on both links (the
  /// probes' own and the underlying FIFO's) -- see Fifo::declare_min_latency.
  void declare_min_latency(Time latency) {
    domain_link_.set_min_latency(latency);
    fifo_.declare_min_latency(latency);
  }

  void write(T value) override {
    kernel_.current_domain().sync(data_sync_cause_);
    fifo_.write(std::move(value));
  }

  T read() override {
    kernel_.current_domain().sync(data_sync_cause_);
    return fifo_.read();
  }

  bool is_full() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(data_sync_cause_);
    return fifo_.full();
  }

  bool is_empty() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(data_sync_cause_);
    return fifo_.empty();
  }

  std::size_t get_size() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::Monitor);
    return fifo_.num_available();
  }

  /// Fires on every write; a synchronized observer re-checking is_empty()
  /// sees exactly the regular FIFO's state.
  Event& not_empty_event() override { return fifo_.data_written_event(); }
  Event& not_full_event() override { return fifo_.data_read_event(); }

  std::size_t depth() const override { return fifo_.depth(); }
  std::uint64_t total_writes() const override { return fifo_.total_writes(); }
  std::uint64_t total_reads() const override { return fifo_.total_reads(); }

  Fifo<T>& underlying() { return fifo_; }

 private:
  Kernel& kernel_;
  /// The full()/empty() probes bypass Fifo's own link; track them here.
  DomainLink domain_link_;
  Fifo<T> fifo_;
  /// See set_data_sync_cause().
  SyncCause data_sync_cause_ = SyncCause::Explicit;
};

/// The plain FIFO behind the common interface, for untimed models: accesses
/// carry no timing and never synchronize (processes in an untimed model
/// have a zero offset anyway).
template <typename T>
class UntimedFifo final : public FifoInterface<T> {
 public:
  UntimedFifo(Kernel& kernel, std::string name, std::size_t depth)
      : fifo_(kernel, std::move(name), depth) {}

  void write(T value) override { fifo_.write(std::move(value)); }
  T read() override { return fifo_.read(); }
  bool is_full() override { return fifo_.full(); }
  bool is_empty() override { return fifo_.empty(); }
  std::size_t get_size() override { return fifo_.num_available(); }
  Event& not_empty_event() override { return fifo_.data_written_event(); }
  Event& not_full_event() override { return fifo_.data_read_event(); }
  std::size_t depth() const override { return fifo_.depth(); }
  std::uint64_t total_writes() const override { return fifo_.total_writes(); }
  std::uint64_t total_reads() const override { return fifo_.total_reads(); }

  Fifo<T>& underlying() { return fifo_; }

 private:
  Fifo<T> fifo_;
};

}  // namespace tdsim
