#include "trace/trace.h"

#include <algorithm>
#include <tuple>

#include "kernel/process.h"

namespace tdsim::trace {

void Recorder::record(std::string text) {
  Entry entry;
  entry.text = std::move(text);
  Process* p = kernel_.current_process();
  if (p != nullptr) {
    entry.process = p->name();
    entry.date = p->clock().now();
  } else {
    entry.date = kernel_.now();
  }
  entries_.push_back(std::move(entry));
}

namespace {

std::string render(const Entry& e) {
  return "t=" + std::to_string(e.date.ps()) + "ps [" + e.process + "] " +
         e.text;
}

std::vector<Entry> sorted_entries(const Recorder& r) {
  std::vector<Entry> v = r.entries();
  std::stable_sort(v.begin(), v.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.date, a.process, a.text) <
           std::tie(b.date, b.process, b.text);
  });
  return v;
}

}  // namespace

std::vector<std::string> Recorder::lines() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    out.push_back(render(e));
  }
  return out;
}

std::vector<std::string> Recorder::sorted_lines() const {
  std::vector<std::string> out;
  for (const Entry& e : sorted_entries(*this)) {
    out.push_back(render(e));
  }
  return out;
}

std::optional<std::string> compare_sorted(const Recorder& a,
                                          const Recorder& b) {
  const std::vector<Entry> ea = sorted_entries(a);
  const std::vector<Entry> eb = sorted_entries(b);
  const std::size_t n = std::min(ea.size(), eb.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(ea[i] == eb[i])) {
      return "traces diverge at sorted line " + std::to_string(i) +
             ":\n  first:  " + render(ea[i]) + "\n  second: " + render(eb[i]);
    }
  }
  if (ea.size() != eb.size()) {
    const auto& longer = ea.size() > eb.size() ? ea : eb;
    return "trace lengths differ (" + std::to_string(ea.size()) + " vs " +
           std::to_string(eb.size()) + "); first extra line:\n  " +
           render(longer[n]);
  }
  return std::nullopt;
}

}  // namespace tdsim::trace
