// NoC substrate: XY routing, store-and-forward latency, arbitration,
// backpressure, and the two network-interface implementations.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/kernel.h"
#include "noc/mesh.h"
#include "noc/network_interface.h"
#include "noc/packet.h"
#include "noc/router.h"

namespace tdsim {
namespace {

using noc::Mesh;
using noc::NodeId;
using noc::Packet;
using noc::Port;

Packet make_packet(NodeId src, NodeId dest, std::vector<std::uint32_t> words,
                   noc::ChannelId channel = 0) {
  Packet p;
  p.src = src;
  p.dest = dest;
  p.channel = channel;
  p.words = std::move(words);
  return p;
}

Mesh::Config small_mesh(std::uint16_t cols, std::uint16_t rows) {
  Mesh::Config config;
  config.columns = cols;
  config.rows = rows;
  config.link_depth = 2;
  config.timing.header_latency = 5_ns;
  config.timing.word_latency = 1_ns;
  return config;
}

TEST(Router, XYRouteDecision) {
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(3, 3));
  // Center router is node 4 at (1,1).
  auto& r = mesh.router(4);
  EXPECT_EQ(r.route(4), Port::Local);
  EXPECT_EQ(r.route(3), Port::West);   // (0,1)
  EXPECT_EQ(r.route(5), Port::East);   // (2,1)
  EXPECT_EQ(r.route(1), Port::North);  // (1,0)
  EXPECT_EQ(r.route(7), Port::South);  // (1,2)
  EXPECT_EQ(r.route(0), Port::West);   // X first
  EXPECT_EQ(r.route(8), Port::East);
}

TEST(Mesh, SingleHopDeliveryWithLatency) {
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(2, 1));
  Time delivered_at;
  k.spawn_thread("src", [&] {
    mesh.local_in(0).write(make_packet(0, 1, {1, 2, 3, 4}));
  });
  k.spawn_thread("dst", [&] {
    Packet p = mesh.local_out(1).read();
    delivered_at = k.now();
    EXPECT_EQ(p.words, (std::vector<std::uint32_t>{1, 2, 3, 4}));
    EXPECT_EQ(p.src, 0);
  });
  k.run();
  // Two routers on the path (0 then 1): 2 x (5 + 4x1) ns.
  EXPECT_EQ(delivered_at, 18_ns);
  EXPECT_EQ(mesh.total_forwarded(), 2u);
}

TEST(Mesh, MultiHopXYPath) {
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(3, 3));
  Time delivered_at;
  k.spawn_thread("src", [&] {
    mesh.local_in(0).write(make_packet(0, 8, {7}));  // (0,0) -> (2,2)
  });
  k.spawn_thread("dst", [&] {
    Packet p = mesh.local_out(8).read();
    delivered_at = k.now();
    EXPECT_EQ(p.words[0], 7u);
  });
  k.run();
  // Path 0 -> 1 -> 2 -> 5 -> 8: 5 routers, 6 ns each.
  EXPECT_EQ(delivered_at, 30_ns);
}

TEST(Mesh, SelfDeliveryOnSameNode) {
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(2, 2));
  bool got = false;
  k.spawn_thread("src", [&] {
    mesh.local_in(3).write(make_packet(3, 3, {9}));
  });
  k.spawn_thread("dst", [&] {
    Packet p = mesh.local_out(3).read();
    got = (p.words[0] == 9);
  });
  k.run();
  EXPECT_TRUE(got);
}

TEST(Mesh, PacketsOnSamePathStayOrdered) {
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(2, 1));
  std::vector<std::uint32_t> got;
  k.spawn_thread("src", [&] {
    for (std::uint32_t i = 0; i < 10; ++i) {
      mesh.local_in(0).write(make_packet(0, 1, {i}));
    }
  });
  k.spawn_thread("dst", [&] {
    for (int i = 0; i < 10; ++i) {
      got.push_back(mesh.local_out(1).read().words[0]);
    }
  });
  k.run();
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(Mesh, RoundRobinArbitrationSharesOutput) {
  // Two sources (west and local) compete for the east output of router 1
  // in a 3x1 mesh; both must make progress.
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(3, 1));
  std::map<std::uint16_t, int> received;
  k.spawn_thread("src0", [&] {
    for (int i = 0; i < 8; ++i) {
      mesh.local_in(0).write(make_packet(0, 2, {1}));
    }
  });
  k.spawn_thread("src1", [&] {
    for (int i = 0; i < 8; ++i) {
      mesh.local_in(1).write(make_packet(1, 2, {2}));
    }
  });
  k.spawn_thread("dst", [&] {
    for (int i = 0; i < 16; ++i) {
      received[mesh.local_out(2).read().src]++;
    }
  });
  k.run();
  EXPECT_EQ(received[0], 8);
  EXPECT_EQ(received[1], 8);
}

TEST(Mesh, BackpressureBlocksSender) {
  // The receiver drains slowly; bounded links must throttle the sender
  // rather than losing packets.
  Kernel k;
  Mesh mesh(k, "noc", small_mesh(2, 1));
  int received = 0;
  k.spawn_thread("src", [&] {
    for (std::uint32_t i = 0; i < 20; ++i) {
      mesh.local_in(0).write(make_packet(0, 1, {i}));
    }
  });
  k.spawn_thread("dst", [&] {
    for (int i = 0; i < 20; ++i) {
      k.wait(100_ns);
      (void)mesh.local_out(1).read();
      received++;
    }
  });
  k.run();
  EXPECT_EQ(received, 20);
  EXPECT_GE(k.now(), 2000_ns);
}

// ---------------------------------------------------------------------
// Network interfaces: a decoupled producer thread streams words through a
// Smart FIFO, the NI packetizes them over the mesh, and the peer NI
// delivers into the consumer's FIFO. The Sync variant must produce the
// same dates with synchronizing FIFOs.
// ---------------------------------------------------------------------

struct NiRunResult {
  std::vector<Time> delivery_dates;
  std::uint64_t context_switches = 0;
  std::uint64_t packets = 0;
};

template <typename NiType, typename FifoType>
NiRunResult run_ni_pipeline(std::size_t words, std::size_t packet_words,
                            std::size_t fifo_depth) {
  Kernel k;
  Module top(k, "top");
  Mesh mesh(k, "noc", small_mesh(2, 1));
  FifoType producer_fifo(k, "p", fifo_depth);
  FifoType consumer_fifo(k, "c", fifo_depth);

  NiType ni0(top, "ni0", 0, mesh.local_in(0), mesh.local_out(0));
  NiType ni1(top, "ni1", 1, mesh.local_in(1), mesh.local_out(1));
  noc::RxChannelConfig rx;
  rx.fifo = &consumer_fifo;
  rx.per_word = 1_ns;
  const noc::ChannelId channel = ni1.add_rx_channel(rx);
  noc::TxChannelConfig tx;
  tx.fifo = &producer_fifo;
  tx.dest = 1;
  tx.dest_channel = channel;
  tx.packet_words = packet_words;
  tx.per_word = 1_ns;
  ni0.add_tx_channel(tx);
  ni0.elaborate();
  ni1.elaborate();

  NiRunResult result;
  k.spawn_thread("producer", [&] {
    for (std::uint32_t i = 0; i < words; ++i) {
      producer_fifo.write(i);
      k.sync_domain().inc(3_ns);
    }
  });
  k.spawn_thread("consumer", [&] {
    for (std::uint32_t i = 0; i < words; ++i) {
      const std::uint32_t v = consumer_fifo.read();
      EXPECT_EQ(v, i);
      result.delivery_dates.push_back(k.sync_domain().local_time_stamp());
      k.sync_domain().inc(2_ns);
    }
  });
  k.run();
  result.context_switches = k.stats().context_switches;
  result.packets = ni0.packets_sent();
  return result;
}

TEST(NetworkInterface, SmartDeliversAllWordsInOrder) {
  auto result =
      run_ni_pipeline<noc::SmartNetworkInterface, SmartFifo<std::uint32_t>>(
          64, 8, 16);
  EXPECT_EQ(result.delivery_dates.size(), 64u);
  EXPECT_EQ(result.packets, 8u);
}

TEST(NetworkInterface, SyncDeliversAllWordsInOrder) {
  auto result =
      run_ni_pipeline<noc::SyncNetworkInterface, SyncFifo<std::uint32_t>>(
          64, 8, 16);
  EXPECT_EQ(result.delivery_dates.size(), 64u);
  EXPECT_EQ(result.packets, 8u);
}

TEST(NetworkInterface, SmartAndSyncProduceIdenticalDates) {
  // The headline case-study property: both flavors provide the same
  // timing accuracy; the Smart flavor saves the context switches.
  auto smart =
      run_ni_pipeline<noc::SmartNetworkInterface, SmartFifo<std::uint32_t>>(
          96, 8, 8);
  auto sync =
      run_ni_pipeline<noc::SyncNetworkInterface, SyncFifo<std::uint32_t>>(
          96, 8, 8);
  EXPECT_EQ(smart.delivery_dates, sync.delivery_dates);
  EXPECT_LT(smart.context_switches, sync.context_switches);
}

class NiParamSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(NiParamSweep, FlavorsAgreeAcrossGeometries) {
  const auto [words, packet_words, depth] = GetParam();
  auto smart =
      run_ni_pipeline<noc::SmartNetworkInterface, SmartFifo<std::uint32_t>>(
          words, packet_words, depth);
  auto sync =
      run_ni_pipeline<noc::SyncNetworkInterface, SyncFifo<std::uint32_t>>(
          words, packet_words, depth);
  EXPECT_EQ(smart.delivery_dates, sync.delivery_dates);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NiParamSweep,
    ::testing::Values(std::make_tuple(32, 4, 4), std::make_tuple(32, 4, 32),
                      std::make_tuple(48, 16, 8), std::make_tuple(64, 8, 2),
                      std::make_tuple(40, 8, 64)));

}  // namespace
}  // namespace tdsim
