// Microbenchmarks of individual FIFO operations (paper SIII.B/SIII.C):
//   * write/read transfer cost: Smart FIFO vs regular FIFO vs SyncFifo;
//   * is_empty / is_full: "two tests instead of one for a regular FIFO" --
//     constant time, marginally slower;
//   * get_size: "the Smart FIFO is slower than a regular FIFO for get_size
//     accesses" -- linear in the depth, acceptable because the monitor
//     interface is low-rate.
//
// Each benchmark runs a complete mini-simulation per batch; the reported
// rate is per FIFO operation.
#include <benchmark/benchmark.h>

#include "core/arbiter.h"
#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/kernel.h"

namespace {

using tdsim::Kernel;
using tdsim::SmartFifo;
using tdsim::SyncFifo;
using tdsim::Time;
using tdsim::UntimedFifo;
using namespace tdsim::time_literals;

constexpr std::uint64_t kWordsPerBatch = 1 << 14;

/// Producer/consumer transfer through any FifoInterface; producer and
/// consumer are decoupled threads annotating 3 ns / 2 ns per word.
template <typename FifoT>
void transfer_batch(std::size_t depth, std::uint64_t words, bool decoupled) {
  Kernel kernel;
  FifoT fifo(kernel, "bench.fifo", depth);
  kernel.spawn_thread("producer", [&] {
    for (std::uint64_t i = 0; i < words; ++i) {
      if (decoupled) {
        kernel.sync_domain().inc(3_ns);
      } else {
        tdsim::wait(3_ns);
      }
      fifo.write(static_cast<std::uint32_t>(i));
    }
  });
  kernel.spawn_thread("consumer", [&] {
    std::uint32_t sum = 0;
    for (std::uint64_t i = 0; i < words; ++i) {
      sum += fifo.read();
      if (decoupled) {
        kernel.sync_domain().inc(2_ns);
      } else {
        tdsim::wait(2_ns);
      }
    }
    benchmark::DoNotOptimize(sum);
  });
  kernel.run();
}

void BM_TransferSmart(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<SmartFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmart)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TransferSyncPerAccess(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<SyncFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSyncPerAccess)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TransferRegularUntimed(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<UntimedFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferRegularUntimed)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/// is_empty on a Smart FIFO: constant-time, two tests.
void BM_IsEmptySmart(benchmark::State& state) {
  constexpr std::uint64_t kQueries = 1 << 16;
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 64);
    kernel.spawn_thread("prober", [&] {
      fifo.write(1);
      bool acc = false;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc ^= fifo.is_empty();
        kernel.sync_domain().inc(1_ns);
      }
      benchmark::DoNotOptimize(acc);
      benchmark::DoNotOptimize(fifo.read());
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_IsEmptySmart);

/// is_empty (empty()) on a regular FIFO: one test.
void BM_IsEmptyRegular(benchmark::State& state) {
  constexpr std::uint64_t kQueries = 1 << 16;
  for (auto _ : state) {
    Kernel kernel;
    UntimedFifo<std::uint32_t> fifo(kernel, "bench.fifo", 64);
    kernel.spawn_thread("prober", [&] {
      fifo.write(1);
      bool acc = false;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc ^= fifo.is_empty();
        kernel.sync_domain().inc(1_ns);
      }
      benchmark::DoNotOptimize(acc);
      benchmark::DoNotOptimize(fifo.read());
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_IsEmptyRegular);

/// get_size on a half-full Smart FIFO: O(depth) reconstruction from the
/// per-cell date pairs.
void BM_GetSizeSmart(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kQueries = 1 << 12;
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", depth);
    kernel.spawn_thread("monitor", [&] {
      for (std::size_t i = 0; i < depth / 2; ++i) {
        fifo.write(static_cast<std::uint32_t>(i));
      }
      std::size_t acc = 0;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc += fifo.get_size();
      }
      benchmark::DoNotOptimize(acc);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_GetSizeSmart)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Size query on a regular FIFO: O(1).
void BM_GetSizeRegular(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kQueries = 1 << 12;
  for (auto _ : state) {
    Kernel kernel;
    UntimedFifo<std::uint32_t> fifo(kernel, "bench.fifo", depth);
    kernel.spawn_thread("monitor", [&] {
      for (std::size_t i = 0; i < depth / 2; ++i) {
        fifo.write(static_cast<std::uint32_t>(i));
      }
      std::size_t acc = 0;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc += fifo.get_size();
      }
      benchmark::DoNotOptimize(acc);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_GetSizeRegular)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Arbitrated access (ablation): the WriteArbiter/ReadArbiter synchronize
/// every access to keep side dates monotone across multiple clients --
/// "decoupling cannot be preserved across an arbitration point". Expect
/// sync-per-access performance even on a Smart FIFO.
void BM_TransferSmartArbitrated(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 16);
    tdsim::WriteArbiter<std::uint32_t> write_side(fifo);
    tdsim::ReadArbiter<std::uint32_t> read_side(fifo);
    kernel.spawn_thread("producer", [&] {
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        kernel.sync_domain().inc(3_ns);
        write_side.write(static_cast<std::uint32_t>(i));
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        sum += read_side.read();
        kernel.sync_domain().inc(2_ns);
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmartArbitrated);

/// Cost of the side-ordering runtime check (ablation: it is on by default).
void BM_TransferSmartNoOrderCheck(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 16);
    fifo.set_side_order_checking(false);
    kernel.spawn_thread("producer", [&] {
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        kernel.sync_domain().inc(3_ns);
        fifo.write(static_cast<std::uint32_t>(i));
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        sum += fifo.read();
        kernel.sync_domain().inc(2_ns);
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmartNoOrderCheck);

}  // namespace

BENCHMARK_MAIN();
