// Sanitizer fiber annotations for the ucontext-based stackful processes.
//
// AddressSanitizer tracks one stack per OS thread; every swapcontext between
// a scheduler stack and a process stack must be bracketed with
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber or ASan
// corrupts its shadow on the first throw/no-return inside a fiber.
//
// ThreadSanitizer likewise keeps per-"fiber" shadow state: each process
// stack owns a __tsan_create_fiber handle, and every switch announces the
// destination with __tsan_switch_to_fiber immediately before swapcontext.
// This matters doubly since parallel per-domain execution: a fiber may
// suspend on one worker thread and resume on another, and the annotations
// (with the default synchronizing flags) both keep TSan's stacks straight
// and establish the happens-before edge for that migration.
//
// The helpers compile to nothing outside sanitizer builds.
//
// Switch protocol (all tdsim switches are scheduler <-> fiber, never
// fiber <-> fiber):
//   * before swapcontext: start_switch(&save, dest_bottom, dest_size,
//     dest_tsan_fiber); pass save == nullptr when the departing stack is
//     about to die (the trampoline's final switch), so ASan frees its fake
//     stack. dest_tsan_fiber is the destination's TSan handle: the
//     process's Process::tsan_fiber_ when entering a fiber, the execution
//     context's ExecContext::tsan_fiber when yielding back to a scheduler.
//   * right after resuming on the destination stack:
//     finish_switch(save_of_that_stack, &old_bottom, &old_size); the old
//     bounds are those of the stack we came from -- the fiber side uses
//     them to learn the scheduler stack's bounds.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define TDSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TDSIM_ASAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define TDSIM_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TDSIM_TSAN_FIBERS 1
#endif
#endif

#ifdef TDSIM_ASAN_FIBERS
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef TDSIM_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace tdsim::fiber {

/// TSan shadow state for one fiber stack; null outside TSan builds (and a
/// valid "do nothing" value for start_switch).
inline void* tsan_create_fiber() {
#ifdef TDSIM_TSAN_FIBERS
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

inline void tsan_destroy_fiber(void* fiber) {
#ifdef TDSIM_TSAN_FIBERS
  if (fiber != nullptr) {
    __tsan_destroy_fiber(fiber);
  }
#else
  (void)fiber;
#endif
}

/// The implicit TSan fiber of the calling OS thread -- what a scheduler
/// context switches back to.
inline void* tsan_current_fiber() {
#ifdef TDSIM_TSAN_FIBERS
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

inline void start_switch(void** fake_stack_save, const void* dest_bottom,
                         std::size_t dest_size, void* dest_tsan_fiber) {
#ifdef TDSIM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, dest_bottom, dest_size);
#else
  (void)fake_stack_save;
  (void)dest_bottom;
  (void)dest_size;
#endif
#ifdef TDSIM_TSAN_FIBERS
  // Flag 0 = synchronize on the switch: scheduler->fiber->scheduler edges
  // then order fiber memory accesses across worker-thread migrations.
  if (dest_tsan_fiber != nullptr) {
    __tsan_switch_to_fiber(dest_tsan_fiber, 0);
  }
#else
  (void)dest_tsan_fiber;
#endif
}

inline void finish_switch(void* fake_stack_save, const void** old_bottom,
                          std::size_t* old_size) {
#ifdef TDSIM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, old_bottom, old_size);
#else
  (void)fake_stack_save;
  (void)old_bottom;
  (void)old_size;
#endif
}

/// Clears ASan shadow poison left on a dead fiber's stack region so the
/// StackPool can hand the block to a new fiber. The trampoline's final
/// null-save switch frees the fake stack, but red zones painted onto the
/// real stack's shadow by the dead frames stay behind; a recycled stack
/// must start with clean shadow or the next fiber's first frames read as
/// poisoned.
inline void unpoison_stack(void* bottom, std::size_t size) {
#ifdef TDSIM_ASAN_FIBERS
  __asan_unpoison_memory_region(bottom, size);
#else
  (void)bottom;
  (void)size;
#endif
}

}  // namespace tdsim::fiber
