// FifoLevelProbe: sampling cadence, watermark tracking, equality of the
// sampled profile across Smart and reference FIFOs, and the umbrella
// header (this file includes only tdsim.h).
#include <gtest/gtest.h>

#include "tdsim.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;
using trace::FifoLevelProbe;
using trace::VcdWriter;

FifoLevelProbe::Config probe_config(Time period, std::size_t max_samples) {
  FifoLevelProbe::Config config;
  config.period = period;
  config.max_samples = max_samples;
  return config;
}

TEST(Probe, SamplesAtTheConfiguredCadence) {
  Kernel kernel;
  SmartFifo<int> fifo(kernel, "fifo", 8);
  VcdWriter writer("1ps");
  FifoLevelProbe probe(kernel, "probe", fifo,
                       writer.add_variable("fifo.level", 8),
                       probe_config(100_ns, 5));
  kernel.spawn_thread("producer", [&] {
    for (int i = 0; i < 4; ++i) {
      fifo.write(i);
      kernel.sync_domain().inc(150_ns);
    }
  });
  kernel.run();
  EXPECT_EQ(probe.samples(), 5u);
  // Dedup may drop repeats, but something was recorded.
  EXPECT_GE(writer.sample_count(), 1u);
}

TEST(Probe, WatermarkTracksPeakOccupancy) {
  Kernel kernel;
  SmartFifo<int> fifo(kernel, "fifo", 8);
  VcdWriter writer;
  FifoLevelProbe probe(kernel, "probe", fifo,
                       writer.add_variable("level", 8),
                       probe_config(10_ns, 40));
  kernel.spawn_thread("producer", [&] {
    for (int i = 0; i < 6; ++i) {
      fifo.write(i);
      kernel.sync_domain().inc(20_ns);
    }
  });
  kernel.spawn_thread("consumer", [&] {
    kernel.sync_domain().inc(200_ns);  // let the FIFO fill to 6 first
    for (int i = 0; i < 6; ++i) {
      (void)fifo.read();
      kernel.sync_domain().inc(5_ns);
    }
  });
  kernel.run();
  EXPECT_EQ(probe.high_watermark(), 6u);
}

TEST(Probe, ProfileIdenticalAcrossSmartAndReferenceFifos) {
  // The probe observes the *real* FIFO; the sampled waveform must be
  // identical whether the channel is a Smart FIFO under decoupling or the
  // reference synchronizing FIFO (paper SIV.A, applied to waveforms).
  const auto run_mode = [](bool smart) {
    Kernel kernel;
    std::unique_ptr<FifoInterface<int>> fifo;
    if (smart) {
      fifo = std::make_unique<SmartFifo<int>>(kernel, "fifo", 4);
    } else {
      fifo = std::make_unique<SyncFifo<int>>(kernel, "fifo", 4);
    }
    VcdWriter writer("1ps");
    FifoLevelProbe probe(kernel, "probe", *fifo,
                         writer.add_variable("level", 8),
                         probe_config(30_ns, 30));
    kernel.spawn_thread("producer", [&] {
      for (int i = 0; i < 20; ++i) {
        if (smart) {
          kernel.sync_domain().inc(17_ns);
        } else {
          tdsim::wait(17_ns);
        }
        fifo->write(i);
      }
    });
    kernel.spawn_thread("consumer", [&] {
      for (int i = 0; i < 20; ++i) {
        (void)fifo->read();
        if (smart) {
          kernel.sync_domain().inc(23_ns);
        } else {
          tdsim::wait(23_ns);
        }
      }
    });
    kernel.run();
    return writer.to_string();
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

}  // namespace
}  // namespace tdsim
