// The case-study SoC (paper SIV.C) as a runnable example: hardware
// accelerators streaming through hardwired Smart FIFOs and a stream NoC,
// with one control core programming and polling them over the
// memory-mapped, quantum-decoupled TLM bus.
//
// Runs the same platform in both flavors and shows that the Smart FIFO
// version saves the context switches while every completion date matches.
//
// Build & run:  ./examples/soc_stream
#include <cstdio>

#include "soc/soc_platform.h"

using namespace tdsim;
using namespace tdsim::soc;

namespace {

struct Outcome {
  Time end_date;
  Time core_done;
  std::uint64_t switches;
  std::uint64_t methods;
  bool correct;
};

Outcome run(FifoFlavor flavor) {
  SocConfig config;
  config.flavor = flavor;
  config.mesh_columns = 2;
  config.mesh_rows = 2;
  config.streams = 4;
  config.words_per_stream = 8192;
  config.fifo_depth = 16;
  config.packet_words = 16;

  Kernel kernel;
  SocPlatform platform(kernel, config);
  const Time end = platform.run_to_completion();

  std::printf("%s flavor:\n", to_string(flavor));
  for (std::size_t s = 0; s < config.streams; ++s) {
    std::printf("  stream %zu checksum %08x (%s)\n", s,
                platform.sink_checksum(s),
                platform.sink_checksum(s) == platform.expected_checksum(s)
                    ? "ok"
                    : "WRONG");
  }
  std::printf("  done at %s (software observed at %s)\n",
              end.to_string().c_str(),
              platform.core().all_done_date().to_string().c_str());
  std::printf("  %llu context switches, %llu method activations, "
              "%llu software polls\n\n",
              static_cast<unsigned long long>(
                  kernel.stats().context_switches),
              static_cast<unsigned long long>(
                  kernel.stats().method_activations),
              static_cast<unsigned long long>(platform.core().polls()));

  return {end, platform.core().all_done_date(),
          kernel.stats().context_switches,
          kernel.stats().method_activations,
          platform.all_streams_correct()};
}

}  // namespace

int main() {
  const Outcome sync = run(FifoFlavor::Sync);
  const Outcome smart = run(FifoFlavor::Smart);

  const bool timing_equal =
      sync.end_date == smart.end_date && sync.core_done == smart.core_done;
  std::printf("timing identical across flavors: %s\n",
              timing_equal ? "yes" : "NO");
  std::printf("context switches: %llu -> %llu (%.1fx fewer)\n",
              static_cast<unsigned long long>(sync.switches),
              static_cast<unsigned long long>(smart.switches),
              static_cast<double>(sync.switches) /
                  static_cast<double>(smart.switches));
  return (timing_equal && sync.correct && smart.correct) ? 0 : 1;
}
