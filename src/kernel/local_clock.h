// Per-process local clock -- the first level of the temporal-decoupling
// subsystem (paper SII.A).
//
// Every process owns a LocalClock. Its local date is the kernel's global
// date plus a non-negative offset, so a decoupled process always runs at or
// ahead of the global date. The two basic operations are the cheap
// inc(duration), which advances the local date without touching the
// scheduler, and the costly sync(), which suspends the process until the
// global date catches up with its local date (one context switch).
//
// Quantum policy and synchronization bookkeeping live one level up, in the
// kernel-owned SyncDomain; the clock delegates to it so every sync is
// attributed to a cause in KernelStats.
#pragma once

#include "kernel/stats.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;
class Process;
class SyncDomain;

class LocalClock {
 public:
  explicit LocalClock(Process& owner) : owner_(owner) {}
  LocalClock(const LocalClock&) = delete;
  LocalClock& operator=(const LocalClock&) = delete;

  Process& owner() const { return owner_; }

  /// Local-time offset above the global date (zero when synchronized).
  Time offset() const { return offset_; }

  /// The local date: kernel.now() + offset(). The paper's
  /// local_time_stamp() for this process.
  Time now() const;

  /// Advances the local date by `duration` without a context switch. This
  /// is the timing-annotation primitive.
  void inc(Time duration) { offset_ += duration; }

  /// Raises the local date to `date` if it is in the future; no-op
  /// otherwise. Used by the Smart FIFO to apply cell time stamps
  /// ("increase the local time up to this date").
  void advance_to(Time date);

  /// True when the local date equals the global date.
  bool is_synchronized() const { return offset_.is_zero(); }

  /// True when the owning domain's quantum policy demands a sync (offset
  /// reached the quantum, or the quantum is zero). The quantum is read
  /// from the domain on every query -- under an adaptive policy
  /// (kernel/quantum_controller.h) it may move between synchronization
  /// horizons, and a clock must always answer against the current value.
  bool needs_sync() const;

  /// Synchronizes the owner: suspends it until the global date equals its
  /// local date, then clears the offset. No-op when already synchronized.
  /// Only thread processes may have a non-zero offset when calling this
  /// (methods cannot suspend; see method_rearm()). The cause is recorded
  /// in the domain's per-cause statistics.
  void sync(SyncCause cause = SyncCause::Explicit);

  /// For the owning method process (which cannot suspend): re-arms it to
  /// run again once the global date reaches its current local date, i.e.
  /// the method-process equivalent of sync(). Generation-safe: the re-arm
  /// goes through Kernel::next_trigger(), which bumps the process's wake
  /// generation and so invalidates any stale timed entry for it. The
  /// offset itself is reset automatically at the next activation.
  void method_rearm(SyncCause cause = SyncCause::MethodRearm);

 private:
  friend class Kernel;      // resets method offsets at each activation
  friend class SyncDomain;  // clears the offset when performing a sync

  void set_offset(Time offset) { offset_ = offset; }

  Process& owner_;
  Time offset_{};
};

}  // namespace tdsim
