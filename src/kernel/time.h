// tdsim -- SystemC-like discrete-event simulation substrate.
//
// Simulated time. The kernel resolution is one picosecond, stored in an
// unsigned 64-bit counter (enough for ~213 simulated days). This mirrors the
// role of sc_time in SystemC with a fixed 1 ps resolution.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>

namespace tdsim {

/// Time units accepted when constructing a Time from a count.
enum class TimeUnit : int {
  PS = 0,
  NS = 1,
  US = 2,
  MS = 3,
  S = 4,
};

/// Returns the number of picoseconds in one `unit`.
constexpr std::uint64_t picoseconds_per(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::PS: return 1ull;
    case TimeUnit::NS: return 1'000ull;
    case TimeUnit::US: return 1'000'000ull;
    case TimeUnit::MS: return 1'000'000'000ull;
    case TimeUnit::S: return 1'000'000'000'000ull;
  }
  return 1ull;
}

/// An absolute date or a duration in simulated time.
///
/// Time is a regular value type: totally ordered, hashable via ps(), and
/// closed under addition/subtraction (subtraction saturates at zero, which is
/// convenient when computing "how far ahead of the global date am I").
class Time {
 public:
  /// Zero time.
  constexpr Time() = default;

  /// `count` units, e.g. Time(20, TimeUnit::NS).
  constexpr Time(std::uint64_t count, TimeUnit unit)
      : ps_(count * picoseconds_per(unit)) {}

  /// Named constructor from raw picoseconds.
  static constexpr Time from_ps(std::uint64_t ps) {
    Time t;
    t.ps_ = ps;
    return t;
  }

  /// Largest representable time; used as "never" / "no deadline".
  static constexpr Time max() {
    return from_ps(std::numeric_limits<std::uint64_t>::max());
  }

  /// Raw picosecond count.
  constexpr std::uint64_t ps() const { return ps_; }

  /// Value converted to `unit` (truncating).
  constexpr std::uint64_t count_in(TimeUnit unit) const {
    return ps_ / picoseconds_per(unit);
  }

  /// Value in seconds as a double (for reporting only).
  constexpr double to_seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr auto operator<=>(Time a, Time b) = default;

  constexpr Time& operator+=(Time other) {
    ps_ += other.ps_;
    return *this;
  }

  /// Saturating subtraction: a - b is zero when b >= a.
  constexpr Time& operator-=(Time other) {
    ps_ = (ps_ > other.ps_) ? ps_ - other.ps_ : 0;
    return *this;
  }

  constexpr Time& operator*=(std::uint64_t k) {
    ps_ *= k;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return a += b; }
  friend constexpr Time operator-(Time a, Time b) { return a -= b; }
  friend constexpr Time operator*(Time a, std::uint64_t k) { return a *= k; }
  friend constexpr Time operator*(std::uint64_t k, Time a) { return a *= k; }

  /// Human-readable rendering with the largest exact unit, e.g. "20 ns".
  std::string to_string() const;

 private:
  std::uint64_t ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

inline namespace time_literals {

constexpr Time operator""_ps(unsigned long long v) {
  return Time(v, TimeUnit::PS);
}
constexpr Time operator""_ns(unsigned long long v) {
  return Time(v, TimeUnit::NS);
}
constexpr Time operator""_us(unsigned long long v) {
  return Time(v, TimeUnit::US);
}
constexpr Time operator""_ms(unsigned long long v) {
  return Time(v, TimeUnit::MS);
}
constexpr Time operator""_s(unsigned long long v) {
  return Time(v, TimeUnit::S);
}

}  // namespace time_literals
}  // namespace tdsim
