#include "kernel/sync_domain.h"

#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/process.h"
#include "kernel/quantum_controller.h"
#include "kernel/report.h"

namespace tdsim {

void SyncDomain::set_delta_cycle_limit(std::uint64_t limit) {
  delta_limit_ = limit;
  if (limit != 0) {
    // Lets the scheduler skip the per-domain delta bookkeeping entirely on
    // the (default) no-limit path. Sticky: clearing one domain's limit
    // doesn't prove no other domain still has one.
    kernel_.domain_delta_limits_enabled_ = true;
  }
}

void SyncDomain::set_quantum_policy(const QuantumPolicy& policy) {
  kernel_.set_quantum_policy(*this, policy);
}

const QuantumPolicy* SyncDomain::quantum_policy() const {
  return kernel_.quantum_policy(*this);
}

const QuantumDecision* SyncDomain::last_quantum_decision() const {
  return kernel_.last_quantum_decision(*this);
}

std::vector<QuantumDecision> SyncDomain::decision_trace() const {
  return kernel_.decision_trace(*this);
}

bool SyncDomain::quantum_exceeded(const LocalClock& clock) const {
  if (quantum_.is_zero()) {
    // A zero quantum means "synchronize at every annotation", matching the
    // paper's remark that decoupling can be disabled by setting it to zero.
    return true;
  }
  return clock.offset() >= quantum_;
}

std::optional<Time> SyncDomain::execution_front() const {
  if (kernel_.foreign_group_read(*this)) {
    // Mid-round probe of another group's domain: its processes' clocks
    // are live on another worker; report the last-horizon snapshot.
    return kernel_.published_front(id_);
  }
  std::optional<Time> front;
  for (const Process* p : members_) {
    if (p->terminated()) {
      continue;
    }
    const Time local = p->clock().now();
    if (!front.has_value() || local > *front) {
      front = local;
    }
  }
  return front;
}

Time SyncDomain::max_offset() const {
  if (kernel_.foreign_group_read(*this)) {
    // front == global date + max offset over live processes, so the
    // horizon snapshot reconstructs the offset without touching live
    // clocks.
    const std::optional<Time> front = kernel_.published_front(id_);
    if (!front.has_value() || *front <= kernel_.now()) {
      return Time{};
    }
    return *front - kernel_.now();
  }
  Time max;
  for (const Process* p : members_) {
    if (!p->terminated() && p->clock().offset() > max) {
      max = p->clock().offset();
    }
  }
  return max;
}

void SyncDomain::set_concurrent(bool concurrent) {
  kernel_.set_domain_concurrent(*this, concurrent);
}

LocalClock& SyncDomain::current_clock() const {
  Process* p = kernel_.current_process();
  if (p == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  return p->clock();
}

Time SyncDomain::local_time_stamp() const {
  Process* p = kernel_.current_process();
  // From the scheduler context (e.g. callbacks), the local date degenerates
  // to the global date.
  return p != nullptr ? p->clock().now() : kernel_.now();
}

Time SyncDomain::local_offset() const {
  return current_clock().offset();
}

void SyncDomain::inc(Time duration) {
  current_clock().inc(duration);
}

void SyncDomain::advance_local_to(Time date) {
  current_clock().advance_to(date);
}

void SyncDomain::sync(SyncCause cause) {
  const SyncContext ctx = kernel_.sync_context();
  if (ctx.process == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  perform_sync_in(ctx, ctx.process->clock(), cause);
}

void SyncDomain::sync_unbooked() {
  const SyncContext ctx = kernel_.sync_context();
  if (ctx.process == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  perform_sync_in(ctx, ctx.process->clock(), SyncCause::Explicit,
                  /*book=*/false);
}

void SyncDomain::inc_and_sync_if_needed(Time duration, SyncCause cause) {
  // The loosely-timed hot path: one thread-local read resolves the
  // process, its clock and the counter sink for the whole operation.
  const SyncContext ctx = kernel_.sync_context();
  if (ctx.process == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  // Check membership before mutating the clock, so a misrouted call fails
  // without side effects.
  require_member(*ctx.process);
  LocalClock& clock = ctx.process->clock();
  clock.inc(duration);
  if (quantum_exceeded(clock)) {
    perform_sync_in(ctx, clock, cause);
  }
}

bool SyncDomain::is_synchronized() const {
  return current_clock().is_synchronized();
}

bool SyncDomain::needs_sync() const {
  LocalClock& clock = current_clock();
  // A foreign domain's quantum would silently misanswer the policy
  // question; fail loudly instead.
  require_member(clock.owner());
  return quantum_exceeded(clock);
}

void SyncDomain::method_sync_trigger(SyncCause cause) {
  perform_method_rearm(current_clock(), cause);
}

Time SyncDomain::local_time_of(const Process& process) const {
  return process.clock().now();
}

const DomainStats& SyncDomain::stats() const {
  // kernel_.stats() resolves to the calling group's merged view inside a
  // parallel round, so a domain's own processes always see their own
  // counters exactly.
  return kernel_.stats().domains[id_];
}

std::uint64_t SyncDomain::syncs(SyncCause cause) const {
  return stats().syncs(cause);
}

std::uint64_t SyncDomain::syncs_performed() const {
  return stats().syncs_performed();
}

std::uint64_t SyncDomain::syncs_elided() const {
  return stats().syncs_elided;
}

void SyncDomain::require_member(const Process& process) const {
  if (&process.domain() != this) {
    Report::error("process '" + process.name() + "' belongs to domain '" +
                  process.domain().name() + "' but synchronized through "
                  "domain '" + name_ +
                  "'; resolve the domain with Kernel::current_domain()");
  }
}

void SyncDomain::perform_sync(LocalClock& clock, SyncCause cause) {
  const SyncContext ctx = kernel_.sync_context();
  // Suspension acts on the currently executing process, so only the owner
  // may sync its own clock; anything else would clear one process's offset
  // while suspending another.
  if (ctx.process != &clock.owner()) {
    Report::error("sync() invoked on the clock of process '" +
                  clock.owner().name() +
                  "', which is not the currently executing process");
  }
  perform_sync_in(ctx, clock, cause);
}

void SyncDomain::perform_sync_in(const SyncContext& ctx, LocalClock& clock,
                                 SyncCause cause, bool book) {
  Process& p = clock.owner();
  // A sync through a foreign domain would apply the wrong quantum policy
  // and book the switch against the wrong subsystem.
  require_member(p);
  const Time offset = clock.offset();
  if (book) {
    // Only the owning domain's entry is touched per event; the
    // kernel-wide aggregate is folded from the domain entries when
    // stats() is read (the stale mark tells it to).
    ctx.stats->sync_aggregates_stale = 1;
    DomainStats& domain_stats = ctx.stats->domains[id_];
    domain_stats.sync_requests++;
    if (offset.is_zero()) {
      domain_stats.syncs_elided++;
      return;
    }
    if (p.kind() == ProcessKind::Method) {
      Report::error("sync() called from method process '" + p.name() +
                    "' with a non-zero local offset; use "
                    "method_sync_trigger() instead");
    }
    domain_stats.syncs_by_cause[static_cast<std::size_t>(cause)]++;
  } else {
    if (offset.is_zero()) {
      return;
    }
    if (p.kind() == ProcessKind::Method) {
      Report::error("sync() called from method process '" + p.name() +
                    "' with a non-zero local offset; use "
                    "method_sync_trigger() instead");
    }
  }
  clock.set_offset(Time{});
  kernel_.wait_for(p, offset);
}

void SyncDomain::perform_method_rearm(LocalClock& clock, SyncCause cause) {
  Process& p = clock.owner();
  if (p.kind() != ProcessKind::Method) {
    Report::error("method_sync_trigger() called from non-method process '" +
                  p.name() + "'");
  }
  const SyncContext ctx = kernel_.sync_context();
  if (ctx.process != &p) {
    Report::error("method_sync_trigger() invoked on the clock of process '" +
                  p.name() + "', which is not the currently executing process");
  }
  require_member(p);
  ctx.stats->sync_aggregates_stale = 1;
  DomainStats& domain_stats = ctx.stats->domains[id_];
  // A re-arm is a performed synchronization request (never elided), so it
  // counts on both sides of the requests == performed + elided invariant.
  domain_stats.sync_requests++;
  domain_stats.method_rearms++;
  domain_stats.syncs_by_cause[static_cast<std::size_t>(cause)]++;
  // next_trigger bumps the process's wake generation, so a previously
  // scheduled re-arm or timeout for this method can never fire stale.
  kernel_.next_trigger(clock.offset());
}

SyncDomain& current_sync_domain() {
  Kernel* k = Kernel::current();
  if (k == nullptr) {
    Report::error("temporal decoupling used outside of a running kernel");
  }
  return k->current_domain();
}

// --------------------------------------------------------------------------
// QuantumKeeper
// --------------------------------------------------------------------------

QuantumKeeper::QuantumKeeper(SyncDomain& domain)
    : kernel_(domain.kernel()), bound_domain_(&domain) {}

SyncDomain& QuantumKeeper::domain() const {
  return bound_domain_ != nullptr ? *bound_domain_ : kernel_.current_domain();
}

void QuantumKeeper::inc(Time duration) {
  domain().inc(duration);
}

Time QuantumKeeper::local_time() const {
  return domain().local_time_stamp();
}

bool QuantumKeeper::need_sync() const {
  return domain().needs_sync();
}

void QuantumKeeper::sync() {
  domain().sync(SyncCause::Quantum);
}

void QuantumKeeper::inc_and_sync_if_needed(Time duration) {
  domain().inc_and_sync_if_needed(duration, SyncCause::Quantum);
}

}  // namespace tdsim
