// The discrete-event scheduler: evaluate -> update -> delta-notify phases,
// timed notification queue, process dispatch. This is the SystemC-kernel
// substrate the paper's techniques run on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "kernel/event.h"
#include "kernel/process.h"
#include "kernel/stats.h"
#include "kernel/sync_domain.h"
#include "kernel/time.h"

namespace tdsim {

/// Implemented by primitive channels (e.g. Signal) that need the SystemC
/// evaluate/update two-phase protocol.
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;
  virtual void update() = 0;
};

/// Options for spawning a thread process.
struct ThreadOptions {
  std::size_t stack_size = 256 * 1024;
  bool dont_initialize = false;
  /// Synchronization domain the process joins; null resolves to the
  /// spawning module's default domain (Module::set_default_domain) or the
  /// kernel default domain.
  SyncDomain* domain = nullptr;
};

/// Options for spawning a method process.
struct MethodOptions {
  std::vector<Event*> sensitivity;
  bool dont_initialize = false;
  /// See ThreadOptions::domain.
  SyncDomain* domain = nullptr;
};

/// One simulation: owns processes, time, and the scheduler queues. Multiple
/// kernels may coexist (each test builds its own); the one currently inside
/// run() is reachable via Kernel::current() for SystemC-style free functions.
class Kernel {
 public:
  Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  // --- elaboration ---

  /// Spawns a stackful thread process. Runs at initialization unless
  /// opts.dont_initialize.
  Process* spawn_thread(std::string name, std::function<void()> body,
                        ThreadOptions opts = {});

  /// Spawns a run-to-completion method process with the given static
  /// sensitivity. Runs once at initialization unless opts.dont_initialize.
  Process* spawn_method(std::string name, std::function<void()> body,
                        MethodOptions opts = {});

  /// Adds an event to a method's static sensitivity list.
  void add_static_sensitivity(Process* method, Event& event);

  // --- simulation control ---

  /// Runs until no activity remains or `until` is reached (time is then
  /// left at `until`). May be called repeatedly to advance further.
  void run(Time until = Time::max());

  /// Requests the current run() to return after the current delta cycle.
  /// Callable from inside a process.
  void stop();

  /// Current global simulated date (sc_time_stamp analog).
  Time now() const { return now_; }

  std::uint64_t delta_count() const { return stats_.delta_cycles; }
  const KernelStats& stats() const { return stats_; }

  // --- synchronization domains ---

  /// Creates a new synchronization domain with its own quantum policy and
  /// per-cause sync statistics. Names must be unique within the kernel.
  /// Domains live as long as the kernel; processes join one at spawn time
  /// (ThreadOptions/MethodOptions::domain, Module::set_default_domain).
  SyncDomain& create_domain(std::string name, Time quantum = Time{});

  /// The kernel's default synchronization domain: quantum policy,
  /// current-process temporal-decoupling operations, and per-cause sync
  /// statistics. Processes spawned without an explicit domain belong to it,
  /// so a kernel that never calls create_domain() behaves exactly as a
  /// single-domain kernel.
  SyncDomain& sync_domain() { return *domains_.front(); }
  const SyncDomain& sync_domain() const { return *domains_.front(); }

  /// The domain of the currently executing process; from scheduler or
  /// elaboration context (no current process) it degenerates to the
  /// default domain. This is how channel code shared between domains
  /// (Smart FIFOs, gates, sockets) resolves the right policy for whoever
  /// is calling.
  SyncDomain& current_domain() {
    return current_process_ != nullptr ? current_process_->domain()
                                       : sync_domain();
  }

  /// All domains, in creation order; index 0 is the default domain.
  const std::vector<std::unique_ptr<SyncDomain>>& domains() const {
    return domains_;
  }

  /// The domain named `name`, or null.
  SyncDomain* find_domain(const std::string& name) const;

  /// The domain gating global progress: the one whose execution front
  /// (max local date over its live processes) is furthest behind. Null
  /// when no domain has a live process. run() names it in livelock
  /// diagnostics; benches read it to see which subsystem to relax.
  SyncDomain* lagging_domain() const;

  /// Moves `process` to `domain`. Only legal during elaboration (before
  /// the first run() initializes processes); reassigning later would
  /// tear a decoupled process away from the policy its offset was
  /// accumulated under.
  void assign_domain(Process& process, SyncDomain& domain);

  /// Convenience delegates for the *default* domain's quantum (TLM-2.0
  /// tlm_global_quantum analog). Zero disables quantum-driven decoupling.
  Time global_quantum() const { return sync_domain().quantum(); }
  void set_global_quantum(Time quantum) { sync_domain().set_quantum(quantum); }

  /// Safety valve against delta-cycle livelock (processes endlessly
  /// re-triggering each other without time advancing): when non-zero,
  /// run() raises a SimulationError after this many consecutive delta
  /// cycles at the same simulated date.
  void set_delta_cycle_limit(std::uint64_t limit) { delta_limit_ = limit; }

  /// The kernel currently executing run() on this OS thread, or null.
  static Kernel* current();

  /// The simulation process currently executing, or null (e.g. during
  /// elaboration or from the scheduler itself).
  Process* current_process() const { return current_process_; }

  // --- process-facing API (called from inside processes) ---

  /// Suspends the current thread process for `duration` of simulated time.
  void wait(Time duration);

  /// Suspends the current thread process until `event` is notified.
  void wait(Event& event);

  /// Suspends until `event` or until `timeout` elapses; returns true when
  /// woken by the event, false on timeout.
  bool wait(Event& event, Time timeout);

  /// Yields the current thread process for one delta cycle.
  void wait_delta();

  /// Arms a one-shot dynamic trigger for the current method process,
  /// overriding its static sensitivity for the next activation.
  void next_trigger(Event& event);
  void next_trigger(Time delay);

  // --- channel-facing API ---

  /// Requests listener->update() at the end of the current evaluation
  /// phase. Deduplication is the caller's responsibility.
  void request_update(UpdateListener* listener);

  /// All processes, in spawn order.
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  friend class Event;
  friend class Process;
  friend class SyncDomain;  // keeps the sync books in stats_

  struct TimedEntry {
    Time when;
    std::uint64_t seq;
    enum class Kind { EventFire, ProcessResume } kind;
    Event* event = nullptr;
    std::uint64_t event_generation = 0;
    Process* process = nullptr;
    std::uint64_t process_generation = 0;

    bool operator>(const TimedEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool is_stale(const TimedEntry& entry) const;
  /// Bumps the process's wake generation, keeping the stale-entry count
  /// exact when a live timed resume entry gets invalidated.
  void bump_wake_generation(Process& p);
  /// Called by Event when a pending timed notification is superseded or
  /// cancelled, leaving its queue entry stale.
  void note_timed_event_stale() { timed_stale_count_++; }
  /// Called by ~Event while the event is still valid: removes every queue
  /// entry referring to it, so no is_stale() call can ever dereference a
  /// destroyed event.
  void purge_timed_event_entries(Event& e);
  /// Rebuilds timed_queue_ without stale entries once they outnumber the
  /// live ones (lazy deletion would otherwise grow the queue unboundedly
  /// under cancel/supersede-heavy workloads).
  void maybe_compact_timed_queue();
  void check_domain_delta_limits();
  void initialize_processes();
  void dispatch(Process* p);
  void dispatch_thread(Process* p);
  void dispatch_method(Process* p);
  void make_runnable(Process* p);
  void trigger_event(Event& e);
  void yield_current_thread();
  Process* require_thread(const char* what) const;
  Process* require_method(const char* what) const;
  void schedule_event_fire(Event& e, Time at);
  void schedule_process_resume(Process& p, Time at);
  void cancel_dynamic_wait(Process& p);
  void kill_all_threads();
  void run_update_phase();
  void fire_delta_notifications();

  Time now_;
  /// Domain registry; [0] is the default domain, created in the
  /// constructor. unique_ptr keeps SyncDomain addresses stable across
  /// create_domain() calls (processes and channels hold raw pointers).
  std::vector<std::unique_ptr<SyncDomain>> domains_;
  std::uint64_t delta_limit_ = 0;
  std::uint64_t deltas_at_current_date_ = 0;
  KernelStats stats_;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t next_timed_seq_ = 0;
  /// Exact count of stale (cancelled/superseded) entries currently inside
  /// timed_queue_, except for entries orphaned by process kills at
  /// teardown; drives compaction.
  std::size_t timed_stale_count_ = 0;
  bool initialized_ = false;
  bool stop_requested_ = false;
  /// True once any domain ever armed a per-domain delta-cycle limit; the
  /// scheduler skips the per-domain delta bookkeeping while false.
  bool domain_delta_limits_enabled_ = false;

  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> runnable_;
  std::vector<std::pair<Event*, std::uint64_t>> delta_notifications_;
  std::vector<Process*> delta_resume_;
  std::vector<UpdateListener*> update_requests_;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>,
                      std::greater<TimedEntry>>
      timed_queue_;

  Process* current_process_ = nullptr;
  ucontext_t scheduler_context_{};

  // --- AddressSanitizer fiber bookkeeping (see fiber_sanitizer.h) ---
  /// Scheduler (OS thread) stack bounds, learned each time a fiber resumes
  /// and reports where it came from; used when switching back.
  const void* scheduler_stack_bottom_ = nullptr;
  std::size_t scheduler_stack_size_ = 0;
  /// ASan fake-stack handle saved while the scheduler stack is switched
  /// away from.
  void* scheduler_fake_stack_ = nullptr;
};

/// Free-function conveniences mirroring SystemC's global wait()/time API.
/// They operate on Kernel::current() and therefore only work from inside a
/// running simulation.
void wait(Time duration);
void wait(Event& event);
bool wait(Event& event, Time timeout);
void wait_delta();
void next_trigger(Event& event);
void next_trigger(Time delay);
Time sim_time_stamp();

}  // namespace tdsim
