// Consolidated kernel construction surface: KernelConfig for the kernel
// itself, DomainOptions for synchronization domains.
//
// This header is the single resolution point for every TDSIM_* execution
// knob. Precedence, in one place so it cannot drift:
//
//   explicit config  >  environment variable  >  built-in default
//
// A KernelConfig field left as nullopt means "not specified here": the
// Kernel constructor fills it from the matching environment variable when
// one is set, else from the built-in default. A field set explicitly wins
// over the environment unconditionally (tests pin behavior this way, CI
// forces the suite parallel the other way). The environment variables:
//
//   TDSIM_WORKERS           -> KernelConfig::workers
//       Numeric worker count for parallel per-domain execution; 0/1 keep
//       the sequential scheduler.
//   TDSIM_ADAPTIVE_QUANTUM  -> KernelConfig::adaptive_quantum
//       Any value but "" and "0" seeds a default QuantumPolicy on every
//       domain at creation (DomainOptions::policy overrides per domain).
//   TDSIM_CHUNKED           -> KernelConfig::default_chunk_capacity
//       A number >= 2 is the chunk capacity every new channel adopts, "1"
//       or any other truthy value picks the default capacity (16),
//       unset/"0" keeps per-element mode.
//   TDSIM_QUANTUM_TRACE     -> KernelConfig::quantum_trace_depth
//       Numeric depth (>= 1) of every domain's adaptive-decision trace
//       ring (default kQuantumTraceDepth = 8).
//   TDSIM_WALL_LIMIT_MS     -> KernelConfig::wall_limit_ms
//       Wall-clock watchdog budget per run() call, in milliseconds;
//       unset/"0" disables the watchdog (the default).
//   TDSIM_STACK_POOL        -> KernelConfig::pooled_stacks
//       "0" falls back to the legacy per-process heap fiber stacks
//       (value-initialized make_unique<char[]>); anything else (and
//       unset) uses the pooled mmap allocator (kernel/stack_pool.h).
//       Execution-only: simulation results are identical in both modes
//       (bench_scale asserts this); the legacy mode exists as the
//       alloc-mode comparison baseline.
//   TDSIM_STACK_GUARD       -> KernelConfig::stack_guard
//       "0" disables the PROT_NONE guard page below each pooled fiber
//       stack; default on. Ignored in legacy heap mode (there is
//       nowhere to put a guard page in a malloc block -- that is the
//       bug the pool fixes).
//
// All of these are read by KernelConfig::from_env() and nowhere else; the
// legacy scattered getenv sites in the kernel are gone.
//
// Numeric variables are parsed strictly: trailing garbage ("4x"),
// values that overflow an unsigned 64-bit, and negative values are
// rejected with a Report warning naming the variable, and the knob falls
// back to the next layer of the precedence stack (empty string means
// "unset" -- silently ignored). TDSIM_CHUNKED keeps its documented
// any-truthy-value behavior, so garbage there still selects the default
// capacity (but numeric overflow warns and falls back to it too).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "kernel/quantum_controller.h"
#include "kernel/time.h"

namespace tdsim {

/// Kernel-wide execution knobs, all optional. Pass to Kernel(KernelConfig)
/// -- unset fields resolve from the environment, then from defaults (see
/// the header comment for the precedence contract). The resolved view is
/// readable back through Kernel::config().
///
/// Every knob here is *execution-only*: it changes how the simulation is
/// scheduled (worker count, chunking, adaptive control, trace depth,
/// lookahead windows), never what dates it computes -- the parallel
/// scheduler's bit-exactness guarantee. That is what makes snapshot
/// forking with per-fork config overrides sound (see kernel/snapshot.h).
struct KernelConfig {
  /// Worker threads for parallel per-domain execution (Kernel quota on
  /// the process-wide Scheduler). 0/1 = sequential. Default 0.
  std::optional<std::size_t> workers;

  /// Chunk capacity channels adopt at construction; 0/1 = per-element.
  /// Default 0.
  std::optional<std::size_t> default_chunk_capacity;

  /// Seed a default QuantumPolicy on every created domain. Default false.
  std::optional<bool> adaptive_quantum;

  /// Depth of the per-domain adaptive-decision trace ring (>= 1).
  /// Default kQuantumTraceDepth (8).
  std::optional<std::size_t> quantum_trace_depth;

  /// Max timed waves per free-running lookahead extension; 0 disables
  /// free-running. Default 64. (No environment variable.)
  std::optional<std::size_t> lookahead_limit;

  /// Kernel-wide delta-cycle livelock limit; 0 = unlimited. Default 0.
  /// (No environment variable.)
  std::optional<std::uint64_t> delta_cycle_limit;

  /// Wall-clock watchdog budget per run() call, in milliseconds; 0
  /// disables. Checked deterministically at synchronization horizons
  /// (delta and timed-wave boundaries): a trip raises WatchdogError and
  /// fails the kernel with a FailureReport naming the lagging domain and
  /// the lookahead bound in force, instead of hanging the fleet. The
  /// *decision to check* is deterministic; whether a given run trips
  /// obviously depends on the host. Override per call with
  /// RunOptions::wall_limit_ms.
  std::optional<std::uint64_t> wall_limit_ms;

  /// Fiber stacks come from the process-wide pooled mmap allocator
  /// (kernel/stack_pool.h): size-classed recycling, 16-byte-aligned
  /// stack tops, optional guard pages. false = legacy per-process heap
  /// stacks. Default true.
  std::optional<bool> pooled_stacks;

  /// Arm the PROT_NONE guard page below each pooled fiber stack so a
  /// stack overflow faults instead of corrupting a neighbour. Only
  /// meaningful with pooled_stacks. Default true.
  std::optional<bool> stack_guard;

  /// The environment layer of the precedence stack: a config whose fields
  /// are set exactly where the corresponding TDSIM_* variable is set (and
  /// parses). Kernel construction merges this *under* the explicit config.
  static KernelConfig from_env();

  /// `this` with unset fields filled from `fallback` -- the merge behind
  /// the precedence rule (explicit.resolved_over(from_env()) gives the
  /// env-or-explicit layer; the Kernel constructor applies the built-in
  /// defaults last).
  KernelConfig resolved_over(const KernelConfig& fallback) const;
};

/// Everything create_domain needs, in one struct -- replaces the
/// positional create_domain overloads and the post-hoc set_concurrent /
/// set_quantum_policy / set_delta_cycle_limit mutator dance:
///
///   kernel.create_domain({.name = "soc.cpu",
///                         .quantum = 10_ns,
///                         .concurrent = true,
///                         .policy = QuantumPolicy{}});
struct DomainOptions {
  /// Unique within the kernel. Required.
  std::string name;

  /// Synchronization quantum; zero disables quantum-driven decoupling.
  /// With a policy attached this seeds the adaptive starting point and is
  /// clamped into [policy.min_quantum, policy.max_quantum].
  Time quantum{};

  /// Seeds the domain's concurrency-group membership (see
  /// README "Parallel execution").
  bool concurrent = false;

  /// Adaptive quantum policy to attach at creation. nullopt still honors
  /// KernelConfig::adaptive_quantum's kernel-wide default seeding.
  std::optional<QuantumPolicy> policy;

  /// Per-domain delta-cycle livelock limit; 0 = inherit the kernel-wide
  /// limit only.
  std::uint64_t delta_cycle_limit = 0;
};

}  // namespace tdsim
