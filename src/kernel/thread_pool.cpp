#include "kernel/thread_pool.h"

#include <utility>

namespace tdsim {

ThreadPool::ThreadPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::submit(TaskFn fn, void* arg) {
  if (threads_.empty()) {
    fn(arg);  // degenerate pool: run inline
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.emplace_back(fn, arg);
  }
  work_cv_.notify_one();
}

std::uint64_t ThreadPool::help_until_idle() {
  std::uint64_t stolen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!queue_.empty()) {
      const auto [fn, arg] = queue_.front();
      queue_.pop_front();
      busy_++;
      lock.unlock();
      fn(arg);
      lock.lock();
      busy_--;
      stolen++;
      if (queue_.empty() && busy_ == 0) {
        idle_cv_.notify_all();
      }
      continue;
    }
    if (busy_ == 0) {
      return stolen;
    }
    idle_cv_.wait(lock, [this] { return !queue_.empty() || busy_ == 0; });
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // shutdown with nothing left to do
    }
    const auto [fn, arg] = queue_.front();
    queue_.pop_front();
    busy_++;
    lock.unlock();
    fn(arg);
    lock.lock();
    busy_--;
    if (queue_.empty() && busy_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace tdsim
