#include "kernel/kernel_config.h"

#include <cerrno>
#include <cstdlib>

#include "kernel/report.h"

namespace tdsim {

namespace {

/// Outcome of parsing one numeric TDSIM_* value. Unset (empty string)
/// silently falls through to the next precedence layer; Garbage and
/// Overflow are user mistakes and warn (see warn_rejected) -- the
/// pre-PR-10 parser dropped both on the floor, so TDSIM_WORKERS=4x ran
/// sequentially without a word and an out-of-range value silently
/// clamped to ULLONG_MAX.
enum class ParseStatus { Ok, Unset, Garbage, Overflow };

struct Parsed {
  ParseStatus status;
  std::uint64_t value = 0;
};

/// Strict base-10 parse of a whole environment value. Rejects trailing
/// garbage ("4x"), negatives (strtoull would silently wrap "-3" to a
/// huge count), and out-of-range values (strtoull clamps those to
/// ULLONG_MAX with errno=ERANGE, which the old parser never checked).
Parsed parse_number(const char* s) {
  if (s == nullptr || *s == '\0') {
    return {ParseStatus::Unset};
  }
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '-') {
      return {ParseStatus::Garbage};
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return {ParseStatus::Garbage};
  }
  if (errno == ERANGE) {
    return {ParseStatus::Overflow};
  }
  return {ParseStatus::Ok, static_cast<std::uint64_t>(value)};
}

void warn_rejected(const char* var, const char* value, ParseStatus status) {
  Report::warning(std::string(var) + "=\"" + value + "\" " +
                  (status == ParseStatus::Overflow
                       ? "is out of range"
                       : "is not a number") +
                  "; ignoring it");
}

/// The numeric value of `var`, or nullopt when unset/empty (silent) or
/// rejected (warned): the knob then resolves from the next layer of the
/// precedence stack.
std::optional<std::uint64_t> checked_number(const char* var,
                                            const char* value) {
  const Parsed parsed = parse_number(value);
  switch (parsed.status) {
    case ParseStatus::Ok:
      return parsed.value;
    case ParseStatus::Unset:
      return std::nullopt;
    case ParseStatus::Garbage:
    case ParseStatus::Overflow:
      warn_rejected(var, value, parsed.status);
      return std::nullopt;
  }
  return std::nullopt;
}

bool truthy(const char* s) {
  return s != nullptr && s[0] != '\0' && std::string(s) != "0";
}

}  // namespace

KernelConfig KernelConfig::from_env() {
  KernelConfig config;
  if (const char* env = std::getenv("TDSIM_WORKERS")) {
    if (const auto n = checked_number("TDSIM_WORKERS", env)) {
      config.workers = static_cast<std::size_t>(*n);
    }
  }
  if (const char* env = std::getenv("TDSIM_ADAPTIVE_QUANTUM")) {
    config.adaptive_quantum = truthy(env);
  }
  if (const char* env = std::getenv("TDSIM_CHUNKED")) {
    constexpr std::size_t kDefaultChunkCapacity = 16;
    const Parsed parsed = parse_number(env);
    switch (parsed.status) {
      case ParseStatus::Ok:
        if (parsed.value >= 2) {
          config.default_chunk_capacity =
              static_cast<std::size_t>(parsed.value);
        } else if (parsed.value == 1) {
          config.default_chunk_capacity = kDefaultChunkCapacity;
        } else {
          config.default_chunk_capacity = 0;
        }
        break;
      case ParseStatus::Unset:
        break;
      case ParseStatus::Garbage:
        // Documented: any truthy non-numeric value selects the default
        // capacity ("TDSIM_CHUNKED=on"). Not a parse error.
        config.default_chunk_capacity = kDefaultChunkCapacity;
        break;
      case ParseStatus::Overflow:
        // A number was clearly intended; warn, then honor the truthy
        // intent with the default capacity.
        warn_rejected("TDSIM_CHUNKED", env, parsed.status);
        config.default_chunk_capacity = kDefaultChunkCapacity;
        break;
    }
  }
  if (const char* env = std::getenv("TDSIM_QUANTUM_TRACE")) {
    if (const auto n = checked_number("TDSIM_QUANTUM_TRACE", env)) {
      if (*n >= 1) {
        config.quantum_trace_depth = static_cast<std::size_t>(*n);
      } else {
        Report::warning(
            "TDSIM_QUANTUM_TRACE=\"0\" rejected: the trace ring needs a "
            "depth >= 1; ignoring it");
      }
    }
  }
  if (const char* env = std::getenv("TDSIM_WALL_LIMIT_MS")) {
    if (const auto n = checked_number("TDSIM_WALL_LIMIT_MS", env)) {
      config.wall_limit_ms = *n;
    }
  }
  if (const char* env = std::getenv("TDSIM_STACK_POOL")) {
    config.pooled_stacks = truthy(env);
  }
  if (const char* env = std::getenv("TDSIM_STACK_GUARD")) {
    config.stack_guard = truthy(env);
  }
  return config;
}

KernelConfig KernelConfig::resolved_over(const KernelConfig& fallback) const {
  KernelConfig merged = *this;
  if (!merged.workers) merged.workers = fallback.workers;
  if (!merged.default_chunk_capacity) {
    merged.default_chunk_capacity = fallback.default_chunk_capacity;
  }
  if (!merged.adaptive_quantum) {
    merged.adaptive_quantum = fallback.adaptive_quantum;
  }
  if (!merged.quantum_trace_depth) {
    merged.quantum_trace_depth = fallback.quantum_trace_depth;
  }
  if (!merged.lookahead_limit) merged.lookahead_limit = fallback.lookahead_limit;
  if (!merged.delta_cycle_limit) {
    merged.delta_cycle_limit = fallback.delta_cycle_limit;
  }
  if (!merged.wall_limit_ms) {
    merged.wall_limit_ms = fallback.wall_limit_ms;
  }
  if (!merged.pooled_stacks) merged.pooled_stacks = fallback.pooled_stacks;
  if (!merged.stack_guard) merged.stack_guard = fallback.stack_guard;
  return merged;
}

}  // namespace tdsim
