// Simulation events with SystemC notification semantics: immediate, delta,
// and timed notification, with at most one pending notification per event
// (an earlier notification overrides a later one).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.h"

namespace tdsim {

class Kernel;
class Process;

class Event {
 public:
  explicit Event(Kernel& kernel, std::string name = {});
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event();

  /// Immediate notification: waiting processes become runnable in the
  /// current evaluation phase. Overrides (cancels) any pending notification.
  void notify();

  /// Delta notification: waiting processes run in the next delta cycle.
  void notify_delta();

  /// Timed notification after `delay` (delta if zero). Ignored if an
  /// earlier-or-equal notification is already pending.
  void notify(Time delay);

  /// Cancels any pending (delta or timed) notification.
  void cancel();

  bool has_pending_notification() const { return pending_ != Pending::None; }

  /// Absolute date of the pending timed notification (only meaningful when
  /// a timed notification is pending).
  Time pending_notification_date() const { return pending_at_; }

  const std::string& name() const { return name_; }
  Kernel& kernel() const { return kernel_; }

  /// Declares that this event may be notified by processes of a different
  /// concurrency group than the one its waiters belong to (the
  /// one-notifier/static-waiter relay pattern lookahead-decoupled models
  /// use, see README "Parallel execution"). The conservative-lookahead
  /// scheduler then never fires this event inside a group's free-running
  /// extension -- its timed firings clamp the waiter group's window and
  /// happen at a global wave, where the notifying group is quiescent.
  /// Elaboration-time only.
  void set_cross_group_notified(bool cross) { cross_group_notified_ = cross; }
  bool cross_group_notified() const { return cross_group_notified_; }

 private:
  friend class Kernel;
  friend class Process;

  enum class Pending { None, Delta, Timed };

  Kernel& kernel_;
  std::string name_;

  /// Methods statically sensitive to this event (permanent).
  std::vector<Process*> static_waiters_;
  /// Processes dynamically waiting (thread wait / method next_trigger);
  /// cleared each time the event is triggered.
  std::vector<Process*> dynamic_waiters_;

  Pending pending_ = Pending::None;
  Time pending_at_;
  /// See set_cross_group_notified().
  bool cross_group_notified_ = false;
  /// Bumped on cancel/override; invalidates scheduled delta/timed firings.
  std::uint64_t generation_ = 0;
  /// Entries in the kernel's timed queue still referring to this event
  /// (live or stale). Non-zero at destruction makes ~Event purge them, so
  /// the scheduler never dereferences a destroyed event.
  std::uint32_t queued_timed_entries_ = 0;
};

}  // namespace tdsim
