// Additional payload-event-queue behaviors: stress ordering with many
// producers, event re-arming when payloads sit in the future, method-based
// consumption (the router usage pattern), and interaction with the
// get-side racing the notify-side.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/peq.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

TEST(PeqExtra, ManyProducersDrainInDateOrder) {
  Kernel kernel;
  PeqWithGet<int> peq(kernel, "peq");
  std::vector<std::pair<Time, int>> delivered;

  for (int p = 0; p < 4; ++p) {
    kernel.spawn_thread("producer" + std::to_string(p), [&, p] {
      std::mt19937 rng(p * 1234 + 5);
      std::uniform_int_distribution<std::uint64_t> delay(1, 40);
      for (int i = 0; i < 25; ++i) {
        wait(Time(delay(rng), TimeUnit::NS));
        peq.notify(p * 100 + i, Time(delay(rng), TimeUnit::NS));
      }
    });
  }
  MethodOptions opts;
  opts.sensitivity.push_back(&peq.get_event());
  opts.dont_initialize = true;
  kernel.spawn_method(
      "consumer",
      [&] {
        while (auto payload = peq.get_next()) {
          delivered.emplace_back(kernel.now(), *payload);
        }
      },
      opts);
  kernel.run();

  ASSERT_EQ(delivered.size(), 100u);
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_LE(delivered[i - 1].first, delivered[i].first);
  }
  EXPECT_EQ(peq.pending(), 0u);
}

TEST(PeqExtra, GetNextReArmsEventForFuturePayload) {
  // A consumer polling too early must be woken again exactly at the
  // payload's date, even if the original notification already fired.
  Kernel kernel;
  PeqWithGet<int> peq(kernel, "peq");
  std::vector<Time> attempts;
  bool got = false;

  kernel.spawn_thread("producer", [&] {
    peq.notify(7, 100_ns);
    peq.notify(8, 10_ns);  // earlier payload wakes the consumer first
  });
  MethodOptions opts;
  opts.sensitivity.push_back(&peq.get_event());
  opts.dont_initialize = true;
  kernel.spawn_method(
      "consumer",
      [&] {
        attempts.push_back(kernel.now());
        while (auto payload = peq.get_next()) {
          got = *payload == 7;
        }
      },
      opts);
  kernel.run();
  EXPECT_TRUE(got);
  // Woken at 10 ns (payload 8), then re-armed and woken at 100 ns.
  ASSERT_GE(attempts.size(), 2u);
  EXPECT_EQ(attempts.front(), Time(10, TimeUnit::NS));
  EXPECT_EQ(attempts.back(), Time(100, TimeUnit::NS));
}

TEST(PeqExtra, PendingCountsQueuedPayloads) {
  Kernel kernel;
  PeqWithGet<int> peq(kernel, "peq");
  kernel.spawn_thread("t", [&] {
    peq.notify(1, 5_ns);
    peq.notify(2, 15_ns);
    EXPECT_EQ(peq.pending(), 2u);
    wait(20_ns);
    EXPECT_TRUE(peq.get_next().has_value());
    EXPECT_EQ(peq.pending(), 1u);
    EXPECT_TRUE(peq.get_next().has_value());
    EXPECT_EQ(peq.pending(), 0u);
    EXPECT_FALSE(peq.get_next().has_value());
  });
  kernel.run();
}

TEST(PeqExtra, ZeroDelayBatchAllRetrievableSameDelta) {
  Kernel kernel;
  PeqWithGet<int> peq(kernel, "peq");
  int drained = 0;
  kernel.spawn_thread("producer", [&] {
    wait(5_ns);
    for (int i = 0; i < 10; ++i) {
      peq.notify(i);
    }
  });
  MethodOptions opts;
  opts.sensitivity.push_back(&peq.get_event());
  opts.dont_initialize = true;
  kernel.spawn_method(
      "consumer",
      [&] {
        while (peq.get_next().has_value()) {
          drained++;
        }
        EXPECT_EQ(kernel.now(), Time(5, TimeUnit::NS));
      },
      opts);
  kernel.run();
  EXPECT_EQ(drained, 10);
}

TEST(PeqExtra, ThreadConsumerWithEventWait) {
  // The thread-side consumption pattern (wait on get_event, then drain).
  Kernel kernel;
  PeqWithGet<int> peq(kernel, "peq");
  std::vector<int> got;
  kernel.spawn_thread("producer", [&] {
    wait(3_ns);
    peq.notify(1, 7_ns);   // due at 10 ns
    wait(17_ns);           // t = 20 ns
    peq.notify(2, 30_ns);  // due at 50 ns
  });
  kernel.spawn_thread("consumer", [&] {
    while (got.size() < 2) {
      if (auto payload = peq.get_next()) {
        got.push_back(*payload);
        continue;
      }
      wait(peq.get_event());
    }
    EXPECT_EQ(sim_time_stamp(), Time(50, TimeUnit::NS));
  });
  kernel.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(got[1], 2);
}

}  // namespace
}  // namespace tdsim
