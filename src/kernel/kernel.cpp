#include "kernel/kernel.h"

#include <algorithm>
#include <utility>

#include "kernel/fiber_sanitizer.h"
#include "kernel/report.h"

namespace tdsim {

namespace {
thread_local Kernel* g_current_kernel = nullptr;

Kernel& current_kernel_checked() {
  if (g_current_kernel == nullptr) {
    Report::error("tdsim free function called outside of a running kernel");
  }
  return *g_current_kernel;
}
}  // namespace

Kernel::Kernel() {
  // The default domain always exists, so single-domain code never has to
  // know domains do.
  domains_.emplace_back(new SyncDomain(*this, "default", 0, Time{}));
  stats_.domains.emplace_back();
  stats_.domains.back().name = "default";
}

Kernel::~Kernel() {
  kill_all_threads();
}

Kernel* Kernel::current() {
  return g_current_kernel;
}

// --------------------------------------------------------------------------
// Synchronization domains
// --------------------------------------------------------------------------

SyncDomain& Kernel::create_domain(std::string name, Time quantum) {
  if (find_domain(name) != nullptr) {
    Report::error("Kernel::create_domain: domain '" + name +
                  "' already exists");
  }
  const std::size_t id = domains_.size();
  domains_.emplace_back(new SyncDomain(*this, name, id, quantum));
  stats_.domains.emplace_back();
  stats_.domains.back().name = std::move(name);
  return *domains_.back();
}

SyncDomain* Kernel::find_domain(const std::string& name) const {
  for (const auto& domain : domains_) {
    if (domain->name() == name) {
      return domain.get();
    }
  }
  return nullptr;
}

SyncDomain* Kernel::lagging_domain() const {
  SyncDomain* lagging = nullptr;
  Time lagging_front;
  for (const auto& domain : domains_) {
    const std::optional<Time> front = domain->execution_front();
    if (!front.has_value()) {
      continue;
    }
    if (lagging == nullptr || *front < lagging_front) {
      lagging = domain.get();
      lagging_front = *front;
    }
  }
  return lagging;
}

void Kernel::assign_domain(Process& process, SyncDomain& domain) {
  if (&process.kernel() != this || &domain.kernel() != this) {
    Report::error("Kernel::assign_domain: process '" + process.name() +
                  "' and domain '" + domain.name() +
                  "' must both belong to this kernel");
  }
  if (initialized_) {
    Report::error("Kernel::assign_domain: cannot move process '" +
                  process.name() + "' to domain '" + domain.name() +
                  "' after elaboration; domain membership is fixed once "
                  "the first run() has initialized processes");
  }
  if (process.domain_ == &domain) {
    return;
  }
  auto& members = process.domain_->members_;
  members.erase(std::remove(members.begin(), members.end(), &process),
                members.end());
  process.domain_ = &domain;
  domain.members_.push_back(&process);
}

// --------------------------------------------------------------------------
// Elaboration
// --------------------------------------------------------------------------

namespace {

/// Validates an explicit spawn-time domain and falls back to the default.
SyncDomain& resolve_spawn_domain(Kernel& kernel, SyncDomain* requested,
                                 const std::string& process_name) {
  if (requested == nullptr) {
    return kernel.sync_domain();
  }
  if (&requested->kernel() != &kernel) {
    Report::error("process '" + process_name + "' spawned into domain '" +
                  requested->name() + "' of a different kernel");
  }
  return *requested;
}

}  // namespace

Process* Kernel::spawn_thread(std::string name, std::function<void()> body,
                              ThreadOptions opts) {
  auto process = std::unique_ptr<Process>(
      new Process(*this, std::move(name), ProcessKind::Thread, std::move(body),
                  opts.stack_size, next_process_id_++));
  process->dont_initialize_ = opts.dont_initialize;
  process->domain_ = &resolve_spawn_domain(*this, opts.domain,
                                           process->name());
  process->domain_->members_.push_back(process.get());
  Process* raw = process.get();
  processes_.push_back(std::move(process));
  stats_.processes_spawned++;
  if (initialized_ && !raw->dont_initialize_) {
    make_runnable(raw);  // dynamically spawned: runs in the current phase
  }
  return raw;
}

Process* Kernel::spawn_method(std::string name, std::function<void()> body,
                              MethodOptions opts) {
  auto process = std::unique_ptr<Process>(
      new Process(*this, std::move(name), ProcessKind::Method, std::move(body),
                  0, next_process_id_++));
  process->dont_initialize_ = opts.dont_initialize;
  process->domain_ = &resolve_spawn_domain(*this, opts.domain,
                                           process->name());
  process->domain_->members_.push_back(process.get());
  Process* raw = process.get();
  processes_.push_back(std::move(process));
  stats_.processes_spawned++;
  for (Event* e : opts.sensitivity) {
    add_static_sensitivity(raw, *e);
  }
  if (initialized_ && !raw->dont_initialize_) {
    make_runnable(raw);
  }
  return raw;
}

void Kernel::add_static_sensitivity(Process* method, Event& event) {
  if (method->kind() != ProcessKind::Method) {
    Report::error("static sensitivity is only supported for method processes");
  }
  event.static_waiters_.push_back(method);
  method->static_sensitivity_.push_back(&event);
}

// --------------------------------------------------------------------------
// Scheduling core
// --------------------------------------------------------------------------

void Kernel::make_runnable(Process* p) {
  if (p->in_runnable_ || p->state_ == ProcessState::Terminated) {
    return;
  }
  p->in_runnable_ = true;
  p->domain_->runnable_count_++;
  if (p->state_ == ProcessState::Waiting) {
    p->state_ = ProcessState::Ready;
  }
  runnable_.push_back(p);
}

void Kernel::bump_wake_generation(Process& p) {
  p.wake_generation_++;
  if (p.has_live_resume_entry_) {
    // The entry scheduled under the previous generation is now stale.
    p.has_live_resume_entry_ = false;
    timed_stale_count_++;
  }
}

void Kernel::trigger_event(Event& e) {
  stats_.event_triggers++;
  for (Process* m : e.static_waiters_) {
    if (!m->trigger_override_) {
      make_runnable(m);
    }
  }
  // Move the dynamic list out first: woken processes may immediately wait on
  // this very event again (from a method re-arming next_trigger).
  std::vector<Process*> waiters = std::move(e.dynamic_waiters_);
  e.dynamic_waiters_.clear();
  for (Process* p : waiters) {
    p->waiting_event_ = nullptr;
    p->trigger_override_ = false;
    p->woke_by_event_ = true;
    bump_wake_generation(*p);  // invalidate a pending timeout, if any
    make_runnable(p);
  }
}

void Kernel::schedule_event_fire(Event& e, Time at) {
  TimedEntry entry;
  entry.when = at;
  entry.seq = next_timed_seq_++;
  entry.kind = TimedEntry::Kind::EventFire;
  entry.event = &e;
  entry.event_generation = e.generation_;
  e.queued_timed_entries_++;
  timed_queue_.push(entry);
  maybe_compact_timed_queue();
}

void Kernel::purge_timed_event_entries(Event& e) {
  if (e.queued_timed_entries_ == 0) {
    return;
  }
  std::vector<TimedEntry> keep;
  keep.reserve(timed_queue_.size());
  while (!timed_queue_.empty()) {
    const TimedEntry& top = timed_queue_.top();
    if (top.kind == TimedEntry::Kind::EventFire && top.event == &e) {
      // Superseded entries were counted stale; the live one was not.
      if (is_stale(top) && timed_stale_count_ > 0) {
        timed_stale_count_--;
      }
    } else {
      keep.push_back(top);
    }
    timed_queue_.pop();
  }
  timed_queue_ = decltype(timed_queue_)(std::greater<TimedEntry>{},
                                        std::move(keep));
  e.queued_timed_entries_ = 0;
}

void Kernel::schedule_process_resume(Process& p, Time at) {
  TimedEntry entry;
  entry.when = at;
  entry.seq = next_timed_seq_++;
  entry.kind = TimedEntry::Kind::ProcessResume;
  entry.process = &p;
  entry.process_generation = p.wake_generation_;
  p.has_live_resume_entry_ = true;
  timed_queue_.push(entry);
  maybe_compact_timed_queue();
}

void Kernel::maybe_compact_timed_queue() {
  // Compact when stale entries outnumber live ones; the size floor keeps
  // small queues on the cheap lazy-deletion path.
  constexpr std::size_t kMinSizeForCompaction = 64;
  if (timed_queue_.size() < kMinSizeForCompaction ||
      timed_stale_count_ * 2 <= timed_queue_.size()) {
    return;
  }
  std::vector<TimedEntry> live;
  live.reserve(timed_queue_.size() - timed_stale_count_);
  while (!timed_queue_.empty()) {
    const TimedEntry& top = timed_queue_.top();
    if (!is_stale(top)) {
      live.push_back(top);
    } else if (top.kind == TimedEntry::Kind::EventFire) {
      top.event->queued_timed_entries_--;
    }
    timed_queue_.pop();
  }
  timed_queue_ = decltype(timed_queue_)(std::greater<TimedEntry>{},
                                        std::move(live));
  timed_stale_count_ = 0;
  stats_.timed_queue_compactions++;
}

bool Kernel::is_stale(const TimedEntry& entry) const {
  switch (entry.kind) {
    case TimedEntry::Kind::EventFire:
      return entry.event->pending_ != Event::Pending::Timed ||
             entry.event->generation_ != entry.event_generation;
    case TimedEntry::Kind::ProcessResume:
      return entry.process->wake_generation_ != entry.process_generation ||
             entry.process->state_ == ProcessState::Terminated;
  }
  return true;
}

void Kernel::initialize_processes() {
  initialized_ = true;
  for (const auto& p : processes_) {
    if (!p->dont_initialize_) {
      make_runnable(p.get());
    }
  }
}

void Kernel::run_update_phase() {
  // Updates may request further updates (rare); process until drained.
  while (!update_requests_.empty()) {
    std::vector<UpdateListener*> batch = std::move(update_requests_);
    update_requests_.clear();
    for (UpdateListener* listener : batch) {
      listener->update();
    }
  }
}

void Kernel::fire_delta_notifications() {
  std::vector<std::pair<Event*, std::uint64_t>> batch =
      std::move(delta_notifications_);
  delta_notifications_.clear();
  for (auto& [event, generation] : batch) {
    if (event->pending_ == Event::Pending::Delta &&
        event->generation_ == generation) {
      event->pending_ = Event::Pending::None;
      trigger_event(*event);
    }
  }
}

void Kernel::run(Time until) {
  if (current_process_ != nullptr) {
    Report::error("Kernel::run() called from inside a simulation process");
  }
  Kernel* previous = std::exchange(g_current_kernel, this);
  stop_requested_ = false;
  if (!initialized_) {
    initialize_processes();
  }
  try {
    while (!stop_requested_) {
      // Evaluation phase.
      while (!runnable_.empty()) {
        Process* p = runnable_.front();
        runnable_.pop_front();
        p->in_runnable_ = false;
        p->domain_->runnable_count_--;
        if (p->state_ == ProcessState::Terminated) {
          continue;
        }
        dispatch(p);
        if (stop_requested_) {
          break;
        }
      }
      if (stop_requested_) {
        break;
      }
      // Update phase.
      run_update_phase();
      // Delta-notification phase.
      if (!delta_notifications_.empty() || !delta_resume_.empty()) {
        stats_.delta_cycles++;
        if (delta_limit_ != 0 && ++deltas_at_current_date_ > delta_limit_) {
          const SyncDomain* lagging = lagging_domain();
          Report::error("delta-cycle limit (" + std::to_string(delta_limit_) +
                        ") exceeded at date " + now_.to_string() +
                        (lagging != nullptr
                             ? " (lagging domain: '" + lagging->name() + "')"
                             : std::string()) +
                        "; livelocked model?");
        }
        for (Process* p : std::exchange(delta_resume_, {})) {
          if (p->state_ != ProcessState::Terminated) {
            make_runnable(p);
          }
        }
        fire_delta_notifications();
        check_domain_delta_limits();
        continue;
      }
      // Timed-notification phase. Drop stale entries (cancelled or
      // superseded notifications) first so they never advance time.
      while (!timed_queue_.empty() && is_stale(timed_queue_.top())) {
        const TimedEntry& top = timed_queue_.top();
        if (top.kind == TimedEntry::Kind::EventFire) {
          top.event->queued_timed_entries_--;
        }
        timed_queue_.pop();
        if (timed_stale_count_ > 0) {
          timed_stale_count_--;
        }
      }
      if (timed_queue_.empty()) {
        break;
      }
      const Time next = timed_queue_.top().when;
      if (next > until) {
        now_ = until;
        break;
      }
      now_ = next;
      deltas_at_current_date_ = 0;
      if (domain_delta_limits_enabled_) {
        for (const auto& domain : domains_) {
          domain->deltas_at_current_date_ = 0;
        }
      }
      stats_.timed_waves++;
      stats_.delta_cycles++;
      while (!timed_queue_.empty() && timed_queue_.top().when == now_) {
        TimedEntry entry = timed_queue_.top();
        timed_queue_.pop();
        if (entry.kind == TimedEntry::Kind::EventFire) {
          entry.event->queued_timed_entries_--;
        }
        if (is_stale(entry)) {
          if (timed_stale_count_ > 0) {
            timed_stale_count_--;
          }
          continue;
        }
        switch (entry.kind) {
          case TimedEntry::Kind::EventFire:
            entry.event->pending_ = Event::Pending::None;
            trigger_event(*entry.event);
            break;
          case TimedEntry::Kind::ProcessResume:
            cancel_dynamic_wait(*entry.process);
            entry.process->woke_by_event_ = false;
            // The live entry is the one being consumed right now, so the
            // generation bump must not count it stale.
            entry.process->has_live_resume_entry_ = false;
            entry.process->wake_generation_++;
            make_runnable(entry.process);
            break;
        }
      }
      check_domain_delta_limits();
    }
  } catch (...) {
    g_current_kernel = previous;
    throw;
  }
  g_current_kernel = previous;
}

void Kernel::stop() {
  stop_requested_ = true;
}

void Kernel::dispatch(Process* p) {
  p->activation_count_++;
  if (p->kind() == ProcessKind::Thread) {
    dispatch_thread(p);
  } else {
    dispatch_method(p);
  }
}

void Kernel::dispatch_thread(Process* p) {
  stats_.context_switches++;
  if (!p->thread_started_) {
    p->start_thread_context(&scheduler_context_);
  }
  p->state_ = ProcessState::Running;
  Process* previous = std::exchange(current_process_, p);
  fiber::start_switch(&scheduler_fake_stack_, p->stack_.get(),
                      p->stack_size_);
  swapcontext(&scheduler_context_, &p->context_);
  fiber::finish_switch(scheduler_fake_stack_, nullptr, nullptr);
  current_process_ = previous;
  if (p->pending_exception_) {
    std::exception_ptr ex = std::exchange(p->pending_exception_, nullptr);
    std::rethrow_exception(ex);
  }
}

void Kernel::dispatch_method(Process* p) {
  stats_.method_activations++;
  // The next_trigger override is consumed by this activation: unless the
  // body re-arms one, the method falls back to its static sensitivity
  // (SystemC semantics). The event-trigger path already cleared it; the
  // timed-resume path relies on this reset.
  p->trigger_override_ = false;
  // A method activation starts synchronized: its local date is the global
  // date at which it was triggered. inc() may then advance it within the
  // activation (used by packetizing network interfaces, paper SIV.C).
  p->clock_.set_offset(Time{});
  p->state_ = ProcessState::Running;
  Process* previous = std::exchange(current_process_, p);
  try {
    p->body_();
  } catch (...) {
    current_process_ = previous;
    p->state_ = ProcessState::Terminated;
    throw;
  }
  current_process_ = previous;
  if (p->state_ == ProcessState::Running) {
    // A method is perpetually waiting on its (static or overridden)
    // sensitivity between activations.
    p->state_ = ProcessState::Waiting;
  }
}

void Kernel::yield_current_thread() {
  Process* p = current_process_;
  fiber::start_switch(&p->fake_stack_, scheduler_stack_bottom_,
                      scheduler_stack_size_);
  swapcontext(&p->context_, &scheduler_context_);
  // Resumed (we came from the scheduler stack; refresh its bounds).
  fiber::finish_switch(p->fake_stack_, &scheduler_stack_bottom_,
                       &scheduler_stack_size_);
  // If the kernel is tearing down, unwind this stack now.
  if (p->kill_requested_) {
    throw ProcessKilled{};
  }
}

Process* Kernel::require_thread(const char* what) const {
  if (current_process_ == nullptr ||
      current_process_->kind() != ProcessKind::Thread) {
    Report::error(std::string(what) +
                  " may only be called from a thread process");
  }
  return current_process_;
}

Process* Kernel::require_method(const char* what) const {
  if (current_process_ == nullptr ||
      current_process_->kind() != ProcessKind::Method) {
    Report::error(std::string(what) +
                  " may only be called from a method process");
  }
  return current_process_;
}

// --------------------------------------------------------------------------
// Process-facing API
// --------------------------------------------------------------------------

void Kernel::wait(Time duration) {
  Process* p = require_thread("wait(duration)");
  schedule_process_resume(*p, now_ + duration);
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
}

void Kernel::wait(Event& event) {
  Process* p = require_thread("wait(event)");
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
}

bool Kernel::wait(Event& event, Time timeout) {
  Process* p = require_thread("wait(event, timeout)");
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  schedule_process_resume(*p, now_ + timeout);
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
  return p->woke_by_event_;
}

void Kernel::wait_delta() {
  Process* p = require_thread("wait_delta()");
  delta_resume_.push_back(p);
  bump_wake_generation(*p);  // invalidate any stale timers
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
}

void Kernel::next_trigger(Event& event) {
  Process* p = require_method("next_trigger(event)");
  cancel_dynamic_wait(*p);     // last call wins
  bump_wake_generation(*p);    // cancel a pending next_trigger(delay)
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  p->trigger_override_ = true;
}

void Kernel::next_trigger(Time delay) {
  Process* p = require_method("next_trigger(delay)");
  cancel_dynamic_wait(*p);
  bump_wake_generation(*p);
  schedule_process_resume(*p, now_ + delay);
  p->trigger_override_ = true;
}

void Kernel::check_domain_delta_limits() {
  if (!domain_delta_limits_enabled_) {
    return;  // keep the no-limit default free on the scheduler hot path
  }
  for (const auto& domain : domains_) {
    if (domain->runnable_count_ == 0) {
      // Only *consecutive* delta activity counts toward the limit.
      domain->deltas_at_current_date_ = 0;
      continue;
    }
    domain->deltas_at_current_date_++;
    if (domain->delta_limit_ != 0 &&
        domain->deltas_at_current_date_ > domain->delta_limit_) {
      Report::error("domain '" + domain->name() + "' exceeded its "
                    "delta-cycle limit (" +
                    std::to_string(domain->delta_limit_) + ") at date " +
                    now_.to_string() + "; livelocked subsystem?");
    }
  }
}

void Kernel::cancel_dynamic_wait(Process& p) {
  if (p.waiting_event_ != nullptr) {
    auto& waiters = p.waiting_event_->dynamic_waiters_;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), &p),
                  waiters.end());
    p.waiting_event_ = nullptr;
  }
}

void Kernel::request_update(UpdateListener* listener) {
  update_requests_.push_back(listener);
}

void Kernel::kill_all_threads() {
  // Resume every suspended thread so ProcessKilled unwinds its stack and
  // destructors of stack objects run.
  for (const auto& p : processes_) {
    if (p->kind() == ProcessKind::Thread && p->thread_started_ &&
        p->state_ != ProcessState::Terminated) {
      p->kill_requested_ = true;
      Process* previous = std::exchange(current_process_, p.get());
      fiber::start_switch(&scheduler_fake_stack_, p->stack_.get(),
                          p->stack_size_);
      swapcontext(&scheduler_context_, &p->context_);
      fiber::finish_switch(scheduler_fake_stack_, nullptr, nullptr);
      current_process_ = previous;
      if (p->state_ != ProcessState::Terminated) {
        Report::warning("process " + p->name() +
                        " survived kill request; abandoning its stack");
      }
      p->pending_exception_ = nullptr;
    }
  }
}

// --------------------------------------------------------------------------
// Free functions
// --------------------------------------------------------------------------

void wait(Time duration) {
  current_kernel_checked().wait(duration);
}

void wait(Event& event) {
  current_kernel_checked().wait(event);
}

bool wait(Event& event, Time timeout) {
  return current_kernel_checked().wait(event, timeout);
}

void wait_delta() {
  current_kernel_checked().wait_delta();
}

void next_trigger(Event& event) {
  current_kernel_checked().next_trigger(event);
}

void next_trigger(Time delay) {
  current_kernel_checked().next_trigger(delay);
}

Time sim_time_stamp() {
  return current_kernel_checked().now();
}

}  // namespace tdsim
