// Supervised fleet execution: run batches of snapshot-forked scenarios on
// the shared Scheduler with a retry policy, so one misbehaving scenario
// cannot take the fleet down and scheduling-dependent bugs are separated
// from model bugs.
//
// The Supervisor owns the control loop bench_fleet (and any fleet driver)
// previously open-coded:
//
//   1. Fork a batch of scenarios from one warm Snapshot, arm each
//      scenario's FaultPlan (chaos overlay, usually empty).
//   2. Drive the batch interleaved: every kernel advances through the
//      same window milestones before any kernel runs to completion, which
//      maximizes scheduler multiplexing -- and is exactly the interleaving
//      the isolation tests pin down.
//   3. A kernel whose run() fails (Health::Failed) is destroyed on the
//      spot -- failed kernels are inert, their Scheduler slots already
//      released -- and the batch keeps going. After the batch, each failed
//      scenario is retried once, sequentially (workers=0 via the fork
//      config override): a retry that succeeds indicates a
//      scheduling-dependent bug (or an only-parallel injected fault); one
//      that fails the same way again is a model bug. Either way the
//      scenario is classified, never rerun a third time.
//   4. Persistent failures are quarantined: their FailureReports are
//      returned in the per-scenario ScenarioOutcome records, and the
//      fleet's digest/throughput accounting simply excludes them.
//
// Retried kernels carry KernelStats::retries = 1 (Kernel::note_retry), so
// fleet-wide stat sums separate first-try completions from retried ones.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "kernel/failure.h"
#include "kernel/fault_plan.h"
#include "kernel/kernel.h"
#include "kernel/snapshot.h"
#include "kernel/time.h"

namespace tdsim::fleet {

/// One scenario: a name, the fork recipe (config override + diverge
/// graft), and an optional chaos overlay armed on the forked kernel.
struct ScenarioSpec {
  std::string name;
  ForkOptions fork;
  FaultPlan faults;
};

struct RetryPolicy {
  /// Total attempts per scenario: the parallel batch run plus
  /// (max_attempts - 1) sequential retries. 1 disables retrying --
  /// every failure quarantines immediately.
  int max_attempts = 2;
  /// Retry with workers forced to 0 (the point of the policy: a
  /// sequential success separates scheduling bugs from model bugs).
  /// False retries under the scenario's own config.
  bool retry_sequential = true;
};

struct FleetOptions {
  /// Scenarios forked and driven concurrently per batch.
  std::size_t batch = 4;
  /// Absolute run() milestones each batch member reaches before any
  /// member runs to completion (the interleaving step). Empty = one
  /// run() to completion per kernel.
  std::vector<Time> windows;
  /// Wall-clock watchdog per run() call (RunOptions::wall_limit_ms);
  /// nullopt inherits each kernel's config.
  std::optional<std::uint64_t> wall_limit_ms;
};

enum class ScenarioStatus {
  Completed,    ///< first attempt succeeded
  Retried,      ///< first attempt failed, sequential retry succeeded
  Quarantined,  ///< every attempt failed; see failures in the outcome
};

const char* to_string(ScenarioStatus status);

/// Per-scenario result record.
struct ScenarioOutcome {
  std::string name;
  ScenarioStatus status = ScenarioStatus::Completed;
  int attempts = 0;
  /// The first attempt's post-mortem (set for Retried and Quarantined).
  std::optional<FailureReport> first_failure;
  /// The terminal post-mortem of a quarantined scenario.
  std::optional<FailureReport> final_failure;
};

class Supervisor {
 public:
  /// Called for every scenario that completed (first try or retry), with
  /// the finished kernel still alive -- capture digests/stats here. The
  /// kernel is destroyed right after the callback returns.
  using CompletionFn = std::function<void(
      Kernel&, const ScenarioSpec&, const ScenarioOutcome&)>;

  /// Called for every *failed attempt*, with the failed kernel still
  /// alive (so callers can tear down per-kernel model state before the
  /// Supervisor destroys it). The kernel pointer is null when fork()
  /// itself threw before returning a kernel.
  using FailureFn = std::function<void(
      Kernel*, const ScenarioSpec&, const FailureReport&)>;

  explicit Supervisor(Snapshot snapshot, RetryPolicy retry = {},
                      FleetOptions fleet = {});

  /// Runs every scenario (batched, interleaved, supervised; see the
  /// header comment) and returns one outcome per scenario, in input
  /// order. Exceptions from failed kernels are absorbed into the
  /// outcomes; on_complete/on_failure exceptions propagate (a capture bug
  /// is the caller's, not a scenario failure).
  std::vector<ScenarioOutcome> run(const std::vector<ScenarioSpec>& scenarios,
                                   const CompletionFn& on_complete = {},
                                   const FailureFn& on_failure = {});

  /// Sequential retries attempted / scenarios quarantined so far.
  std::uint64_t retries() const { return retries_; }
  std::uint64_t quarantined() const { return quarantined_; }

 private:
  Snapshot snapshot_;
  RetryPolicy retry_;
  FleetOptions fleet_;
  std::uint64_t retries_ = 0;
  std::uint64_t quarantined_ = 0;
};

}  // namespace tdsim::fleet
