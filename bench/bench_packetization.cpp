// Ablation of the Smart FIFO burst extension (paper SIV.C: the network
// interface's Smart FIFO "had to be slightly extended to manage efficiently
// the packetization").
//
//   * word-at-a-time vs write_burst/read_burst transfer through a Smart
//     FIFO (the extension amortizes per-access bookkeeping);
//   * a full NoC path (producer -> Smart FIFO -> packetizing NI -> 2x1
//     mesh -> deframing NI -> Smart FIFO -> sink) with the paper's method
//     NIs versus the synchronized word-paced baseline NIs, sweeping the
//     packet size.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/module.h"
#include "noc/mesh.h"
#include "noc/network_interface.h"

namespace {

using tdsim::Kernel;
using tdsim::Module;
using tdsim::SmartFifo;
using namespace tdsim::time_literals;
namespace noc = tdsim::noc;

constexpr std::uint64_t kWordsPerBatch = 1 << 14;
constexpr std::size_t kDepth = 64;

/// Per-word writes and reads, each paying the full access path.
void BM_SmartFifoWordAtATime(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", kDepth);
    kernel.spawn_thread("producer", [&] {
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        fifo.write(static_cast<std::uint32_t>(i));
        kernel.sync_domain().inc(1_ns);
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        sum += fifo.read();
        kernel.sync_domain().inc(1_ns);
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch);
}
BENCHMARK(BM_SmartFifoWordAtATime);

/// Burst writes and reads of `packet` words (the NI extension).
void BM_SmartFifoBurst(benchmark::State& state) {
  const auto packet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", kDepth);
    kernel.spawn_thread("producer", [&] {
      std::vector<std::uint32_t> burst(packet);
      for (std::uint64_t i = 0; i < kWordsPerBatch; i += packet) {
        for (std::size_t w = 0; w < packet; ++w) {
          burst[w] = static_cast<std::uint32_t>(i + w);
        }
        fifo.write_burst(burst.begin(), burst.end(), 1_ns);
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::vector<std::uint32_t> burst(packet);
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; i += packet) {
        fifo.read_burst(burst.begin(), packet, 1_ns);
        for (std::uint32_t w : burst) {
          sum += w;
        }
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch);
}
BENCHMARK(BM_SmartFifoBurst)->Arg(4)->Arg(16)->Arg(64);

/// Full path across a 2x1 mesh, with either the paper's decoupled method
/// NIs over Smart FIFOs (smart=1) or the synchronized word-paced NIs over
/// per-access-sync FIFOs (smart=0), sweeping the packet size.
template <bool Smart>
void noc_path_batch(std::size_t packet_words) {
  Kernel kernel;
  Module top(kernel, "bench");

  noc::Mesh::Config mesh_config;
  mesh_config.columns = 2;
  mesh_config.rows = 1;
  tdsim::noc::Mesh mesh(kernel, "bench.noc", mesh_config);

  using Fifo = std::conditional_t<Smart, SmartFifo<std::uint32_t>,
                                  tdsim::SyncFifo<std::uint32_t>>;
  Fifo to_ni(kernel, "bench.to_ni", kDepth);
  Fifo from_ni(kernel, "bench.from_ni", kDepth);

  using Ni = std::conditional_t<Smart, tdsim::noc::SmartNetworkInterface,
                                tdsim::noc::SyncNetworkInterface>;
  Ni ni0(top, "ni0", 0, mesh.local_in(0), mesh.local_out(0));
  Ni ni1(top, "ni1", 1, mesh.local_in(1), mesh.local_out(1));

  tdsim::noc::RxChannelConfig rx;
  rx.fifo = &from_ni;
  rx.per_word = 1_ns;
  const tdsim::noc::ChannelId channel = ni1.add_rx_channel(rx);

  tdsim::noc::TxChannelConfig tx;
  tx.fifo = &to_ni;
  tx.dest = 1;
  tx.dest_channel = channel;
  tx.packet_words = packet_words;
  tx.per_word = 1_ns;
  ni0.add_tx_channel(tx);

  ni0.elaborate();
  ni1.elaborate();

  kernel.spawn_thread("producer", [&] {
    for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
      kernel.sync_domain().inc(2_ns);
      to_ni.write(static_cast<std::uint32_t>(i));
    }
  });
  kernel.spawn_thread("sink", [&] {
    std::uint32_t sum = 0;
    for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
      sum += from_ni.read();
      kernel.sync_domain().inc(2_ns);
    }
    benchmark::DoNotOptimize(sum);
  });
  kernel.run();
}

void BM_NocPathSmartNi(benchmark::State& state) {
  const auto packet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    noc_path_batch<true>(packet);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch);
}
BENCHMARK(BM_NocPathSmartNi)->Arg(4)->Arg(16)->Arg(64);

void BM_NocPathSyncNi(benchmark::State& state) {
  const auto packet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    noc_path_batch<false>(packet);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch);
}
BENCHMARK(BM_NocPathSyncNi)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
