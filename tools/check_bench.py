#!/usr/bin/env python3
"""Benchmark regression gate for the BENCH_*.json files the benches emit.

Six checks, run by CI's perf-gate job (see .github/workflows/ci.yml):

1. Determinism vs committed baseline (bench/baselines/): every numeric
   field except wall-clock ones must match the baseline bit-for-bit.
   Simulation results (dates, delta counts, per-cause sync counts) are
   machine-independent, so any drift is a functional regression -- this is
   the line the parallel scheduler's bit-exactness guarantee is held to on
   every push.

2. Worker-sweep wall gate: for files whose rows carry a "workers" field
   (bench_multidomain_soc --workers), the summed wall time of every worker
   count must stay within --wall-tolerance of the smallest worker count's
   sum. A parallel run more than that much slower than sequential fails
   the gate; the tolerance also bounds how much headline speedup may
   regress run-over-run. Sums (not per-row walls) are gated so the
   fine-quantum rows' barrier overhead cannot fail a sweep whose total is
   dominated by the realistic rows.

3. Adaptive-quantum wall gate: rows carrying an "adaptive" field form a
   fixed-vs-adaptive comparison group (per worker count and table). Every
   adaptive row -- which the bench seeds from the *worst* fixed quantum --
   must reach --adaptive-throughput (default 0.9) of the best fixed row's
   wall-clock throughput: the controller has to actually close the
   speed/accuracy loop, not just converge somewhere. When the best fixed
   wall is below the noise floor (too fast to compare meaningfully) but
   the *worst* fixed wall is above it, a coarser escape-the-seed gate
   applies instead: the adaptive row must run in at most half the worst
   fixed row's wall, so a controller stuck at its bad seed still fails CI.
   Only when even the worst fixed wall is sub-noise is the gate skipped.
   The adaptive rows' deterministic fields (final quantum, adjustment
   count, per-cause sync counts, dates) are covered by check 1 like any
   other row. Adaptive rows are only compared against fixed rows in the
   same execution mode (judged by whether "lookahead_advances" is
   nonzero): with workers > 1 the fixed rows run free ahead of the
   horizon via conservative lookahead, while a live quantum controller
   pins its domains to the barrier path by design, so their walls are not
   comparable.

4. Lookahead speedup gate: for files whose rows carry a "workers" field,
   the largest worker count's summed wall over the *fixed* rows must beat
   the smallest count's sum by at least --min-speedup (default 0.10).
   This is the headline win the per-group conservative lookahead has to
   deliver: free-running groups on a worker pool must actually outrun the
   sequential scheduler, not merely keep up. Adaptive rows are excluded
   (the controller disables free-running, see above). The gate is skipped
   when the machine cannot express parallelism (fewer than two cores, see
   --cores) or when the reference sum is below the noise floor.

5. Chunked-channel speedup gate: rows carrying a "chunk_mode" field
   (bench_fifo_ops --json) form a chunked-vs-per-element comparison. The
   summed wall of the chunked rows flagged "wide" must beat the element
   wide rows' sum by at least --chunked-speedup (default 0.10): batching
   the per-element notifications and sync books has to actually pay on
   the wide-FIFO sweep, where blocking is rare and the per-op overhead
   dominates. Narrow (non-wide) rows are informational only -- they are
   blocking-dominated, so batching has nothing to amortize there. The
   gate is skipped when the element reference is below the noise floor.
   The rows' deterministic fields (dates, block and sync counts) are
   covered by check 1, which is what holds chunked mode to per-element
   bit-exactness on every push.

6. Fleet throughput gate: rows carrying a "fleet_mode" field
   (bench_fleet --json) compare the snapshot-fork path against cold
   standalone rebuilds of the same scenarios. The fork path must reach
   --fleet-throughput (default 0.35) of the cold path's scenarios/sec:
   forking through the construction log replays the same work as a cold
   build, so the gate bounds the scheduler-multiplexing and fork overhead
   rather than demanding a speedup. The fleet's deterministic fields (the
   per-scenario digest, date and delta sums) are covered by check 1 --
   that is where the bench's fork-equals-cold bit-exactness guarantee is
   held to the committed baseline (the bench itself additionally exits
   nonzero if any scenario diverges from its cold run). Noise-floored on
   the cold wall like the other relative gates.

7. Scale allocation gate: rows carrying an "alloc_mode" field
   (bench_scale --json) compare the kernel's pooled fiber-stack
   allocator and elaboration arenas ("pooled") against the legacy
   per-process heap stacks ("malloc") on the O(100)-domain /
   O(10k)-process platform. The pooled rows' summed elaboration wall
   AND summed run wall must each beat the malloc sums by at least
   --scale-speedup (default 0.10): recycling mapped, already-faulted
   stack blocks has to pay both at spawn time (elaboration, respawn
   generations) and in steady state (no munmap/mmap churn, no value-init
   memset of whole stacks). bench_scale's rows deliberately emit
   elab_wall_seconds/run_wall_seconds and no "wall_seconds", so the
   generic worker gates (2 and 4) do not double-gate this bench; its
   deterministic fields (dates, checksum, switch/delta/spawn counts) are
   covered by check 1, which holds the pooled allocator and both worker
   sweeps to bit-exactness against the committed baseline. Noise-floored
   on the malloc reference sums like the other relative gates.

Wall-clock fields (any key containing "wall" or "seconds") are never
compared against the baseline: baselines are committed from whatever
machine regenerated them, and absolute times do not travel.

Usage:
  tools/check_bench.py --baseline-dir bench/baselines \
      [--wall-tolerance 0.25] [--min-ref-wall 0.05] [--min-speedup 0.10] \
      [--cores N] [--report FILE] BENCH_foo.json [BENCH_bar.json ...]

Exit status 0 when every check passes, 1 otherwise. --report additionally
writes the full comparison (uploaded as a CI artifact).

Regenerating baselines after an intended behavior change:
  run the bench with the exact invocation recorded in
  bench/baselines/README.md and copy the BENCH_*.json over the old one.
"""

import argparse
import json
import os
import sys


def is_wall_key(key):
    lowered = key.lower()
    return "wall" in lowered or "seconds" in lowered


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("rows", [])


def compare_to_baseline(name, rows, baseline_rows, out):
    """Field-exact comparison of deterministic fields; returns #failures."""
    if len(rows) != len(baseline_rows):
        out.append(f"FAIL {name}: {len(rows)} rows vs {len(baseline_rows)} "
                   "in baseline (bench invocation changed? regenerate the "
                   "baseline alongside)")
        return 1
    drifted = []  # (row index, field, baseline value, actual value)
    for i, (row, base) in enumerate(zip(rows, baseline_rows)):
        for key, expected in base.items():
            if is_wall_key(key):
                continue
            actual = row.get(key)
            if actual != expected:
                drifted.append((i, key, expected, actual))
    if not drifted:
        out.append(f"ok   {name}: {len(rows)} rows match baseline "
                   "(deterministic fields)")
        return 0
    # A readable diff table: one line per drifted field, aligned.
    out.append(f"FAIL {name}: {len(drifted)} deterministic field(s) drifted "
               "from baseline")
    header = ("row", "field", "baseline", "actual")
    table = [header] + [(str(i), key, repr(expected), repr(actual))
                        for i, key, expected, actual in drifted]
    widths = [max(len(line[col]) for line in table) for col in range(4)]
    for line in table:
        out.append("       " + "  ".join(cell.ljust(width)
                                         for cell, width in zip(line, widths)))
    return len(drifted)


def check_worker_walls(name, rows, tolerance, min_ref_wall, out):
    """Summed wall time per worker count vs the smallest count's sum."""
    sums = {}
    for row in rows:
        if "workers" not in row or "wall_seconds" not in row:
            return 0
        sums.setdefault(row["workers"], 0.0)
        sums[row["workers"]] += row["wall_seconds"]
    if len(sums) < 2:
        return 0
    reference_workers = min(sums)
    reference = sums[reference_workers]
    if reference < min_ref_wall:
        out.append(f"skip {name}: reference wall {reference:.3f}s below "
                   f"{min_ref_wall}s noise floor, worker gate not applied")
        return 0
    failures = 0
    for workers in sorted(sums):
        ratio = sums[workers] / reference
        verdict = "ok  "
        if workers != reference_workers and ratio > 1.0 + tolerance:
            verdict = "FAIL"
            failures += 1
        out.append(f"{verdict} {name}: workers={workers} wall "
                   f"{sums[workers]:.3f}s ({ratio:.2f}x of "
                   f"workers={reference_workers})")
    return failures


def check_speedup(name, rows, min_speedup, min_ref_wall, cores, out):
    """Largest worker count must beat the smallest on fixed-row wall sums."""
    sums = {}
    for row in rows:
        if "workers" not in row or "wall_seconds" not in row:
            return 0
        if row.get("adaptive"):
            continue  # barrier-bound by design, see module docstring
        sums.setdefault(row["workers"], 0.0)
        sums[row["workers"]] += row["wall_seconds"]
    if len(sums) < 2 or max(sums) < 2:
        return 0
    if cores < 2:
        out.append(f"skip {name}: {cores} core(s) available, speedup gate "
                   "needs a multicore machine")
        return 0
    reference_workers = min(sums)
    parallel_workers = max(sums)
    reference = sums[reference_workers]
    if reference < min_ref_wall:
        out.append(f"skip {name}: reference wall {reference:.3f}s below "
                   f"{min_ref_wall}s noise floor, speedup gate not applied")
        return 0
    wall = sums[parallel_workers]
    speedup = reference / wall if wall > 0 else float("inf")
    required = 1.0 / (1.0 - min_speedup)
    verdict = "ok  " if speedup >= required else "FAIL"
    out.append(f"{verdict} {name}: workers={parallel_workers} fixed-row wall "
               f"{wall:.3f}s, {speedup:.2f}x over workers="
               f"{reference_workers} ({reference:.3f}s), floor "
               f"{required:.2f}x")
    return 0 if verdict == "ok  " else 1


def check_chunked_speedup(name, rows, min_speedup, min_ref_wall, out):
    """Chunked rows must beat per-element rows on the wide-FIFO sweep."""
    flagged = [r for r in rows
               if "chunk_mode" in r and "wall_seconds" in r]
    if not flagged:
        return 0
    sums = {}
    for row in flagged:
        if not row.get("wide"):
            continue  # narrow FIFOs are blocking-dominated, not gated
        sums.setdefault(row["chunk_mode"], 0.0)
        sums[row["chunk_mode"]] += row["wall_seconds"]
    element = sums.get("element", 0.0)
    chunked = sums.get("chunked")
    if chunked is None or element == 0.0:
        return 0
    if element < min_ref_wall:
        out.append(f"skip {name}: element wide wall {element:.3f}s below "
                   f"{min_ref_wall}s noise floor, chunked gate not applied")
        return 0
    speedup = element / chunked if chunked > 0 else float("inf")
    required = 1.0 / (1.0 - min_speedup)
    verdict = "ok  " if speedup >= required else "FAIL"
    out.append(f"{verdict} {name}: chunked wide wall {chunked:.3f}s, "
               f"{speedup:.2f}x over element ({element:.3f}s), floor "
               f"{required:.2f}x")
    return 0 if verdict == "ok  " else 1


def check_fleet_throughput(name, rows, min_throughput, min_ref_wall, out):
    """Fork path must reach a fraction of the cold path's scenarios/sec."""
    walls = {}
    for row in rows:
        if "fleet_mode" in row and "wall_seconds" in row:
            walls[row["fleet_mode"]] = row["wall_seconds"]
    fork = walls.get("fork")
    cold = walls.get("cold")
    if fork is None or cold is None:
        return 0
    if cold < min_ref_wall:
        out.append(f"skip {name}: cold wall {cold:.3f}s below "
                   f"{min_ref_wall}s noise floor, fleet gate not applied")
        return 0
    throughput = cold / fork if fork > 0 else float("inf")
    verdict = "ok  " if throughput >= min_throughput else "FAIL"
    out.append(f"{verdict} {name}: fork wall {fork:.3f}s = "
               f"{100 * throughput:.0f}% of cold throughput "
               f"({cold:.3f}s), floor {100 * min_throughput:.0f}%")
    return 0 if verdict == "ok  " else 1


def check_scale_alloc(name, rows, min_speedup, min_ref_wall, out):
    """Pooled stacks must beat malloc stacks on elaboration and run walls."""
    flagged = [r for r in rows if "alloc_mode" in r]
    if not flagged:
        return 0
    sums = {}  # (alloc_mode, phase key) -> summed wall
    for row in flagged:
        for key in ("elab_wall_seconds", "run_wall_seconds"):
            if key in row:
                sums.setdefault((row["alloc_mode"], key), 0.0)
                sums[(row["alloc_mode"], key)] += row[key]
    failures = 0
    required = 1.0 / (1.0 - min_speedup)
    for key, phase in (("elab_wall_seconds", "elab"),
                       ("run_wall_seconds", "run")):
        malloc = sums.get(("malloc", key))
        pooled = sums.get(("pooled", key))
        if malloc is None or pooled is None:
            continue
        if malloc < min_ref_wall:
            out.append(f"skip {name}: malloc {phase} wall {malloc:.3f}s "
                       f"below {min_ref_wall}s noise floor, scale {phase} "
                       "gate not applied")
            continue
        speedup = malloc / pooled if pooled > 0 else float("inf")
        verdict = "ok  " if speedup >= required else "FAIL"
        if verdict == "FAIL":
            failures += 1
        out.append(f"{verdict} {name}: pooled {phase} wall {pooled:.3f}s, "
                   f"{speedup:.2f}x over malloc ({malloc:.3f}s), floor "
                   f"{required:.2f}x")
    return failures


def check_adaptive_walls(name, rows, min_throughput, min_ref_wall, out):
    """Adaptive rows vs the best fixed row of their comparison group."""
    flagged = [r for r in rows
               if "adaptive" in r and "wall_seconds" in r]
    if not flagged:
        return 0
    groups = {}
    for row in flagged:
        groups.setdefault((row.get("workers"), row.get("table")),
                          []).append(row)
    failures = 0
    for key in sorted(groups, key=str):
        group = groups[key]
        adaptive = [r for r in group if r["adaptive"]]
        if not adaptive:
            continue
        # Free-running fixed rows (lookahead_advances > 0) and
        # barrier-bound adaptive rows are different execution modes; only
        # compare like with like.
        adaptive_free = bool(adaptive[0].get("lookahead_advances", 0))
        fixed = [r["wall_seconds"] for r in group
                 if not r["adaptive"]
                 and bool(r.get("lookahead_advances", 0)) == adaptive_free]
        label = name if key == (None, None) else f"{name} group {key}"
        if not fixed:
            out.append(f"skip {label}: no fixed rows in the adaptive rows' "
                       "execution mode (fixed rows free-run ahead of the "
                       "horizon, adaptive rows are barrier-bound), adaptive "
                       "gate not applied")
            continue
        best = min(fixed)
        worst = max(fixed)
        if best >= min_ref_wall:
            for row in adaptive:
                wall = row["wall_seconds"]
                throughput = best / wall if wall > 0 else 1.0
                verdict = "ok  "
                if throughput < min_throughput:
                    verdict = "FAIL"
                    failures += 1
                out.append(f"{verdict} {label}: adaptive wall {wall:.3f}s = "
                           f"{100 * throughput:.0f}% of best fixed "
                           f"({best:.3f}s), floor "
                           f"{100 * min_throughput:.0f}%")
        elif worst >= min_ref_wall:
            # Best fixed is sub-noise; fall back to escape-the-seed: the
            # adaptive row (seeded from the worst quantum) must at least
            # clearly beat the worst fixed row.
            for row in adaptive:
                wall = row["wall_seconds"]
                verdict = "ok  "
                if wall > worst / 2:
                    verdict = "FAIL"
                    failures += 1
                out.append(f"{verdict} {label}: adaptive wall {wall:.3f}s "
                           f"vs worst fixed {worst:.3f}s (escape-the-seed "
                           "gate: must be <= half; best fixed sub-noise)")
        else:
            out.append(f"skip {label}: all fixed walls below "
                       f"{min_ref_wall}s noise floor, adaptive gate not "
                       "applied")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--wall-tolerance", type=float, default=0.25,
                        help="allowed fractional wall regression of any "
                        "worker count vs the smallest one (default 0.25)")
    parser.add_argument("--min-ref-wall", type=float, default=0.05,
                        help="skip the worker gate when the reference sum "
                        "is below this many seconds (noise floor)")
    parser.add_argument("--min-speedup", type=float, default=0.10,
                        help="fractional wall improvement the largest "
                        "worker count's fixed rows must show over the "
                        "smallest count (default 0.10)")
    parser.add_argument("--cores", type=int, default=os.cpu_count() or 1,
                        help="cores available to the benched run; the "
                        "speedup gate is skipped below 2 (default: this "
                        "machine's count)")
    parser.add_argument("--chunked-speedup", type=float, default=0.10,
                        help="fractional wall improvement the chunked "
                        "rows must show over the per-element rows on the "
                        "wide-FIFO sweep (default 0.10)")
    parser.add_argument("--fleet-throughput", type=float, default=0.35,
                        help="fraction of the cold path's scenarios/sec "
                        "the fork path must reach in bench_fleet "
                        "(default 0.35)")
    parser.add_argument("--scale-speedup", type=float, default=0.10,
                        help="fractional wall improvement bench_scale's "
                        "pooled rows must show over the malloc rows, on "
                        "both the elaboration and run sums (default 0.10)")
    parser.add_argument("--adaptive-throughput", type=float, default=0.9,
                        help="fraction of the best fixed-quantum row's "
                        "wall-clock throughput every adaptive row must "
                        "reach (default 0.9)")
    parser.add_argument("--report", help="also write the comparison here")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    out = []
    failures = 0
    for path in args.files:
        name = os.path.basename(path)
        rows = load_rows(path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if os.path.exists(baseline_path):
            failures += compare_to_baseline(name, rows,
                                            load_rows(baseline_path), out)
        else:
            out.append(f"FAIL {name}: no baseline at {baseline_path} "
                       "(new bench? commit its baseline)")
            failures += 1
        failures += check_worker_walls(name, rows, args.wall_tolerance,
                                       args.min_ref_wall, out)
        failures += check_speedup(name, rows, args.min_speedup,
                                  args.min_ref_wall, args.cores, out)
        failures += check_chunked_speedup(name, rows, args.chunked_speedup,
                                          args.min_ref_wall, out)
        failures += check_fleet_throughput(name, rows, args.fleet_throughput,
                                           args.min_ref_wall, out)
        failures += check_scale_alloc(name, rows, args.scale_speedup,
                                      args.min_ref_wall, out)
        failures += check_adaptive_walls(name, rows, args.adaptive_throughput,
                                         args.min_ref_wall, out)

    report = "\n".join(out) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    if failures:
        sys.stdout.write(f"{failures} check(s) failed\n")
        return 1
    sys.stdout.write("all bench checks passed\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
