// Stream NoC substrate (case-study SoC, paper SIV.C): packets carried
// between store-and-forward routers over regular bounded FIFOs. The NoC is
// deliberately *not* temporally decoupled -- "where a lot of arbitration
// has to be done", the paper models routers with plain method processes at
// the global date, which regular FIFOs serve fine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.h"

namespace tdsim::noc {

/// Node (network-interface) identifier; position in the mesh is
/// id = y * columns + x.
using NodeId = std::uint16_t;

/// Stream channel index within a network interface.
using ChannelId = std::uint16_t;

struct Packet {
  NodeId src = 0;
  NodeId dest = 0;
  ChannelId channel = 0;  ///< Destination stream channel.
  std::vector<std::uint32_t> words;
  Time injected_at;  ///< For latency statistics.

  std::size_t size_words() const { return words.size(); }
};

/// Router ports, in arbitration order.
enum class Port : std::uint8_t { North = 0, East, South, West, Local };
inline constexpr std::size_t kPortCount = 5;

inline const char* to_string(Port p) {
  switch (p) {
    case Port::North: return "N";
    case Port::East: return "E";
    case Port::South: return "S";
    case Port::West: return "W";
    case Port::Local: return "L";
  }
  return "?";
}

}  // namespace tdsim::noc
