#include "kernel/scheduler.h"

namespace tdsim {

Scheduler& Scheduler::instance() {
  // Function-local static: constructed on first use, destroyed (threads
  // joined) after main returns. Kernels are expected to be gone by then
  // (they unregister in their destructors), so teardown only parks and
  // joins idle workers.
  static Scheduler scheduler;
  return scheduler;
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

Scheduler::ClientId Scheduler::register_client(std::size_t quota) {
  std::lock_guard<std::mutex> lock(mutex_);
  ClientId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = clients_.size();
    clients_.emplace_back(new Client);
  }
  Client& client = *clients_[id];
  client.queue.clear();
  client.pool_running = 0;
  client.self_running = 0;
  client.allowance = quota > 1 ? quota - 1 : 0;
  client.in_use = true;
  live_clients_++;
  return id;
}

void Scheduler::unregister_client(ClientId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  Client& client = *clients_[id];
  client.in_use = false;
  client.queue.clear();
  live_clients_--;
  free_slots_.push_back(id);
}

void Scheduler::set_client_quota(ClientId id, std::size_t quota) {
  std::lock_guard<std::mutex> lock(mutex_);
  clients_[id]->allowance = quota > 1 ? quota - 1 : 0;
}

void Scheduler::submit(ClientId id, TaskFn fn, void* arg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Client& client = *clients_[id];
    client.queue.emplace_back(fn, arg);
    // The pool tracks the largest allowance ever needed; submission is
    // the dispatch point, so grow here (never from the hot pick loop).
    ensure_threads_locked(client.allowance);
  }
  work_cv_.notify_one();
}

bool Scheduler::pick_task_locked(ClientId& id, TaskFn& fn, void*& arg) {
  const std::size_t n = clients_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (rr_cursor_ + step) % n;
    Client& client = *clients_[i];
    if (!client.in_use || client.queue.empty() ||
        client.pool_running >= client.allowance) {
      continue;
    }
    id = i;
    fn = client.queue.front().first;
    arg = client.queue.front().second;
    client.queue.pop_front();
    client.pool_running++;
    rr_cursor_ = (i + 1) % n;
    return true;
  }
  return false;
}

std::uint64_t Scheduler::help_until_done(ClientId id) {
  std::uint64_t ran = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  Client& client = *clients_[id];
  for (;;) {
    if (!client.queue.empty()) {
      const auto [fn, arg] = client.queue.front();
      client.queue.pop_front();
      client.self_running++;
      lock.unlock();
      fn(arg);
      lock.lock();
      client.self_running--;
      ran++;
      if (client.queue.empty() &&
          client.pool_running + client.self_running == 0) {
        done_cv_.notify_all();
      }
      continue;
    }
    if (client.pool_running + client.self_running == 0) {
      return ran;
    }
    done_cv_.wait(lock, [&client] {
      return !client.queue.empty() ||
             client.pool_running + client.self_running == 0;
    });
  }
}

std::size_t Scheduler::threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

std::size_t Scheduler::clients() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_clients_;
}

void Scheduler::ensure_threads_locked(std::size_t want) {
  while (threads_.size() < want) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

void Scheduler::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    ClientId id;
    TaskFn fn;
    void* arg;
    if (pick_task_locked(id, fn, arg)) {
      lock.unlock();
      fn(arg);
      lock.lock();
      Client& client = *clients_[id];
      client.pool_running--;
      if (client.queue.empty() &&
          client.pool_running + client.self_running == 0) {
        done_cv_.notify_all();
      }
      // More eligible work may remain (we only took one task); wake a
      // sibling before looping back to pick again ourselves.
      if (live_clients_ > 0) {
        work_cv_.notify_one();
      }
      continue;
    }
    if (shutdown_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

}  // namespace tdsim
