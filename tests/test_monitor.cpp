// Monitor interface (paper SIII.C): get_size() must report the occupancy
// of the *real* (reference) FIFO at the caller's date, reconstructed from
// the per-cell insertion/freeing dates, even though the internal state ran
// ahead of the global date.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "trace/scenario.h"

namespace tdsim {
namespace {

using trace::Mode;
using trace::Scenario;
using trace::ScenarioEnv;

void expect_all_modes_equal(const Scenario& scenario) {
  auto reference = trace::run_scenario(scenario, Mode::Reference);
  auto smart = trace::run_scenario(scenario, Mode::SmartDecoupled);
  auto sync = trace::run_scenario(scenario, Mode::SyncDecoupled);
  ASSERT_GT(reference->recorder().size(), 0u);
  auto diff = trace::compare_sorted(reference->recorder(), smart->recorder());
  EXPECT_FALSE(diff.has_value()) << "Reference vs SmartDecoupled: " << *diff;
  diff = trace::compare_sorted(reference->recorder(), sync->recorder());
  EXPECT_FALSE(diff.has_value()) << "Reference vs SyncDecoupled: " << *diff;
}

TEST(Monitor, SizeAccountsForFutureInsertion) {
  // Paper example: a write made at global date 10 with local date 20
  // changes the internal state at 10, but the real size increments at 20.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  std::vector<std::size_t> sizes;
  k.spawn_thread("writer", [&] {
    k.sync_domain().inc(20_ns);
    f.write(1);  // internal change now (global 0), real change at 20
    k.wait(1000_ns);
  });
  k.spawn_thread("monitor", [&] {
    k.wait(10_ns);
    sizes.push_back(f.get_size());  // at 10: not yet really written
    k.wait(15_ns);
    sizes.push_back(f.get_size());  // at 25: really present
  });
  k.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{0u, 1u}));
}

TEST(Monitor, SizeAccountsForFutureFreeing) {
  // A cell internally freed by a read dated in the future still counts.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  std::vector<std::size_t> sizes;
  k.spawn_thread("writer", [&] { f.write(1); });  // inserted at 0
  k.spawn_thread("reader", [&] {
    k.sync_domain().inc(40_ns);
    (void)f.read();  // frees at 40, executes at global 0
    k.wait(1000_ns);
  });
  k.spawn_thread("monitor", [&] {
    k.wait(10_ns);
    sizes.push_back(f.get_size());  // at 10: still really present
    k.wait(50_ns);
    sizes.push_back(f.get_size());  // at 60: really gone
  });
  k.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1u, 0u}));
}

TEST(Monitor, FreedAndRefilledCellCountsOldData) {
  // Paper rule: an internally busy cell whose previous freeing date is in
  // the future means the cell was freed and refilled ahead of real time;
  // the *old* data still occupies the real FIFO.
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  std::vector<std::size_t> sizes;
  k.spawn_thread("writer", [&] {
    f.write(1);       // inserted at 0
    k.sync_domain().inc(60_ns);
    f.write(2);       // waits for freeing at 40 -> inserted at 60
    k.wait(1000_ns);
  });
  k.spawn_thread("reader", [&] {
    k.sync_domain().inc(40_ns);
    (void)f.read();  // frees at 40
    k.sync_domain().inc(40_ns);
    (void)f.read();  // second read at 80 (insertion 60 < 80)
    k.wait(1000_ns);
  });
  k.spawn_thread("monitor", [&] {
    k.wait(10_ns);
    sizes.push_back(f.get_size());  // at 10: item 1 present
    k.wait(40_ns);
    sizes.push_back(f.get_size());  // at 50: between freeing(40) and insert(60)
    k.wait(20_ns);
    sizes.push_back(f.get_size());  // at 70: item 2 present
    k.wait(30_ns);
    sizes.push_back(f.get_size());  // at 100: all drained (read at 80)
  });
  k.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1u, 0u, 1u, 0u}));
}

TEST(Monitor, GetSizeSynchronizesDecoupledCaller) {
  Kernel k;
  SmartFifo<int> f(k, "f", 2);
  k.spawn_thread("monitor", [&] {
    k.sync_domain().inc(25_ns);
    EXPECT_EQ(k.now(), Time{});
    (void)f.get_size();
    // get_size must first synchronize the caller.
    EXPECT_EQ(k.now(), 25_ns);
    EXPECT_TRUE(k.sync_domain().is_synchronized());
  });
  k.run();
}

TEST(Monitor, EmptyAndFullExtremes) {
  Kernel k;
  SmartFifo<int> f(k, "f", 3);
  k.spawn_thread("t", [&] {
    EXPECT_EQ(f.get_size(), 0u);
    f.write(1);
    f.write(2);
    f.write(3);
    EXPECT_EQ(f.get_size(), 3u);
    EXPECT_EQ(f.monitor_queries(), 2u);
  });
  k.run();
}

// Dual-mode scenarios where a monitor process polls the size while traffic
// flows ("the monitor interfaces are used extensively to follow how the
// FIFO sizes evolve").
Scenario monitored_pipeline(std::size_t depth, Time write_period,
                            Time read_period, Time poll_period, int items) {
  return [=](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", depth);
    env.kernel().spawn_thread("writer", [&env, &fifo, write_period, items] {
      for (int i = 0; i < items; ++i) {
        fifo.write(i);
        env.delay(write_period);
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo, read_period, items] {
      for (int i = 0; i < items; ++i) {
        env.delay(read_period);
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
    env.kernel().spawn_thread("monitor", [&env, &fifo, poll_period, items,
                                          write_period] {
      // Poll for roughly the duration of the traffic. The monitor itself
      // is synchronized (low-rate software access).
      const std::uint64_t polls =
          (write_period.ps() * items) / poll_period.ps() + 2;
      for (std::uint64_t p = 0; p < polls; ++p) {
        env.kernel().wait(poll_period);
        env.log("size", fifo.get_size());
      }
    });
  };
}

TEST(Monitor, DualModeSlowConsumer) {
  expect_all_modes_equal(monitored_pipeline(4, 10_ns, 25_ns, Time::from_ps(17001), 30));
}

TEST(Monitor, DualModeFastConsumer) {
  expect_all_modes_equal(monitored_pipeline(4, 25_ns, 10_ns, Time::from_ps(13001), 30));
}

TEST(Monitor, DualModeDepthOne) {
  expect_all_modes_equal(monitored_pipeline(1, 10_ns, 10_ns, Time::from_ps(7001), 25));
}

class MonitorSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, int>> {};

TEST_P(MonitorSweep, SizesMatchReferenceAcrossRatesAndDepths) {
  const auto [depth, wp, rp] = GetParam();
  expect_all_modes_equal(
      monitored_pipeline(depth, Time(static_cast<std::uint64_t>(wp),
                                     TimeUnit::NS),
                         Time(static_cast<std::uint64_t>(rp), TimeUnit::NS),
                         Time::from_ps(9001), 20));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MonitorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 8),
                       ::testing::Values(3, 11, 20),
                       ::testing::Values(4, 10, 21)));

}  // namespace
}  // namespace tdsim
