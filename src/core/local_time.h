// Temporal-decoupling core (paper SII.A).
//
// Every process has a *local date* = global date + local offset, always
// greater or equal to the global date. The two basic operations are the
// cheap inc(duration), which advances the local date without touching the
// scheduler, and the costly sync(), which suspends the process until the
// global date catches up with its local date (one context switch).
//
// All functions operate on the process currently executing inside
// Kernel::current(); calling them from outside a running simulation is an
// error.
#pragma once

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/time.h"

namespace tdsim::td {

/// The local date of the current process (the paper's
/// local_time_stamp()). Equals sim_time_stamp() + local_offset().
Time local_time_stamp();

/// Local-time offset of the current process (zero when synchronized).
Time local_offset();

/// Advances the current process's local date by `duration` without a
/// context switch. This is the timing-annotation primitive.
void inc(Time duration);

/// Raises the current process's local date to `date` if it is in the
/// future; no-op otherwise. Used by the Smart FIFO to apply cell time
/// stamps ("increase the local time up to this date").
void advance_local_to(Time date);

/// Synchronizes the current process: suspends it until the global date
/// equals its local date, then clears the offset. No-op when already
/// synchronized. Only thread processes may have a non-zero offset when
/// calling this (methods cannot suspend).
void sync();

/// True when the current process's local date equals the global date.
bool is_synchronized();

/// True when the current process's offset has reached the kernel's global
/// quantum (and the quantum is non-zero).
bool needs_sync();

// --- helpers for non-process contexts and other processes ---

/// Local date of an arbitrary process (global date + its offset).
Time local_time_of(const Process& process);

/// TLM-2.0 tlm_quantumkeeper analog: accumulates local time and
/// synchronizes when the global quantum is exceeded. A convenience wrapper
/// over the free functions, holding nothing but the kernel reference, so it
/// can be shared or rebuilt freely.
class QuantumKeeper {
 public:
  explicit QuantumKeeper(Kernel& kernel) : kernel_(kernel) {}

  /// Adds `duration` to the current process's local time.
  void inc(Time duration) { td::inc(duration); }

  /// Local date of the current process.
  Time local_time() const { return local_time_stamp(); }

  bool need_sync() const { return needs_sync(); }

  /// Unconditional synchronization.
  void sync() { td::sync(); }

  /// The canonical loosely-timed pattern: inc, then sync only when the
  /// quantum is exhausted.
  void inc_and_sync_if_needed(Time duration) {
    td::inc(duration);
    if (needs_sync()) {
      td::sync();
    }
  }

  Kernel& kernel() const { return kernel_; }

 private:
  Kernel& kernel_;
};

/// For method processes (which cannot suspend): re-arms the method to run
/// again once the global date reaches its current local date, i.e. the
/// method-process equivalent of sync(). The offset itself is reset
/// automatically at the next activation.
void method_sync_trigger();

}  // namespace tdsim::td
