// Multi-domain kernel behavior: the SyncDomain registry, per-process
// membership, independent per-domain quanta, per-domain statistics that
// sum to the kernel aggregate, cross-domain Smart-FIFO bit-exactness,
// elaboration-time-only domain reassignment, per-domain delta-livelock
// limits, lagging-domain reporting, and timed-queue compaction.
#include <gtest/gtest.h>

#include <vector>

#include "core/smart_fifo.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/module.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"
#include "soc/soc_platform.h"

namespace tdsim {
namespace {

TEST(MultiDomain, RegistryDefaultsAndLookup) {
  Kernel k;
  // The default domain always exists and keeps the single-domain API alive.
  EXPECT_EQ(k.domains().size(), 1u);
  EXPECT_EQ(&k.sync_domain(), k.domains().front().get());
  EXPECT_EQ(k.sync_domain().name(), "default");
  EXPECT_EQ(k.sync_domain().id(), 0u);

  SyncDomain& cpu = k.create_domain({.name = "cpu", .quantum = 10_ns});
  SyncDomain& periph = k.create_domain({.name = "periph", .quantum = 1_us});
  EXPECT_EQ(k.domains().size(), 3u);
  EXPECT_EQ(cpu.id(), 1u);
  EXPECT_EQ(periph.id(), 2u);
  EXPECT_EQ(cpu.quantum(), 10_ns);
  EXPECT_EQ(periph.quantum(), 1_us);
  EXPECT_EQ(k.find_domain("periph"), &periph);
  EXPECT_EQ(k.find_domain("nope"), nullptr);
  // Duplicate names are configuration bugs.
  EXPECT_THROW(k.create_domain(DomainOptions{.name = "cpu"}), SimulationError);

  // Kernel-level quantum conveniences only touch the default domain.
  k.set_global_quantum(5_ns);
  EXPECT_EQ(k.global_quantum(), 5_ns);
  EXPECT_EQ(cpu.quantum(), 10_ns);
  EXPECT_EQ(periph.quantum(), 1_us);
}

TEST(MultiDomain, ProcessesJoinDomainsViaOptionsAndModuleDefaults) {
  Kernel k;
  SyncDomain& cpu = k.create_domain(DomainOptions{.name = "cpu"});
  SyncDomain& periph = k.create_domain(DomainOptions{.name = "periph"});

  ThreadOptions topts;
  topts.domain = &cpu;
  Process* t = k.spawn_thread("t", [] {}, topts);
  EXPECT_EQ(&t->domain(), &cpu);
  EXPECT_EQ(cpu.members(), (std::vector<Process*>{t}));

  Process* d = k.spawn_thread("d", [] {});
  EXPECT_EQ(&d->domain(), &k.sync_domain());

  // A module-level default pulls a whole subtree into one domain; child
  // modules inherit it unless they override.
  struct Leaf : Module {
    Process* p;
    explicit Leaf(Module& parent) : Module(parent, "leaf") {
      p = thread("t", [] {});
    }
  };
  struct Root : Module {
    Leaf* leaf;
    Root(Kernel& kernel, SyncDomain& domain) : Module(kernel, "root") {
      set_default_domain(domain);
      leaf = new Leaf(*this);
    }
    ~Root() override { delete leaf; }
  };
  Root root(k, periph);
  EXPECT_EQ(&root.default_domain(), &periph);
  EXPECT_EQ(&root.leaf->p->domain(), &periph);

  // Spawning into a foreign kernel's domain is a configuration bug.
  Kernel other;
  ThreadOptions bad;
  bad.domain = &cpu;
  EXPECT_THROW(other.spawn_thread("x", [] {}, bad), SimulationError);
}

TEST(MultiDomain, DomainsSyncIndependentlyUnderDifferentQuanta) {
  // Two workers annotate the same 1000 ns of local time in 10 ns steps;
  // the fast domain (quantum 10 ns) synchronizes at every step, the slow
  // one (quantum 100 ns) ten times less often.
  Kernel k;
  SyncDomain& fast = k.create_domain({.name = "fast", .quantum = 10_ns});
  SyncDomain& slow = k.create_domain({.name = "slow", .quantum = 100_ns});

  const auto worker = [&k] {
    for (int i = 0; i < 100; ++i) {
      k.current_domain().inc_and_sync_if_needed(10_ns);
    }
  };
  ThreadOptions in_fast;
  in_fast.domain = &fast;
  ThreadOptions in_slow;
  in_slow.domain = &slow;
  k.spawn_thread("fast_worker", worker, in_fast);
  k.spawn_thread("slow_worker", worker, in_slow);
  k.run();

  EXPECT_EQ(k.now(), 1000_ns);
  EXPECT_EQ(fast.syncs(SyncCause::Quantum), 100u);
  EXPECT_EQ(slow.syncs(SyncCause::Quantum), 10u);
  // The default domain saw none of it.
  EXPECT_EQ(k.sync_domain().syncs_performed(), 0u);
}

TEST(MultiDomain, PerDomainStatsSumToKernelAggregate) {
  Kernel k;
  SyncDomain& a = k.create_domain({.name = "a", .quantum = 10_ns});
  SyncDomain& b = k.create_domain(DomainOptions{.name = "b"});
  SmartFifo<int> fifo(k, "f", 2);

  ThreadOptions in_a;
  in_a.domain = &a;
  k.spawn_thread("producer", [&] {
    for (int i = 0; i < 8; ++i) {
      k.current_domain().inc_and_sync_if_needed(10_ns);
      fifo.write(i);  // may block internally full -> FifoFull sync in 'a'
    }
  }, in_a);
  ThreadOptions in_b;
  in_b.domain = &b;
  k.spawn_thread("consumer", [&] {
    for (int i = 0; i < 8; ++i) {
      k.current_domain().inc(25_ns);
      EXPECT_EQ(fifo.read(), i);  // FifoEmpty syncs land in 'b'
    }
    k.current_domain().sync();  // Explicit, in 'b'
  }, in_b);
  MethodOptions in_b_method;
  in_b_method.domain = &b;
  int rearms = 0;
  k.spawn_method("ticker", [&] {
    if (++rearms <= 3) {
      k.current_domain().inc(7_ns);
      k.current_domain().method_sync_trigger();
    }
  }, in_b_method);
  k.run();

  const KernelStats& s = k.stats();
  ASSERT_EQ(s.domains.size(), k.domains().size());
  std::uint64_t requests = 0, elided = 0, rearmed = 0;
  for (const DomainStats& d : s.domains) {
    requests += d.sync_requests;
    elided += d.syncs_elided;
    rearmed += d.method_rearms;
  }
  EXPECT_EQ(requests, s.sync_requests);
  EXPECT_EQ(elided, s.syncs_elided);
  EXPECT_EQ(rearmed, s.method_rearms);
  for (std::size_t c = 0; c < kSyncCauseCount; ++c) {
    std::uint64_t per_cause = 0;
    for (const DomainStats& d : s.domains) {
      per_cause += d.syncs_by_cause[c];
    }
    EXPECT_EQ(per_cause, s.syncs_by_cause[c])
        << "cause " << to_string(static_cast<SyncCause>(c));
  }
  // The invariant holds per domain, not just in aggregate.
  for (const DomainStats& d : s.domains) {
    EXPECT_EQ(d.sync_requests, d.syncs_performed() + d.syncs_elided)
        << "domain " << d.name;
  }
  // Something actually landed in both custom domains.
  EXPECT_GT(a.stats().sync_requests, 0u);
  EXPECT_GT(b.stats().sync_requests, 0u);
  EXPECT_EQ(b.stats().method_rearms, 3u);
}

/// Runs the Fig.-2-style producer/consumer over a Smart FIFO and returns
/// every local access date observed, optionally placing the two sides in
/// different domains.
std::vector<Time> run_smart_fifo_pipeline(bool split_domains) {
  Kernel k;
  SyncDomain* wd = &k.sync_domain();
  SyncDomain* rd = &k.sync_domain();
  if (split_domains) {
    wd = &k.create_domain({.name = "writer_side", .quantum = 50_ns});
    rd = &k.create_domain({.name = "reader_side", .quantum = 700_ns});
  }
  SmartFifo<int> fifo(k, "f", 3);
  std::vector<Time> dates;
  ThreadOptions wopts;
  wopts.domain = wd;
  k.spawn_thread("producer", [&] {
    for (int i = 0; i < 40; ++i) {
      k.current_domain().inc((i % 5 + 1) * 3_ns);
      fifo.write(i);
      dates.push_back(k.current_domain().local_time_stamp());
    }
  }, wopts);
  ThreadOptions ropts;
  ropts.domain = rd;
  k.spawn_thread("consumer", [&] {
    for (int i = 0; i < 40; ++i) {
      k.current_domain().inc((i % 3 + 1) * 4_ns);
      EXPECT_EQ(fifo.read(), i);
      dates.push_back(k.current_domain().local_time_stamp());
    }
  }, ropts);
  k.run();
  dates.push_back(k.now());
  return dates;
}

TEST(MultiDomain, CrossDomainSmartFifoBitExactWithSingleDomain) {
  // The Smart FIFO's cell date stamps carry timing across the domain
  // boundary: splitting writer and reader into domains with wildly
  // different quanta must not move a single access date (no quantum syncs
  // are involved -- inc() plus FIFO-driven syncs only).
  const std::vector<Time> single = run_smart_fifo_pipeline(false);
  const std::vector<Time> split = run_smart_fifo_pipeline(true);
  EXPECT_EQ(single, split);
}

TEST(MultiDomain, ReassignmentOnlyDuringElaboration) {
  Kernel k;
  SyncDomain& cpu = k.create_domain({.name = "cpu", .quantum = 10_ns});
  Process* t = k.spawn_thread("t", [&] {
    // Runs under the reassigned domain's quantum.
    EXPECT_EQ(&k.current_domain(), &cpu);
    k.current_domain().inc(10_ns);
    EXPECT_TRUE(k.current_domain().needs_sync());
    k.current_domain().sync(SyncCause::Quantum);
  });
  EXPECT_EQ(&t->domain(), &k.sync_domain());
  k.assign_domain(*t, cpu);  // before elaboration: fine
  EXPECT_EQ(&t->domain(), &cpu);
  EXPECT_TRUE(k.sync_domain().members().empty());
  k.run();
  EXPECT_EQ(cpu.syncs(SyncCause::Quantum), 1u);

  // After the first run() has initialized processes, membership is fixed.
  Process* u = k.spawn_thread("u", [] {});
  EXPECT_THROW(k.assign_domain(*u, cpu), SimulationError);
}

TEST(MultiDomain, SyncThroughForeignDomainIsError) {
  // Synchronizing through a domain the process is not a member of would
  // apply the wrong quantum and book the switch against the wrong
  // subsystem; channels must resolve Kernel::current_domain() instead.
  Kernel k;
  SyncDomain& cpu = k.create_domain(DomainOptions{.name = "cpu"});
  ThreadOptions opts;
  opts.domain = &cpu;
  k.spawn_thread("t", [&] {
    k.current_domain().inc(5_ns);
    k.sync_domain().sync();  // default domain, foreign to this process
  }, opts);
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(MultiDomain, PerDomainDeltaLivelockLimit) {
  // Two methods of one domain re-triggering each other forever at one date
  // trip that domain's own limit -- with the kernel-wide limit disabled --
  // and the diagnostic names the culprit domain.
  Kernel k;
  SyncDomain& chatty = k.create_domain(DomainOptions{.name = "chatty"});
  chatty.set_delta_cycle_limit(50);
  Event ping(k, "ping");
  Event pong(k, "pong");
  MethodOptions a_opts;
  a_opts.domain = &chatty;
  a_opts.sensitivity.push_back(&ping);
  k.spawn_method("a", [&] { pong.notify_delta(); }, a_opts);
  MethodOptions b_opts;
  b_opts.domain = &chatty;
  b_opts.sensitivity.push_back(&pong);
  k.spawn_method("b", [&] { ping.notify_delta(); }, b_opts);
  try {
    k.run();
    FAIL() << "expected the domain delta-cycle limit to trip";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("chatty"), std::string::npos)
        << e.what();
  }
}

TEST(MultiDomain, PerDomainDeltaCountingIgnoresOtherDomainsActivity) {
  // A bounded burst of delta activity in a busy domain must not trip the
  // limit of a quiet domain, and a tight limit survives activity strictly
  // below it.
  Kernel k;
  SyncDomain& quiet = k.create_domain(DomainOptions{.name = "quiet"});
  quiet.set_delta_cycle_limit(3);
  int remaining = 20;
  k.spawn_thread("busy_default_domain", [&] {
    while (remaining-- > 0) {
      k.wait_delta();  // 20 consecutive deltas, all in the default domain
    }
  });
  ThreadOptions q;
  q.domain = &quiet;
  k.spawn_thread("quiet_member", [&] { k.wait(5_ns); }, q);
  k.run();  // must not throw
  EXPECT_EQ(k.now(), 5_ns);
}

TEST(MultiDomain, LaggingDomainIsTheOneFurthestBehind) {
  Kernel k;
  SyncDomain& ahead = k.create_domain(DomainOptions{.name = "ahead"});
  SyncDomain& behind = k.create_domain(DomainOptions{.name = "behind"});
  ThreadOptions a;
  a.domain = &ahead;
  k.spawn_thread("runner", [&] {
    k.current_domain().inc(500_ns);
    k.wait(1_ns);
  }, a);
  ThreadOptions b;
  b.domain = &behind;
  k.spawn_thread("crawler", [&] {
    k.current_domain().inc(20_ns);
    k.wait(1_ns);
  }, b);
  k.spawn_thread("observer", [&] {
    k.wait_delta();
    EXPECT_EQ(k.lagging_domain(), &k.sync_domain());  // observer: offset 0
    EXPECT_EQ(ahead.max_offset(), 500_ns);
    EXPECT_EQ(ahead.execution_front().value(), 500_ns);
    EXPECT_EQ(behind.execution_front().value(), 20_ns);
  });
  k.run();
}

TEST(MultiDomain, TimedQueueCompactionDropsSuperseded) {
  // Each earlier re-notification of an event supersedes the pending later
  // one, stranding a stale entry deep in the timed queue. Lazy deletion
  // alone would keep all of them until their (far-future) dates; the
  // compaction pass must drop them once they outnumber live entries,
  // without disturbing the live notification.
  Kernel k;
  Event e(k, "e");
  int fired = 0;
  MethodOptions opts;
  opts.sensitivity.push_back(&e);
  opts.dont_initialize = true;
  k.spawn_method("listener", [&] { fired++; }, opts);
  k.spawn_thread("renotifier", [&] {
    for (int i = 0; i < 500; ++i) {
      // Decreasing dates: every notify supersedes the previous entry.
      e.notify(Time(1'000'000 - i, TimeUnit::NS));
    }
    k.wait(1_ns);
  });
  k.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(k.now(), Time(1'000'000 - 499, TimeUnit::NS));
  EXPECT_GE(k.stats().timed_queue_compactions, 1u);
}

TEST(MultiDomain, DestroyedEventEntriesArePurgedBeforeCompaction) {
  // An event destroyed with notifications still in the timed queue must
  // leave no dangling entry behind: later queue churn (including the
  // compaction pass, which inspects entries deep in the queue) runs over
  // entries of live events only. Under ASan this is a use-after-free
  // regression test; everywhere it checks dates stay unperturbed.
  Kernel k;
  k.spawn_thread("churn", [&k] {
    {
      Event doomed(k, "doomed");
      doomed.notify(2_ms);
      Event superseded(k, "superseded");
      superseded.notify(3_ms);
      superseded.notify(1_ms);  // strand a stale entry too
    }  // both die with entries queued
    Event e(k, "e");
    for (int i = 0; i < 500; ++i) {
      e.notify(Time(1'000'000 - i, TimeUnit::NS));  // drive compaction
    }
    e.cancel();
    k.wait(5_ns);
  });
  k.run();
  EXPECT_EQ(k.now(), 5_ns);  // no destroyed/cancelled notification fired
  EXPECT_GE(k.stats().timed_queue_compactions, 1u);
}

TEST(MultiDomain, RunnableCountTracksDomainMembers) {
  Kernel k;
  SyncDomain& d = k.create_domain(DomainOptions{.name = "d"});
  ThreadOptions opts;
  opts.domain = &d;
  k.spawn_thread("t", [&] {
    // While running, this process is no longer in the runnable set.
    EXPECT_EQ(d.runnable_count(), 0u);
    k.wait(1_ns);
  }, opts);
  EXPECT_EQ(d.runnable_count(), 0u);
  k.run();
  EXPECT_EQ(d.runnable_count(), 0u);
}

TEST(MultiDomain, SplitDomainSocBitExactWithSingleDomain) {
  // The full case-study SoC partitioned into cpu/periph/noc domains must
  // produce the same dates as the default single-domain build: domain
  // membership moves only the attribution of the sync statistics.
  const auto run_soc = [](bool split) {
    Kernel kernel;
    tdsim::soc::SocConfig config;
    config.streams = 2;
    config.words_per_stream = 512;
    config.block_words = 64;
    config.split_domains = split;
    tdsim::soc::SocPlatform platform(kernel, config);
    const Time end = platform.run_to_completion();
    EXPECT_TRUE(platform.all_streams_correct());
    struct Out {
      Time end;
      Time core_done;
      std::uint64_t switches;
      std::uint64_t performed;
    };
    return Out{end, platform.core().all_done_date(),
               kernel.stats().context_switches,
               kernel.stats().syncs_performed()};
  };
  const auto single = run_soc(false);
  const auto split = run_soc(true);
  EXPECT_EQ(single.end, split.end);
  EXPECT_EQ(single.core_done, split.core_done);
  EXPECT_EQ(single.switches, split.switches);
  EXPECT_EQ(single.performed, split.performed);
}

TEST(MultiDomain, SplitDomainSocAttributesSyncsPerDomain) {
  Kernel kernel;
  tdsim::soc::SocConfig config;
  config.streams = 2;
  config.words_per_stream = 512;
  config.block_words = 64;
  config.split_domains = true;
  tdsim::soc::SocPlatform platform(kernel, config);
  platform.run_to_completion();
  const SyncDomain* cpu = kernel.find_domain("soc.cpu");
  const SyncDomain* periph = kernel.find_domain("soc.periph");
  ASSERT_NE(cpu, nullptr);
  ASSERT_NE(periph, nullptr);
  // The polling core's quantum-driven syncs land in the cpu domain, the
  // accelerators' FIFO-driven ones in the periph domain; nothing lands in
  // the default domain anymore.
  EXPECT_GT(cpu->syncs(SyncCause::Quantum), 0u);
  EXPECT_GT(periph->syncs(SyncCause::FifoFull) +
                periph->syncs(SyncCause::FifoEmpty),
            0u);
  EXPECT_EQ(kernel.sync_domain().stats().sync_requests, 0u);
}

// The deprecated positional create_domain overloads and the SyncDomain
// mutators must keep forwarding faithfully into the DomainOptions path
// until they are removed -- exercised here with the warning silenced on
// purpose (everywhere else the deprecation is a build error under
// -DTDSIM_WERROR=ON).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(MultiDomain, DeprecatedPositionalSurfaceStillForwards) {
  Kernel k;
  SyncDomain& plain = k.create_domain("legacy_plain", 10_ns);
  EXPECT_EQ(plain.quantum(), 10_ns);
  EXPECT_FALSE(plain.concurrent());
  SyncDomain& conc = k.create_domain("legacy_conc", 20_ns, true);
  EXPECT_TRUE(conc.concurrent());
  QuantumPolicy policy;
  policy.min_quantum = 10_ns;
  policy.max_quantum = 10_us;
  SyncDomain& tuned = k.create_domain("legacy_tuned", 30_ns, false, policy);
  ASSERT_NE(tuned.quantum_policy(), nullptr);
  EXPECT_EQ(tuned.quantum_policy()->max_quantum, 10_us);
  SyncDomain& mutated = k.create_domain("legacy_mutated", 40_ns);
  mutated.set_concurrent(true);
  EXPECT_TRUE(mutated.concurrent());
  mutated.set_quantum_policy(policy);
  ASSERT_NE(mutated.quantum_policy(), nullptr);
}
#pragma GCC diagnostic pop

TEST(MultiDomain, DomainBoundQuantumKeeper) {
  Kernel k;
  SyncDomain& cpu = k.create_domain({.name = "cpu", .quantum = 100_ns});
  ThreadOptions opts;
  opts.domain = &cpu;
  k.spawn_thread("t", [&] {
    QuantumKeeper qk(cpu);
    for (int i = 0; i < 10; ++i) {
      qk.inc_and_sync_if_needed(50_ns);
    }
  }, opts);
  k.run();
  EXPECT_EQ(k.now(), 500_ns);
  EXPECT_EQ(cpu.syncs(SyncCause::Quantum), 5u);
  // The default domain's books were never touched.
  EXPECT_EQ(k.sync_domain().syncs_performed(), 0u);
}

}  // namespace
}  // namespace tdsim
