// Fleet benchmark: simulation-as-a-service throughput (README "Fleet /
// scheduler"). One platform is warmed once through Kernel::build() steps,
// snapshotted, and forked into many scenario variants -- each variant
// grafts a scenario-specific pipeline at the warm point (ForkOptions::
// diverge) and runs to completion on the process-wide Scheduler, several
// forks alive at once with interleaved run() windows. The batching,
// interleaving and failure handling are fleet::Supervisor's (this bench is
// its reference consumer).
//
// Every scenario is verified in-bench against a cold standalone kernel
// built with the same steps: end date, delta count, and the consumed-word
// checksum must match bit-for-bit, or the bench exits 1 before writing
// anything. The cold pass doubles as the throughput reference.
//
// `bench_fleet --json [--scenarios N] [--words N]` writes BENCH_fleet.json:
// a "fork" and a "cold" summary row (shared deterministic digest, separate
// walls) plus a few per-scenario sample rows. CI's perf-gate feeds the
// file to tools/check_bench.py, which holds the deterministic fields to
// the committed baseline and requires the fork path to reach
// --fleet-throughput of the cold path's scenarios/sec.
//
// `--chaos N` additionally arms a FaultPlan on the first N scenarios --
// even indices carry a persistent injected throw (a "model bug": fails
// again on the sequential retry, quarantined), odd indices a
// parallel-only throw (a "scheduling bug": the workers=0 retry survives).
// The bench then asserts the Supervisor's classification, verifies every
// survivor bit-identical against its cold run, and holds the survivors'
// fork throughput to --fleet-throughput of their cold throughput
// in-bench. Chaos results go to BENCH_fleet_chaos.json (table
// "fleet_chaos"), so the committed normal-mode baseline is untouched.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/smart_fifo.h"
#include "fleet/supervisor.h"
#include "kernel/failure.h"
#include "kernel/fault_plan.h"
#include "kernel/kernel.h"
#include "kernel/snapshot.h"
#include "kernel/sync_domain.h"

namespace {

using tdsim::FailureKind;
using tdsim::FailureReport;
using tdsim::FaultPlan;
using tdsim::ForkOptions;
using tdsim::Kernel;
using tdsim::KernelConfig;
using tdsim::SmartFifo;
using tdsim::Snapshot;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using tdsim::fleet::FleetOptions;
using tdsim::fleet::ScenarioOutcome;
using tdsim::fleet::ScenarioSpec;
using tdsim::fleet::ScenarioStatus;
using tdsim::fleet::Supervisor;
using namespace tdsim::time_literals;

/// Per-kernel, per-pipeline model state, looked up by kernel address so
/// that build steps replayed into forks construct fresh state (same
/// discipline as tests/test_snapshot.cpp). Slots must be dropped before
/// their kernel dies: channel destructors touch the kernel.
struct PipeState {
  std::unique_ptr<SmartFifo<int>> fifo;
  std::uint32_t checksum = 0;
  std::uint64_t consumed = 0;
};

struct Model {
  std::map<std::string, PipeState> pipes;
};

struct ModelRegistry {
  std::map<const Kernel*, Model> slots;
  Model& of(const Kernel& k) { return slots[&k]; }
  void drop(const Kernel& k) { slots.erase(&k); }
};

ModelRegistry g_models;

/// One replayable platform component: a producer/consumer pair over a
/// Smart FIFO in two concurrent domains, transfer length `words`.
void build_pipeline(Kernel& k, const std::string& tag, int words) {
  k.build([tag, words](Kernel& kk) {
    PipeState& state = g_models.of(kk).pipes[tag];
    SyncDomain& prod = kk.create_domain(
        {.name = tag + "_prod", .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = kk.create_domain(
        {.name = tag + "_cons", .quantum = 300_ns, .concurrent = true});
    state.fifo = std::make_unique<SmartFifo<int>>(kk, tag + "_fifo", 4);
    SmartFifo<int>* fifo = state.fifo.get();
    ThreadOptions popts;
    popts.domain = &prod;
    kk.spawn_thread(tag + "_producer", [&kk, fifo, words] {
      for (int i = 0; i < words; ++i) {
        kk.current_domain().inc((i % 5 + 1) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    kk.spawn_thread(tag + "_consumer", [&kk, fifo, &state, words] {
      for (int i = 0; i < words; ++i) {
        state.checksum = state.checksum * 31 +
                         static_cast<std::uint32_t>(fifo->read());
        state.consumed++;
        kk.current_domain().inc((i % 3 + 1) * 4_ns);
      }
    }, copts);
  });
}

/// The shared platform: three pipelines warmed together. Scenario
/// pipelines graft on top of this at the warm point.
void build_platform(Kernel& k, int words) {
  build_pipeline(k, "cpu", words);
  build_pipeline(k, "dma", words / 2);
  build_pipeline(k, "io", words / 4);
}

int scenario_words(int scenario, int words) {
  return words / 4 + scenario % 7;
}

struct ScenarioResult {
  std::uint64_t end_ps = 0;
  std::uint64_t delta_cycles = 0;
  std::uint32_t checksum = 0;
  std::uint64_t consumed = 0;

  void capture(const Kernel& k) {
    end_ps = k.now().ps();
    delta_cycles = k.stats().delta_cycles;
    checksum = 0;
    consumed = 0;
    for (const auto& [tag, state] : g_models.of(k).pipes) {
      checksum = checksum * 16777619u + state.checksum;
      consumed += state.consumed;
    }
  }

  bool operator==(const ScenarioResult& o) const {
    return end_ps == o.end_ps && delta_cycles == o.delta_cycles &&
           checksum == o.checksum && consumed == o.consumed;
  }
};

/// Cold reference: the scenario's full construction from scratch, warm-up
/// included, in a standalone kernel.
ScenarioResult run_cold(int scenario, int words, Time warm_slice) {
  Kernel k(KernelConfig{.workers = 2});
  build_platform(k, words);
  k.run(warm_slice);
  build_pipeline(k, "scn" + std::to_string(scenario),
                 scenario_words(scenario, words));
  k.run();
  ScenarioResult result;
  result.capture(k);
  g_models.drop(k);
  return result;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int json_main(int scenarios, int words, int chaos, double fleet_floor) {
  // Mid-flight for the default --words 64 platform (natural end ~600 ns),
  // so forks genuinely replay a half-run schedule, not a finished one.
  constexpr Time kWarmSlice = 300_ns;
  constexpr int kBatch = 4;  // forks alive at once, run windows interleaved

  // Warm the platform once and snapshot it; every scenario starts here.
  Kernel warm(KernelConfig{.workers = 2});
  build_platform(warm, words);
  warm.run(kWarmSlice);
  const Snapshot snap = warm.snapshot();

  // Scenario specs. The first `chaos` scenarios carry an injected fault
  // in their grafted producer: even index -> persistent throw
  // (quarantined), odd index -> parallel-only throw (the sequential
  // retry survives it).
  std::vector<ScenarioSpec> specs(static_cast<std::size_t>(scenarios));
  for (int scenario = 0; scenario < scenarios; ++scenario) {
    ScenarioSpec& spec = specs[static_cast<std::size_t>(scenario)];
    spec.name = std::to_string(scenario);
    spec.fork.diverge = [scenario, words](Kernel& kk) {
      build_pipeline(kk, "scn" + std::to_string(scenario),
                     scenario_words(scenario, words));
    };
    if (scenario < chaos) {
      const std::string victim =
          "scn" + std::to_string(scenario) + "_producer";
      spec.faults = FaultPlan::parse(scenario % 2 == 0
                                         ? "throw:" + victim + "@3"
                                         : "throw:" + victim + "@3!par");
    }
  }

  // Supervised fork pass: batches of kBatch, every member advanced
  // through the interleaved window before any finishes, failures retried
  // sequentially (see fleet/supervisor.h).
  std::vector<ScenarioResult> fork_results(
      static_cast<std::size_t>(scenarios));
  std::vector<char> survived(static_cast<std::size_t>(scenarios), 0);
  Supervisor supervisor(snap, {},
                        FleetOptions{.batch = kBatch,
                                     .windows = {kWarmSlice + 500_ns}});
  const auto fork_start = std::chrono::steady_clock::now();
  const std::vector<ScenarioOutcome> outcomes = supervisor.run(
      specs,
      [&](Kernel& kernel, const ScenarioSpec& spec, const ScenarioOutcome&) {
        const std::size_t index = std::stoul(spec.name);
        fork_results[index].capture(kernel);
        survived[index] = 1;
        g_models.drop(kernel);
      },
      [&](Kernel* kernel, const ScenarioSpec&, const FailureReport&) {
        if (kernel != nullptr) {
          g_models.drop(*kernel);  // before the Supervisor destroys it
        }
      });
  const double fork_wall = seconds_since(fork_start);

  // Classification must match the chaos plan exactly: N/2 (rounded up)
  // quarantined model bugs, N/2 retried scheduling bugs, everyone else
  // completed first try -- and every first failure must be the injection.
  int completed = 0;
  int retried = 0;
  int quarantined = 0;
  for (const ScenarioOutcome& outcome : outcomes) {
    switch (outcome.status) {
      case ScenarioStatus::Completed:
        completed++;
        break;
      case ScenarioStatus::Retried:
        retried++;
        break;
      case ScenarioStatus::Quarantined:
        quarantined++;
        break;
    }
    if (outcome.first_failure &&
        outcome.first_failure->kind != FailureKind::Injected) {
      std::fprintf(stderr,
                   "ERROR: scenario %s failed outside the chaos plan: %s\n",
                   outcome.name.c_str(),
                   outcome.first_failure->to_string().c_str());
      return 1;
    }
  }
  const int expected_quarantined = (chaos + 1) / 2;
  const int expected_retried = chaos / 2;
  if (quarantined != expected_quarantined || retried != expected_retried ||
      completed != scenarios - chaos) {
    std::fprintf(stderr,
                 "ERROR: chaos classification off: %d completed, %d "
                 "retried, %d quarantined (expected %d/%d/%d)\n",
                 completed, retried, quarantined, scenarios - chaos,
                 expected_retried, expected_quarantined);
    return 1;
  }

  // Cold pass over the survivors: every survivor rebuilt standalone --
  // the bit-exactness reference and the throughput reference in one.
  const int survivors = completed + retried;
  int mismatches = 0;
  const auto cold_start = std::chrono::steady_clock::now();
  for (int scenario = 0; scenario < scenarios; ++scenario) {
    if (!survived[static_cast<std::size_t>(scenario)]) {
      continue;
    }
    const ScenarioResult cold = run_cold(scenario, words, kWarmSlice);
    if (!(cold == fork_results[static_cast<std::size_t>(scenario)])) {
      const ScenarioResult& fork = fork_results[
          static_cast<std::size_t>(scenario)];
      std::fprintf(stderr,
                   "ERROR: scenario %d diverged: fork end=%llu deltas=%llu "
                   "checksum=%u consumed=%llu vs cold end=%llu deltas=%llu "
                   "checksum=%u consumed=%llu\n",
                   scenario,
                   static_cast<unsigned long long>(fork.end_ps),
                   static_cast<unsigned long long>(fork.delta_cycles),
                   fork.checksum,
                   static_cast<unsigned long long>(fork.consumed),
                   static_cast<unsigned long long>(cold.end_ps),
                   static_cast<unsigned long long>(cold.delta_cycles),
                   cold.checksum,
                   static_cast<unsigned long long>(cold.consumed));
      mismatches++;
    }
  }
  const double cold_wall = seconds_since(cold_start);
  if (mismatches != 0) {
    std::fprintf(stderr, "ERROR: %d of %d scenarios diverged from their "
                 "cold runs\n", mismatches, survivors);
    return 1;
  }

  // Fleet digest over the survivors: one number covering every surviving
  // scenario's deterministic result, so the committed baseline pins the
  // whole fleet (with --chaos 0 that is every scenario).
  std::uint64_t digest = 14695981039346656037ull;
  std::uint64_t end_ps_sum = 0;
  std::uint64_t delta_sum = 0;
  for (int scenario = 0; scenario < scenarios; ++scenario) {
    if (!survived[static_cast<std::size_t>(scenario)]) {
      continue;
    }
    const ScenarioResult& r = fork_results[static_cast<std::size_t>(scenario)];
    for (std::uint64_t v : {r.end_ps, r.delta_cycles,
                            static_cast<std::uint64_t>(r.checksum),
                            r.consumed}) {
      digest = (digest ^ v) * 1099511628211ull;
    }
    end_ps_sum += r.end_ps;
    delta_sum += r.delta_cycles;
  }

  const double fork_rate = fork_wall > 0 ? survivors / fork_wall : 0.0;
  const double cold_rate = cold_wall > 0 ? survivors / cold_wall : 0.0;
  std::printf("fleet: %d scenarios, %d survivors bit-identical to cold "
              "runs (%d retried, %d quarantined)\n",
              scenarios, survivors, retried, quarantined);
  std::printf("%6s | %10s | %14s\n", "path", "wall[s]", "scenarios/s");
  std::printf("%6s | %10.3f | %14.1f\n", "fork", fork_wall, fork_rate);
  std::printf("%6s | %10.3f | %14.1f\n", "cold", cold_wall, cold_rate);

  if (chaos > 0) {
    // In-bench survivor throughput gate, same shape as check_bench.py's
    // fleet gate (ratio floor, noise-floored on the cold wall): retries
    // and quarantines must not drag the surviving fleet below the floor.
    if (cold_wall >= 0.05 && cold_rate > 0 &&
        fork_rate < fleet_floor * cold_rate) {
      std::fprintf(stderr,
                   "ERROR: survivor fork throughput %.1f/s is below "
                   "%.0f%% of cold (%.1f/s)\n",
                   fork_rate, 100 * fleet_floor, cold_rate);
      return 1;
    }
  }

  // Forking must leave the donor kernel exactly where snapshot() saw it.
  const int still_warm = warm.now() == snap.warmed_to ? 1 : 0;

  // Chaos runs report to their own table so the committed normal-mode
  // baseline (BENCH_fleet.json) stays byte-comparable across chaos runs
  // in the same build directory.
  benchjson::Report report(chaos > 0 ? "fleet_chaos" : "fleet");
  report.row()
      .add("fleet_mode", std::string("fork"))
      .add("scenarios", static_cast<std::uint64_t>(scenarios))
      .add("words", static_cast<std::uint64_t>(words))
      .add("digest", digest)
      .add("end_ps_sum", end_ps_sum)
      .add("delta_cycles_sum", delta_sum)
      .add("wall_seconds", fork_wall)
      .add("scenarios_per_wall_sec", fork_rate);
  report.row()
      .add("fleet_mode", std::string("cold"))
      .add("scenarios", static_cast<std::uint64_t>(scenarios))
      .add("words", static_cast<std::uint64_t>(words))
      .add("digest", digest)
      .add("end_ps_sum", end_ps_sum)
      .add("delta_cycles_sum", delta_sum)
      .add("wall_seconds", cold_wall)
      .add("scenarios_per_wall_sec", cold_rate);
  if (chaos > 0) {
    report.row()
        .add("chaos", static_cast<std::uint64_t>(chaos))
        .add("survivors", static_cast<std::uint64_t>(survivors))
        .add("retried", static_cast<std::uint64_t>(retried))
        .add("quarantined", static_cast<std::uint64_t>(quarantined))
        .add("supervisor_retries", supervisor.retries());
  } else {
    for (int scenario : {0, 1, scenarios / 2, scenarios - 1}) {
      const ScenarioResult& r = fork_results[
          static_cast<std::size_t>(scenario)];
      report.row()
          .add("scenario", static_cast<std::uint64_t>(scenario))
          .add("scn_words",
               static_cast<std::uint64_t>(scenario_words(scenario, words)))
          .add("end_ps", r.end_ps)
          .add("delta_cycles", r.delta_cycles)
          .add("checksum", static_cast<std::uint64_t>(r.checksum))
          .add("consumed", r.consumed);
    }
  }
  report.row().add("warm_platform_intact",
                   static_cast<std::uint64_t>(still_warm));
  g_models.drop(warm);
  return report.write() && still_warm == 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int scenarios = 100;
  int words = 64;
  int chaos = 0;
  double fleet_floor = 0.35;
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      scenarios = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fleet-throughput") == 0 &&
               i + 1 < argc) {
      fleet_floor = std::atof(argv[++i]);
    }
  }
  if (scenarios < 2 || words < 8) {
    std::fprintf(stderr, "need --scenarios >= 2 and --words >= 8\n");
    return 1;
  }
  if (chaos < 0 || chaos > scenarios / 2) {
    std::fprintf(stderr, "need 0 <= --chaos <= scenarios/2\n");
    return 1;
  }
  (void)emit_json;  // the fleet sweep is the only mode
  return json_main(scenarios, words, chaos, fleet_floor);
}
