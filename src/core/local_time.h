// DEPRECATED compatibility shims over the temporal-decoupling subsystem.
//
// The machinery formerly implemented here now lives in the kernel layer as
// a first-class subsystem: each Process owns a LocalClock (offset,
// inc/advance_to/sync, generation-safe method re-arm) and each Kernel owns
// a SyncDomain (quantum policy, sync bookkeeping, per-cause statistics).
// See kernel/local_clock.h and kernel/sync_domain.h.
//
// The tdsim::td free functions below are retained as thin shims over
// Kernel::current()->sync_domain() so pre-subsystem code keeps compiling
// and producing bit-exact dates. New code should use the subsystem
// directly:
//
//   old (deprecated)            new
//   ------------------------    ------------------------------------------
//   td::inc(d)                  kernel.sync_domain().inc(d)
//   td::sync()                  kernel.sync_domain().sync(cause)
//   td::advance_local_to(t)     kernel.sync_domain().advance_local_to(t)
//   td::local_time_stamp()      kernel.sync_domain().local_time_stamp()
//   td::needs_sync()            kernel.sync_domain().needs_sync()
//   td::method_sync_trigger()   kernel.sync_domain().method_sync_trigger()
//   td::local_time_of(p)        p.clock().now()
//   td::QuantumKeeper           tdsim::QuantumKeeper (kernel/sync_domain.h)
//
// All shims operate on the process currently executing inside
// Kernel::current(); calling them from outside a running simulation is an
// error.
#pragma once

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/sync_domain.h"
#include "kernel/time.h"

namespace tdsim::td {

/// Deprecated: use SyncDomain::local_time_stamp().
Time local_time_stamp();

/// Deprecated: use SyncDomain::local_offset() or LocalClock::offset().
Time local_offset();

/// Deprecated: use SyncDomain::inc() or LocalClock::inc().
void inc(Time duration);

/// Deprecated: use SyncDomain::advance_local_to() or
/// LocalClock::advance_to().
void advance_local_to(Time date);

/// Deprecated: use SyncDomain::sync() or LocalClock::sync(), which also
/// attribute the synchronization to a cause.
void sync();

/// Deprecated: use SyncDomain::is_synchronized().
bool is_synchronized();

/// Deprecated: use SyncDomain::needs_sync().
bool needs_sync();

/// Deprecated: use process.clock().now().
Time local_time_of(const Process& process);

/// Deprecated: use SyncDomain::method_sync_trigger() or
/// LocalClock::method_rearm().
void method_sync_trigger();

/// Deprecated alias; the keeper now lives in kernel/sync_domain.h and
/// routes through its stored kernel's SyncDomain.
using QuantumKeeper = tdsim::QuantumKeeper;

}  // namespace tdsim::td
