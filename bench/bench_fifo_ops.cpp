// Microbenchmarks of individual FIFO operations (paper SIII.B/SIII.C):
//   * write/read transfer cost: Smart FIFO vs regular FIFO vs SyncFifo;
//   * is_empty / is_full: "two tests instead of one for a regular FIFO" --
//     constant time, marginally slower;
//   * get_size: "the Smart FIFO is slower than a regular FIFO for get_size
//     accesses" -- linear in the depth, acceptable because the monitor
//     interface is low-rate.
//
// Each benchmark runs a complete mini-simulation per batch; the reported
// rate is per FIFO operation.
//
// `bench_fifo_ops --json [--words N]` instead runs the deterministic
// chunked-vs-per-element transfer sweep and writes BENCH_fifo_ops.json:
// one row per (chunk_mode, depth), with a "wide" flag on the deep-FIFO
// rows. CI's perf-gate feeds the file to tools/check_bench.py, which
// holds the deterministic fields to the committed baseline and requires
// the chunked rows to beat the per-element rows on the wide sweep
// (--chunked-speedup). The sweep itself asserts chunked/element end-date
// equality before writing anything.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_json.h"
#include "core/arbiter.h"
#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/kernel.h"

namespace {

using tdsim::Kernel;
using tdsim::SmartFifo;
using tdsim::SyncFifo;
using tdsim::Time;
using tdsim::UntimedFifo;
using namespace tdsim::time_literals;

constexpr std::uint64_t kWordsPerBatch = 1 << 14;

/// Producer/consumer transfer through any FifoInterface; producer and
/// consumer are decoupled threads annotating 3 ns / 2 ns per word.
template <typename FifoT>
void transfer_batch(std::size_t depth, std::uint64_t words, bool decoupled) {
  Kernel kernel;
  FifoT fifo(kernel, "bench.fifo", depth);
  kernel.spawn_thread("producer", [&] {
    for (std::uint64_t i = 0; i < words; ++i) {
      if (decoupled) {
        kernel.sync_domain().inc(3_ns);
      } else {
        tdsim::wait(3_ns);
      }
      fifo.write(static_cast<std::uint32_t>(i));
    }
  });
  kernel.spawn_thread("consumer", [&] {
    std::uint32_t sum = 0;
    for (std::uint64_t i = 0; i < words; ++i) {
      sum += fifo.read();
      if (decoupled) {
        kernel.sync_domain().inc(2_ns);
      } else {
        tdsim::wait(2_ns);
      }
    }
    benchmark::DoNotOptimize(sum);
  });
  kernel.run();
}

void BM_TransferSmart(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<SmartFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmart)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TransferSyncPerAccess(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<SyncFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSyncPerAccess)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_TransferRegularUntimed(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    transfer_batch<UntimedFifo<std::uint32_t>>(depth, kWordsPerBatch, true);
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferRegularUntimed)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

/// is_empty on a Smart FIFO: constant-time, two tests.
void BM_IsEmptySmart(benchmark::State& state) {
  constexpr std::uint64_t kQueries = 1 << 16;
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 64);
    kernel.spawn_thread("prober", [&] {
      fifo.write(1);
      bool acc = false;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc ^= fifo.is_empty();
        kernel.sync_domain().inc(1_ns);
      }
      benchmark::DoNotOptimize(acc);
      benchmark::DoNotOptimize(fifo.read());
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_IsEmptySmart);

/// is_empty (empty()) on a regular FIFO: one test.
void BM_IsEmptyRegular(benchmark::State& state) {
  constexpr std::uint64_t kQueries = 1 << 16;
  for (auto _ : state) {
    Kernel kernel;
    UntimedFifo<std::uint32_t> fifo(kernel, "bench.fifo", 64);
    kernel.spawn_thread("prober", [&] {
      fifo.write(1);
      bool acc = false;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc ^= fifo.is_empty();
        kernel.sync_domain().inc(1_ns);
      }
      benchmark::DoNotOptimize(acc);
      benchmark::DoNotOptimize(fifo.read());
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_IsEmptyRegular);

/// get_size on a half-full Smart FIFO: O(depth) reconstruction from the
/// per-cell date pairs.
void BM_GetSizeSmart(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kQueries = 1 << 12;
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", depth);
    kernel.spawn_thread("monitor", [&] {
      for (std::size_t i = 0; i < depth / 2; ++i) {
        fifo.write(static_cast<std::uint32_t>(i));
      }
      std::size_t acc = 0;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc += fifo.get_size();
      }
      benchmark::DoNotOptimize(acc);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_GetSizeSmart)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Size query on a regular FIFO: O(1).
void BM_GetSizeRegular(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kQueries = 1 << 12;
  for (auto _ : state) {
    Kernel kernel;
    UntimedFifo<std::uint32_t> fifo(kernel, "bench.fifo", depth);
    kernel.spawn_thread("monitor", [&] {
      for (std::size_t i = 0; i < depth / 2; ++i) {
        fifo.write(static_cast<std::uint32_t>(i));
      }
      std::size_t acc = 0;
      for (std::uint64_t i = 0; i < kQueries; ++i) {
        acc += fifo.get_size();
      }
      benchmark::DoNotOptimize(acc);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kQueries);
}
BENCHMARK(BM_GetSizeRegular)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Arbitrated access (ablation): the WriteArbiter/ReadArbiter synchronize
/// every access to keep side dates monotone across multiple clients --
/// "decoupling cannot be preserved across an arbitration point". Expect
/// sync-per-access performance even on a Smart FIFO.
void BM_TransferSmartArbitrated(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 16);
    tdsim::WriteArbiter<std::uint32_t> write_side(fifo);
    tdsim::ReadArbiter<std::uint32_t> read_side(fifo);
    kernel.spawn_thread("producer", [&] {
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        kernel.sync_domain().inc(3_ns);
        write_side.write(static_cast<std::uint32_t>(i));
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        sum += read_side.read();
        kernel.sync_domain().inc(2_ns);
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmartArbitrated);

/// Cost of the side-ordering runtime check (ablation: it is on by default).
void BM_TransferSmartNoOrderCheck(benchmark::State& state) {
  for (auto _ : state) {
    Kernel kernel;
    SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", 16);
    fifo.set_side_order_checking(false);
    kernel.spawn_thread("producer", [&] {
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        kernel.sync_domain().inc(3_ns);
        fifo.write(static_cast<std::uint32_t>(i));
      }
    });
    kernel.spawn_thread("consumer", [&] {
      std::uint32_t sum = 0;
      for (std::uint64_t i = 0; i < kWordsPerBatch; ++i) {
        sum += fifo.read();
        kernel.sync_domain().inc(2_ns);
      }
      benchmark::DoNotOptimize(sum);
    });
    kernel.run();
  }
  state.SetItemsProcessed(state.iterations() * kWordsPerBatch * 2);
}
BENCHMARK(BM_TransferSmartNoOrderCheck);

// ---------------------------------------------------------------------
// --json: deterministic chunked-vs-per-element sweep (perf-gated by CI)
// ---------------------------------------------------------------------

struct SweepResult {
  double wall_seconds = 0;
  /// The data-path dates the chunked mode must reproduce bit-exactly:
  /// each side's local date after its last transfer. (The kernel's *end*
  /// date is not compared across modes -- it includes trailing
  /// external-view notifications nobody observes, whose schedule is
  /// legitimately batched in chunked mode.)
  Time producer_end;
  Time consumer_end;
  tdsim::KernelStats stats;
  std::uint64_t writer_blocks = 0;
  std::uint64_t reader_blocks = 0;
};

/// One decoupled producer/consumer transfer, pinned to the given chunk
/// capacity (1 = per-element, environment-proof against TDSIM_CHUNKED).
SweepResult transfer_sweep(std::size_t depth, std::uint64_t words,
                           std::size_t chunk_capacity) {
  Kernel kernel;
  SmartFifo<std::uint32_t> fifo(kernel, "bench.fifo", depth);
  fifo.set_chunk_capacity(chunk_capacity);
  SweepResult result;
  kernel.spawn_thread("producer", [&] {
    for (std::uint64_t i = 0; i < words; ++i) {
      kernel.sync_domain().inc(3_ns);
      fifo.write(static_cast<std::uint32_t>(i));
    }
    result.producer_end = kernel.sync_domain().local_time_stamp();
  });
  kernel.spawn_thread("consumer", [&] {
    std::uint32_t sum = 0;
    for (std::uint64_t i = 0; i < words; ++i) {
      sum += fifo.read();
      kernel.sync_domain().inc(2_ns);
    }
    benchmark::DoNotOptimize(sum);
    result.consumer_end = kernel.sync_domain().local_time_stamp();
  });
  const auto start = std::chrono::steady_clock::now();
  kernel.run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.stats = kernel.stats();
  result.writer_blocks = fifo.writer_blocks();
  result.reader_blocks = fifo.reader_blocks();
  return result;
}

void add_sweep_row(benchjson::Report& report, const char* mode,
                   std::size_t depth, bool wide, std::uint64_t words,
                   const SweepResult& r) {
  report.row()
      .add("chunk_mode", std::string(mode))
      .add("depth", static_cast<std::uint64_t>(depth))
      .add("wide", static_cast<std::uint64_t>(wide ? 1 : 0))
      .add("words", words)
      .add("wall_seconds", r.wall_seconds)
      .add("producer_end_ps", r.producer_end.ps())
      .add("consumer_end_ps", r.consumer_end.ps())
      .add("context_switches", r.stats.context_switches)
      .add("delta_cycles", r.stats.delta_cycles)
      .add("writer_blocks", r.writer_blocks)
      .add("reader_blocks", r.reader_blocks)
      .add("syncs_fifo_full", r.stats.syncs(tdsim::SyncCause::FifoFull))
      .add("syncs_fifo_empty", r.stats.syncs(tdsim::SyncCause::FifoEmpty));
}

int json_main(std::uint64_t words) {
  constexpr std::size_t kChunkCapacity = 16;
  constexpr std::size_t kDepths[] = {4, 64, 256};
  benchjson::Report report("fifo_ops");
  std::printf("chunked-vs-element transfer sweep: %llu words per run\n",
              static_cast<unsigned long long>(words));
  std::printf("%7s | %12s %12s | %9s | %s\n", "depth", "element[s]",
              "chunked[s]", "el/ch", "dates");
  bool all_ok = true;
  for (std::size_t depth : kDepths) {
    const bool wide = depth >= 64;
    const SweepResult element = transfer_sweep(depth, words, 1);
    const SweepResult chunked = transfer_sweep(depth, words, kChunkCapacity);
    const bool dates_equal =
        element.producer_end == chunked.producer_end &&
        element.consumer_end == chunked.consumer_end &&
        element.writer_blocks == chunked.writer_blocks &&
        element.reader_blocks == chunked.reader_blocks;
    all_ok = all_ok && dates_equal;
    std::printf("%7zu | %12.3f %12.3f | %9.2f | %s\n", depth,
                element.wall_seconds, chunked.wall_seconds,
                element.wall_seconds / chunked.wall_seconds,
                dates_equal ? "equal" : "MISMATCH");
    add_sweep_row(report, "element", depth, wide, words, element);
    add_sweep_row(report, "chunked", depth, wide, words, chunked);
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "ERROR: chunked/element date or block-count mismatch\n");
    return 1;
  }
  return report.write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit_json = false;
  std::uint64_t words = 1 << 19;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (emit_json) {
    return json_main(words);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
