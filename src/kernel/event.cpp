#include "kernel/event.h"

#include <algorithm>

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/report.h"

namespace tdsim {

Event::Event(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

Event::~Event() {
  // Detach any process still referring to this event so the kernel never
  // dereferences a dangling pointer. Waiting on a destroyed event is a
  // modeling bug, but it must fail loudly, not corrupt memory.
  for (Process* p : dynamic_waiters_) {
    p->waiting_event_ = nullptr;
  }
  for (Process* p : static_waiters_) {
    auto& list = p->static_sensitivity_;
    list.erase(std::remove(list.begin(), list.end(), this), list.end());
  }
  // Queue entries referring to this event would dangle; remove them while
  // the event is still valid.
  kernel_.purge_timed_event_entries(*this);
  generation_++;  // invalidate scheduled delta firings
}

void Event::notify() {
  // Immediate notification overrides any pending one.
  cancel();
  kernel_.trigger_event(*this);
}

void Event::notify_delta() {
  if (pending_ == Pending::Delta) {
    return;  // already pending at the earliest possible date
  }
  if (pending_ == Pending::Timed) {
    kernel_.note_timed_event_stale();
    generation_++;  // delta overrides timed
  }
  pending_ = Pending::Delta;
  kernel_.queue_delta_notification(*this);
}

void Event::notify(Time delay) {
  if (delay.is_zero()) {
    notify_delta();
    return;
  }
  const Time at = kernel_.now() + delay;
  if (pending_ == Pending::Delta) {
    return;  // pending delta is earlier than any timed notification
  }
  if (pending_ == Pending::Timed && pending_at_ <= at) {
    return;  // an earlier-or-equal notification is already pending
  }
  if (pending_ == Pending::Timed) {
    kernel_.note_timed_event_stale();
  }
  generation_++;  // supersede a later pending timed notification, if any
  pending_ = Pending::Timed;
  pending_at_ = at;
  kernel_.schedule_event_fire(*this, at);
}

void Event::cancel() {
  if (pending_ == Pending::None) {
    return;
  }
  if (pending_ == Pending::Timed) {
    kernel_.note_timed_event_stale();
  }
  generation_++;
  pending_ = Pending::None;
}

}  // namespace tdsim
