// Timestamped command hand-off between a temporally decoupled commander
// and a worker thread.
//
// The recurring pattern of the case-study SoC (paper SIV.C): embedded
// software running ahead of the global date writes a "start" register;
// the hardware thread must begin processing at the *commander's local
// date*, not at the global date the write physically executed at. This is
// the same idea as a Smart FIFO insertion (a date travels with the data),
// specialized to a single command slot. Used by the accelerators and the
// DMA engine.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace tdsim {

template <typename Command>
class StartGate {
 public:
  StartGate(Kernel& kernel, std::string name)
      : kernel_(kernel), event_(kernel, name + ".start") {
    domain_link_.set_label(std::move(name));
  }

  /// Posts `command`, stamped with the caller's local date. Callable from
  /// any process (or hook running on behalf of one). Returns false when a
  /// command is already pending (the worker has not consumed it yet).
  bool post(Command command) {
    domain_link_.touch(kernel_.current_domain());
    if (pending_.has_value()) {
      return false;
    }
    pending_.emplace(std::move(command));
    date_ = kernel_.current_domain().local_time_stamp();
    event_.notify();
    return true;
  }

  bool has_pending() const { return pending_.has_value(); }

  /// Worker side: blocks until a command is posted, advances the worker's
  /// local date to the commander's date (timestamped hand-off), and
  /// returns the command. Thread processes only.
  Command await() {
    domain_link_.touch(kernel_.current_domain());
    if (!pending_.has_value()) {
      // Synchronize before blocking (paper SIII.A: "synchronize the
      // process and wait") -- suspending with a non-zero offset would
      // make the local date drift with the global date.
      kernel_.current_domain().sync(SyncCause::SyncPoint);
      while (!pending_.has_value()) {
        kernel_.wait(event_);
      }
    }
    kernel_.current_domain().advance_local_to(date_);
    Command command = std::move(*pending_);
    pending_.reset();
    return command;
  }

  /// Non-blocking worker-side probe for method processes: the command and
  /// its date, if any (the method applies the date itself via the sync
  /// domain's inc or by scheduling).
  std::optional<std::pair<Command, Time>> try_take() {
    domain_link_.touch(kernel_.current_domain());
    if (!pending_.has_value()) {
      return std::nullopt;
    }
    std::pair<Command, Time> out{std::move(*pending_), date_};
    pending_.reset();
    return out;
  }

  /// Notified (immediately) when a command is posted.
  Event& event() { return event_; }

  /// Declares the minimum commander-to-worker start offset this gate
  /// imposes (see DomainLink::set_min_latency): a design where the worker
  /// never starts less than `offset` after the posting date can use it as
  /// the lookahead latency of a decoupled Kernel::link_domains edge.
  void declare_min_latency(Time offset) {
    domain_link_.set_min_latency(offset);
  }

 private:
  Kernel& kernel_;
  Event event_;
  /// Commander and worker may live in different domains (the date travels
  /// with the command); declare the ordering to the parallel scheduler.
  DomainLink domain_link_;
  std::optional<Command> pending_;
  Time date_;
};

}  // namespace tdsim
