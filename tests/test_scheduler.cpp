// The process-wide Scheduler (kernel/scheduler.h): kernels as clients of
// one shared worker pool. Multi-kernel coexistence must be bit-exact --
// two kernels with interleaved run() slices on the shared pool produce
// exactly the dates and counters of their solo runs, at every worker
// count -- plus client accounting (registration, slot recycling, lazy
// pool growth) and the elaboration-only contract of Kernel::set_workers.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/report.h"
#include "kernel/scheduler.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

struct Fingerprint {
  std::vector<Time> dates;
  Time end;
  std::uint64_t delta_cycles = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t sync_requests = 0;
  std::uint64_t parallel_rounds = 0;

  void capture(const Kernel& k) {
    end = k.now();
    delta_cycles = k.stats().delta_cycles;
    context_switches = k.stats().context_switches;
    sync_requests = k.stats().sync_requests;
    parallel_rounds = k.stats().parallel_rounds;
  }
};

void expect_fingerprint_equal(const Fingerprint& a, const Fingerprint& b,
                              const std::string& what) {
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.delta_cycles, b.delta_cycles) << what;
  EXPECT_EQ(a.context_switches, b.context_switches) << what;
  EXPECT_EQ(a.sync_requests, b.sync_requests) << what;
  EXPECT_EQ(a.dates, b.dates) << what;
}

/// Per-kernel workload state; lives in a deque so channel/date addresses
/// stay stable while several kernels run side by side. Each concurrency
/// group writes its own dates vector (groups may run on different workers
/// mid-run); captures concatenate them in cluster order afterwards.
struct Model {
  std::deque<std::unique_ptr<SmartFifo<int>>> fifos;
  std::deque<std::vector<Time>> cluster_dates;

  std::vector<Time> dates() const {
    std::vector<Time> all;
    for (const std::vector<Time>& cluster : cluster_dates) {
      all.insert(all.end(), cluster.begin(), cluster.end());
    }
    return all;
  }
};

/// Two independent concurrency groups (producer/consumer over a Smart
/// FIFO each), seeded so different kernels carry visibly different
/// schedules. The same model is used solo and multiplexed.
void build_model(Kernel& k, Model& model, int seed, int words) {
  for (int c = 0; c < 2; ++c) {
    const std::string suffix = std::to_string(seed) + "_" + std::to_string(c);
    SyncDomain& prod = k.create_domain(
        {.name = "mp" + suffix, .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = k.create_domain(
        {.name = "mc" + suffix, .quantum = 300_ns, .concurrent = true});
    model.fifos.push_back(std::make_unique<SmartFifo<int>>(k, "mf" + suffix, 3));
    SmartFifo<int>* fifo = model.fifos.back().get();
    model.cluster_dates.emplace_back();
    std::vector<Time>* dates = &model.cluster_dates.back();
    ThreadOptions popts;
    popts.domain = &prod;
    k.spawn_thread("producer" + suffix, [&k, fifo, seed, c, words] {
      for (int i = 0; i < words; ++i) {
        k.current_domain().inc((i % 5 + 1 + seed + c) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    k.spawn_thread("consumer" + suffix, [&k, fifo, dates, seed, c, words] {
      for (int i = 0; i < words; ++i) {
        const int v = fifo->read();
        k.current_domain().inc((i % 3 + 1 + seed + c) * 4_ns);
        dates->push_back(k.current_domain().local_time_stamp());
        if (v != i) {
          dates->push_back(Time::max());  // corruption marker
        }
      }
    }, copts);
  }
}

Fingerprint run_solo(std::size_t workers, int seed, int words) {
  Kernel k(KernelConfig{.workers = workers});
  Model model;
  build_model(k, model, seed, words);
  k.run();
  Fingerprint out;
  out.capture(k);
  out.dates = model.dates();
  return out;
}

TEST(Scheduler, TwoKernelsInterleavedMatchTheirSoloRuns) {
  constexpr int kWords = 40;
  for (std::size_t workers : {0u, 1u, 4u}) {
    const std::string what = "workers=" + std::to_string(workers);
    const Fingerprint solo_a = run_solo(workers, /*seed=*/0, kWords);
    const Fingerprint solo_b = run_solo(workers, /*seed=*/7, kWords);

    // Same two kernels, but alive at once on the shared pool, their
    // run() windows interleaved slice by slice.
    Kernel ka(KernelConfig{.workers = workers});
    Kernel kb(KernelConfig{.workers = workers});
    Model ma;
    Model mb;
    build_model(ka, ma, /*seed=*/0, kWords);
    build_model(kb, mb, /*seed=*/7, kWords);
    for (Time slice : {100_ns, 300_ns, 650_ns}) {
      ka.run(slice);
      kb.run(slice);
    }
    ka.run();
    kb.run();
    Fingerprint inter_a;
    inter_a.capture(ka);
    inter_a.dates = ma.dates();
    Fingerprint inter_b;
    inter_b.capture(kb);
    inter_b.dates = mb.dates();
    expect_fingerprint_equal(solo_a, inter_a, "kernel A, " + what);
    expect_fingerprint_equal(solo_b, inter_b, "kernel B, " + what);
    if (workers >= 2) {
      // Both kernels really multiplexed parallel rounds over the pool.
      EXPECT_GT(inter_a.parallel_rounds, 0u) << what;
      EXPECT_GT(inter_b.parallel_rounds, 0u) << what;
    }
  }
}

TEST(Scheduler, MixedWorkerCountsCoexist) {
  // A parallel kernel and a sequential kernel share the process; the
  // sequential one must stay bit-exact with its solo run (its quota is
  // zero -- pool workers never touch it).
  constexpr int kWords = 30;
  const Fingerprint solo_seq = run_solo(0, /*seed=*/3, kWords);
  Kernel parallel(KernelConfig{.workers = 4});
  Kernel sequential(KernelConfig{.workers = 0});
  Model mp;
  Model ms;
  build_model(parallel, mp, /*seed=*/5, kWords);
  build_model(sequential, ms, /*seed=*/3, kWords);
  parallel.run(400_ns);
  sequential.run(400_ns);
  parallel.run();
  sequential.run();
  Fingerprint seq;
  seq.capture(sequential);
  seq.dates = ms.dates();
  expect_fingerprint_equal(solo_seq, seq, "sequential beside parallel");
  EXPECT_TRUE(mp.dates() == run_solo(4, /*seed=*/5, kWords).dates);
}

TEST(Scheduler, ClientAccountingAndSlotRecycling) {
  Scheduler& scheduler = Scheduler::instance();
  const std::size_t base = scheduler.clients();
  {
    Kernel a;
    EXPECT_EQ(scheduler.clients(), base + 1);
    Kernel b;
    EXPECT_EQ(scheduler.clients(), base + 2);
  }
  EXPECT_EQ(scheduler.clients(), base);
  // Churning kernels recycles slots instead of growing the table.
  for (int i = 0; i < 100; ++i) {
    Kernel churn;
    EXPECT_EQ(scheduler.clients(), base + 1);
  }
  EXPECT_EQ(scheduler.clients(), base);
}

TEST(Scheduler, PoolGrowsToTheLargestQuota) {
  Scheduler& scheduler = Scheduler::instance();
  Kernel k(KernelConfig{.workers = 3});
  Model model;
  build_model(k, model, /*seed=*/11, /*words=*/20);
  k.run();
  // Quota 3 = the driving thread + 2 pool workers; the pool never
  // shrinks, so by now it holds at least those 2 (other tests may have
  // grown it further).
  EXPECT_GE(scheduler.threads(), 2u);
}

TEST(Scheduler, SetWorkersIsElaborationOnly) {
  Kernel k;
  k.set_workers(2);  // before the first run(): fine
  EXPECT_EQ(k.workers(), 2u);
  EXPECT_EQ(k.config().workers.value(), 2u);
  k.spawn_thread("t", [&k] { k.wait(1_ns); });
  k.run();
  EXPECT_THROW(k.set_workers(4), SimulationError);
  EXPECT_EQ(k.workers(), 2u);  // the failed call must not half-apply
}

}  // namespace
}  // namespace tdsim
