// Per-group conservative lookahead (Kernel::link_domains decoupled
// overload, SmartFifo::declare_cell_latency): zero-latency links degrade
// to the barrier path, mid-run latency redeclaration re-tightens the
// derived bound, free-running groups stay bit-exact with the sequential
// schedule, set_lookahead_limit(0) disables free-running, explain_group
// shows link latencies, and the per-domain quantum decision-trace ring.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/quantum_controller.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

/// The deterministic fingerprint free-running must reproduce bit-exactly.
struct Fingerprint {
  Time end;
  std::uint64_t delta_cycles = 0;
  std::uint64_t timed_waves = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t event_triggers = 0;
  std::vector<Time> dates;

  void capture(const Kernel& kernel) {
    const KernelStats& stats = kernel.stats();
    end = kernel.now();
    delta_cycles = stats.delta_cycles;
    timed_waves = stats.timed_waves;
    context_switches = stats.context_switches;
    event_triggers = stats.event_triggers;
  }
};

void expect_fingerprint_equal(const Fingerprint& a, const Fingerprint& b,
                              const std::string& what) {
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.delta_cycles, b.delta_cycles) << what;
  EXPECT_EQ(a.timed_waves, b.timed_waves) << what;
  EXPECT_EQ(a.context_switches, b.context_switches) << what;
  EXPECT_EQ(a.event_triggers, b.event_triggers) << what;
  EXPECT_EQ(a.dates, b.dates) << what;
}

/// Independent producer/consumer clusters (one Smart FIFO each, so the
/// two domains of a cluster share a group but clusters do not): the
/// canonical shape where free-running replaces the global barrier.
struct ClusterRun {
  Fingerprint fingerprint;
  std::uint64_t lookahead_advances = 0;
};

ClusterRun run_clusters(std::size_t workers, std::size_t cluster_count,
                        std::size_t lookahead_limit) {
  Kernel k;
  k.set_workers(workers);
  k.set_lookahead_limit(lookahead_limit);
  struct Cluster {
    SyncDomain* producer_side;
    SyncDomain* consumer_side;
    std::unique_ptr<SmartFifo<int>> fifo;
    std::vector<Time> dates;
  };
  std::vector<Cluster> clusters(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    Cluster& cluster = clusters[c];
    const std::string suffix = std::to_string(c);
    cluster.producer_side = &k.create_domain(
        {.name = "lap" + suffix, .quantum = 40_ns, .concurrent = true});
    cluster.consumer_side = &k.create_domain(
        {.name = "lac" + suffix, .quantum = 300_ns, .concurrent = true});
    cluster.fifo = std::make_unique<SmartFifo<int>>(k, "laf" + suffix, 3);
    cluster.fifo->declare_cell_latency(40_ns);
    ThreadOptions popts;
    popts.domain = cluster.producer_side;
    k.spawn_thread("producer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 40; ++i) {
        k.current_domain().inc((i % 5 + 1 + static_cast<int>(c)) * 3_ns);
        cluster.fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = cluster.consumer_side;
    k.spawn_thread("consumer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 40; ++i) {
        const int v = cluster.fifo->read();
        k.current_domain().inc((i % 3 + 1 + static_cast<int>(c)) * 4_ns);
        cluster.dates.push_back(k.current_domain().local_time_stamp());
        if (v != i) {
          cluster.dates.push_back(Time::max());  // corruption marker
        }
      }
    }, copts);
  }
  k.run();
  ClusterRun result;
  result.fingerprint.capture(k);
  for (Cluster& cluster : clusters) {
    result.fingerprint.dates.insert(result.fingerprint.dates.end(),
                                    cluster.dates.begin(),
                                    cluster.dates.end());
  }
  result.lookahead_advances = k.stats().lookahead_advances;
  return result;
}

TEST(Lookahead, IndependentGroupsFreeRunBitExact) {
  const ClusterRun sequential = run_clusters(0, 3, 64);
  EXPECT_EQ(sequential.lookahead_advances, 0u);
  for (std::size_t workers : {2u, 4u}) {
    const ClusterRun parallel = run_clusters(workers, 3, 64);
    expect_fingerprint_equal(sequential.fingerprint, parallel.fingerprint,
                             "workers=" + std::to_string(workers));
    // Three unbounded groups: the extensions must actually have run waves
    // ahead of the global horizon, not just fallen back to the barrier.
    EXPECT_GT(parallel.lookahead_advances, 0u)
        << "workers=" << workers;
  }
}

TEST(Lookahead, LimitZeroDisablesFreeRunningButStaysBitExact) {
  const ClusterRun sequential = run_clusters(0, 3, 64);
  const ClusterRun barriered = run_clusters(2, 3, 0);
  expect_fingerprint_equal(sequential.fingerprint, barriered.fingerprint,
                           "lookahead_limit=0");
  EXPECT_EQ(barriered.lookahead_advances, 0u);
}

TEST(Lookahead, ZeroLatencyLinkCycleDegradesToBarrier) {
  // A declared cycle whose weakest edge has zero latency gives the
  // scheduler nothing to free-run on: the zero edge degenerates to the
  // merging overload, so the cycle collapses into one group and every
  // horizon is a barrier again.
  const auto run = [](std::size_t workers) {
    Kernel k;
    k.set_workers(workers);
    SyncDomain& a = k.create_domain(
        {.name = "cyc_a", .quantum = 40_ns, .concurrent = true});
    SyncDomain& b = k.create_domain(
        {.name = "cyc_b", .quantum = 70_ns, .concurrent = true});
    k.link_domains(a, b, 50_ns, "a_to_b");
    k.link_domains(b, a, Time{}, "b_to_a");  // zero lookahead = barrier
    Fingerprint out;
    for (auto [domain, label] :
         {std::pair<SyncDomain*, const char*>{&a, "a"}, {&b, "b"}}) {
      ThreadOptions opts;
      opts.domain = domain;
      k.spawn_thread(std::string("cyc_") + label, [&k, &out] {
        for (int i = 0; i < 100; ++i) {
          k.current_domain().inc_and_sync_if_needed(9_ns);
          k.wait(13_ns);
        }
        out.dates.push_back(k.current_domain().local_time_stamp());
      }, opts);
    }
    k.run();
    out.capture(k);
    EXPECT_EQ(k.domain_group(a), k.domain_group(b));
    EXPECT_EQ(k.stats().lookahead_advances, 0u);
    return out;
  };
  const Fingerprint sequential = run(0);
  const Fingerprint parallel = run(2);
  expect_fingerprint_equal(sequential, parallel, "zero-latency cycle");
}

TEST(Lookahead, MidRunRedeclarationRetightensBound) {
  Kernel k;
  SyncDomain& a = k.create_domain(
      {.name = "bnd_a", .quantum = 50_ns, .concurrent = true});
  SyncDomain& b = k.create_domain(
      {.name = "bnd_b", .quantum = 50_ns, .concurrent = true});
  SyncDomain& lone = k.create_domain(
      {.name = "bnd_lone", .quantum = 50_ns, .concurrent = true});
  k.link_domains(a, b, 1_ms, "slow_path");
  for (auto [domain, label] :
       {std::pair<SyncDomain*, const char*>{&a, "a"}, {&b, "b"},
        {&lone, "lone"}}) {
    ThreadOptions opts;
    opts.domain = domain;
    k.spawn_thread(std::string("bnd_") + label, [&k] {
      for (int i = 0; i < 100000; ++i) {
        k.wait(20_ns);
      }
    }, opts);
  }
  k.run(1_us);
  // No inbound edge at all: the lone group free-runs to its wave cap.
  EXPECT_FALSE(k.lookahead_bound(lone).has_value());
  const std::optional<Time> before = k.lookahead_bound(a);
  ASSERT_TRUE(before.has_value());
  const std::uint64_t slack_before = before->ps() - k.now().ps();
  // Mid-run discovery of a much tighter coupling (e.g. a channel that
  // derived its real latency): takes effect at the next horizon.
  k.link_domains(a, b, 10_us, "slow_path_tightened");
  k.run(2_us);
  const std::optional<Time> after = k.lookahead_bound(a);
  ASSERT_TRUE(after.has_value());
  const std::uint64_t slack_after = after->ps() - k.now().ps();
  EXPECT_LT(slack_after, slack_before);
  // The 1 ms edge still exists; the tighter redeclaration must win.
  EXPECT_LT(slack_after, Time(1, TimeUnit::MS).ps());
}

TEST(Lookahead, ExplainGroupShowsLinkLatency) {
  Kernel k;
  SyncDomain& a = k.create_domain(
      {.name = "exp_a", .quantum = 40_ns, .concurrent = true});
  SyncDomain& b = k.create_domain(
      {.name = "exp_b", .quantum = 40_ns, .concurrent = true});
  SmartFifo<int> fifo(k, "exp_fifo", 4);
  fifo.declare_cell_latency(25_ns);  // 4 cells x 25 ns = 100 ns
  ThreadOptions aopts;
  aopts.domain = &a;
  k.spawn_thread("exp_writer", [&] {
    for (int i = 0; i < 10; ++i) {
      k.current_domain().inc(5_ns);
      fifo.write(i);
    }
  }, aopts);
  ThreadOptions bopts;
  bopts.domain = &b;
  k.spawn_thread("exp_reader", [&] {
    for (int i = 0; i < 10; ++i) {
      (void)fifo.read();
      k.current_domain().inc(7_ns);
    }
  }, bopts);
  k.run();
  const std::vector<std::string> lines = k.explain_group(a);
  ASSERT_FALSE(lines.empty());
  bool saw_latency = false;
  for (const std::string& line : lines) {
    if (line.find("exp_fifo") != std::string::npos &&
        line.find("min latency") != std::string::npos &&
        line.find("100 ns") != std::string::npos) {
      saw_latency = true;
    }
  }
  EXPECT_TRUE(saw_latency)
      << "explain_group must print the channel's declared minimum latency";
}

TEST(Lookahead, DecisionTraceRingKeepsNewestDecisions) {
  QuantumPolicy policy;
  policy.min_quantum = 10_ns;
  policy.max_quantum = 10_us;
  policy.min_syncs_per_decision = 8;
  policy.confirm_decisions = 1;
  Kernel k;
  SyncDomain& domain = k.create_domain(
      {.name = "trace", .quantum = 10_ns, .policy = policy});
  ThreadOptions opts;
  opts.domain = &domain;
  k.spawn_thread("churn", [&k] {
    for (int i = 0; i < 8000; ++i) {
      k.current_domain().inc_and_sync_if_needed(10_ns);
    }
  }, opts);
  k.run();
  const std::vector<QuantumDecision> trace = domain.decision_trace();
  ASSERT_FALSE(trace.empty());
  EXPECT_LE(trace.size(), kQuantumTraceDepth);
  // Oldest-to-newest, strictly increasing serials, newest == last.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].serial, trace[i - 1].serial + 1) << "slot " << i;
  }
  const QuantumDecision* last = domain.last_quantum_decision();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(trace.back().serial, last->serial);
  EXPECT_EQ(trace.back().at, last->at);
  // Enough horizons ran to rotate the ring: it must hold exactly the
  // newest kQuantumTraceDepth decisions, not the first ones.
  if (last->serial > kQuantumTraceDepth) {
    EXPECT_EQ(trace.size(), kQuantumTraceDepth);
    EXPECT_EQ(trace.front().serial, last->serial - kQuantumTraceDepth + 1);
  }
  // A domain without a controller has no trace.
  Kernel plain;
  SyncDomain& untuned =
      plain.create_domain({.name = "untuned", .quantum = 10_ns});
  EXPECT_TRUE(untuned.decision_trace().empty());
}

}  // namespace
}  // namespace tdsim
