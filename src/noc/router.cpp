#include "noc/router.h"

#include "kernel/report.h"

namespace tdsim::noc {

Router::Router(Module& parent, const std::string& name, std::uint16_t x,
               std::uint16_t y, std::uint16_t columns, std::uint16_t rows,
               Timing timing)
    : Module(parent, name),
      x_(x),
      y_(y),
      columns_(columns),
      rows_(rows),
      timing_(timing) {
  for (std::size_t p = 0; p < kPortCount; ++p) {
    in_flight_[p].emplace(kernel(),
                          full_name() + ".flight." +
                              to_string(static_cast<Port>(p)));
  }
}

void Router::connect_input(Port port, Fifo<Packet>& link) {
  inputs_[static_cast<std::size_t>(port)] = &link;
  // Every packet traversing this hop pays at least the header latency;
  // derive it as the link's minimum latency for the concurrency machinery.
  link.declare_min_latency(timing_.header_latency);
}

void Router::connect_output(Port port, Fifo<Packet>& link) {
  outputs_[static_cast<std::size_t>(port)] = &link;
  link.declare_min_latency(timing_.header_latency);
}

Port Router::route(NodeId dest) const {
  const std::uint16_t dx = dest % columns_;
  const std::uint16_t dy = static_cast<std::uint16_t>(dest / columns_);
  if (dx != x_) {
    return dx > x_ ? Port::East : Port::West;
  }
  if (dy != y_) {
    return dy > y_ ? Port::South : Port::North;
  }
  return Port::Local;
}

void Router::elaborate() {
  if (elaborated_) {
    Report::error("Router " + full_name() + ": elaborate() called twice");
  }
  elaborated_ = true;
  MethodOptions opts;
  for (std::size_t p = 0; p < kPortCount; ++p) {
    if (inputs_[p] != nullptr) {
      opts.sensitivity.push_back(&inputs_[p]->data_written_event());
    }
    if (outputs_[p] != nullptr) {
      opts.sensitivity.push_back(&outputs_[p]->data_read_event());
    }
    opts.sensitivity.push_back(&in_flight_[p]->get_event());
  }
  method("step", [this] { step(); }, std::move(opts));
}

void Router::step() {
  // Drain and arbitrate until no progress is possible; every blocking
  // condition is covered by the static sensitivity, so the method simply
  // returns and is re-triggered.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t p = 0; p < kPortCount; ++p) {
      progress |= try_deliver(p);
      progress |= try_arbitrate(p);
    }
  }
}

bool Router::try_deliver(std::size_t out_index) {
  if (outputs_[out_index] == nullptr) {
    return false;
  }
  auto& staged = staged_[out_index];
  if (!staged.has_value()) {
    auto packet = in_flight_[out_index]->get_next();
    if (!packet.has_value()) {
      return false;  // nothing ready (get_next re-armed the event if any)
    }
    staged = std::move(packet);
  }
  if (outputs_[out_index]->full()) {
    return false;  // backpressure; data_read sensitivity re-triggers us
  }
  outputs_[out_index]->nb_write(std::move(*staged));
  staged.reset();
  forwarded_++;
  return true;
}

bool Router::try_arbitrate(std::size_t out_index) {
  if (outputs_[out_index] == nullptr) {
    return false;
  }
  // The in-flight stage serializes the output: one packet at a time.
  if (in_flight_[out_index]->pending() != 0 ||
      staged_[out_index].has_value()) {
    return false;
  }
  for (std::size_t n = 0; n < kPortCount; ++n) {
    const std::size_t in_index = (rr_next_[out_index] + n) % kPortCount;
    Fifo<Packet>* in = inputs_[in_index];
    if (in == nullptr || in->empty()) {
      continue;
    }
    if (static_cast<std::size_t>(route(in->front().dest)) != out_index) {
      continue;
    }
    Packet packet;
    in->nb_read(packet);
    const Time latency =
        timing_.header_latency + timing_.word_latency * packet.size_words();
    in_flight_[out_index]->notify(std::move(packet), latency);
    rr_next_[out_index] = (in_index + 1) % kPortCount;
    return true;
  }
  return false;
}

}  // namespace tdsim::noc
