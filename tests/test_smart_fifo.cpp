// Smart FIFO unit semantics (paper SIII.A): date stamping, local-time
// bumps, blocking only on internal full/empty, side ordering.
#include "core/smart_fifo.h"

#include <gtest/gtest.h>

#include <vector>

#include "kernel/sync_domain.h"
#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {
namespace {

TEST(SmartFifo, ZeroDepthRejected) {
  Kernel k;
  EXPECT_THROW(SmartFifo<int>(k, "f", 0), SimulationError);
}

TEST(SmartFifo, TransfersDataInOrder) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  std::vector<int> got;
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 10; ++i) {
      f.write(i);
      k.sync_domain().inc(10_ns);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 10; ++i) {
      got.push_back(f.read());
      k.sync_domain().inc(10_ns);
    }
  });
  k.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got[i], i);
  }
}

TEST(SmartFifo, ReaderLocalDateBumpedToInsertionDate) {
  // Read step 2: "increase the reader process local time up to the
  // insertion date of the first busy cell".
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  Time reader_date;
  k.spawn_thread("wr", [&] {
    k.sync_domain().inc(30_ns);
    f.write(1);
  });
  k.spawn_thread("rd", [&] {
    (void)f.read();
    reader_date = k.sync_domain().local_time_stamp();
  });
  k.run();
  EXPECT_EQ(reader_date, 30_ns);
  // The writer executed first, so the data was internally present: the
  // reader never suspended -- only its local date was bumped.
  EXPECT_EQ(f.reader_blocks(), 0u);
  EXPECT_EQ(k.stats().context_switches, 2u);
}

TEST(SmartFifo, ReaderNotBumpedWhenDataAlreadyOld) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  Time reader_date;
  k.spawn_thread("wr", [&] { f.write(1); });  // inserted at 0
  k.spawn_thread("rd", [&] {
    k.sync_domain().inc(50_ns);
    (void)f.read();
    reader_date = k.sync_domain().local_time_stamp();
  });
  k.run();
  EXPECT_EQ(reader_date, 50_ns);
  EXPECT_EQ(f.reader_blocks(), 0u);
}

TEST(SmartFifo, WriterLocalDateBumpedToFreeingDate) {
  // Write step 2: the first free cell may have been freed "in the future";
  // the writer's local date must be raised to that freeing date.
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  Time second_write_date;
  k.spawn_thread("wr", [&] {
    f.write(1);   // insert @0
    k.sync_domain().inc(5_ns);
    f.write(2);   // cell freed @50 by the reader -> write lands at 50
    second_write_date = k.sync_domain().local_time_stamp();
  });
  k.spawn_thread("rd", [&] {
    k.sync_domain().inc(50_ns);
    (void)f.read();  // frees @50
    (void)f.read();
  });
  k.run();
  EXPECT_EQ(second_write_date, 50_ns);
}

TEST(SmartFifo, NoContextSwitchPerAccessWhenDepthSuffices) {
  // The headline property: a fully annotated transfer costs context
  // switches only at the internal full/empty boundaries, not per access.
  Kernel k;
  SmartFifo<int> f(k, "f", 1024);
  constexpr int kWords = 500;
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < kWords; ++i) {
      f.write(i);
      k.sync_domain().inc(10_ns);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < kWords; ++i) {
      (void)f.read();
      k.sync_domain().inc(10_ns);
    }
  });
  k.run();
  // Writer runs to completion in its initial dispatch; reader likewise
  // (everything is buffered). Two context switches total.
  EXPECT_EQ(k.stats().context_switches, 2u);
  EXPECT_EQ(f.writer_blocks(), 0u);
  EXPECT_EQ(f.reader_blocks(), 0u);
}

TEST(SmartFifo, BlocksOnlyWhenInternallyFull) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 12; ++i) {
      f.write(i);
      k.sync_domain().inc(1_ns);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 12; ++i) {
      (void)f.read();
      k.sync_domain().inc(1_ns);
    }
  });
  k.run();
  // Writer fills 4 cells then suspends; reader drains 4 then suspends; etc.
  EXPECT_GT(f.writer_blocks(), 0u);
  EXPECT_LE(f.writer_blocks(), 3u);
}

TEST(SmartFifo, InternalSizeNeverExceedsDepth) {
  Kernel k;
  SmartFifo<int> f(k, "f", 3);
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 20; ++i) {
      EXPECT_LE(f.internal_size(), 3u);
      f.write(i);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 20; ++i) {
      k.sync_domain().inc(5_ns);
      (void)f.read();
    }
  });
  k.run();
  EXPECT_EQ(f.internal_size(), 0u);
}

TEST(SmartFifo, Fig1TimingMatchesHandComputedReference) {
  // Paper Fig. 1 parameters: writer writes then waits 20 ns; reader waits
  // 15 ns then reads; depth 1. Reference dates: writes land at 0/20/40,
  // reads complete at 15/30/45.
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  std::vector<Time> write_dates, read_dates;
  k.spawn_thread("writer", [&] {
    for (int i = 1; i <= 3; ++i) {
      f.write(i);
      write_dates.push_back(k.sync_domain().local_time_stamp());
      k.sync_domain().inc(20_ns);
    }
  });
  k.spawn_thread("reader", [&] {
    for (int i = 1; i <= 3; ++i) {
      k.sync_domain().inc(15_ns);
      EXPECT_EQ(f.read(), i);
      read_dates.push_back(k.sync_domain().local_time_stamp());
    }
  });
  k.run();
  EXPECT_EQ(write_dates, (std::vector<Time>{0_ns, 20_ns, 40_ns}));
  EXPECT_EQ(read_dates, (std::vector<Time>{15_ns, 30_ns, 45_ns}));
}

TEST(SmartFifo, DecreasingWriteDatesAreAnError) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  k.spawn_thread("w1", [&] {
    k.sync_domain().inc(100_ns);
    f.write(1);
  });
  k.spawn_thread("w2", [&] {
    k.sync_domain().inc(10_ns);  // earlier date on the same side: needs an arbiter
    f.write(2);
  });
  k.spawn_thread("rd", [&] {
    (void)f.read();
    (void)f.read();
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(SmartFifo, SideOrderCheckCanBeDisabled) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  f.set_side_order_checking(false);
  k.spawn_thread("w1", [&] {
    k.sync_domain().inc(100_ns);
    f.write(1);
  });
  k.spawn_thread("w2", [&] {
    k.sync_domain().inc(10_ns);
    f.write(2);
  });
  k.spawn_thread("rd", [&] {
    (void)f.read();
    (void)f.read();
  });
  k.run();  // no throw
}

TEST(SmartFifo, EqualDatesOnSameSideAllowed) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  k.spawn_thread("wr", [&] {
    f.write(1);
    f.write(2);  // same local date: allowed (dates must not *decrease*)
  });
  k.spawn_thread("rd", [&] {
    (void)f.read();
    (void)f.read();
  });
  k.run();
}

TEST(SmartFifo, BurstWriteAdvancesPerWord) {
  Kernel k;
  SmartFifo<int> f(k, "f", 16);
  std::vector<int> words{1, 2, 3, 4};
  Time writer_end;
  std::vector<Time> read_dates;
  k.spawn_thread("wr", [&] {
    f.write_burst(words.begin(), words.end(), 10_ns);
    writer_end = k.sync_domain().local_time_stamp();
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 4; ++i) {
      (void)f.read();
      read_dates.push_back(k.sync_domain().local_time_stamp());
    }
  });
  k.run();
  EXPECT_EQ(writer_end, 40_ns);
  // Words were inserted at 0/10/20/30; a fast reader sees those dates.
  EXPECT_EQ(read_dates, (std::vector<Time>{0_ns, 10_ns, 20_ns, 30_ns}));
}

TEST(SmartFifo, BurstReadCollectsWords) {
  Kernel k;
  SmartFifo<int> f(k, "f", 16);
  std::vector<int> got;
  k.spawn_thread("wr", [&] {
    for (int i = 1; i <= 6; ++i) {
      f.write(i);
      k.sync_domain().inc(5_ns);
    }
  });
  k.spawn_thread("rd", [&] {
    got.resize(6);
    f.read_burst(got.begin(), 6, 2_ns);
  });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SmartFifo, CountersTrackTraffic) {
  Kernel k;
  SmartFifo<int> f(k, "f", 2);
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 7; ++i) {
      f.write(i);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 7; ++i) {
      k.sync_domain().inc(1_ns);
      (void)f.read();
    }
  });
  k.run();
  EXPECT_EQ(f.total_writes(), 7u);
  EXPECT_EQ(f.total_reads(), 7u);
  EXPECT_EQ(f.depth(), 2u);
}

TEST(SmartFifo, ChainOfTwoFifosPreservesDates) {
  // source -> transmitter -> sink, the Fig. 5 topology in miniature.
  Kernel k;
  SmartFifo<int> f1(k, "f1", 2);
  SmartFifo<int> f2(k, "f2", 2);
  std::vector<Time> sink_dates;
  k.spawn_thread("source", [&] {
    for (int i = 0; i < 5; ++i) {
      f1.write(i);
      k.sync_domain().inc(10_ns);
    }
  });
  k.spawn_thread("transmitter", [&] {
    for (int i = 0; i < 5; ++i) {
      int v = f1.read();
      k.sync_domain().inc(4_ns);  // processing latency
      f2.write(v);
    }
  });
  k.spawn_thread("sink", [&] {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(f2.read(), i);
      sink_dates.push_back(k.sync_domain().local_time_stamp());
      k.sync_domain().inc(10_ns);
    }
  });
  k.run();
  // Item i leaves the source at 10*i, spends 4 ns in the transmitter, and
  // the sink (also on a 10 ns cadence) picks it up at max(10*i+4, ...).
  EXPECT_EQ(sink_dates,
            (std::vector<Time>{4_ns, 14_ns, 24_ns, 34_ns, 44_ns}));
}

TEST(SmartFifo, WriterSyncsBeforeBlocking) {
  // Step 1 of write: "synchronize the writer process and wait". The sync
  // guarantees that wake-up dates can never be earlier than the writer's
  // intended access date.
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  Time unblock_date;
  k.spawn_thread("wr", [&] {
    f.write(1);
    k.sync_domain().inc(100_ns);
    f.write(2);  // blocks; cell freed by the reader at 60 < 100
    unblock_date = k.sync_domain().local_time_stamp();
  });
  k.spawn_thread("rd", [&] {
    k.sync_domain().inc(60_ns);
    k.sync_domain().sync();      // execute the read *after* the writer blocked
    (void)f.read();  // frees at 60
    (void)f.read();
  });
  k.run();
  // The real FIFO had space at 60; the writer wanted to write at 100, so
  // the write must land at 100, not at the wake-up date.
  EXPECT_EQ(unblock_date, 100_ns);
}

TEST(SmartFifo, MoveOnlyPayloadSupported) {
  Kernel k;
  SmartFifo<std::unique_ptr<int>> f(k, "f", 2);
  int got = 0;
  k.spawn_thread("wr", [&] { f.write(std::make_unique<int>(11)); });
  k.spawn_thread("rd", [&] { got = *f.read(); });
  k.run();
  EXPECT_EQ(got, 11);
}

}  // namespace
}  // namespace tdsim
