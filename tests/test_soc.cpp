// Case-study SoC (paper SIV.C): functional correctness, cross-flavor
// timing equality (Smart FIFOs vs synchronizing FIFOs), and the context
// switch savings the paper measures as wall-clock gain.
#include <gtest/gtest.h>

#include "soc/soc_platform.h"
#include "trace/trace.h"

namespace tdsim {
namespace {

using soc::FifoFlavor;
using soc::SocConfig;
using soc::SocPlatform;

SocConfig small_config(FifoFlavor flavor) {
  SocConfig config;
  config.flavor = flavor;
  config.mesh_columns = 2;
  config.mesh_rows = 2;
  config.streams = 4;
  config.words_per_stream = 512;
  config.fifo_depth = 16;
  config.packet_words = 16;
  config.block_words = 128;
  config.quantum = 1_us;
  config.poll_period = 2_us;
  return config;
}

struct SocRun {
  Time end_date;
  Time core_done_date;
  std::uint64_t context_switches;
  std::uint64_t method_activations;
  bool correct;
  Kernel kernel;  // must precede recorder (constructed from it)
  trace::Recorder recorder;
  std::unique_ptr<SocPlatform> platform;

  explicit SocRun(const SocConfig& config) : recorder(kernel) {
    platform = std::make_unique<SocPlatform>(kernel, config);
    platform->set_recorder(&recorder);
    end_date = platform->run_to_completion();
    core_done_date = platform->core().all_done_date();
    context_switches = kernel.stats().context_switches;
    method_activations = kernel.stats().method_activations;
    correct = platform->all_streams_correct();
  }
};

TEST(Soc, SmartFlavorCompletesCorrectly) {
  SocRun run(small_config(FifoFlavor::Smart));
  EXPECT_TRUE(run.correct);
  EXPECT_GT(run.end_date, Time{});
  for (std::size_t i = 0; i < run.platform->accelerator_count(); ++i) {
    EXPECT_TRUE(run.platform->accelerator(i).done());
    EXPECT_EQ(run.platform->accelerator(i).words_processed(), 512u);
  }
}

TEST(Soc, SyncFlavorCompletesCorrectly) {
  SocRun run(small_config(FifoFlavor::Sync));
  EXPECT_TRUE(run.correct);
}

TEST(Soc, FlavorsProduceIdenticalTraces) {
  // "Both versions provide the same timing accuracy": every accelerator
  // start/block/done event and every software observation must carry the
  // same date in both flavors (after date reordering).
  SocRun smart(small_config(FifoFlavor::Smart));
  SocRun sync(small_config(FifoFlavor::Sync));
  ASSERT_GT(smart.recorder.size(), 0u);
  auto diff = trace::compare_sorted(smart.recorder, sync.recorder);
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_EQ(smart.end_date, sync.end_date);
  EXPECT_EQ(smart.core_done_date, sync.core_done_date);
}

TEST(Soc, SmartFlavorSavesContextSwitches) {
  // The mechanism behind the paper's 42.3% wall-clock gain.
  SocRun smart(small_config(FifoFlavor::Smart));
  SocRun sync(small_config(FifoFlavor::Sync));
  EXPECT_LT(smart.context_switches, sync.context_switches / 2);
}

TEST(Soc, CompletionDatesAreDeterministic) {
  SocRun a(small_config(FifoFlavor::Smart));
  SocRun b(small_config(FifoFlavor::Smart));
  EXPECT_EQ(a.end_date, b.end_date);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

TEST(Soc, DeeperFifosReduceContextSwitchesFurther) {
  SocConfig shallow = small_config(FifoFlavor::Smart);
  shallow.fifo_depth = 2;
  shallow.packet_words = 2;
  SocConfig deep = small_config(FifoFlavor::Smart);
  deep.fifo_depth = 64;
  SocRun a(shallow);
  SocRun b(deep);
  EXPECT_TRUE(a.correct);
  EXPECT_TRUE(b.correct);
  EXPECT_LT(b.context_switches, a.context_switches);
}

TEST(Soc, SingleStreamSingleNode) {
  SocConfig config = small_config(FifoFlavor::Smart);
  config.mesh_columns = 1;
  config.mesh_rows = 1;
  config.streams = 1;
  SocRun run(config);
  EXPECT_TRUE(run.correct);
}

TEST(Soc, ManyStreamsOnLargerMesh) {
  SocConfig config = small_config(FifoFlavor::Smart);
  config.mesh_columns = 3;
  config.mesh_rows = 3;
  config.streams = 9;
  config.words_per_stream = 256;
  SocRun run(config);
  EXPECT_TRUE(run.correct);
}

TEST(Soc, InvalidConfigRejected) {
  Kernel k;
  SocConfig config = small_config(FifoFlavor::Smart);
  config.words_per_stream = 100;  // not a multiple of packet_words
  EXPECT_THROW(SocPlatform(k, config), SimulationError);
}

class SocFlavorEquality : public ::testing::TestWithParam<int> {};

TEST_P(SocFlavorEquality, TracesMatchAcrossConfigurations) {
  SocConfig config = small_config(FifoFlavor::Smart);
  switch (GetParam()) {
    case 0:
      config.fifo_depth = 4;
      config.packet_words = 4;
      break;
    case 1:
      config.streams = 2;
      config.words_per_stream = 1024;
      break;
    case 2:
      config.mesh_columns = 4;
      config.mesh_rows = 1;
      config.streams = 4;
      break;
    case 3:
      config.poll_period = 500_ns;
      config.monitor_every = 2;
      break;
  }
  SocRun smart(config);
  config.flavor = FifoFlavor::Sync;
  SocRun sync(config);
  auto diff = trace::compare_sorted(smart.recorder, sync.recorder);
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_TRUE(smart.correct);
  EXPECT_TRUE(sync.correct);
}

INSTANTIATE_TEST_SUITE_P(Configs, SocFlavorEquality,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace tdsim
