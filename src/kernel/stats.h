// Kernel instrumentation counters.
//
// The paper's whole premise is that context switches dominate the cost of a
// finely-annotated TLM simulation, so the kernel counts them (and the other
// scheduler activities) explicitly; benchmarks report these next to wall
// time. Synchronizations are additionally attributed to a cause, so a
// benchmark can tell quantum-driven switches from FIFO-driven ones.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tdsim {

/// Why a process synchronized (or a method re-armed). Every performed
/// synchronization of a thread process costs one context switch, so the
/// per-cause sync counts decompose the paper's headline metric.
enum class SyncCause : std::uint8_t {
  /// User-requested sync() with no more specific attribution.
  Explicit = 0,
  /// The accumulated local offset reached the global quantum (the
  /// loosely-timed quantum-keeper pattern).
  Quantum,
  /// A Smart-FIFO writer suspended on an internally full FIFO.
  FifoFull,
  /// A Smart-FIFO reader suspended on an internally empty FIFO.
  FifoEmpty,
  /// A synchronization point (paper SII.A): date-accurate publication of
  /// shared state -- status flags, arbitration points, timestamped
  /// hand-offs.
  SyncPoint,
  /// A monitor-interface access (paper SIII.C): get_size() and friends.
  Monitor,
  /// A method process re-armed itself at its local date (the
  /// method-process equivalent of sync()).
  MethodRearm,
};

inline constexpr std::size_t kSyncCauseCount = 7;
static_assert(static_cast<std::size_t>(SyncCause::MethodRearm) + 1 ==
                  kSyncCauseCount,
              "keep kSyncCauseCount in lockstep with the SyncCause enum");

constexpr const char* to_string(SyncCause cause) {
  switch (cause) {
    case SyncCause::Explicit: return "explicit";
    case SyncCause::Quantum: return "quantum";
    case SyncCause::FifoFull: return "fifo_full";
    case SyncCause::FifoEmpty: return "fifo_empty";
    case SyncCause::SyncPoint: return "sync_point";
    case SyncCause::Monitor: return "monitor";
    case SyncCause::MethodRearm: return "method_rearm";
  }
  return "?";
}

/// Classifies a cause for the adaptive quantum controller: accuracy-relevant
/// causes are the ones where a synchronization carries timing information the
/// model observes (a Smart-FIFO boundary, an explicit sync point, a monitor
/// access) -- when they dominate, shrinking the quantum buys accuracy the
/// model actually uses. SyncCause::Quantum is the pure churn the controller
/// grows the quantum against; MethodRearm is neutral (a method re-arm is the
/// method-process analog of either kind, already attributed elsewhere when a
/// more specific cause is known). Channels hint the controller simply by
/// attributing their syncs precisely -- see SmartFifo / SyncFifo.
constexpr bool accuracy_relevant(SyncCause cause) {
  switch (cause) {
    case SyncCause::Explicit:
    case SyncCause::FifoFull:
    case SyncCause::FifoEmpty:
    case SyncCause::SyncPoint:
    case SyncCause::Monitor:
      return true;
    case SyncCause::Quantum:
    case SyncCause::MethodRearm:
      return false;
  }
  return false;
}

/// Synchronization bookkeeping of one SyncDomain, indexed by the domain's
/// id inside KernelStats::domains. The per-domain entries are the
/// authoritative books -- the hot path increments exactly one of them per
/// event -- and the kernel-wide aggregate fields of KernelStats are folded
/// from them on read, so per-domain entries always sum to the aggregate
/// view existing consumers read.
struct DomainStats {
  /// The owning domain's name, for reports and BENCH rows.
  std::string name;

  /// Synchronization requests by processes of this domain (sync() calls
  /// plus method re-arms). Invariant per domain:
  /// sync_requests == syncs_performed() + syncs_elided.
  std::uint64_t sync_requests = 0;

  /// Requests that found the process already synchronized.
  std::uint64_t syncs_elided = 0;

  /// Performed synchronizations attributed to a cause, indexed by
  /// static_cast<size_t>(SyncCause).
  std::array<std::uint64_t, kSyncCauseCount> syncs_by_cause{};

  /// Method re-arms at a future local date (also in syncs_by_cause).
  std::uint64_t method_rearms = 0;

  /// Quantum changes applied to the owning domain by the adaptive
  /// controller (see kernel/quantum_controller.h). Hold and clamped-to-same
  /// decisions do not count.
  std::uint64_t quantum_adjustments = 0;

  /// The single enumeration point of every DomainStats counter: applies
  /// `f(mine, theirs)` to each counter of `a` and `b` in lockstep. All
  /// merge helpers (operator-, accumulate, the kernel's aggregate fold) go
  /// through here, so a new counter participates everywhere the moment it
  /// is added -- and the sizeof tripwire below makes forgetting to add it a
  /// compile error. `A` may be any struct carrying the same counter names
  /// (KernelStats reuses this to fold domain entries into its aggregate).
  template <typename A, typename B, typename F>
  static void for_each_counter(A& a, B& b, F&& f) {
    f(a.sync_requests, b.sync_requests);
    f(a.syncs_elided, b.syncs_elided);
    for (std::size_t i = 0; i < kSyncCauseCount; ++i) {
      f(a.syncs_by_cause[i], b.syncs_by_cause[i]);
    }
    f(a.method_rearms, b.method_rearms);
    f(a.quantum_adjustments, b.quantum_adjustments);
  }

  std::uint64_t syncs(SyncCause cause) const {
    return syncs_by_cause[static_cast<std::size_t>(cause)];
  }

  std::uint64_t syncs_performed() const {
    std::uint64_t total = 0;
    for (std::uint64_t n : syncs_by_cause) {
      total += n;
    }
    return total;
  }

  DomainStats operator-(const DomainStats& o) const {
    DomainStats r = *this;
    for_each_counter(r, o,
                     [](std::uint64_t& a, const std::uint64_t& b) { a -= b; });
    return r;
  }
};

/// Tripwire: a new DomainStats field that is not threaded through
/// for_each_counter() would silently be dropped by every merge path (the
/// parallel per-group buffered merge included). Adding a field therefore
/// must update both for_each_counter() and this expected size.
static_assert(sizeof(DomainStats) ==
                  sizeof(std::string) +
                      (4 + kSyncCauseCount) * sizeof(std::uint64_t),
              "new DomainStats field? add it to DomainStats::for_each_counter "
              "and update this tripwire");

struct KernelStats {
  /// Number of resumes of stackful thread processes. Each resume costs two
  /// machine context switches (in and out); we count resumes, matching how
  /// the paper counts "one context switch per access".
  std::uint64_t context_switches = 0;

  /// Number of run-to-completion method activations (no stack switch).
  std::uint64_t method_activations = 0;

  /// Number of delta cycles executed.
  std::uint64_t delta_cycles = 0;

  /// Number of distinct simulated dates the kernel advanced to.
  std::uint64_t timed_waves = 0;

  /// Number of event trigger operations (immediate, delta or timed firing).
  std::uint64_t event_triggers = 0;

  /// Number of processes ever spawned.
  std::uint64_t processes_spawned = 0;

  /// Number of timed-queue compactions (rebuilds dropping lazily-deleted
  /// stale entries once they outnumber the live ones).
  std::uint64_t timed_queue_compactions = 0;

  // --- parallel execution bookkeeping (see README "Parallel execution") ---

  /// Number of parallel evaluation rounds: per evaluation phase, one round
  /// dispatches every concurrency group with runnable processes (most
  /// phases need exactly one round; cross-group wakes add more). Only
  /// counted in parallel mode (Kernel::set_workers >= 2).
  std::uint64_t parallel_rounds = 0;

  /// Number of group executions that had to be awaited at a
  /// synchronization horizon: each round dispatching G >= 2 groups
  /// concurrently adds G - 1. Zero means the parallel scheduler never
  /// found two groups runnable at once (no concurrency to exploit).
  std::uint64_t horizon_waits = 0;

  /// Number of timed waves a concurrency group executed *inside* a
  /// conservative-lookahead extension, i.e. without rendezvousing the other
  /// groups at the global horizon first (see README "Parallel execution").
  /// Deterministic: the extension schedule is derived purely from the timed
  /// queue and the declared link latencies.
  std::uint64_t lookahead_advances = 0;

  /// Number of group tasks the horizon-waiting thread executed itself
  /// instead of sleeping at the pool barrier (work stealing). Timing
  /// dependent by nature -- excluded from bench baselines, unlike every
  /// other counter here.
  std::uint64_t steals = 0;

  // --- allocation bookkeeping (see kernel/stack_pool.h, README "Scale &
  // memory layout") ---

  /// Fiber-stack allocations (pooled or legacy heap), one per thread
  /// process ever given a stack.
  std::uint64_t stack_acquires = 0;

  /// Fiber-stack acquisitions served from the process-wide StackPool's
  /// free lists instead of a fresh mapping. Timing dependent in parallel
  /// mode (spawns from concurrent rounds race over the shared free
  /// lists) -- excluded from bench baselines, like steals.
  std::uint64_t stack_recycles = 0;

  /// Fiber stacks returned for reuse (eagerly at process termination,
  /// else at kernel destruction). Abandoned stacks -- fibers that
  /// survived a kill request -- are retired, not released, and do not
  /// count here.
  std::uint64_t stack_releases = 0;

  /// Bytes of scheduler container capacity pre-reserved at elaboration
  /// (timed queue, delta buffers) so steady state never reallocates --
  /// see Kernel::reserve_scheduler_arena().
  std::uint64_t arena_reserved_bytes = 0;

  // --- fault-containment bookkeeping (see README "Failure semantics") ---

  /// Number of run() calls that ended in Health::Failed (at most 1: Failed
  /// is terminal, but the counter survives stat snapshots/diffs like every
  /// other field and sums meaningfully across a fleet via accumulate()).
  std::uint64_t failures = 0;

  /// Number of wall-clock watchdog trips (KernelConfig::wall_limit_ms /
  /// RunOptions::wall_limit_ms). Each trip also counts in failures.
  std::uint64_t watchdog_trips = 0;

  /// Number of supervised retries this kernel is the product of: the
  /// fleet::Supervisor marks a sequential-retry kernel with note_retry()
  /// so fleet-wide stats can separate first-try completions from
  /// retried ones.
  std::uint64_t retries = 0;

  // --- temporal-decoupling bookkeeping (maintained by SyncDomain) ---
  //
  // The sync counters below exist once per domain (KernelStats::domains)
  // and once as the kernel-wide aggregate. The hot path only touches the
  // owning domain's entry; the aggregate fields are a derived cache
  // recomputed from the domain entries by fold_domain_sync_aggregates()
  // whenever Kernel::stats() hands the struct out -- so per-domain entries
  // always sum to the aggregate by construction.

  /// Number of synchronization requests -- sync() calls (including those
  /// on already-synchronized processes, which are free: no suspension, no
  /// context switch) plus method re-arms. Invariant:
  /// sync_requests == syncs_performed() + syncs_elided.
  std::uint64_t sync_requests = 0;

  /// Requests that found the process already synchronized -- the context
  /// switches the Smart-FIFO machinery elided.
  std::uint64_t syncs_elided = 0;

  /// Performed synchronizations attributed to a cause, indexed by
  /// static_cast<size_t>(SyncCause). Thread entries are suspensions (one
  /// context switch each); method re-arms are also included (normally
  /// under MethodRearm) and cost no stack switch -- subtract
  /// method_rearms when decomposing context_switches.
  std::array<std::uint64_t, kSyncCauseCount> syncs_by_cause{};

  /// Method re-arms at a future local date (method_sync_trigger): the
  /// method-process analog of a performed synchronization, also attributed
  /// in syncs_by_cause (usually as SyncCause::MethodRearm).
  std::uint64_t method_rearms = 0;

  /// Quantum changes applied by the adaptive quantum controller, summed
  /// over domains (see kernel/quantum_controller.h). Zero on every kernel
  /// that never attached a policy.
  std::uint64_t quantum_adjustments = 0;

  /// Non-zero while the aggregate sync fields above lag the per-domain
  /// books (set by every hot-path booking, cleared by
  /// fold_domain_sync_aggregates). Kernel::stats() folds only when set,
  /// so reading a quiescent kernel's stats stays a pure read -- safe from
  /// concurrent threads, as it was before the aggregates became derived.
  std::uint64_t sync_aggregates_stale = 0;

  /// Per-domain breakdown of the sync bookkeeping above, indexed by
  /// SyncDomain::id() (index 0 is the kernel's default domain). Each sync
  /// is counted in exactly one domain entry, so for every field the domain
  /// entries sum to the aggregate.
  std::vector<DomainStats> domains;

  std::uint64_t syncs(SyncCause cause) const {
    return syncs_by_cause[static_cast<std::size_t>(cause)];
  }

  /// Total performed synchronizations across all causes.
  std::uint64_t syncs_performed() const {
    std::uint64_t total = 0;
    for (std::uint64_t n : syncs_by_cause) {
      total += n;
    }
    return total;
  }

  /// Recomputes the kernel-wide sync aggregates from the per-domain
  /// entries. KernelStats carries the same counter names DomainStats
  /// enumerates, so the fold reuses the single enumeration point and can
  /// never miss a field.
  void fold_domain_sync_aggregates() {
    sync_requests = 0;
    syncs_elided = 0;
    syncs_by_cause = {};
    method_rearms = 0;
    quantum_adjustments = 0;
    for (const DomainStats& d : domains) {
      DomainStats::for_each_counter(
          *this, d, [](std::uint64_t& a, const std::uint64_t& b) { a += b; });
    }
    sync_aggregates_stale = 0;
  }

  KernelStats operator-(const KernelStats& o) const {
    KernelStats r = *this;
    r.context_switches -= o.context_switches;
    r.method_activations -= o.method_activations;
    r.delta_cycles -= o.delta_cycles;
    r.timed_waves -= o.timed_waves;
    r.event_triggers -= o.event_triggers;
    r.processes_spawned -= o.processes_spawned;
    r.timed_queue_compactions -= o.timed_queue_compactions;
    r.parallel_rounds -= o.parallel_rounds;
    r.horizon_waits -= o.horizon_waits;
    r.lookahead_advances -= o.lookahead_advances;
    r.steals -= o.steals;
    r.stack_acquires -= o.stack_acquires;
    r.stack_recycles -= o.stack_recycles;
    r.stack_releases -= o.stack_releases;
    r.arena_reserved_bytes -= o.arena_reserved_bytes;
    r.failures -= o.failures;
    r.watchdog_trips -= o.watchdog_trips;
    r.retries -= o.retries;
    DomainStats::for_each_counter(
        r, o, [](std::uint64_t& a, const std::uint64_t& b) { a -= b; });
    // Domains created after the `o` snapshot keep their full counts.
    for (std::size_t d = 0; d < r.domains.size() && d < o.domains.size();
         ++d) {
      r.domains[d] = r.domains[d] - o.domains[d];
    }
    return r;
  }
};

/// Tripwire, mirroring the DomainStats one: a new KernelStats counter must
/// be added to operator- and accumulate() (or, for a sync counter, to
/// DomainStats::for_each_counter) -- this assert forces that review.
static_assert(sizeof(KernelStats) ==
                  sizeof(std::vector<DomainStats>) +
                      (23 + kSyncCauseCount) * sizeof(std::uint64_t),
              "new KernelStats field? thread it through operator-, "
              "accumulate() and fold_domain_sync_aggregates(), then update "
              "this tripwire");

/// Adds `delta` into `into`, field by field (per-domain entries
/// entrywise; names are kept from `into`). This is how the parallel
/// scheduler folds each group's worker-local counter deltas into the
/// kernel aggregate at a synchronization horizon -- addition is
/// commutative, so the merged totals are independent of worker timing.
inline void accumulate(KernelStats& into, const KernelStats& delta) {
  into.context_switches += delta.context_switches;
  into.method_activations += delta.method_activations;
  into.delta_cycles += delta.delta_cycles;
  into.timed_waves += delta.timed_waves;
  into.event_triggers += delta.event_triggers;
  into.processes_spawned += delta.processes_spawned;
  into.timed_queue_compactions += delta.timed_queue_compactions;
  into.parallel_rounds += delta.parallel_rounds;
  into.horizon_waits += delta.horizon_waits;
  into.lookahead_advances += delta.lookahead_advances;
  into.steals += delta.steals;
  into.stack_acquires += delta.stack_acquires;
  into.stack_recycles += delta.stack_recycles;
  into.stack_releases += delta.stack_releases;
  into.arena_reserved_bytes += delta.arena_reserved_bytes;
  into.failures += delta.failures;
  into.watchdog_trips += delta.watchdog_trips;
  into.retries += delta.retries;
  const auto add = [](std::uint64_t& a, const std::uint64_t& b) { a += b; };
  DomainStats::for_each_counter(into, delta, add);
  // A group that booked syncs leaves its buffered delta stale; merging it
  // makes the target's aggregates stale too (until the next fold).
  into.sync_aggregates_stale |= delta.sync_aggregates_stale;
  for (std::size_t d = 0; d < into.domains.size() && d < delta.domains.size();
       ++d) {
    DomainStats::for_each_counter(into.domains[d], delta.domains[d], add);
  }
}

}  // namespace tdsim
