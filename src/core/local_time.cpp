#include "core/local_time.h"

namespace tdsim::td {

// Every shim resolves the ambient kernel's sync domain and forwards;
// current_sync_domain() reports the "outside of a running kernel" error.

Time local_time_stamp() {
  return current_sync_domain().local_time_stamp();
}

Time local_offset() {
  return current_sync_domain().local_offset();
}

void inc(Time duration) {
  current_sync_domain().inc(duration);
}

void advance_local_to(Time date) {
  current_sync_domain().advance_local_to(date);
}

void sync() {
  current_sync_domain().sync(SyncCause::Explicit);
}

bool is_synchronized() {
  return current_sync_domain().is_synchronized();
}

bool needs_sync() {
  return current_sync_domain().needs_sync();
}

Time local_time_of(const Process& process) {
  return process.clock().now();
}

void method_sync_trigger() {
  current_sync_domain().method_sync_trigger();
}

}  // namespace tdsim::td
