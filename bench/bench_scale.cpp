// Scale-out platform bench: O(100) SyncDomains / O(10k) processes -- the
// paper's "large heterogeneous platform" regime that the other benches
// never reach, and the workload the PR 10 allocation/locality hardening
// (kernel/stack_pool.h, Kernel::reserve_scheduler_arena, cache-line
// grouping) is gated on.
//
// The model is a NoC mesh of SoC clusters. Each cluster is one
// *concurrent* SyncDomain holding a slice of the worker processes: every
// worker annotates fine-grained steps under the cluster quantum, folds a
// deterministic spin hash into the cluster's checksum sink, and
// terminates; a per-cluster manager then respawns the next generation --
// the process-churn pattern (kill/respawn, fork fan-out) that makes
// fiber-stack allocation a steady-state cost, not just an elaboration
// one. --topology declares *decoupled* inter-domain links between mesh
// (or ring) neighbours: no data crosses them, so the clusters stay
// independent concurrency groups (what --workers parallelizes over), but
// the conservative-lookahead machinery derives per-group bounds over the
// whole O(100)-node link graph every horizon.
//
// Every invocation runs the whole sweep twice: once with the legacy
// per-process heap fiber stacks (KernelConfig::pooled_stacks = false --
// a value-initializing make_unique<char[]> per spawn) and once with the
// pooled mmap allocator. Allocation mode is execution-only: all rows,
// across both modes and every worker count, must reproduce identical
// dates, checksums and deterministic counters, and the bench fails
// otherwise. check_bench.py gates the pooled rows >= 10% faster than the
// malloc rows on both the elaboration and steady-state walls.
//
// Usage: bench_scale [--domains N] [--procs N] [--lives N] [--steps N]
//                    [--work N] [--stack-bytes N]
//                    [--topology mesh|ring|none] [--workers LIST]
//                    [--json] [--table NAME]
//
// Rows deliberately emit elab_wall_seconds / run_wall_seconds and no
// plain "wall_seconds": the generic worker-wall and speedup gates in
// check_bench.py key on wall_seconds and would mis-gate rows whose
// elaboration half is worker-independent; the scale table has its own
// alloc-mode gate instead.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace {

using tdsim::Kernel;
using tdsim::KernelConfig;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using namespace tdsim::time_literals;

enum class Topology { Mesh, Ring, None };

struct BenchConfig {
  std::size_t domains = 100;
  std::size_t procs = 10'000;     ///< worker processes per generation
  std::uint64_t lives = 3;        ///< generations per worker slot
  std::uint64_t steps = 100;      ///< fine-grained steps per life
  std::uint64_t work = 0;         ///< spin_work iterations per step
  std::size_t stack_bytes = 128 * 1024;
  Topology topology = Topology::Mesh;
  Time step = 10_ns;
  Time quantum = 100_ns;
};

/// Deterministic per-step computation, folded into the cluster checksum
/// so it cannot be optimized away.
std::uint64_t spin_work(std::uint64_t seed, std::uint64_t iters) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return x;
}

struct RunResult {
  double elab_wall_seconds = 0;
  double run_wall_seconds = 0;
  std::uint64_t final_date_ps = 0;
  std::uint64_t checksum = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t processes_spawned = 0;
  std::uint64_t stack_acquires = 0;
  std::uint64_t arena_reserved_bytes = 0;
  /// Diagnostic only: timing dependent in parallel mode (spawns race
  /// over the shared pool), excluded from rows and equality like steals.
  std::uint64_t stack_recycles = 0;

  /// Everything that must be bit-identical across worker counts AND
  /// allocation modes (allocation is execution-only by contract).
  bool deterministically_equal(const RunResult& o) const {
    return final_date_ps == o.final_date_ps && checksum == o.checksum &&
           context_switches == o.context_switches &&
           delta_cycles == o.delta_cycles &&
           processes_spawned == o.processes_spawned &&
           stack_acquires == o.stack_acquires &&
           arena_reserved_bytes == o.arena_reserved_bytes;
  }
};

RunResult run_once(const BenchConfig& config, bool pooled,
                   std::size_t workers) {
  const auto elab_start = std::chrono::steady_clock::now();
  Kernel kernel(KernelConfig{.workers = workers, .pooled_stacks = pooled});

  struct Cluster {
    SyncDomain* domain = nullptr;
    /// Checksum sink; group-serialized, folded in cluster order below.
    std::uint64_t sink = 0;
  };
  std::vector<Cluster> clusters(config.domains);
  const Time life_span =
      Time::from_ps(config.steps * config.step.ps());

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].domain =
        &kernel.create_domain({.name = "cl" + std::to_string(c),
                               .quantum = config.quantum,
                               .concurrent = true});
  }

  // Decoupled neighbour links: each declares "nothing crosses sooner
  // than 1 us", keeps the groups separate, and feeds the per-group
  // lookahead derivation an O(domains)-edge graph.
  const auto link = [&](std::size_t a, std::size_t b, const char* via) {
    kernel.link_domains(*clusters[a].domain, *clusters[b].domain, 1_us, via);
  };
  if (config.topology == Topology::Mesh && config.domains > 1) {
    const std::size_t rows = static_cast<std::size_t>(
        std::floor(std::sqrt(static_cast<double>(config.domains))));
    const std::size_t cols = (config.domains + rows - 1) / rows;
    for (std::size_t c = 0; c < config.domains; ++c) {
      if ((c % cols) + 1 < cols && c + 1 < config.domains) {
        link(c, c + 1, "mesh_x");
      }
      if (c + cols < config.domains) {
        link(c, c + cols, "mesh_y");
      }
    }
  } else if (config.topology == Topology::Ring && config.domains > 1) {
    for (std::size_t c = 0; c < config.domains; ++c) {
      link(c, (c + 1) % config.domains, "ring");
    }
  }

  // One worker slot = `lives` successive short-lived processes; the
  // cluster checksum folds each life's hash in group-schedule order, so
  // it is bit-identical across worker counts and allocation modes.
  const auto spawn_worker = [&kernel, &config, &clusters](
                                std::size_t c, std::size_t slot,
                                std::uint64_t gen) {
    Cluster& cluster = clusters[c];
    ThreadOptions opts;
    opts.domain = cluster.domain;
    opts.stack_size = config.stack_bytes;
    const std::uint64_t seed = (c * 0x10003ULL + slot) * 0x3f1ULL + gen;
    kernel.spawn_thread(
        "c" + std::to_string(c) + "_w" + std::to_string(slot) + "_g" +
            std::to_string(gen),
        [&kernel, &config, &cluster, seed] {
          std::uint64_t acc = seed;
          for (std::uint64_t s = 0; s < config.steps; ++s) {
            acc = spin_work(acc, config.work);
            kernel.current_domain().inc_and_sync_if_needed(config.step);
          }
          cluster.sink = cluster.sink * 31 + acc;
        },
        opts);
  };

  const auto slots_of = [&config](std::size_t c) {
    return config.procs / config.domains +
           (c < config.procs % config.domains ? 1 : 0);
  };

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    const std::size_t slots = slots_of(c);
    for (std::size_t slot = 0; slot < slots; ++slot) {
      spawn_worker(c, slot, 0);
    }
    if (config.lives > 1 && slots > 0) {
      // The churn manager: respawns the cluster's worker generation when
      // the previous one has run its span. Dynamic spawns from process
      // context land in the manager's own group -- deterministic.
      ThreadOptions opts;
      opts.domain = clusters[c].domain;
      kernel.spawn_thread(
          "mgr" + std::to_string(c),
          [&kernel, &config, &spawn_worker, &slots_of, c, life_span] {
            for (std::uint64_t gen = 1; gen < config.lives; ++gen) {
              kernel.wait(life_span);
              const std::size_t slots = slots_of(c);
              for (std::size_t slot = 0; slot < slots; ++slot) {
                spawn_worker(c, slot, gen);
              }
            }
          },
          opts);
    }
  }
  const auto elab_stop = std::chrono::steady_clock::now();

  kernel.run();
  const auto run_stop = std::chrono::steady_clock::now();

  RunResult result;
  result.elab_wall_seconds =
      std::chrono::duration<double>(elab_stop - elab_start).count();
  result.run_wall_seconds =
      std::chrono::duration<double>(run_stop - elab_stop).count();
  result.final_date_ps = kernel.now().ps();
  for (const Cluster& cluster : clusters) {
    result.checksum = result.checksum * 1099511628211ULL + cluster.sink;
  }
  const tdsim::KernelStats& stats = kernel.stats();
  result.context_switches = stats.context_switches;
  result.delta_cycles = stats.delta_cycles;
  result.processes_spawned = stats.processes_spawned;
  result.stack_acquires = stats.stack_acquires;
  result.arena_reserved_bytes = stats.arena_reserved_bytes;
  result.stack_recycles = stats.stack_recycles;
  return result;
}

std::vector<std::size_t> parse_workers_list(const char* arg) {
  std::vector<std::size_t> workers;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    workers.push_back(std::strtoull(p, &end, 10));
    if (end == p) {
      return {};
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::vector<std::size_t> workers_sweep = {0};
  bool emit_json = false;
  std::string table_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--domains") == 0 && i + 1 < argc) {
      config.domains = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--procs") == 0 && i + 1 < argc) {
      config.procs = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--lives") == 0 && i + 1 < argc) {
      config.lives = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      config.steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--work") == 0 && i + 1 < argc) {
      config.work = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stack-bytes") == 0 && i + 1 < argc) {
      config.stack_bytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--topology") == 0 && i + 1 < argc) {
      const char* t = argv[++i];
      if (std::strcmp(t, "mesh") == 0) {
        config.topology = Topology::Mesh;
      } else if (std::strcmp(t, "ring") == 0) {
        config.topology = Topology::Ring;
      } else if (std::strcmp(t, "none") == 0) {
        config.topology = Topology::None;
      } else {
        std::fprintf(stderr, "unknown --topology %s\n", t);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers_sweep = parse_workers_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--table") == 0 && i + 1 < argc) {
      table_name = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--domains N] [--procs N] [--lives N] "
                   "[--steps N] [--work N] [--stack-bytes N] "
                   "[--topology mesh|ring|none] [--workers LIST] [--json] "
                   "[--table NAME]\n",
                   argv[0]);
      return 2;
    }
  }
  if (workers_sweep.empty() || config.domains == 0 || config.procs == 0 ||
      config.lives == 0) {
    std::fprintf(stderr, "invalid --workers/--domains/--procs/--lives\n");
    return 2;
  }

  const char* topology_name = config.topology == Topology::Mesh   ? "mesh"
                              : config.topology == Topology::Ring ? "ring"
                                                                  : "none";
  std::printf(
      "Scale-out platform: %zu domains (%s), %zu procs x %llu lives, "
      "%llu steps/life, %zu KiB stacks\n\n",
      config.domains, topology_name, config.procs,
      static_cast<unsigned long long>(config.lives),
      static_cast<unsigned long long>(config.steps),
      config.stack_bytes / 1024);
  std::printf("%7s | %7s | %10s | %9s | %9s | %12s | %9s\n", "alloc",
              "workers", "spawned", "elab[s]", "run[s]", "ctx switches",
              "recycled");

  benchjson::Report report(table_name.empty() ? "scale"
                                              : "scale_" + table_name);
  bool ok = true;
  RunResult reference;
  bool have_reference = false;
  double elab_sum[2] = {0, 0};  // [malloc, pooled]
  double run_sum[2] = {0, 0};
  // Legacy heap mode first, pooled second; the pool is process-wide, so
  // this order also exercises recycling across kernel lifetimes inside
  // the pooled half.
  for (int pooled = 0; pooled <= 1; ++pooled) {
    for (std::size_t workers : workers_sweep) {
      const RunResult r = run_once(config, pooled != 0, workers);
      if (!have_reference) {
        reference = r;
        have_reference = true;
      } else if (!r.deterministically_equal(reference)) {
        std::fprintf(stderr,
                     "ERROR: alloc=%s workers=%zu diverged from the "
                     "reference row (allocation mode and worker count "
                     "must not change simulation results)\n",
                     pooled ? "pooled" : "malloc", workers);
        ok = false;
      }
      elab_sum[pooled] += r.elab_wall_seconds;
      run_sum[pooled] += r.run_wall_seconds;
      std::printf("%7s | %7zu | %10llu | %9.3f | %9.3f | %12llu | %9llu\n",
                  pooled ? "pooled" : "malloc", workers,
                  static_cast<unsigned long long>(r.processes_spawned),
                  r.elab_wall_seconds, r.run_wall_seconds,
                  static_cast<unsigned long long>(r.context_switches),
                  static_cast<unsigned long long>(r.stack_recycles));
      if (emit_json) {
        report.row()
            .add("alloc_mode", pooled ? "pooled" : "malloc")
            .add("workers", static_cast<std::uint64_t>(workers))
            .add("domains", static_cast<std::uint64_t>(config.domains))
            .add("procs", static_cast<std::uint64_t>(config.procs))
            .add("lives", config.lives)
            .add("steps", config.steps)
            .add("topology", topology_name)
            .add("final_date_ps", r.final_date_ps)
            .add("checksum", r.checksum)
            .add("context_switches", r.context_switches)
            .add("delta_cycles", r.delta_cycles)
            .add("processes_spawned", r.processes_spawned)
            .add("stack_acquires", r.stack_acquires)
            .add("arena_reserved_bytes", r.arena_reserved_bytes)
            .add("elab_wall_seconds", r.elab_wall_seconds)
            .add("run_wall_seconds", r.run_wall_seconds);
      }
    }
  }

  if (emit_json && !report.write()) {
    return 1;
  }
  if (!ok) {
    return 1;
  }
  std::printf(
      "\nall rows bit-identical across %zu worker count(s) and both "
      "allocation modes: yes\n"
      "pooled vs malloc: elaboration %.3fs vs %.3fs (%+.1f%%), run %.3fs "
      "vs %.3fs (%+.1f%%)\n",
      workers_sweep.size(), elab_sum[1], elab_sum[0],
      elab_sum[0] > 0 ? (1 - elab_sum[1] / elab_sum[0]) * 100 : 0,
      run_sum[1], run_sum[0],
      run_sum[0] > 0 ? (1 - run_sum[1] / run_sum[0]) * 100 : 0);
  return 0;
}
