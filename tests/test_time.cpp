#include "kernel/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tdsim {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t.ps(), 0u);
  EXPECT_TRUE(t.is_zero());
}

TEST(Time, UnitConversions) {
  EXPECT_EQ(Time(1, TimeUnit::NS).ps(), 1'000u);
  EXPECT_EQ(Time(1, TimeUnit::US).ps(), 1'000'000u);
  EXPECT_EQ(Time(1, TimeUnit::MS).ps(), 1'000'000'000u);
  EXPECT_EQ(Time(1, TimeUnit::S).ps(), 1'000'000'000'000u);
  EXPECT_EQ(Time(7, TimeUnit::PS).ps(), 7u);
}

TEST(Time, Literals) {
  EXPECT_EQ(20_ns, Time(20, TimeUnit::NS));
  EXPECT_EQ(3_us, Time(3000, TimeUnit::NS));
  EXPECT_EQ(1_s, Time(1000, TimeUnit::MS));
  EXPECT_EQ(15_ps, Time::from_ps(15));
}

TEST(Time, Ordering) {
  EXPECT_LT(10_ns, 20_ns);
  EXPECT_LE(10_ns, 10_ns);
  EXPECT_GT(1_us, 999_ns);
  EXPECT_EQ(1000_ns, 1_us);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(10_ns + 5_ns, 15_ns);
  EXPECT_EQ(10_ns - 4_ns, 6_ns);
  EXPECT_EQ(3_ns * 4, 12_ns);
  EXPECT_EQ(4 * 3_ns, 12_ns);
}

TEST(Time, SubtractionSaturatesAtZero) {
  EXPECT_EQ(5_ns - 10_ns, Time{});
  EXPECT_EQ((5_ns - 5_ns).ps(), 0u);
}

TEST(Time, CountIn) {
  EXPECT_EQ((1500_ns).count_in(TimeUnit::US), 1u);
  EXPECT_EQ((1500_ns).count_in(TimeUnit::NS), 1500u);
  EXPECT_EQ((1500_ns).count_in(TimeUnit::PS), 1'500'000u);
}

TEST(Time, ToSeconds) {
  EXPECT_DOUBLE_EQ((1_s).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ((500_ms).to_seconds(), 0.5);
}

TEST(Time, ToStringPicksLargestExactUnit) {
  EXPECT_EQ((20_ns).to_string(), "20 ns");
  EXPECT_EQ((1_us).to_string(), "1 us");
  EXPECT_EQ((1001_ns).to_string(), "1001 ns");
  EXPECT_EQ((Time::from_ps(3)).to_string(), "3 ps");
  EXPECT_EQ(Time{}.to_string(), "0 s");
}

TEST(Time, StreamOutput) {
  std::ostringstream os;
  os << 42_ns;
  EXPECT_EQ(os.str(), "42 ns");
}

TEST(Time, MaxActsAsInfinity) {
  EXPECT_GT(Time::max(), 1000000_s);
}

}  // namespace
}  // namespace tdsim
