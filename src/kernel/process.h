// Simulation processes: stackful threads (SC_THREAD analog) and
// run-to-completion methods (SC_METHOD analog).
#pragma once

#include <ucontext.h>

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/local_clock.h"
#include "kernel/stack_pool.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;
class Event;
class SyncDomain;

enum class ProcessKind {
  /// Stackful coroutine; may call Kernel::wait(). Resuming one costs a
  /// machine context switch.
  Thread,
  /// Plain function invoked by the scheduler; must return, may call
  /// Kernel::next_trigger(). No stack of its own, so no context switch.
  Method,
};

enum class ProcessState { Ready, Running, Waiting, Terminated };

/// Internal exception thrown at a thread's suspension point when the kernel
/// tears down, so the thread's stack unwinds and RAII cleanup runs. User
/// code should not catch it (catch(...) handlers should rethrow).
struct ProcessKilled {};

/// A simulation process. Created only through Kernel::spawn_thread /
/// Kernel::spawn_method; identified by a stable pointer (the "process
/// handle" that the paper's local-time map is keyed by).
class Process {
 public:
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  const std::string& name() const { return name_; }
  ProcessKind kind() const { return kind_; }
  ProcessState state() const { return state_; }
  bool terminated() const { return state_ == ProcessState::Terminated; }
  std::uint64_t id() const { return id_; }
  Kernel& kernel() const { return kernel_; }

  /// Number of times this process has been dispatched. Used by the
  /// temporal-decoupling layer to reset a method's local-time offset at the
  /// start of each activation.
  std::uint64_t activation_count() const { return activation_count_; }

  /// The process's temporal-decoupling clock: its local date is
  /// kernel.now() + clock().offset(). The paper keeps this association in a
  /// map keyed by the process handle; owning our kernel, we store it in the
  /// process itself for O(1) access (see DESIGN.md). Methods have their
  /// offset reset to zero at each activation.
  LocalClock& clock() { return clock_; }
  const LocalClock& clock() const { return clock_; }

  /// The synchronization domain this process belongs to: quantum policy
  /// and sync accounting for this process go through it. Fixed at spawn
  /// (ThreadOptions/MethodOptions::domain, module default, or the kernel
  /// default domain); reassignable via Kernel::assign_domain() only before
  /// elaboration.
  SyncDomain& domain() const { return *domain_; }

 private:
  friend class Kernel;
  friend class Event;

  Process(Kernel& kernel, std::string name, ProcessKind kind,
          std::function<void()> body, std::size_t stack_size,
          std::uint64_t id);

  void start_thread_context();
  static void trampoline(unsigned hi, unsigned lo);

  /// Bottom of this thread's fiber stack (pooled block or legacy heap
  /// allocation), as handed to makecontext and the sanitizer switches.
  char* stack_bottom() const {
    return stack_block_ ? stack_block_.sp : heap_stack_.get();
  }

  /// Usable stack bytes: the pool rounds the requested size up to its
  /// size class, the heap path allocates exactly what was asked.
  std::size_t stack_usable_size() const {
    return stack_block_ ? stack_block_.size : stack_size_;
  }

  /// Frees the fiber's stack and sanitizer state, in the order the
  /// teardown audit requires: TSan fiber destroyed first (the ASan fake
  /// stack was already freed by the trampoline's final null-save switch),
  /// then the block returned to the StackPool -- or retired when
  /// `abandoned` (a fiber that survived a kill request still references
  /// its pages). Idempotent; must only be called while a scheduler
  /// context is current, never from the fiber itself.
  void release_stack(bool abandoned);

  Kernel& kernel_;
  std::string name_;
  ProcessKind kind_;
  std::function<void()> body_;
  std::uint64_t id_;

  ProcessState state_ = ProcessState::Ready;
  bool in_runnable_ = false;
  bool dont_initialize_ = false;
  std::uint64_t activation_count_ = 0;

  /// Bumped whenever the process is woken or re-armed; invalidates stale
  /// timed queue entries referring to it.
  std::uint64_t wake_generation_ = 0;

  /// True while a timed-queue resume entry for the current wake generation
  /// exists (a process has at most one). Lets the kernel keep an exact
  /// count of stale entries for queue compaction.
  bool has_live_resume_entry_ = false;

  /// See domain(). Set by Kernel::spawn_* before anything can observe it.
  SyncDomain* domain_ = nullptr;

  /// See clock().
  LocalClock clock_{*this};

  /// Event this process is dynamically waiting on (thread wait(event) or
  /// method next_trigger(event)), for removal on cancellation/timeout.
  Event* waiting_event_ = nullptr;

  /// Set by Event when the process is woken by an event (vs a timeout);
  /// consumed by Kernel::wait(Event&, Time).
  bool woke_by_event_ = false;

  // --- thread-only state ---
  std::size_t stack_size_ = 0;
  /// Pooled stack block (KernelConfig::pooled_stacks, the default).
  StackBlock stack_block_;
  /// Legacy per-process heap stack (TDSIM_STACK_POOL=0): kept as the
  /// comparison baseline for bench_scale's alloc-mode rows.
  std::unique_ptr<char[]> heap_stack_;
  ucontext_t context_{};
  bool thread_started_ = false;
  bool kill_requested_ = false;
  std::exception_ptr pending_exception_;
  /// ASan fake-stack handle saved while this fiber is switched away from
  /// (see kernel/fiber_sanitizer.h).
  void* fake_stack_ = nullptr;
  /// TSan fiber handle for this stack (see kernel/fiber_sanitizer.h);
  /// null outside TSan builds.
  void* tsan_fiber_ = nullptr;

  // --- method-only state ---
  std::vector<Event*> static_sensitivity_;
  /// True while a next_trigger() override is armed; static sensitivity is
  /// ignored until the dynamic trigger fires.
  bool trigger_override_ = false;
};

}  // namespace tdsim
