// Level probes: periodic sampling of FIFO occupancy into VCD variables.
//
// A probe is the monitor-interface consumer of paper SIII.C packaged as a
// reusable component: a synchronized thread that samples get_size() at a
// fixed period and records the level. The default sampling phase is half a
// picosecond grid step off the common integer-nanosecond word grid -- the
// same idiom as SocConfig::poll_phase -- so samples never race the
// producer/consumer accesses they observe.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/fifo_interface.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"
#include "trace/vcd.h"

namespace tdsim::trace {

class FifoLevelProbe {
 public:
  struct Config {
    /// Sampling period.
    Time period = Time(500, TimeUnit::NS);
    /// One-time phase offset applied before the first sample.
    Time phase = Time(500, TimeUnit::PS);
    /// Stop after this many samples (0 = run for the whole simulation --
    /// note that an endless probe keeps the simulation alive, so bounded
    /// runs should either set a count or run the kernel with `until`).
    std::size_t max_samples = 0;
  };

  /// Samples `fifo`'s real occupancy into `variable` every period.
  template <typename T>
  FifoLevelProbe(Kernel& kernel, std::string name, FifoInterface<T>& fifo,
                 VcdVariable variable, Config config)
      : variable_(std::move(variable)) {
    kernel.spawn_thread(std::move(name), [this, &kernel, &fifo, config] {
      SyncDomain& domain = kernel.current_domain();
      domain.inc(config.phase);
      for (std::size_t sample = 0;
           config.max_samples == 0 || sample < config.max_samples;
           ++sample) {
        domain.inc(config.period);
        domain.sync(SyncCause::Monitor);
        const std::size_t level = fifo.get_size();
        variable_.record(kernel.now(), level);
        samples_++;
        if (level > high_watermark_) {
          high_watermark_ = level;
        }
      }
    });
  }

  std::size_t samples() const { return samples_; }
  /// Highest occupancy ever sampled (for quick sizing studies without a
  /// waveform viewer).
  std::size_t high_watermark() const { return high_watermark_; }

 private:
  VcdVariable variable_;
  std::size_t samples_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace tdsim::trace
