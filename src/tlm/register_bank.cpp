#include "tlm/register_bank.h"

#include <cstring>

#include "kernel/report.h"

namespace tdsim::tlm {

RegisterBank::RegisterBank(std::string name, std::size_t count,
                           Time access_latency)
    : name_(std::move(name)),
      access_latency_(access_latency),
      values_(count, 0),
      hooks_(count) {}

void RegisterBank::set_read_hook(std::size_t index, ReadHook hook) {
  if (index >= hooks_.size()) {
    Report::error("RegisterBank " + name_ + ": hook index out of range");
  }
  hooks_[index].read = std::move(hook);
}

void RegisterBank::set_write_hook(std::size_t index, WriteHook hook) {
  if (index >= hooks_.size()) {
    Report::error("RegisterBank " + name_ + ": hook index out of range");
  }
  hooks_[index].write = std::move(hook);
}

std::uint32_t RegisterBank::peek(std::size_t index) const {
  domain_link_.touch_current();
  if (index >= values_.size()) {
    Report::error("RegisterBank " + name_ + ": peek index out of range");
  }
  return values_[index];
}

void RegisterBank::poke(std::size_t index, std::uint32_t value) {
  domain_link_.touch_current();
  if (index >= values_.size()) {
    Report::error("RegisterBank " + name_ + ": poke index out of range");
  }
  values_[index] = value;
}

void RegisterBank::b_transport(Payload& payload, Time& delay) {
  domain_link_.touch_current();
  // Register access must be whole, aligned, single 32-bit words.
  if (payload.length != 4 || payload.address % 4 != 0 ||
      payload.address / 4 >= values_.size() || payload.data == nullptr) {
    payload.response = Response::AddressError;
    return;
  }
  delay += access_latency_;
  const std::size_t index = payload.address / 4;
  switch (payload.command) {
    case Command::Read: {
      std::uint32_t value = values_[index];
      if (hooks_[index].read) {
        value = hooks_[index].read();
        values_[index] = value;
      }
      std::memcpy(payload.data, &value, 4);
      break;
    }
    case Command::Write: {
      std::uint32_t value = 0;
      std::memcpy(&value, payload.data, 4);
      values_[index] = value;
      if (hooks_[index].write) {
        hooks_[index].write(value);
      }
      break;
    }
  }
  payload.response = Response::Ok;
}

}  // namespace tdsim::tlm
