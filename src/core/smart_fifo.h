// The Smart FIFO (paper SIII) -- the primary contribution of the
// reproduction.
//
// A bounded FIFO channel aware of the per-process local dates of temporal
// decoupling. Each cell stores the date of its last data insertion and the
// date of its last freeing:
//
//   * write raises the writer's local date to the first free cell's freeing
//     date, then stamps the insertion;
//   * read raises the reader's local date to the first busy cell's
//     insertion date, then stamps the freeing;
//   * a context switch happens only when the FIFO is *internally* full
//     (writer) or empty (reader): the process synchronizes and waits.
//
// This computes exactly the bounded-Kahn timing recurrence of the reference
// model (regular FIFO + one synchronization per access) while eliding
// almost all context switches; the test suite asserts bit-exact date
// equality between the two (paper SIV.A).
//
// Three interfaces are provided, per paper Fig. 4:
//   * writer side: write / is_full / not_full_event  (ordered dates),
//   * reader side: read / is_empty / not_empty_event (ordered dates),
//   * monitor    : get_size (synchronizing, low rate).
//
// Each side must always be accessed by the same process (or by processes
// whose access dates never decrease); this is checked at runtime. Use
// WriteArbiter / ReadArbiter when several processes share a side.
//
// Every synchronizing operation resolves the *calling process's* own
// SyncDomain (Kernel::current_domain()), so the writer and the reader may
// belong to different domains with different quanta: the cell date stamps
// carry the timing across the domain boundary unchanged.
//
// Chunked mode (set_chunk_capacity >= 2, or the TDSIM_CHUNKED default;
// see core/chunk_protocol.h): the per-element bookkeeping -- delta
// notification, DomainLink touch, external-view transition checks -- is
// batched once per chunk. The writer stamps cells privately and
// publishes whole spans with one release store; occupancy, blocking
// conditions and block counters read the serialized operation totals
// directly and are bit-identical to per-element mode (the ring indices
// become derived views of the totals, `total_writes_ % depth`, so the
// channel can switch modes mid-run). Blocking paths force-flush both
// sides before suspending, and the kernel flushes every dirty chunk once
// per delta-cascade iteration (Kernel::ChunkFlushListener), so every
// date stays bit-exact with per-element mode -- only notification and
// accounting *counts* change. The mutation hooks apply to per-element
// mode only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/chunk_protocol.h"
#include "core/fifo_interface.h"
#include "core/mutations.h"
#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/process.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim {

template <typename T>
class SmartFifo final : public FifoInterface<T>, public ChunkFlushListener {
 public:
  /// A Smart FIFO with as many cells as the hardware FIFO it models.
  /// `mutations`, when non-null, must outlive the FIFO (testing only).
  SmartFifo(Kernel& kernel, std::string name, std::size_t depth,
            const SmartFifoMutations* mutations = nullptr)
      : kernel_(kernel),
        name_(std::move(name)),
        cells_(depth),
        mutations_(mutations),
        internal_data_(kernel, name_ + ".internal_data"),
        internal_space_(kernel, name_ + ".internal_space"),
        not_empty_(kernel, name_ + ".not_empty"),
        not_full_(kernel, name_ + ".not_full") {
    if (depth == 0) {
      Report::error("SmartFifo " + name_ + ": depth must be >= 1");
    }
    // Mutation-injected FIFOs (testing only) stay per-element: the
    // mutation hooks live on the per-element paths, and silently ignoring
    // an injected bug under the env default would defeat their tests.
    if (mutations_ == nullptr && kernel_.default_chunk_capacity() > 1) {
      set_chunk_capacity(kernel_.default_chunk_capacity());
    }
  }

  ~SmartFifo() override {
    if (chunked_) {
      kernel_.unregister_chunk_flush(this);
    }
  }

  // ------------------------------------------------------------------
  // Writer-side interface
  // ------------------------------------------------------------------

  /// Blocking write (paper SIII.A). The data is stamped with the writer's
  /// local date. Suspends (one context switch) only when every cell is
  /// internally busy. Callable from a method process only when guarded by
  /// is_full().
  void write(T value) override {
    // The writer's process, domain and clock are resolved once per access
    // (one thread-local read); every date operation below then works on
    // the clock directly. This is the channel-side hot path the adaptive
    // quantum tuner leans on -- see "sync-cause hinting" below.
    Process& p = require_process("write");
    SyncDomain& domain = p.domain();
    LocalClock& clock = p.clock();
    if (chunked_) {
      write_chunked(std::move(value), domain, clock);
      return;
    }
    domain_link_.touch(domain);
    check_side_order(clock, last_write_date_, "write");
    if (busy_count_ == cells_.size()) {
      // Step 1: internally full -- synchronize, then wait for a free cell.
      // The synchronization may already let the (possibly decoupled, but
      // behind in execution order) reader run and free cells, so the
      // condition is re-checked before suspending on the event.
      writer_blocks_++;
      if (!mut(&SmartFifoMutations::skip_sync_on_block)) {
        domain.sync(SyncCause::FifoFull);
      }
      while (busy_count_ == cells_.size()) {
        kernel_.wait(internal_space_);
      }
    }
    Cell& cell = cells_[first_free_];
    // Step 2: the cell may still be "occupied" in real time; push the
    // writer's local date to the date the cell was freed.
    if (!mut(&SmartFifoMutations::skip_writer_time_bump)) {
      clock.advance_to(cell.freeing_date);
    }
    const Time date = clock.now();
    last_write_date_ = date;
    const bool was_internally_empty = (busy_count_ == 0);
    // Step 3: fill the cell and stamp the insertion.
    cell.data = std::move(value);
    cell.busy = true;
    if (!mut(&SmartFifoMutations::skip_insertion_date)) {
      cell.insertion_date = date;
    }
    first_free_ = next_index(first_free_);
    busy_count_++;
    total_writes_++;
    // Step 4: wake up a blocked reader, if any.
    internal_data_.notify_delta();
    // External view (paper SIII.B, not_empty case 1): the FIFO stopped
    // being internally empty; observers must see data appear at the
    // insertion date.
    if (was_internally_empty) {
      schedule_external(not_empty_, date);
    }
    // not_full case 2: the next free cell exists but is still occupied in
    // real time until its freeing date.
    if (busy_count_ < cells_.size()) {
      const Time freeing = cells_[first_free_].freeing_date;
      if (freeing > date) {
        schedule_external(not_full_, freeing);
      }
    }
  }

  /// External view of fullness at the caller's local date (paper SIII.B):
  /// full iff every cell is internally busy, or the first free cell's
  /// freeing date is still in the future. Constant time.
  bool is_full() override {
    Process* p = kernel_.current_process();
    domain_link_.touch(p != nullptr ? p->domain() : kernel_.sync_domain());
    if (chunked_) {
      // Occupancy reads the serialized totals -- the ground truth on both
      // sides (chunk_protocol.h) -- so the chunked view is bit-identical
      // to the per-element busy_count_ test; only the re-arm notification
      // below is batched differently.
      if (total_writes_ - total_reads_ == cells_.size()) {
        return true;
      }
      const Time freeing = cell_at(total_writes_).freeing_date;
      if (freeing > (p != nullptr ? p->clock().now() : kernel_.now())) {
        schedule_external_chunked(not_full_, freeing);
        return true;
      }
      return false;
    }
    if (busy_count_ == cells_.size()) {
      return true;
    }
    if (mut(&SmartFifoMutations::naive_is_full)) {
      return false;
    }
    const Time freeing = cells_[first_free_].freeing_date;
    // From scheduler context (no process) the local date degenerates to
    // the global date, as local_time_stamp() used to.
    if (freeing > (p != nullptr ? p->clock().now() : kernel_.now())) {
      // Externally full until `freeing`. Re-arm the delayed notification:
      // an earlier pending notification may already have fired (waking the
      // caller spuriously) and consumed the one scheduled by read().
      schedule_external(not_full_, freeing);
      return true;
    }
    return false;
  }

  /// Notified (with a delay reaching the relevant freeing date) when the
  /// external view transitions away from full.
  Event& not_full_event() override { return not_full_; }

  // ------------------------------------------------------------------
  // Reader-side interface
  // ------------------------------------------------------------------

  /// Blocking read, symmetrical to write (paper SIII.A).
  T read() override {
    Process& p = require_process("read");
    SyncDomain& domain = p.domain();
    LocalClock& clock = p.clock();
    if (chunked_) {
      return read_chunked(domain, clock);
    }
    domain_link_.touch(domain);
    check_side_order(clock, last_read_date_, "read");
    if (busy_count_ == 0) {
      // Internally empty -- synchronize, then wait for data; re-check
      // after the synchronization (see write()).
      reader_blocks_++;
      if (!mut(&SmartFifoMutations::skip_sync_on_block)) {
        domain.sync(SyncCause::FifoEmpty);
      }
      while (busy_count_ == 0) {
        kernel_.wait(internal_data_);
      }
    }
    Cell& cell = cells_[first_busy_];
    // The data may not have arrived yet in real time; push the reader's
    // local date to the insertion date.
    if (!mut(&SmartFifoMutations::skip_reader_time_bump)) {
      clock.advance_to(cell.insertion_date);
    }
    const Time date = clock.now();
    last_read_date_ = date;
    const bool was_internally_full = (busy_count_ == cells_.size());
    T value = std::move(cell.data);
    cell.busy = false;
    if (!mut(&SmartFifoMutations::skip_freeing_date)) {
      cell.freeing_date = date;
    }
    first_busy_ = next_index(first_busy_);
    busy_count_--;
    total_reads_++;
    // Wake up a blocked writer, if any.
    internal_space_.notify_delta();
    // External view: the FIFO stopped being internally full; space appears
    // at the freeing date (paper SIII.B, not_full case 1).
    if (was_internally_full) {
      schedule_external(not_full_, date);
    }
    // not_empty case 2: the next busy cell exists but its data only
    // arrives in real time at its insertion date.
    if (busy_count_ > 0) {
      const Time insertion = cells_[first_busy_].insertion_date;
      if (insertion > date) {
        schedule_external(not_empty_, insertion);
      }
    }
    return value;
  }

  /// External view of emptiness at the caller's local date (paper SIII.B):
  /// empty iff every cell is internally free, or the first busy cell's
  /// insertion date is still in the future. Constant time ("two tests
  /// instead of one for a regular FIFO").
  bool is_empty() override {
    Process* p = kernel_.current_process();
    domain_link_.touch(p != nullptr ? p->domain() : kernel_.sync_domain());
    if (chunked_) {
      // Mirror of the chunked is_full() view: the serialized totals are
      // the per-element busy_count_ test, bit-identically.
      if (total_writes_ == total_reads_) {
        return true;
      }
      const Time insertion = cell_at(total_reads_).insertion_date;
      if (insertion > (p != nullptr ? p->clock().now() : kernel_.now())) {
        schedule_external_chunked(not_empty_, insertion);
        return true;
      }
      return false;
    }
    if (busy_count_ == 0) {
      return true;
    }
    if (mut(&SmartFifoMutations::naive_is_empty)) {
      return false;
    }
    const Time insertion = cells_[first_busy_].insertion_date;
    if (insertion > (p != nullptr ? p->clock().now() : kernel_.now())) {
      // Externally empty until `insertion`; re-arm the delayed
      // notification (see is_full()).
      schedule_external(not_empty_, insertion);
      return true;
    }
    return false;
  }

  /// Notified (delayed to the relevant insertion date) when the external
  /// view transitions away from empty.
  Event& not_empty_event() override { return not_empty_; }

  // ------------------------------------------------------------------
  // Monitor interface (paper SIII.C)
  // ------------------------------------------------------------------

  /// Real occupancy of the modeled hardware FIFO at the caller's date.
  /// Synchronizes the caller, then reconstructs the occupancy from the
  /// per-cell (insertion date, freeing date) pairs; a cell's internal state
  /// may be ahead of its real state because writers and readers run ahead
  /// of the global date. Linear in the depth -- this is the low-rate
  /// interface.
  std::size_t get_size() override {
    Process& p = require_process("get_size");
    SyncDomain& domain = p.domain();
    domain_link_.touch(domain);
    // 1. synchronize the caller (the monitor interface is the low-rate,
    // synchronizing one).
    domain.sync(SyncCause::Monitor);
    monitor_queries_++;
    if (mut(&SmartFifoMutations::naive_get_size)) {
      return busy_count_;
    }
    const Time now = kernel_.now();
    std::size_t count = 0;
    // 2. iterate over both internally busy and internally free cells.
    for (const Cell& cell : cells_) {
      if (cell.busy) {
        // Really busy if the insertion already happened, or if the cell
        // was freed-and-refilled ahead of real time (the previous data is
        // then still present at `now`).
        if (cell.insertion_date <= now || cell.freeing_date > now) {
          count++;
        }
      } else {
        // Really busy if the freeing is still ahead of real time and the
        // data insertion already happened.
        if (cell.freeing_date > now && cell.insertion_date <= now) {
          count++;
        }
      }
    }
    return count;
  }

  // ------------------------------------------------------------------
  // Burst extension (paper SIV.C: "slightly extended to manage efficiently
  // the packetization")
  // ------------------------------------------------------------------

  /// Writes `values`, advancing the writer's local date by `per_word`
  /// after each word, with a single side-ordering check. This is what a
  /// packetizing network interface uses to emit a whole packet.
  template <typename It>
  void write_burst(It first, It last, Time per_word) {
    LocalClock& clock = require_process("write_burst").clock();
    for (It it = first; it != last; ++it) {
      write(*it);
      clock.inc(per_word);
    }
  }

  /// Reads `count` words into `out`, advancing the reader's local date by
  /// `per_word` after each word.
  template <typename OutIt>
  void read_burst(OutIt out, std::size_t count, Time per_word) {
    LocalClock& clock = require_process("read_burst").clock();
    for (std::size_t i = 0; i < count; ++i) {
      *out++ = read();
      clock.inc(per_word);
    }
  }

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  std::size_t depth() const override { return cells_.size(); }
  const std::string& name() const { return name_; }
  Kernel& kernel() const { return kernel_; }

  /// Internal occupancy (how many cells hold data, regardless of dates).
  /// Debug only -- the real occupancy is get_size().
  std::size_t internal_size() const {
    return chunked_ ? static_cast<std::size_t>(total_writes_ - total_reads_)
                    : busy_count_;
  }

  /// Chunked-transfer opt-in (see the header comment and
  /// core/chunk_protocol.h). A capacity >= 2 enters chunked mode (or
  /// re-sizes the chunk from a flushed boundary); 0 or 1 publishes
  /// everything and returns to per-element mode. Mode switches are legal
  /// mid-run from any context serialized with both sides -- typically one
  /// of the channel's own processes, or elaboration -- even while the
  /// peer is suspended in a blocking access (the blocking paths
  /// re-dispatch on resume when the mode changed under them).
  void set_chunk_capacity(std::size_t capacity) override {
    if (capacity >= 2) {
      if (chunked_) {
        flush_chunks();  // re-size from a clean chunk boundary
      } else {
        // Entering chunked mode: per-element state is fully visible by
        // definition, and the per-element cursors are provably
        // total % depth, so the counters reconcile exactly.
        chunk_.reset(total_writes_, total_reads_);
        chunked_ = true;
        kernel_.register_chunk_flush(this);
      }
      chunk_capacity_ = capacity;
    } else if (chunked_) {
      flush_chunks();
      first_free_ = static_cast<std::size_t>(total_writes_ % cells_.size());
      first_busy_ = static_cast<std::size_t>(total_reads_ % cells_.size());
      busy_count_ = static_cast<std::size_t>(total_writes_ - total_reads_);
      chunked_ = false;
      chunk_capacity_ = 0;
      kernel_.unregister_chunk_flush(this);
    }
  }
  std::size_t chunk_capacity() const override { return chunk_capacity_; }

  /// Kernel flush point (horizons, lookahead waves, blocking paths):
  /// publishes both sides' pending spans. Returns whether anything was
  /// published (the kernel re-runs the delta cascade if so).
  bool flush_chunks() override {
    const bool wrote = publish_writes();
    const bool freed = publish_reads();
    return wrote || freed;
  }

  /// The channel's concurrency group, for group-filtered flushes inside
  /// lookahead free-run extensions.
  SyncDomain* chunk_home_domain() const override {
    return domain_link_.first_domain();
  }

  std::uint64_t total_writes() const override { return total_writes_; }
  std::uint64_t total_reads() const override { return total_reads_; }
  /// Number of times the writer (reader) suspended on an internally
  /// full (empty) FIFO -- i.e. the context switches the paper counts.
  std::uint64_t writer_blocks() const { return writer_blocks_; }
  std::uint64_t reader_blocks() const { return reader_blocks_; }
  std::uint64_t monitor_queries() const { return monitor_queries_; }

  /// Disables the runtime check that dates never decrease on a side.
  /// Only for benchmarks measuring the check's cost.
  void set_side_order_checking(bool enabled) { check_side_order_ = enabled; }

  /// Declares this FIFO's minimum modeling latency to the concurrency
  /// machinery (DomainLink::set_min_latency): shown by
  /// Kernel::explain_group() and the value to hand to the decoupled
  /// Kernel::link_domains(a, b, min_latency) overload when the coupling is
  /// restructured for per-group lookahead.
  void declare_min_latency(Time latency) {
    domain_link_.set_min_latency(latency);
  }

  /// Derived declaration for the common case: a hardware FIFO whose cells
  /// each take `per_cell` to traverse imposes at least depth x per_cell of
  /// back-pressure latency between the sides.
  void declare_cell_latency(Time per_cell) {
    declare_min_latency(Time::from_ps(per_cell.ps() * cells_.size()));
  }

 private:
  struct Cell {
    T data{};
    /// Date of the last data insertion into this cell.
    Time insertion_date{};
    /// Date of the last freeing of this cell.
    Time freeing_date{};
    bool busy = false;
  };

  std::size_t next_index(std::size_t i) const {
    return (i + 1 == cells_.size()) ? 0 : i + 1;
  }

  bool mut(bool SmartFifoMutations::* flag) const {
    return mutations_ != nullptr && mutations_->*flag;
  }

  /// The calling process -- the data-path interfaces are only usable from
  /// inside a simulation process (there is no local date to stamp
  /// otherwise).
  Process& require_process(const char* what) const {
    Process* p = kernel_.current_process();
    if (p == nullptr) {
      Report::error("SmartFifo " + name_ + ": " + what +
                    " called outside of a simulation process");
    }
    return *p;
  }

  /// Both sides require non-decreasing access dates (paper Fig. 4
  /// "requires ordered dates"); violating this means an arbiter is
  /// missing in the design.
  void check_side_order(const LocalClock& clock, Time last_date,
                        const char* side) const {
    if (!check_side_order_) {
      return;  // keep the disabled check free on the hot path
    }
    const Time date = clock.now();
    if (date < last_date) {
      Report::error("SmartFifo " + name_ + ": " + side +
                    " access date went backwards (" + date.to_string() +
                    " after " + last_date.to_string() +
                    "); an arbiter is required");
    }
  }

  /// Schedules an external-view event at absolute date `at` (>= now). The
  /// notification is delayed so that synchronized observers see the state
  /// change exactly when the real FIFO changes (paper SIII.B).
  void schedule_external(Event& event, Time at) {
    if (mut(&SmartFifoMutations::undelayed_external_events)) {
      event.notify_delta();
      return;
    }
    event.notify(at - kernel_.now());
  }

  /// Chunked-mode variant: flush points can run from scheduler context at
  /// a date past the stamped one, so a stale `at` degrades to a delta
  /// notification instead of underflowing the delay.
  void schedule_external_chunked(Event& event, Time at) {
    const Time now = kernel_.now();
    if (at >= now) {
      event.notify(at - now);
    } else {
      event.notify_delta();
    }
  }

  Cell& cell_at(std::uint64_t counter) {
    return cells_[static_cast<std::size_t>(counter % cells_.size())];
  }

  /// Chunked write (see the header comment): stamp privately, publish at
  /// chunk boundaries. The blocking condition reads the serialized totals
  /// -- exactly the per-element busy_count_ test, so blocking happens (and
  /// writer_blocks_ counts) precisely when per-element mode blocks.
  void write_chunked(T value, SyncDomain& domain, LocalClock& clock) {
    if (total_writes_ == chunk_.produced_published()) {
      domain_link_.touch(domain);  // once per chunk, not per element
    }
    check_side_order(clock, last_write_date_, "write");
    if (total_writes_ - total_reads_ == cells_.size()) {
      // Publish both sides before suspending: the blocked span's delta
      // wake must exist for a reader waiting on internal_data_, and the
      // reader's next publish is what fires internal_space_ below.
      flush_chunks();
      writer_blocks_++;
      domain.sync(SyncCause::FifoFull);
      while (total_writes_ - total_reads_ == cells_.size()) {
        kernel_.wait(internal_space_);
      }
      if (!chunked_) {
        // The mode was switched back to per-element while we were
        // suspended (set_chunk_capacity reconstructed the cursors before
        // this element was written); finishing on the chunked tail would
        // leave them one element behind. Re-dispatch: write() re-checks a
        // now-false full condition, so nothing double-counts.
        write(std::move(value));
        return;
      }
    }
    Cell& cell = cell_at(total_writes_);
    clock.advance_to(cell.freeing_date);
    const Time date = clock.now();
    last_write_date_ = date;
    cell.data = std::move(value);
    cell.busy = true;
    cell.insertion_date = date;
    total_writes_++;
    if (total_writes_ - chunk_.produced_published() >= chunk_capacity_) {
      publish_writes();
    }
  }

  /// Chunked read, symmetric to write_chunked().
  T read_chunked(SyncDomain& domain, LocalClock& clock) {
    if (total_reads_ == chunk_.consumed_published()) {
      domain_link_.touch(domain);
    }
    check_side_order(clock, last_read_date_, "read");
    if (total_writes_ == total_reads_) {
      flush_chunks();
      reader_blocks_++;
      domain.sync(SyncCause::FifoEmpty);
      while (total_writes_ == total_reads_) {
        kernel_.wait(internal_data_);
      }
      if (!chunked_) {
        // Mode switched away while suspended -- see write_chunked().
        return read();
      }
    }
    Cell& cell = cell_at(total_reads_);
    clock.advance_to(cell.insertion_date);
    const Time date = clock.now();
    last_read_date_ = date;
    T value = std::move(cell.data);
    cell.busy = false;
    cell.freeing_date = date;
    total_reads_++;
    if (total_reads_ - chunk_.consumed_published() >= chunk_capacity_) {
      publish_reads();
    }
    return value;
  }

  /// One release store for the whole pending write span, one delta wake,
  /// and the external-view checks per-element ran on every write run once
  /// against the span's boundary cells.
  bool publish_writes() {
    if (total_writes_ == chunk_.produced_published()) {
      return false;
    }
    const std::uint64_t from = chunk_.produced_published();
    // Transition tests run on the *published* view (what the events have
    // told observers so far); the published view catches up to the totals
    // at every cascade iteration, so every empty->nonempty transition
    // fires here no later than one flush after the truth changed -- at
    // the same simulated date.
    const bool was_published_empty = (from == chunk_.consumed_published());
    chunk_.publish_produced(total_writes_);
    internal_data_.notify_delta();
    if (was_published_empty) {
      // not_empty case 1: data appears at the first published insertion.
      schedule_external_chunked(not_empty_, cell_at(from).insertion_date);
    }
    // not_full case 2: the next write target exists but stays occupied in
    // real time until its freeing date.
    if (total_writes_ - chunk_.consumed_published() < cells_.size()) {
      const Time freeing = cell_at(total_writes_).freeing_date;
      if (freeing > last_write_date_) {
        schedule_external_chunked(not_full_, freeing);
      }
    }
    return true;
  }

  /// Reader-side mirror of publish_writes().
  bool publish_reads() {
    if (total_reads_ == chunk_.consumed_published()) {
      return false;
    }
    const std::uint64_t from = chunk_.consumed_published();
    const bool was_published_full =
        (chunk_.produced_published() - from == cells_.size());
    chunk_.publish_consumed(total_reads_);
    internal_space_.notify_delta();
    if (was_published_full) {
      // not_full case 1: space appears at the first published freeing.
      schedule_external_chunked(not_full_, cell_at(from).freeing_date);
    }
    // not_empty case 2: published data remains but only arrives in real
    // time at its insertion date.
    if (chunk_.produced_published() != total_reads_) {
      const Time insertion = cell_at(total_reads_).insertion_date;
      if (insertion > last_read_date_) {
        schedule_external_chunked(not_empty_, insertion);
      }
    }
    return true;
  }

  Kernel& kernel_;
  std::string name_;
  std::vector<Cell> cells_;
  const SmartFifoMutations* mutations_;
  /// Writer and reader may live in different domains (the cell stamps
  /// carry the dates across); the link declares that ordering to the
  /// parallel scheduler and, labeled with the FIFO's name, shows up in
  /// Kernel::explain_group(). Sync-cause hinting: the blocking paths
  /// attribute their syncs precisely (FifoFull / FifoEmpty / Monitor, all
  /// accuracy_relevant()), which is exactly the signal the adaptive
  /// quantum controller shrinks the quantum on.
  DomainLink domain_link_{name_};

  /// Index of the first free cell (next write target).
  std::size_t first_free_ = 0;
  /// Index of the first busy cell (next read target).
  std::size_t first_busy_ = 0;
  std::size_t busy_count_ = 0;

  Time last_write_date_{};
  Time last_read_date_{};
  bool check_side_order_ = true;

  /// Immediate (delta) wake-ups for suspended blocking calls.
  Event internal_data_;
  Event internal_space_;
  /// Delayed external-view events (paper Fig. 4).
  Event not_empty_;
  Event not_full_;

  std::uint64_t total_writes_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t writer_blocks_ = 0;
  std::uint64_t reader_blocks_ = 0;
  std::uint64_t monitor_queries_ = 0;

  /// Chunked mode (see core/chunk_protocol.h). In chunked mode the
  /// per-element cursors (first_free_ / first_busy_ / busy_count_) are
  /// dormant -- the totals are the cursors -- and are reconstructed on
  /// the way back to per-element mode.
  bool chunked_ = false;
  std::size_t chunk_capacity_ = 0;
  ChunkSpscCore chunk_;
};

}  // namespace tdsim
