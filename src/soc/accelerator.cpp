#include "soc/accelerator.h"

#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim::soc {

Accelerator::Accelerator(Module& parent, const std::string& name,
                         Config config)
    : Module(parent, name),
      config_(config),
      registers_(full_name() + ".regs", kRegisterCount, 1_ns),
      start_gate_(kernel(), full_name()) {
  if (config_.total_words == 0 || config_.block_words == 0) {
    Report::error("Accelerator " + full_name() + ": empty work");
  }
  // Start command: the gate captures the initiator's local date so
  // processing begins exactly when the (decoupled) software issued it.
  registers_.set_write_hook(kCtrl, [this](std::uint32_t value) {
    if (value != 0) {
      start_gate_.post(value);
    }
  });
  // FIFO fill-level monitor (paper SIII.C: "knowing the FIFO filling
  // levels can be used for debug and dynamic performance tuning"). The
  // read synchronizes the polling initiator via get_size().
  registers_.set_read_hook(kInputLevel, [this]() -> std::uint32_t {
    if (config_.input == nullptr) {
      return 0;
    }
    return static_cast<std::uint32_t>(config_.input->get_size());
  });
  if (config_.domain != nullptr) {
    set_default_domain(*config_.domain);
  }
  thread("process", [this] { process(); });
}

std::uint32_t Accelerator::next_input_word() {
  if (config_.input != nullptr) {
    return config_.input->read();
  }
  // Source: generate the stream locally.
  return static_cast<std::uint32_t>(source_index_++);
}

void Accelerator::emit_output_word(std::uint32_t word) {
  const std::uint32_t transformed = word * config_.mul + config_.add;
  if (config_.output != nullptr) {
    config_.output->write(transformed);
  } else {
    checksum_ = checksum_ * 31 + transformed;  // sink: accumulate
  }
}

void Accelerator::process() {
  SyncDomain& domain = kernel().current_domain();
  start_gate_.await();
  if (recorder_ != nullptr) {
    recorder_->record(full_name() + " start");
  }
  std::uint64_t in_block = 0;
  for (std::uint64_t i = 0; i < config_.total_words; ++i) {
    const std::uint32_t word = next_input_word();
    domain.inc(config_.per_word);
    emit_output_word(word);
    words_processed_++;
    if (++in_block == config_.block_words) {
      in_block = 0;
      // Publish progress date-accurately: plain variables crossing
      // decoupled processes are synchronization points (paper SII.A), so
      // sync before the update.
      domain.sync(SyncCause::SyncPoint);
      registers_.poke(kProgress,
                      static_cast<std::uint32_t>(words_processed_));
      if (recorder_ != nullptr) {
        recorder_->record(full_name() + " block",
                          static_cast<std::uint64_t>(words_processed_));
      }
    }
  }
  completion_date_ = domain.local_time_stamp();
  // Synchronization point: the done flag must be date-accurate.
  domain.sync(SyncCause::SyncPoint);
  registers_.poke(kProgress, static_cast<std::uint32_t>(words_processed_));
  registers_.poke(kStatus, 1);
  done_ = true;
  if (recorder_ != nullptr) {
    recorder_->record(full_name() + " done");
  }
}

}  // namespace tdsim::soc
