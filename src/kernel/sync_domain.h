// Kernel-owned synchronization domains -- the second level of the
// temporal-decoupling subsystem.
//
// A SyncDomain groups a subset of one kernel's processes under a common
// quantum policy and accounts for every synchronization they perform,
// attributed to a cause (quantum expiry, Smart-FIFO full/empty,
// synchronization points, monitor accesses, method re-arms). The per-cause
// counts land in the domain's DomainStats entry of KernelStats (and in the
// kernel-wide aggregate), where benchmarks read them next to wall time --
// exactly the quantities the paper's Fig. 5 trades off against FIFO depth,
// now resolvable per subsystem.
//
// Every kernel owns a default domain (Kernel::sync_domain()); further
// domains are created with Kernel::create_domain(name, quantum) and joined
// per process (ThreadOptions/MethodOptions::domain) or per module subtree
// (Module::set_default_domain). A CPU cluster, a DMA engine and a slow
// peripheral bus can this way each run under the quantum that suits them,
// inside one kernel, without perturbing each other's accuracy.
//
// The domain also offers the current-process convenience API (inc, sync,
// advance_local_to, ...) that channel code uses when it holds a Kernel& but
// not a Process&: the operations apply to the process currently executing
// inside that kernel. Channel code should resolve the executing process's
// own domain through Kernel::current_domain() (or the ambient
// current_sync_domain()) rather than hard-wiring the default domain.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "kernel/cacheline.h"
#include "kernel/stats.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;
class LocalClock;
class Process;
struct QuantumDecision;
struct QuantumPolicy;

/// What the synchronization hot path needs from the executing context --
/// the current process and the counter sink (the group's buffered delta
/// inside a parallel round, the kernel aggregate otherwise) -- resolved in
/// a single thread-local read by Kernel::sync_context(). Channel-driven
/// sync storms hit this path once per annotation, so the bundle is
/// resolved once per operation instead of once per query.
struct SyncContext {
  Process* process = nullptr;
  KernelStats* stats = nullptr;
};

class SyncDomain {
 public:
  SyncDomain(const SyncDomain&) = delete;
  SyncDomain& operator=(const SyncDomain&) = delete;

  Kernel& kernel() const { return kernel_; }
  const std::string& name() const { return name_; }
  /// Index of this domain in Kernel::domains() and KernelStats::domains.
  std::size_t id() const { return id_; }

  // --- quantum policy ---

  /// Temporal-decoupling quantum (TLM-2.0 tlm_global_quantum analog) of
  /// this domain: the maximum local-time offset a well-behaved decoupled
  /// process of the domain accumulates before synchronizing. Zero disables
  /// quantum-driven decoupling ("synchronize at every annotation").
  Time quantum() const { return quantum_; }
  /// On an adaptive domain (quantum_policy() != null) a value outside the
  /// policy's [min_quantum, max_quantum] is corrected back into range at
  /// the next synchronization horizon, recorded as a "clamped" decision.
  void set_quantum(Time quantum) { quantum_ = quantum; }

  /// Opts this domain into adaptive quantum control (delegates to
  /// Kernel::set_quantum_policy; see kernel/quantum_controller.h).
  /// Deprecated: pass DomainOptions::policy at creation, or use
  /// Kernel::set_quantum_policy for mid-run re-policying.
  [[deprecated("pass DomainOptions::policy to Kernel::create_domain, or use "
               "Kernel::set_quantum_policy")]]
  void set_quantum_policy(const QuantumPolicy& policy);

  /// The attached adaptive policy, or null when the quantum is fixed.
  const QuantumPolicy* quantum_policy() const;

  /// The adaptive controller's most recent decision for this domain, or
  /// null before the first one.
  const QuantumDecision* last_quantum_decision() const;

  /// The controller's recent decisions for this domain, oldest first (the
  /// last kQuantumTraceDepth of them -- see kernel/quantum_controller.h).
  /// Empty before the first decision or without a policy.
  std::vector<QuantumDecision> decision_trace() const;

  /// Policy decision for a clock in this domain: true when the quantum is
  /// zero or the clock's offset has reached it.
  bool quantum_exceeded(const LocalClock& clock) const;

  /// Per-domain delta-cycle livelock limit: when non-zero, the scheduler
  /// raises a SimulationError once processes of this domain stay runnable
  /// for more than `limit` consecutive delta cycles at one simulated date.
  /// Independent of the kernel-wide Kernel::set_delta_cycle_limit().
  void set_delta_cycle_limit(std::uint64_t limit);
  std::uint64_t delta_cycle_limit() const { return delta_limit_; }

  // --- concurrency (parallel per-domain execution) ---

  /// Opts this domain into concurrent execution: it starts in its own
  /// concurrency group instead of the default group, so under
  /// Kernel::set_workers(n >= 2) it may run on a worker thread in
  /// parallel with other groups. Channels that later carry its traffic
  /// to another domain automatically merge the two groups back
  /// (Kernel::link_domains), which restores full serialization between
  /// them -- only *truly* independent domains ever run concurrently, and
  /// results stay bit-identical to the sequential schedule. Couplings no
  /// channel can see (a plain variable shared across domains) must be
  /// declared with Kernel::link_domains by hand. Elaboration-only.
  /// Deprecated: pass DomainOptions::concurrent at creation.
  [[deprecated("pass DomainOptions::concurrent to Kernel::create_domain")]]
  void set_concurrent(bool concurrent);
  bool concurrent() const { return concurrent_; }

  // --- membership / scheduler bookkeeping ---

  /// Processes of this domain, in spawn order (includes terminated ones).
  const std::vector<Process*>& members() const { return members_; }

  /// Number of this domain's processes currently in the kernel's runnable
  /// set (maintained by the scheduler).
  std::size_t runnable_count() const { return runnable_count_; }

  /// The domain's execution front: the maximum local date over its live
  /// (non-terminated) processes, i.e. how far ahead of the global date the
  /// domain has run. Empty when the domain has no live process. The domain
  /// with the smallest front is the one gating global progress -- see
  /// Kernel::lagging_domain(). Safe to query mid-run from a probe even in
  /// parallel mode: a foreign group's front is then reported as of the
  /// last synchronization horizon (reading its processes' live clocks
  /// from another worker would race).
  std::optional<Time> execution_front() const;

  /// Largest local-time offset among live processes of this domain. Same
  /// mid-run visibility rule as execution_front().
  Time max_offset() const;

  // --- current-process operations ---
  // All of these apply to the process currently executing inside this
  // domain's kernel; calling them from outside a running simulation process
  // is an error (except local_time_stamp, which degenerates gracefully).
  // The policy/bookkeeping operations (sync, inc_and_sync_if_needed,
  // needs_sync, method_sync_trigger) additionally require that process to
  // be a member of *this* domain -- resolve the right domain with
  // Kernel::current_domain() when in doubt.

  /// The clock of the currently executing process.
  LocalClock& current_clock() const;

  /// Local date of the current process; from scheduler context (e.g.
  /// callbacks) it degenerates to the global date.
  Time local_time_stamp() const;

  /// Local-time offset of the current process.
  Time local_offset() const;

  /// inc() on the current process's clock.
  void inc(Time duration);

  /// advance_to() on the current process's clock.
  void advance_local_to(Time date);

  /// sync() on the current process's clock, attributed to `cause`.
  void sync(SyncCause cause = SyncCause::Explicit);

  /// Chunked-accounting variant for channels that batch their sync books
  /// (see core/sync_fifo.h): the identical date-faithful synchronization
  /// -- same suspension, same resulting local date -- but the per-cause
  /// books are skipped; the caller attributes one normal sync() per
  /// chunk. Date-neutral by construction; only the counters (and the
  /// signals the adaptive quantum controller reads from them) change.
  void sync_unbooked();

  /// The canonical loosely-timed pattern: inc, then sync only when the
  /// quantum is exhausted.
  void inc_and_sync_if_needed(Time duration,
                              SyncCause cause = SyncCause::Quantum);

  bool is_synchronized() const;
  bool needs_sync() const;

  /// method_rearm() on the current (method) process's clock.
  void method_sync_trigger(SyncCause cause = SyncCause::MethodRearm);

  /// Local date of an arbitrary process (global date + its offset).
  Time local_time_of(const Process& process) const;

  // --- statistics (stored in the kernel's KernelStats) ---

  /// This domain's share of the sync bookkeeping (KernelStats::domains).
  const DomainStats& stats() const;

  std::uint64_t syncs(SyncCause cause) const;
  std::uint64_t syncs_performed() const;
  std::uint64_t syncs_elided() const;

 private:
  friend class Kernel;      // creates domains, keeps runnable_count_
  friend class LocalClock;

  SyncDomain(Kernel& kernel, std::string name, std::size_t id, Time quantum)
      : kernel_(kernel), name_(std::move(name)), id_(id), quantum_(quantum) {}

  /// Validates that `clock` belongs to the currently executing process,
  /// then synchronizes through perform_sync_in().
  void perform_sync(LocalClock& clock, SyncCause cause);

  /// The one place a synchronization happens: checks membership, keeps the
  /// per-cause books (the owning domain's entry of ctx.stats -- the kernel
  /// aggregate is a derived cache, see KernelStats), clears the offset and
  /// suspends the owner until the global date catches up. `ctx` is the
  /// caller's already-resolved execution context, so the hot path performs
  /// exactly one thread-local read per synchronization request.
  /// `book` is false only for sync_unbooked(): the suspension is
  /// identical, the per-cause stats writes are skipped.
  void perform_sync_in(const SyncContext& ctx, LocalClock& clock,
                       SyncCause cause, bool book = true);

  /// The method-process counterpart: re-arm at the local date through
  /// Kernel::next_trigger (generation-safe) and keep the books.
  void perform_method_rearm(LocalClock& clock, SyncCause cause);

  /// Errors unless `process` (the owner of a clock being synchronized
  /// through this domain) is a member of this domain.
  void require_member(const Process& process) const;

  Kernel& kernel_;
  std::string name_;
  std::size_t id_;
  // --- hot per-wave state, on its own cache line ---
  // Written every delta cycle / quantum check by whichever worker runs
  // this domain's group. Domains are individually heap-allocated, but at
  // O(100) domains the allocator packs several per line; the alignas
  // pair below (line-start here, next-line-start at members_) keeps one
  // domain's wave bookkeeping from false-sharing with a neighbour's --
  // see kernel/cacheline.h.
  alignas(kCacheLineSize) Time quantum_{};
  /// See set_concurrent(); seeds the concurrency-group membership.
  bool concurrent_ = false;
  std::uint64_t delta_limit_ = 0;
  /// Consecutive delta cycles at the current date with members runnable.
  std::uint64_t deltas_at_current_date_ = 0;
  std::size_t runnable_count_ = 0;
  /// Line-aligned so the hot group above gets padded to a full line.
  alignas(kCacheLineSize) std::vector<Process*> members_;
};

/// The domain of the process currently executing inside the kernel
/// currently running run() on this OS thread; an error when no kernel is
/// running. For components (arbiters, sockets) that are not bound to a
/// kernel at construction time. From scheduler context (no current
/// process) it degenerates to that kernel's default domain.
SyncDomain& current_sync_domain();

/// TLM-2.0 tlm_quantumkeeper analog: accumulates local time on the current
/// process and synchronizes when the governing domain's quantum is
/// exceeded. Two binding flavors:
///   * QuantumKeeper(kernel) resolves the executing process's own domain
///     inside that kernel at each use -- never the ambient
///     Kernel::current() -- so a keeper built for one kernel keeps working
///     when several kernels coexist and follows the process's domain.
///   * QuantumKeeper(domain) pins one domain: policy and accounting come
///     from it, and using the keeper from a process of another domain is an
///     error (it would apply the wrong quantum).
class QuantumKeeper {
 public:
  explicit QuantumKeeper(Kernel& kernel) : kernel_(kernel) {}
  explicit QuantumKeeper(SyncDomain& domain);

  /// Adds `duration` to the current process's local time.
  void inc(Time duration);

  /// Local date of the current process.
  Time local_time() const;

  bool need_sync() const;

  /// Unconditional synchronization (attributed to the quantum cause).
  void sync();

  /// The canonical loosely-timed pattern: inc, then sync only when the
  /// quantum is exhausted.
  void inc_and_sync_if_needed(Time duration);

  Kernel& kernel() const { return kernel_; }

 private:
  SyncDomain& domain() const;

  Kernel& kernel_;
  SyncDomain* bound_domain_ = nullptr;
};

}  // namespace tdsim
