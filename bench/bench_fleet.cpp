// Fleet benchmark: simulation-as-a-service throughput (README "Fleet /
// scheduler"). One platform is warmed once through Kernel::build() steps,
// snapshotted, and forked into many scenario variants -- each variant
// grafts a scenario-specific pipeline at the warm point (ForkOptions::
// diverge) and runs to completion on the process-wide Scheduler, several
// forks alive at once with interleaved run() windows.
//
// Every scenario is verified in-bench against a cold standalone kernel
// built with the same steps: end date, delta count, and the consumed-word
// checksum must match bit-for-bit, or the bench exits 1 before writing
// anything. The cold pass doubles as the throughput reference.
//
// `bench_fleet --json [--scenarios N] [--words N]` writes BENCH_fleet.json:
// a "fork" and a "cold" summary row (shared deterministic digest, separate
// walls) plus a few per-scenario sample rows. CI's perf-gate feeds the
// file to tools/check_bench.py, which holds the deterministic fields to
// the committed baseline and requires the fork path to reach
// --fleet-throughput of the cold path's scenarios/sec.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/snapshot.h"
#include "kernel/sync_domain.h"

namespace {

using tdsim::ForkOptions;
using tdsim::Kernel;
using tdsim::KernelConfig;
using tdsim::SmartFifo;
using tdsim::Snapshot;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using namespace tdsim::time_literals;

/// Per-kernel, per-pipeline model state, looked up by kernel address so
/// that build steps replayed into forks construct fresh state (same
/// discipline as tests/test_snapshot.cpp). Slots must be dropped before
/// their kernel dies: channel destructors touch the kernel.
struct PipeState {
  std::unique_ptr<SmartFifo<int>> fifo;
  std::uint32_t checksum = 0;
  std::uint64_t consumed = 0;
};

struct Model {
  std::map<std::string, PipeState> pipes;
};

struct ModelRegistry {
  std::map<const Kernel*, Model> slots;
  Model& of(const Kernel& k) { return slots[&k]; }
  void drop(const Kernel& k) { slots.erase(&k); }
};

ModelRegistry g_models;

/// One replayable platform component: a producer/consumer pair over a
/// Smart FIFO in two concurrent domains, transfer length `words`.
void build_pipeline(Kernel& k, const std::string& tag, int words) {
  k.build([tag, words](Kernel& kk) {
    PipeState& state = g_models.of(kk).pipes[tag];
    SyncDomain& prod = kk.create_domain(
        {.name = tag + "_prod", .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = kk.create_domain(
        {.name = tag + "_cons", .quantum = 300_ns, .concurrent = true});
    state.fifo = std::make_unique<SmartFifo<int>>(kk, tag + "_fifo", 4);
    SmartFifo<int>* fifo = state.fifo.get();
    ThreadOptions popts;
    popts.domain = &prod;
    kk.spawn_thread(tag + "_producer", [&kk, fifo, words] {
      for (int i = 0; i < words; ++i) {
        kk.current_domain().inc((i % 5 + 1) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    kk.spawn_thread(tag + "_consumer", [&kk, fifo, &state, words] {
      for (int i = 0; i < words; ++i) {
        state.checksum = state.checksum * 31 +
                         static_cast<std::uint32_t>(fifo->read());
        state.consumed++;
        kk.current_domain().inc((i % 3 + 1) * 4_ns);
      }
    }, copts);
  });
}

/// The shared platform: three pipelines warmed together. Scenario
/// pipelines graft on top of this at the warm point.
void build_platform(Kernel& k, int words) {
  build_pipeline(k, "cpu", words);
  build_pipeline(k, "dma", words / 2);
  build_pipeline(k, "io", words / 4);
}

int scenario_words(int scenario, int words) {
  return words / 4 + scenario % 7;
}

struct ScenarioResult {
  std::uint64_t end_ps = 0;
  std::uint64_t delta_cycles = 0;
  std::uint32_t checksum = 0;
  std::uint64_t consumed = 0;

  void capture(const Kernel& k) {
    end_ps = k.now().ps();
    delta_cycles = k.stats().delta_cycles;
    checksum = 0;
    consumed = 0;
    for (const auto& [tag, state] : g_models.of(k).pipes) {
      checksum = checksum * 16777619u + state.checksum;
      consumed += state.consumed;
    }
  }

  bool operator==(const ScenarioResult& o) const {
    return end_ps == o.end_ps && delta_cycles == o.delta_cycles &&
           checksum == o.checksum && consumed == o.consumed;
  }
};

/// Cold reference: the scenario's full construction from scratch, warm-up
/// included, in a standalone kernel.
ScenarioResult run_cold(int scenario, int words, Time warm_slice) {
  Kernel k(KernelConfig{.workers = 2});
  build_platform(k, words);
  k.run(warm_slice);
  build_pipeline(k, "scn" + std::to_string(scenario),
                 scenario_words(scenario, words));
  k.run();
  ScenarioResult result;
  result.capture(k);
  g_models.drop(k);
  return result;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int json_main(int scenarios, int words) {
  // Mid-flight for the default --words 64 platform (natural end ~600 ns),
  // so forks genuinely replay a half-run schedule, not a finished one.
  constexpr Time kWarmSlice = 300_ns;
  constexpr int kBatch = 4;  // forks alive at once, run windows interleaved

  // Warm the platform once and snapshot it; every scenario starts here.
  Kernel warm(KernelConfig{.workers = 2});
  build_platform(warm, words);
  warm.run(kWarmSlice);
  const Snapshot snap = warm.snapshot();

  std::vector<ScenarioResult> fork_results(
      static_cast<std::size_t>(scenarios));
  const auto fork_start = std::chrono::steady_clock::now();
  for (int base = 0; base < scenarios; base += kBatch) {
    const int batch = std::min(kBatch, scenarios - base);
    std::vector<std::unique_ptr<Kernel>> fleet;
    for (int i = 0; i < batch; ++i) {
      const int scenario = base + i;
      ForkOptions options;
      options.diverge = [scenario, words](Kernel& kk) {
        build_pipeline(kk, "scn" + std::to_string(scenario),
                       scenario_words(scenario, words));
      };
      fleet.push_back(Kernel::fork(snap, std::move(options)));
    }
    // Interleaved windows: every fork advances one slice before any
    // finishes, so the batch's kernels genuinely coexist as Scheduler
    // clients mid-run.
    for (auto& kernel : fleet) {
      kernel->run(kWarmSlice + 500_ns);
    }
    for (int i = 0; i < batch; ++i) {
      fleet[static_cast<std::size_t>(i)]->run();
      fork_results[static_cast<std::size_t>(base + i)].capture(
          *fleet[static_cast<std::size_t>(i)]);
    }
    for (auto& kernel : fleet) {
      g_models.drop(*kernel);
    }
  }
  const double fork_wall = seconds_since(fork_start);

  // Cold pass: every scenario rebuilt standalone -- the bit-exactness
  // reference and the throughput reference in one.
  int mismatches = 0;
  const auto cold_start = std::chrono::steady_clock::now();
  for (int scenario = 0; scenario < scenarios; ++scenario) {
    const ScenarioResult cold = run_cold(scenario, words, kWarmSlice);
    if (!(cold == fork_results[static_cast<std::size_t>(scenario)])) {
      const ScenarioResult& fork = fork_results[
          static_cast<std::size_t>(scenario)];
      std::fprintf(stderr,
                   "ERROR: scenario %d diverged: fork end=%llu deltas=%llu "
                   "checksum=%u consumed=%llu vs cold end=%llu deltas=%llu "
                   "checksum=%u consumed=%llu\n",
                   scenario,
                   static_cast<unsigned long long>(fork.end_ps),
                   static_cast<unsigned long long>(fork.delta_cycles),
                   fork.checksum,
                   static_cast<unsigned long long>(fork.consumed),
                   static_cast<unsigned long long>(cold.end_ps),
                   static_cast<unsigned long long>(cold.delta_cycles),
                   cold.checksum,
                   static_cast<unsigned long long>(cold.consumed));
      mismatches++;
    }
  }
  const double cold_wall = seconds_since(cold_start);
  if (mismatches != 0) {
    std::fprintf(stderr, "ERROR: %d of %d scenarios diverged from their "
                 "cold runs\n", mismatches, scenarios);
    return 1;
  }

  // Fleet digest: one number covering every scenario's deterministic
  // result, so the committed baseline pins the whole fleet.
  std::uint64_t digest = 14695981039346656037ull;
  std::uint64_t end_ps_sum = 0;
  std::uint64_t delta_sum = 0;
  for (const ScenarioResult& r : fork_results) {
    for (std::uint64_t v : {r.end_ps, r.delta_cycles,
                            static_cast<std::uint64_t>(r.checksum),
                            r.consumed}) {
      digest = (digest ^ v) * 1099511628211ull;
    }
    end_ps_sum += r.end_ps;
    delta_sum += r.delta_cycles;
  }

  const double fork_rate = fork_wall > 0 ? scenarios / fork_wall : 0.0;
  const double cold_rate = cold_wall > 0 ? scenarios / cold_wall : 0.0;
  std::printf("fleet: %d scenarios, all bit-identical to cold runs\n",
              scenarios);
  std::printf("%6s | %10s | %14s\n", "path", "wall[s]", "scenarios/s");
  std::printf("%6s | %10.3f | %14.1f\n", "fork", fork_wall, fork_rate);
  std::printf("%6s | %10.3f | %14.1f\n", "cold", cold_wall, cold_rate);

  benchjson::Report report("fleet");
  report.row()
      .add("fleet_mode", std::string("fork"))
      .add("scenarios", static_cast<std::uint64_t>(scenarios))
      .add("words", static_cast<std::uint64_t>(words))
      .add("digest", digest)
      .add("end_ps_sum", end_ps_sum)
      .add("delta_cycles_sum", delta_sum)
      .add("wall_seconds", fork_wall)
      .add("scenarios_per_wall_sec", fork_rate);
  report.row()
      .add("fleet_mode", std::string("cold"))
      .add("scenarios", static_cast<std::uint64_t>(scenarios))
      .add("words", static_cast<std::uint64_t>(words))
      .add("digest", digest)
      .add("end_ps_sum", end_ps_sum)
      .add("delta_cycles_sum", delta_sum)
      .add("wall_seconds", cold_wall)
      .add("scenarios_per_wall_sec", cold_rate);
  for (int scenario : {0, 1, scenarios / 2, scenarios - 1}) {
    const ScenarioResult& r = fork_results[
        static_cast<std::size_t>(scenario)];
    report.row()
        .add("scenario", static_cast<std::uint64_t>(scenario))
        .add("scn_words",
             static_cast<std::uint64_t>(scenario_words(scenario, words)))
        .add("end_ps", r.end_ps)
        .add("delta_cycles", r.delta_cycles)
        .add("checksum", static_cast<std::uint64_t>(r.checksum))
        .add("consumed", r.consumed);
  }
  // Forking must leave the donor kernel exactly where snapshot() saw it.
  const int still_warm = warm.now() == snap.warmed_to ? 1 : 0;
  report.row().add("warm_platform_intact",
                   static_cast<std::uint64_t>(still_warm));
  g_models.drop(warm);
  return report.write() && still_warm == 1 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int scenarios = 100;
  int words = 64;
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--scenarios") == 0 && i + 1 < argc) {
      scenarios = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words = std::atoi(argv[++i]);
    }
  }
  if (scenarios < 2 || words < 8) {
    std::fprintf(stderr, "need --scenarios >= 2 and --words >= 8\n");
    return 1;
  }
  (void)emit_json;  // the fleet sweep is the only mode
  return json_main(scenarios, words);
}
