// Memory-mapped TLM substrate: payload routing, latency annotation,
// register hooks, and the loosely-timed decoupling pattern.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/sync_domain.h"
#include "kernel/kernel.h"
#include "kernel/report.h"
#include "tlm/bus.h"
#include "tlm/memory.h"
#include "tlm/payload.h"
#include "tlm/register_bank.h"
#include "tlm/socket.h"

namespace tdsim {
namespace {

using tlm::Bus;
using tlm::Command;
using tlm::InitiatorSocket;
using tlm::Memory;
using tlm::Payload;
using tlm::RegisterBank;
using tlm::Response;

TEST(TlmMemory, ReadBackWrittenData) {
  Memory mem("m", 1024, 1_ns);
  std::uint32_t wdata = 0xdeadbeef;
  Payload p;
  p.command = Command::Write;
  p.address = 64;
  p.data = reinterpret_cast<std::uint8_t*>(&wdata);
  p.length = 4;
  Time delay;
  mem.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(delay, 1_ns);

  std::uint32_t rdata = 0;
  p.command = Command::Read;
  p.data = reinterpret_cast<std::uint8_t*>(&rdata);
  mem.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(rdata, 0xdeadbeefu);
  EXPECT_EQ(delay, 2_ns);  // accumulated
}

TEST(TlmMemory, LatencyScalesWithWords) {
  Memory mem("m", 1024, 2_ns);
  std::vector<std::uint8_t> buf(64);
  Payload p;
  p.command = Command::Read;
  p.address = 0;
  p.data = buf.data();
  p.length = 64;  // 16 words
  Time delay;
  mem.b_transport(p, delay);
  EXPECT_EQ(delay, 32_ns);
}

TEST(TlmMemory, OutOfRangeIsAddressError) {
  Memory mem("m", 128, 1_ns);
  std::uint32_t v = 0;
  Payload p;
  p.command = Command::Read;
  p.address = 126;  // straddles the end
  p.data = reinterpret_cast<std::uint8_t*>(&v);
  p.length = 4;
  Time delay;
  mem.b_transport(p, delay);
  EXPECT_EQ(p.response, Response::AddressError);
}

TEST(TlmBus, RoutesByAddressAndTranslates) {
  Bus bus("bus", 5_ns);
  Memory a("a", 256, 1_ns);
  Memory b("b", 256, 1_ns);
  bus.map(0x1000, 256, a);
  bus.map(0x2000, 256, b);

  std::uint32_t v = 42;
  Payload p;
  p.command = Command::Write;
  p.address = 0x2010;
  p.data = reinterpret_cast<std::uint8_t*>(&v);
  p.length = 4;
  Time delay;
  bus.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(p.address, 0x2010u);  // restored after translation
  EXPECT_EQ(delay, 6_ns);         // hop + word
  // The write landed at offset 0x10 of target b.
  EXPECT_EQ(*reinterpret_cast<std::uint32_t*>(b.backdoor() + 0x10), 42u);
  EXPECT_EQ(a.writes(), 0u);
  EXPECT_EQ(b.writes(), 1u);
}

TEST(TlmBus, UnmappedAddressIsError) {
  Bus bus("bus", 1_ns);
  Memory a("a", 256, 1_ns);
  bus.map(0x1000, 256, a);
  std::uint32_t v = 0;
  Payload p;
  p.command = Command::Read;
  p.address = 0x3000;
  p.data = reinterpret_cast<std::uint8_t*>(&v);
  p.length = 4;
  Time delay;
  bus.b_transport(p, delay);
  EXPECT_EQ(p.response, Response::AddressError);
  EXPECT_EQ(bus.decode_errors(), 1u);
}

TEST(TlmBus, OverlappingRegionsRejected) {
  Bus bus("bus", 1_ns);
  Memory a("a", 256, 1_ns);
  Memory b("b", 256, 1_ns);
  bus.map(0x1000, 256, a);
  EXPECT_THROW(bus.map(0x10f0, 256, b), SimulationError);
}

TEST(TlmBus, AccessStraddlingRegionEndIsError) {
  Bus bus("bus", 1_ns);
  Memory a("a", 256, 1_ns);
  bus.map(0x1000, 256, a);
  std::vector<std::uint8_t> buf(8);
  Payload p;
  p.command = Command::Read;
  p.address = 0x10fc;
  p.data = buf.data();
  p.length = 8;  // 4 bytes beyond the region
  Time delay;
  bus.b_transport(p, delay);
  EXPECT_EQ(p.response, Response::AddressError);
}

TEST(TlmRegisterBank, HooksAndStorage) {
  RegisterBank regs("r", 4, 1_ns);
  std::uint32_t written = 0;
  regs.set_write_hook(1, [&](std::uint32_t v) { written = v; });
  regs.set_read_hook(2, [] { return 77u; });

  Payload p;
  Time delay;
  std::uint32_t v = 5;
  p.command = Command::Write;
  p.address = 4;  // register 1
  p.data = reinterpret_cast<std::uint8_t*>(&v);
  p.length = 4;
  regs.b_transport(p, delay);
  EXPECT_TRUE(p.ok());
  EXPECT_EQ(written, 5u);
  EXPECT_EQ(regs.peek(1), 5u);

  p.command = Command::Read;
  p.address = 8;  // register 2, hooked
  regs.b_transport(p, delay);
  EXPECT_EQ(v, 77u);
}

TEST(TlmRegisterBank, MisalignedAccessRejected) {
  RegisterBank regs("r", 4, 1_ns);
  std::uint32_t v = 0;
  Payload p;
  p.command = Command::Read;
  p.address = 2;
  p.data = reinterpret_cast<std::uint8_t*>(&v);
  p.length = 4;
  Time delay;
  regs.b_transport(p, delay);
  EXPECT_EQ(p.response, Response::AddressError);
}

TEST(TlmSocket, UnboundAccessIsError) {
  Kernel k;
  InitiatorSocket socket("s");
  k.spawn_thread("t", [&] { (void)socket.read32(0); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(TlmSocket, DoubleBindRejected) {
  InitiatorSocket socket("s");
  Memory mem("m", 64, 1_ns);
  socket.bind(mem);
  EXPECT_THROW(socket.bind(mem), SimulationError);
}

TEST(TlmSocket, LooselyTimedAccessesAccumulateLocalTime) {
  Kernel k;
  k.set_global_quantum(1_us);
  Bus bus("bus", 2_ns);
  Memory mem("m", 1024, 1_ns);
  bus.map(0, 1024, mem);
  InitiatorSocket socket("s");
  socket.bind(bus);
  k.spawn_thread("initiator", [&] {
    for (std::uint64_t i = 0; i < 10; ++i) {
      socket.write32(i * 4, static_cast<std::uint32_t>(i * 7));
    }
    // 10 accesses x (2 + 1) ns, all inside the quantum: no sync yet.
    EXPECT_EQ(k.sync_domain().local_time_stamp(), 30_ns);
    EXPECT_EQ(k.now(), Time{});
    for (std::uint64_t i = 0; i < 10; ++i) {
      EXPECT_EQ(socket.read32(i * 4), i * 7);
    }
    k.sync_domain().sync();
    EXPECT_EQ(k.now(), 60_ns);
  });
  k.run();
  // The whole program cost a single context switch.
  EXPECT_LE(k.stats().context_switches, 2u);
  EXPECT_EQ(socket.transactions(), 20u);
}

TEST(TlmSocket, QuantumBoundsDecoupling) {
  Kernel k;
  k.set_global_quantum(10_ns);
  Memory mem("m", 1024, 5_ns);
  InitiatorSocket socket("s");
  socket.bind(mem);
  k.spawn_thread("initiator", [&] {
    for (int i = 0; i < 6; ++i) {
      socket.write32(0, 1);  // 5 ns each, quantum 10 ns
      EXPECT_LE(k.sync_domain().local_offset(), 10_ns);
    }
  });
  k.run();
  EXPECT_EQ(k.now(), 30_ns);
  // One initial dispatch + one sync every two accesses.
  EXPECT_EQ(k.stats().context_switches, 4u);
}

TEST(TlmSocket, FailedAccessRaises) {
  Kernel k;
  Bus bus("bus", 1_ns);
  Memory mem("m", 64, 1_ns);
  bus.map(0, 64, mem);
  InitiatorSocket socket("s");
  socket.bind(bus);
  k.spawn_thread("t", [&] { (void)socket.read32(0x9999); });
  EXPECT_THROW(k.run(), SimulationError);
}

}  // namespace
}  // namespace tdsim
