// Trace-based validation (paper SIV.A).
//
// Every test prints traces; each trace carries the local date of the
// process that printed it. Runs in different modes schedule processes
// differently (with temporal decoupling, dates may decrease when switching
// process), so raw trace order differs -- but after reordering by date the
// trace files must be *identical*, "meaning that the behavior and the
// timing are not changed at all".
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/time.h"

namespace tdsim::trace {

struct Entry {
  Time date;            ///< Local date of the recording process.
  std::string process;  ///< Name of the recording process ("" outside one).
  std::string text;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.date == b.date && a.process == b.process && a.text == b.text;
  }
};

class Recorder {
 public:
  explicit Recorder(Kernel& kernel) : kernel_(kernel) {}

  /// Records `text` stamped with the current process's local date and name.
  void record(std::string text);

  /// Records "<tag>=<value>".
  void record(const std::string& tag, std::uint64_t value) {
    record(tag + "=" + std::to_string(value));
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Entries in emission order, one line each ("t=<date> <process> <text>").
  std::vector<std::string> lines() const;

  /// Entries reordered by (date, process, text) -- the paper's
  /// "reordering of traces" -- then rendered as lines.
  std::vector<std::string> sorted_lines() const;

 private:
  Kernel& kernel_;
  std::vector<Entry> entries_;
};

/// Compares two recorders after reordering. Returns nullopt when the
/// sorted traces are identical, otherwise a human-readable diff of the
/// first divergence.
std::optional<std::string> compare_sorted(const Recorder& a,
                                          const Recorder& b);

}  // namespace tdsim::trace
