// Byte-addressable memory target with word-granular access latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tlm/payload.h"

namespace tdsim::tlm {

class Memory final : public TransportIf {
 public:
  /// `word_latency` is charged per started 4-byte word of the transfer.
  Memory(std::string name, std::size_t size, Time word_latency);

  void b_transport(Payload& payload, Time& delay) override;

  /// Backdoor (debug) access without timing, as DMI would provide.
  std::uint8_t* backdoor() { return storage_.data(); }
  const std::uint8_t* backdoor() const { return storage_.data(); }

  std::size_t size() const { return storage_.size(); }
  const std::string& name() const { return name_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

 private:
  std::string name_;
  Time word_latency_;
  std::vector<std::uint8_t> storage_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace tdsim::tlm
