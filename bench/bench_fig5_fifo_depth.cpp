// Reproduces Fig. 5 of the paper: "Execution durations depending on the
// FIFO depth" for the three-module benchmark system (source, transmitter,
// sink, 2 FIFOs; 1000 blocks of 1000 words, varying data rates).
//
// Paper shape to verify:
//   * TDless executes at roughly the same speed for all FIFO depths (one
//     context switch per access);
//   * untimed and TDfull get faster as the FIFO deepens (context switch
//     only when internally full/empty);
//   * TDfull is about twice as slow as untimed (the cost of timing);
//   * TDfull vs TDless: slower at depth 1, faster from depth 2, about 2x
//     at depth 4, saturating at a several-x gain for large depths.
//
// Usage: bench_fig5_fifo_depth [--blocks N] [--words N] [--depths a,b,c]
//                               [--json]
//
// --json additionally writes BENCH_fig5_fifo_depth.json with one row per
// (depth, model), including the per-cause synchronization counts from
// KernelStats (fifo_full / fifo_empty vs. the rest) that explain *why* the
// context-switch totals move with the depth.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "workloads/pipeline.h"

namespace {

using tdsim::Kernel;
using tdsim::KernelStats;
using tdsim::SyncCause;
using tdsim::Time;
using tdsim::workloads::ModelKind;
using tdsim::workloads::Pipeline;
using tdsim::workloads::PipelineConfig;

struct RunResult {
  double wall_seconds = 0;
  Time end_date;
  KernelStats stats;
  bool correct = false;
};

RunResult run_once(ModelKind kind, std::size_t depth, std::uint64_t blocks,
                   std::uint64_t words_per_block) {
  PipelineConfig config;
  config.kind = kind;
  config.fifo_depth = depth;
  config.blocks = blocks;
  config.words_per_block = words_per_block;

  Kernel kernel;
  Pipeline pipeline(kernel, config);
  const auto start = std::chrono::steady_clock::now();
  const Time end_date = pipeline.run_to_completion();
  const auto stop = std::chrono::steady_clock::now();

  RunResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.end_date = end_date;
  result.stats = kernel.stats();
  result.correct = pipeline.correct();
  return result;
}

const char* model_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::Untimed: return "untimed";
    case ModelKind::TDless: return "TDless";
    case ModelKind::TDfull: return "TDfull";
    case ModelKind::NaiveTD: return "naiveTD";
  }
  return "?";
}

void add_json_row(benchjson::Report& report, ModelKind kind,
                  std::size_t depth, const RunResult& r) {
  benchjson::Row& row = report.row();
  row.add("depth", static_cast<std::uint64_t>(depth))
      .add("model", std::string(model_name(kind)))
      .add("wall_seconds", r.wall_seconds)
      .add("end_date_ps", r.end_date.ps())
      .add("context_switches", r.stats.context_switches)
      .add("sync_requests", r.stats.sync_requests)
      .add("syncs_elided", r.stats.syncs_elided)
      .add("syncs_performed", r.stats.syncs_performed());
  for (std::size_t c = 0; c < tdsim::kSyncCauseCount; ++c) {
    row.add(std::string("syncs_") + to_string(static_cast<SyncCause>(c)),
            r.stats.syncs_by_cause[c]);
  }
}

std::vector<std::size_t> parse_depths(const char* arg) {
  std::vector<std::size_t> depths;
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    depths.push_back(
        static_cast<std::size_t>(std::strtoull(s.substr(pos, comma - pos).c_str(),
                                               nullptr, 10)));
    pos = comma + 1;
  }
  return depths;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t blocks = 1000;
  std::uint64_t words_per_block = 1000;
  std::vector<std::size_t> depths = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
                                     1024};
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--blocks") == 0 && i + 1 < argc) {
      blocks = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words_per_block = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--depths") == 0 && i + 1 < argc) {
      depths = parse_depths(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--blocks N] [--words N] [--depths a,b,c]"
                   " [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  benchjson::Report report("fig5_fifo_depth");

  std::printf("Fig. 5 reproduction: execution duration vs FIFO depth\n");
  std::printf("workload: %llu blocks x %llu words, varying rates\n\n",
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(words_per_block));
  std::printf(
      "%7s | %12s %12s %12s | %11s %11s %9s %9s | %9s %9s | %s\n", "depth",
      "untimed[s]", "TDless[s]", "TDfull[s]", "sw(TDless)", "sw(TDfull)",
      "sy(full)", "sy(empty)", "TDl/TDf", "TDf/unt", "dates");

  bool all_ok = true;
  for (std::size_t depth : depths) {
    const RunResult untimed =
        run_once(ModelKind::Untimed, depth, blocks, words_per_block);
    const RunResult tdless =
        run_once(ModelKind::TDless, depth, blocks, words_per_block);
    const RunResult tdfull =
        run_once(ModelKind::TDfull, depth, blocks, words_per_block);

    const bool dates_equal = tdless.end_date == tdfull.end_date;
    const bool ok = untimed.correct && tdless.correct && tdfull.correct &&
                    dates_equal;
    all_ok = all_ok && ok;

    // The per-cause decomposition of the Smart FIFO's switches: as the
    // FIFO deepens, the fifo_full / fifo_empty synchronizations (the only
    // ones this workload performs under TDfull) collapse.
    std::printf(
        "%7zu | %12.3f %12.3f %12.3f | %11llu %11llu %9llu %9llu | %9.2f "
        "%9.2f | %s\n",
        depth, untimed.wall_seconds, tdless.wall_seconds, tdfull.wall_seconds,
        static_cast<unsigned long long>(tdless.stats.context_switches),
        static_cast<unsigned long long>(tdfull.stats.context_switches),
        static_cast<unsigned long long>(tdfull.stats.syncs(SyncCause::FifoFull)),
        static_cast<unsigned long long>(
            tdfull.stats.syncs(SyncCause::FifoEmpty)),
        tdless.wall_seconds / tdfull.wall_seconds,
        tdfull.wall_seconds / untimed.wall_seconds,
        ok ? (dates_equal ? "equal" : "-") : "MISMATCH");

    if (emit_json) {
      add_json_row(report, ModelKind::Untimed, depth, untimed);
      add_json_row(report, ModelKind::TDless, depth, tdless);
      add_json_row(report, ModelKind::TDfull, depth, tdfull);
    }
  }

  if (emit_json && !report.write()) {
    return 1;
  }

  if (!all_ok) {
    std::fprintf(stderr,
                 "ERROR: checksum or TDless/TDfull date mismatch detected\n");
    return 1;
  }
  return 0;
}
