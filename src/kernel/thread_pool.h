// A minimal fixed-size worker-thread pool for the kernel's parallel
// evaluation rounds (see README "Parallel execution").
//
// The kernel submits one task per runnable concurrency group and then
// blocks on help_until_idle() -- the synchronization horizon. The pool
// queue is a single shared deque all workers pull from, and the waiting
// thread *steals* queued tasks and runs them itself instead of sleeping
// at the barrier, so uneven groups (a free-running lookahead extension
// next to a one-wave group, say) never leave a core idle while work is
// queued. Determinism still comes from the kernel's group scheduling, not
// from here: which thread runs a task is timing-dependent, but the tasks
// only touch group-exclusive state and their side effects are merged in
// deterministic group order by the kernel. Tasks must not throw (the
// kernel routes simulation errors through GroupTask::exception).
//
// Tasks are a raw (function pointer, argument) pair rather than a
// std::function: the kernel submits every runnable group on every
// evaluation round, and a bare pair can never allocate or indirect through
// a type-erased callable on that path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tdsim {

class ThreadPool {
 public:
  /// A pool task: `fn(arg)`.
  using TaskFn = void (*)(void*);

  /// Spawns `threads` workers (0 is legal: submit() then runs inline).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues `fn(arg)` for execution on some worker.
  void submit(TaskFn fn, void* arg);

  /// Blocks until every submitted task has finished (the barrier the
  /// kernel's synchronization horizons are made of) -- but while tasks are
  /// still queued, pulls them off the shared deque and runs them on the
  /// calling thread instead of sleeping. Returns the number of tasks the
  /// caller stole this way.
  std::uint64_t help_until_idle();

  /// Plain barrier without helping (kept for draining from contexts that
  /// must not run tasks).
  void wait_idle();

 private:
  void worker_main();

  std::vector<std::thread> threads_;
  std::deque<std::pair<TaskFn, void*>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t busy_ = 0;
  bool shutdown_ = false;
};

}  // namespace tdsim
