// Parallel per-domain execution (Kernel::set_workers): sequential-vs-
// parallel bit-exactness (dates, delta counts, per-cause sync counts) on
// single- and multi-group models, concurrency-group formation (explicit
// set_concurrent/link_domains and channel-discovered links, including
// links first discovered mid-run), cross-domain Smart-FIFO traffic under
// 1/2/4 workers, repeated run() reentry, stop() semantics, mid-run stats
// probes, the TDSIM_WORKERS environment default, and a randomized
// domain-membership stress (fixed seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"
#include "soc/soc_platform.h"

namespace tdsim {
namespace {

/// Everything the parallel scheduler must reproduce bit-exactly, plus the
/// date trace a workload collects.
struct Observed {
  Time end;
  std::uint64_t delta_cycles = 0;
  std::uint64_t timed_waves = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t event_triggers = 0;
  std::uint64_t sync_requests = 0;
  std::uint64_t syncs_elided = 0;
  std::array<std::uint64_t, kSyncCauseCount> syncs_by_cause{};
  std::vector<DomainStats> domains;
  std::vector<Time> dates;

  void capture(const Kernel& kernel) {
    const KernelStats& stats = kernel.stats();
    end = kernel.now();
    delta_cycles = stats.delta_cycles;
    timed_waves = stats.timed_waves;
    context_switches = stats.context_switches;
    event_triggers = stats.event_triggers;
    sync_requests = stats.sync_requests;
    syncs_elided = stats.syncs_elided;
    syncs_by_cause = stats.syncs_by_cause;
    domains = stats.domains;
  }
};

void expect_observed_equal(const Observed& a, const Observed& b,
                           const std::string& what) {
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.delta_cycles, b.delta_cycles) << what;
  EXPECT_EQ(a.timed_waves, b.timed_waves) << what;
  EXPECT_EQ(a.context_switches, b.context_switches) << what;
  EXPECT_EQ(a.event_triggers, b.event_triggers) << what;
  EXPECT_EQ(a.sync_requests, b.sync_requests) << what;
  EXPECT_EQ(a.syncs_elided, b.syncs_elided) << what;
  EXPECT_EQ(a.syncs_by_cause, b.syncs_by_cause) << what;
  EXPECT_EQ(a.dates, b.dates) << what;
  ASSERT_EQ(a.domains.size(), b.domains.size()) << what;
  for (std::size_t d = 0; d < a.domains.size(); ++d) {
    EXPECT_EQ(a.domains[d].sync_requests, b.domains[d].sync_requests)
        << what << " domain " << d;
    EXPECT_EQ(a.domains[d].syncs_by_cause, b.domains[d].syncs_by_cause)
        << what << " domain " << d;
  }
}

// ---------------------------------------------------------------------------
// Single-group workloads: parallel mode must be bit-exact even when there is
// nothing to parallelize (the buffered scheduling path itself is the DUT).
// ---------------------------------------------------------------------------

Observed run_mixed_workload(std::size_t workers) {
  Kernel k;
  k.set_workers(workers);
  k.set_global_quantum(50_ns);
  Observed out;
  Event ping(k, "ping");
  Event pong(k, "pong");
  SmartFifo<int> fifo(k, "f", 4);
  k.spawn_thread("producer", [&] {
    for (int i = 0; i < 30; ++i) {
      k.current_domain().inc((i % 4 + 1) * 7_ns);
      fifo.write(i);
      ping.notify_delta();
    }
  });
  k.spawn_thread("consumer", [&] {
    int sum = 0;
    for (int i = 0; i < 30; ++i) {
      sum += fifo.read();
      k.current_domain().inc_and_sync_if_needed(11_ns);
      out.dates.push_back(k.current_domain().local_time_stamp());
    }
    out.dates.push_back(Time(static_cast<std::uint64_t>(sum), TimeUnit::PS));
  });
  k.spawn_method("ponger", [&] { pong.notify(3_ns); },
                 MethodOptions{{&ping}, false, nullptr});
  k.spawn_thread("waiter", [&] {
    for (int i = 0; i < 10; ++i) {
      if (k.wait(pong, 40_ns)) {
        out.dates.push_back(k.now());
      }
      k.wait(5_ns);
    }
  });
  k.run();
  out.capture(k);
  return out;
}

TEST(Parallel, SingleGroupMixedWorkloadBitExact) {
  const Observed sequential = run_mixed_workload(0);
  for (std::size_t workers : {1u, 2u, 4u}) {
    const Observed parallel = run_mixed_workload(workers);
    expect_observed_equal(sequential, parallel,
                          "workers=" + std::to_string(workers));
  }
}

TEST(Parallel, SplitDomainSocBitExactUnderWorkers) {
  // The full case-study SoC (cpu/periph/noc domains, Smart FIFOs, NoC,
  // TLM bus): every worker count must reproduce the sequential dates and
  // sync books exactly. The three domains stay one concurrency group
  // (they are not declared concurrent), so this exercises the buffered
  // single-group path end to end.
  const auto run_soc = [](std::size_t workers) {
    Kernel kernel;
    kernel.set_workers(workers);
    soc::SocConfig config;
    config.streams = 2;
    config.words_per_stream = 512;
    config.block_words = 64;
    config.split_domains = true;
    soc::SocPlatform platform(kernel, config);
    Observed out;
    out.dates.push_back(platform.run_to_completion());
    EXPECT_TRUE(platform.all_streams_correct());
    out.capture(kernel);
    return out;
  };
  const Observed sequential = run_soc(0);
  for (std::size_t workers : {2u, 4u}) {
    const Observed parallel = run_soc(workers);
    expect_observed_equal(sequential, parallel,
                          "workers=" + std::to_string(workers));
  }
}

// ---------------------------------------------------------------------------
// Multi-group workloads: independent clusters actually run concurrently.
// ---------------------------------------------------------------------------

struct ClusterResult {
  Observed observed;
  std::uint64_t parallel_rounds = 0;
  std::uint64_t horizon_waits = 0;
  std::vector<std::size_t> groups;
};

ClusterResult run_clusters(std::size_t workers, std::size_t cluster_count) {
  Kernel k;
  k.set_workers(workers);
  struct Cluster {
    SyncDomain* producer_side;
    SyncDomain* consumer_side;
    std::unique_ptr<SmartFifo<int>> fifo;
    std::vector<Time> dates;
  };
  std::vector<Cluster> clusters(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c) {
    Cluster& cluster = clusters[c];
    const std::string suffix = std::to_string(c);
    cluster.producer_side = &k.create_domain(
        {.name = "prod" + suffix, .quantum = 40_ns, .concurrent = true});
    cluster.consumer_side = &k.create_domain(
        {.name = "cons" + suffix, .quantum = 300_ns, .concurrent = true});
    cluster.fifo = std::make_unique<SmartFifo<int>>(k, "f" + suffix, 3);
    ThreadOptions popts;
    popts.domain = cluster.producer_side;
    k.spawn_thread("producer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 50; ++i) {
        k.current_domain().inc((i % 5 + 1 + static_cast<int>(c)) * 3_ns);
        cluster.fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = cluster.consumer_side;
    k.spawn_thread("consumer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 50; ++i) {
        const int v = cluster.fifo->read();
        k.current_domain().inc((i % 3 + 1 + static_cast<int>(c)) * 4_ns);
        cluster.dates.push_back(k.current_domain().local_time_stamp());
        if (v != i) {
          cluster.dates.push_back(Time::max());  // corruption marker
        }
      }
    }, copts);
  }
  k.run();
  ClusterResult result;
  result.observed.capture(k);
  for (Cluster& cluster : clusters) {
    result.observed.dates.insert(result.observed.dates.end(),
                                 cluster.dates.begin(), cluster.dates.end());
    result.groups.push_back(k.domain_group(*cluster.producer_side));
    // The stream FIFO linked the cluster's two domains into one group.
    EXPECT_EQ(k.domain_group(*cluster.producer_side),
              k.domain_group(*cluster.consumer_side));
  }
  result.parallel_rounds = k.stats().parallel_rounds;
  result.horizon_waits = k.stats().horizon_waits;
  return result;
}

TEST(Parallel, IndependentClustersBitExactAndConcurrent) {
  const ClusterResult sequential = run_clusters(0, 3);
  EXPECT_EQ(sequential.parallel_rounds, 0u);
  for (std::size_t workers : {1u, 2u, 4u}) {
    const ClusterResult parallel = run_clusters(workers, 3);
    expect_observed_equal(sequential.observed, parallel.observed,
                          "workers=" + std::to_string(workers));
    if (workers >= 2) {
      // Three independent groups were runnable together at time zero...
      EXPECT_GT(parallel.parallel_rounds, 0u);
      // ...so at least one horizon had to await a concurrent group.
      EXPECT_GT(parallel.horizon_waits, 0u);
    }
  }
  // Clusters are pairwise independent: distinct concurrency groups.
  const ClusterResult grouped = run_clusters(2, 3);
  EXPECT_NE(grouped.groups[0], grouped.groups[1]);
  EXPECT_NE(grouped.groups[1], grouped.groups[2]);
}

TEST(Parallel, ChannelLinksDiscoveredMidRunSerializeFromThenOn) {
  // Two concurrent domains whose only coupling is a FIFO neither side
  // touches until well after time zero: the link forms mid-run (producer
  // first at 600 ns, consumer at 900 ns) and merges the groups from that
  // phase on. Dates must match the sequential schedule exactly.
  const auto run = [](std::size_t workers) {
    Kernel k;
    k.set_workers(workers);
    SyncDomain& a = k.create_domain(
        {.name = "late_a", .quantum = 50_ns, .concurrent = true});
    SyncDomain& b = k.create_domain(
        {.name = "late_b", .quantum = 50_ns, .concurrent = true});
    SmartFifo<int> fifo(k, "late_fifo", 2);
    Observed out;
    ThreadOptions aopts;
    aopts.domain = &a;
    k.spawn_thread("late_producer", [&] {
      k.wait(600_ns);
      for (int i = 0; i < 10; ++i) {
        k.current_domain().inc(5_ns);
        fifo.write(i);
      }
    }, aopts);
    ThreadOptions bopts;
    bopts.domain = &b;
    k.spawn_thread("late_consumer", [&] {
      k.wait(900_ns);
      for (int i = 0; i < 10; ++i) {
        if (fifo.read() != i) {
          out.dates.push_back(Time::max());
        }
        k.current_domain().inc(7_ns);
        out.dates.push_back(k.current_domain().local_time_stamp());
      }
    }, bopts);
    k.run();
    out.capture(k);
    EXPECT_EQ(k.domain_group(a), k.domain_group(b));
    return out;
  };
  const Observed sequential = run(0);
  const Observed parallel = run(2);
  expect_observed_equal(sequential, parallel, "late link");
}

TEST(Parallel, RepeatedRunReentryMatchesSequential) {
  const auto run_sliced = [](std::size_t workers,
                             const std::vector<Time>& slices) {
    Kernel k;
    k.set_workers(workers);
    SyncDomain& a = k.create_domain(
        {.name = "ra", .quantum = 30_ns, .concurrent = true});
    SyncDomain& b = k.create_domain(
        {.name = "rb", .quantum = 90_ns, .concurrent = true});
    Observed out;
    for (auto [domain, label] : {std::pair<SyncDomain*, const char*>{&a, "a"},
                                 {&b, "b"}}) {
      ThreadOptions opts;
      opts.domain = domain;
      k.spawn_thread(std::string("worker_") + label, [&k, &out] {
        for (int i = 0; i < 200; ++i) {
          k.current_domain().inc_and_sync_if_needed(8_ns);
        }
        out.dates.push_back(k.current_domain().local_time_stamp());
      }, opts);
    }
    for (Time slice : slices) {
      k.run(slice);
      out.dates.push_back(k.now());
    }
    k.run();
    out.capture(k);
    return out;
  };
  const std::vector<Time> slices = {300_ns, 700_ns, 1200_ns};
  const Observed sequential = run_sliced(0, slices);
  const Observed parallel = run_sliced(3, slices);
  expect_observed_equal(sequential, parallel, "sliced run()");
}

TEST(Parallel, StopFromProcessMatchesSequential) {
  const auto run = [](std::size_t workers) {
    Kernel k;
    k.set_workers(workers);
    Observed out;
    k.spawn_thread("ticker", [&] {
      for (int i = 0; i < 100; ++i) {
        k.wait(10_ns);
        out.dates.push_back(k.now());
      }
    });
    k.spawn_thread("stopper", [&] {
      k.wait(155_ns);
      k.stop();
    });
    k.run();
    out.capture(k);
    // run() resumes after a stop; the ticker finishes its 100 ticks.
    k.run();
    out.dates.push_back(k.now());
    return out;
  };
  const Observed sequential = run(0);
  const Observed parallel = run(2);
  expect_observed_equal(sequential, parallel, "stop()");
}

TEST(Parallel, MidRunProbesAreSafeAndHorizonConsistent) {
  // A probe in its own concurrency group reads the kernel-wide stats and
  // the other domains' fronts mid-run while those domains execute on
  // other workers: reads must be safe (TSan-checked in CI) and reflect at
  // least the last synchronization horizon.
  Kernel k;
  k.set_workers(4);
  SyncDomain& probe_domain =
      k.create_domain(DomainOptions{.name = "probe", .concurrent = true});
  SyncDomain& busy_a = k.create_domain(
      {.name = "busy_a", .quantum = 50_ns, .concurrent = true});
  SyncDomain& busy_b = k.create_domain(
      {.name = "busy_b", .quantum = 50_ns, .concurrent = true});
  for (auto [domain, label] :
       {std::pair<SyncDomain*, const char*>{&busy_a, "a"}, {&busy_b, "b"}}) {
    ThreadOptions opts;
    opts.domain = domain;
    k.spawn_thread(std::string("busy_") + label, [&k] {
      for (int i = 0; i < 500; ++i) {
        k.current_domain().inc_and_sync_if_needed(10_ns);
      }
    }, opts);
  }
  std::vector<std::uint64_t> probed_requests;
  std::vector<bool> lagging_seen;
  ThreadOptions popts;
  popts.domain = &probe_domain;
  k.spawn_thread("prober", [&] {
    for (int i = 0; i < 20; ++i) {
      k.wait(200_ns);
      probed_requests.push_back(k.stats().sync_requests);
      const SyncDomain* lagging = k.lagging_domain();
      lagging_seen.push_back(lagging != nullptr);
      // Foreign-domain introspection mid-run: horizon values, no races.
      (void)busy_a.execution_front();
      (void)busy_b.max_offset();
      (void)busy_a.stats().sync_requests;
    }
  }, popts);
  k.run();
  ASSERT_EQ(probed_requests.size(), 20u);
  // Monotone, and by the end the busy domains' books must be visible.
  for (std::size_t i = 1; i < probed_requests.size(); ++i) {
    EXPECT_LE(probed_requests[i - 1], probed_requests[i]);
  }
  EXPECT_EQ(k.stats().sync_requests,
            k.stats().domains[busy_a.id()].sync_requests +
                k.stats().domains[busy_b.id()].sync_requests);
}

TEST(Parallel, ExplicitLinkSerializesSharedVariableDomains) {
  // Two concurrent domains coupled through a plain variable no channel can
  // see: Kernel::link_domains restores determinism (one group, one
  // worker, schedule order).
  const auto run = [](std::size_t workers) {
    Kernel k;
    k.set_workers(workers);
    SyncDomain& a = k.create_domain(
        {.name = "shared_a", .quantum = 20_ns, .concurrent = true});
    SyncDomain& b = k.create_domain(
        {.name = "shared_b", .quantum = 20_ns, .concurrent = true});
    k.link_domains(a, b);
    EXPECT_EQ(k.domain_group(a), k.domain_group(b));
    int shared = 0;
    Observed out;
    ThreadOptions aopts;
    aopts.domain = &a;
    k.spawn_thread("writer", [&] {
      for (int i = 0; i < 50; ++i) {
        shared = i;
        k.wait(10_ns);
      }
    }, aopts);
    ThreadOptions bopts;
    bopts.domain = &b;
    k.spawn_thread("reader", [&] {
      for (int i = 0; i < 50; ++i) {
        k.wait(10_ns);
        out.dates.push_back(Time(static_cast<std::uint64_t>(shared) + 1,
                                 TimeUnit::PS));
      }
    }, bopts);
    k.run();
    out.capture(k);
    return out;
  };
  const Observed sequential = run(0);
  const Observed parallel = run(4);
  expect_observed_equal(sequential, parallel, "link_domains");
}

TEST(Parallel, EnvVarSeedsWorkerDefault) {
  const char* saved = std::getenv("TDSIM_WORKERS");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("TDSIM_WORKERS", "3", 1);
  {
    Kernel k;
    EXPECT_EQ(k.workers(), 3u);
    k.set_workers(0);  // explicit call overrides the environment default
    EXPECT_EQ(k.workers(), 0u);
  }
  if (saved != nullptr) {
    setenv("TDSIM_WORKERS", saved_value.c_str(), 1);
  } else {
    unsetenv("TDSIM_WORKERS");
  }
}

TEST(Parallel, SetWorkersRejectedInsideSimulation) {
  Kernel k;
  k.spawn_thread("t", [&] { k.set_workers(2); });
  EXPECT_THROW(k.run(), SimulationError);
}

// ---------------------------------------------------------------------------
// Randomized stress: arbitrary domain membership and FIFO topology (fixed
// seed), sequential vs 4 workers.
// ---------------------------------------------------------------------------

Observed run_randomized_stress(std::size_t workers, unsigned seed) {
  std::mt19937 rng(seed);
  constexpr std::size_t kDomains = 6;
  constexpr std::size_t kFifos = 8;
  constexpr int kWords = 60;
  Kernel k;
  k.set_workers(workers);
  std::vector<SyncDomain*> domains;
  domains.push_back(&k.sync_domain());
  for (std::size_t d = 1; d < kDomains; ++d) {
    domains.push_back(&k.create_domain({.name = "d" + std::to_string(d),
                                        .quantum = Time(d * 20, TimeUnit::NS),
                                        .concurrent = (d % 2) == 1}));
  }
  Observed out;
  struct Stream {
    std::unique_ptr<SmartFifo<int>> fifo;
    std::vector<Time> dates;
    std::uint32_t checksum = 0;
  };
  std::vector<std::unique_ptr<Stream>> streams;
  for (std::size_t f = 0; f < kFifos; ++f) {
    auto stream = std::make_unique<Stream>();
    stream->fifo = std::make_unique<SmartFifo<int>>(
        k, "sf" + std::to_string(f), 1 + rng() % 5);
    Stream* raw = stream.get();
    streams.push_back(std::move(stream));
    SyncDomain* wd = domains[rng() % kDomains];
    SyncDomain* rd = domains[rng() % kDomains];
    const int wstep = 1 + static_cast<int>(rng() % 7);
    const int rstep = 1 + static_cast<int>(rng() % 7);
    ThreadOptions wopts;
    wopts.domain = wd;
    k.spawn_thread("w" + std::to_string(f), [&k, raw, wstep] {
      for (int i = 0; i < kWords; ++i) {
        k.current_domain().inc(Time(static_cast<std::uint64_t>(
            (i % wstep + 1) * 3), TimeUnit::NS));
        raw->fifo->write(i);
      }
    }, wopts);
    ThreadOptions ropts;
    ropts.domain = rd;
    k.spawn_thread("r" + std::to_string(f), [&k, raw, rstep] {
      for (int i = 0; i < kWords; ++i) {
        raw->checksum =
            raw->checksum * 31 + static_cast<std::uint32_t>(raw->fifo->read());
        k.current_domain().inc_and_sync_if_needed(Time(
            static_cast<std::uint64_t>((i % rstep + 1) * 4), TimeUnit::NS));
        raw->dates.push_back(k.current_domain().local_time_stamp());
      }
    }, ropts);
  }
  // Pure compute/wait loops sprinkled across domains.
  for (std::size_t p = 0; p < kDomains; ++p) {
    ThreadOptions opts;
    opts.domain = domains[rng() % kDomains];
    const std::uint64_t wait_ns = 5 + rng() % 40;
    k.spawn_thread("loop" + std::to_string(p), [&k, wait_ns] {
      for (int i = 0; i < 150; ++i) {
        k.current_domain().inc_and_sync_if_needed(9_ns);
        k.wait(Time(wait_ns, TimeUnit::NS));
      }
    }, opts);
  }
  k.run();
  out.capture(k);
  for (const auto& stream : streams) {
    out.dates.insert(out.dates.end(), stream->dates.begin(),
                     stream->dates.end());
    out.dates.push_back(Time(stream->checksum, TimeUnit::PS));
  }
  return out;
}

TEST(Parallel, RandomizedDomainMembershipStressBitExact) {
  for (unsigned seed : {7u, 1234u}) {
    const Observed sequential = run_randomized_stress(0, seed);
    const Observed parallel = run_randomized_stress(4, seed);
    expect_observed_equal(sequential, parallel,
                          "seed=" + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Randomized *independent* clusters: same stress philosophy, but every
// FIFO stays internal to its cluster so multiple concurrency groups
// survive discovery and the conservative-lookahead extensions actually
// free-run (asserted via stats().lookahead_advances). Quanta, depths,
// declared cell latencies and step increments are all seed-randomized;
// bit-exactness against workers=0 is the contract.
// ---------------------------------------------------------------------------

Observed run_randomized_cluster_stress(std::size_t workers, unsigned seed,
                                       std::uint64_t* lookahead_advances) {
  std::mt19937 rng(seed);
  constexpr std::size_t kClusters = 4;
  constexpr int kWords = 50;
  Kernel k;
  k.set_workers(workers);
  Observed out;
  struct Stream {
    std::unique_ptr<SmartFifo<int>> fifo;
    std::vector<Time> dates;
    std::uint32_t checksum = 0;
  };
  std::vector<std::unique_ptr<Stream>> streams;
  for (std::size_t c = 0; c < kClusters; ++c) {
    const std::string suffix = std::to_string(c);
    SyncDomain& wd = k.create_domain(
        {.name = "rcw" + suffix,
         .quantum = Time((rng() % 5 + 1) * 20, TimeUnit::NS),
         .concurrent = true});
    SyncDomain& rd = k.create_domain(
        {.name = "rcr" + suffix,
         .quantum = Time((rng() % 5 + 1) * 60, TimeUnit::NS),
         .concurrent = true});
    auto stream = std::make_unique<Stream>();
    stream->fifo = std::make_unique<SmartFifo<int>>(k, "rcf" + suffix,
                                                    1 + rng() % 5);
    stream->fifo->declare_cell_latency(Time(5 + rng() % 30, TimeUnit::NS));
    Stream* raw = stream.get();
    streams.push_back(std::move(stream));
    const int wstep = 1 + static_cast<int>(rng() % 7);
    const int rstep = 1 + static_cast<int>(rng() % 7);
    ThreadOptions wopts;
    wopts.domain = &wd;
    k.spawn_thread("rcw" + suffix, [&k, raw, wstep] {
      for (int i = 0; i < kWords; ++i) {
        k.current_domain().inc(Time(static_cast<std::uint64_t>(
            (i % wstep + 1) * 3), TimeUnit::NS));
        raw->fifo->write(i);
      }
    }, wopts);
    ThreadOptions ropts;
    ropts.domain = &rd;
    k.spawn_thread("rcr" + suffix, [&k, raw, rstep] {
      for (int i = 0; i < kWords; ++i) {
        raw->checksum =
            raw->checksum * 31 + static_cast<std::uint32_t>(raw->fifo->read());
        k.current_domain().inc_and_sync_if_needed(Time(
            static_cast<std::uint64_t>((i % rstep + 1) * 4), TimeUnit::NS));
        raw->dates.push_back(k.current_domain().local_time_stamp());
      }
    }, ropts);
  }
  k.run();
  out.capture(k);
  for (const auto& stream : streams) {
    out.dates.insert(out.dates.end(), stream->dates.begin(),
                     stream->dates.end());
    out.dates.push_back(Time(stream->checksum, TimeUnit::PS));
  }
  if (lookahead_advances != nullptr) {
    *lookahead_advances = k.stats().lookahead_advances;
  }
  return out;
}

TEST(Parallel, RandomizedIndependentClustersFreeRunBitExact) {
  for (unsigned seed : {11u, 4321u}) {
    std::uint64_t la_sequential = 0;
    std::uint64_t la_parallel = 0;
    const Observed sequential =
        run_randomized_cluster_stress(0, seed, &la_sequential);
    const Observed parallel =
        run_randomized_cluster_stress(4, seed, &la_parallel);
    expect_observed_equal(sequential, parallel,
                          "seed=" + std::to_string(seed));
    EXPECT_EQ(la_sequential, 0u) << "seed=" << seed;
    EXPECT_GT(la_parallel, 0u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace tdsim
