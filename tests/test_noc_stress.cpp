// NoC stress properties on random traffic: all-to-random streams across a
// mesh through packetizing network interfaces.
//
// Properties, per (mesh geometry, packet size, seed):
//   * exactly-once delivery of every word to the right sink;
//   * per-stream word order preserved end to end;
//   * completion without deadlock under link backpressure (XY routing on
//     a mesh with per-output in-flight stages is deadlock-free);
//   * router forwarding conservation: every packet injected is eventually
//     forwarded to exactly one local output.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <tuple>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/module.h"
#include "noc/mesh.h"
#include "noc/network_interface.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;
namespace noc = tdsim::noc;

struct StreamCheck {
  std::uint64_t received = 0;
  bool in_order = true;
};

class NocStress : public ::testing::TestWithParam<
                      std::tuple<std::uint16_t, std::uint16_t, std::size_t,
                                 unsigned>> {};

TEST_P(NocStress, RandomTrafficDeliversExactlyOnceInOrder) {
  const auto [columns, rows, packet_words, seed] = GetParam();
  constexpr std::uint64_t kWordsPerStream = 512;
  constexpr std::size_t kFifoDepth = 8;

  Kernel kernel;
  Module top(kernel, "stress");

  noc::Mesh::Config mesh_config;
  mesh_config.columns = columns;
  mesh_config.rows = rows;
  mesh_config.link_depth = 2;
  noc::Mesh mesh(kernel, "stress.noc", mesh_config);
  const auto nodes = static_cast<noc::NodeId>(mesh.node_count());

  std::vector<std::unique_ptr<noc::SmartNetworkInterface>> nis;
  for (noc::NodeId n = 0; n < nodes; ++n) {
    nis.push_back(std::make_unique<noc::SmartNetworkInterface>(
        top, "ni" + std::to_string(n), n, mesh.local_in(n),
        mesh.local_out(n)));
  }

  // One stream per node, to a seeded-random destination (self allowed:
  // local delivery must work too).
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  std::vector<std::unique_ptr<SmartFifo<std::uint32_t>>> fifos;
  std::vector<StreamCheck> checks(nodes);

  for (noc::NodeId src = 0; src < nodes; ++src) {
    const auto dst = static_cast<noc::NodeId>(pick(rng));
    fifos.push_back(std::make_unique<SmartFifo<std::uint32_t>>(
        kernel, "tx" + std::to_string(src), kFifoDepth));
    auto& to_ni = *fifos.back();
    fifos.push_back(std::make_unique<SmartFifo<std::uint32_t>>(
        kernel, "rx" + std::to_string(src), kFifoDepth));
    auto& from_ni = *fifos.back();

    noc::RxChannelConfig rx;
    rx.fifo = &from_ni;
    rx.per_word = 1_ns;
    const noc::ChannelId channel = nis[dst]->add_rx_channel(rx);

    noc::TxChannelConfig tx;
    tx.fifo = &to_ni;
    tx.dest = dst;
    tx.dest_channel = channel;
    tx.packet_words = packet_words;
    tx.per_word = 1_ns;
    nis[src]->add_tx_channel(tx);

    kernel.spawn_thread("producer" + std::to_string(src), [&kernel, &to_ni, src,
                                                           seed] {
      std::mt19937 gaps(seed * 7919 + src);
      std::uniform_int_distribution<std::uint64_t> gap(0, 6);
      for (std::uint64_t i = 0; i < kWordsPerStream; ++i) {
        kernel.sync_domain().inc(Time(gap(gaps), TimeUnit::NS));
        to_ni.write(static_cast<std::uint32_t>(src) << 16 |
                    static_cast<std::uint32_t>(i));
      }
    });
    kernel.spawn_thread("sink" + std::to_string(src), [&kernel, &from_ni,
                                                       &checks, src, seed] {
      std::mt19937 gaps(seed * 104729 + src);
      std::uniform_int_distribution<std::uint64_t> gap(0, 6);
      StreamCheck& check = checks[src];
      for (std::uint64_t i = 0; i < kWordsPerStream; ++i) {
        const std::uint32_t word = from_ni.read();
        kernel.sync_domain().inc(Time(gap(gaps), TimeUnit::NS));
        // The rx channel belongs to stream `src` (one tx per src), so the
        // producer tag must match and sequence numbers must ascend.
        if ((word >> 16) != src || (word & 0xFFFF) != i) {
          check.in_order = false;
        }
        check.received++;
      }
    });
  }

  for (auto& ni : nis) {
    ni->elaborate();
  }

  kernel.run(Time(1, TimeUnit::S));  // bound: a deadlock would stall below

  std::uint64_t total_packets_sent = 0;
  for (noc::NodeId n = 0; n < nodes; ++n) {
    EXPECT_EQ(checks[n].received, kWordsPerStream) << "stream " << n;
    EXPECT_TRUE(checks[n].in_order) << "stream " << n;
    total_packets_sent += nis[n]->packets_sent();
    EXPECT_EQ(nis[n]->words_sent(), kWordsPerStream);
  }
  EXPECT_EQ(total_packets_sent,
            static_cast<std::uint64_t>(nodes) * kWordsPerStream /
                packet_words);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NocStress,
    ::testing::Combine(::testing::Values<std::uint16_t>(2, 3, 4),  // columns
                       ::testing::Values<std::uint16_t>(1, 3),     // rows
                       ::testing::Values<std::size_t>(4, 16),      // packet
                       ::testing::Values(3u, 17u)));               // seed

TEST(NocStress, RxLatencyScalesWithHopCount) {
  // Same traffic shape over 1 hop vs 3 hops on a 4x1 mesh: the receiving
  // NI's measured latency must grow with the path length, and min <= mean
  // <= max must hold.
  const auto run_path = [](noc::NodeId src, noc::NodeId dst) {
    Kernel kernel;
    Module top(kernel, "lat");
    noc::Mesh::Config mesh_config;
    mesh_config.columns = 4;
    mesh_config.rows = 1;
    noc::Mesh mesh(kernel, "lat.noc", mesh_config);
    std::vector<std::unique_ptr<noc::SmartNetworkInterface>> nis;
    for (noc::NodeId n = 0; n < 4; ++n) {
      nis.push_back(std::make_unique<noc::SmartNetworkInterface>(
          top, "ni" + std::to_string(n), n, mesh.local_in(n),
          mesh.local_out(n)));
    }
    SmartFifo<std::uint32_t> to_ni(kernel, "tx", 8);
    SmartFifo<std::uint32_t> from_ni(kernel, "rx", 8);
    noc::RxChannelConfig rx;
    rx.fifo = &from_ni;
    const noc::ChannelId channel = nis[dst]->add_rx_channel(rx);
    noc::TxChannelConfig tx;
    tx.fifo = &to_ni;
    tx.dest = dst;
    tx.dest_channel = channel;
    tx.packet_words = 8;
    nis[src]->add_tx_channel(tx);
    kernel.spawn_thread("producer", [&] {
      for (std::uint32_t i = 0; i < 64; ++i) {
        kernel.sync_domain().inc(4_ns);
        to_ni.write(i);
      }
    });
    kernel.spawn_thread("sink", [&] {
      for (std::uint32_t i = 0; i < 64; ++i) {
        (void)from_ni.read();
        kernel.sync_domain().inc(4_ns);
      }
    });
    for (auto& ni : nis) {
      ni->elaborate();
    }
    kernel.run();
    return nis[dst]->rx_latency();
  };

  const auto one_hop = run_path(0, 1);
  const auto three_hops = run_path(0, 3);
  EXPECT_EQ(one_hop.packets, 8u);
  EXPECT_EQ(three_hops.packets, 8u);
  EXPECT_GT(three_hops.mean(), one_hop.mean());
  EXPECT_LE(one_hop.min, one_hop.mean());
  EXPECT_LE(one_hop.mean(), one_hop.max);
}

TEST(NocStress, HotspotDestination) {
  // All nodes stream to node 0: maximal contention on one ejection port;
  // everything must still arrive exactly once.
  constexpr std::uint64_t kWords = 256;
  Kernel kernel;
  Module top(kernel, "hotspot");
  noc::Mesh::Config mesh_config;
  mesh_config.columns = 3;
  mesh_config.rows = 3;
  noc::Mesh mesh(kernel, "hotspot.noc", mesh_config);

  std::vector<std::unique_ptr<noc::SmartNetworkInterface>> nis;
  for (noc::NodeId n = 0; n < 9; ++n) {
    nis.push_back(std::make_unique<noc::SmartNetworkInterface>(
        top, "ni" + std::to_string(n), n, mesh.local_in(n),
        mesh.local_out(n)));
  }
  std::vector<std::unique_ptr<SmartFifo<std::uint32_t>>> fifos;
  std::vector<std::uint64_t> received(9, 0);

  for (noc::NodeId src = 1; src < 9; ++src) {
    fifos.push_back(std::make_unique<SmartFifo<std::uint32_t>>(
        kernel, "tx" + std::to_string(src), 8));
    auto& to_ni = *fifos.back();
    fifos.push_back(std::make_unique<SmartFifo<std::uint32_t>>(
        kernel, "rx" + std::to_string(src), 8));
    auto& from_ni = *fifos.back();

    noc::RxChannelConfig rx;
    rx.fifo = &from_ni;
    const noc::ChannelId channel = nis[0]->add_rx_channel(rx);
    noc::TxChannelConfig tx;
    tx.fifo = &to_ni;
    tx.dest = 0;
    tx.dest_channel = channel;
    tx.packet_words = 8;
    nis[src]->add_tx_channel(tx);

    kernel.spawn_thread("producer" + std::to_string(src), [&kernel, &to_ni, src] {
      for (std::uint64_t i = 0; i < kWords; ++i) {
        kernel.sync_domain().inc(1_ns);
        to_ni.write(static_cast<std::uint32_t>(src << 16 | i));
      }
    });
    kernel.spawn_thread("sink" + std::to_string(src),
                        [&from_ni, &received, src] {
                          for (std::uint64_t i = 0; i < kWords; ++i) {
                            (void)from_ni.read();
                            received[src]++;
                          }
                        });
  }
  for (auto& ni : nis) {
    ni->elaborate();
  }
  kernel.run(Time(1, TimeUnit::S));
  for (noc::NodeId src = 1; src < 9; ++src) {
    EXPECT_EQ(received[src], kWords) << "stream from node " << src;
  }
}

}  // namespace
}  // namespace tdsim
