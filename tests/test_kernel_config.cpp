// KernelConfig::from_env strict parsing (PR 10 bugfix): trailing garbage,
// out-of-range and negative values of the numeric TDSIM_* variables are
// rejected with a Report warning naming the variable and fall back to the
// next precedence layer, instead of being silently dropped (garbage) or
// silently clamped to ULLONG_MAX (overflow) as strtoull would.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/kernel_config.h"
#include "kernel/report.h"

namespace tdsim {
namespace {

/// Sets one environment variable for the test body and restores the
/// previous value (or unsets) on destruction.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      saved_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

/// Captures warnings emitted through Report while alive.
class WarningCapture {
 public:
  WarningCapture() {
    previous_ = Report::set_handler(
        [this](Severity severity, const std::string& message) {
          if (severity == Severity::Warning) {
            warnings_.push_back(message);
          }
        });
  }
  ~WarningCapture() { Report::set_handler(previous_); }

  const std::vector<std::string>& warnings() const { return warnings_; }
  bool any_mentions(const std::string& needle) const {
    for (const std::string& w : warnings_) {
      if (w.find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

 private:
  Report::Handler previous_;
  std::vector<std::string> warnings_;
};

TEST(KernelConfigEnv, AcceptsPlainNumber) {
  EnvGuard env("TDSIM_WORKERS", "3");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  ASSERT_TRUE(config.workers.has_value());
  EXPECT_EQ(*config.workers, 3u);
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(KernelConfigEnv, RejectsTrailingGarbageWithWarning) {
  EnvGuard env("TDSIM_WORKERS", "4x");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  EXPECT_FALSE(config.workers.has_value());
  ASSERT_EQ(capture.warnings().size(), 1u);
  // The warning must name the offending variable and value.
  EXPECT_TRUE(capture.any_mentions("TDSIM_WORKERS"));
  EXPECT_TRUE(capture.any_mentions("4x"));
}

TEST(KernelConfigEnv, RejectsOverflowWithWarning) {
  // ULLONG_MAX is 18446744073709551615; one digit more overflows. The
  // pre-fix parser let strtoull clamp this to ULLONG_MAX silently.
  EnvGuard env("TDSIM_WORKERS", "184467440737095516150");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  EXPECT_FALSE(config.workers.has_value());
  ASSERT_EQ(capture.warnings().size(), 1u);
  EXPECT_TRUE(capture.any_mentions("TDSIM_WORKERS"));
  EXPECT_TRUE(capture.any_mentions("out of range"));
}

TEST(KernelConfigEnv, RejectsNegativeWithWarning) {
  // strtoull parses "-2" by wrapping it to 18446744073709551614 -- a
  // nonsense worker count the old parser accepted.
  EnvGuard env("TDSIM_WORKERS", "-2");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  EXPECT_FALSE(config.workers.has_value());
  ASSERT_EQ(capture.warnings().size(), 1u);
  EXPECT_TRUE(capture.any_mentions("TDSIM_WORKERS"));
}

TEST(KernelConfigEnv, EmptyStringIsSilentlyUnset) {
  EnvGuard env("TDSIM_WORKERS", "");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  EXPECT_FALSE(config.workers.has_value());
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(KernelConfigEnv, RejectedWorkersFallBackToDefaultInKernel) {
  EnvGuard env("TDSIM_WORKERS", "4x");
  WarningCapture capture;
  Kernel kernel;
  EXPECT_EQ(kernel.workers(), 0u);  // built-in default, not garbage
  EXPECT_TRUE(capture.any_mentions("TDSIM_WORKERS"));
}

TEST(KernelConfigEnv, ExplicitConfigBeatsRejectedEnv) {
  EnvGuard env("TDSIM_WORKERS", "4x");
  WarningCapture capture;
  Kernel kernel(KernelConfig{.workers = 2});
  EXPECT_EQ(kernel.workers(), 2u);
}

TEST(KernelConfigEnv, QuantumTraceZeroWarnsAndFallsBack) {
  EnvGuard env("TDSIM_QUANTUM_TRACE", "0");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  EXPECT_FALSE(config.quantum_trace_depth.has_value());
  EXPECT_TRUE(capture.any_mentions("TDSIM_QUANTUM_TRACE"));
}

TEST(KernelConfigEnv, ChunkedKeepsTruthyGarbageWithoutWarning) {
  // Documented behavior: TDSIM_CHUNKED=on means "chunked, default
  // capacity" -- non-numeric is not a parse error for this knob.
  EnvGuard env("TDSIM_CHUNKED", "on");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  ASSERT_TRUE(config.default_chunk_capacity.has_value());
  EXPECT_EQ(*config.default_chunk_capacity, 16u);
  EXPECT_TRUE(capture.warnings().empty());
}

TEST(KernelConfigEnv, ChunkedOverflowWarnsAndUsesDefaultCapacity) {
  EnvGuard env("TDSIM_CHUNKED", "184467440737095516150");
  WarningCapture capture;
  const KernelConfig config = KernelConfig::from_env();
  ASSERT_TRUE(config.default_chunk_capacity.has_value());
  EXPECT_EQ(*config.default_chunk_capacity, 16u);
  EXPECT_TRUE(capture.any_mentions("TDSIM_CHUNKED"));
}

TEST(KernelConfigEnv, StackPoolKnobs) {
  {
    EnvGuard pool("TDSIM_STACK_POOL", "0");
    EnvGuard guard("TDSIM_STACK_GUARD", "0");
    const KernelConfig config = KernelConfig::from_env();
    ASSERT_TRUE(config.pooled_stacks.has_value());
    EXPECT_FALSE(*config.pooled_stacks);
    ASSERT_TRUE(config.stack_guard.has_value());
    EXPECT_FALSE(*config.stack_guard);
    Kernel kernel;
    EXPECT_FALSE(*kernel.config().pooled_stacks);
  }
  {
    EnvGuard pool("TDSIM_STACK_POOL", nullptr);
    EnvGuard guard("TDSIM_STACK_GUARD", nullptr);
    const KernelConfig config = KernelConfig::from_env();
    EXPECT_FALSE(config.pooled_stacks.has_value());
    EXPECT_FALSE(config.stack_guard.has_value());
    // Kernel resolution defaults both on.
    Kernel kernel;
    EXPECT_TRUE(*kernel.config().pooled_stacks);
    EXPECT_TRUE(*kernel.config().stack_guard);
  }
}

}  // namespace
}  // namespace tdsim
