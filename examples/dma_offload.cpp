// DMA offload: embedded software programs a DMA engine over the bus to
// move buffers while it keeps working, then takes the date-accurate
// completion "interrupt" -- the memory-mapped half of the case-study SoC's
// temporal decoupling (paper SIV.C: "all communications done by TLM
// transactions are temporally decoupled using existing methods").
//
// Shows the loosely-timed initiator pattern: every register/memory access
// folds its annotated latency into the software's local time; a context
// switch happens only when the global quantum is exhausted -- and the
// completion still lands on exactly the right date.
//
// Build & run:  ./examples/dma_offload
#include <cstdio>
#include <numeric>

#include "kernel/sync_domain.h"
#include "kernel/module.h"
#include "tlm/bus.h"
#include "tlm/dma.h"
#include "tlm/memory.h"

using namespace tdsim;
using namespace tdsim::time_literals;

namespace {
constexpr std::uint64_t kMemBase = 0x2000'0000;
constexpr std::uint64_t kDmaBase = 0x1000'0000;
constexpr std::uint32_t kBlock = 4096;
}  // namespace

int main() {
  Kernel kernel;
  kernel.set_global_quantum(1_us);

  Module top(kernel, "top");
  tlm::Bus bus("top.bus", 2_ns);
  tlm::Memory memory("top.mem", 64 * 1024, 1_ns);
  tlm::DmaEngine dma(top, "dma");
  bus.map(kMemBase, memory.size(), memory);
  bus.map(kDmaBase, tlm::DmaEngine::kRegisterCount * 4, dma.registers());
  dma.socket().bind(bus);

  // Source buffer contents, written through the backdoor (as a loader
  // would).
  std::iota(memory.backdoor(), memory.backdoor() + kBlock, std::uint8_t{0});

  tlm::InitiatorSocket cpu("top.cpu");
  cpu.bind(bus);

  kernel.spawn_thread("software", [&] {
    using Dma = tlm::DmaEngine;
    const auto reg = [](std::size_t r) { return kDmaBase + r * 4; };

    // Program the transfer through the bus (decoupled register writes).
    cpu.write32(reg(Dma::kSrc), kMemBase);
    cpu.write32(reg(Dma::kDst), kMemBase + 32 * 1024);
    cpu.write32(reg(Dma::kLen), kBlock);
    cpu.write32(reg(Dma::kCtrl), 1);
    std::printf("sw:  DMA started at %s (local date)\n",
                kernel.sync_domain().local_time_stamp().to_string().c_str());

    // Overlap: crunch numbers while the engine copies.
    for (int i = 0; i < 1000; ++i) {
      kernel.sync_domain().inc_and_sync_if_needed(50_ns);
    }
    std::printf("sw:  compute phase done at %s\n",
                kernel.sync_domain().local_time_stamp().to_string().c_str());

    // Wait for the completion interrupt (sync first: waiting is a
    // synchronization point).
    kernel.sync_domain().sync();
    while (cpu.read32(reg(Dma::kStatus)) != Dma::kDone) {
      tdsim::wait(dma.done_event());
    }
    std::printf("sw:  completion observed at %s\n",
                kernel.sync_domain().local_time_stamp().to_string().c_str());

    // Verify through timed reads.
    bool ok = true;
    for (std::uint32_t offset = 0; offset < kBlock; offset += 4) {
      const std::uint32_t expect = (offset & 0xFF) |
                                   ((offset + 1) & 0xFF) << 8 |
                                   ((offset + 2) & 0xFF) << 16 |
                                   ((offset + 3) & 0xFF) << 24;
      if (cpu.read32(kMemBase + 32 * 1024 + offset) != expect) {
        ok = false;
        break;
      }
    }
    std::printf("sw:  copy check: %s\n", ok ? "ok" : "CORRUPT");
  });

  kernel.run();
  std::printf("simulation ended at %s, %llu context switches, "
              "%llu words copied\n",
              kernel.now().to_string().c_str(),
              static_cast<unsigned long long>(
                  kernel.stats().context_switches),
              static_cast<unsigned long long>(dma.words_copied()));
  return 0;
}
