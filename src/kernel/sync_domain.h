// Kernel-owned synchronization domain -- the second level of the
// temporal-decoupling subsystem.
//
// A SyncDomain groups the processes of one kernel under a common quantum
// policy and accounts for every synchronization they perform, attributed to
// a cause (quantum expiry, Smart-FIFO full/empty, synchronization points,
// monitor accesses, method re-arms). The per-cause counts land in
// KernelStats, where benchmarks read them next to wall time -- these are
// exactly the quantities the paper's Fig. 5 trades off against FIFO depth.
//
// The domain also offers the current-process convenience API (inc, sync,
// advance_local_to, ...) that channel code uses when it holds a Kernel& but
// not a Process&: the operations apply to the process currently executing
// inside that kernel. Today every kernel owns exactly one domain; the
// explicit object is the seam for per-domain quanta and sharded multi-domain
// scheduling.
#pragma once

#include "kernel/stats.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;
class LocalClock;
class Process;

class SyncDomain {
 public:
  explicit SyncDomain(Kernel& kernel) : kernel_(kernel) {}
  SyncDomain(const SyncDomain&) = delete;
  SyncDomain& operator=(const SyncDomain&) = delete;

  Kernel& kernel() const { return kernel_; }

  // --- quantum policy ---

  /// Temporal-decoupling quantum (TLM-2.0 tlm_global_quantum analog): the
  /// maximum local-time offset a well-behaved decoupled process accumulates
  /// before synchronizing. Zero disables quantum-driven decoupling
  /// ("synchronize at every annotation").
  Time quantum() const { return quantum_; }
  void set_quantum(Time quantum) { quantum_ = quantum; }

  /// Policy decision for a clock in this domain: true when the quantum is
  /// zero or the clock's offset has reached it.
  bool quantum_exceeded(const LocalClock& clock) const;

  // --- current-process operations ---
  // All of these apply to the process currently executing inside this
  // domain's kernel; calling them from outside a running simulation process
  // is an error (except local_time_stamp, which degenerates gracefully).

  /// The clock of the currently executing process.
  LocalClock& current_clock() const;

  /// Local date of the current process; from scheduler context (e.g.
  /// callbacks) it degenerates to the global date.
  Time local_time_stamp() const;

  /// Local-time offset of the current process.
  Time local_offset() const;

  /// inc() on the current process's clock.
  void inc(Time duration);

  /// advance_to() on the current process's clock.
  void advance_local_to(Time date);

  /// sync() on the current process's clock, attributed to `cause`.
  void sync(SyncCause cause = SyncCause::Explicit);

  /// The canonical loosely-timed pattern: inc, then sync only when the
  /// quantum is exhausted.
  void inc_and_sync_if_needed(Time duration,
                              SyncCause cause = SyncCause::Quantum);

  bool is_synchronized() const;
  bool needs_sync() const;

  /// method_rearm() on the current (method) process's clock.
  void method_sync_trigger(SyncCause cause = SyncCause::MethodRearm);

  /// Local date of an arbitrary process (global date + its offset).
  Time local_time_of(const Process& process) const;

  // --- statistics (stored in the kernel's KernelStats) ---

  std::uint64_t syncs(SyncCause cause) const;
  std::uint64_t syncs_performed() const;
  std::uint64_t syncs_elided() const;

 private:
  friend class LocalClock;

  /// The one place a synchronization happens: validates the caller, keeps
  /// the per-cause books, clears the offset and suspends the owner until
  /// the global date catches up.
  void perform_sync(LocalClock& clock, SyncCause cause);

  /// The method-process counterpart: re-arm at the local date through
  /// Kernel::next_trigger (generation-safe) and keep the books.
  void perform_method_rearm(LocalClock& clock, SyncCause cause);

  Kernel& kernel_;
  Time quantum_{};
};

/// The sync domain of the kernel currently executing run() on this OS
/// thread; an error when no kernel is running. For components (arbiters,
/// sockets) that are not bound to a kernel at construction time.
SyncDomain& current_sync_domain();

/// TLM-2.0 tlm_quantumkeeper analog: accumulates local time on the bound
/// kernel's current process and synchronizes when that kernel's quantum is
/// exceeded. All policy is routed through the stored kernel's SyncDomain --
/// never through the ambient Kernel::current() -- so a keeper built for one
/// kernel keeps working when several kernels coexist.
class QuantumKeeper {
 public:
  explicit QuantumKeeper(Kernel& kernel) : kernel_(kernel) {}

  /// Adds `duration` to the current process's local time.
  void inc(Time duration);

  /// Local date of the current process.
  Time local_time() const;

  bool need_sync() const;

  /// Unconditional synchronization (attributed to the quantum cause).
  void sync();

  /// The canonical loosely-timed pattern: inc, then sync only when the
  /// quantum is exhausted.
  void inc_and_sync_if_needed(Time duration);

  Kernel& kernel() const { return kernel_; }

 private:
  SyncDomain& domain() const;

  Kernel& kernel_;
};

}  // namespace tdsim
