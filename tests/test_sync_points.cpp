// The synchronization-point rule of paper SII.A: shared state crossing
// decoupled processes is only correct when the writer synchronizes at the
// right places. "Consider the following code that sets a flag for 10ns:
// flag=1; inc(10,SC_NS); flag=0. Unless the quantum is smaller than 10ns,
// it is impossible for another process to see that this flag has been set.
// The solution ... is to add an explicit sync() before resetting the flag."
#include <gtest/gtest.h>

#include "kernel/sync_domain.h"
#include "kernel/kernel.h"
#include "kernel/signal.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

/// The flag-pulse scenario. The setter raises a flag, holds it for 10 ns
/// of simulated time, and resets it; an observer polls every nanosecond.
/// Returns how many polls saw the flag up.
int observed_pulse_polls(bool sync_before_reset) {
  Kernel kernel;
  bool flag = false;
  int seen = 0;
  kernel.spawn_thread("setter", [&] {
    kernel.sync_domain().inc(5_ns);
    kernel.sync_domain().sync();  // publish point for the rising edge
    flag = true;
    kernel.sync_domain().inc(10_ns);
    if (sync_before_reset) {
      kernel.sync_domain().sync();  // the paper's fix: the pulse lasts 10 real ns
    }
    flag = false;
  });
  kernel.spawn_thread("observer", [&] {
    for (int i = 0; i < 30; ++i) {
      tdsim::wait(1_ns);
      if (flag) {
        seen++;
      }
    }
  });
  return kernel.run(), seen;
}

TEST(SyncPoints, FlagPulseInvisibleWithoutSync) {
  // Without the sync, the setter resets the flag in the same instant it
  // set it (its inc() is invisible to the scheduler): no observer poll
  // can ever see the pulse.
  EXPECT_EQ(observed_pulse_polls(false), 0);
}

TEST(SyncPoints, FlagPulseLasts10nsWithSync) {
  // With the explicit sync() before the reset, the flag is really up for
  // the simulated interval (5, 15] ns: the 1 ns poller sees it 10 times.
  EXPECT_EQ(observed_pulse_polls(true), 10);
}

TEST(SyncPoints, SignalPulseBehavesLikeTheFlag) {
  // Same rule through the Signal channel (evaluate/update semantics do
  // not change the decoupling requirement).
  const auto run_mode = [](bool sync_before_reset) {
    Kernel kernel;
    Signal<bool> flag(kernel, "flag", false);
    int rising = 0, falling = 0;
    Time rise_date, fall_date;
    kernel.spawn_thread("setter", [&] {
      kernel.sync_domain().inc(5_ns);
      kernel.sync_domain().sync();
      flag.write(true);
      kernel.sync_domain().inc(10_ns);
      if (sync_before_reset) {
        kernel.sync_domain().sync();
      }
      flag.write(false);
    });
    kernel.spawn_thread("watcher", [&] {
      for (int i = 0; i < 2; ++i) {
        tdsim::wait(flag.value_changed_event());
        if (flag.read()) {
          rising++;
          rise_date = sim_time_stamp();
        } else {
          falling++;
          fall_date = sim_time_stamp();
        }
      }
    });
    kernel.run();
    return std::tuple(rising, falling, fall_date - rise_date);
  };

  {
    const auto [rising, falling, width] = run_mode(true);
    EXPECT_EQ(rising, 1);
    EXPECT_EQ(falling, 1);
    EXPECT_EQ(width, Time(10, TimeUnit::NS));  // date-accurate pulse
  }
  {
    // Without the sync both writes land in the same evaluation; the
    // last-write-wins update never shows a rising edge.
    const auto [rising, falling, width] = run_mode(false);
    EXPECT_EQ(rising + falling, 0);
    (void)width;
  }
}

TEST(SyncPoints, QuantumSmallerThanPulseCanSeeIt) {
  // The paper's alternative: with a quantum below the pulse width, the
  // quantum keeper's periodic syncs publish the flag often enough.
  Kernel kernel;
  kernel.set_global_quantum(2_ns);
  bool flag = false;
  int seen = 0;
  kernel.spawn_thread("setter", [&] {
    kernel.sync_domain().inc(5_ns);
    kernel.sync_domain().sync();
    flag = true;
    for (int i = 0; i < 10; ++i) {
      kernel.sync_domain().inc(1_ns);
      if (kernel.sync_domain().needs_sync()) {
        kernel.sync_domain().sync(SyncCause::Quantum);  // keeper pattern
      }
    }
    flag = false;
  });
  kernel.spawn_thread("observer", [&] {
    for (int i = 0; i < 30; ++i) {
      tdsim::wait(1_ns);
      if (flag) {
        seen++;
      }
    }
  });
  kernel.run();
  EXPECT_GT(seen, 0);
}

}  // namespace
}  // namespace tdsim
