// Value-change-dump (VCD, IEEE 1364 SS18) waveform writer: the standard
// debug artifact of event-driven hardware simulation. Models record scalar
// samples (FIFO levels, register values, process states) against simulated
// time; the writer emits a file that any waveform viewer (GTKWave etc.)
// opens.
//
// Recording is date-ordered per variable but tolerates the out-of-order
// *emission* typical of temporally decoupled models: samples are buffered
// with their dates and merged at dump time, so a decoupled process may
// record with its local date while a synchronized one records with the
// global date.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "kernel/time.h"

namespace tdsim::trace {

class VcdWriter;

/// Handle to one VCD variable (a wire of 1..64 bits). Obtained from
/// VcdWriter::add_variable; records are stamped with an explicit date.
class VcdVariable {
 public:
  /// Records `value` at `date`. Consecutive identical values are
  /// deduplicated at dump time.
  void record(Time date, std::uint64_t value);

  const std::string& name() const;
  unsigned width() const;

 private:
  friend class VcdWriter;
  VcdVariable(VcdWriter& writer, std::size_t index)
      : writer_(&writer), index_(index) {}

  VcdWriter* writer_;
  std::size_t index_;
};

/// Collects samples for any number of variables and renders the VCD file.
class VcdWriter {
 public:
  /// `timescale` must be one of "1ps", "1ns", "1us", "1ms" -- dates are
  /// divided down accordingly (sub-unit detail is truncated).
  explicit VcdWriter(std::string timescale = "1ps");

  /// Declares a wire of `width` bits (1..64) under `name`; dots in the
  /// name create scopes ("soc.fifo0.level" lands in scope soc/fifo0).
  VcdVariable add_variable(const std::string& name, unsigned width);

  /// Renders the complete dump. Callable repeatedly (e.g. mid-simulation
  /// checkpoints); samples are kept.
  void write(std::ostream& os) const;

  /// Convenience: renders into a string (tests, small dumps).
  std::string to_string() const;

  std::size_t variable_count() const { return variables_.size(); }
  std::size_t sample_count() const;

 private:
  friend class VcdVariable;

  struct Sample {
    Time date;
    std::uint64_t value;
  };

  struct Variable {
    std::string name;
    std::string identifier;  ///< Short VCD id code, e.g. "!", "%".
    unsigned width = 1;
    std::vector<Sample> samples;
  };

  static std::string make_identifier(std::size_t index);

  std::string timescale_;
  std::uint64_t ps_per_tick_;
  std::vector<Variable> variables_;
};

}  // namespace tdsim::trace
