// Regular bounded FIFO channel: Kahn behavior, blocking, events, counters.
#include "kernel/fifo.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {
namespace {

TEST(Fifo, ZeroDepthRejected) {
  Kernel k;
  EXPECT_THROW(Fifo<int>(k, "f", 0), SimulationError);
}

TEST(Fifo, WriteThenReadSameValue) {
  Kernel k;
  Fifo<int> f(k, "f", 4);
  int got = 0;
  k.spawn_thread("wr", [&] { f.write(42); });
  k.spawn_thread("rd", [&] { got = f.read(); });
  k.run();
  EXPECT_EQ(got, 42);
}

TEST(Fifo, PreservesOrder) {
  Kernel k;
  Fifo<int> f(k, "f", 2);
  std::vector<int> got;
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 10; ++i) {
      f.write(i);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 10; ++i) {
      got.push_back(f.read());
    }
  });
  k.run();
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(got, expect);
}

TEST(Fifo, ReaderBlocksUntilDataWritten) {
  Kernel k;
  Fifo<int> f(k, "f", 1);
  Time read_at;
  k.spawn_thread("rd", [&] {
    (void)f.read();
    read_at = k.now();
  });
  k.spawn_thread("wr", [&] {
    k.wait(30_ns);
    f.write(1);
  });
  k.run();
  EXPECT_EQ(read_at, 30_ns);
  EXPECT_EQ(f.reads_blocked(), 1u);
}

TEST(Fifo, WriterBlocksWhileFull) {
  Kernel k;
  Fifo<int> f(k, "f", 2);
  Time third_write_done;
  k.spawn_thread("wr", [&] {
    f.write(1);
    f.write(2);
    f.write(3);  // blocks until the reader frees a cell at 50ns
    third_write_done = k.now();
  });
  k.spawn_thread("rd", [&] {
    k.wait(50_ns);
    (void)f.read();
  });
  k.run();
  EXPECT_EQ(third_write_done, 50_ns);
  EXPECT_EQ(f.writes_blocked(), 1u);
}

TEST(Fifo, ImmediateVisibilityWithinSameDate) {
  // A write at date t is readable at date t (Kahn semantics; see DESIGN.md
  // substitution note).
  Kernel k;
  Fifo<int> f(k, "f", 4);
  Time read_at = Time::max();
  k.spawn_thread("rd", [&] {
    (void)f.read();
    read_at = k.now();
  });
  k.spawn_thread("wr", [&] {
    k.wait(10_ns);
    f.write(7);
  });
  k.run();
  EXPECT_EQ(read_at, 10_ns);
}

TEST(Fifo, NbWriteFailsWhenFull) {
  Kernel k;
  Fifo<int> f(k, "f", 1);
  k.spawn_thread("t", [&] {
    EXPECT_TRUE(f.nb_write(1));
    EXPECT_FALSE(f.nb_write(2));
    int v = 0;
    EXPECT_TRUE(f.nb_read(v));
    EXPECT_EQ(v, 1);
    EXPECT_FALSE(f.nb_read(v));
  });
  k.run();
}

TEST(Fifo, OccupancyAccessors) {
  Kernel k;
  Fifo<int> f(k, "f", 3);
  k.spawn_thread("t", [&] {
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.num_free(), 3u);
    f.write(1);
    f.write(2);
    EXPECT_EQ(f.num_available(), 2u);
    EXPECT_EQ(f.num_free(), 1u);
    EXPECT_FALSE(f.empty());
    EXPECT_FALSE(f.full());
    f.write(3);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.front(), 1);
  });
  k.run();
}

TEST(Fifo, FrontOnEmptyIsError) {
  Kernel k;
  Fifo<int> f(k, "f", 1);
  k.spawn_thread("t", [&] { (void)f.front(); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(Fifo, DataWrittenEventFiresPerWrite) {
  Kernel k;
  Fifo<int> f(k, "f", 8);
  int notifications = 0;
  MethodOptions opts;
  opts.sensitivity = {&f.data_written_event()};
  opts.dont_initialize = true;
  k.spawn_method("observer", [&] { notifications++; }, std::move(opts));
  k.spawn_thread("wr", [&] {
    f.write(1);
    k.wait(1_ns);
    f.write(2);
    k.wait(1_ns);
  });
  k.run();
  EXPECT_EQ(notifications, 2);
}

TEST(Fifo, CountersTrackAccesses) {
  Kernel k;
  Fifo<int> f(k, "f", 2);
  k.spawn_thread("wr", [&] {
    for (int i = 0; i < 5; ++i) {
      f.write(i);
    }
  });
  k.spawn_thread("rd", [&] {
    for (int i = 0; i < 5; ++i) {
      (void)f.read();
    }
  });
  k.run();
  EXPECT_EQ(f.total_writes(), 5u);
  EXPECT_EQ(f.total_reads(), 5u);
}

TEST(Fifo, MoveOnlyPayload) {
  Kernel k;
  Fifo<std::unique_ptr<int>> f(k, "f", 2);
  int got = 0;
  k.spawn_thread("wr", [&] { f.write(std::make_unique<int>(9)); });
  k.spawn_thread("rd", [&] { got = *f.read(); });
  k.run();
  EXPECT_EQ(got, 9);
}

}  // namespace
}  // namespace tdsim
