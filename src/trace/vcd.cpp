#include "trace/vcd.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "kernel/report.h"

namespace tdsim::trace {

// ---------------------------------------------------------------------
// VcdVariable
// ---------------------------------------------------------------------

void VcdVariable::record(Time date, std::uint64_t value) {
  auto& samples = writer_->variables_[index_].samples;
  if (!samples.empty() && samples.back().date > date) {
    // Out-of-date-order recording on a *single* variable indicates the
    // model probed it from processes with decreasing dates; insert in
    // order so the dump stays well-formed.
    const auto pos = std::upper_bound(
        samples.begin(), samples.end(), date,
        [](Time d, const VcdWriter::Sample& s) { return d < s.date; });
    samples.insert(pos, {date, value});
    return;
  }
  samples.push_back({date, value});
}

const std::string& VcdVariable::name() const {
  return writer_->variables_[index_].name;
}

unsigned VcdVariable::width() const {
  return writer_->variables_[index_].width;
}

// ---------------------------------------------------------------------
// VcdWriter
// ---------------------------------------------------------------------

VcdWriter::VcdWriter(std::string timescale) : timescale_(std::move(timescale)) {
  if (timescale_ == "1ps") {
    ps_per_tick_ = 1;
  } else if (timescale_ == "1ns") {
    ps_per_tick_ = 1'000;
  } else if (timescale_ == "1us") {
    ps_per_tick_ = 1'000'000;
  } else if (timescale_ == "1ms") {
    ps_per_tick_ = 1'000'000'000;
  } else {
    Report::error("VcdWriter: unsupported timescale " + timescale_);
  }
}

std::string VcdWriter::make_identifier(std::size_t index) {
  // Printable ASCII 33..126, base-94, shortest-first -- the conventional
  // VCD identifier-code encoding.
  std::string id;
  do {
    id.push_back(static_cast<char>(33 + index % 94));
    index /= 94;
  } while (index > 0);
  return id;
}

VcdVariable VcdWriter::add_variable(const std::string& name, unsigned width) {
  if (width == 0 || width > 64) {
    Report::error("VcdWriter: variable " + name + ": width must be 1..64");
  }
  if (name.empty()) {
    Report::error("VcdWriter: variable name must not be empty");
  }
  Variable variable;
  variable.name = name;
  variable.identifier = make_identifier(variables_.size());
  variable.width = width;
  variables_.push_back(std::move(variable));
  return VcdVariable(*this, variables_.size() - 1);
}

std::size_t VcdWriter::sample_count() const {
  std::size_t count = 0;
  for (const Variable& v : variables_) {
    count += v.samples.size();
  }
  return count;
}

namespace {

/// Scope tree node built from the dot-separated variable names.
struct Scope {
  std::map<std::string, Scope> children;
  /// (leaf name, variable index) pairs declared directly in this scope.
  std::vector<std::pair<std::string, std::size_t>> variables;
};

void declare(std::ostream& os, const Scope& scope,
             const std::vector<std::string>& identifiers,
             const std::vector<unsigned>& widths) {
  for (const auto& [leaf, index] : scope.variables) {
    os << "$var wire " << widths[index] << " " << identifiers[index] << " "
       << leaf << " $end\n";
  }
  for (const auto& [name, child] : scope.children) {
    os << "$scope module " << name << " $end\n";
    declare(os, child, identifiers, widths);
    os << "$upscope $end\n";
  }
}

void emit_value(std::ostream& os, std::uint64_t value, unsigned width,
                const std::string& identifier) {
  if (width == 1) {
    os << (value & 1) << identifier << "\n";
    return;
  }
  // Binary vector value, most significant bit first, no leading zeros
  // (but at least one digit).
  char bits[65];
  int n = 0;
  for (int b = static_cast<int>(width) - 1; b >= 0; --b) {
    const char bit = ((value >> b) & 1) ? '1' : '0';
    if (n == 0 && bit == '0' && b != 0) {
      continue;
    }
    bits[n++] = bit;
  }
  bits[n] = '\0';
  os << "b" << bits << " " << identifier << "\n";
}

}  // namespace

void VcdWriter::write(std::ostream& os) const {
  os << "$comment tdsim value change dump $end\n";
  os << "$timescale " << timescale_ << " $end\n";

  // Build the scope tree from dotted names.
  Scope root;
  std::vector<std::string> identifiers;
  std::vector<unsigned> widths;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    identifiers.push_back(v.identifier);
    widths.push_back(v.width);
    Scope* scope = &root;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t dot = v.name.find('.', pos);
      if (dot == std::string::npos) {
        scope->variables.emplace_back(v.name.substr(pos), i);
        break;
      }
      scope = &scope->children[v.name.substr(pos, dot - pos)];
      pos = dot + 1;
    }
  }
  declare(os, root, identifiers, widths);
  os << "$enddefinitions $end\n";

  // Merge all samples into one date-ordered change list, deduplicating
  // consecutive identical values per variable.
  struct Change {
    std::uint64_t tick;
    std::size_t variable;
    std::uint64_t value;
  };
  std::vector<Change> changes;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const auto& samples = variables_[i].samples;
    bool have_last = false;
    std::uint64_t last = 0;
    for (const Sample& s : samples) {
      if (have_last && s.value == last) {
        continue;
      }
      changes.push_back({s.date.ps() / ps_per_tick_, i, s.value});
      have_last = true;
      last = s.value;
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) {
                     return a.tick < b.tick;
                   });

  bool first = true;
  std::uint64_t current_tick = 0;
  for (const Change& change : changes) {
    if (first || change.tick != current_tick) {
      os << "#" << change.tick << "\n";
      current_tick = change.tick;
      first = false;
    }
    emit_value(os, change.value, variables_[change.variable].width,
               variables_[change.variable].identifier);
  }
}

std::string VcdWriter::to_string() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace tdsim::trace
