// Umbrella header: the full public API of the tdsim library.
//
// Downstream users can include this single header; fine-grained includes
// (e.g. just "core/smart_fifo.h" + "kernel/kernel.h") keep builds leaner.
#pragma once

// Discrete-event kernel substrate.
#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/fifo.h"
#include "kernel/kernel.h"
#include "kernel/kernel_config.h"
#include "kernel/local_clock.h"
#include "kernel/module.h"
#include "kernel/process.h"
#include "kernel/quantum_controller.h"
#include "kernel/report.h"
#include "kernel/scheduler.h"
#include "kernel/signal.h"
#include "kernel/snapshot.h"
#include "kernel/stats.h"
#include "kernel/sync_domain.h"
#include "kernel/time.h"

// Temporal decoupling and the Smart FIFO (the paper's contribution).
#include "core/arbiter.h"
#include "core/fifo_interface.h"
#include "core/peq.h"
#include "core/smart_fifo.h"
#include "core/start_gate.h"
#include "core/sync_fifo.h"

// Memory-mapped TLM substrate.
#include "tlm/bus.h"
#include "tlm/dma.h"
#include "tlm/memory.h"
#include "tlm/payload.h"
#include "tlm/register_bank.h"
#include "tlm/socket.h"

// Stream NoC substrate.
#include "noc/mesh.h"
#include "noc/network_interface.h"
#include "noc/packet.h"
#include "noc/router.h"

// Case-study SoC and the Fig. 5 workload.
#include "soc/accelerator.h"
#include "soc/control_core.h"
#include "soc/soc_platform.h"
#include "workloads/pipeline.h"

// Validation and debug tooling.
#include "trace/probe.h"
#include "trace/scenario.h"
#include "trace/trace.h"
#include "trace/vcd.h"
