// Regular bounded FIFO channel (sc_fifo analog) with immediate visibility:
// a value written at date t is readable at date t. Blocking accesses are for
// thread processes; non-blocking accessors and events serve method
// processes. This is the channel used by the paper's untimed model and, via
// SyncFifo, by the "TDless" reference model.
//
// Chunked mode (set_chunk_capacity >= 2, or the TDSIM_CHUNKED default):
// the buffer itself stays immediately visible -- only the data_written /
// data_read delta notifications are batched, firing on the empty<->non-empty
// and full<->non-full transitions (the only wake-relevant ones for the
// blocking loops), every chunk_capacity-th access, and at every kernel
// flush point (Kernel::ChunkFlushListener). Blocking dates are unchanged;
// only the number of delta notifications observers see drops.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {

template <typename T>
class Fifo : public ChunkFlushListener {
 public:
  /// A FIFO with `depth` cells (depth must be at least one, matching a
  /// hardware FIFO).
  Fifo(Kernel& kernel, std::string name, std::size_t depth)
      : kernel_(kernel),
        name_(std::move(name)),
        depth_(depth),
        data_written_(kernel, name_ + ".data_written"),
        data_read_(kernel, name_ + ".data_read") {
    if (depth_ == 0) {
      Report::error("Fifo " + name_ + ": depth must be >= 1");
    }
    if (kernel_.default_chunk_capacity() > 1) {
      set_chunk_capacity(kernel_.default_chunk_capacity());
    }
  }

  ~Fifo() override {
    if (chunk_registered_) {
      kernel_.unregister_chunk_flush(this);
    }
  }

  /// Blocking write; suspends the calling thread while the FIFO is full.
  void write(T value) {
    domain_link_.touch(kernel_.current_domain());
    while (buffer_.size() == depth_) {
      writes_blocked_++;
      kernel_.wait(data_read_);
    }
    buffer_.push_back(std::move(value));
    total_writes_++;
    note_written();
  }

  /// Blocking read; suspends the calling thread while the FIFO is empty.
  T read() {
    domain_link_.touch(kernel_.current_domain());
    while (buffer_.empty()) {
      reads_blocked_++;
      kernel_.wait(data_written_);
    }
    T value = std::move(buffer_.front());
    buffer_.pop_front();
    total_reads_++;
    note_read();
    return value;
  }

  /// Non-blocking write; returns false when full.
  bool nb_write(T value) {
    domain_link_.touch(kernel_.current_domain());
    if (buffer_.size() == depth_) {
      return false;
    }
    buffer_.push_back(std::move(value));
    total_writes_++;
    note_written();
    return true;
  }

  /// Non-blocking read; returns false when empty.
  bool nb_read(T& out) {
    domain_link_.touch(kernel_.current_domain());
    if (buffer_.empty()) {
      return false;
    }
    out = std::move(buffer_.front());
    buffer_.pop_front();
    total_reads_++;
    note_read();
    return true;
  }

  /// Oldest element; FIFO must not be empty.
  const T& front() const {
    if (buffer_.empty()) {
      Report::error("Fifo " + name_ + ": front() on empty FIFO");
    }
    return buffer_.front();
  }

  bool empty() const { return buffer_.empty(); }
  bool full() const { return buffer_.size() == depth_; }
  std::size_t num_available() const { return buffer_.size(); }
  std::size_t num_free() const { return depth_ - buffer_.size(); }
  std::size_t depth() const { return depth_; }
  const std::string& name() const { return name_; }
  Kernel& kernel() const { return kernel_; }

  /// Delta-notified after each successful write / read.
  Event& data_written_event() { return data_written_; }
  Event& data_read_event() { return data_read_; }

  /// Declares this FIFO's minimum modeling latency (see
  /// DomainLink::set_min_latency): diagnostic for the merged link, and the
  /// value for a decoupled Kernel::link_domains(a, b, min_latency) when
  /// the hand-off is restructured for per-group lookahead.
  void declare_min_latency(Time latency) {
    domain_link_.set_min_latency(latency);
  }
  Time declared_min_latency() const { return domain_link_.min_latency(); }

  /// Chunked notification batching (see the header comment). A capacity
  /// >= 2 registers the FIFO as a kernel flush listener; 0 or 1 flushes
  /// any pending notifications and restores per-access delta notifies.
  void set_chunk_capacity(std::size_t capacity) {
    if (capacity >= 2) {
      chunk_capacity_ = capacity;
      if (!chunk_registered_) {
        kernel_.register_chunk_flush(this);
        chunk_registered_ = true;
      }
    } else if (chunk_registered_) {
      flush_chunks();
      chunk_capacity_ = 0;
      kernel_.unregister_chunk_flush(this);
      chunk_registered_ = false;
    }
  }
  std::size_t chunk_capacity() const { return chunk_capacity_; }

  /// Kernel flush point (horizons, lookahead waves, run() exit): fire the
  /// batched delta notifications so pollers observe a settled channel.
  bool flush_chunks() override {
    bool any = false;
    if (pending_written_ != 0) {
      pending_written_ = 0;
      data_written_.notify_delta();
      any = true;
    }
    if (pending_read_ != 0) {
      pending_read_ = 0;
      data_read_.notify_delta();
      any = true;
    }
    return any;
  }

  SyncDomain* chunk_home_domain() const override {
    return domain_link_.first_domain();
  }

  // Lifetime access counters, for tests and benchmarks.
  std::uint64_t total_writes() const { return total_writes_; }
  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t writes_blocked() const { return writes_blocked_; }
  std::uint64_t reads_blocked() const { return reads_blocked_; }

 private:
  /// Post-write notification: per access in per-element mode; in chunked
  /// mode only on the empty->non-empty transition (the wake-relevant one),
  /// every chunk_capacity_-th pending write, and at kernel flush points.
  void note_written() {
    pending_written_++;
    if (chunk_capacity_ <= 1 || buffer_.size() == 1 ||
        pending_written_ >= chunk_capacity_) {
      pending_written_ = 0;
      data_written_.notify_delta();
    }
  }

  /// Post-read analog of note_written() (full->non-full transition).
  void note_read() {
    pending_read_++;
    if (chunk_capacity_ <= 1 || buffer_.size() == depth_ - 1 ||
        pending_read_ >= chunk_capacity_) {
      pending_read_ = 0;
      data_read_.notify_delta();
    }
  }

  Kernel& kernel_;
  std::string name_;
  std::size_t depth_;
  /// Declares writer/reader domains to the parallel scheduler; labeled so
  /// Kernel::explain_group() can name this FIFO.
  DomainLink domain_link_{name_};
  std::deque<T> buffer_;
  Event data_written_;
  Event data_read_;
  std::uint64_t total_writes_ = 0;
  std::uint64_t total_reads_ = 0;
  std::uint64_t writes_blocked_ = 0;
  std::uint64_t reads_blocked_ = 0;
  /// Chunked notification batching (0 = per-element mode).
  std::size_t chunk_capacity_ = 0;
  std::size_t pending_written_ = 0;
  std::size_t pending_read_ = 0;
  bool chunk_registered_ = false;
};

}  // namespace tdsim
