// FIFO-level monitoring (paper SIII.C): "knowing the FIFO filling levels
// can be used for debug and dynamic performance tuning".
//
// A three-stage pipeline (the Fig. 5 system) streams data through two Smart
// FIFOs while a low-rate monitor process samples both filling levels with
// get_size(). The monitor is an ordinary synchronized process: get_size()
// synchronizes it and reconstructs the *real* occupancy at the global date
// from the per-cell time stamps, even though producer and consumer are
// running ahead of the simulation time.
//
// The sampled profile makes the rate cycle visible: when the source is in a
// fast phase the first FIFO fills up; when the sink is slow the second one
// does.
//
// Build & run:  ./examples/pipeline_monitor
// A VCD waveform of both levels is also written to pipeline_levels.vcd
// (open with GTKWave or any VCD viewer).
#include <cstdio>
#include <fstream>

#include "kernel/sync_domain.h"
#include "kernel/kernel.h"
#include "trace/probe.h"
#include "trace/vcd.h"
#include "workloads/pipeline.h"

using namespace tdsim;
using namespace tdsim::time_literals;

int main() {
  workloads::PipelineConfig config;
  config.kind = workloads::ModelKind::TDfull;
  config.fifo_depth = 16;
  config.blocks = 12;
  config.words_per_block = 400;
  config.vary_rates = true;  // alternating producer/consumer-limited phases

  Kernel kernel;
  workloads::Pipeline pipeline(kernel, config);

  // Waveform probes: sample both levels into a VCD every 250 ns.
  trace::VcdWriter vcd("1ns");
  trace::FifoLevelProbe::Config probe_config;
  probe_config.period = 250_ns;
  probe_config.max_samples = 150;
  trace::FifoLevelProbe probe_a(kernel, "probe_a", pipeline.first_fifo(),
                                vcd.add_variable("pipeline.fifo_a.level", 8),
                                probe_config);
  trace::FifoLevelProbe probe_b(kernel, "probe_b", pipeline.second_fifo(),
                                vcd.add_variable("pipeline.fifo_b.level", 8),
                                probe_config);

  // Low-rate monitor: sample both FIFO levels every 500 ns. The half-ns
  // phase keeps the samples off the word-date grid so the observation is
  // deterministic (see SocConfig::poll_phase for the same idiom).
  kernel.spawn_thread("monitor", [&] {
    std::printf("%10s | %-26s | %-26s\n", "date", "fifo A (src->transmit)",
                "fifo B (transmit->sink)");
    kernel.sync_domain().inc(Time(500, TimeUnit::PS));
    for (int sample = 0; sample < 40; ++sample) {
      kernel.sync_domain().inc(500_ns);
      kernel.sync_domain().sync();
      const std::size_t a = pipeline.first_fifo().get_size();
      const std::size_t b = pipeline.second_fifo().get_size();
      const auto bar = [](std::size_t n) {
        static char buffer[32];
        std::size_t i = 0;
        for (; i < n && i < 16; ++i) {
          buffer[i] = '#';
        }
        buffer[i] = '\0';
        return buffer;
      };
      std::printf("%10s | %2zu %-22s | %2zu %-22s\n",
                  sim_time_stamp().to_string().c_str(), a, bar(a), b, bar(b));
    }
  });

  pipeline.run_to_completion();
  std::printf("\npipeline finished at %s; checksum %s\n",
              pipeline.completion_date().to_string().c_str(),
              pipeline.correct() ? "ok" : "WRONG");
  std::printf("peak levels: fifo A %zu, fifo B %zu (depth %zu)\n",
              probe_a.high_watermark(), probe_b.high_watermark(),
              config.fifo_depth);

  std::ofstream vcd_file("pipeline_levels.vcd");
  vcd.write(vcd_file);
  std::printf("waveform written to pipeline_levels.vcd (%zu samples)\n",
              vcd.sample_count());
  return pipeline.correct() ? 0 : 1;
}
