// Payload event queue: timestamped hand-off semantics.
#include "core/peq.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace tdsim {
namespace {

TEST(Peq, DeliversAtAnnotatedDate) {
  Kernel k;
  PeqWithGet<int> peq(k, "peq");
  std::vector<std::pair<Time, int>> got;
  k.spawn_thread("producer", [&] {
    peq.notify(1, 10_ns);
    peq.notify(2, 30_ns);
  });
  k.spawn_thread("consumer", [&] {
    for (int i = 0; i < 2; ++i) {
      k.wait(peq.get_event());
      for (auto p = peq.get_next(); p.has_value(); p = peq.get_next()) {
        got.emplace_back(k.now(), *p);
      }
    }
  });
  k.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(10_ns, 1));
  EXPECT_EQ(got[1], std::make_pair(30_ns, 2));
}

TEST(Peq, OutOfOrderNotifiesDeliverInDateOrder) {
  Kernel k;
  PeqWithGet<int> peq(k, "peq");
  std::vector<int> got;
  k.spawn_thread("producer", [&] {
    peq.notify(3, 30_ns);
    peq.notify(1, 10_ns);
    peq.notify(2, 20_ns);
  });
  k.spawn_thread("consumer", [&] {
    while (got.size() < 3) {
      k.wait(peq.get_event());
      for (auto p = peq.get_next(); p.has_value(); p = peq.get_next()) {
        got.push_back(*p);
      }
    }
  });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Peq, GetNextReturnsNulloptBeforeDate) {
  Kernel k;
  PeqWithGet<int> peq(k, "peq");
  k.spawn_thread("t", [&] {
    peq.notify(7, 50_ns);
    EXPECT_FALSE(peq.get_next().has_value());  // too early; re-arms event
    k.wait(peq.get_event());
    EXPECT_EQ(k.now(), 50_ns);
    auto p = peq.get_next();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 7);
    EXPECT_FALSE(peq.get_next().has_value());  // drained
  });
  k.run();
}

TEST(Peq, ImmediateNotifyDeliversSameDate) {
  Kernel k;
  PeqWithGet<std::string> peq(k, "peq");
  std::string got;
  Time got_at = Time::max();
  k.spawn_thread("producer", [&] {
    k.wait(5_ns);
    peq.notify(std::string("hello"));
  });
  k.spawn_thread("consumer", [&] {
    k.wait(peq.get_event());
    auto p = peq.get_next();
    ASSERT_TRUE(p.has_value());
    got = *p;
    got_at = k.now();
  });
  k.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(got_at, 5_ns);
}

TEST(Peq, SameDatePayloadsAllRetrievable) {
  Kernel k;
  PeqWithGet<int> peq(k, "peq");
  std::vector<int> got;
  k.spawn_thread("producer", [&] {
    peq.notify(1, 10_ns);
    peq.notify(2, 10_ns);
    peq.notify(3, 10_ns);
  });
  k.spawn_thread("consumer", [&] {
    k.wait(peq.get_event());
    for (auto p = peq.get_next(); p.has_value(); p = peq.get_next()) {
      got.push_back(*p);
    }
  });
  k.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(peq.pending(), 0u);
}

}  // namespace
}  // namespace tdsim
