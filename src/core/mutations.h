// Mutation hooks for the Smart FIFO, reproducing the paper's SIV.A mutation
// testing ("we select a line in the Smart FIFO implementation, we modify
// something, we run the test suite again and check that at least one test
// fails"). Each flag disables or corrupts one specific mechanism; the test
// suite asserts that every mutation is caught by at least one scenario.
#pragma once

namespace tdsim {

struct SmartFifoMutations {
  /// Drop write step 2: do not raise the writer's local date to the first
  /// free cell's freeing date.
  bool skip_writer_time_bump = false;

  /// Drop read step 2: do not raise the reader's local date to the first
  /// busy cell's insertion date.
  bool skip_reader_time_bump = false;

  /// Do not record insertion dates (cells behave as if written at the
  /// epoch).
  bool skip_insertion_date = false;

  /// Do not record freeing dates.
  bool skip_freeing_date = false;

  /// is_empty() ignores a future insertion date on the first busy cell
  /// (collapses the external view onto the internal state).
  bool naive_is_empty = false;

  /// is_full() ignores a future freeing date on the first free cell.
  bool naive_is_full = false;

  /// External not_empty/not_full notifications fire immediately instead of
  /// being delayed to the insertion/freeing date.
  bool undelayed_external_events = false;

  /// get_size() returns the internal occupancy instead of reconstructing
  /// the real occupancy from the cell date pairs.
  bool naive_get_size = false;

  /// Skip the writer synchronization before blocking on a full FIFO.
  bool skip_sync_on_block = false;

  bool any() const {
    return skip_writer_time_bump || skip_reader_time_bump ||
           skip_insertion_date || skip_freeing_date || naive_is_empty ||
           naive_is_full || undelayed_external_events || naive_get_size ||
           skip_sync_on_block;
  }
};

}  // namespace tdsim
