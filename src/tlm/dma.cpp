#include "tlm/dma.h"

#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim::tlm {

DmaEngine::DmaEngine(Module& parent, const std::string& name, Config config)
    : Module(parent, name),
      config_(config),
      registers_(full_name() + ".regs", kRegisterCount,
                 config.register_latency),
      socket_(full_name() + ".socket"),
      start_gate_(kernel(), full_name()),
      done_event_(kernel(), full_name() + ".done") {
  registers_.set_write_hook(kCtrl, [this](std::uint32_t value) {
    if (value == 0) {
      return;
    }
    if (registers_.peek(kStatus) == kBusy) {
      Report::error("DmaEngine " + full_name() +
                    ": start written while busy");
    }
    registers_.poke(kStatus, kBusy);
    // Timestamped hand-off: the copy begins at the (decoupled)
    // programmer's local date, exactly like a Smart FIFO insertion.
    start_gate_.post(value);
  });
  thread("engine", [this] { engine(); });
}

DmaEngine::DmaEngine(Module& parent, const std::string& name)
    : DmaEngine(parent, name, Config{}) {}

void DmaEngine::start(std::uint64_t src, std::uint64_t dst,
                      std::uint32_t length) {
  registers_.poke(kSrc, static_cast<std::uint32_t>(src));
  registers_.poke(kDst, static_cast<std::uint32_t>(dst));
  registers_.poke(kLen, length);
  // Route the start through the hook so direct use behaves exactly like
  // register programming.
  Payload p;
  std::uint32_t one = 1;
  p.command = Command::Write;
  p.address = kCtrl * 4;
  p.data = reinterpret_cast<std::uint8_t*>(&one);
  p.length = sizeof(one);
  Time delay;
  registers_.b_transport(p, delay);
  kernel().current_domain().inc(delay);
}

void DmaEngine::engine() {
  for (;;) {
    start_gate_.await();

    const std::uint64_t src = registers_.peek(kSrc);
    const std::uint64_t dst = registers_.peek(kDst);
    const std::uint32_t length = registers_.peek(kLen);
    if (length % 4 != 0) {
      Report::error("DmaEngine " + full_name() +
                    ": length must be a multiple of 4");
    }

    for (std::uint32_t offset = 0; offset < length; offset += 4) {
      std::uint32_t word = 0;
      Payload p;
      Time delay;
      p.command = Command::Read;
      p.address = src + offset;
      p.data = reinterpret_cast<std::uint8_t*>(&word);
      p.length = sizeof(word);
      socket_.b_transport(p, delay);
      if (!p.ok()) {
        Report::error("DmaEngine " + full_name() + ": read at " +
                      std::to_string(p.address) + " failed");
      }
      p.command = Command::Write;
      p.address = dst + offset;
      socket_.b_transport(p, delay);
      if (!p.ok()) {
        Report::error("DmaEngine " + full_name() + ": write at " +
                      std::to_string(p.address) + " failed");
      }
      delay += config_.per_word;
      kernel().current_domain().inc_and_sync_if_needed(delay);
      words_copied_++;
    }

    // Synchronization point (paper SII.A): the done status and interrupt
    // must be date-accurate for any observer.
    kernel().current_domain().sync(SyncCause::SyncPoint);
    registers_.poke(kStatus, kDone);
    transfers_completed_++;
    done_event_.notify_delta();
  }
}

}  // namespace tdsim::tlm
