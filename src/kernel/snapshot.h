// Deterministic snapshot forking: restart-from-log checkpoints of a warm
// kernel (see README "Fleet / scheduler").
//
// A fiber-stack memcpy checkpoint of a running kernel would be hopelessly
// fragile (ucontext stacks, TLS, sanitizer bookkeeping, raw pointers
// everywhere). tdsim does not need one: the scheduler is deterministic, so
// *replaying the construction log* reproduces the exact same kernel state
// -- clocks, domains, queues, fiber positions, counters -- bit for bit.
// The contract:
//
//   1. Do all elaboration through Kernel::build(step): each step runs
//      immediately AND is recorded. run() calls are recorded too (the
//      warm-up is part of the log).
//   2. Kernel::snapshot() captures {resolved config, the log, the warm
//      date + delta fingerprint}. Cheap: no simulation state is copied.
//   3. Kernel::fork(snapshot, options) builds a fresh kernel from the
//      snapshot's config (with per-fork overrides merged on top), replays
//      the log, verifies the fingerprint, then applies the fork's
//      divergence step -- through build(), so forks can be re-snapshot
//      and forked again.
//
// Elaboration performed *outside* a build step (from elaboration context;
// mutations made by running processes are part of the deterministic
// schedule and are fine) marks the kernel snapshot-incapable -- the log
// would replay to a different kernel -- and snapshot() reports an error.
//
// Fork config overrides are restricted by construction to KernelConfig,
// whose knobs are all execution-only (see kernel_config.h): a fork that
// runs with different workers / chunking / adaptive settings still
// replays to the bit-identical warm state, by the parallel scheduler's
// bit-exactness guarantee. Divergence that changes *simulated* behavior
// (quanta, traffic, topology) belongs in ForkOptions::diverge, after the
// warm point -- exactly like a scenario that diverges from a common
// prefix. bench_fleet asserts fork-vs-cold-run bit-identity over O(100)
// scenario variants on every CI run.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kernel/kernel_config.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;

/// A replayable checkpoint of a kernel: the resolved construction config,
/// the recorded build/run log, and the warm-state fingerprint. Value
/// type -- copy it, keep it, fork it N times; it holds no pointers into
/// the source kernel (the source may be destroyed before its snapshots
/// are forked, as long as the build steps' own captures stay valid).
struct Snapshot {
  /// The source kernel's fully resolved config; forks resolve their
  /// overrides over this, never over the environment at fork time.
  KernelConfig config;

  /// The recorded elaboration steps and run() calls, in order.
  std::vector<std::function<void(Kernel&)>> log;

  /// Simulated date the source kernel had reached at snapshot().
  Time warmed_to{};

  /// Delta-cycle count at snapshot() -- replay must land exactly here,
  /// and Kernel::fork verifies it does (a free end-to-end determinism
  /// check on every fork).
  std::uint64_t warm_delta_cycles = 0;
};

/// Per-fork variation.
struct ForkOptions {
  /// Execution-knob overrides, merged over Snapshot::config (unset fields
  /// inherit the snapshot's). Safe by construction: KernelConfig cannot
  /// change simulated dates.
  KernelConfig config;

  /// The scenario divergence, applied after replay + fingerprint check --
  /// via Kernel::build(), so the fork stays snapshot-capable. This is
  /// where simulated behavior changes: retune quanta, spawn extra
  /// traffic, reconfigure links.
  std::function<void(Kernel&)> diverge;
};

}  // namespace tdsim
