#include "kernel/kernel_config.h"

#include <cstdlib>

namespace tdsim {

namespace {

/// Strict numeric parse; nullopt on empty/garbage (the knob is then
/// treated per-knob: ignored for TDSIM_WORKERS, truthy for TDSIM_CHUNKED).
std::optional<std::uint64_t> parse_number(const char* s) {
  if (s == nullptr || *s == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

bool truthy(const char* s) {
  return s != nullptr && s[0] != '\0' && std::string(s) != "0";
}

}  // namespace

KernelConfig KernelConfig::from_env() {
  KernelConfig config;
  if (const char* env = std::getenv("TDSIM_WORKERS")) {
    if (const auto n = parse_number(env)) {
      config.workers = static_cast<std::size_t>(*n);
    }
  }
  if (const char* env = std::getenv("TDSIM_ADAPTIVE_QUANTUM")) {
    config.adaptive_quantum = truthy(env);
  }
  if (const char* env = std::getenv("TDSIM_CHUNKED")) {
    constexpr std::size_t kDefaultChunkCapacity = 16;
    if (const auto n = parse_number(env)) {
      if (*n >= 2) {
        config.default_chunk_capacity = static_cast<std::size_t>(*n);
      } else if (*n == 1) {
        config.default_chunk_capacity = kDefaultChunkCapacity;
      } else {
        config.default_chunk_capacity = 0;
      }
    } else if (env[0] != '\0') {
      config.default_chunk_capacity = kDefaultChunkCapacity;
    }
  }
  if (const char* env = std::getenv("TDSIM_QUANTUM_TRACE")) {
    if (const auto n = parse_number(env); n.has_value() && *n >= 1) {
      config.quantum_trace_depth = static_cast<std::size_t>(*n);
    }
  }
  if (const char* env = std::getenv("TDSIM_WALL_LIMIT_MS")) {
    if (const auto n = parse_number(env)) {
      config.wall_limit_ms = *n;
    }
  }
  return config;
}

KernelConfig KernelConfig::resolved_over(const KernelConfig& fallback) const {
  KernelConfig merged = *this;
  if (!merged.workers) merged.workers = fallback.workers;
  if (!merged.default_chunk_capacity) {
    merged.default_chunk_capacity = fallback.default_chunk_capacity;
  }
  if (!merged.adaptive_quantum) {
    merged.adaptive_quantum = fallback.adaptive_quantum;
  }
  if (!merged.quantum_trace_depth) {
    merged.quantum_trace_depth = fallback.quantum_trace_depth;
  }
  if (!merged.lookahead_limit) merged.lookahead_limit = fallback.lookahead_limit;
  if (!merged.delta_cycle_limit) {
    merged.delta_cycle_limit = fallback.delta_cycle_limit;
  }
  if (!merged.wall_limit_ms) {
    merged.wall_limit_ms = fallback.wall_limit_ms;
  }
  return merged;
}

}  // namespace tdsim
