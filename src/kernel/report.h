// Diagnostic reporting, a slimmed-down analog of sc_report.
//
// Errors raise SimulationError (an exception) so tests can assert on misuse
// of the kernel or of the channels; warnings and infos go to a stream that
// can be silenced or captured.
//
// Thread-safety contract (process-wide state reachable from worker threads
// via probes and channel code):
//   - emit()/info()/warning()/error()/notify() may be called concurrently
//     from any thread. Handler invocations are serialized under an internal
//     emission lock, so a user handler never runs reentrantly from two
//     threads at once and never needs its own synchronization for state it
//     owns exclusively.
//   - set_handler() may race with emit(): an in-flight emission completes
//     with either the old or the new handler (never a torn std::function),
//     and the swap itself is atomic under the same lock.
//   - warning_count() is a relaxed atomic read; it may trail concurrent
//     warnings by a few but never tears or loses increments.
//   - Reentrancy: a handler that itself calls emit() (e.g. logging an info
//     while formatting a warning) is supported on the same thread; the
//     emission lock is recursive.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

namespace tdsim {

/// Thrown on fatal misuse of the simulator (wait() from a method process,
/// decreasing dates on a Smart FIFO side, binding errors, ...).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Raised when a kernel exceeds its delta-cycle livelock limit (global or
/// per-domain). Derives from SimulationError so existing catch sites keep
/// working; the kernel classifies it as FailureKind::DeltaLivelock.
class DeltaLivelockError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// Raised when a wall-clock watchdog (KernelConfig::wall_limit_ms or the
/// RunOptions per-call override) trips at a synchronization horizon.
/// Classified as FailureKind::Watchdog.
class WatchdogError : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

/// Raised by an armed FaultPlan action (deterministic chaos harness).
/// Classified as FailureKind::Injected.
class InjectedFault : public SimulationError {
 public:
  using SimulationError::SimulationError;
};

enum class Severity { Info, Warning, Error };

/// Process-wide report sink. Defaults to stderr for warnings and stdout for
/// infos; replaceable for tests. See the thread-safety contract at the top
/// of this header.
class Report {
 public:
  using Handler = std::function<void(Severity, const std::string&)>;

  /// Emits a report. Severity::Error additionally throws SimulationError.
  static void emit(Severity severity, const std::string& message);

  /// Emits a report WITHOUT throwing, regardless of severity. For callers
  /// that raise their own typed exception (DeltaLivelockError,
  /// WatchdogError, InjectedFault) after notifying the sink.
  static void notify(Severity severity, const std::string& message);

  static void info(const std::string& message) {
    emit(Severity::Info, message);
  }
  static void warning(const std::string& message) {
    emit(Severity::Warning, message);
  }
  [[noreturn]] static void error(const std::string& message);

  /// Replaces the sink; returns the previous one. Pass nullptr to restore
  /// the default sink. Atomic with respect to concurrent emissions.
  static Handler set_handler(Handler handler);

  /// Number of warnings emitted since process start (for tests). Relaxed
  /// atomic: safe from any thread, may trail in-flight warnings.
  static std::uint64_t warning_count();
};

}  // namespace tdsim
