// Event notification semantics: immediate / delta / timed, override rules,
// cancellation, wait with timeout.
#include "kernel/event.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace tdsim {
namespace {

TEST(Event, TimedNotificationWakesWaiter) {
  Kernel k;
  Event e(k, "e");
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] { e.notify(25_ns); });
  k.run();
  EXPECT_EQ(woken_at, 25_ns);
}

TEST(Event, DeltaNotificationWakesInSameDate) {
  Kernel k;
  Event e(k, "e");
  Time woken_at = Time::max();
  std::uint64_t woken_delta = 0;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
    woken_delta = k.delta_count();
  });
  k.spawn_thread("notifier", [&] {
    k.wait(10_ns);
    e.notify_delta();
  });
  k.run();
  EXPECT_EQ(woken_at, 10_ns);
  EXPECT_GE(woken_delta, 1u);
}

TEST(Event, ImmediateNotificationWakesInSameEvaluation) {
  Kernel k;
  Event e(k, "e");
  std::vector<std::string> order;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    order.push_back("woken");
  });
  k.spawn_thread("notifier", [&] {
    order.push_back("notify");
    e.notify();
    order.push_back("after");
  });
  k.run();
  EXPECT_EQ(order, (std::vector<std::string>{"notify", "after", "woken"}));
  // Immediate wake costs no delta cycle.
  EXPECT_EQ(k.now(), Time{});
}

TEST(Event, EarlierTimedNotificationOverridesLater) {
  Kernel k;
  Event e(k, "e");
  Time woken_at;
  int wakes = 0;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
    wakes++;
  });
  k.spawn_thread("notifier", [&] {
    e.notify(50_ns);
    e.notify(20_ns);  // earlier: overrides
  });
  k.run();
  EXPECT_EQ(woken_at, 20_ns);
  EXPECT_EQ(wakes, 1);
}

TEST(Event, LaterTimedNotificationIsIgnored) {
  Kernel k;
  Event e(k, "e");
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] {
    e.notify(20_ns);
    e.notify(50_ns);  // later: ignored
  });
  k.run();
  EXPECT_EQ(woken_at, 20_ns);
}

TEST(Event, DeltaOverridesTimed) {
  Kernel k;
  Event e(k, "e");
  Time woken_at = Time::max();
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] {
    e.notify(50_ns);
    e.notify_delta();
  });
  k.run();
  EXPECT_EQ(woken_at, Time{});
}

TEST(Event, TimedIgnoredWhenDeltaPending) {
  Kernel k;
  Event e(k, "e");
  int wakes = 0;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    wakes++;
    k.wait(e);
    wakes++;  // must not be reached: only one notification pending
  });
  k.spawn_thread("notifier", [&] {
    e.notify_delta();
    e.notify(50_ns);  // ignored
  });
  k.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Event, CancelDropsPendingNotification) {
  Kernel k;
  Event e(k, "e");
  bool woken = false;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken = true;
  });
  k.spawn_thread("notifier", [&] {
    e.notify(20_ns);
    k.wait(5_ns);
    e.cancel();
  });
  k.run();
  EXPECT_FALSE(woken);
  EXPECT_FALSE(e.has_pending_notification());
}

TEST(Event, NotifyAfterCancelWorks) {
  Kernel k;
  Event e(k, "e");
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] {
    e.notify(20_ns);
    e.cancel();
    e.notify(40_ns);
  });
  k.run();
  EXPECT_EQ(woken_at, 40_ns);
}

TEST(Event, NotifiesAllWaiters) {
  Kernel k;
  Event e(k, "e");
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    k.spawn_thread("w" + std::to_string(i), [&] {
      k.wait(e);
      woken++;
    });
  }
  k.spawn_thread("notifier", [&] { e.notify(10_ns); });
  k.run();
  EXPECT_EQ(woken, 3);
}

TEST(Event, WaitWithTimeoutWokenByEvent) {
  Kernel k;
  Event e(k, "e");
  bool by_event = false;
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    by_event = k.wait(e, 100_ns);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] { e.notify(10_ns); });
  k.run();
  EXPECT_TRUE(by_event);
  EXPECT_EQ(woken_at, 10_ns);
  EXPECT_EQ(k.now(), 10_ns);  // stale timeout must not advance time
}

TEST(Event, WaitWithTimeoutExpires) {
  Kernel k;
  Event e(k, "e");
  bool by_event = true;
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    by_event = k.wait(e, 30_ns);
    woken_at = k.now();
  });
  k.run();
  EXPECT_FALSE(by_event);
  EXPECT_EQ(woken_at, 30_ns);
}

TEST(Event, TimeoutRemovesWaiterFromEventList) {
  Kernel k;
  Event e(k, "e");
  int wakes = 0;
  k.spawn_thread("waiter", [&] {
    (void)k.wait(e, 10_ns);  // times out
    wakes++;
    k.wait(50_ns);
  });
  k.spawn_thread("notifier", [&] {
    k.wait(20_ns);
    e.notify();  // waiter no longer on the list; must not wake it
  });
  k.run();
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(k.now(), 60_ns);
}

TEST(Event, PendingNotificationIntrospection) {
  Kernel k;
  Event e(k, "e");
  k.spawn_thread("t", [&] {
    EXPECT_FALSE(e.has_pending_notification());
    e.notify(30_ns);
    EXPECT_TRUE(e.has_pending_notification());
    EXPECT_EQ(e.pending_notification_date(), 30_ns);
  });
  k.run();
}

TEST(Event, NotifyZeroIsDelta) {
  Kernel k;
  Event e(k, "e");
  Time woken_at = Time::max();
  k.spawn_thread("waiter", [&] {
    k.wait(e);
    woken_at = k.now();
  });
  k.spawn_thread("notifier", [&] { e.notify(Time{}); });
  k.run();
  EXPECT_EQ(woken_at, Time{});
}

TEST(Event, DestroyedEventDetachesWaiters) {
  // Destroying an event while a process waits on it must not corrupt the
  // kernel; the waiter simply never wakes.
  Kernel k;
  auto e = std::make_unique<Event>(k, "e");
  bool woken = false;
  k.spawn_thread("waiter", [&] {
    k.wait(*e);
    woken = true;
  });
  k.spawn_thread("killer", [&] {
    k.wait(1_ns);
    e.reset();
  });
  k.run();
  EXPECT_FALSE(woken);
}

}  // namespace
}  // namespace tdsim
