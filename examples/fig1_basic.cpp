// The paper's running example (Figs. 1-3): a writer producing three values
// with 20 ns spacing into a depth-1 FIFO, and a reader consuming them with
// 15 ns spacing.
//
// The example runs the model three ways and prints each execution trace:
//
//   1. Reference (Fig. 2)  -- wait() annotations + per-access sync: the
//      faithful dates (reads at 15/35/55 ns... the third read *waits* for
//      data);
//   2. Naive TD (Fig. 3)   -- inc() annotations, date-unaware FIFO, no
//      syncs: "the reader executes as if data were already available",
//      wrong dates;
//   3. Smart FIFO          -- inc() annotations + the paper's channel: the
//      reference dates, with fewer context switches.
//
// Build & run:  ./examples/fig1_basic
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/kernel.h"

using namespace tdsim;
using namespace tdsim::time_literals;

namespace {

enum class Style { Reference, NaiveTD, SmartTD };

struct TraceLine {
  Time date;
  std::string text;
};

void run_model(Style style, std::vector<TraceLine>& trace,
               std::uint64_t& switches) {
  Kernel kernel;
  std::unique_ptr<FifoInterface<int>> fifo;
  switch (style) {
    case Style::Reference:
      fifo = std::make_unique<SyncFifo<int>>(kernel, "fifo", 1);
      break;
    case Style::NaiveTD:
      fifo = std::make_unique<UntimedFifo<int>>(kernel, "fifo", 1);
      break;
    case Style::SmartTD:
      fifo = std::make_unique<SmartFifo<int>>(kernel, "fifo", 1);
      break;
  }
  const bool decoupled = style != Style::Reference;
  const auto delay = [&](Time d) {
    if (decoupled) {
      kernel.sync_domain().inc(d);
    } else {
      kernel.wait(d);
    }
  };

  kernel.spawn_thread("writer", [&] {
    for (int v = 1; v <= 3; ++v) {
      fifo->write(v);
      trace.push_back({kernel.sync_domain().local_time_stamp(),
                       "writer: wr " + std::to_string(v)});
      delay(20_ns);
    }
  });
  kernel.spawn_thread("reader", [&] {
    for (int i = 0; i < 3; ++i) {
      delay(15_ns);
      const int v = fifo->read();
      trace.push_back({kernel.sync_domain().local_time_stamp(),
                       "reader: rd -> " + std::to_string(v)});
    }
  });

  kernel.run();
  switches = kernel.stats().context_switches;
}

void print(const char* title, const std::vector<TraceLine>& trace,
           std::uint64_t switches) {
  std::printf("%s (%llu context switches)\n", title,
              static_cast<unsigned long long>(switches));
  for (const TraceLine& line : trace) {
    std::printf("  t=%-8s %s\n", line.date.to_string().c_str(),
                line.text.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::vector<TraceLine> reference, naive, smart;
  std::uint64_t sw_ref = 0, sw_naive = 0, sw_smart = 0;
  run_model(Style::Reference, reference, sw_ref);
  run_model(Style::NaiveTD, naive, sw_naive);
  run_model(Style::SmartTD, smart, sw_smart);

  print("Fig. 2 -- reference (timed, no decoupling)", reference, sw_ref);
  print("Fig. 3 -- naive decoupling (regular FIFO, no syncs): WRONG dates",
        naive, sw_naive);
  print("Smart FIFO -- decoupled, same dates as the reference", smart,
        sw_smart);

  // The headline property, checked programmatically: after reordering by
  // date (the paper's SIV.A criterion -- with decoupling, dates may
  // decrease when the scheduler switches process), the Smart FIFO trace is
  // identical to the reference trace.
  const auto sorted = [](std::vector<TraceLine> t) {
    std::sort(t.begin(), t.end(), [](const TraceLine& a, const TraceLine& b) {
      return a.date != b.date ? a.date < b.date : a.text < b.text;
    });
    return t;
  };
  const std::vector<TraceLine> ref_sorted = sorted(reference);
  const std::vector<TraceLine> smart_sorted = sorted(smart);
  bool equal = ref_sorted.size() == smart_sorted.size();
  for (std::size_t i = 0; equal && i < ref_sorted.size(); ++i) {
    equal = ref_sorted[i].date == smart_sorted[i].date &&
            ref_sorted[i].text == smart_sorted[i].text;
  }
  std::printf("Smart FIFO trace %s the reference trace\n",
              equal ? "matches" : "DOES NOT match");
  return equal ? 0 : 1;
}
