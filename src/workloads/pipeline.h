// The paper's Fig. 5 benchmark system (paper SIV.B): "a simple system with
// 3 modules (source, transmitter, and sink), connected by 2 FIFOs. 1000
// blocks of 1000 words are transferred, with varying data rates. The FIFO
// depth is controlled by a parameter."
//
// Three implementations are compared, exactly as in the paper:
//   * Untimed -- regular FIFO, no timing annotations at all;
//   * TDless  -- timed, no decoupling: wait() annotations + regular FIFO
//                (one context switch per timing annotation and per access);
//   * TDfull  -- timed with temporal decoupling: inc() annotations + Smart
//                FIFO (context switches only on internal full/empty).
//
// TDless and TDfull must produce identical end-to-end dates; Untimed is the
// speed-of-light reference with no timing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fifo_interface.h"
#include "kernel/kernel.h"

namespace tdsim::workloads {

/// The paper's three Fig. 5 implementations, plus the cautionary fourth of
/// Fig. 3: temporal decoupling with a regular FIFO and no per-access
/// synchronization (quantum-driven syncs only), which is fast but reads
/// "as if data were already available" -- wrong dates.
enum class ModelKind {
  Untimed,
  TDless,
  TDfull,
  NaiveTD,
};

inline const char* to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::Untimed: return "untimed";
    case ModelKind::TDless: return "TDless";
    case ModelKind::TDfull: return "TDfull";
    case ModelKind::NaiveTD: return "naiveTD";
  }
  return "?";
}

/// Workload and timing parameters of the three-module chain.
struct PipelineConfig {
  ModelKind kind = ModelKind::TDfull;
  /// Depth of both FIFOs ("controlled by a parameter").
  std::size_t fifo_depth = 4;
  /// "1000 blocks of 1000 words are transferred".
  std::uint64_t blocks = 1000;
  std::uint64_t words_per_block = 1000;
  /// Base per-word costs of the three stages.
  Time source_per_word = Time(3, TimeUnit::NS);
  Time transmit_per_word = Time(2, TimeUnit::NS);
  Time sink_per_word = Time(3, TimeUnit::NS);
  /// Fixed per-block overhead charged by source and sink (block header
  /// processing).
  Time per_block = Time(20, TimeUnit::NS);
  /// "with varying data rates": when true, the source and sink per-word
  /// costs are scaled per block through a small deterministic cycle in
  /// counter-phase, alternating producer-limited and consumer-limited
  /// phases so both full- and empty-FIFO blocking paths are exercised.
  bool vary_rates = true;
  /// Global quantum installed on the kernel; only the NaiveTD model
  /// synchronizes on it (paper SII.A). Zero disables quantum syncs
  /// entirely (the Fig. 3 extreme).
  Time quantum = Time(1, TimeUnit::US);
};

/// Builds the three processes and two FIFOs in `kernel` according to the
/// configuration, runs to completion, and checks the transfer.
class Pipeline {
 public:
  Pipeline(Kernel& kernel, const PipelineConfig& config);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Runs the kernel until the sink has consumed every word; returns the
  /// simulated end date (zero for the untimed model).
  Time run_to_completion();

  const PipelineConfig& config() const { return config_; }

  std::uint64_t total_words() const {
    return config_.blocks * config_.words_per_block;
  }

  /// Sink-side checksum and its arithmetically computed expectation.
  std::uint32_t checksum() const { return checksum_; }
  std::uint32_t expected_checksum() const;
  bool correct() const { return checksum() == expected_checksum(); }

  /// Date the sink consumed the last word (its local date in decoupled
  /// mode -- equal across TDless/TDfull).
  Time completion_date() const { return completion_date_; }

  FifoInterface<std::uint32_t>& first_fifo() { return *fifo_a_; }
  FifoInterface<std::uint32_t>& second_fifo() { return *fifo_b_; }

 private:
  void source_process();
  void transmit_process();
  void sink_process();
  /// Timing annotation: inc (TDfull), wait (TDless), nothing (Untimed).
  void delay(Time duration);
  /// Per-word cost of stage `base` in block `block` (rate variation).
  Time scaled(Time base, std::uint64_t block, bool is_source) const;

  Kernel& kernel_;
  PipelineConfig config_;
  std::unique_ptr<FifoInterface<std::uint32_t>> fifo_a_;
  std::unique_ptr<FifoInterface<std::uint32_t>> fifo_b_;
  std::uint32_t checksum_ = 0;
  Time completion_date_;
  bool sink_done_ = false;
};

}  // namespace tdsim::workloads
