// Heterogeneous per-domain quanta in one kernel -- the payoff of the
// SyncDomain registry -- and, since PR 3, parallel per-domain execution on
// the kernel's worker pool.
//
// The model is C independent clusters (think: tenant SoCs sharing one
// simulation host). Each cluster owns two *concurrent* domains:
//   * "cpu<c>": worker threads under a fixed tight quantum, each annotating
//     fine-grained steps and polling a cancellation flag raised at a fixed
//     date T -- the observation error is bounded by the CPU quantum
//     (paper SII.A) and must stay constant across the sweep;
//   * "periph<c>": bus threads issuing many fine-grained transactions under
//     the swept quantum -- their quantum-driven context switches collapse
//     as the quantum grows, and wall time falls with them.
// Plus one cross-domain stream per cluster: a periph-domain DMA thread
// feeding a Smart FIFO drained by a cpu-domain consumer. Its completion
// date rides on the FIFO's cell date stamps, not on any quantum, so it must
// be bit-identical on every sweep row (the Smart-FIFO guarantee across a
// domain boundary). The FIFO also links the cluster's two domains into one
// concurrency group -- clusters stay independent groups, which is what the
// --workers sweep parallelizes over.
//
// Usage: bench_multidomain_soc [--cpus N] [--periphs N] [--steps N]
//                              [--stream-words N] [--clusters N]
//                              [--workers LIST] [--work N|heavy]
//                              [--adaptive] [--explain] [--json]
//                              [--table NAME]
//
// --workers takes a comma-separated list of worker counts (0 = sequential
// scheduler); every count must reproduce the same dates, delta counts and
// per-cause sync counts, and the bench fails otherwise. --adaptive appends
// one row per worker count where the periph domains run under an adaptive
// quantum policy seeded from the *worst* fixed quantum of the sweep
// (100 ns): the controller must climb out on its own, bit-identically
// under every worker count, without moving the CPU-domain observation or
// the cross-domain stream date. --work also accepts the keyword "heavy"
// (a compute-bound per-step load, for the wide sweep row CI gates the
// lookahead speedup on). --explain stops the first sweep point mid-run and
// prints Kernel::explain_group()'s answer to "which channels merged each
// domain's concurrency group" (with per-link minimum latencies) plus each
// domain's derived per-group lookahead bound, then exits. --json writes
// BENCH_multidomain_soc.json (or BENCH_multidomain_soc_<NAME>.json under
// --table NAME, so differently shaped sweeps keep separate baselines): one
// row per (workers, sweep point) with per-domain-kind per-cause sync
// counts summed over clusters.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/quantum_controller.h"
#include "kernel/sync_domain.h"

namespace {

using tdsim::DomainStats;
using tdsim::Kernel;
using tdsim::QuantumPolicy;
using tdsim::SmartFifo;
using tdsim::SyncCause;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using tdsim::TimeUnit;
using namespace tdsim::time_literals;

struct BenchConfig {
  std::size_t cpu_workers = 2;
  std::size_t periph_masters = 4;
  std::uint64_t steps = 200'000;      ///< fine-grained steps per process
  std::uint64_t stream_words = 20'000;
  std::size_t clusters = 1;
  /// Modeled computation per fine-grained step (iterations of an integer
  /// hash). Zero keeps the historical pure-scheduler profile; the CI
  /// workers gate uses a few hundred so a phase carries enough work for
  /// the pool's horizon barriers to amortize.
  std::uint64_t work = 0;
  Time cpu_step = 10_ns;
  Time periph_step = 10_ns;
  Time cpu_quantum = 100_ns;          ///< fixed: CPU accuracy bound
};

/// Deterministic stand-in for the computation a real CPU/bus model would
/// do per step; the result is folded into a sink so it cannot be
/// optimized away.
std::uint64_t spin_work(std::uint64_t seed, std::uint64_t iters) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return x;
}

/// Per-domain-kind sync books summed over all clusters.
struct KindStats {
  std::uint64_t sync_requests = 0;
  std::uint64_t syncs_elided = 0;
  std::uint64_t syncs_quantum = 0;
  std::uint64_t syncs_fifo = 0;
  std::uint64_t quantum_adjustments = 0;

  void add(const DomainStats& d) {
    sync_requests += d.sync_requests;
    syncs_elided += d.syncs_elided;
    syncs_quantum += d.syncs(SyncCause::Quantum);
    syncs_fifo += d.syncs(SyncCause::FifoFull) + d.syncs(SyncCause::FifoEmpty);
    quantum_adjustments += d.quantum_adjustments;
  }

  bool operator==(const KindStats& o) const {
    return sync_requests == o.sync_requests && syncs_elided == o.syncs_elided &&
           syncs_quantum == o.syncs_quantum && syncs_fifo == o.syncs_fifo &&
           quantum_adjustments == o.quantum_adjustments;
  }
};

struct RunResult {
  double wall_seconds = 0;
  Time cpu_error_max;        ///< worst cancellation-observation error (cpu)
  Time stream_done_date;     ///< latest cross-domain stream completion
  bool stream_ok = false;
  KindStats cpu;
  KindStats periph;
  /// Final quantum of the periph domains after the run (all clusters are
  /// symmetric, so the controller must land every one on the same value;
  /// checked below). Equals the swept quantum on fixed rows.
  Time periph_final_quantum;
  bool final_quanta_uniform = true;
  std::uint64_t context_switches = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t parallel_rounds = 0;
  std::uint64_t horizon_waits = 0;
  /// Timed waves executed inside lookahead extensions (free-running
  /// groups). Deterministic per worker count; zero sequentially.
  std::uint64_t lookahead_advances = 0;

  /// Everything the parallel scheduler must reproduce bit-exactly.
  bool deterministically_equal(const RunResult& o) const {
    return cpu_error_max == o.cpu_error_max &&
           stream_done_date == o.stream_done_date && stream_ok == o.stream_ok &&
           cpu == o.cpu && periph == o.periph &&
           periph_final_quantum == o.periph_final_quantum &&
           final_quanta_uniform == o.final_quanta_uniform &&
           context_switches == o.context_switches &&
           delta_cycles == o.delta_cycles;
  }
};

RunResult run_once(const BenchConfig& config, Time periph_quantum,
                   std::size_t workers,
                   const QuantumPolicy* periph_policy = nullptr,
                   bool explain = false) {
  Kernel kernel;
  kernel.set_workers(workers);

  struct Cluster {
    SyncDomain* cpu = nullptr;
    SyncDomain* periph = nullptr;
    bool cancelled = false;
    std::vector<Time> observed;
    std::unique_ptr<SmartFifo<std::uint32_t>> stream;
    std::uint32_t checksum = 0;
    Time stream_done;
    /// Per-cluster spin_work sink (group-private, unlike a global one).
    std::uint64_t work_acc = 0;
  };
  std::vector<Cluster> clusters(config.clusters);

  // The cancellation pattern of paper SII.A, confined to each cluster's
  // CPU domain: just past a quantum boundary is the worst case.
  const Time cancel_at =
      Time(config.steps / 2 * config.cpu_step.ps() / 1000 + 1, TimeUnit::NS);

  for (std::size_t c = 0; c < clusters.size(); ++c) {
    Cluster& cluster = clusters[c];
    const std::string suffix = std::to_string(c);
    // Concurrent domains: each cluster forms its own concurrency group
    // (the stream FIFO links cpu<c> and periph<c> back together), so
    // independent clusters run on separate workers under --workers >= 2.
    cluster.cpu = &kernel.create_domain({.name = "cpu" + suffix,
                                         .quantum = config.cpu_quantum,
                                         .concurrent = true});
    tdsim::DomainOptions periph_options{.name = "periph" + suffix,
                                 .quantum = periph_quantum,
                                 .concurrent = true};
    if (periph_policy != nullptr) {
      periph_options.policy = *periph_policy;
    }
    cluster.periph = &kernel.create_domain(periph_options);
    cluster.observed.resize(config.cpu_workers);
    std::uint64_t* work_sink = &cluster.work_acc;
    cluster.stream = std::make_unique<SmartFifo<std::uint32_t>>(
        kernel, "dma_stream" + suffix, 16);
    // Depth x the cpu-domain quantum bounds how fast stream traffic can
    // cross the link; --explain shows it on the dma_stream line. The link
    // is intra-group here (the FIFO merges the cluster's two domains), so
    // the declaration is purely diagnostic.
    cluster.stream->declare_cell_latency(config.cpu_quantum);

    // The canceller shares a plain flag with the cpu workers, so it lives
    // in the cpu domain (same group -- no channel would see the coupling).
    ThreadOptions cancel_opts;
    cancel_opts.domain = cluster.cpu;
    kernel.spawn_thread("canceller" + suffix,
                        [&kernel, &cluster, cancel_at] {
      kernel.wait(cancel_at);
      cluster.cancelled = true;
    }, cancel_opts);

    for (std::size_t w = 0; w < config.cpu_workers; ++w) {
      ThreadOptions opts;
      opts.domain = cluster.cpu;
      kernel.spawn_thread("cpu" + suffix + "_" + std::to_string(w),
                          [&kernel, &config, &cluster, w, work_sink] {
        std::uint64_t acc = w;
        for (std::uint64_t i = 0; i < config.steps; ++i) {
          acc = spin_work(acc, config.work);
          kernel.current_domain().inc_and_sync_if_needed(config.cpu_step);
          if (cluster.cancelled) {
            cluster.observed[w] = kernel.current_domain().local_time_stamp();
            *work_sink += acc;
            return;
          }
        }
        *work_sink += acc;
      }, opts);
    }

    // The slow peripheral bus: masters annotating fine-grained transaction
    // delays under the swept quantum. Their syncs are pure overhead here --
    // nothing in the model observes them below the quantum granularity.
    for (std::size_t m = 0; m < config.periph_masters; ++m) {
      ThreadOptions opts;
      opts.domain = cluster.periph;
      kernel.spawn_thread("periph" + suffix + "_" + std::to_string(m),
                          [&kernel, &config, m, work_sink] {
        std::uint64_t acc = m;
        for (std::uint64_t i = 0; i < config.steps; ++i) {
          acc = spin_work(acc, config.work);
          kernel.current_domain().inc_and_sync_if_needed(config.periph_step);
        }
        *work_sink += acc;
      }, opts);
    }

    // Cross-domain stream: periph-domain DMA -> Smart FIFO -> cpu-domain
    // consumer. Quantum-independent by construction.
    ThreadOptions dma_opts;
    dma_opts.domain = cluster.periph;
    kernel.spawn_thread("dma" + suffix, [&kernel, &config, &cluster] {
      for (std::uint64_t i = 0; i < config.stream_words; ++i) {
        kernel.current_domain().inc(3_ns);
        cluster.stream->write(static_cast<std::uint32_t>(i));
      }
    }, dma_opts);
    ThreadOptions sink_opts;
    sink_opts.domain = cluster.cpu;
    kernel.spawn_thread("stream_sink" + suffix,
                        [&kernel, &config, &cluster] {
      for (std::uint64_t i = 0; i < config.stream_words; ++i) {
        cluster.checksum = cluster.checksum * 31 + cluster.stream->read();
        kernel.current_domain().inc(4_ns);
      }
      cluster.stream_done = kernel.current_domain().local_time_stamp();
    }, sink_opts);
  }

  const auto start = std::chrono::steady_clock::now();
  if (explain) {
    // Stop mid-run so the timed queue is still populated: the lookahead
    // bounds below are computed from live queue state and would all be
    // trivial after the run drains it.
    kernel.run(cancel_at);
  } else {
    kernel.run();
  }
  const auto stop = std::chrono::steady_clock::now();

  if (explain) {
    // "Why is my model not parallel": name the channels that merged each
    // domain's concurrency group (discovered during the run), each with
    // its declared minimum latency, plus the conservative per-group
    // lookahead bound derived from the decoupled links (unbounded when no
    // inbound link constrains the group).
    for (const auto& domain : kernel.domains()) {
      const std::vector<std::string> chain = kernel.explain_group(*domain);
      std::printf("group of '%s' (root %zu):%s\n", domain->name().c_str(),
                  kernel.domain_group(*domain), chain.empty() ? " alone" : "");
      for (const std::string& line : chain) {
        std::printf("  - %s\n", line.c_str());
      }
      const std::optional<tdsim::Time> bound =
          kernel.lookahead_bound(*domain);
      std::printf("  lookahead bound: %s\n",
                  bound.has_value() ? bound->to_string().c_str()
                                    : "unbounded");
    }
  }

  std::uint32_t expected = 0;
  for (std::uint64_t i = 0; i < config.stream_words; ++i) {
    expected = expected * 31 + static_cast<std::uint32_t>(i);
  }
  static volatile std::uint64_t global_work_sink = 0;
  for (const Cluster& cluster : clusters) {
    global_work_sink = global_work_sink + cluster.work_acc;
  }

  RunResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.stream_ok = true;
  for (const Cluster& cluster : clusters) {
    for (Time t : cluster.observed) {
      const Time error = t - cancel_at;
      if (error > result.cpu_error_max) {
        result.cpu_error_max = error;
      }
    }
    if (cluster.stream_done > result.stream_done_date) {
      result.stream_done_date = cluster.stream_done;
    }
    result.stream_ok = result.stream_ok && cluster.checksum == expected;
    result.cpu.add(kernel.stats().domains[cluster.cpu->id()]);
    result.periph.add(kernel.stats().domains[cluster.periph->id()]);
    if (&cluster == &clusters.front()) {
      result.periph_final_quantum = cluster.periph->quantum();
    } else if (cluster.periph->quantum() != result.periph_final_quantum) {
      // Symmetric clusters must make symmetric decisions.
      result.final_quanta_uniform = false;
    }
  }
  result.context_switches = kernel.stats().context_switches;
  result.delta_cycles = kernel.stats().delta_cycles;
  result.parallel_rounds = kernel.stats().parallel_rounds;
  result.horizon_waits = kernel.stats().horizon_waits;
  result.lookahead_advances = kernel.stats().lookahead_advances;
  return result;
}

std::vector<std::size_t> parse_workers_list(const char* arg) {
  std::vector<std::size_t> workers;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    workers.push_back(std::strtoull(p, &end, 10));
    if (end == p) {
      return {};
    }
    p = (*end == ',') ? end + 1 : end;
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  std::vector<std::size_t> workers_sweep = {0};
  bool emit_json = false;
  bool run_adaptive = false;
  bool explain = false;
  std::string table_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      config.cpu_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--periphs") == 0 && i + 1 < argc) {
      config.periph_masters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      config.steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stream-words") == 0 && i + 1 < argc) {
      config.stream_words = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--clusters") == 0 && i + 1 < argc) {
      config.clusters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers_sweep = parse_workers_list(argv[++i]);
    } else if (std::strcmp(argv[i], "--work") == 0 && i + 1 < argc) {
      // "heavy" is the canonical compute-bound load of the wide sweep row
      // (see README and bench/baselines/README.md).
      config.work = std::strcmp(argv[i + 1], "heavy") == 0
                        ? 2000
                        : std::strtoull(argv[i + 1], nullptr, 10);
      ++i;
    } else if (std::strcmp(argv[i], "--table") == 0 && i + 1 < argc) {
      table_name = argv[++i];
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      run_adaptive = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cpus N] [--periphs N] [--steps N] "
                   "[--stream-words N] [--clusters N] [--workers LIST] "
                   "[--work N|heavy] [--adaptive] [--explain] [--json] "
                   "[--table NAME]\n",
                   argv[0]);
      return 2;
    }
  }
  if (workers_sweep.empty() || config.clusters == 0) {
    std::fprintf(stderr, "invalid --workers/--clusters\n");
    return 2;
  }
  if (explain) {
    // One run of the first sweep point, then the group explanations.
    run_once(config, 100_ns, workers_sweep.front(), nullptr,
             /*explain=*/true);
    return 0;
  }

  std::printf("Per-domain quantum sweep: %zu clusters x (%zu cpu workers "
              "(quantum %s), %zu peripheral masters), %llu steps, %llu "
              "stream words\n\n",
              config.clusters, config.cpu_workers,
              config.cpu_quantum.to_string().c_str(), config.periph_masters,
              static_cast<unsigned long long>(config.steps),
              static_cast<unsigned long long>(config.stream_words));
  std::printf("%7s | %16s | %12s | %14s | %14s | %16s | %10s\n", "workers",
              "periph quantum", "cpu q-syncs", "periph q-syncs",
              "cpu error[ns]", "stream done[ps]", "wall[s]");

  benchjson::Report report(table_name.empty()
                               ? "multidomain_soc"
                               : "multidomain_soc_" + table_name);
  const std::vector<Time> sweep = {100_ns, 1_us, 10_us, 100_us};
  // The adaptive row starts from the sweep's worst (smallest) quantum and
  // may roam the sweep's own range. The periph domains carry a mix of
  // pure churn (the masters) and Smart-FIFO stream syncs (the DMA), whose
  // dates ride on cell stamps regardless of quantum -- so churn is the
  // growth signal even when it is only a majority, not near-total, of the
  // window: grow_share_pct is lowered accordingly, letting the controller
  // converge to the sweep's cheap end instead of stalling mid-range.
  QuantumPolicy adaptive_policy;
  adaptive_policy.min_quantum = sweep.front();
  adaptive_policy.max_quantum = sweep.back();
  adaptive_policy.grow_share_pct = 60;
  // A converged periph domain syncs rarely (that is the point), so the
  // default 32-sync decision window would stop ripening mid-run and
  // freeze the quantum at whatever the stream phase settled on; a short
  // window keeps the controller deciding in the sparse-sync regime.
  adaptive_policy.min_syncs_per_decision = 8;
  struct SweepPoint {
    Time quantum;
    bool adaptive;
  };
  std::vector<SweepPoint> points;
  for (Time q : sweep) {
    points.push_back({q, false});
  }
  if (run_adaptive) {
    points.push_back({sweep.front(), true});
  }
  bool ok = true;
  // Reference results per sweep point: every worker count must reproduce
  // the first one's dates, delta counts and per-cause sync counts exactly.
  std::vector<RunResult> reference(points.size());
  for (std::size_t w = 0; w < workers_sweep.size(); ++w) {
    const std::size_t workers = workers_sweep[w];
    Time first_error_max;
    Time first_stream_done;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& point = points[i];
      const RunResult r =
          run_once(config, point.quantum, workers,
                   point.adaptive ? &adaptive_policy : nullptr);
      if (i == 0) {
        first_error_max = r.cpu_error_max;
        first_stream_done = r.stream_done_date;
      }
      if (w == 0) {
        reference[i] = r;
      } else if (!r.deterministically_equal(reference[i])) {
        std::fprintf(stderr,
                     "ERROR: workers=%zu diverged from workers=%zu at "
                     "periph quantum %s%s\n",
                     workers, workers_sweep[0],
                     point.quantum.to_string().c_str(),
                     point.adaptive ? " (adaptive)" : "");
        ok = false;
      }
      // The headline claims: CPU-domain accuracy and the cross-domain
      // stream dates are invariant under the peripheral quantum -- the
      // adaptive rows included (the controller may only move speed).
      ok = ok && r.stream_ok && r.cpu_error_max == first_error_max &&
           r.stream_done_date == first_stream_done &&
           r.final_quanta_uniform;
      char quantum_label[32];
      std::snprintf(quantum_label, sizeof(quantum_label), "%s%s",
                    point.adaptive ? "adaptive " : "",
                    point.quantum.to_string().c_str());
      std::printf("%7zu | %16s | %12llu | %14llu | %14.0f | %16llu | "
                  "%10.3f%s\n",
                  workers, quantum_label,
                  static_cast<unsigned long long>(r.cpu.syncs_quantum),
                  static_cast<unsigned long long>(r.periph.syncs_quantum),
                  static_cast<double>(r.cpu_error_max.ps()) / 1e3,
                  static_cast<unsigned long long>(r.stream_done_date.ps()),
                  r.wall_seconds, r.stream_ok ? "" : "  CHECKSUM MISMATCH");
      if (point.adaptive) {
        std::printf("%7s > periph quantum converged %s -> %s in %llu "
                    "adjustments\n",
                    "", point.quantum.to_string().c_str(),
                    r.periph_final_quantum.to_string().c_str(),
                    static_cast<unsigned long long>(
                        r.periph.quantum_adjustments));
      }
      if (emit_json) {
        benchjson::Row& row = report.row();
        row.add("workers", static_cast<std::uint64_t>(workers))
            .add("clusters", static_cast<std::uint64_t>(config.clusters))
            .add("adaptive",
                 static_cast<std::uint64_t>(point.adaptive ? 1 : 0))
            .add("cpu_quantum_ps", config.cpu_quantum.ps())
            .add("periph_quantum_ps", point.quantum.ps())
            .add("periph_final_quantum_ps", r.periph_final_quantum.ps())
            .add("quantum_adjustments", r.periph.quantum_adjustments)
            .add("cpu_error_ns",
                 static_cast<double>(r.cpu_error_max.ps()) / 1e3)
            .add("stream_done_ps", r.stream_done_date.ps())
            .add("context_switches", r.context_switches)
            .add("delta_cycles", r.delta_cycles)
            .add("parallel_rounds", r.parallel_rounds)
            .add("horizon_waits", r.horizon_waits)
            .add("lookahead_advances", r.lookahead_advances)
            .add("wall_seconds", r.wall_seconds);
        struct {
          const char* prefix;
          const KindStats* stats;
        } kinds[] = {{"cpu", &r.cpu}, {"periph", &r.periph}};
        for (const auto& kind : kinds) {
          const std::string prefix = kind.prefix;
          row.add(prefix + "_sync_requests", kind.stats->sync_requests)
              .add(prefix + "_syncs_elided", kind.stats->syncs_elided)
              .add(prefix + "_syncs_quantum", kind.stats->syncs_quantum)
              .add(prefix + "_syncs_fifo", kind.stats->syncs_fifo);
        }
      }
    }
  }

  if (emit_json && !report.write()) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "ERROR: a sweep or worker-count row moved a CPU-domain "
                 "observation, a cross-domain stream date, or a "
                 "deterministic counter\n");
    return 1;
  }
  std::printf("\ncpu-domain accuracy, cross-domain stream dates and "
              "deterministic counters invariant across the sweep%s: yes\n",
              workers_sweep.size() > 1 ? " and all worker counts" : "");
  return 0;
}
