// Adaptive per-domain quantum control -- the feedback tuner that closes
// the paper's speed/accuracy loop.
//
// The central tradeoff of quantum-based temporal decoupling is the quantum
// size: a large quantum amortizes synchronization cost, a small one
// preserves timing fidelity, and the right value differs per subsystem and
// per phase of the workload. A SyncDomain that opts into a QuantumPolicy
// (Kernel::set_quantum_policy, or create_domain(..., policy)) has its
// quantum re-evaluated by the kernel-owned QuantumController at every
// synchronization horizon -- the timed-wave boundary where all concurrency
// groups are quiescent and the per-group counter buffers have been merged.
//
// Decisions read *deterministic* inputs only:
//
//   * the domain's per-cause sync deltas since its last decision: shrink
//     when accuracy-relevant causes (Smart-FIFO full/empty, explicit sync
//     points, monitor accesses -- see accuracy_relevant()) dominate, grow
//     on pure SyncCause::Quantum churn;
//   * the parallel cost signal: when two or more concurrency groups are
//     live, the signal compares *group* fronts (a group's front is the
//     front of its furthest-behind live domain -- the one gating it;
//     domains inside one group are serialized anyway, so intra-group skew
//     is not a parallelism cost). The domain gating the laggard group --
//     the one every horizon waits on -- gets shrink pressure and domains
//     of far-ahead waiter groups get grow pressure. Computed from the
//     horizon execution fronts and the (deterministic) live group count:
//     the workers-invariant analog of KernelStats::horizon_waits, which
//     only accrues in parallel mode.
//
// Because every input is identical under any worker count (the parallel
// scheduler's bit-exactness guarantee) and the decision point is a fixed
// place in the deterministic schedule, adaptive runs are bit-reproducible
// across repeated runs and across workers=0/1/N -- tests/
// test_adaptive_quantum.cpp enforces exactly that.
//
// The decision rule is deliberately boring: integer share thresholds with
// hysteresis (a direction must be confirmed on consecutive decisions
// before the first step applies), per-domain min/max clamps, and an
// exponential step schedule (consecutive same-direction steps escalate
// x2 -> x4 -> x8) so a badly seeded quantum converges in a handful of
// decisions. Every decision -- applied, clamped or held -- is recorded in
// the domain's QuantumDecision trace; applied changes additionally count
// in DomainStats::quantum_adjustments.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/stats.h"
#include "kernel/time.h"

namespace tdsim {

class Kernel;
class SyncDomain;

/// Per-domain knobs of the adaptive quantum controller. The defaults suit
/// a fine-annotation model (10 ns .. 100 us quanta); benches and tests
/// narrow the clamps to the range they sweep.
struct QuantumPolicy {
  /// Hard clamps of the adaptive quantum. min_quantum must be non-zero (a
  /// zero quantum means "sync at every annotation", which leaves the tuner
  /// nothing to scale) and <= max_quantum; attaching a policy immediately
  /// clamps the domain's quantum into this range.
  Time min_quantum = Time(10, TimeUnit::NS);
  Time max_quantum = Time(100, TimeUnit::US);

  /// Decision cadence: a horizon only evaluates a domain once it has
  /// performed this many syncs since its previous decision, so every
  /// decision sees a statistically meaningful per-cause window.
  std::uint64_t min_syncs_per_decision = 32;

  /// Shrink when accuracy-relevant causes reach this percentage of the
  /// window's performed syncs (integer percent -- decisions must not
  /// depend on floating-point rounding).
  unsigned shrink_share_pct = 50;

  /// Grow when SyncCause::Quantum churn reaches this percentage.
  unsigned grow_share_pct = 90;

  /// Hysteresis: consecutive decisions that must agree on a direction
  /// before the first step in that direction is applied. 1 disables
  /// confirmation.
  unsigned confirm_decisions = 2;

  /// Exponential step schedule: the k-th consecutive applied step in one
  /// direction scales the quantum by 2^min(k, max_step_exp).
  unsigned max_step_exp = 3;

  /// Enables the parallel cost signal (front-lag balancing between live
  /// concurrency groups). Off leaves only the per-cause shares.
  bool balance_groups = true;

  /// Front-lag threshold for the balancing signal, as a multiple of the
  /// domain's current quantum: a spread below this is considered noise.
  unsigned balance_lag_quanta = 4;
};

enum class QuantumDirection : std::uint8_t { Hold, Grow, Shrink };

/// Default depth of the per-domain decision-trace ring: the controller
/// keeps the last this-many decisions per domain (Kernel::decision_trace /
/// SyncDomain::decision_trace), enough to see a full confirm + escalate +
/// clamp episode without unbounded growth. Runtime-adjustable via
/// Kernel::set_quantum_trace_depth (offline phase mining wants whole
/// episodes, not the last eight records).
constexpr std::size_t kQuantumTraceDepth = 8;

constexpr const char* to_string(QuantumDirection d) {
  switch (d) {
    case QuantumDirection::Hold: return "hold";
    case QuantumDirection::Grow: return "grow";
    case QuantumDirection::Shrink: return "shrink";
  }
  return "?";
}

/// One controller decision -- the per-domain trace record handed out by
/// Kernel::last_quantum_decision() / SyncDomain::last_quantum_decision().
struct QuantumDecision {
  /// 1-based decision number within the domain.
  std::uint64_t serial = 0;
  /// Simulated date of the horizon that made the decision.
  Time at;
  Time old_quantum;
  Time new_quantum;
  QuantumDirection direction = QuantumDirection::Hold;
  /// Static string naming the dominant signal ("quantum churn",
  /// "accuracy-relevant syncs", "lagging group", "waiting group",
  /// "steady", "clamped", "awaiting confirmation").
  const char* reason = "";
  /// Input window behind the decision.
  std::uint64_t syncs_quantum = 0;
  std::uint64_t syncs_accuracy = 0;
  std::uint64_t syncs_total = 0;
};

/// Kernel-owned registry of per-domain quantum policies plus the decision
/// procedure. Created lazily by the first Kernel::set_quantum_policy();
/// the kernel calls on_horizon() from the scheduler loop at every
/// timed-wave boundary while at least one policy is attached.
class QuantumController {
 public:
  explicit QuantumController(Kernel& kernel) : kernel_(kernel) {}
  QuantumController(const QuantumController&) = delete;
  QuantumController& operator=(const QuantumController&) = delete;

  void set_policy(SyncDomain& domain, const QuantumPolicy& policy);
  void clear_policy(SyncDomain& domain);

  /// The policy attached to `domain`, or null. Stable for the kernel's
  /// lifetime (per-domain state lives in a deque): attaching policies to
  /// other domains later does not invalidate the pointer.
  const QuantumPolicy* policy(const SyncDomain& domain) const;

  /// The domain's most recent decision, or null before the first one.
  /// Same lifetime guarantee as policy() -- except across
  /// set_trace_depth(), which reallocates the rings; the pointee is
  /// rewritten as later decisions rotate through the trace ring.
  const QuantumDecision* last_decision(const SyncDomain& domain) const;

  /// The domain's recent decisions, oldest first: the last trace_depth()
  /// of them (fewer early on). Empty for a domain that never had a policy
  /// or has no decisions yet.
  std::vector<QuantumDecision> decision_trace(const SyncDomain& domain) const;

  /// Resizes every domain's decision-trace ring (default
  /// kQuantumTraceDepth), preserving the newest min(old, new) decisions
  /// of each. Invalidates pointers previously returned by
  /// last_decision(). depth must be >= 1.
  void set_trace_depth(std::size_t depth);
  std::size_t trace_depth() const { return trace_depth_; }

  bool any_active() const { return active_count_ > 0; }

  /// Re-evaluates every policy-carrying domain against the horizon-merged
  /// books. `stats` is the kernel's live KernelStats (writable: applied
  /// adjustments count in the owning domain's entry and mark the
  /// aggregates stale); `now` the horizon date. Main-thread only, with no
  /// parallel round in flight.
  void on_horizon(KernelStats& stats, Time now);

 private:
  struct DomainState {
    bool active = false;
    QuantumPolicy policy;
    /// Per-cause counts as of the previous decision (the window base).
    std::array<std::uint64_t, kSyncCauseCount> snapshot{};
    /// Set by on_horizon()'s ripeness prepass, consumed by decide() --
    /// the single place the min_syncs_per_decision rule is evaluated.
    bool window_ripe = false;
    /// Direction the recent decisions have been leaning (hysteresis).
    QuantumDirection pending = QuantumDirection::Hold;
    unsigned pending_count = 0;
    /// Consecutive applied steps in pending's direction (step schedule).
    unsigned streak = 0;
    /// 1-based decision counter; survives ring rotation (QuantumDecision
    /// serials must keep counting after old records are recycled).
    std::uint64_t serial = 0;
    /// Decision-trace ring, written at trace_next; the last trace_count
    /// slots (ending at trace_next - 1) are valid. Sized to the
    /// controller's trace depth when the domain's policy attaches (empty
    /// for never-attached domains); resized in place by
    /// set_trace_depth().
    std::vector<QuantumDecision> trace;
    std::size_t trace_next = 0;
    std::size_t trace_count = 0;

    /// Rotates in and zeroes a fresh trace slot; the caller fills it.
    QuantumDecision& push_decision() {
      QuantumDecision& decision = trace[trace_next];
      trace_next = (trace_next + 1) % trace.size();
      if (trace_count < trace.size()) {
        trace_count++;
      }
      decision = QuantumDecision{};
      return decision;
    }

    const QuantumDecision* newest_decision() const {
      if (trace_count == 0) {
        return nullptr;
      }
      return &trace[(trace_next + trace.size() - 1) % trace.size()];
    }
  };

  /// The horizon's group-front comparison, computed once for all ripe
  /// balancing domains (invalid when fewer than two groups are live or no
  /// ripe domain wants balancing).
  struct BalanceSignal {
    bool valid = false;
    Time min_group_front;
    Time max_group_front;
  };

  void decide(SyncDomain& domain, DomainState& state, KernelStats& stats,
              DomainStats& books, Time now, const BalanceSignal& balance);

  DomainState& state_for(const SyncDomain& domain);

  Kernel& kernel_;
  /// Per-domain state, indexed by domain id. A deque so the
  /// QuantumPolicy / QuantumDecision pointers handed out by policy() /
  /// last_decision() stay valid when later set_policy calls grow it.
  std::deque<DomainState> states_;
  std::size_t active_count_ = 0;
  /// See set_trace_depth(); newly attached policies size their ring to
  /// this.
  std::size_t trace_depth_ = kQuantumTraceDepth;
  /// Scratch for the per-horizon group-front computation (reused so ripe
  /// horizons allocate nothing in steady state).
  std::vector<std::size_t> group_roots_scratch_;
  std::vector<Time> group_fronts_scratch_;
};

}  // namespace tdsim
