// Store-and-forward XY router modeled as a single method process (no
// context switches): per-output round-robin arbitration over the input
// links, a per-output in-flight stage modeling the forwarding latency, and
// backpressure through the bounded output links.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "core/peq.h"
#include "kernel/fifo.h"
#include "kernel/module.h"
#include "noc/packet.h"

namespace tdsim::noc {

class Router : public Module {
 public:
  struct Timing {
    /// Fixed per-hop cost charged to every packet.
    Time header_latency = 5_ns;
    /// Additional cost per payload word.
    Time word_latency = 1_ns;
  };

  Router(Module& parent, const std::string& name, std::uint16_t x,
         std::uint16_t y, std::uint16_t columns, std::uint16_t rows,
         Timing timing);

  /// Wires `link` as the input (output) of this router on `port`.
  /// All connected ports must be wired before elaborate().
  void connect_input(Port port, Fifo<Packet>& link);
  void connect_output(Port port, Fifo<Packet>& link);

  /// Spawns the router method; call once after wiring.
  void elaborate();

  std::uint16_t x() const { return x_; }
  std::uint16_t y() const { return y_; }
  std::uint64_t forwarded() const { return forwarded_; }

  /// XY dimension-ordered routing decision for `dest` seen from this
  /// router.
  Port route(NodeId dest) const;

 private:
  void step();
  bool try_deliver(std::size_t port_index);
  bool try_arbitrate(std::size_t out_index);

  std::uint16_t x_, y_, columns_, rows_;
  Timing timing_;

  std::array<Fifo<Packet>*, kPortCount> inputs_{};
  std::array<Fifo<Packet>*, kPortCount> outputs_{};
  /// One in-flight stage per output port, modeling the forwarding latency.
  std::array<std::optional<PeqWithGet<Packet>>, kPortCount> in_flight_;
  /// Packet popped from the in-flight stage but stalled on a full output
  /// link (backpressure).
  std::array<std::optional<Packet>, kPortCount> staged_;
  /// Round-robin arbitration pointer per output port.
  std::array<std::size_t, kPortCount> rr_next_{};

  std::uint64_t forwarded_ = 0;
  bool elaborated_ = false;
};

}  // namespace tdsim::noc
