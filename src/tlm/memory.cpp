#include "tlm/memory.h"

#include <cstring>

namespace tdsim::tlm {

Memory::Memory(std::string name, std::size_t size, Time word_latency)
    : name_(std::move(name)), word_latency_(word_latency), storage_(size) {}

void Memory::b_transport(Payload& payload, Time& delay) {
  if (payload.address + payload.length > storage_.size() ||
      payload.data == nullptr) {
    payload.response = Response::AddressError;
    return;
  }
  const std::uint64_t words = (payload.length + 3) / 4;
  delay += word_latency_ * words;
  switch (payload.command) {
    case Command::Read:
      std::memcpy(payload.data, storage_.data() + payload.address,
                  payload.length);
      reads_++;
      break;
    case Command::Write:
      std::memcpy(storage_.data() + payload.address, payload.data,
                  payload.length);
      writes_++;
      break;
  }
  payload.response = Response::Ok;
}

}  // namespace tdsim::tlm
