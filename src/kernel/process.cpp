#include "kernel/process.h"

#include <cstdint>

#include "kernel/fiber_sanitizer.h"
#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {

Process::Process(Kernel& kernel, std::string name, ProcessKind kind,
                 std::function<void()> body, std::size_t stack_size,
                 std::uint64_t id)
    : kernel_(kernel),
      name_(std::move(name)),
      kind_(kind),
      body_(std::move(body)),
      id_(id),
      stack_size_(kind == ProcessKind::Thread ? stack_size : 0) {
  if (kind_ == ProcessKind::Thread) {
    stack_ = std::make_unique<char[]>(stack_size_);
  }
}

Process::~Process() = default;

void Process::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Process*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  // First time on this fiber stack; we came from the scheduler stack,
  // whose bounds the kernel needs for the switches back.
  fiber::finish_switch(nullptr, &self->kernel_.scheduler_stack_bottom_,
                       &self->kernel_.scheduler_stack_size_);
  try {
    self->body_();
  } catch (const ProcessKilled&) {
    // Normal teardown path: stack unwound, nothing to report.
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = ProcessState::Terminated;
  // Hand control back to the scheduler; never returns here again, so the
  // null save lets ASan release this fiber's fake stack.
  fiber::start_switch(nullptr, self->kernel_.scheduler_stack_bottom_,
                      self->kernel_.scheduler_stack_size_);
  swapcontext(&self->context_, &self->kernel_.scheduler_context_);
}

void Process::start_thread_context(ucontext_t* return_ctx) {
  if (getcontext(&context_) != 0) {
    Report::error("getcontext failed for process " + name_);
  }
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_size_;
  context_.uc_link = return_ctx;
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Process::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
  thread_started_ = true;
}

}  // namespace tdsim
