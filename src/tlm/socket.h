// Initiator-side socket: binding, word-level convenience accessors, and
// the loosely-timed decoupling pattern (accumulate annotated delay into the
// initiator's local time, synchronize on quantum overflow).
#pragma once

#include <cstdint>
#include <string>

#include "kernel/report.h"
#include "kernel/sync_domain.h"
#include "tlm/payload.h"

namespace tdsim::tlm {

class InitiatorSocket {
 public:
  explicit InitiatorSocket(std::string name) : name_(std::move(name)) {}

  /// Binds to the transport target (bus or device). Must be called exactly
  /// once before simulation.
  void bind(TransportIf& target) {
    if (target_ != nullptr) {
      Report::error("InitiatorSocket " + name_ + ": already bound");
    }
    target_ = &target;
  }

  bool is_bound() const { return target_ != nullptr; }

  /// Raw transport; the caller manages the delay annotation.
  void b_transport(Payload& payload, Time& delay) {
    if (target_ == nullptr) {
      Report::error("InitiatorSocket " + name_ + ": not bound");
    }
    target_->b_transport(payload, delay);
    transactions_++;
  }

  /// Loosely-timed 32-bit read at `address`: the annotated delay is folded
  /// into the caller's local time and a sync happens only when the global
  /// quantum is exhausted.
  std::uint32_t read32(std::uint64_t address) {
    std::uint32_t value = 0;
    Payload p;
    p.command = Command::Read;
    p.address = address;
    p.data = reinterpret_cast<std::uint8_t*>(&value);
    p.length = sizeof(value);
    Time delay;
    b_transport(p, delay);
    check(p, address);
    fold_delay(delay);
    return value;
  }

  /// Loosely-timed 32-bit write; see read32.
  void write32(std::uint64_t address, std::uint32_t value) {
    Payload p;
    p.command = Command::Write;
    p.address = address;
    p.data = reinterpret_cast<std::uint8_t*>(&value);
    p.length = sizeof(value);
    Time delay;
    b_transport(p, delay);
    check(p, address);
    fold_delay(delay);
  }

  const std::string& name() const { return name_; }
  std::uint64_t transactions() const { return transactions_; }

 private:
  /// The loosely-timed decoupling pattern: fold the annotated delay into
  /// the initiator's local time, synchronize only on quantum overflow.
  static void fold_delay(Time delay) {
    current_sync_domain().inc_and_sync_if_needed(delay);
  }

  void check(const Payload& p, std::uint64_t address) const {
    if (!p.ok()) {
      Report::error("InitiatorSocket " + name_ + ": access at address " +
                    std::to_string(address) + " failed: " +
                    to_string(p.response));
    }
  }

  std::string name_;
  TransportIf* target_ = nullptr;
  std::uint64_t transactions_ = 0;
};

}  // namespace tdsim::tlm
