// Signal channel: evaluate/update semantics and value-changed events.
#include "kernel/signal.h"

#include <gtest/gtest.h>

#include <vector>

#include "kernel/kernel.h"

namespace tdsim {
namespace {

TEST(Signal, InitialValue) {
  Kernel k;
  Signal<int> s(k, "s", 7);
  EXPECT_EQ(s.read(), 7);
}

TEST(Signal, WriteVisibleNextDelta) {
  Kernel k;
  Signal<int> s(k, "s");
  std::vector<int> seen;
  k.spawn_thread("t", [&] {
    s.write(5);
    seen.push_back(s.read());  // still old value in the same evaluation
    k.wait_delta();
    seen.push_back(s.read());  // committed
  });
  k.run();
  EXPECT_EQ(seen, (std::vector<int>{0, 5}));
}

TEST(Signal, LastWriteInEvaluationWins) {
  Kernel k;
  Signal<int> s(k, "s");
  k.spawn_thread("t", [&] {
    s.write(1);
    s.write(2);
    s.write(3);
    k.wait_delta();
    EXPECT_EQ(s.read(), 3);
  });
  k.run();
}

TEST(Signal, ValueChangedFiresOnlyOnRealChange) {
  Kernel k;
  Signal<int> s(k, "s", 4);
  int changes = 0;
  MethodOptions opts;
  opts.sensitivity = {&s.value_changed_event()};
  opts.dont_initialize = true;
  k.spawn_method("observer", [&] { changes++; }, std::move(opts));
  k.spawn_thread("t", [&] {
    s.write(4);  // same value: no event
    k.wait(1_ns);
    s.write(9);  // change: one event
    k.wait(1_ns);
    s.write(9);  // same again: no event
    k.wait(1_ns);
  });
  k.run();
  EXPECT_EQ(changes, 1);
}

TEST(Signal, ThreadCanWaitOnValueChange) {
  Kernel k;
  Signal<bool> done(k, "done", false);
  Time woken_at;
  k.spawn_thread("waiter", [&] {
    while (!done.read()) {
      k.wait(done.value_changed_event());
    }
    woken_at = k.now();
  });
  k.spawn_thread("setter", [&] {
    k.wait(42_ns);
    done.write(true);
  });
  k.run();
  EXPECT_EQ(woken_at, 42_ns);
}

TEST(Signal, ManySignalsIndependent) {
  Kernel k;
  Signal<int> a(k, "a"), b(k, "b");
  k.spawn_thread("t", [&] {
    a.write(1);
    b.write(2);
    k.wait_delta();
    EXPECT_EQ(a.read(), 1);
    EXPECT_EQ(b.read(), 2);
  });
  k.run();
}

}  // namespace
}  // namespace tdsim
