// The chunk publication protocol behind the chunked channel modes
// (SmartFifo / Fifo / SyncFifo, see README "Channels").
//
// Temporal decoupling amortizes synchronization over many operations; the
// chunked channel modes amortize the *channel-side* costs the same way.
// Instead of booking a delta notification, an external-view event check
// and a DomainLink touch on every element, a producer fills a span of the
// channel's ring ("a chunk") privately and publishes the whole span with
// a single atomic release store; notifications, external-view transition
// checks and sync books run once per span instead of once per element.
//
// The protocol is expressed over *absolute* 64-bit operation counters,
// not ring indices:
//
//   produced (channel-owned)   total elements the producer has stamped;
//   published_produced         the prefix notifications have covered;
//   consumed (channel-owned)   total elements the consumer has drained;
//   published_consumed         the prefix notifications have covered.
//
// Ring positions are derived (`counter % depth`), so occupancy tests are
// plain subtractions that never wrap, and a channel can switch between
// per-element and chunked mode mid-run by reconciling the counters (the
// per-element cursors are provably `counter % depth`).
//
// Occupancy -- fullness and emptiness, for both the blocking paths and
// the is_full()/is_empty() probes -- is always computed from the
// channel-owned totals, never from the published prefixes: the two sides
// of one channel share a concurrency group (DomainLink::touch merges
// them on first contact), so every access is serialized by the kernel
// and the totals are the ground truth on both sides. Chunked occupancy,
// blocking conditions and block counters are therefore *bit-identical*
// to per-element mode. What the published counters delimit is purely the
// notification state: the spans whose delta wakes, external-view events
// and accounting have not fired yet. The release/acquire pair on the
// published counters additionally fences the stamped cells for group
// executions that migrate between worker threads.
//
// Scheduling contract (what makes batching *bit-exact* on the data
// path): every publication happens at a simulated date no later than the
// dates stamped on the published elements. Producers publish at chunk
// boundaries from their own process context; blocking paths force-flush
// both sides before suspending; and the kernel publishes every dirty
// chunk once per delta-cascade iteration (post-update, both in
// Kernel::run() and, group-filtered, in the lookahead free-run cascades)
// -- so nothing unpublished survives a drained cascade and simulated
// time never advances past a dirty chunk (Kernel::ChunkFlushListener). A
// woken blocked side therefore always resumes at a date the element
// stamps dominate, and the Smart-FIFO timing recurrence computes exactly
// the per-element dates. Only the *counts* batched per chunk (delta
// notifications, per-cause sync accounting, external-event schedulings)
// change -- never data-path dates. One visible artifact of the batched
// event scheduling: a run whose last pending work is an *unobserved*
// external-view re-arm can end at a slightly different kernel date,
// because chunked mode schedules fewer of those notifications; a
// synchronized observer of the events still sees every state change at
// the stamped dates. See README "Channels".
#pragma once

#include <atomic>
#include <cstdint>

namespace tdsim {

/// The publication-cursor core of the chunk protocol. The owning channel
/// keeps the `produced` / `consumed` totals (they double as its lifetime
/// counters); this class owns the published prefixes.
class ChunkSpscCore {
 public:
  // --- producer side ---

  /// The prefix of produced elements already covered by notifications.
  std::uint64_t produced_published() const { return produced_published_; }

  /// Makes [produced_published(), produced) visible with one release
  /// store. Returns false when nothing was pending.
  bool publish_produced(std::uint64_t produced) {
    if (produced == produced_published_) {
      return false;
    }
    published_produced_.store(produced, std::memory_order_release);
    produced_published_ = produced;
    return true;
  }

  // --- consumer side (mirror image) ---

  std::uint64_t consumed_published() const { return consumed_published_; }

  bool publish_consumed(std::uint64_t consumed) {
    if (consumed == consumed_published_) {
      return false;
    }
    published_consumed_.store(consumed, std::memory_order_release);
    consumed_published_ = consumed;
    return true;
  }

  // --- mode transitions ---

  /// Re-seeds both prefixes as fully published at the given totals --
  /// entering chunked mode from per-element state, where everything the
  /// channel ever did has already been notified per element. Callers
  /// switch modes only from quiescent or group-serialized contexts.
  void reset(std::uint64_t produced, std::uint64_t consumed) {
    produced_published_ = produced;
    consumed_published_ = consumed;
    published_produced_.store(produced, std::memory_order_relaxed);
    published_consumed_.store(consumed, std::memory_order_relaxed);
  }

 private:
  /// Each side's view of its own published prefix (only ever read and
  /// written under the group serialization).
  std::uint64_t produced_published_ = 0;
  std::uint64_t consumed_published_ = 0;
  /// The fencing mirrors, one cache line each, release-stored at every
  /// publish: a group execution resuming on another worker thread sees
  /// the stamped cells of every span published before the handoff.
  alignas(64) std::atomic<std::uint64_t> published_produced_{0};
  alignas(64) std::atomic<std::uint64_t> published_consumed_{0};
};

}  // namespace tdsim
