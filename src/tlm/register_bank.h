// Bank of 32-bit registers with per-register read/write hooks -- the
// control/status interface of the case study's hardware accelerators
// ("knowing the FIFO filling levels can be used for debug and dynamic
// performance tuning", paper SIII).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/domain_link.h"
#include "tlm/payload.h"

namespace tdsim::tlm {

class RegisterBank final : public TransportIf {
 public:
  /// Called on a register read; returns the value. May synchronize the
  /// calling (initiator) process, e.g. a FIFO-level register backed by
  /// SmartFifo::get_size().
  using ReadHook = std::function<std::uint32_t()>;
  /// Called with the value on a register write.
  using WriteHook = std::function<void(std::uint32_t)>;

  /// `count` registers of 4 bytes each; `access_latency` per transaction.
  RegisterBank(std::string name, std::size_t count, Time access_latency);

  /// Installs hooks for register `index` (byte address index*4). Either
  /// hook may be null: reads then return the stored value, writes store it.
  void set_read_hook(std::size_t index, ReadHook hook);
  void set_write_hook(std::size_t index, WriteHook hook);

  /// Direct (untimed) access for the owning module.
  std::uint32_t peek(std::size_t index) const;
  void poke(std::size_t index, std::uint32_t value);

  void b_transport(Payload& payload, Time& delay) override;

  std::size_t count() const { return values_.size(); }
  const std::string& name() const { return name_; }

 private:
  struct Hooks {
    ReadHook read;
    WriteHook write;
  };

  std::string name_;
  Time access_latency_;
  /// Bus initiators and the owning module's own peeks/pokes may span
  /// domains; declare the ordering. Mutable: peek() is logically const.
  /// Labeled for Kernel::explain_group().
  mutable DomainLink domain_link_{name_};
  std::vector<std::uint32_t> values_;
  std::vector<Hooks> hooks_;
};

}  // namespace tdsim::tlm
