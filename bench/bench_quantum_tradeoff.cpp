// Quantifies the accuracy/speed trade-off of quantum-based temporal
// decoupling discussed in paper SII, and contrasts it with the Smart FIFO,
// which needs no quantum ("without requiring the user to set a time
// quantum") and keeps timing exact.
//
// Table A -- the paper's cancellation example: a worker simulates a long
// computation with fine-grained annotations; a second process cancels it at
// a fixed date T. Under a global quantum Q, "the first process may receive
// the cancellation message when its local date is already T+Q, thus
// introducing a timing error of Q". The sweep shows observed error growing
// with Q while context switches fall.
//
// Table B -- the Fig. 2/3 pipeline: the same FIFO workload run as TDless
// (reference dates), NaiveTD (decoupled processes over a date-unaware FIFO,
// quantum syncs only -- Fig. 3) and TDfull (Smart FIFO). NaiveTD trades
// date accuracy for speed as its quantum grows; the Smart FIFO is as fast
// with zero date error.
//
// Usage: bench_quantum_tradeoff [--steps N] [--blocks N] [--words N]
//                                [--json]
//
// --json additionally writes BENCH_quantum_tradeoff.json with one row per
// sweep point, including the per-cause sync counts from KernelStats
// (quantum- vs. FIFO-driven) behind each context-switch total.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "workloads/pipeline.h"

namespace {

using tdsim::Kernel;
using tdsim::KernelStats;
using tdsim::SyncCause;
using tdsim::Time;
using tdsim::TimeUnit;
using namespace tdsim::time_literals;

// -------------------------------------------------------------------------
// Table A: cancellation latency under a quantum sweep.
// -------------------------------------------------------------------------

struct CancelResult {
  Time observed;  ///< Worker's local date when it saw the cancellation.
  KernelStats stats;
  double wall_seconds = 0;
};

/// Worker annotates `step` per iteration and checks a flag each time;
/// canceller raises the flag at `cancel_at`. With quantum Q the worker only
/// syncs every Q, so it observes the flag up to Q late.
CancelResult run_cancellation(Time quantum, Time step, Time cancel_at,
                              std::uint64_t max_steps) {
  Kernel kernel;
  kernel.set_global_quantum(quantum);
  bool cancelled = false;
  CancelResult result;

  kernel.spawn_thread("worker", [&] {
    for (std::uint64_t i = 0; i < max_steps; ++i) {
      if (quantum.is_zero()) {
        tdsim::wait(step);  // no decoupling: one context switch per step
      } else {
        kernel.sync_domain().inc_and_sync_if_needed(step);
      }
      if (cancelled) {
        result.observed = kernel.sync_domain().local_time_stamp();
        return;
      }
    }
  });
  kernel.spawn_thread("canceller", [&] {
    tdsim::wait(cancel_at);
    cancelled = true;
  });

  const auto start = std::chrono::steady_clock::now();
  kernel.run();
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.stats = kernel.stats();
  return result;
}

// -------------------------------------------------------------------------
// Table B: pipeline end-date error under NaiveTD vs Smart FIFO.
// -------------------------------------------------------------------------

struct PipelineResult {
  Time end_date;
  KernelStats stats;
  double wall_seconds = 0;
  bool correct = false;
};

PipelineResult run_pipeline(tdsim::workloads::ModelKind kind, Time quantum,
                            std::uint64_t blocks,
                            std::uint64_t words_per_block) {
  tdsim::workloads::PipelineConfig config;
  config.kind = kind;
  config.fifo_depth = 8;
  config.blocks = blocks;
  config.words_per_block = words_per_block;
  config.quantum = quantum;

  Kernel kernel;
  tdsim::workloads::Pipeline pipeline(kernel, config);
  const auto start = std::chrono::steady_clock::now();
  const Time end = pipeline.run_to_completion();
  const auto stop = std::chrono::steady_clock::now();

  PipelineResult result;
  result.end_date = end;
  result.stats = kernel.stats();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.correct = pipeline.correct();
  return result;
}

double signed_error_ns(Time value, Time reference) {
  const double v = static_cast<double>(value.ps());
  const double r = static_cast<double>(reference.ps());
  return (v - r) / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t steps = 2'000'000;
  std::uint64_t blocks = 200;
  std::uint64_t words_per_block = 1000;
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--blocks") == 0 && i + 1 < argc) {
      blocks = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      words_per_block = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--steps N] [--blocks N] [--words N] [--json]\n",
                   argv[0]);
      return 2;
    }
  }
  benchjson::Report report("quantum_tradeoff");

  const Time step = 10_ns;
  // One nanosecond past the mid-run date: were the cancellation aligned
  // with the quantum boundaries, every sweep point would observe it at the
  // same date and the error would be invisible. Just-after-a-boundary is
  // the paper's worst case ("a timing error of Q").
  const Time cancel_at = Time(steps / 2 * 10 + 1, TimeUnit::NS);

  std::printf("Table A: cancellation observation error vs global quantum\n");
  std::printf("worker step 10 ns x %llu, cancellation at %s\n\n",
              static_cast<unsigned long long>(steps),
              cancel_at.to_string().c_str());
  std::printf("%10s | %14s | %12s | %12s | %10s\n", "quantum", "error[ns]",
              "switches", "q-syncs", "wall[s]");

  const std::vector<Time> quanta = {Time{},  10_ns,  100_ns,
                                    1_us,    10_us,  100_us};
  for (Time q : quanta) {
    const CancelResult r = run_cancellation(q, step, cancel_at, steps);
    std::printf("%10s | %14.0f | %12llu | %12llu | %10.3f\n",
                q.is_zero() ? "none" : q.to_string().c_str(),
                signed_error_ns(r.observed, cancel_at),
                static_cast<unsigned long long>(r.stats.context_switches),
                static_cast<unsigned long long>(
                    r.stats.syncs(SyncCause::Quantum)),
                r.wall_seconds);
    if (emit_json) {
      report.row()
          .add("table", std::string("cancellation"))
          .add("quantum_ps", q.ps())
          .add("error_ns", signed_error_ns(r.observed, cancel_at))
          .add("context_switches", r.stats.context_switches)
          .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
          .add("wall_seconds", r.wall_seconds);
    }
  }

  std::printf("\nTable B: pipeline end-date error (reference: TDless)\n");
  std::printf("workload: %llu blocks x %llu words, depth 8\n\n",
              static_cast<unsigned long long>(blocks),
              static_cast<unsigned long long>(words_per_block));
  std::printf("%22s | %14s | %12s | %12s | %10s\n", "model", "error[ns]",
              "switches", "q/fifo syncs", "wall[s]");

  const auto fifo_syncs = [](const PipelineResult& r) {
    return r.stats.syncs(SyncCause::FifoFull) +
           r.stats.syncs(SyncCause::FifoEmpty);
  };
  const auto add_pipeline_row = [&](const char* model, Time q,
                                    const PipelineResult& r,
                                    const PipelineResult& ref) {
    report.row()
        .add("table", std::string("pipeline"))
        .add("model", std::string(model))
        .add("quantum_ps", q.ps())
        .add("error_ns", signed_error_ns(r.end_date, ref.end_date))
        .add("context_switches", r.stats.context_switches)
        .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
        .add("syncs_fifo", fifo_syncs(r))
        .add("wall_seconds", r.wall_seconds);
  };

  using tdsim::workloads::ModelKind;
  const PipelineResult reference =
      run_pipeline(ModelKind::TDless, Time{}, blocks, words_per_block);
  std::printf("%22s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
              "TDless (reference)", 0.0,
              static_cast<unsigned long long>(reference.stats.context_switches),
              static_cast<unsigned long long>(
                  reference.stats.syncs(SyncCause::Quantum)),
              static_cast<unsigned long long>(fifo_syncs(reference)),
              reference.wall_seconds);
  if (emit_json) {
    add_pipeline_row("TDless", Time{}, reference, reference);
  }

  bool ok = reference.correct;
  for (Time q : {10_ns, 1_us, 100_us}) {
    const PipelineResult r =
        run_pipeline(ModelKind::NaiveTD, q, blocks, words_per_block);
    ok = ok && r.correct;
    std::printf("%15s Q=%-5s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
                "naiveTD", q.to_string().c_str(),
                signed_error_ns(r.end_date, reference.end_date),
                static_cast<unsigned long long>(r.stats.context_switches),
                static_cast<unsigned long long>(
                    r.stats.syncs(SyncCause::Quantum)),
                static_cast<unsigned long long>(fifo_syncs(r)),
                r.wall_seconds);
    if (emit_json) {
      add_pipeline_row("naiveTD", q, r, reference);
    }
  }
  const PipelineResult smart =
      run_pipeline(ModelKind::TDfull, Time{}, blocks, words_per_block);
  ok = ok && smart.correct && smart.end_date == reference.end_date;
  std::printf("%22s | %14.0f | %12llu | %5llu/%6llu | %10.3f\n",
              "TDfull (Smart FIFO)",
              signed_error_ns(smart.end_date, reference.end_date),
              static_cast<unsigned long long>(smart.stats.context_switches),
              static_cast<unsigned long long>(
                  smart.stats.syncs(SyncCause::Quantum)),
              static_cast<unsigned long long>(fifo_syncs(smart)),
              smart.wall_seconds);
  if (emit_json) {
    add_pipeline_row("TDfull", Time{}, smart, reference);
  }

  if (emit_json && !report.write()) {
    return 1;
  }

  if (!ok) {
    std::fprintf(stderr,
                 "ERROR: checksum failure or Smart FIFO date mismatch\n");
    return 1;
  }
  return 0;
}
