// Reproduces the case-study measurement of paper SIV.C: a heterogeneous
// many-core SoC model (hardware accelerators streaming through FIFOs and a
// stream NoC, one control core polling over the memory-mapped bus) run once
// with Smart FIFOs and once with FIFOs that synchronize at each access.
// "The simulation duration changed from 38.0 to 21.9 seconds, giving a gain
// of 42.3%" -- the shape to reproduce is a double-digit percentage gain
// with identical timing accuracy (same completion dates).
//
// Usage: bench_casestudy_soc [--streams N] [--words N] [--depth N]
//                            [--packet N] [--mesh CxR] [--json]
//
// --json additionally writes BENCH_casestudy_soc.json with one row per
// flavor, including the per-cause sync counts from KernelStats behind each
// context-switch total.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_json.h"
#include "soc/soc_platform.h"

namespace {

using tdsim::Kernel;
using tdsim::KernelStats;
using tdsim::SyncCause;
using tdsim::Time;
using tdsim::soc::FifoFlavor;
using tdsim::soc::SocConfig;
using tdsim::soc::SocPlatform;

struct RunResult {
  double wall_seconds = 0;
  Time end_date;
  Time core_done_date;
  std::uint64_t context_switches = 0;
  std::uint64_t method_activations = 0;
  std::uint64_t fifo_accesses = 0;
  KernelStats stats;
  bool correct = false;
};

RunResult run_once(const SocConfig& config) {
  Kernel kernel;
  SocPlatform platform(kernel, config);
  const auto start = std::chrono::steady_clock::now();
  const Time end_date = platform.run_to_completion();
  const auto stop = std::chrono::steady_clock::now();

  RunResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.end_date = end_date;
  result.core_done_date = platform.core().all_done_date();
  result.context_switches = kernel.stats().context_switches;
  result.method_activations = kernel.stats().method_activations;
  result.fifo_accesses = platform.total_fifo_accesses();
  result.stats = kernel.stats();
  result.correct = platform.all_streams_correct();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  SocConfig config;
  config.mesh_columns = 4;
  config.mesh_rows = 4;
  config.streams = 16;
  config.words_per_stream = 1 << 18;  // 256k words per stream
  config.fifo_depth = 16;
  config.packet_words = 16;

  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      config.streams = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--words") == 0 && i + 1 < argc) {
      config.words_per_stream = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      config.fifo_depth = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--packet") == 0 && i + 1 < argc) {
      config.packet_words = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--mesh") == 0 && i + 1 < argc) {
      unsigned c = 0, r = 0;
      if (std::sscanf(argv[++i], "%ux%u", &c, &r) != 2 || c == 0 || r == 0) {
        std::fprintf(stderr, "bad --mesh, expected CxR\n");
        return 2;
      }
      config.mesh_columns = static_cast<std::uint16_t>(c);
      config.mesh_rows = static_cast<std::uint16_t>(r);
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--streams N] [--words N] [--depth N] [--packet N] "
          "[--mesh CxR] [--json]\n",
          argv[0]);
      return 2;
    }
  }

  std::printf("Case-study SoC reproduction (paper SIV.C)\n");
  std::printf(
      "mesh %ux%u, %zu streams x %llu words, FIFO depth %zu, packets of "
      "%zu words\n\n",
      config.mesh_columns, config.mesh_rows, config.streams,
      static_cast<unsigned long long>(config.words_per_stream),
      config.fifo_depth, config.packet_words);

  config.flavor = FifoFlavor::Sync;
  const RunResult sync = run_once(config);
  config.flavor = FifoFlavor::Smart;
  const RunResult smart = run_once(config);

  const auto row = [](const char* name, const RunResult& r) {
    std::printf("%-18s %10.2f s   switches=%-12llu methods=%-12llu %s\n",
                name, r.wall_seconds,
                static_cast<unsigned long long>(r.context_switches),
                static_cast<unsigned long long>(r.method_activations),
                r.correct ? "ok" : "CHECKSUM MISMATCH");
  };
  row("sync-per-access:", sync);
  row("Smart FIFO:", smart);

  const double gain =
      100.0 * (sync.wall_seconds - smart.wall_seconds) / sync.wall_seconds;
  std::printf("\ngain: %.1f%%  (paper: 38.0 s -> 21.9 s, 42.3%%)\n", gain);
  std::printf("simulated end date: %s (both flavors must match: %s)\n",
              smart.end_date.to_string().c_str(),
              smart.end_date == sync.end_date &&
                      smart.core_done_date == sync.core_done_date
                  ? "yes"
                  : "NO -- TIMING DIVERGENCE");

  if (emit_json) {
    benchjson::Report report("casestudy_soc");
    const auto add_row = [&report, &config](const char* flavor,
                                            const RunResult& r) {
      report.row()
          .add("flavor", std::string(flavor))
          .add("streams", static_cast<std::uint64_t>(config.streams))
          .add("words_per_stream", config.words_per_stream)
          .add("fifo_depth", static_cast<std::uint64_t>(config.fifo_depth))
          .add("wall_seconds", r.wall_seconds)
          .add("end_date_ps", r.end_date.ps())
          .add("core_done_ps", r.core_done_date.ps())
          .add("context_switches", r.context_switches)
          .add("method_activations", r.method_activations)
          .add("fifo_accesses", r.fifo_accesses)
          .add("sync_requests", r.stats.sync_requests)
          .add("syncs_elided", r.stats.syncs_elided)
          .add("syncs_quantum", r.stats.syncs(SyncCause::Quantum))
          .add("syncs_fifo", r.stats.syncs(SyncCause::FifoFull) +
                                 r.stats.syncs(SyncCause::FifoEmpty))
          .add("syncs_sync_point", r.stats.syncs(SyncCause::SyncPoint))
          .add("syncs_monitor", r.stats.syncs(SyncCause::Monitor))
          .add("correct", std::string(r.correct ? "yes" : "no"));
    };
    add_row("sync", sync);
    add_row("smart", smart);
    if (!report.write()) {
      return 1;
    }
  }

  const bool ok = smart.correct && sync.correct &&
                  smart.end_date == sync.end_date &&
                  smart.core_done_date == sync.core_done_date;
  return ok ? 0 : 1;
}
