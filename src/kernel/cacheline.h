// Cache-line layout helpers for the scheduler's shared hot state.
//
// At O(100) domains the per-domain hot fields (quantum, runnable count,
// delta bookkeeping) and the per-domain published execution fronts are
// touched from different workers for different concurrency groups. Packed
// naively -- eight 8-byte atomics per line in a deque, or adjacent heap
// allocations -- two groups that never share simulation state still share
// cache lines, and every horizon publication invalidates the other
// worker's line (false sharing). The helpers here isolate each domain's
// hot state on its own line; domains executed by the same worker then
// share lines only through their own group's accesses.
#pragma once

#include <cstddef>

namespace tdsim {

/// Fixed 64 rather than std::hardware_destructive_interference_size: the
/// standard constant varies with -mtune (GCC warns about exactly that for
/// ABI-relevant uses like ours), and 64 is the destructive-interference
/// granularity on every target this kernel runs on.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value so it occupies (at least) one whole cache line. Used for
/// per-domain entries of shared containers read and written from different
/// workers (e.g. Kernel::published_front_ps_).
template <typename T>
struct alignas(kCacheLineSize) CacheLinePadded {
  T value;

  template <typename... Args>
  explicit CacheLinePadded(Args&&... args)
      : value(static_cast<Args&&>(args)...) {}
};

}  // namespace tdsim
