// Heterogeneous per-domain quanta in one kernel -- the payoff of the
// SyncDomain registry. The paper's Fig. 5 trade-off (sync frequency vs.
// accuracy vs. wall time) is per-subsystem, not global: this bench models a
// SoC whose CPU cluster and slow peripheral bus want different quanta and
// shows that relaxing *only* the peripheral domain's quantum buys wall-time
// speed without touching CPU-domain accuracy.
//
// One kernel, two domains:
//   * "cpu": worker threads under a fixed tight quantum, each annotating
//     fine-grained steps and polling a cancellation flag raised at a fixed
//     date T -- the observation error is bounded by the CPU quantum
//     (paper SII.A) and must stay constant across the sweep;
//   * "periph": bus threads issuing many fine-grained transactions under
//     the swept quantum -- their quantum-driven context switches (read
//     per-domain from KernelStats::domains) collapse as the quantum grows,
//     and wall time falls with them.
// Plus one cross-domain stream: a periph-domain DMA thread feeding a Smart
// FIFO drained by a cpu-domain consumer. Its completion date rides on the
// FIFO's cell date stamps, not on any quantum, so it must be bit-identical
// on every sweep row (the Smart-FIFO guarantee across a domain boundary).
//
// Usage: bench_multidomain_soc [--cpus N] [--periphs N] [--steps N]
//                              [--stream-words N] [--json]
//
// --json writes BENCH_multidomain_soc.json: one row per sweep point with
// per-domain quanta and per-domain per-cause sync counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_json.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace {

using tdsim::DomainStats;
using tdsim::Kernel;
using tdsim::SmartFifo;
using tdsim::SyncCause;
using tdsim::SyncDomain;
using tdsim::ThreadOptions;
using tdsim::Time;
using tdsim::TimeUnit;
using namespace tdsim::time_literals;

struct BenchConfig {
  std::size_t cpu_workers = 2;
  std::size_t periph_masters = 4;
  std::uint64_t steps = 200'000;      ///< fine-grained steps per process
  std::uint64_t stream_words = 20'000;
  Time cpu_step = 10_ns;
  Time periph_step = 10_ns;
  Time cpu_quantum = 100_ns;          ///< fixed: CPU accuracy bound
};

struct RunResult {
  double wall_seconds = 0;
  Time cpu_error_max;        ///< worst cancellation-observation error (cpu)
  Time stream_done_date;     ///< cross-domain stream completion (local date)
  bool stream_ok = false;
  DomainStats cpu;
  DomainStats periph;
  std::uint64_t context_switches = 0;
};

RunResult run_once(const BenchConfig& config, Time periph_quantum) {
  Kernel kernel;
  SyncDomain& cpu = kernel.create_domain("cpu", config.cpu_quantum);
  SyncDomain& periph = kernel.create_domain("periph", periph_quantum);

  // The cancellation pattern of paper SII.A, confined to the CPU domain:
  // just past a quantum boundary is the worst case.
  const Time cancel_at =
      Time(config.steps / 2 * config.cpu_step.ps() / 1000 + 1, TimeUnit::NS);
  bool cancelled = false;
  kernel.spawn_thread("canceller", [&kernel, &cancelled, cancel_at] {
    kernel.wait(cancel_at);
    cancelled = true;
  });

  std::vector<Time> observed(config.cpu_workers);
  for (std::size_t w = 0; w < config.cpu_workers; ++w) {
    ThreadOptions opts;
    opts.domain = &cpu;
    kernel.spawn_thread("cpu" + std::to_string(w),
                        [&kernel, &config, &cancelled, &observed, w] {
      for (std::uint64_t i = 0; i < config.steps; ++i) {
        kernel.current_domain().inc_and_sync_if_needed(config.cpu_step);
        if (cancelled) {
          observed[w] = kernel.current_domain().local_time_stamp();
          return;
        }
      }
    }, opts);
  }

  // The slow peripheral bus: masters annotating fine-grained transaction
  // delays under the swept quantum. Their syncs are pure overhead here --
  // nothing in the model observes them below the quantum granularity.
  for (std::size_t m = 0; m < config.periph_masters; ++m) {
    ThreadOptions opts;
    opts.domain = &periph;
    kernel.spawn_thread("periph" + std::to_string(m),
                        [&kernel, &config] {
      for (std::uint64_t i = 0; i < config.steps; ++i) {
        kernel.current_domain().inc_and_sync_if_needed(config.periph_step);
      }
    }, opts);
  }

  // Cross-domain stream: periph-domain DMA -> Smart FIFO -> cpu-domain
  // consumer. Quantum-independent by construction.
  SmartFifo<std::uint32_t> stream(kernel, "dma_stream", 16);
  ThreadOptions dma_opts;
  dma_opts.domain = &periph;
  kernel.spawn_thread("dma", [&kernel, &config, &stream] {
    for (std::uint64_t i = 0; i < config.stream_words; ++i) {
      kernel.current_domain().inc(3_ns);
      stream.write(static_cast<std::uint32_t>(i));
    }
  }, dma_opts);
  std::uint32_t checksum = 0;
  Time stream_done;
  ThreadOptions sink_opts;
  sink_opts.domain = &cpu;
  kernel.spawn_thread("stream_sink",
                      [&kernel, &config, &stream, &checksum, &stream_done] {
    for (std::uint64_t i = 0; i < config.stream_words; ++i) {
      checksum = checksum * 31 + stream.read();
      kernel.current_domain().inc(4_ns);
    }
    stream_done = kernel.current_domain().local_time_stamp();
  }, sink_opts);

  const auto start = std::chrono::steady_clock::now();
  kernel.run();
  const auto stop = std::chrono::steady_clock::now();

  std::uint32_t expected = 0;
  for (std::uint64_t i = 0; i < config.stream_words; ++i) {
    expected = expected * 31 + static_cast<std::uint32_t>(i);
  }

  RunResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  for (Time t : observed) {
    const Time error = t - cancel_at;
    if (error > result.cpu_error_max) {
      result.cpu_error_max = error;
    }
  }
  result.stream_done_date = stream_done;
  result.stream_ok = checksum == expected;
  result.cpu = kernel.stats().domains[cpu.id()];
  result.periph = kernel.stats().domains[periph.id()];
  result.context_switches = kernel.stats().context_switches;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
      config.cpu_workers = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--periphs") == 0 && i + 1 < argc) {
      config.periph_masters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      config.steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--stream-words") == 0 && i + 1 < argc) {
      config.stream_words = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--cpus N] [--periphs N] [--steps N] "
                   "[--stream-words N] [--json]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("Per-domain quantum sweep: %zu cpu workers (quantum %s), "
              "%zu peripheral masters, %llu steps, %llu stream words\n\n",
              config.cpu_workers, config.cpu_quantum.to_string().c_str(),
              config.periph_masters,
              static_cast<unsigned long long>(config.steps),
              static_cast<unsigned long long>(config.stream_words));
  std::printf("%14s | %12s | %12s | %14s | %16s | %10s\n", "periph quantum",
              "cpu q-syncs", "periph q-syncs", "cpu error[ns]",
              "stream done[ps]", "wall[s]");

  benchjson::Report report("multidomain_soc");
  const std::vector<Time> sweep = {100_ns, 1_us, 10_us, 100_us};
  bool ok = true;
  Time first_error_max;
  Time first_stream_done;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const Time q = sweep[i];
    const RunResult r = run_once(config, q);
    if (i == 0) {
      first_error_max = r.cpu_error_max;
      first_stream_done = r.stream_done_date;
    }
    // The headline claims: CPU-domain accuracy and the cross-domain stream
    // dates are invariant under the peripheral quantum.
    ok = ok && r.stream_ok && r.cpu_error_max == first_error_max &&
         r.stream_done_date == first_stream_done;
    std::printf("%14s | %12llu | %12llu | %14.0f | %16llu | %10.3f%s\n",
                q.to_string().c_str(),
                static_cast<unsigned long long>(r.cpu.syncs(
                    SyncCause::Quantum)),
                static_cast<unsigned long long>(r.periph.syncs(
                    SyncCause::Quantum)),
                static_cast<double>(r.cpu_error_max.ps()) / 1e3,
                static_cast<unsigned long long>(r.stream_done_date.ps()),
                r.wall_seconds, r.stream_ok ? "" : "  CHECKSUM MISMATCH");
    if (emit_json) {
      benchjson::Row& row = report.row();
      row.add("cpu_quantum_ps", config.cpu_quantum.ps())
          .add("periph_quantum_ps", q.ps())
          .add("cpu_error_ns",
               static_cast<double>(r.cpu_error_max.ps()) / 1e3)
          .add("stream_done_ps", r.stream_done_date.ps())
          .add("context_switches", r.context_switches)
          .add("wall_seconds", r.wall_seconds);
      for (const DomainStats* d : {&r.cpu, &r.periph}) {
        row.add(d->name + "_sync_requests", d->sync_requests)
            .add(d->name + "_syncs_elided", d->syncs_elided)
            .add(d->name + "_syncs_quantum", d->syncs(SyncCause::Quantum))
            .add(d->name + "_syncs_fifo",
                 d->syncs(SyncCause::FifoFull) +
                     d->syncs(SyncCause::FifoEmpty));
      }
    }
  }

  if (emit_json && !report.write()) {
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "ERROR: relaxing the peripheral quantum moved a CPU-domain "
                 "observation or a cross-domain stream date\n");
    return 1;
  }
  std::printf("\ncpu-domain accuracy and cross-domain stream dates "
              "invariant across the sweep: yes\n");
  return 0;
}
