// StartGate: timestamped command hand-off between decoupled processes
// (the register-start pattern of the accelerators and the DMA engine).
#include <gtest/gtest.h>

#include "core/start_gate.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

TEST(StartGate, CarriesTheCommandersLocalDate) {
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  Time worker_date;
  int command = 0;
  kernel.spawn_thread("commander", [&] {
    kernel.sync_domain().inc(250_ns);  // decoupled: runs ahead without syncing
    gate.post(42);
  });
  kernel.spawn_thread("worker", [&] {
    command = gate.await();
    worker_date = kernel.sync_domain().local_time_stamp();
  });
  kernel.run();
  EXPECT_EQ(command, 42);
  EXPECT_EQ(worker_date, Time(250, TimeUnit::NS));
}

TEST(StartGate, AwaitBeforePostBlocks) {
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  Time awaited_at;
  kernel.spawn_thread("worker", [&] {
    (void)gate.await();
    awaited_at = sim_time_stamp();
  });
  kernel.spawn_thread("commander", [&] {
    wait(100_ns);
    gate.post(1);
  });
  kernel.run();
  EXPECT_EQ(awaited_at, Time(100, TimeUnit::NS));
}

TEST(StartGate, PostAfterAwaitDoesNotRewindTheWorker) {
  // A second command posted with an *earlier* local date than the
  // worker's current date must not move the worker backwards
  // (advance_local_to is monotone).
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  std::vector<Time> dates;
  kernel.spawn_thread("commander", [&] {
    kernel.sync_domain().inc(300_ns);
    gate.post(1);
    kernel.sync_domain().sync();
  });
  kernel.spawn_thread("late_commander", [&] {
    wait(350_ns);  // global 350 ns; posts synchronized (local == global)
    gate.post(2);
  });
  kernel.spawn_thread("worker", [&] {
    (void)gate.await();
    kernel.sync_domain().inc(400_ns);  // now at local 700 ns
    (void)gate.await();
    dates.push_back(kernel.sync_domain().local_time_stamp());
  });
  kernel.run();
  ASSERT_EQ(dates.size(), 1u);
  EXPECT_EQ(dates[0], Time(700, TimeUnit::NS));  // not rewound to 350 ns
}

TEST(StartGate, SecondPostWhilePendingIsRejected) {
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  bool first = false, second = false;
  kernel.spawn_thread("commander", [&] {
    first = gate.post(1);
    second = gate.post(2);  // still pending: rejected
  });
  kernel.spawn_thread("worker", [&] { EXPECT_EQ(gate.await(), 1); });
  kernel.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(StartGate, TryTakeForMethods) {
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  std::optional<std::pair<int, Time>> taken;
  MethodOptions opts;
  opts.sensitivity.push_back(&gate.event());
  opts.dont_initialize = true;
  kernel.spawn_method("worker", [&] { taken = gate.try_take(); }, opts);
  kernel.spawn_thread("commander", [&] {
    kernel.sync_domain().inc(75_ns);
    gate.post(9);
  });
  kernel.run();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->first, 9);
  EXPECT_EQ(taken->second, Time(75, TimeUnit::NS));
}

TEST(StartGate, TryTakeEmptyReturnsNothing) {
  Kernel kernel;
  StartGate<int> gate(kernel, "gate");
  kernel.spawn_thread("worker", [&] {
    EXPECT_FALSE(gate.try_take().has_value());
    EXPECT_FALSE(gate.has_pending());
  });
  kernel.run();
}

}  // namespace
}  // namespace tdsim
