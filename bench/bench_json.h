// Minimal machine-readable benchmark output: each bench, when run with
// --json, writes BENCH_<name>.json next to its stdout tables so the perf
// trajectory can be tracked across commits without scraping text.
//
// Format: {"bench": "<name>", "rows": [{"k": v, ...}, ...]} where values
// are numbers or strings. No external JSON dependency; the writer escapes
// only what the benches emit (plain identifiers and numbers).
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace benchjson {

class Row {
 public:
  Row& add(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    fields_.emplace_back(key, buffer);
    return *this;
  }

  Row& add(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  Row& add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
    return *this;
  }

 private:
  friend class Report;
  std::vector<std::pair<std::string, std::string>> fields_;
};

class Report {
 public:
  /// `name` becomes the BENCH_<name>.json file name; keep it a plain
  /// identifier.
  explicit Report(std::string name) : name_(std::move(name)) {}

  /// The returned reference stays valid for the report's lifetime (rows
  /// live in a deque, which never relocates elements on growth).
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes BENCH_<name>.json in the working directory; returns false (and
  /// reports to stderr) on I/O failure.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     fields[i].first.c_str(), fields[i].second.c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::deque<Row> rows_;
};

}  // namespace benchjson
