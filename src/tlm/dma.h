// DMA engine: a bus master programmed through a register bank that copies
// a block of memory word by word, temporally decoupled with the global
// quantum (the standard loosely-timed TLM initiator pattern the case-study
// SoC uses for all memory-mapped traffic, paper SIV.C).
//
// Register map (32-bit registers):
//   kSrc    -- source byte address
//   kDst    -- destination byte address
//   kLen    -- transfer length in bytes (multiple of 4)
//   kCtrl   -- write 1 to start; rejected while busy
//   kStatus -- 0 idle, 1 busy, 2 done (sticky until the next start)
//
// The completion is also signaled through done_event(), the analog of an
// interrupt line, with a date-accurate notification: the engine
// synchronizes before raising it, so a decoupled observer sees the
// completion at the same date in any model flavor.
#pragma once

#include <cstdint>
#include <string>

#include "core/start_gate.h"
#include "kernel/event.h"
#include "kernel/module.h"
#include "tlm/register_bank.h"
#include "tlm/socket.h"

namespace tdsim::tlm {

class DmaEngine : public Module {
 public:
  enum Register : std::size_t {
    kSrc = 0,
    kDst = 1,
    kLen = 2,
    kCtrl = 3,
    kStatus = 4,
    kRegisterCount = 5,
  };

  enum Status : std::uint32_t {
    kIdle = 0,
    kBusy = 1,
    kDone = 2,
  };

  struct Config {
    /// Latency charged by the engine per copied word, on top of the bus
    /// and memory latencies returned through b_transport.
    Time per_word = Time(1, TimeUnit::NS);
    /// Register-access latency seen by the programming initiator.
    Time register_latency = Time(1, TimeUnit::NS);
  };

  DmaEngine(Module& parent, const std::string& name, Config config);
  /// Default configuration.
  DmaEngine(Module& parent, const std::string& name);

  /// The control/status registers, to be mapped on the bus.
  RegisterBank& registers() { return registers_; }

  /// The engine's master port; bind to the bus (or directly to a target).
  InitiatorSocket& socket() { return socket_; }

  /// Notified (date-accurately) when a transfer completes.
  Event& done_event() { return done_event_; }

  /// Direct (software-free) programming helper: equivalent to the
  /// register sequence src, dst, len, ctrl=1.
  void start(std::uint64_t src, std::uint64_t dst, std::uint32_t length);

  bool busy() const { return registers_.peek(kStatus) == kBusy; }
  std::uint64_t transfers_completed() const { return transfers_completed_; }
  std::uint64_t words_copied() const { return words_copied_; }

 private:
  void engine();

  Config config_;
  RegisterBank registers_;
  InitiatorSocket socket_;
  /// Timestamped start hand-off (see StartGate).
  StartGate<std::uint32_t> start_gate_;
  Event done_event_;
  std::uint64_t transfers_completed_ = 0;
  std::uint64_t words_copied_ = 0;
};

}  // namespace tdsim::tlm
