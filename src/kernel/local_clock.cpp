#include "kernel/local_clock.h"

#include "kernel/kernel.h"
#include "kernel/process.h"
#include "kernel/sync_domain.h"

namespace tdsim {

Time LocalClock::now() const {
  return owner_.kernel().now() + offset_;
}

void LocalClock::advance_to(Time date) {
  const Time local = now();
  if (date > local) {
    offset_ = date - owner_.kernel().now();
  }
}

bool LocalClock::needs_sync() const {
  return owner_.domain().quantum_exceeded(*this);
}

void LocalClock::sync(SyncCause cause) {
  owner_.domain().perform_sync(*this, cause);
}

void LocalClock::method_rearm(SyncCause cause) {
  owner_.domain().perform_method_rearm(*this, cause);
}

}  // namespace tdsim
