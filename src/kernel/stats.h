// Kernel instrumentation counters.
//
// The paper's whole premise is that context switches dominate the cost of a
// finely-annotated TLM simulation, so the kernel counts them (and the other
// scheduler activities) explicitly; benchmarks report these next to wall
// time.
#pragma once

#include <cstdint>

namespace tdsim {

struct KernelStats {
  /// Number of resumes of stackful thread processes. Each resume costs two
  /// machine context switches (in and out); we count resumes, matching how
  /// the paper counts "one context switch per access".
  std::uint64_t context_switches = 0;

  /// Number of run-to-completion method activations (no stack switch).
  std::uint64_t method_activations = 0;

  /// Number of delta cycles executed.
  std::uint64_t delta_cycles = 0;

  /// Number of distinct simulated dates the kernel advanced to.
  std::uint64_t timed_waves = 0;

  /// Number of event trigger operations (immediate, delta or timed firing).
  std::uint64_t event_triggers = 0;

  /// Number of processes ever spawned.
  std::uint64_t processes_spawned = 0;

  KernelStats operator-(const KernelStats& o) const {
    KernelStats r = *this;
    r.context_switches -= o.context_switches;
    r.method_activations -= o.method_activations;
    r.delta_cycles -= o.delta_cycles;
    r.timed_waves -= o.timed_waves;
    r.event_triggers -= o.event_triggers;
    r.processes_spawned -= o.processes_spawned;
    return r;
  }
};

}  // namespace tdsim
