#include "workloads/pipeline.h"

#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/report.h"

namespace tdsim::workloads {

namespace {

std::unique_ptr<FifoInterface<std::uint32_t>> make_fifo(Kernel& kernel,
                                                        ModelKind kind,
                                                        std::string name,
                                                        std::size_t depth) {
  switch (kind) {
    case ModelKind::Untimed:
      return std::make_unique<UntimedFifo<std::uint32_t>>(kernel,
                                                          std::move(name),
                                                          depth);
    case ModelKind::TDless:
      // With wait() annotations the producer/consumer are always
      // synchronized, so the per-access sync() is a no-op and this behaves
      // as the paper's "timed with no decoupling and regular FIFO".
      return std::make_unique<SyncFifo<std::uint32_t>>(kernel,
                                                       std::move(name), depth);
    case ModelKind::TDfull:
      return std::make_unique<SmartFifo<std::uint32_t>>(kernel,
                                                        std::move(name),
                                                        depth);
    case ModelKind::NaiveTD:
      // Decoupled processes over a date-unaware channel: the Fig. 3
      // anti-pattern. Accesses carry no ordering with the other side.
      return std::make_unique<UntimedFifo<std::uint32_t>>(kernel,
                                                          std::move(name),
                                                          depth);
  }
  Report::error("Pipeline: unknown model kind");
  return nullptr;
}

/// The deterministic rate cycle: block b runs the source at x{1,2,3} and
/// the sink at x{3,2,1}, so the chain alternates producer-limited and
/// consumer-limited phases.
constexpr std::uint64_t kRateCycle[3] = {1, 2, 3};

}  // namespace

Pipeline::Pipeline(Kernel& kernel, const PipelineConfig& config)
    : kernel_(kernel), config_(config) {
  if (config_.blocks == 0 || config_.words_per_block == 0) {
    Report::error("Pipeline: empty workload");
  }
  if (config_.kind == ModelKind::NaiveTD) {
    kernel.set_global_quantum(config_.quantum);
  }
  fifo_a_ = make_fifo(kernel, config_.kind, "pipeline.fifo_a",
                      config_.fifo_depth);
  fifo_b_ = make_fifo(kernel, config_.kind, "pipeline.fifo_b",
                      config_.fifo_depth);
  kernel.spawn_thread("pipeline.source", [this] { source_process(); });
  kernel.spawn_thread("pipeline.transmit", [this] { transmit_process(); });
  kernel.spawn_thread("pipeline.sink", [this] { sink_process(); });
}

Pipeline::~Pipeline() = default;

void Pipeline::delay(Time duration) {
  switch (config_.kind) {
    case ModelKind::Untimed:
      return;  // no timing annotations at all
    case ModelKind::TDless:
      kernel_.wait(duration);
      return;
    case ModelKind::TDfull:
      kernel_.current_domain().inc(duration);
      return;
    case ModelKind::NaiveTD:
      kernel_.current_domain().inc_and_sync_if_needed(duration);
      return;
  }
}

Time Pipeline::scaled(Time base, std::uint64_t block, bool is_source) const {
  if (!config_.vary_rates) {
    return base;
  }
  // Counter-phase cycles: when the source is slow the sink is fast and
  // vice versa.
  const std::uint64_t k = is_source ? kRateCycle[block % 3]
                                    : kRateCycle[2 - block % 3];
  return base * k;
}

void Pipeline::source_process() {
  std::uint32_t word = 0;
  for (std::uint64_t b = 0; b < config_.blocks; ++b) {
    delay(config_.per_block);
    const Time per_word = scaled(config_.source_per_word, b, true);
    for (std::uint64_t w = 0; w < config_.words_per_block; ++w) {
      delay(per_word);
      fifo_a_->write(word++);
    }
  }
}

void Pipeline::transmit_process() {
  const std::uint64_t total = total_words();
  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint32_t word = fifo_a_->read();
    delay(config_.transmit_per_word);
    fifo_b_->write(word ^ 0xA5A5A5A5u);
  }
}

void Pipeline::sink_process() {
  for (std::uint64_t b = 0; b < config_.blocks; ++b) {
    delay(config_.per_block);
    const Time per_word = scaled(config_.sink_per_word, b, false);
    for (std::uint64_t w = 0; w < config_.words_per_block; ++w) {
      const std::uint32_t word = fifo_b_->read();
      delay(per_word);
      checksum_ = checksum_ * 31 + word;
    }
  }
  completion_date_ = (config_.kind == ModelKind::TDfull ||
                      config_.kind == ModelKind::NaiveTD)
                         ? kernel_.current_domain().local_time_stamp()
                         : kernel_.now();
  sink_done_ = true;
}

Time Pipeline::run_to_completion() {
  kernel_.run();
  if (!sink_done_) {
    Report::error("Pipeline: sink did not finish (deadlocked model?)");
  }
  return completion_date_;
}

std::uint32_t Pipeline::expected_checksum() const {
  std::uint32_t c = 0;
  const std::uint64_t total = total_words();
  for (std::uint64_t i = 0; i < total; ++i) {
    c = c * 31 + (static_cast<std::uint32_t>(i) ^ 0xA5A5A5A5u);
  }
  return c;
}

}  // namespace tdsim::workloads
