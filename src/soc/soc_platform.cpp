#include "soc/soc_platform.h"

#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/report.h"

namespace tdsim::soc {

namespace {
constexpr std::uint64_t kRegsBase = 0x1000'0000;
constexpr std::uint64_t kRegsStride = 0x100;
constexpr std::uint64_t kMemoryBase = 0x2000'0000;
constexpr std::size_t kMemorySize = 64 * 1024;
}  // namespace

SocPlatform::SocPlatform(Kernel& kernel, const SocConfig& config)
    : Module(kernel, "soc"), config_(config) {
  if (config_.streams == 0) {
    Report::error("SocPlatform: at least one stream required");
  }
  if (config_.words_per_stream % config_.packet_words != 0) {
    Report::error(
        "SocPlatform: words_per_stream must be a multiple of packet_words");
  }
  kernel.set_global_quantum(config_.quantum);

  if (config_.adaptive.has_value() && !config_.split_domains) {
    Report::error("SocPlatform: config.adaptive requires split_domains "
                  "(the kernel default domain is shared with whatever else "
                  "runs in the kernel)");
  }
  SyncDomain* cpu_domain = nullptr;
  SyncDomain* periph_domain = nullptr;
  SyncDomain* noc_domain = nullptr;
  if (config_.split_domains) {
    cpu_domain = &kernel.create_domain({.name = "soc.cpu",
                                        .quantum = config_.quantum,
                                        .policy = config_.adaptive});
    periph_domain = &kernel.create_domain({.name = "soc.periph",
                                           .quantum = config_.quantum,
                                           .policy = config_.adaptive});
    noc_domain = &kernel.create_domain({.name = "soc.noc",
                                        .quantum = config_.quantum,
                                        .policy = config_.adaptive});
  }

  bus_ = std::make_unique<tlm::Bus>("soc.bus", 2_ns);
  memory_ = std::make_unique<tlm::Memory>("soc.mem", kMemorySize, 1_ns);
  bus_->map(kMemoryBase, kMemorySize, *memory_);

  noc::Mesh::Config mesh_config;
  mesh_config.columns = config_.mesh_columns;
  mesh_config.rows = config_.mesh_rows;
  mesh_config.link_depth = config_.noc_link_depth;
  mesh_config.timing = config_.router_timing;
  mesh_ = std::make_unique<noc::Mesh>(kernel, "soc.noc", mesh_config);
  const std::size_t nodes = mesh_->node_count();

  // One network interface per mesh node, flavor-matched.
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto id = static_cast<noc::NodeId>(n);
    const std::string name = "ni" + std::to_string(n);
    if (config_.flavor == FifoFlavor::Smart) {
      nis_.push_back(std::make_unique<noc::SmartNetworkInterface>(
          *this, name, id, mesh_->local_in(id), mesh_->local_out(id)));
    } else {
      nis_.push_back(std::make_unique<noc::SyncNetworkInterface>(
          *this, name, id, mesh_->local_in(id), mesh_->local_out(id)));
    }
    if (noc_domain != nullptr) {
      nis_.back()->set_default_domain(*noc_domain);
    }
  }

  // Streams: source --fifo--> transform --fifo--> NI ~NoC~ NI --fifo--> sink.
  std::vector<std::uint64_t> bases;
  for (std::size_t s = 0; s < config_.streams; ++s) {
    const auto src_node = static_cast<noc::NodeId>(s % nodes);
    const auto dst_node = static_cast<noc::NodeId>((s + 1) % nodes);
    const std::string prefix = "s" + std::to_string(s);

    auto& src_to_mid = make_fifo(prefix + ".src_mid");
    auto& mid_to_ni = make_fifo(prefix + ".mid_ni");
    auto& ni_to_sink = make_fifo(prefix + ".ni_sink");

    // Destination-side channel first, to learn its channel id.
    noc::RxChannelConfig rx;
    rx.fifo = &ni_to_sink;
    rx.per_word = config_.ni_per_word;
    const noc::ChannelId rx_channel = nis_[dst_node]->add_rx_channel(rx);

    noc::TxChannelConfig tx;
    tx.fifo = &mid_to_ni;
    tx.dest = dst_node;
    tx.dest_channel = rx_channel;
    tx.packet_words = config_.packet_words;
    tx.per_word = config_.ni_per_word;
    nis_[src_node]->add_tx_channel(tx);

    Accelerator::Config src_cfg;
    src_cfg.output = &src_to_mid;
    src_cfg.per_word = config_.source_per_word;
    src_cfg.mul = 1;
    src_cfg.add = static_cast<std::uint32_t>(s);
    src_cfg.total_words = config_.words_per_stream;
    src_cfg.block_words = config_.block_words;
    src_cfg.domain = periph_domain;
    accelerators_.push_back(
        std::make_unique<Accelerator>(*this, prefix + ".src", src_cfg));

    Accelerator::Config mid_cfg;
    mid_cfg.input = &src_to_mid;
    mid_cfg.output = &mid_to_ni;
    mid_cfg.per_word = config_.transform_per_word;
    mid_cfg.mul = 3;
    mid_cfg.add = 1;
    mid_cfg.total_words = config_.words_per_stream;
    mid_cfg.block_words = config_.block_words;
    mid_cfg.domain = periph_domain;
    accelerators_.push_back(
        std::make_unique<Accelerator>(*this, prefix + ".mid", mid_cfg));

    Accelerator::Config sink_cfg;
    sink_cfg.input = &ni_to_sink;
    sink_cfg.per_word = config_.sink_per_word;
    sink_cfg.total_words = config_.words_per_stream;
    sink_cfg.block_words = config_.block_words;
    sink_cfg.domain = periph_domain;
    accelerators_.push_back(
        std::make_unique<Accelerator>(*this, prefix + ".sink", sink_cfg));
    sink_index_.push_back(accelerators_.size() - 1);
  }

  for (auto& ni : nis_) {
    ni->elaborate();
  }

  // Map every accelerator's register bank on the bus.
  for (std::size_t i = 0; i < accelerators_.size(); ++i) {
    const std::uint64_t base = kRegsBase + i * kRegsStride;
    bus_->map(base, Accelerator::kRegisterCount * 4,
              accelerators_[i]->registers());
    bases.push_back(base);
  }

  ControlCore::Config core_config;
  core_config.accelerator_bases = std::move(bases);
  core_config.poll_period = config_.poll_period;
  core_config.monitor_every = config_.monitor_every;
  core_config.poll_phase = config_.poll_phase;
  core_config.domain = cpu_domain;
  core_ = std::make_unique<ControlCore>(*this, "core", core_config);
  core_->socket().bind(*bus_);
}

FifoInterface<std::uint32_t>& SocPlatform::make_fifo(const std::string& name) {
  const std::string full = full_name() + "." + name;
  if (config_.flavor == FifoFlavor::Smart) {
    fifos_.push_back(std::make_unique<SmartFifo<std::uint32_t>>(
        kernel(), full, config_.fifo_depth));
  } else {
    fifos_.push_back(std::make_unique<SyncFifo<std::uint32_t>>(
        kernel(), full, config_.fifo_depth));
  }
  return *fifos_.back();
}

Time SocPlatform::run_to_completion() {
  kernel().run();
  for (const auto& accelerator : accelerators_) {
    if (!accelerator->done()) {
      Report::error("SocPlatform: " + accelerator->full_name() +
                    " did not finish (deadlock in the model?)");
    }
  }
  return kernel().now();
}

void SocPlatform::set_recorder(trace::Recorder* recorder) {
  for (auto& accelerator : accelerators_) {
    accelerator->set_recorder(recorder);
  }
  core_->set_recorder(recorder);
}

std::uint32_t SocPlatform::sink_checksum(std::size_t s) const {
  return accelerators_.at(sink_index_.at(s))->checksum();
}

std::uint32_t SocPlatform::expected_checksum(std::size_t s) const {
  // source emits i + s; transform multiplies by 3 and adds 1; the sink
  // accumulates c = c * 31 + word.
  std::uint32_t c = 0;
  for (std::uint64_t i = 0; i < config_.words_per_stream; ++i) {
    const std::uint32_t src = static_cast<std::uint32_t>(i) +
                              static_cast<std::uint32_t>(s);
    const std::uint32_t mid = src * 3 + 1;
    c = c * 31 + mid;
  }
  return c;
}

bool SocPlatform::all_streams_correct() const {
  for (std::size_t s = 0; s < config_.streams; ++s) {
    if (sink_checksum(s) != expected_checksum(s)) {
      return false;
    }
  }
  return true;
}

std::uint64_t SocPlatform::total_fifo_accesses() const {
  std::uint64_t total = 0;
  for (const auto& fifo : fifos_) {
    total += fifo->total_writes() + fifo->total_reads();
  }
  return total;
}

}  // namespace tdsim::soc
