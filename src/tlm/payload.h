// Memory-mapped TLM substrate (TLM-2.0 loosely-timed analog): generic
// payload and the blocking-transport interface with a time annotation.
//
// The delay reference parameter of b_transport is the TLM-2.0 timing
// annotation: targets *add* their latency to it, and the initiator folds
// the accumulated delay into its local clock (SyncDomain::inc) -- this is the
// "existing method" the paper uses for all memory-mapped communications of
// the case-study SoC.
#pragma once

#include <cstdint>
#include <string>

#include "kernel/time.h"

namespace tdsim::tlm {

enum class Command { Read, Write };

enum class Response {
  Ok,
  AddressError,   ///< No target mapped at the address.
  GenericError,   ///< Target-specific failure.
};

const char* to_string(Response response);

/// Generic payload: byte-addressed transfer of `length` bytes at `address`
/// from/to the buffer `data` (owned by the initiator).
struct Payload {
  Command command = Command::Read;
  std::uint64_t address = 0;
  std::uint8_t* data = nullptr;
  std::size_t length = 0;
  Response response = Response::GenericError;

  bool ok() const { return response == Response::Ok; }
};

/// Blocking transport interface implemented by targets and interconnects.
class TransportIf {
 public:
  virtual ~TransportIf() = default;

  /// Processes `payload`, adding the modeled latency to `delay`.
  virtual void b_transport(Payload& payload, Time& delay) = 0;
};

}  // namespace tdsim::tlm
