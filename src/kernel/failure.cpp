#include "kernel/failure.h"

#include <sstream>

namespace tdsim {

const char* to_string(Health health) {
  switch (health) {
    case Health::Idle:
      return "Idle";
    case Health::Running:
      return "Running";
    case Health::Failed:
      return "Failed";
  }
  return "?";
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::ModelError:
      return "ModelError";
    case FailureKind::DeltaLivelock:
      return "DeltaLivelock";
    case FailureKind::Watchdog:
      return "Watchdog";
    case FailureKind::Injected:
      return "Injected";
    case FailureKind::Unknown:
      return "Unknown";
  }
  return "?";
}

std::string FailureReport::to_string() const {
  std::ostringstream out;
  out << "FailureReport{" << tdsim::to_string(kind) << "} at " << at.ps()
      << " ps, delta_cycles=" << delta_cycles
      << ", timed_waves=" << timed_waves << '\n';
  out << "  cause: " << message << '\n';
  if (!process.empty()) {
    out << "  process: " << process;
    if (!domain.empty()) {
      out << " (domain " << domain << ")";
    }
    out << '\n';
  } else if (!domain.empty()) {
    out << "  domain: " << domain << '\n';
  }
  if (has_lookahead_bound) {
    out << "  lookahead bound: ";
    if (lookahead_bound == Time::max()) {
      out << "unbounded";
    } else {
      out << lookahead_bound.ps() << " ps";
    }
    out << '\n';
  }
  for (const auto& front : fronts) {
    out << "  front " << front.domain << ": " << front.front.ps()
        << " ps, syncs=" << front.syncs << '\n';
  }
  for (const auto& decision : last_decisions) {
    out << "  quantum decision #" << decision.serial << " at "
        << decision.at.ps() << " ps: " << decision.old_quantum.ps() << " -> "
        << decision.new_quantum.ps() << " (" << decision.reason << ")\n";
  }
  return out.str();
}

}  // namespace tdsim
