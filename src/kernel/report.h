// Diagnostic reporting, a slimmed-down analog of sc_report.
//
// Errors raise SimulationError (an exception) so tests can assert on misuse
// of the kernel or of the channels; warnings and infos go to a stream that
// can be silenced or captured.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

namespace tdsim {

/// Thrown on fatal misuse of the simulator (wait() from a method process,
/// decreasing dates on a Smart FIFO side, binding errors, ...).
class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what)
      : std::runtime_error(what) {}
};

enum class Severity { Info, Warning, Error };

/// Process-wide report sink. Defaults to stderr for warnings and stdout for
/// infos; replaceable for tests.
class Report {
 public:
  using Handler = std::function<void(Severity, const std::string&)>;

  /// Emits a report. Severity::Error additionally throws SimulationError.
  static void emit(Severity severity, const std::string& message);

  static void info(const std::string& message) {
    emit(Severity::Info, message);
  }
  static void warning(const std::string& message) {
    emit(Severity::Warning, message);
  }
  [[noreturn]] static void error(const std::string& message);

  /// Replaces the sink; returns the previous one. Pass nullptr to restore
  /// the default sink.
  static Handler set_handler(Handler handler);

  /// Number of warnings emitted since process start (for tests).
  static std::uint64_t warning_count();
};

}  // namespace tdsim
