// Kernel::build / snapshot / fork -- the restart-from-log checkpoint
// machinery declared in kernel/snapshot.h.
#include "kernel/snapshot.h"

#include <memory>
#include <utility>

#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {

namespace {

/// Exception-safe flag flip (a throwing build step must not leave the
/// kernel stuck "inside a build").
class FlagScope {
 public:
  FlagScope(bool& flag, bool value) : flag_(flag), saved_(flag) {
    flag_ = value;
  }
  ~FlagScope() { flag_ = saved_; }
  FlagScope(const FlagScope&) = delete;
  FlagScope& operator=(const FlagScope&) = delete;

 private:
  bool& flag_;
  bool saved_;
};

}  // namespace

void Kernel::build(std::function<void(Kernel&)> step) {
  if (step == nullptr) {
    return;
  }
  if (in_build_) {
    step(*this);  // nested: the outer step is the recorded unit
    return;
  }
  if (!replaying_) {
    build_log_.push_back(step);
  }
  FlagScope scope(in_build_, true);
  step(*this);
}

Snapshot Kernel::snapshot() const {
  if (current_process() != nullptr || active_task() != nullptr) {
    Report::error(
        "Kernel::snapshot is only callable from outside a running "
        "simulation");
  }
  if (external_elaboration_) {
    Report::error(
        "Kernel::snapshot: elaboration happened outside Kernel::build "
        "steps, so the construction log cannot replay this kernel; route "
        "all elaboration through build() to make it snapshot-capable");
  }
  if (health_ == Health::Failed) {
    Report::error(
        "Kernel::snapshot: kernel is Failed (" + failure_report_.message +
        "); a failed run is not a replayable warm point -- snapshot before "
        "running, or fork from an earlier snapshot");
  }
  Snapshot snapshot;
  snapshot.config = config_;
  snapshot.log = build_log_;
  snapshot.warmed_to = now_;
  snapshot.warm_delta_cycles = stats_.delta_cycles;
  return snapshot;
}

std::unique_ptr<Kernel> Kernel::fork(const Snapshot& snapshot,
                                     ForkOptions options) {
  auto kernel = std::make_unique<Kernel>(
      options.config.resolved_over(snapshot.config));
  // The fork inherits the log up front, so it is itself snapshot-capable
  // (and further forkable) from the moment the replay lands.
  kernel->build_log_ = snapshot.log;
  {
    FlagScope scope(kernel->replaying_, true);
    for (const auto& step : snapshot.log) {
      step(*kernel);
    }
  }
  if (kernel->now_ != snapshot.warmed_to ||
      kernel->stats_.delta_cycles != snapshot.warm_delta_cycles) {
    Report::error(
        "Kernel::fork: replay fingerprint mismatch (snapshot warm date " +
        snapshot.warmed_to.to_string() + ", " +
        std::to_string(snapshot.warm_delta_cycles) +
        " delta cycles; replay reached " + kernel->now_.to_string() + ", " +
        std::to_string(kernel->stats_.delta_cycles) +
        " delta cycles) -- a build step is nondeterministic or mutated "
        "state outside the kernel");
  }
  if (options.diverge != nullptr) {
    kernel->build(std::move(options.diverge));
  }
  return kernel;
}

}  // namespace tdsim
