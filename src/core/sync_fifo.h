// Reference timed FIFO ("TDless", paper SII.B): a regular FIFO with a
// sync() at the beginning of each public method. One context switch per
// access, but "it represents the behavior and the timing of the real system
// as faithfully as possible" -- the Smart FIFO must match its dates exactly.
//
// Chunked mode (set_chunk_capacity >= 2, or the TDSIM_CHUNKED default)
// batches the data-path sync *accounting*: every access still performs
// the identical date-faithful synchronization (the timing recurrence of
// the reference model is untouchable), but only one access per
// chunk_capacity books the per-cause sync (SyncDomain::sync_unbooked for
// the rest), and the capacity is forwarded to the underlying Fifo's
// notification batching. Data-path dates are bit-exact with per-element
// mode; the syncs_fifo books (and the accuracy signals the adaptive
// quantum controller derives from them) shrink by the chunk factor. The
// low-rate probes (is_full / is_empty / get_size) keep full per-access
// accounting.
//
// Also UntimedFifo, the regular FIFO behind the FifoInterface, for the
// untimed model of the paper's Fig. 5 benchmark.
#pragma once

#include <string>
#include <utility>

#include "core/fifo_interface.h"
#include "kernel/domain_link.h"
#include "kernel/fifo.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace tdsim {

template <typename T>
class SyncFifo final : public FifoInterface<T> {
 public:
  SyncFifo(Kernel& kernel, std::string name, std::size_t depth)
      : kernel_(kernel), fifo_(kernel, std::move(name), depth) {
    domain_link_.set_label(fifo_.name());
    // fifo_ adopted the kernel default itself; mirror it on the sync side.
    chunk_capacity_ = kernel_.default_chunk_capacity();
  }

  /// Sync-cause hint for the adaptive quantum controller: the per-access
  /// syncs of this reference FIFO are attributed to `cause` (default
  /// SyncCause::Explicit, the historical attribution -- both are
  /// accuracy_relevant()). A model that treats a SyncFifo as a
  /// date-accurate hand-off point can reclassify it as
  /// SyncCause::SyncPoint to make the controller's decision trace name
  /// the pressure precisely.
  void set_data_sync_cause(SyncCause cause) { data_sync_cause_ = cause; }

  /// Declares the FIFO's minimum modeling latency on both links (the
  /// probes' own and the underlying FIFO's) -- see Fifo::declare_min_latency.
  void declare_min_latency(Time latency) {
    domain_link_.set_min_latency(latency);
    fifo_.declare_min_latency(latency);
  }

  void write(T value) override {
    SyncDomain& domain = kernel_.current_domain();
    if (chunk_capacity_ <= 1 || write_accesses_ % chunk_capacity_ == 0) {
      domain.sync(data_sync_cause_);
    } else {
      domain.sync_unbooked();
    }
    write_accesses_++;
    fifo_.write(std::move(value));
  }

  T read() override {
    SyncDomain& domain = kernel_.current_domain();
    if (chunk_capacity_ <= 1 || read_accesses_ % chunk_capacity_ == 0) {
      domain.sync(data_sync_cause_);
    } else {
      domain.sync_unbooked();
    }
    read_accesses_++;
    return fifo_.read();
  }

  bool is_full() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(data_sync_cause_);
    return fifo_.full();
  }

  bool is_empty() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(data_sync_cause_);
    return fifo_.empty();
  }

  std::size_t get_size() override {
    SyncDomain& domain = kernel_.current_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::Monitor);
    return fifo_.num_available();
  }

  /// Fires on every write; a synchronized observer re-checking is_empty()
  /// sees exactly the regular FIFO's state.
  Event& not_empty_event() override { return fifo_.data_written_event(); }
  Event& not_full_event() override { return fifo_.data_read_event(); }

  std::size_t depth() const override { return fifo_.depth(); }
  std::uint64_t total_writes() const override { return fifo_.total_writes(); }
  std::uint64_t total_reads() const override { return fifo_.total_reads(); }

  /// Chunked sync elision (see the header comment); also forwarded to the
  /// underlying Fifo's notification batching.
  void set_chunk_capacity(std::size_t capacity) override {
    chunk_capacity_ = capacity >= 2 ? capacity : 0;
    fifo_.set_chunk_capacity(capacity);
  }
  std::size_t chunk_capacity() const override { return chunk_capacity_; }

  Fifo<T>& underlying() { return fifo_; }

 private:
  Kernel& kernel_;
  /// The full()/empty() probes bypass Fifo's own link; track them here.
  DomainLink domain_link_;
  Fifo<T> fifo_;
  /// See set_data_sync_cause().
  SyncCause data_sync_cause_ = SyncCause::Explicit;
  /// Chunked sync elision (0 = sync on every data access).
  std::size_t chunk_capacity_ = 0;
  std::uint64_t write_accesses_ = 0;
  std::uint64_t read_accesses_ = 0;
};

/// The plain FIFO behind the common interface, for untimed models: accesses
/// carry no timing and never synchronize (processes in an untimed model
/// have a zero offset anyway).
template <typename T>
class UntimedFifo final : public FifoInterface<T> {
 public:
  UntimedFifo(Kernel& kernel, std::string name, std::size_t depth)
      : fifo_(kernel, std::move(name), depth) {}

  void write(T value) override { fifo_.write(std::move(value)); }
  T read() override { return fifo_.read(); }
  bool is_full() override { return fifo_.full(); }
  bool is_empty() override { return fifo_.empty(); }
  std::size_t get_size() override { return fifo_.num_available(); }
  Event& not_empty_event() override { return fifo_.data_written_event(); }
  Event& not_full_event() override { return fifo_.data_read_event(); }
  std::size_t depth() const override { return fifo_.depth(); }
  std::uint64_t total_writes() const override { return fifo_.total_writes(); }
  std::uint64_t total_reads() const override { return fifo_.total_reads(); }

  /// Forward to the underlying Fifo's notification batching (there is no
  /// sync to elide in an untimed model).
  void set_chunk_capacity(std::size_t capacity) override {
    fifo_.set_chunk_capacity(capacity);
  }
  std::size_t chunk_capacity() const override {
    return fifo_.chunk_capacity();
  }

  Fifo<T>& underlying() { return fifo_; }

 private:
  Fifo<T> fifo_;
};

}  // namespace tdsim
