// The Fig. 5 workload system (workloads::Pipeline): functional
// correctness in all four model kinds, exact TDless/TDfull date equality
// across the depth/rate sweep, the context-switch scaling behind Fig. 5,
// and the NaiveTD anti-model's properties.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel/report.h"
#include "workloads/pipeline.h"

namespace tdsim {
namespace {

using workloads::ModelKind;
using workloads::Pipeline;
using workloads::PipelineConfig;

struct RunOutcome {
  Time end_date;
  std::uint64_t context_switches;
  bool correct;
};

RunOutcome run(const PipelineConfig& config) {
  Kernel kernel;
  Pipeline pipeline(kernel, config);
  const Time end = pipeline.run_to_completion();
  return {end, kernel.stats().context_switches, pipeline.correct()};
}

PipelineConfig small(ModelKind kind) {
  PipelineConfig config;
  config.kind = kind;
  config.blocks = 6;
  config.words_per_block = 50;
  config.fifo_depth = 4;
  return config;
}

TEST(Pipeline, AllKindsTransferCorrectly) {
  for (ModelKind kind : {ModelKind::Untimed, ModelKind::TDless,
                         ModelKind::TDfull, ModelKind::NaiveTD}) {
    EXPECT_TRUE(run(small(kind)).correct) << workloads::to_string(kind);
  }
}

TEST(Pipeline, UntimedEndsAtDateZero) {
  // No timing annotations at all: the whole transfer happens in delta
  // cycles at t=0.
  EXPECT_TRUE(run(small(ModelKind::Untimed)).end_date.is_zero());
}

TEST(Pipeline, TimedModelsAdvanceTime) {
  EXPECT_GT(run(small(ModelKind::TDless)).end_date, Time{});
  EXPECT_GT(run(small(ModelKind::TDfull)).end_date, Time{});
}

TEST(Pipeline, RejectsEmptyWorkload) {
  PipelineConfig config = small(ModelKind::TDfull);
  config.blocks = 0;
  Kernel kernel;
  EXPECT_THROW(Pipeline(kernel, config), SimulationError);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const RunOutcome a = run(small(ModelKind::TDfull));
  const RunOutcome b = run(small(ModelKind::TDfull));
  EXPECT_EQ(a.end_date, b.end_date);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

// ---------------------------------------------------------------------
// The paper's central equality, swept over depth x rate-variation x
// workload shape: TDfull must end at exactly the TDless date.
// ---------------------------------------------------------------------

class PipelineEquality
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool, int>> {};

TEST_P(PipelineEquality, TdfullMatchesTdlessDates) {
  const auto [depth, vary, shape] = GetParam();
  PipelineConfig config;
  config.fifo_depth = depth;
  config.vary_rates = vary;
  switch (shape) {
    case 0:  // short blocks
      config.blocks = 20;
      config.words_per_block = 10;
      break;
    case 1:  // producer-limited
      config.blocks = 4;
      config.words_per_block = 100;
      config.source_per_word = Time(9, TimeUnit::NS);
      config.sink_per_word = Time(1, TimeUnit::NS);
      break;
    case 2:  // consumer-limited
      config.blocks = 4;
      config.words_per_block = 100;
      config.source_per_word = Time(1, TimeUnit::NS);
      config.sink_per_word = Time(9, TimeUnit::NS);
      break;
    default:  // transmitter-limited
      config.blocks = 4;
      config.words_per_block = 100;
      config.transmit_per_word = Time(12, TimeUnit::NS);
      break;
  }

  config.kind = ModelKind::TDless;
  const RunOutcome reference = run(config);
  config.kind = ModelKind::TDfull;
  const RunOutcome smart = run(config);

  EXPECT_TRUE(reference.correct);
  EXPECT_TRUE(smart.correct);
  EXPECT_EQ(reference.end_date, smart.end_date)
      << "depth=" << depth << " vary=" << vary << " shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineEquality,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 4, 16, 64),
                       ::testing::Bool(), ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------
// Fig. 5 mechanics: context-switch counts, not wall time (robust in CI).
// ---------------------------------------------------------------------

TEST(Pipeline, TdlessSwitchesFlatInDepth) {
  PipelineConfig config = small(ModelKind::TDless);
  config.fifo_depth = 1;
  const std::uint64_t shallow = run(config).context_switches;
  config.fifo_depth = 64;
  const std::uint64_t deep = run(config).context_switches;
  // Annotation waits dominate; depth changes only the blocking pattern.
  // The paper's observation is "roughly the same speed for all FIFO
  // depths" -- assert within 1.5x either way.
  const double ratio = static_cast<double>(deep) / static_cast<double>(shallow);
  EXPECT_GT(ratio, 1.0 / 1.5);
  EXPECT_LT(ratio, 1.5);
}

TEST(Pipeline, TdfullSwitchesShrinkWithDepth) {
  PipelineConfig config = small(ModelKind::TDfull);
  config.fifo_depth = 1;
  const std::uint64_t shallow = run(config).context_switches;
  config.fifo_depth = 4;
  const std::uint64_t mid = run(config).context_switches;
  config.fifo_depth = 64;
  const std::uint64_t deep = run(config).context_switches;
  EXPECT_LT(mid, shallow / 2);
  EXPECT_LT(deep, mid / 2);
}

TEST(Pipeline, TdfullFarFewerSwitchesThanTdlessAtDepth4) {
  PipelineConfig config = small(ModelKind::TDless);
  config.fifo_depth = 4;
  const std::uint64_t tdless = run(config).context_switches;
  config.kind = ModelKind::TDfull;
  const std::uint64_t tdfull = run(config).context_switches;
  EXPECT_LT(tdfull, tdless / 2);
}

TEST(Pipeline, UntimedSwitchesOnlyOnFullEmpty) {
  PipelineConfig config = small(ModelKind::Untimed);
  config.fifo_depth = 64;
  // With deep FIFOs, blocking is rare: a handful of switches for 300 words.
  EXPECT_LT(run(config).context_switches, 100u);
}

// ---------------------------------------------------------------------
// NaiveTD (Fig. 3): fast but wrong.
// ---------------------------------------------------------------------

TEST(Pipeline, NaiveTdDatesDivergeFromReference) {
  PipelineConfig config = small(ModelKind::TDless);
  const Time reference = run(config).end_date;
  config.kind = ModelKind::NaiveTD;
  config.quantum = Time(10, TimeUnit::US);
  const RunOutcome naive = run(config);
  EXPECT_TRUE(naive.correct);  // functionally fine (Kahn network)...
  EXPECT_NE(naive.end_date, reference);  // ...but the dates are wrong
}

TEST(Pipeline, NaiveTdSavesSwitchesOverTdless) {
  PipelineConfig config = small(ModelKind::NaiveTD);
  config.quantum = Time(1, TimeUnit::US);
  const std::uint64_t naive = run(config).context_switches;
  config.kind = ModelKind::TDless;
  const std::uint64_t tdless = run(config).context_switches;
  EXPECT_LT(naive, tdless / 2);
}

}  // namespace
}  // namespace tdsim
