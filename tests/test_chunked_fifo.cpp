// Chunked channel modes (core/chunk_protocol.h): cross-domain SmartFifo
// transfer under lookahead free-running stays bit-exact with per-element
// mode and with itself across worker counts, mid-run mode switches are
// clean, partial chunks flush at horizons and at run() exit, and the
// SyncFifo / Fifo chunked modes batch their accounting without moving a
// date.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/fifo.h"
#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

/// What must not move between chunked and per-element mode: every date
/// and every blocking decision. (Delta-cycle and notification counts do
/// legitimately shrink with batching, so they are compared only across
/// worker counts within one mode, never across modes.)
struct DateTrace {
  Time end;
  std::uint64_t writer_blocks = 0;
  std::uint64_t reader_blocks = 0;
  std::vector<Time> dates;
};

void expect_dates_equal(const DateTrace& a, const DateTrace& b,
                        const std::string& what) {
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.writer_blocks, b.writer_blocks) << what;
  EXPECT_EQ(a.reader_blocks, b.reader_blocks) << what;
  EXPECT_EQ(a.dates, b.dates) << what;
}

/// The scheduler-level fingerprint that must be identical across worker
/// counts within one mode (chunked or not): the parallel schedule may
/// never change what the sequential one computes.
struct SchedulerTrace {
  std::uint64_t delta_cycles = 0;
  std::uint64_t timed_waves = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t event_triggers = 0;
  std::uint64_t lookahead_advances = 0;
};

struct ClusterRun {
  DateTrace dates;
  SchedulerTrace sched;
};

/// Independent producer/consumer clusters, one cross-domain SmartFifo
/// each (the test_lookahead shape): groups free-run past the global
/// horizon, so chunk flushes happen inside lookahead extensions as well
/// as in the main loop. `chunk_capacity` 1 pins per-element mode even
/// when the TDSIM_CHUNKED env default is active, making the reference
/// side of the comparisons environment-proof.
ClusterRun run_clusters(std::size_t workers, std::size_t chunk_capacity,
                        std::size_t writes_per_cluster = 40,
                        std::size_t switch_capacity_at = 0) {
  Kernel k;
  k.set_workers(workers);
  k.set_lookahead_limit(64);
  struct Cluster {
    SyncDomain* producer_side;
    SyncDomain* consumer_side;
    std::unique_ptr<SmartFifo<int>> fifo;
    std::vector<Time> dates;
  };
  constexpr std::size_t kClusters = 3;
  std::vector<Cluster> clusters(kClusters);
  for (std::size_t c = 0; c < kClusters; ++c) {
    Cluster& cluster = clusters[c];
    const std::string suffix = std::to_string(c);
    cluster.producer_side = &k.create_domain(
        {.name = "chp" + suffix, .quantum = 40_ns, .concurrent = true});
    cluster.consumer_side = &k.create_domain(
        {.name = "chc" + suffix, .quantum = 300_ns, .concurrent = true});
    cluster.fifo = std::make_unique<SmartFifo<int>>(k, "chf" + suffix, 3);
    cluster.fifo->set_chunk_capacity(chunk_capacity);
    cluster.fifo->declare_cell_latency(40_ns);
    ThreadOptions popts;
    popts.domain = cluster.producer_side;
    k.spawn_thread("producer" + suffix,
                   [&k, &cluster, c, writes_per_cluster, switch_capacity_at,
                    chunk_capacity] {
      for (std::size_t i = 0; i < writes_per_cluster; ++i) {
        if (switch_capacity_at != 0 && i == switch_capacity_at) {
          // Mid-run mode switch from a process serialized with both
          // sides: element -> chunked on even clusters, chunked ->
          // element on odd ones (both directions must be clean).
          cluster.fifo->set_chunk_capacity(
              c % 2 == 0 ? chunk_capacity : 1);
        }
        k.current_domain().inc(
            (i % 5 + 1 + static_cast<int>(c)) * 3_ns);
        cluster.fifo->write(static_cast<int>(i));
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = cluster.consumer_side;
    k.spawn_thread("consumer" + suffix,
                   [&k, &cluster, c, writes_per_cluster] {
      for (std::size_t i = 0; i < writes_per_cluster; ++i) {
        const int v = cluster.fifo->read();
        k.current_domain().inc((i % 3 + 1 + static_cast<int>(c)) * 4_ns);
        cluster.dates.push_back(k.current_domain().local_time_stamp());
        if (v != static_cast<int>(i)) {
          cluster.dates.push_back(Time::max());  // corruption marker
        }
      }
    }, copts);
  }
  k.run();
  ClusterRun result;
  result.dates.end = k.now();
  const KernelStats& stats = k.stats();
  result.sched.delta_cycles = stats.delta_cycles;
  result.sched.timed_waves = stats.timed_waves;
  result.sched.context_switches = stats.context_switches;
  result.sched.event_triggers = stats.event_triggers;
  result.sched.lookahead_advances = stats.lookahead_advances;
  for (Cluster& cluster : clusters) {
    result.dates.writer_blocks += cluster.fifo->writer_blocks();
    result.dates.reader_blocks += cluster.fifo->reader_blocks();
    result.dates.dates.insert(result.dates.dates.end(),
                              cluster.dates.begin(), cluster.dates.end());
  }
  return result;
}

TEST(ChunkedFifo, ChunkedDatesMatchPerElementMode) {
  const ClusterRun element = run_clusters(0, 1);
  for (std::size_t capacity : {2u, 5u, 16u, 64u}) {
    const ClusterRun chunked = run_clusters(0, capacity);
    expect_dates_equal(element.dates, chunked.dates,
                       "capacity=" + std::to_string(capacity));
  }
}

TEST(ChunkedFifo, ChunkedBitExactAcrossWorkersUnderFreeRun) {
  const ClusterRun sequential = run_clusters(0, 16);
  EXPECT_EQ(sequential.sched.lookahead_advances, 0u);
  for (std::size_t workers : {1u, 2u, 4u}) {
    const ClusterRun parallel = run_clusters(workers, 16);
    const std::string what = "workers=" + std::to_string(workers);
    expect_dates_equal(sequential.dates, parallel.dates, what);
    EXPECT_EQ(sequential.sched.delta_cycles, parallel.sched.delta_cycles)
        << what;
    EXPECT_EQ(sequential.sched.timed_waves, parallel.sched.timed_waves)
        << what;
    EXPECT_EQ(sequential.sched.context_switches,
              parallel.sched.context_switches)
        << what;
    EXPECT_EQ(sequential.sched.event_triggers, parallel.sched.event_triggers)
        << what;
    if (workers >= 2) {
      // The chunked clusters must actually have free-run past the global
      // horizon (flushing partial chunks inside the extensions), not
      // fallen back to the barrier.
      EXPECT_GT(parallel.sched.lookahead_advances, 0u) << what;
    }
  }
}

TEST(ChunkedFifo, MidRunCapacitySwitchKeepsDatesExact) {
  const ClusterRun element = run_clusters(0, 1);
  for (std::size_t workers : {0u, 2u}) {
    const ClusterRun switched =
        run_clusters(workers, 16, 40, /*switch_capacity_at=*/20);
    expect_dates_equal(element.dates, switched.dates,
                       "mid-run switch, workers=" + std::to_string(workers));
  }
}

TEST(ChunkedFifo, PartialChunksFlushAtHorizonsAndRunExit) {
  // 37 writes with capacity 64: no write ever reaches a chunk boundary,
  // so every element the consumer sees was published by a flush point
  // (cascade iterations, lookahead waves, or the blocking paths). The
  // run completing with exact dates is the assertion -- an unflushed
  // chunk would leave the consumer suspended forever.
  const ClusterRun element = run_clusters(0, 1, 37);
  for (std::size_t workers : {0u, 2u}) {
    const ClusterRun chunked = run_clusters(workers, 64, 37);
    expect_dates_equal(element.dates, chunked.dates,
                       "partial chunks, workers=" + std::to_string(workers));
  }
}

/// SyncFifo chunked mode: every access still synchronizes date-faithfully
/// (end dates identical), but only one access per chunk books the
/// per-cause sync.
TEST(ChunkedFifo, SyncFifoChunkingBatchesSyncBooksNotDates) {
  const auto run = [](std::size_t capacity) {
    Kernel k;
    SyncDomain& prod = k.create_domain({.name = "sfp", .quantum = 100_ns});
    SyncDomain& cons = k.create_domain({.name = "sfc", .quantum = 100_ns});
    SyncFifo<int> fifo(k, "sf_chunk", 4);
    fifo.set_chunk_capacity(capacity);
    ThreadOptions popts;
    popts.domain = &prod;
    k.spawn_thread("sf_writer", [&] {
      for (int i = 0; i < 200; ++i) {
        k.current_domain().inc(7_ns);
        fifo.write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    k.spawn_thread("sf_reader", [&] {
      for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(fifo.read(), i);
        k.current_domain().inc(9_ns);
      }
    }, copts);
    k.run();
    return std::pair<Time, std::uint64_t>{
        k.now(), prod.syncs(SyncCause::Explicit) +
                     cons.syncs(SyncCause::Explicit)};
  };
  const auto [element_end, element_syncs] = run(1);
  const auto [chunked_end, chunked_syncs] = run(8);
  EXPECT_EQ(element_end, chunked_end);
  EXPECT_GT(element_syncs, 0u);
  // One booked sync per 8 accesses instead of per access (the rest run
  // as sync_unbooked: same suspension, no per-cause entry).
  EXPECT_LT(chunked_syncs, element_syncs / 4);
}

/// Plain kernel Fifo chunked mode: notification batching only -- data
/// order, completion and the (untimed) end date are unchanged.
TEST(ChunkedFifo, PlainFifoChunkingKeepsOrderAndEndDate) {
  const auto run = [](std::size_t capacity) {
    Kernel k;
    Fifo<int> fifo(k, "pf_chunk", 4);
    fifo.set_chunk_capacity(capacity);
    std::uint64_t sum = 0;
    k.spawn_thread("pf_writer", [&] {
      for (int i = 0; i < 100; ++i) {
        fifo.write(i);
        k.wait(3_ns);
      }
    });
    k.spawn_thread("pf_reader", [&] {
      for (int i = 0; i < 100; ++i) {
        const int v = fifo.read();
        EXPECT_EQ(v, i);
        sum += static_cast<std::uint64_t>(v);
        k.wait(5_ns);
      }
    });
    k.run();
    return std::pair<Time, std::uint64_t>{k.now(), sum};
  };
  const auto [element_end, element_sum] = run(1);
  const auto [chunked_end, chunked_sum] = run(16);
  EXPECT_EQ(element_end, chunked_end);
  EXPECT_EQ(element_sum, chunked_sum);
}

}  // namespace
}  // namespace tdsim
