#include "kernel/time.h"

#include <array>
#include <ostream>

namespace tdsim {

std::string Time::to_string() const {
  if (ps_ == 0) {
    return "0 s";
  }
  struct UnitName {
    TimeUnit unit;
    const char* name;
  };
  static constexpr std::array<UnitName, 5> kUnits = {{
      {TimeUnit::S, "s"},
      {TimeUnit::MS, "ms"},
      {TimeUnit::US, "us"},
      {TimeUnit::NS, "ns"},
      {TimeUnit::PS, "ps"},
  }};
  for (const auto& u : kUnits) {
    const std::uint64_t scale = picoseconds_per(u.unit);
    if (ps_ % scale == 0) {
      return std::to_string(ps_ / scale) + " " + u.name;
    }
  }
  return std::to_string(ps_) + " ps";
}

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.to_string();
}

}  // namespace tdsim
