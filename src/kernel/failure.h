// Defined failure semantics for the kernel.
//
// Any exception leaving Kernel::run() transitions the kernel to
// Health::Failed, carrying a structured FailureReport: what threw
// (classified by exception type), where (failing process/domain), and the
// simulation state at the point of failure (execution fronts, last quantum
// decisions, delta/wave counters). A Failed kernel refuses further run()
// and snapshot() calls; its fibers are already terminated and its
// Scheduler worker slots released, so destruction is leak-free and
// siblings on the shared scheduler are unaffected.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/quantum_controller.h"
#include "kernel/time.h"

namespace tdsim {

/// Kernel lifecycle with respect to run(). Idle -> Running on run() entry,
/// Running -> Idle on clean return, Running -> Failed when an exception
/// unwinds out of run(). Failed is terminal.
enum class Health { Idle, Running, Failed };

const char* to_string(Health health);

/// Why a kernel failed, classified from the escaping exception's type.
enum class FailureKind {
  ModelError,     ///< user model / channel misuse (SimulationError or any
                  ///< other exception not listed below)
  DeltaLivelock,  ///< DeltaLivelockError: delta-cycle limit exceeded
  Watchdog,       ///< WatchdogError: wall-clock budget exceeded
  Injected,       ///< InjectedFault: armed FaultPlan action fired
  Unknown,        ///< non-std::exception payload
};

const char* to_string(FailureKind kind);

/// One domain's position at the instant of failure.
struct DomainFront {
  std::string domain;
  /// Domain execution front (max local date over live member processes);
  /// Time::max() when the domain has no live process.
  Time front{};
  std::uint64_t syncs = 0;  ///< performed syncs charged to the domain
};

/// Structured post-mortem attached to a Failed kernel. Everything here is
/// copied out of the kernel at failure time; the report stays valid for
/// the kernel's lifetime and is safe to copy out before destruction.
struct FailureReport {
  FailureKind kind = FailureKind::Unknown;
  std::string message;   ///< exception what() (or a placeholder)
  std::string process;   ///< process whose dispatch raised, if attributable
  std::string domain;    ///< that process's domain (or the lagging domain)
  Time at{};             ///< kernel simulated time at failure
  std::uint64_t delta_cycles = 0;
  std::uint64_t timed_waves = 0;
  std::vector<DomainFront> fronts;  ///< execution fronts, registry order
  /// Last adaptive-quantum decision per domain that has one, registry
  /// order (parallel to a subset of fronts by domain name in reason).
  std::vector<QuantumDecision> last_decisions;
  /// Watchdog trips record the conservative lookahead bound that was in
  /// force (Time::max() when unbounded / not applicable).
  bool has_lookahead_bound = false;
  Time lookahead_bound{};

  /// Multi-line human-readable rendering for logs and quarantine records.
  std::string to_string() const;
};

}  // namespace tdsim
