// Address-decoding interconnect: routes transactions to mapped targets and
// adds a per-hop latency to the annotation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/domain_link.h"
#include "tlm/payload.h"

namespace tdsim::tlm {

class Bus final : public TransportIf {
 public:
  /// `hop_latency` is added to every transaction's delay annotation.
  Bus(std::string name, Time hop_latency)
      : name_(std::move(name)), hop_latency_(hop_latency) {
    // Every routed transaction pays at least the hop latency, so it is the
    // bus's derived minimum latency for the concurrency machinery.
    domain_link_.set_min_latency(hop_latency_);
  }

  /// Maps [base, base+size) to `target`. Regions must not overlap. The
  /// forwarded payload carries the *offset* within the region.
  void map(std::uint64_t base, std::uint64_t size, TransportIf& target);

  void b_transport(Payload& payload, Time& delay) override;

  const std::string& name() const { return name_; }
  std::size_t region_count() const { return regions_.size(); }
  std::uint64_t routed() const { return routed_; }
  std::uint64_t decode_errors() const { return decode_errors_; }

 private:
  struct Region {
    std::uint64_t base;
    std::uint64_t size;
    TransportIf* target;
  };

  const Region* decode(std::uint64_t address, std::size_t length) const;

  std::string name_;
  Time hop_latency_;
  /// Initiators routed through one bus may span domains; declare the
  /// ordering to the parallel scheduler. Labeled for
  /// Kernel::explain_group().
  DomainLink domain_link_{name_};
  std::vector<Region> regions_;  // kept sorted by base
  std::uint64_t routed_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace tdsim::tlm
