#include "core/local_time.h"

#include "kernel/report.h"

namespace tdsim::td {

namespace {

Kernel& kernel_checked() {
  Kernel* k = Kernel::current();
  if (k == nullptr) {
    Report::error("temporal decoupling used outside of a running kernel");
  }
  return *k;
}

Process& process_checked() {
  Kernel& k = kernel_checked();
  Process* p = k.current_process();
  if (p == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  return *p;
}

}  // namespace

Time local_time_stamp() {
  Kernel& k = kernel_checked();
  Process* p = k.current_process();
  // From the scheduler context (e.g. callbacks), the local date degenerates
  // to the global date.
  return p != nullptr ? k.now() + p->local_offset() : k.now();
}

Time local_offset() {
  return process_checked().local_offset();
}

void inc(Time duration) {
  Process& p = process_checked();
  p.set_local_offset(p.local_offset() + duration);
}

void advance_local_to(Time date) {
  Kernel& k = kernel_checked();
  Process& p = process_checked();
  const Time local = k.now() + p.local_offset();
  if (date > local) {
    p.set_local_offset(date - k.now());
  }
}

void sync() {
  Kernel& k = kernel_checked();
  Process& p = process_checked();
  const Time offset = p.local_offset();
  if (offset.is_zero()) {
    return;
  }
  if (p.kind() == ProcessKind::Method) {
    Report::error("sync() called from method process '" + p.name() +
                  "' with a non-zero local offset; use "
                  "method_sync_trigger() instead");
  }
  p.set_local_offset(Time{});
  k.wait(offset);
}

bool is_synchronized() {
  return process_checked().local_offset().is_zero();
}

bool needs_sync() {
  Kernel& k = kernel_checked();
  const Time quantum = k.global_quantum();
  if (quantum.is_zero()) {
    // A zero quantum means "synchronize at every annotation", matching the
    // paper's remark that decoupling can be disabled by setting it to zero.
    return true;
  }
  return process_checked().local_offset() >= quantum;
}

Time local_time_of(const Process& process) {
  return process.kernel().now() + process.local_offset();
}

void method_sync_trigger() {
  Kernel& k = kernel_checked();
  Process& p = process_checked();
  if (p.kind() != ProcessKind::Method) {
    Report::error("method_sync_trigger() called from non-method process '" +
                  p.name() + "'");
  }
  k.next_trigger(p.local_offset());
}

}  // namespace tdsim::td
