// The adaptive quantum controller (kernel/quantum_controller.h):
// convergence direction under churn-heavy vs sync-point-heavy traffic,
// min/max clamping, hysteresis (no oscillation on a steady workload),
// bit-identical decisions across worker counts, the policy-off == fixed
// behavior guarantee, and the explain_group diagnostic that rides along.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "kernel/quantum_controller.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

/// A policy sized for the tiny test workloads: decisions every 8 syncs,
/// no confirmation lag unless a test asks for it.
QuantumPolicy test_policy(Time min_quantum, Time max_quantum) {
  QuantumPolicy policy;
  policy.min_quantum = min_quantum;
  policy.max_quantum = max_quantum;
  policy.min_syncs_per_decision = 8;
  policy.confirm_decisions = 1;
  return policy;
}

/// Spawns `workers` threads into `domain`, each annotating `steps` steps
/// of 10 ns through the canonical loosely-timed pattern -- pure
/// SyncCause::Quantum churn.
void spawn_churn(Kernel& kernel, SyncDomain& domain, int workers,
                 std::uint64_t steps) {
  for (int w = 0; w < workers; ++w) {
    ThreadOptions opts;
    opts.domain = &domain;
    kernel.spawn_thread("churn" + std::to_string(w), [&kernel, steps] {
      for (std::uint64_t i = 0; i < steps; ++i) {
        kernel.current_domain().inc_and_sync_if_needed(10_ns);
      }
    }, opts);
  }
}

TEST(AdaptiveQuantum, GrowsOnPureQuantumChurn) {
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain(
      {.name = "compute", .quantum = 10_ns, .policy = test_policy(10_ns, 10_us)});
  spawn_churn(kernel, domain, 2, 4000);
  kernel.run();
  EXPECT_GT(domain.quantum(), 10_ns);
  EXPECT_GT(kernel.stats().quantum_adjustments, 0u);
  EXPECT_EQ(kernel.stats().domains[domain.id()].quantum_adjustments,
            kernel.stats().quantum_adjustments);
  const QuantumDecision* last = domain.last_quantum_decision();
  ASSERT_NE(last, nullptr);
  EXPECT_GT(last->serial, 0u);
  EXPECT_GT(last->syncs_total, 0u);
}

TEST(AdaptiveQuantum, ShrinksOnSyncPointTraffic) {
  Kernel kernel;
  // Every step publishes state at an exact date (paper SII.A sync point),
  // so accuracy-relevant causes dominate and the tuner must back off.
  SyncDomain& domain = kernel.create_domain(
      {.name = "accurate", .quantum = 10_us, .policy = test_policy(10_ns, 10_us)});
  for (int w = 0; w < 2; ++w) {
    ThreadOptions opts;
    opts.domain = &domain;
    kernel.spawn_thread("sp" + std::to_string(w), [&kernel] {
      for (int i = 0; i < 400; ++i) {
        kernel.current_domain().inc(10_ns);
        kernel.current_domain().sync(SyncCause::SyncPoint);
      }
    }, opts);
  }
  kernel.run();
  EXPECT_LT(domain.quantum(), 10_us);
  const QuantumDecision* last = domain.last_quantum_decision();
  ASSERT_NE(last, nullptr);
  EXPECT_GT(last->syncs_accuracy, 0u);
}

TEST(AdaptiveQuantum, ClampsToPolicyRange) {
  // Grow clamps at max_quantum...
  {
    Kernel kernel;
    SyncDomain& domain = kernel.create_domain(
        {.name = "grow", .quantum = 10_ns, .policy = test_policy(10_ns, 160_ns)});
    spawn_churn(kernel, domain, 2, 4000);
    kernel.run();
    EXPECT_EQ(domain.quantum(), 160_ns);
  }
  // ...shrink clamps at min_quantum.
  {
    Kernel kernel;
    SyncDomain& domain = kernel.create_domain(
        {.name = "shrink", .quantum = 80_ns, .policy = test_policy(20_ns, 80_ns)});
    for (int w = 0; w < 2; ++w) {
      ThreadOptions opts;
      opts.domain = &domain;
      kernel.spawn_thread("sp" + std::to_string(w), [&kernel] {
        for (int i = 0; i < 400; ++i) {
          kernel.current_domain().inc(10_ns);
          kernel.current_domain().sync(SyncCause::SyncPoint);
        }
      }, opts);
    }
    kernel.run();
    EXPECT_EQ(domain.quantum(), 20_ns);
  }
}

TEST(AdaptiveQuantum, AttachClampsTheSeedQuantumImmediately) {
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain({.name = "seeded", .quantum = 1_ms});
  kernel.set_quantum_policy(domain, test_policy(10_ns, 10_us));
  EXPECT_EQ(domain.quantum(), 10_us);
  ASSERT_NE(domain.quantum_policy(), nullptr);
  EXPECT_EQ(domain.quantum_policy()->max_quantum, 10_us);
  // A zero-quantum domain is pulled up to the floor (the controller needs
  // a non-zero quantum to scale).
  SyncDomain& zero = kernel.create_domain(DomainOptions{.name = "zero"});
  kernel.set_quantum_policy(zero, test_policy(10_ns, 10_us));
  EXPECT_EQ(zero.quantum(), 10_ns);
}

TEST(AdaptiveQuantum, OutOfBandSetQuantumIsReclampedAtTheNextHorizon) {
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain(
      {.name = "escaped", .quantum = 100_ns, .policy = test_policy(10_ns, 10_us)});
  // set_quantum bypasses the controller; the escape is corrected at the
  // next horizon and shows up in the decision trace as "clamped".
  domain.set_quantum(1_ms);
  spawn_churn(kernel, domain, 1, 64);
  kernel.run();
  EXPECT_LE(domain.quantum(), 10_us);
  EXPECT_GE(domain.quantum(), 10_ns);
  EXPECT_GT(kernel.stats().quantum_adjustments, 0u);
  ASSERT_NE(domain.last_quantum_decision(), nullptr);
}

TEST(AdaptiveQuantum, PolicyValidationRejectsNonsense) {
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain(DomainOptions{.name = "d"});
  QuantumPolicy zero_min;
  zero_min.min_quantum = Time{};
  EXPECT_THROW(kernel.set_quantum_policy(domain, zero_min), SimulationError);
  QuantumPolicy inverted;
  inverted.min_quantum = 1_us;
  inverted.max_quantum = 10_ns;
  EXPECT_THROW(kernel.set_quantum_policy(domain, inverted), SimulationError);
  // The same validation guards policies handed to create_domain.
  EXPECT_THROW(
      kernel.create_domain({.name = "bad", .policy = inverted}),
      SimulationError);
}

TEST(AdaptiveQuantum, SteadyWorkloadConverges) {
  // Hysteresis / no oscillation: on a steady churn workload, doubling the
  // workload length must not add a single further adjustment once the
  // quantum has converged (the tuner holds at its fixed point instead of
  // oscillating around it).
  const auto run_steps = [](std::uint64_t steps) {
    Kernel kernel;
    SyncDomain& domain = kernel.create_domain(
        {.name = "steady",
         .quantum = 10_ns,
         .policy = test_policy(10_ns, 1280_ns)});
    spawn_churn(kernel, domain, 2, steps);
    kernel.run();
    return std::pair<Time, std::uint64_t>(
        domain.quantum(), kernel.stats().quantum_adjustments);
  };
  const auto [quantum_short, adjustments_short] = run_steps(8000);
  const auto [quantum_long, adjustments_long] = run_steps(16000);
  EXPECT_EQ(quantum_short, 1280_ns);  // converged within the short run
  EXPECT_EQ(quantum_long, quantum_short);
  EXPECT_EQ(adjustments_long, adjustments_short);
}

/// The worker-count determinism model: two independent clusters (each its
/// own concurrency group), each an adaptive churn domain plus a
/// Smart-FIFO stream into an adaptive consumer domain.
struct ParallelModelResult {
  Time final_quantum_a;
  Time final_quantum_b;
  std::uint64_t adjustments = 0;
  std::uint64_t sync_requests = 0;
  std::uint64_t syncs_quantum = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t end_date_ps = 0;

  bool operator==(const ParallelModelResult& o) const {
    return final_quantum_a == o.final_quantum_a &&
           final_quantum_b == o.final_quantum_b &&
           adjustments == o.adjustments &&
           sync_requests == o.sync_requests &&
           syncs_quantum == o.syncs_quantum &&
           delta_cycles == o.delta_cycles && end_date_ps == o.end_date_ps;
  }
};

ParallelModelResult run_parallel_model(std::size_t workers) {
  Kernel kernel;
  kernel.set_workers(workers);
  SyncDomain& a = kernel.create_domain({.name = "a",
                                        .quantum = 10_ns,
                                        .concurrent = true,
                                        .policy = test_policy(10_ns, 10_us)});
  SyncDomain& b = kernel.create_domain({.name = "b",
                                        .quantum = 10_ns,
                                        .concurrent = true,
                                        .policy = test_policy(10_ns, 10_us)});
  spawn_churn(kernel, a, 2, 3000);
  spawn_churn(kernel, b, 1, 5000);
  kernel.run();
  ParallelModelResult result;
  result.final_quantum_a = a.quantum();
  result.final_quantum_b = b.quantum();
  const KernelStats& stats = kernel.stats();
  result.adjustments = stats.quantum_adjustments;
  result.sync_requests = stats.sync_requests;
  result.syncs_quantum = stats.syncs(SyncCause::Quantum);
  result.delta_cycles = stats.delta_cycles;
  result.end_date_ps = kernel.now().ps();
  return result;
}

TEST(AdaptiveQuantum, BitIdenticalAcrossWorkerCounts) {
  const ParallelModelResult sequential = run_parallel_model(0);
  const ParallelModelResult one = run_parallel_model(1);
  const ParallelModelResult four = run_parallel_model(4);
  EXPECT_TRUE(sequential == one);
  EXPECT_TRUE(sequential == four);
  EXPECT_GT(sequential.adjustments, 0u);
}

TEST(AdaptiveQuantum, PolicyOffLeavesTheKernelUntouched) {
  // No policy, no controller: the quantum never moves, no decision trace
  // exists, and the adjustment counters stay zero -- fixed-quantum
  // behavior is bit-exact with the pre-controller kernel (the committed
  // bench baselines enforce the cross-version half of this claim).
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain({.name = "fixed", .quantum = 100_ns});
  spawn_churn(kernel, domain, 2, 2000);
  kernel.run();
  EXPECT_EQ(domain.quantum(), 100_ns);
  EXPECT_EQ(domain.quantum_policy(), nullptr);
  EXPECT_EQ(domain.last_quantum_decision(), nullptr);
  EXPECT_EQ(kernel.stats().quantum_adjustments, 0u);
}

TEST(AdaptiveQuantum, EnvironmentSeedsADefaultPolicy) {
  const char* saved = std::getenv("TDSIM_ADAPTIVE_QUANTUM");
  const std::string saved_value = saved != nullptr ? saved : "";
  setenv("TDSIM_ADAPTIVE_QUANTUM", "1", 1);
  {
    Kernel kernel;
    EXPECT_NE(kernel.sync_domain().quantum_policy(), nullptr);
    SyncDomain& domain = kernel.create_domain(DomainOptions{.name = "auto"});
    EXPECT_NE(domain.quantum_policy(), nullptr);
    // The default policy's floor applies immediately.
    EXPECT_EQ(domain.quantum(), QuantumPolicy{}.min_quantum);
  }
  {
    // An explicit policy wins over the env default -- and sees the
    // caller's seed quantum, not one pre-clamped by the default policy's
    // range (QuantumPolicy{}.max_quantum is 100 us, below this seed).
    Kernel kernel;
    QuantumPolicy wide = test_policy(10_ns, 10_ms);
    SyncDomain& domain = kernel.create_domain(
        {.name = "explicit", .quantum = 1_ms, .policy = wide});
    EXPECT_EQ(domain.quantum(), 1_ms);
    ASSERT_NE(domain.quantum_policy(), nullptr);
    EXPECT_EQ(domain.quantum_policy()->max_quantum, 10_ms);
  }
  setenv("TDSIM_ADAPTIVE_QUANTUM", "0", 1);
  {
    Kernel kernel;
    EXPECT_EQ(kernel.sync_domain().quantum_policy(), nullptr);
  }
  if (saved != nullptr) {
    setenv("TDSIM_ADAPTIVE_QUANTUM", saved_value.c_str(), 1);
  } else {
    unsetenv("TDSIM_ADAPTIVE_QUANTUM");
  }
}

TEST(AdaptiveQuantum, ExplainGroupNamesTheMergingChannel) {
  Kernel kernel;
  SyncDomain& a = kernel.create_domain(
      {.name = "producer_side", .quantum = 100_ns, .concurrent = true});
  SyncDomain& b = kernel.create_domain(
      {.name = "consumer_side", .quantum = 100_ns, .concurrent = true});
  SyncDomain& alone = kernel.create_domain(
      {.name = "island", .quantum = 100_ns, .concurrent = true});
  SmartFifo<int> fifo(kernel, "explained_fifo", 4);
  ThreadOptions pa;
  pa.domain = &a;
  kernel.spawn_thread("producer", [&] {
    for (int i = 0; i < 8; ++i) {
      kernel.current_domain().inc(10_ns);
      fifo.write(i);
    }
  }, pa);
  ThreadOptions pb;
  pb.domain = &b;
  kernel.spawn_thread("consumer", [&] {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(fifo.read(), i);
    }
  }, pb);
  kernel.run();
  EXPECT_EQ(kernel.domain_group(a), kernel.domain_group(b));
  const std::vector<std::string> chain = kernel.explain_group(a);
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_NE(chain[0].find("explained_fifo"), std::string::npos);
  EXPECT_NE(chain[0].find("producer_side"), std::string::npos);
  EXPECT_NE(chain[0].find("consumer_side"), std::string::npos);
  EXPECT_TRUE(kernel.explain_group(alone).empty());
  // A non-concurrent domain's explanation names the serialization rule.
  SyncDomain& serial = kernel.create_domain({.name = "serial", .quantum = 100_ns});
  const std::vector<std::string> serial_chain = kernel.explain_group(serial);
  ASSERT_FALSE(serial_chain.empty());
  EXPECT_NE(serial_chain[0].find("never opted into concurrency"),
            std::string::npos);
}

TEST(AdaptiveQuantum, DecisionTraceRecordsTheWindow) {
  Kernel kernel;
  SyncDomain& domain = kernel.create_domain(
      {.name = "traced", .quantum = 10_ns, .policy = test_policy(10_ns, 10_us)});
  spawn_churn(kernel, domain, 2, 2000);
  kernel.run();
  const QuantumDecision* last = domain.last_quantum_decision();
  ASSERT_NE(last, nullptr);
  EXPECT_GT(last->serial, 0u);
  EXPECT_LE(last->new_quantum, 10_us);
  EXPECT_GE(last->new_quantum, 10_ns);
  EXPECT_STRNE(last->reason, "");
  // On a pure churn workload every window is all-Quantum.
  EXPECT_EQ(last->syncs_accuracy, 0u);
  EXPECT_EQ(last->syncs_quantum, last->syncs_total);
}

}  // namespace
}  // namespace tdsim
