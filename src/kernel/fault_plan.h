// Deterministic chaos harness: a FaultPlan armed on a kernel injects
// failures at exact points of the deterministic schedule.
//
// Every trigger is keyed on (process name, activation number). Activation
// counts are part of the bit-exactness guarantee -- identical across
// workers 0/1/N and across lookahead free-running -- so an armed fault
// fires at the same simulated instant no matter how the kernel is
// scheduled. That is what makes the isolation tests meaningful: a sibling
// kernel's digest can be compared bit-for-bit between a solo run and a run
// interleaved with a deliberately crashing kernel.
//
// Actions (see FaultAction::Kind):
//   Throw        raise InjectedFault from inside the process dispatch; in
//                parallel mode it is captured into GroupTask::exception and
//                rethrown at the horizon like any model error.
//   Stall        advance the process's local clock by `stall` before the
//                activation runs -- the domain lags behind and the
//                lagging-domain / watchdog machinery sees it.
//   FlipMutation toggle one SmartFifoMutations flag mid-run (the paper's
//                SIV.A campaign, but triggered from the kernel schedule).
//   Stop         call Kernel::stop() from the dispatch -- including from a
//                worker-run group task, exercising the buffered stop path.
//
// Plans parse from an args-style spec so benches and CI can inject chaos
// without recompiling:
//
//   "throw:producer@3;stall:dma@5=200ns;flip:producer@7=naive_is_full;
//    stop:sink@2"
//
// with an optional "!par" suffix on throw ("throw:p@3!par") restricting
// the action to parallel runs (workers >= 2) -- the Supervisor's
// sequential retry then succeeds, modelling a scheduling-dependent bug.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mutations.h"
#include "kernel/time.h"

namespace tdsim {

/// One armed fault. Fires once, when the named process reaches its
/// `activation`-th dispatch (1-based).
struct FaultAction {
  enum class Kind { Throw, Stall, FlipMutation, Stop };

  Kind kind = Kind::Throw;
  std::string process;           ///< trigger: process name
  std::uint64_t activation = 1;  ///< trigger: 1-based activation number
  /// Throw only when the kernel runs parallel (workers >= 2): models a
  /// scheduling-dependent bug that a sequential retry survives.
  bool only_parallel = false;

  Time stall{};  ///< Kind::Stall: local-clock advance

  /// Kind::FlipMutation: flag to toggle. `mutations` must outlive the run;
  /// `flag` is a pointer-to-member into it. In specs the flag is named
  /// textually ("naive_is_full"); resolve_mutation_flag maps the name.
  SmartFifoMutations* mutations = nullptr;
  bool SmartFifoMutations::* flag = nullptr;

  std::string to_string() const;
};

/// Maps a SmartFifoMutations field name ("naive_is_full", ...) to its
/// pointer-to-member; null for unknown names.
bool SmartFifoMutations::* resolve_mutation_flag(const std::string& name);

/// A set of armed faults plus the spec parser. Arm with
/// Kernel::arm_faults(); the kernel keeps its own copy and tracks
/// per-action fired state, so one plan can arm many kernels.
struct FaultPlan {
  std::vector<FaultAction> actions;

  bool empty() const { return actions.empty(); }

  /// Parses the ';'-separated spec described in the header comment.
  /// FlipMutation actions parse their *flag name* into `flag` but leave
  /// `mutations` null -- the caller points them at the live instance
  /// before arming (specs cannot name heap objects). Throws
  /// SimulationError on malformed specs.
  static FaultPlan parse(const std::string& spec);

  std::string to_string() const;
};

}  // namespace tdsim
