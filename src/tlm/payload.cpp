#include "tlm/payload.h"

namespace tdsim::tlm {

const char* to_string(Response response) {
  switch (response) {
    case Response::Ok: return "Ok";
    case Response::AddressError: return "AddressError";
    case Response::GenericError: return "GenericError";
  }
  return "?";
}

}  // namespace tdsim::tlm
