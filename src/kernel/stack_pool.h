// Process-wide pooled allocator for fiber (ucontext) stacks.
//
// Before PR 10 every thread process allocated its stack with
// std::make_unique<char[]> -- a value-initializing heap allocation that
// (a) memsets the whole stack (256 KiB by default) at spawn, (b) carries
// no alignment guarantee beyond malloc's, and (c) detects nothing when a
// fiber overflows into the adjacent allocation. At O(10k) processes the
// zeroing alone dominates elaboration, and process churn (kill/respawn,
// snapshot-fork fan-out) pays it again per rebirth.
//
// The StackPool replaces that with mmap-backed, size-classed, recycled
// blocks:
//
//   * Size classes are powers of two (>= kMinStackClass); a released
//     block goes on its class's free list and the next acquire of a
//     compatible size reuses it without touching its pages -- no zeroing,
//     no page faults beyond what the fiber actually used.
//   * The usable region is page-aligned on both ends, so the stack top
//     handed to makecontext (ss_sp + ss_size) is 16-byte aligned as the
//     SysV ABI expects -- the alignment bugfix of PR 10.
//   * One guard page sits below the stack (stacks grow down). With
//     guarding enabled (the default; KernelConfig::stack_guard /
//     TDSIM_STACK_GUARD=0 to disable) the page is PROT_NONE, so a fiber
//     stack overflow faults loudly instead of silently corrupting a
//     neighbouring stack. The page is reserved even when unguarded, so
//     a block can be upgraded with one mprotect when a guarding kernel
//     recycles it.
//   * The pool is process-wide, like the Scheduler: stacks released by
//     one kernel (process termination, kernel destruction) are recycled
//     by the next -- snapshot forks replaying a platform re-spawn into
//     the blocks their source's processes vacated.
//
// Sanitizer discipline (the teardown-ordering audit of PR 10): a block
// may only be released once the fiber's sanitizer state is gone -- the
// ASan fake stack is freed by the trampoline's final null-save switch,
// the TSan fiber is destroyed by Process::release_stack() *before* the
// pool reclaims the block, and release() unpoisons the region's ASan
// shadow so a recycled block starts clean for its next fiber. A fiber
// that never terminated (a process that survived a kill request) must
// NOT be released; retire() accounts for the block without ever handing
// it out again.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tdsim {

/// Smallest size class (bytes of usable stack). Requests below are
/// rounded up; every class is a power of two.
inline constexpr std::size_t kMinStackClass = 16 * 1024;

/// One pooled fiber stack. `sp`/`size` are what goes into
/// uc_stack.ss_sp/ss_size: the usable region, page-aligned on both ends
/// (so the stack top is 16-byte aligned). `map_base`/`map_size` cover the
/// whole mapping including the guard page below `sp`.
struct StackBlock {
  char* sp = nullptr;
  std::size_t size = 0;
  void* map_base = nullptr;
  std::size_t map_size = 0;
  /// The guard page below sp is PROT_NONE.
  bool guarded = false;

  explicit operator bool() const { return sp != nullptr; }
};

class StackPool {
 public:
  /// The process-wide instance (kernels share recycled stacks, like they
  /// share the Scheduler's workers).
  static StackPool& instance();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  struct Acquired {
    StackBlock block;
    /// Served from a free list (no fresh mapping, no page zeroing).
    bool recycled = false;
  };

  /// Returns a block of at least `min_size` usable bytes, guard page
  /// armed when `guard`. Reports an error (throws SimulationError) when
  /// the system is out of mappings/memory. Thread-safe: spawns from
  /// parallel rounds of several kernels may race here.
  Acquired acquire(std::size_t min_size, bool guard);

  /// Returns `block` to its class's free list for reuse. The caller must
  /// have released every sanitizer handle referring to the block first
  /// (see the header comment); release() unpoisons the ASan shadow.
  void release(const StackBlock& block);

  /// Accounts for a block whose fiber never terminated: the suspended
  /// context may still reference the pages, so the block is neither
  /// recycled nor unmapped -- deliberately leaked, matching the kernel's
  /// "abandoning its stack" warning.
  void retire(const StackBlock& block);

  // --- diagnostics (tests, bench reporting) ---

  /// Blocks currently parked on free lists.
  std::size_t free_blocks() const;
  /// Bytes currently mapped by the pool (free + live + retired).
  std::uint64_t mapped_bytes() const;
  /// Lifetime count of acquire() calls served from a free list.
  std::uint64_t recycled_count() const;

 private:
  StackPool() = default;
  ~StackPool();

  static std::size_t class_index(std::size_t min_size);

  mutable std::mutex mutex_;
  /// Free lists indexed by size class (log2(size) - log2(kMinStackClass)).
  std::vector<std::vector<StackBlock>> free_;
  std::uint64_t mapped_bytes_ = 0;
  std::uint64_t retired_blocks_ = 0;
  std::uint64_t recycled_count_ = 0;
};

}  // namespace tdsim
