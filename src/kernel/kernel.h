// The discrete-event scheduler: evaluate -> update -> delta-notify phases,
// timed notification queue, process dispatch. This is the SystemC-kernel
// substrate the paper's techniques run on.
//
// Since PR 3 the evaluation phase can run in parallel: independent
// *concurrency groups* of SyncDomains are dispatched onto a worker-thread
// pool between synchronization horizons (see "Parallel execution" in the
// README). Parallel mode is opt-in (set_workers), n <= 1 keeps the
// sequential scheduler bit-exact, and n >= 2 produces bit-identical dates,
// delta counts and per-cause sync counts by construction: each group
// executes its processes in kernel schedule order on one worker, and all
// scheduler side effects are buffered per group and merged in group order
// at the horizon.
//
// Since PR 6, conservative per-group lookahead (Chandy-Misra-Bryant
// style) sits on top: link_domains(a, b, min_latency) records a *weighted*
// inter-group edge instead of merging the groups, the kernel derives per
// group the earliest date any inbound edge could affect it, and a group
// whose bound exceeds the next global horizon free-runs whole timed waves
// on its worker without rendezvousing the others -- with the wave/delta
// accounting reconstructed at the merge so results stay bit-identical.
// Zero-latency links keep merging, i.e. fall back to the barrier.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kernel/cacheline.h"
#include "kernel/event.h"
#include "kernel/failure.h"
#include "kernel/fault_plan.h"
#include "kernel/kernel_config.h"
#include "kernel/process.h"
#include "kernel/snapshot.h"
#include "kernel/stats.h"
#include "kernel/sync_domain.h"
#include "kernel/time.h"

namespace tdsim {

class QuantumController;
struct QuantumDecision;

/// Implemented by primitive channels (e.g. Signal) that need the SystemC
/// evaluate/update two-phase protocol.
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;
  virtual void update() = 0;
};

/// Implemented by channels running in chunked mode (see
/// core/chunk_protocol.h). The scheduler calls flush_chunks() at every
/// cascade-drained point *before* simulated time advances -- the global
/// horizon in run(), and each group-local wave boundary inside a lookahead
/// free-run extension -- so a partially filled chunk is never outrun by
/// the date its stamps were made at. That invariant is what keeps chunked
/// data-path dates bit-exact with per-element mode.
class ChunkFlushListener {
 public:
  virtual ~ChunkFlushListener() = default;
  /// Publishes any partially filled chunk on either side. Returns true
  /// when something was published (publishing queues delta notifications,
  /// so the scheduler re-enters the cascade).
  virtual bool flush_chunks() = 0;
  /// A domain identifying the channel's concurrency group (a channel's
  /// sides are always merged into one group), or null before any traffic
  /// touched the channel -- there is nothing to flush then. Free-running
  /// extension workers use this to flush their own group's channels
  /// without touching a foreign group's.
  virtual SyncDomain* chunk_home_domain() const = 0;
};

/// Options for spawning a thread process.
struct ThreadOptions {
  std::size_t stack_size = 256 * 1024;
  bool dont_initialize = false;
  /// Synchronization domain the process joins; null resolves to the
  /// spawning module's default domain (Module::set_default_domain) or the
  /// kernel default domain.
  SyncDomain* domain = nullptr;
};

/// Per-call options of Kernel::run(). The plain run(Time) overload is
/// equivalent to RunOptions{.until = t}.
struct RunOptions {
  /// Run until no activity remains or this date is reached.
  Time until = Time::max();
  /// Wall-clock watchdog budget for this call, in milliseconds; overrides
  /// KernelConfig::wall_limit_ms (0 = explicitly disabled for this call,
  /// nullopt = inherit the config). See kernel_config.h.
  std::optional<std::uint64_t> wall_limit_ms;
};

/// Options for spawning a method process.
struct MethodOptions {
  std::vector<Event*> sensitivity;
  bool dont_initialize = false;
  /// See ThreadOptions::domain.
  SyncDomain* domain = nullptr;
};

/// One simulation: owns processes, time, and the scheduler queues. Multiple
/// kernels may coexist (each test builds its own); the one currently inside
/// run() is reachable via Kernel::current() for SystemC-style free functions.
class Kernel {
 public:
  /// Equivalent to Kernel(KernelConfig{}): every knob resolves from the
  /// environment, then from the built-in defaults.
  Kernel();

  /// Constructs a kernel with the given execution config. Unset fields
  /// resolve environment > default -- see kernel_config.h for the full
  /// precedence contract and the TDSIM_* variable list. This constructor
  /// is the *only* point where the environment is consulted.
  explicit Kernel(const KernelConfig& config);

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  /// The fully resolved execution config this kernel runs under: every
  /// field is set (explicit > environment > default), and the setters
  /// below (set_workers, set_lookahead_limit, ...) keep it current.
  const KernelConfig& config() const { return config_; }

  // --- elaboration ---

  /// Spawns a stackful thread process. Runs at initialization unless
  /// opts.dont_initialize.
  Process* spawn_thread(std::string name, std::function<void()> body,
                        ThreadOptions opts = {});

  /// Spawns a run-to-completion method process with the given static
  /// sensitivity. Runs once at initialization unless opts.dont_initialize.
  Process* spawn_method(std::string name, std::function<void()> body,
                        MethodOptions opts = {});

  /// Adds an event to a method's static sensitivity list.
  void add_static_sensitivity(Process* method, Event& event);

  // --- simulation control ---

  /// Runs until no activity remains or `until` is reached (time is then
  /// left at `until`). May be called repeatedly to advance further.
  ///
  /// Failure semantics: any exception leaving run() transitions the kernel
  /// to Health::Failed with a structured FailureReport (see failure.h and
  /// health()/failure() below). The failing kernel's fibers are terminated
  /// and its Scheduler worker slots released before the exception
  /// propagates, so a Failed kernel is inert, leak-free to destroy, and
  /// cannot affect sibling kernels on the shared scheduler. Failed is
  /// terminal: further run() calls report an error.
  void run(Time until = Time::max());

  /// run() with per-call options (deadline + wall-clock watchdog). The
  /// watchdog is checked at synchronization horizons; a trip raises
  /// WatchdogError and fails the kernel with the lagging domain and the
  /// lookahead bound in the report, instead of hanging.
  void run(const RunOptions& options);

  // --- failure semantics (see kernel/failure.h) ---

  /// Idle before/between runs, Running inside run(), Failed (terminal)
  /// once an exception has escaped run().
  Health health() const { return health_; }

  /// The post-mortem of a Failed kernel, or null while health() is not
  /// Failed. Valid until the kernel is destroyed.
  const FailureReport* failure() const {
    return health_ == Health::Failed ? &failure_report_ : nullptr;
  }

  /// Arms a deterministic fault plan (chaos harness; see
  /// kernel/fault_plan.h). Actions trigger on (process name, activation
  /// number) -- deterministic points of the schedule, identical across
  /// worker counts. Replaces any previously armed plan; fired-state is
  /// reset. Faults are a test-harness overlay, not modeled elaboration:
  /// arming does not affect snapshot capability, and snapshots do not
  /// record armed plans.
  void arm_faults(FaultPlan plan);
  const FaultPlan& armed_faults() const { return fault_plan_; }

  /// Marks this kernel as the product of a supervised sequential retry
  /// (fleet::Supervisor bumps KernelStats::retries through this, so the
  /// counter rides the same stats plumbing as every other one).
  void note_retry() { stats_.retries++; }

  /// Requests the current run() to return after the current delta cycle.
  /// Callable from inside a process. In parallel mode a stop only takes
  /// effect at the next synchronization horizon: the stopping group breaks
  /// out of its queue immediately (sequential semantics), other groups
  /// finish their current round deterministically first.
  void stop();

  /// Current simulated date (sc_time_stamp analog). From a process of a
  /// group that is free-running inside a conservative-lookahead extension
  /// this is the group's *local* date -- the date the sequential scheduler
  /// would show the process -- so delay arithmetic (Event::notify,
  /// LocalClock, PEQs) is oblivious to free-running. Everywhere else it is
  /// the global horizon date. The extra branch is only taken while an
  /// extension is in flight.
  Time now() const { return free_run_live_ ? resolve_now() : now_; }

  std::uint64_t delta_count() const { return stats_.delta_cycles; }

  /// Kernel counters. In sequential contexts this is the live aggregate.
  /// From inside a parallel evaluation round, the returned view merges the
  /// calling group's own in-flight counters into the last-horizon
  /// aggregate: the caller's group is exact, foreign groups are as of the
  /// previous synchronization horizon (race-free by construction). The
  /// reference stays valid until the caller's next stats() call.
  ///
  /// The aggregate sync fields are a derived cache over the per-domain
  /// entries (the hot path books only into its owning domain) and are
  /// refolded lazily: mid-run calls refresh them when stale, and run()
  /// folds on exit, so stats() on a quiescent kernel is a pure read --
  /// safe from concurrent threads, exactly as before the aggregates
  /// became derived. Mid-run, the supported readers remain simulation
  /// processes and the thread driving run().
  const KernelStats& stats() const;

  // --- snapshot forking (see kernel/snapshot.h) ---

  /// Runs `step(*this)` immediately AND records it in the construction
  /// log, so snapshot() can later capture a replayable recipe for this
  /// kernel. All elaboration of a snapshot-capable kernel goes through
  /// build(); run() calls are recorded automatically once the log is
  /// non-empty. Nested build() calls execute inline (the outer step is
  /// the recorded unit). Elaboration performed outside any build step
  /// marks the kernel snapshot-incapable.
  void build(std::function<void(Kernel&)> step);

  /// Captures a replayable checkpoint: the resolved config, the recorded
  /// construction/run log, and the warm-state fingerprint (date + delta
  /// cycles). Cheap -- no simulation state is copied. Only callable from
  /// outside a running simulation, and only when every piece of
  /// elaboration went through build() (reports an error otherwise).
  Snapshot snapshot() const;

  /// Builds a fresh kernel from `snapshot`: resolves options.config over
  /// the snapshot's config (execution-only knobs -- workers, chunking,
  /// adaptive control -- may vary per fork without affecting dates),
  /// replays the recorded log, verifies the warm-state fingerprint, then
  /// applies options.diverge through build() so the fork is itself
  /// snapshot-capable. The returned kernel is bit-identical to the
  /// snapshot source at its warm point and diverges from there.
  static std::unique_ptr<Kernel> fork(const Snapshot& snapshot,
                                      ForkOptions options = {});

  // --- parallel execution ---

  /// Enables parallel per-domain execution: evaluation phases dispatch
  /// each runnable concurrency group (domains transitively linked by
  /// channels or link_domains; see DomainOptions::concurrent) onto up to
  /// `n` threads of the process-wide Scheduler between synchronization
  /// horizons. 0 and 1 keep the sequential scheduler; n >= 2 is opt-in
  /// and yields bit-identical dates, delta counts and per-cause sync
  /// counts. The resolved initial value comes from KernelConfig::workers
  /// (explicit > $TDSIM_WORKERS > 0; CI forces the suite parallel through
  /// the environment).
  ///
  /// Elaboration-only: `n` is this kernel's worker *quota* on the shared
  /// Scheduler, and the quota is fixed once the first run() has
  /// initialized processes -- resizing a warm kernel would let one client
  /// of the shared pool re-negotiate capacity mid-flight under other
  /// kernels. Calling it after the first run() (or from inside one)
  /// reports an error. Prefer KernelConfig{.workers = n} at construction.
  void set_workers(std::size_t n);
  std::size_t workers() const { return workers_; }

  /// Declares an ordering dependency between two domains: they join the
  /// same concurrency group and always execute serialized, in kernel
  /// schedule order, on one worker. Channels declare the domains they
  /// carry traffic between automatically (DomainLink); call this for
  /// couplings no channel can see, e.g. a plain variable shared across
  /// concurrent domains. Idempotent and cheap when already linked. `via`
  /// names the channel (or reason) behind the link for explain_group().
  /// `min_latency` annotates the link with the channel's declared minimum
  /// modeling latency (shown by explain_group; see DomainLink).
  void link_domains(SyncDomain& a, SyncDomain& b,
                    const std::string& via = std::string(),
                    Time min_latency = Time{});

  /// Declares a *decoupled* weighted ordering between two domains: nothing
  /// either side does can affect the other sooner than `min_latency` of
  /// simulated time. The groups stay separate, and the conservative-
  /// lookahead scheduler uses the latency to let each side free-run ahead
  /// of the other (see README "Parallel execution" for the safety
  /// contract: the coupling itself must be horizon-mediated, e.g. the
  /// relay-event pattern with Event::set_cross_group_notified). A zero
  /// `min_latency` degenerates to the merging overload above -- zero
  /// lookahead means barrier. Callable mid-run; a tighter redeclaration
  /// takes effect at the next horizon.
  void link_domains(SyncDomain& a, SyncDomain& b, Time min_latency,
                    const std::string& via = std::string());

  /// Caps how many timed waves one group may execute inside a single
  /// free-running lookahead extension (bounds divergence windows and the
  /// prepaid-accounting state). 0 disables free-running entirely --
  /// every group then rendezvouses at every global horizon, as before
  /// PR 6. Default 64.
  void set_lookahead_limit(std::size_t max_waves) {
    lookahead_max_waves_ = max_waves;
    config_.lookahead_limit = max_waves;
  }
  std::size_t lookahead_limit() const { return lookahead_max_waves_; }

  /// The derived conservative-lookahead bound of `domain`'s concurrency
  /// group given the current timed queue and the recorded decoupled
  /// links: no inbound edge can affect the group before the returned
  /// date. nullopt = unbounded (no inbound decoupled edge; the group
  /// free-runs to its wave cap). bench_multidomain_soc --explain prints
  /// this.
  std::optional<Time> lookahead_bound(const SyncDomain& domain) const;

  /// Answers "why is my model not parallel": the chain of recorded links
  /// (channel names and explicit link_domains calls) that merged
  /// `domain`'s concurrency group, one human-readable line per
  /// load-bearing merge, in discovery order. Empty when the domain is
  /// alone in its group. bench_multidomain_soc --explain prints this.
  std::vector<std::string> explain_group(const SyncDomain& domain) const;

  /// The concurrency group `domain` belongs to, as the id of the group's
  /// representative domain. Two domains may execute concurrently iff their
  /// groups differ. Mainly for tests and diagnostics.
  std::size_t domain_group(const SyncDomain& domain) const;

  // --- chunked channels (see core/chunk_protocol.h) ---

  /// Registers a channel running in chunked mode; the scheduler flushes
  /// it at every cascade-drained point before time advances. Channels
  /// call this when entering chunked mode (set_chunk_capacity > 1) and
  /// unregister when leaving it or on destruction. Registration order is
  /// the deterministic flush order. Safe from inside a parallel round.
  void register_chunk_flush(ChunkFlushListener* listener);
  void unregister_chunk_flush(ChunkFlushListener* listener);

  /// Chunk capacity channels adopt at construction: 0 or 1 means
  /// per-element mode (the default -- existing models and baselines are
  /// bit-identical), >= 2 opts every new channel into chunked transfer
  /// with that capacity. Seeded from $TDSIM_CHUNKED ("1" or a non-numeric
  /// truthy value picks the default capacity of 16, a number >= 2 is the
  /// capacity, unset/"0" stays per-element); per-channel
  /// set_chunk_capacity overrides either way.
  std::size_t default_chunk_capacity() const { return default_chunk_capacity_; }
  void set_default_chunk_capacity(std::size_t capacity) {
    default_chunk_capacity_ = capacity;
    config_.default_chunk_capacity = capacity;
  }

  // --- synchronization domains ---

  /// Creates a new synchronization domain with its own quantum policy and
  /// per-cause sync statistics -- the one canonical way to make a domain
  /// (see DomainOptions in kernel_config.h for every knob). Names must be
  /// unique within the kernel. Domains live as long as the kernel;
  /// processes join one at spawn time (ThreadOptions/MethodOptions::domain,
  /// Module::set_default_domain).
  SyncDomain& create_domain(const DomainOptions& options);

  /// Positional legacy surface; forwards to the DomainOptions overload.
  [[deprecated("use create_domain(DomainOptions) -- see the README migration table")]]
  SyncDomain& create_domain(std::string name, Time quantum = Time{},
                            bool concurrent = false);

  /// Positional legacy surface; forwards to the DomainOptions overload.
  [[deprecated("use create_domain(DomainOptions) -- see the README migration table")]]
  SyncDomain& create_domain(std::string name, Time quantum, bool concurrent,
                            const QuantumPolicy& policy);

  // --- adaptive quantum control (see kernel/quantum_controller.h) ---

  /// Opts `domain` into adaptive quantum control: the kernel re-evaluates
  /// its quantum at every synchronization horizon from the domain's
  /// per-cause sync deltas and the deterministic parallel cost signal,
  /// within the policy's clamps. Attaching immediately clamps the domain's
  /// current quantum into [min_quantum, max_quantum]. Replaces any earlier
  /// policy. Only callable with no parallel round in flight. The
  /// TDSIM_ADAPTIVE_QUANTUM environment variable (any value but "0") seeds
  /// a default QuantumPolicy on every domain at creation.
  void set_quantum_policy(SyncDomain& domain, const QuantumPolicy& policy);

  /// Detaches the domain's policy; the quantum stays at its last value.
  void clear_quantum_policy(SyncDomain& domain);

  /// The policy attached to `domain`, or null when the domain is not
  /// adaptive.
  const QuantumPolicy* quantum_policy(const SyncDomain& domain) const;

  /// The domain's most recent adaptive decision (applied, clamped or
  /// held), or null before the first one. This is the decision trace:
  /// serial number, horizon date, old/new quantum, direction, reason and
  /// the per-cause input window behind it.
  const QuantumDecision* last_quantum_decision(const SyncDomain& domain) const;

  /// The domain's recent adaptive decisions, oldest first -- the last
  /// quantum_trace_depth() of them (see kernel/quantum_controller.h).
  /// Empty before the first decision or when the domain never had a
  /// policy.
  std::vector<QuantumDecision> decision_trace(const SyncDomain& domain) const;

  /// Sets how many recent decisions every domain's trace ring keeps
  /// (default kQuantumTraceDepth = 8). Raising it is the phase-mining
  /// prerequisite: offline analysis wants whole episodes, not the last
  /// eight records. Takes effect immediately on every existing ring,
  /// preserving the newest min(old, new) decisions; pointers previously
  /// returned by last_quantum_decision() are invalidated. Must be >= 1;
  /// only callable with no parallel round in flight.
  void set_quantum_trace_depth(std::size_t depth);
  std::size_t quantum_trace_depth() const;

  /// The kernel's default synchronization domain: quantum policy,
  /// current-process temporal-decoupling operations, and per-cause sync
  /// statistics. Processes spawned without an explicit domain belong to it,
  /// so a kernel that never calls create_domain() behaves exactly as a
  /// single-domain kernel.
  SyncDomain& sync_domain() { return *domains_.front(); }
  const SyncDomain& sync_domain() const { return *domains_.front(); }

  /// The domain of the currently executing process; from scheduler or
  /// elaboration context (no current process) it degenerates to the
  /// default domain. This is how channel code shared between domains
  /// (Smart FIFOs, gates, sockets) resolves the right policy for whoever
  /// is calling.
  SyncDomain& current_domain() {
    Process* p = current_process();
    return p != nullptr ? p->domain() : sync_domain();
  }

  /// All domains, in creation order; index 0 is the default domain.
  const std::vector<std::unique_ptr<SyncDomain>>& domains() const {
    return domains_;
  }

  /// The domain named `name`, or null.
  SyncDomain* find_domain(const std::string& name) const;

  /// The domain gating global progress: the one whose execution front
  /// (max local date over its live processes) is furthest behind. Null
  /// when no domain has a live process. run() names it in livelock
  /// diagnostics; benches read it to see which subsystem to relax. Safe
  /// to call mid-run from a probe even in parallel mode: foreign groups
  /// are then reported as of the last synchronization horizon.
  SyncDomain* lagging_domain() const;

  /// Moves `process` to `domain`. Only legal during elaboration (before
  /// the first run() initializes processes); reassigning later would
  /// tear a decoupled process away from the policy its offset was
  /// accumulated under.
  void assign_domain(Process& process, SyncDomain& domain);

  /// Convenience delegates for the *default* domain's quantum (TLM-2.0
  /// tlm_global_quantum analog). Zero disables quantum-driven decoupling.
  Time global_quantum() const { return sync_domain().quantum(); }
  void set_global_quantum(Time quantum) { sync_domain().set_quantum(quantum); }

  /// Safety valve against delta-cycle livelock (processes endlessly
  /// re-triggering each other without time advancing): when non-zero,
  /// run() raises a SimulationError after this many consecutive delta
  /// cycles at the same simulated date.
  void set_delta_cycle_limit(std::uint64_t limit) {
    delta_limit_ = limit;
    config_.delta_cycle_limit = limit;
  }

  /// The kernel currently executing run() on this OS thread, or null.
  static Kernel* current();

  /// The simulation process currently executing on this OS thread within
  /// this kernel, or null (e.g. during elaboration or from the scheduler
  /// itself). Per OS thread: in parallel mode each worker sees its own
  /// group's process. Deliberately out of line -- see thread_exec().
  Process* current_process() const;

  // --- process-facing API (called from inside processes) ---

  /// Suspends the current thread process for `duration` of simulated time.
  void wait(Time duration);

  /// Suspends the current thread process until `event` is notified.
  void wait(Event& event);

  /// Suspends until `event` or until `timeout` elapses; returns true when
  /// woken by the event, false on timeout.
  bool wait(Event& event, Time timeout);

  /// Yields the current thread process for one delta cycle.
  void wait_delta();

  /// Arms a one-shot dynamic trigger for the current method process,
  /// overriding its static sensitivity for the next activation.
  void next_trigger(Event& event);
  void next_trigger(Time delay);

  // --- channel-facing API ---

  /// Requests listener->update() at the end of the current evaluation
  /// phase. Deduplication is the caller's responsibility.
  void request_update(UpdateListener* listener);

  /// All processes, in spawn order.
  const std::vector<std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  friend class Event;
  friend class Process;
  friend class SyncDomain;  // keeps the sync books in stats_

  struct TimedEntry {
    Time when;
    std::uint64_t seq;
    enum class Kind { EventFire, ProcessResume } kind;
    Event* event = nullptr;
    std::uint64_t event_generation = 0;
    Process* process = nullptr;
    std::uint64_t process_generation = 0;

    bool operator>(const TimedEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  /// Per-OS-thread fiber dispatch state: the scheduler-side ucontext plus
  /// the sanitizer bookkeeping for the stack that context lives on. The
  /// sequential scheduler owns one (main_exec_); in parallel mode each
  /// group execution gets its own, so fibers can suspend under one worker
  /// and resume under another with a consistent stack discipline (the
  /// suspension always swaps to the *current* thread's ExecContext, found
  /// through the thread-local t_exec_).
  struct ExecContext {
    Kernel* kernel = nullptr;
    Process* current_process = nullptr;
    /// Where this execution context's counters go: the owning group's
    /// stat_delta inside a parallel round, the kernel aggregate otherwise.
    /// Bundled here so the synchronization hot path resolves process and
    /// stats in a single thread-local read (sync_context()).
    KernelStats* stats = nullptr;
    ucontext_t scheduler_context{};
    /// Scheduler (OS thread) stack bounds, learned each time a fiber
    /// resumes and reports where it came from; used when switching back.
    const void* scheduler_stack_bottom = nullptr;
    std::size_t scheduler_stack_size = 0;
    /// ASan fake-stack handle saved while the scheduler stack is switched
    /// away from.
    void* scheduler_fake_stack = nullptr;
    /// TSan fiber handle of the hosting OS thread (refreshed per group
    /// execution -- the same ExecContext may move between workers).
    void* tsan_fiber = nullptr;
  };

  /// One concurrency group's work and side-effect buffers for the current
  /// parallel evaluation phase. Everything a group's processes do to
  /// kernel-global structures lands here and is merged -- in group order,
  /// hence deterministically -- at the next synchronization horizon.
  struct GroupTask {
    Kernel* kernel = nullptr;
    /// Group representative (union-find root domain id) this phase.
    std::size_t group = 0;
    /// The group's runnable processes, in kernel schedule order. Wakes of
    /// same-group processes append here and run within the same round.
    std::deque<Process*> queue;
    ExecContext exec;
    /// Wakes targeting processes of *other* groups (dynamic spawns,
    /// foreign-group event notifies); routed at the horizon.
    std::vector<Process*> cross_wakes;
    std::vector<std::pair<Event*, std::uint64_t>> delta_notifications;
    std::vector<Process*> delta_resume;
    std::vector<UpdateListener*> update_requests;
    struct TimedReq {
      Time when;
      TimedEntry::Kind kind;
      Event* event;
      std::uint64_t event_generation;
      Process* process;
      std::uint64_t process_generation;
    };
    /// Timed-queue insertions; sequence numbers are assigned at the merge
    /// so per-group relative order (the only order that can matter --
    /// groups share no state) matches the sequential schedule.
    std::vector<TimedReq> timed;
    /// Buffered timed_stale_count_ increments.
    std::size_t stale_notes = 0;
    /// Worker-local counter deltas (aggregate + per-domain), folded into
    /// stats_ at the horizon.
    KernelStats stat_delta;
    /// Lazily built merged view for mid-round stats() calls.
    std::unique_ptr<KernelStats> stats_view;
    bool stop = false;
    std::exception_ptr exception;
    /// Failure attribution riding alongside `exception`: the process whose
    /// dispatch raised it and that process's domain (empty when the raise
    /// was not attributable to a process). Copied into the kernel's
    /// failure report when the horizon rethrows.
    std::string failed_process;
    std::string failed_domain;

    // --- conservative-lookahead free-running (run_lookahead_extension) ---

    /// True while this task executes a free-running extension; its
    /// processes then see local_now through Kernel::now().
    bool free_running = false;
    /// The group's local date inside the extension.
    Time local_now;
    /// Exclusive date cap of this extension (the group's lookahead
    /// window: inbound-edge bound, clamps, wave cap, run limit).
    Time window_cap;
    /// The group's extracted timed entries, sorted by (when, seq) -- the
    /// extension's private agenda. Locally-born entries are spliced in
    /// with synthetic sequence numbers (compared only within the agenda).
    std::vector<TimedEntry> agenda;
    std::size_t agenda_pos = 0;
    /// Synthetic sequence numbers for locally-born agenda entries; they
    /// sort after every extracted entry of the same date, exactly where
    /// the sequential scheduler would have queued them.
    std::uint64_t local_seq = 0;
    /// Prefix of `timed` already examined by absorb_local_timed().
    std::size_t timed_scan_pos = 0;
    /// One record per executed local wave, in order: (date ps, number of
    /// delta iterations after the wave). Source of the merge-time prepaid
    /// accounting that keeps delta_cycles / timed_waves bit-identical to
    /// the sequential schedule.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> wave_log;
    /// The group's domains, filled per extension: the per-domain
    /// delta-limit checks inside the extension walk only these (foreign
    /// domains' counters must not be touched from this worker).
    std::vector<SyncDomain*> member_domains;
  };

  /// create_domain minus the TDSIM_ADAPTIVE_QUANTUM default-policy hook
  /// (the policy-taking overload attaches its own policy instead).
  SyncDomain& create_domain_impl(std::string name, Time quantum,
                                 bool concurrent);

  /// See SyncContext (sync_domain.h): process + stats sink in one
  /// thread-local read. The synchronization hot path's entry point.
  SyncContext sync_context() {
    ExecContext* e = thread_exec();
    if (e != nullptr && e->kernel == this) {
      return {e->current_process, e->stats};
    }
    return {nullptr, &stats_};
  }

  bool is_stale(const TimedEntry& entry) const;
  /// Bumps the process's wake generation, keeping the stale-entry count
  /// exact when a live timed resume entry gets invalidated.
  void bump_wake_generation(Process& p);
  /// Called by Event when a pending timed notification is superseded or
  /// cancelled, leaving its queue entry stale.
  void note_timed_event_stale();
  /// Called by ~Event while the event is still valid: removes every queue
  /// entry referring to it, so no is_stale() call can ever dereference a
  /// destroyed event.
  void purge_timed_event_entries(Event& e);
  /// Rebuilds timed_queue_ without stale entries once they outnumber the
  /// live ones (lazy deletion would otherwise grow the queue unboundedly
  /// under cancel/supersede-heavy workloads).
  void maybe_compact_timed_queue();
  void check_domain_delta_limits();
  void timed_push(const TimedEntry& entry);
  void timed_pop();
  /// Re-heapifies timed_queue_ after an in-place filter.
  void timed_reheap();
  void initialize_processes();
  void dispatch(Process* p);
  void dispatch_thread(Process* p);
  void dispatch_method(Process* p);
  void make_runnable(Process* p);
  void trigger_event(Event& e);
  void yield_current_thread();
  /// wait(duration) for an already-validated thread process -- the
  /// synchronization hot path (SyncDomain::perform_sync) resolved and
  /// checked the process once and must not pay a second resolution here.
  void wait_for(Process& p, Time duration);
  Process* require_thread(const char* what) const;
  Process* require_method(const char* what) const;
  void schedule_event_fire(Event& e, Time at);
  void schedule_process_resume(Process& p, Time at);
  void queue_delta_notification(Event& e);
  void cancel_dynamic_wait(Process& p);
  void kill_all_threads();
  void run_update_phase();
  void fire_delta_notifications();

  // --- fiber-stack pool + scheduler arena (see kernel/stack_pool.h) ---

  /// Allocates `p`'s fiber stack: a pooled StackBlock when
  /// KernelConfig::pooled_stacks (the default), the legacy value-initialized
  /// heap allocation otherwise. Books stack_acquires / stack_recycles into
  /// active_stats(). Called from the Process constructor.
  void acquire_fiber_stack(Process& p);
  /// Counter hook for Process::release_stack (the pool itself is
  /// process-wide; the kernel only keeps the books).
  void note_fiber_stack_released();
  /// Pre-sizes the scheduler's per-event containers (timed queue,
  /// delta-notification and delta-resume buffers) to the elaborated
  /// process count, so steady state never grows them. Runs once, at
  /// initialize_processes(); booked as KernelStats::arena_reserved_bytes.
  void reserve_scheduler_arena();

  // --- failure semantics / watchdog / chaos (see kernel/failure.h) ---

  /// The Running -> Failed transition: classifies `cause`, assembles the
  /// FailureReport from the kernel's current state, terminates live
  /// fibers (ProcessKilled unwind), and releases this kernel's worker
  /// quota on the shared Scheduler. Called from run()'s unwind path only.
  void enter_failed_state(std::exception_ptr cause);
  /// Records `p` as the process whose dispatch is about to rethrow, into
  /// the active GroupTask (parallel) or the kernel (sequential).
  void note_failing_process(Process& p);
  /// Arms the per-run wall-clock deadline from `options` over the config.
  void arm_watchdog(const std::optional<std::uint64_t>& override_ms);
  /// Deadline check at synchronization horizons; throws WatchdogError on
  /// trip. No-op (one branch) while no deadline is armed.
  void check_watchdog();
  /// Fires any armed fault whose (process, activation) trigger matches;
  /// called from dispatch(). May throw InjectedFault.
  void apply_faults(Process& p);

  // --- parallel scheduling (see kernel.cpp "Parallel evaluation") ---

  /// The group task the calling OS thread is executing for *this* kernel,
  /// or null in sequential/scheduler contexts.
  GroupTask* active_task() const;
  /// Where scheduler counters go: the active group's local delta inside a
  /// parallel round, the kernel aggregate otherwise.
  KernelStats& active_stats();
  bool parallel_enabled() const { return workers_ > 1; }
  void run_parallel_evaluation_phase();
  void execute_group_task(GroupTask& task);
  /// The timed-phase lookahead driver: computes per-group conservative
  /// bounds, extracts eligible groups' timed entries and free-runs them
  /// in parallel to their windows, then merges. Returns true when any
  /// group advanced (the caller re-enters its loop without advancing the
  /// global date).
  bool run_lookahead_extension(Time until);
  /// One group's free-running extension body (worker or stealing main
  /// thread): local waves -> dispatch -> update -> delta cascades, over
  /// the task's private agenda.
  void free_run_group(GroupTask& task);
  void fire_agenda_entry(GroupTask& task, TimedEntry& entry);
  void run_local_cascade(GroupTask& task);
  /// Moves newly buffered timed requests that fall inside the task's
  /// window from task.timed into the sorted agenda.
  void absorb_local_timed(GroupTask& task);
  /// Publishes every registered chunked channel's pending chunks; run()
  /// calls it once per delta-cascade iteration, after the update phase
  /// (see ChunkFlushListener). Returns true when anything was published.
  bool flush_chunked_channels();
  /// Per-group analog, called at the same per-iteration point of a
  /// free-running extension's local cascade: flushes only channels of
  /// `task`'s concurrency group (a foreign group's channel state belongs
  /// to another worker), keeping each group's flush-induced deltas at the
  /// chain depth the sequential schedule gives them.
  bool flush_group_chunks(GroupTask& task);
  /// Slow path of now() while an extension is in flight.
  Time resolve_now() const;
  /// The one concurrency group all of `e`'s waiters belong to, or nullopt
  /// when the event has no waiters or waiters from several groups (its
  /// timed firings are then not attributable to any single group).
  std::optional<std::size_t> sole_waiter_group(const Event& e) const;
  /// The shared bound derivation behind lookahead_bound() and
  /// run_lookahead_extension(): per group root, the earliest live timed
  /// entry (ps) and the exclusive free-run window (inbound-edge bound,
  /// relay-event clamps, unattributable-entry choke). UINT64_MAX =
  /// none/unbounded.
  void compute_lookahead_state(std::vector<std::uint64_t>& earliest,
                               std::vector<std::uint64_t>& window) const;
  /// Horizon-time make_runnable for wakes that crossed groups mid-round.
  void apply_cross_wake(Process* p);
  /// Merges one group's buffered side effects into the kernel structures;
  /// called at the horizon in group order.
  void flush_group_task(GroupTask& task);
  GroupTask& task_for_group(std::size_t group_root);
  /// Union-find over domain ids; readers are lock-free (workers resolve
  /// groups on every wake), writers serialize on group_mutex_.
  std::size_t find_group(std::size_t domain_id) const;
  /// True when called from a worker whose group does not contain
  /// `domain` -- its members' live state must not be read, use the
  /// published horizon values instead.
  bool foreign_group_read(const SyncDomain& domain) const;
  std::optional<Time> published_front(std::size_t domain_id) const;
  void publish_domain_fronts();
  /// Backs SyncDomain::set_concurrent; rebuilds the union-find from the
  /// concurrency flags and the recorded links.
  void set_domain_concurrent(SyncDomain& domain, bool concurrent);
  void unite_groups_locked(std::size_t a, std::size_t b);
  void rebuild_groups_locked();

  Time now_;
  /// Domain registry; [0] is the default domain, created in the
  /// constructor. unique_ptr keeps SyncDomain addresses stable across
  /// create_domain() calls (processes and channels hold raw pointers).
  std::vector<std::unique_ptr<SyncDomain>> domains_;
  std::uint64_t delta_limit_ = 0;
  std::uint64_t deltas_at_current_date_ = 0;
  KernelStats stats_;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t next_timed_seq_ = 0;
  /// Exact count of stale (cancelled/superseded) entries currently inside
  /// timed_queue_, except for entries orphaned by process kills at
  /// teardown; drives compaction.
  std::size_t timed_stale_count_ = 0;
  bool initialized_ = false;
  /// Processes spawned outside a simulation context after initialization
  /// (mid-run grafts, e.g. a fork's diverge step): their first dispatch
  /// records channel links the concurrency grouping is derived from, so
  /// the next run()'s first evaluation phase must stay sequential, exactly
  /// like the initialization wave.
  bool graft_init_pending_ = false;
  bool stop_requested_ = false;
  /// True once any domain ever armed a per-domain delta-cycle limit; the
  /// scheduler skips the per-domain delta bookkeeping while false.
  bool domain_delta_limits_enabled_ = false;
  /// Resolved KernelConfig::pooled_stacks / stack_guard (see
  /// kernel/stack_pool.h). Fixed at construction; every fiber stack of
  /// this kernel uses the same mode so bench_scale's alloc-mode rows
  /// compare whole builds, not mixed pools.
  bool pooled_stacks_ = true;
  bool stack_guard_ = true;

  // --- failure semantics state (see kernel/failure.h) ---

  Health health_ = Health::Idle;
  /// Valid once health_ == Failed; handed out by failure().
  FailureReport failure_report_;
  /// Sequential-mode failure attribution (parallel mode buffers it in
  /// GroupTask::failed_process/failed_domain); consumed by
  /// enter_failed_state.
  std::string failing_process_;
  std::string failing_domain_;
  /// Wall-clock watchdog: armed per run() call (RunOptions override >
  /// config), checked at synchronization horizons.
  bool watchdog_armed_ = false;
  std::chrono::steady_clock::time_point watchdog_deadline_{};
  std::uint64_t watchdog_limit_ms_ = 0;
  /// Armed chaos plan + per-action fired latches (see arm_faults()).
  FaultPlan fault_plan_;
  std::vector<char> fault_fired_;
  /// Lock-free gate for the dispatch hot path: number of armed, not yet
  /// fired actions. Zero on every kernel without a plan -- dispatch then
  /// pays one relaxed load. (Fired-latch updates happen on whichever
  /// thread dispatches the trigger process; the count is only decremented
  /// there too, and the trigger process itself is scheduler-serialized.)
  std::atomic<std::size_t> faults_pending_{0};

  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> runnable_;
  std::vector<std::pair<Event*, std::uint64_t>> delta_notifications_;
  std::vector<Process*> delta_resume_;
  std::vector<UpdateListener*> update_requests_;
  /// The timed notification queue: a (when, seq) min-heap maintained with
  /// std::push_heap/pop_heap over a plain vector, so the stale-entry
  /// compaction and the ~Event purge can filter the storage in place and
  /// re-heapify -- allocation-free in steady state, where a
  /// priority_queue rebuild would reallocate on every compaction.
  std::vector<TimedEntry> timed_queue_;

  /// Fresh thread-local reads for code that runs on fiber stacks: every
  /// read of t_exec_/t_task_ that can happen after a suspension point MUST
  /// go through these noinline accessors. Were the reads inlined, the
  /// compiler could legally cache the TLS slot's address across a
  /// swapcontext -- and a fiber resumed on a different worker would then
  /// read (and race on) the *original* thread's slot.
  __attribute__((noinline)) static ExecContext* thread_exec();
  __attribute__((noinline)) static GroupTask* thread_task();

  /// The ExecContext the calling OS thread dispatches fibers through; set
  /// by run() (main_exec_) and by each group execution (GroupTask::exec).
  /// Written only from scheduler stacks (never from a fiber).
  static thread_local ExecContext* t_exec_;
  /// The GroupTask the calling OS thread is running, if any.
  static thread_local GroupTask* t_task_;

  /// Sequential-mode (and phase-driver) execution context.
  ExecContext main_exec_;

  /// Parallel-execution state. workers_ <= 1 leaves all of it idle.
  /// workers_ doubles as this kernel's quota on the process-wide
  /// Scheduler (see kernel/scheduler.h) under scheduler_client_.
  std::size_t workers_ = 0;
  std::size_t scheduler_client_ = 0;
  std::vector<std::unique_ptr<GroupTask>> tasks_;
  /// Tasks handed out for the current phase (prefix of tasks_).
  std::size_t tasks_in_use_ = 0;
  /// The current phase's tasks, sorted by group root before each round
  /// and at the merge (the deterministic "group order").
  std::vector<GroupTask*> phase_tasks_;
  /// Per-phase map from group root to the task executing it (index =
  /// domain id, null = group not runnable this phase).
  std::vector<GroupTask*> task_by_root_;
  /// Bumped on every union; lets the phase driver notice mid-round
  /// channel-discovered links and re-partition.
  std::uint64_t group_version_ = 0;
  /// Concurrency-group union-find parents, one per domain. A deque of
  /// atomics: stable addresses, lock-free monotone reads from workers.
  std::deque<std::atomic<std::size_t>> group_parent_;
  /// A recorded inter-domain ordering declaration: the two domain ids and
  /// the channel name (or caller-supplied reason) behind it, for
  /// explain_group(). `min_latency` is the declared minimum latency of
  /// the coupling; on `decoupled` records the domains were *not* merged
  /// and the latency weights the lookahead edge, on merging records it is
  /// diagnostic.
  struct DomainLinkRecord {
    std::size_t a;
    std::size_t b;
    std::string via;
    Time min_latency{};
    bool decoupled = false;
  };
  /// Every link ever declared (channel-observed or explicit), replayed
  /// when set_concurrent rebuilds the union-find.
  std::vector<DomainLinkRecord> domain_links_;
  mutable std::mutex group_mutex_;
  /// Guards processes_ / next_process_id_ against concurrent dynamic
  /// spawns from parallel rounds.
  std::mutex spawn_mutex_;
  /// Serializes ~Event timed-queue purges from parallel rounds.
  std::mutex timed_purge_mutex_;
  /// Per-domain execution fronts as of the last synchronization horizon
  /// (ps; UINT64_MAX = no live process). What mid-round probes see for
  /// foreign groups. Each entry is cache-line padded: fronts are written
  /// per domain per horizon and read by foreign-group probes, and the
  /// deque would otherwise pack eight domains' atomics per line -- at
  /// O(100) domains that false sharing is measurable (see
  /// kernel/cacheline.h).
  std::deque<CacheLinePadded<std::atomic<std::uint64_t>>> published_front_ps_;

  // --- conservative-lookahead state (see run_lookahead_extension) ---

  /// True while a free-running extension is in flight; flips now() to its
  /// task-local resolution. Written by the run() thread with the workers
  /// quiescent on either side of the pool dispatch (the pool mutex orders
  /// the accesses).
  bool free_run_live_ = false;
  /// See set_lookahead_limit().
  std::size_t lookahead_max_waves_ = 64;
  /// The prepaid-wave ledger: for each future date some group free-ran
  /// through, the per-same-date-wave delta-iteration counts already paid
  /// into stats_ at the merge (elementwise max over groups). The global
  /// timed phase consumes it -- skipping the increments the extension
  /// prepaid -- so totals stay bit-identical to the sequential schedule.
  struct PrepaidDate {
    std::vector<std::uint32_t> wave_deltas;
    std::size_t consumed = 0;
  };
  std::map<std::uint64_t, PrepaidDate> prepaid_waves_;
  /// Delta-cycle increments of the current global wave still covered by
  /// the prepaid ledger.
  std::uint32_t prepaid_skip_deltas_ = 0;
  /// Furthest date any lookahead extension has executed; when the timed
  /// queue drains, now_ advances here so the final date matches the
  /// sequential schedule's last wave.
  Time free_run_end_{};

  /// Adaptive quantum control (see kernel/quantum_controller.h). Created
  /// lazily by the first set_quantum_policy(); the scheduler loop invokes
  /// it at timed-wave boundaries only while a policy is attached, so
  /// policy-free kernels pay a single null check per wave.
  std::unique_ptr<QuantumController> quantum_controller_;
  /// TDSIM_ADAPTIVE_QUANTUM was set: every domain gets a default policy
  /// at creation.
  bool env_adaptive_ = false;
  /// See set_quantum_trace_depth(); 0 = the controller default
  /// (kQuantumTraceDepth), stored here until the controller exists.
  std::size_t quantum_trace_depth_ = 0;

  /// Chunked channels currently registered for horizon flushing, in
  /// registration order (the deterministic flush order). Guarded by
  /// chunk_flush_mutex_: channels may enter/leave chunked mode from a
  /// process inside a parallel round while an extension worker walks the
  /// list. Empty on every kernel that never opts a channel in -- the
  /// scheduler then pays one empty() check per horizon.
  std::vector<ChunkFlushListener*> chunk_flush_listeners_;
  mutable std::mutex chunk_flush_mutex_;
  /// Lock-free emptiness pre-check for the per-wave flush points (a
  /// worker may probe while another group's process registers a channel).
  std::atomic<std::size_t> chunk_flush_count_{0};
  /// See default_chunk_capacity().
  std::size_t default_chunk_capacity_ = 0;

  // --- construction config + snapshot forking (see kernel/snapshot.h) ---

  /// The fully resolved execution config (every field set); kept current
  /// by the setters so config() and snapshot() always see the truth.
  KernelConfig config_;
  /// True only inside the constructor body: the ctor seeds env-driven
  /// state (default adaptive policy) through the same code paths users
  /// call, and those must not mark the kernel snapshot-incapable.
  bool constructing_ = true;
  /// The replayable construction log: every build() step plus every
  /// top-level run() call made after the first build().
  std::vector<std::function<void(Kernel&)>> build_log_;
  /// True while a build() step runs (nested elaboration is then part of
  /// the recorded unit).
  bool in_build_ = false;
  /// True while fork() replays the log into this kernel (replayed steps
  /// must not re-record or mark external elaboration).
  bool replaying_ = false;
  /// Elaboration happened outside any build step -- the log can no
  /// longer reproduce this kernel, snapshot() refuses.
  bool external_elaboration_ = false;
  /// Flags external (non-build, non-replay, elaboration-context)
  /// mutations of simulated state; called by every elaboration entry
  /// point. Mutations from running processes are part of the
  /// deterministic schedule and never mark.
  void note_external_elaboration();
};

/// Free-function conveniences mirroring SystemC's global wait()/time API.
/// They operate on Kernel::current() and therefore only work from inside a
/// running simulation.
void wait(Time duration);
void wait(Event& event);
bool wait(Event& event, Time timeout);
void wait_delta();
void next_trigger(Event& event);
void next_trigger(Time delay);
Time sim_time_stamp();

}  // namespace tdsim
