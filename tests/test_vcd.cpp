// VCD waveform writer: header structure, scope tree, identifier encoding,
// value formatting, deduplication, date ordering, and an integration dump
// of a live Smart FIFO level probe.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/report.h"
#include "trace/vcd.h"

namespace tdsim {
namespace {

using trace::VcdVariable;
using trace::VcdWriter;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(Vcd, HeaderAndDefinitions) {
  VcdWriter writer("1ns");
  writer.add_variable("level", 8);
  const std::string dump = writer.to_string();
  EXPECT_TRUE(contains(dump, "$timescale 1ns $end"));
  EXPECT_TRUE(contains(dump, "$var wire 8 ! level $end"));
  EXPECT_TRUE(contains(dump, "$enddefinitions $end"));
}

TEST(Vcd, RejectsBadConfiguration) {
  EXPECT_THROW(VcdWriter("2ns"), SimulationError);
  VcdWriter writer;
  EXPECT_THROW(writer.add_variable("x", 0), SimulationError);
  EXPECT_THROW(writer.add_variable("x", 65), SimulationError);
  EXPECT_THROW(writer.add_variable("", 1), SimulationError);
}

TEST(Vcd, DottedNamesBecomeScopes) {
  VcdWriter writer;
  writer.add_variable("soc.fifo0.level", 8);
  writer.add_variable("soc.fifo1.level", 8);
  writer.add_variable("top_flag", 1);
  const std::string dump = writer.to_string();
  EXPECT_TRUE(contains(dump, "$scope module soc $end"));
  EXPECT_TRUE(contains(dump, "$scope module fifo0 $end"));
  EXPECT_TRUE(contains(dump, "$scope module fifo1 $end"));
  EXPECT_TRUE(contains(dump, "$var wire 1 # top_flag $end"));
  // Balanced scope push/pop.
  std::size_t scopes = 0, upscopes = 0;
  for (const std::string& line : lines_of(dump)) {
    scopes += line.rfind("$scope", 0) == 0;
    upscopes += line.rfind("$upscope", 0) == 0;
  }
  EXPECT_EQ(scopes, upscopes);
  EXPECT_EQ(scopes, 3u);  // soc, fifo0, fifo1
}

TEST(Vcd, IdentifierEncodingIsCompactAndUnique) {
  VcdWriter writer;
  std::vector<VcdVariable> vars;
  for (int i = 0; i < 200; ++i) {
    vars.push_back(writer.add_variable("v" + std::to_string(i), 1));
  }
  const std::string dump = writer.to_string();
  // 94 one-char codes, then two-char codes.
  EXPECT_TRUE(contains(dump, "$var wire 1 ! v0 $end"));
  EXPECT_TRUE(contains(dump, "$var wire 1 !\" v94 $end"));
}

TEST(Vcd, ScalarAndVectorValueFormat) {
  VcdWriter writer("1ns");
  VcdVariable flag = writer.add_variable("flag", 1);
  VcdVariable bus = writer.add_variable("bus", 8);
  flag.record(Time(5, TimeUnit::NS), 1);
  bus.record(Time(5, TimeUnit::NS), 0xA5);
  const std::string dump = writer.to_string();
  EXPECT_TRUE(contains(dump, "#5\n"));
  EXPECT_TRUE(contains(dump, "1!"));
  EXPECT_TRUE(contains(dump, "b10100101 \""));
}

TEST(Vcd, VectorValueHasNoLeadingZerosButZeroIsOneDigit) {
  VcdWriter writer;
  VcdVariable bus = writer.add_variable("bus", 16);
  bus.record(Time(1, TimeUnit::PS), 5);
  bus.record(Time(2, TimeUnit::PS), 0);
  const std::string dump = writer.to_string();
  EXPECT_TRUE(contains(dump, "b101 !"));
  EXPECT_TRUE(contains(dump, "b0 !"));
}

TEST(Vcd, ConsecutiveIdenticalValuesAreDeduplicated) {
  VcdWriter writer;
  VcdVariable v = writer.add_variable("v", 8);
  v.record(Time(1, TimeUnit::PS), 3);
  v.record(Time(2, TimeUnit::PS), 3);  // dropped
  v.record(Time(3, TimeUnit::PS), 4);
  v.record(Time(4, TimeUnit::PS), 3);  // change back: kept
  const std::string dump = writer.to_string();
  std::size_t count = 0;
  for (const std::string& line : lines_of(dump)) {
    count += line.rfind("b", 0) == 0;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_FALSE(contains(dump, "#2"));
}

TEST(Vcd, ChangesAreEmittedInDateOrderAcrossVariables) {
  VcdWriter writer;
  VcdVariable a = writer.add_variable("a", 8);
  VcdVariable b = writer.add_variable("b", 8);
  // b records earlier dates after a recorded later ones (decoupled
  // emission order).
  a.record(Time(10, TimeUnit::PS), 1);
  b.record(Time(5, TimeUnit::PS), 2);
  const std::string dump = writer.to_string();
  const std::size_t at5 = dump.find("#5");
  const std::size_t at10 = dump.find("#10");
  ASSERT_NE(at5, std::string::npos);
  ASSERT_NE(at10, std::string::npos);
  EXPECT_LT(at5, at10);
}

TEST(Vcd, OutOfOrderRecordingOnOneVariableIsSortedIn) {
  VcdWriter writer;
  VcdVariable v = writer.add_variable("v", 8);
  v.record(Time(10, TimeUnit::PS), 1);
  v.record(Time(5, TimeUnit::PS), 9);
  const std::string dump = writer.to_string();
  EXPECT_LT(dump.find("#5"), dump.find("#10"));
}

TEST(Vcd, TimescaleDividesDates) {
  VcdWriter writer("1us");
  VcdVariable v = writer.add_variable("v", 8);
  v.record(Time(2'500'000, TimeUnit::PS), 7);  // 2.5 us -> tick 2
  const std::string dump = writer.to_string();
  EXPECT_TRUE(contains(dump, "#2\n"));
}

TEST(Vcd, SampleCountAggregates) {
  VcdWriter writer;
  VcdVariable a = writer.add_variable("a", 1);
  VcdVariable b = writer.add_variable("b", 1);
  a.record(Time(1, TimeUnit::PS), 0);
  b.record(Time(1, TimeUnit::PS), 1);
  b.record(Time(2, TimeUnit::PS), 0);
  EXPECT_EQ(writer.variable_count(), 2u);
  EXPECT_EQ(writer.sample_count(), 3u);
}

TEST(Vcd, LiveFifoLevelProbe) {
  // Integration: a monitor thread probes a Smart FIFO level with
  // get_size() and records it; the dump must show the fill ramp.
  Kernel kernel;
  SmartFifo<int> fifo(kernel, "fifo", 8);
  VcdWriter writer("1ns");
  VcdVariable level = writer.add_variable("fifo.level", 8);

  kernel.spawn_thread("producer", [&] {
    for (int i = 0; i < 8; ++i) {
      fifo.write(i);
      kernel.sync_domain().inc(Time(10, TimeUnit::NS));
    }
  });
  kernel.spawn_thread("monitor", [&] {
    kernel.sync_domain().inc(Time(500, TimeUnit::PS));  // off-grid phase
    for (int s = 0; s < 10; ++s) {
      kernel.sync_domain().inc(Time(10, TimeUnit::NS));
      kernel.sync_domain().sync();
      level.record(sim_time_stamp(),
                   static_cast<std::uint64_t>(fifo.get_size()));
    }
  });
  kernel.run();

  const std::string dump = writer.to_string();
  // The ramp reaches the final level 8 (producer filled the FIFO; nobody
  // reads).
  EXPECT_TRUE(contains(dump, "b1000 !"));
  EXPECT_GT(writer.sample_count(), 4u);
}

}  // namespace
}  // namespace tdsim
