// Temporal-decoupling core: local dates, inc/sync, quantum keeper,
// method-process offsets.
#include "core/local_time.h"

#include <gtest/gtest.h>

#include <vector>

#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {
namespace {

TEST(LocalTime, IncAdvancesLocalDateNotGlobal) {
  Kernel k;
  k.spawn_thread("t", [&] {
    EXPECT_EQ(td::local_time_stamp(), Time{});
    td::inc(10_ns);
    EXPECT_EQ(td::local_time_stamp(), 10_ns);
    EXPECT_EQ(k.now(), Time{});
    EXPECT_EQ(td::local_offset(), 10_ns);
    EXPECT_FALSE(td::is_synchronized());
  });
  k.run();
}

TEST(LocalTime, SyncCatchesGlobalUp) {
  Kernel k;
  k.spawn_thread("t", [&] {
    td::inc(10_ns);
    td::inc(5_ns);
    td::sync();
    EXPECT_EQ(k.now(), 15_ns);
    EXPECT_EQ(td::local_time_stamp(), 15_ns);
    EXPECT_TRUE(td::is_synchronized());
  });
  k.run();
  EXPECT_EQ(k.now(), 15_ns);
}

TEST(LocalTime, SyncWhenSynchronizedIsFree) {
  Kernel k;
  k.spawn_thread("t", [&] {
    td::sync();
    td::sync();
  });
  k.run();
  // Only the initial dispatch; sync() of a synchronized process must not
  // yield.
  EXPECT_EQ(k.stats().context_switches, 1u);
}

TEST(LocalTime, IncThenSyncEquivalentToWait) {
  // The paper: "executing inc(d); sync() is equivalent to wait(d)".
  Kernel a;
  std::vector<Time> wait_stamps;
  a.spawn_thread("t", [&] {
    a.wait(20_ns);
    wait_stamps.push_back(a.now());
    a.wait(15_ns);
    wait_stamps.push_back(a.now());
  });
  a.run();

  Kernel b;
  std::vector<Time> td_stamps;
  b.spawn_thread("t", [&] {
    td::inc(20_ns);
    td::sync();
    td_stamps.push_back(b.now());
    td::inc(15_ns);
    td::sync();
    td_stamps.push_back(b.now());
  });
  b.run();

  EXPECT_EQ(wait_stamps, td_stamps);
}

TEST(LocalTime, AdvanceLocalToOnlyMovesForward) {
  Kernel k;
  k.spawn_thread("t", [&] {
    td::inc(10_ns);
    td::advance_local_to(5_ns);  // in the past: no-op
    EXPECT_EQ(td::local_time_stamp(), 10_ns);
    td::advance_local_to(30_ns);
    EXPECT_EQ(td::local_time_stamp(), 30_ns);
  });
  k.run();
}

TEST(LocalTime, OffsetsAreIndependentPerProcess) {
  Kernel k;
  k.spawn_thread("a", [&] {
    td::inc(100_ns);
    EXPECT_EQ(td::local_offset(), 100_ns);
  });
  k.spawn_thread("b", [&] {
    EXPECT_EQ(td::local_offset(), Time{});
    td::inc(7_ns);
    EXPECT_EQ(td::local_offset(), 7_ns);
  });
  k.run();
}

TEST(LocalTime, LocalTimeOfOtherProcess) {
  Kernel k;
  Process* a = k.spawn_thread("a", [&] {
    td::inc(100_ns);
    k.wait(1_ns);
  });
  k.spawn_thread("b", [&] {
    k.wait_delta();
    EXPECT_EQ(td::local_time_of(*a), 100_ns);
  });
  k.run();
}

TEST(LocalTime, MethodOffsetResetsEachActivation) {
  Kernel k;
  std::vector<Time> local_dates;
  int runs = 0;
  k.spawn_method("m", [&] {
    // Offset starts at zero every activation...
    EXPECT_EQ(td::local_offset(), Time{});
    td::inc(3_ns);
    local_dates.push_back(td::local_time_stamp());
    if (++runs < 3) {
      td::method_sync_trigger();  // re-arm at our local date
    }
  });
  k.run();
  EXPECT_EQ(local_dates, (std::vector<Time>{3_ns, 6_ns, 9_ns}));
}

TEST(LocalTime, SyncFromMethodWithOffsetIsError) {
  Kernel k;
  k.spawn_method("m", [&] {
    td::inc(1_ns);
    td::sync();
  });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(LocalTime, SyncFromSynchronizedMethodIsAllowed) {
  // get_size() calls sync(); a synchronized method must be able to use it.
  Kernel k;
  k.spawn_method("m", [&] { td::sync(); });
  k.run();
}

TEST(LocalTime, MethodSyncTriggerFromThreadIsError) {
  Kernel k;
  k.spawn_thread("t", [&] { td::method_sync_trigger(); });
  EXPECT_THROW(k.run(), SimulationError);
}

TEST(LocalTime, UseOutsideKernelIsError) {
  EXPECT_THROW(td::inc(1_ns), SimulationError);
  EXPECT_THROW(td::sync(), SimulationError);
  EXPECT_THROW(td::local_offset(), SimulationError);
}

TEST(QuantumKeeper, NeedsSyncOnceQuantumExhausted) {
  Kernel k;
  k.set_global_quantum(1_us);
  k.spawn_thread("t", [&] {
    td::QuantumKeeper qk(k);
    qk.inc(400_ns);
    EXPECT_FALSE(qk.need_sync());
    qk.inc(400_ns);
    EXPECT_FALSE(qk.need_sync());
    qk.inc(400_ns);
    EXPECT_TRUE(qk.need_sync());
    qk.sync();
    EXPECT_EQ(k.now(), 1200_ns);
  });
  k.run();
}

TEST(QuantumKeeper, IncAndSyncIfNeededBatchesContextSwitches) {
  Kernel k;
  k.set_global_quantum(1_us);
  k.spawn_thread("t", [&] {
    td::QuantumKeeper qk(k);
    for (int i = 0; i < 100; ++i) {
      qk.inc_and_sync_if_needed(100_ns);  // 10 inc per quantum
    }
    td::sync();
  });
  k.run();
  EXPECT_EQ(k.now(), 10_us);
  // 1 initial dispatch + 10 quantum syncs (the final sync coincides with
  // the 10th quantum boundary, already synchronized).
  EXPECT_LE(k.stats().context_switches, 12u);
  EXPECT_GE(k.stats().context_switches, 10u);
}

TEST(QuantumKeeper, ZeroQuantumSyncsEveryAnnotation) {
  // The paper: "temporal decoupling can be disabled by setting it to zero".
  Kernel k;
  k.set_global_quantum(Time{});
  k.spawn_thread("t", [&] {
    td::QuantumKeeper qk(k);
    for (int i = 0; i < 5; ++i) {
      qk.inc_and_sync_if_needed(10_ns);
    }
  });
  k.run();
  EXPECT_EQ(k.now(), 50_ns);
  EXPECT_EQ(k.stats().context_switches, 6u);  // initial + 5 syncs
}

TEST(LocalTime, QuantumErrorScenario) {
  // Paper SII.A: a cancellation message sent at date T may be seen up to a
  // quantum late by a decoupled receiver. Demonstrates why FIFO channels
  // need the Smart FIFO rather than quantum-based decoupling.
  Kernel k;
  k.set_global_quantum(1_us);
  bool flag = false;
  Time observed_at;
  k.spawn_thread("setter", [&] {
    flag = true;
    td::inc(10_ns);  // flag=1; inc(10ns); flag=0 from the paper
    td::sync();
    flag = false;
  });
  k.spawn_thread("poller", [&] {
    td::QuantumKeeper qk(k);
    qk.inc_and_sync_if_needed(1_us);  // quantum-paced polling
    observed_at = td::local_time_stamp();
    // The 10ns flag pulse is invisible at quantum granularity.
    EXPECT_FALSE(flag);
  });
  k.run();
  EXPECT_GE(observed_at, 10_ns);
}

}  // namespace
}  // namespace tdsim
