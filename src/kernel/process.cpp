#include "kernel/process.h"

#include <cstdint>

#include "kernel/fiber_sanitizer.h"
#include "kernel/kernel.h"
#include "kernel/report.h"

namespace tdsim {

Process::Process(Kernel& kernel, std::string name, ProcessKind kind,
                 std::function<void()> body, std::size_t stack_size,
                 std::uint64_t id)
    : kernel_(kernel),
      name_(std::move(name)),
      kind_(kind),
      body_(std::move(body)),
      id_(id),
      stack_size_(kind == ProcessKind::Thread ? stack_size : 0) {
  if (kind_ == ProcessKind::Thread) {
    kernel_.acquire_fiber_stack(*this);
  }
}

Process::~Process() {
  // A fiber that survived a kill request may still reference its stack
  // through the suspended ucontext; everything else is safe to recycle.
  release_stack(/*abandoned=*/thread_started_ &&
                state_ != ProcessState::Terminated);
}

void Process::release_stack(bool abandoned) {
  if (!stack_block_ && !heap_stack_) {
    return;
  }
  // Order matters (see the header): the TSan fiber must be gone before
  // the pool can hand the block to a new fiber, which would create its
  // own handle over the same pages.
  fiber::tsan_destroy_fiber(tsan_fiber_);
  tsan_fiber_ = nullptr;
  if (stack_block_) {
    if (abandoned) {
      StackPool::instance().retire(stack_block_);
    } else {
      StackPool::instance().release(stack_block_);
      kernel_.note_fiber_stack_released();
    }
    stack_block_ = StackBlock{};
  } else {
    if (abandoned) {
      // Matches the pooled path: the suspended context still points into
      // the allocation, so leak it deliberately.
      heap_stack_.release();
    } else {
      heap_stack_.reset();
      kernel_.note_fiber_stack_released();
    }
  }
}

void Process::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Process*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  // First time on this fiber stack; we came from the dispatching execution
  // context's scheduler stack, whose bounds it needs for the switches back.
  // The context is resolved through the thread-local: in parallel mode the
  // dispatching worker's, in sequential mode the kernel's main one.
  {
    Kernel::ExecContext* exec = Kernel::thread_exec();
    fiber::finish_switch(nullptr, &exec->scheduler_stack_bottom,
                         &exec->scheduler_stack_size);
  }
  try {
    self->body_();
  } catch (const ProcessKilled&) {
    // Normal teardown path: stack unwound, nothing to report.
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = ProcessState::Terminated;
  // Hand control back to whichever scheduler context is dispatching us
  // *now* -- re-read the thread-local through the noinline accessor, the
  // fiber may have migrated workers since it started. Never returns here
  // again, so the null save lets ASan release this fiber's fake stack.
  Kernel::ExecContext* exec = Kernel::thread_exec();
  fiber::start_switch(nullptr, exec->scheduler_stack_bottom,
                      exec->scheduler_stack_size, exec->tsan_fiber);
  swapcontext(&self->context_, &exec->scheduler_context);
}

void Process::start_thread_context() {
  if (getcontext(&context_) != 0) {
    Report::error("getcontext failed for process " + name_);
  }
  context_.uc_stack.ss_sp = stack_bottom();
  context_.uc_stack.ss_size = stack_usable_size();
  // The trampoline's final explicit swapcontext is the only exit; uc_link
  // must not pin one particular scheduler context (fibers may finish under
  // a different worker than the one that started them).
  context_.uc_link = nullptr;
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Process::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
  tsan_fiber_ = fiber::tsan_create_fiber();
  thread_started_ = true;
}

}  // namespace tdsim
