#include "kernel/quantum_controller.h"

#include <algorithm>

#include "kernel/kernel.h"
#include "kernel/report.h"
#include "kernel/sync_domain.h"

namespace tdsim {

namespace {

void validate_policy(const SyncDomain& domain, const QuantumPolicy& policy) {
  if (policy.min_quantum.is_zero()) {
    Report::error("QuantumPolicy for domain '" + domain.name() +
                  "': min_quantum must be non-zero (a zero quantum disables "
                  "decoupling and leaves the tuner nothing to scale)");
  }
  if (policy.min_quantum > policy.max_quantum) {
    Report::error("QuantumPolicy for domain '" + domain.name() +
                  "': min_quantum exceeds max_quantum");
  }
  if (policy.min_syncs_per_decision == 0 || policy.confirm_decisions == 0 ||
      policy.max_step_exp == 0) {
    Report::error("QuantumPolicy for domain '" + domain.name() +
                  "': min_syncs_per_decision, confirm_decisions and "
                  "max_step_exp must all be >= 1");
  }
  if (policy.shrink_share_pct > 100 || policy.grow_share_pct > 100) {
    Report::error("QuantumPolicy for domain '" + domain.name() +
                  "': share thresholds are percentages (0..100)");
  }
}

Time clamp_quantum(Time q, const QuantumPolicy& policy) {
  return std::clamp(q, policy.min_quantum, policy.max_quantum);
}

}  // namespace

QuantumController::DomainState& QuantumController::state_for(
    const SyncDomain& domain) {
  if (states_.size() <= domain.id()) {
    states_.resize(domain.id() + 1);
  }
  return states_[domain.id()];
}

void QuantumController::set_policy(SyncDomain& domain,
                                   const QuantumPolicy& policy) {
  validate_policy(domain, policy);
  DomainState& state = state_for(domain);
  if (!state.active) {
    active_count_++;
  }
  state = DomainState{};
  state.trace.assign(trace_depth_, QuantumDecision{});
  state.active = true;
  state.policy = policy;
  // The first decision window starts at the attach point, not at kernel
  // construction -- seed the snapshot from the domain's current books.
  state.snapshot = kernel_.stats().domains[domain.id()].syncs_by_cause;
  // An adaptive domain always runs inside its clamps, starting now.
  const Time clamped = clamp_quantum(domain.quantum(), policy);
  if (clamped != domain.quantum()) {
    domain.set_quantum(clamped);
  }
}

void QuantumController::clear_policy(SyncDomain& domain) {
  if (states_.size() <= domain.id() || !states_[domain.id()].active) {
    return;
  }
  states_[domain.id()].active = false;
  active_count_--;
}

const QuantumPolicy* QuantumController::policy(const SyncDomain& domain) const {
  if (states_.size() <= domain.id() || !states_[domain.id()].active) {
    return nullptr;
  }
  return &states_[domain.id()].policy;
}

const QuantumDecision* QuantumController::last_decision(
    const SyncDomain& domain) const {
  if (states_.size() <= domain.id()) {
    return nullptr;
  }
  return states_[domain.id()].newest_decision();
}

std::vector<QuantumDecision> QuantumController::decision_trace(
    const SyncDomain& domain) const {
  std::vector<QuantumDecision> out;
  if (states_.size() <= domain.id()) {
    return out;
  }
  const DomainState& state = states_[domain.id()];
  out.reserve(state.trace_count);
  const std::size_t depth = state.trace.size();
  for (std::size_t i = 0; i < state.trace_count; ++i) {
    const std::size_t slot =
        (state.trace_next + depth - state.trace_count + i) % depth;
    out.push_back(state.trace[slot]);
  }
  return out;
}

void QuantumController::set_trace_depth(std::size_t depth) {
  if (depth == 0) {
    Report::error("QuantumController::set_trace_depth: depth must be >= 1");
  }
  trace_depth_ = depth;
  for (DomainState& state : states_) {
    if (state.trace.empty()) {
      continue;  // never had a policy attached; seeded on attach
    }
    // Rebuild the ring preserving the newest min(old count, new depth)
    // decisions, laid out from slot 0 so the ring invariants hold.
    const std::size_t old_depth = state.trace.size();
    const std::size_t keep = std::min(state.trace_count, depth);
    std::vector<QuantumDecision> rebuilt(depth);
    for (std::size_t i = 0; i < keep; ++i) {
      const std::size_t slot =
          (state.trace_next + old_depth - keep + i) % old_depth;
      rebuilt[i] = state.trace[slot];
    }
    state.trace = std::move(rebuilt);
    state.trace_count = keep;
    state.trace_next = keep % depth;
  }
}

void QuantumController::on_horizon(KernelStats& stats, Time now) {
  std::vector<DomainStats>& domain_stats = stats.domains;
  // First pass: which adaptive domains have a ripe decision window? A few
  // integer adds per domain -- on the vast majority of waves nothing is
  // ripe and the horizon costs nothing further.
  const auto& domains = kernel_.domains();
  bool any_ripe = false;
  bool want_fronts = false;
  for (std::size_t id = 0; id < states_.size(); ++id) {
    DomainState& state = states_[id];
    if (!state.active) {
      continue;
    }
    // Re-establish the clamp invariant first: set_quantum() /
    // set_global_quantum() bypass the controller, so a quantum pushed
    // outside [min, max] after attach is corrected at the next horizon
    // and recorded as a clamped decision.
    SyncDomain& domain = *domains[id];
    const Time clamped = clamp_quantum(domain.quantum(), state.policy);
    if (clamped != domain.quantum()) {
      QuantumDecision& decision = state.push_decision();
      decision.serial = ++state.serial;
      decision.at = now;
      decision.old_quantum = domain.quantum();
      decision.new_quantum = clamped;
      decision.direction = clamped > domain.quantum()
                               ? QuantumDirection::Grow
                               : QuantumDirection::Shrink;
      decision.reason = "clamped";
      domain.set_quantum(clamped);
      domain_stats[id].quantum_adjustments++;
      stats.sync_aggregates_stale = 1;
    }
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kSyncCauseCount; ++i) {
      total += domain_stats[id].syncs_by_cause[i] - state.snapshot[i];
    }
    state.window_ripe = total >= state.policy.min_syncs_per_decision;
    if (state.window_ripe) {
      any_ripe = true;
      want_fronts = want_fronts || state.policy.balance_groups;
    }
  }
  if (!any_ripe) {
    return;
  }
  // The parallel cost signal, computed once per ripe horizon from
  // quantities that are identical under every worker count: per-*group*
  // execution fronts (a group's front is its furthest-behind live
  // domain's front -- the one gating it; intra-group skew is serialized
  // anyway and must not drive balancing) and the number of live groups.
  // live_groups - 1 is what KernelStats::horizon_waits would add per
  // parallel round, but unlike horizon_waits it does not depend on
  // parallel mode being on. Exact front reads are safe here: no round is
  // in flight.
  BalanceSignal balance;
  if (want_fronts) {
    group_roots_scratch_.clear();
    group_fronts_scratch_.clear();
    for (const auto& domain : domains) {
      const std::optional<Time> front = domain->execution_front();
      if (!front.has_value()) {
        continue;
      }
      const std::size_t root = kernel_.domain_group(*domain);
      const auto it = std::find(group_roots_scratch_.begin(),
                                group_roots_scratch_.end(), root);
      if (it == group_roots_scratch_.end()) {
        group_roots_scratch_.push_back(root);
        group_fronts_scratch_.push_back(*front);
      } else {
        Time& group_front =
            group_fronts_scratch_[it - group_roots_scratch_.begin()];
        group_front = std::min(group_front, *front);
      }
    }
    if (group_roots_scratch_.size() >= 2) {
      balance.valid = true;
      balance.min_group_front = group_fronts_scratch_.front();
      balance.max_group_front = group_fronts_scratch_.front();
      for (Time front : group_fronts_scratch_) {
        balance.min_group_front = std::min(balance.min_group_front, front);
        balance.max_group_front = std::max(balance.max_group_front, front);
      }
    }
  }
  for (std::size_t id = 0; id < states_.size(); ++id) {
    DomainState& state = states_[id];
    if (!state.active) {
      continue;
    }
    decide(*domains[id], state, stats, domain_stats[id], now, balance);
  }
}

void QuantumController::decide(SyncDomain& domain, DomainState& state,
                               KernelStats& stats, DomainStats& books,
                               Time now, const BalanceSignal& balance) {
  const QuantumPolicy& policy = state.policy;
  if (!state.window_ripe) {
    return;  // window not ripe yet (prepass verdict); keep accumulating
  }
  state.window_ripe = false;

  // The decision window: per-cause deltas since the previous decision.
  std::uint64_t total = 0;
  std::uint64_t churn = 0;
  std::uint64_t accuracy = 0;
  for (std::size_t i = 0; i < kSyncCauseCount; ++i) {
    const std::uint64_t delta = books.syncs_by_cause[i] - state.snapshot[i];
    total += delta;
    const auto cause = static_cast<SyncCause>(i);
    if (cause == SyncCause::Quantum) {
      churn = delta;
    } else if (accuracy_relevant(cause)) {
      accuracy += delta;
    }
  }
  state.snapshot = books.syncs_by_cause;  // consume the window

  // Primary signal: per-cause shares (integer percent math only).
  QuantumDirection desired = QuantumDirection::Hold;
  const char* reason = "steady";
  if (accuracy * 100 >= total * policy.shrink_share_pct) {
    desired = QuantumDirection::Shrink;
    reason = "accuracy-relevant syncs";
  } else if (churn * 100 >= total * policy.grow_share_pct) {
    desired = QuantumDirection::Grow;
    reason = "quantum churn";
  } else if (policy.balance_groups && balance.valid) {
    // Secondary signal: front-lag balancing between live groups. Look up
    // this domain's group front from the horizon scratch.
    const std::size_t root = kernel_.domain_group(domain);
    const auto it = std::find(group_roots_scratch_.begin(),
                              group_roots_scratch_.end(), root);
    const std::optional<Time> front = domain.execution_front();
    const Time threshold = domain.quantum() * policy.balance_lag_quanta;
    if (it != group_roots_scratch_.end() && front.has_value() &&
        balance.max_group_front - balance.min_group_front > threshold) {
      const Time group_front =
          group_fronts_scratch_[it - group_roots_scratch_.begin()];
      if (group_front == balance.min_group_front &&
          *front == group_front) {
        // This domain gates the laggard group every horizon waits on.
        desired = QuantumDirection::Shrink;
        reason = "lagging group";
      } else if (group_front - balance.min_group_front > threshold) {
        desired = QuantumDirection::Grow;
        reason = "waiting group";
      }
    }
  }

  // Hysteresis: a fresh direction must be confirmed on consecutive
  // decisions before the first step applies.
  if (desired == QuantumDirection::Hold) {
    state.pending = QuantumDirection::Hold;
    state.pending_count = 0;
    state.streak = 0;
  } else if (desired == state.pending) {
    state.pending_count++;
  } else {
    state.pending = desired;
    state.pending_count = 1;
    state.streak = 0;
  }

  const Time old_quantum = domain.quantum();
  Time new_quantum = old_quantum;
  if (desired != QuantumDirection::Hold) {
    if (state.pending_count < policy.confirm_decisions) {
      reason = "awaiting confirmation";
    } else {
      // Exponential step schedule: x2, x4, x8, ... up to 2^max_step_exp.
      const unsigned exponent = std::min(state.streak + 1,
                                         policy.max_step_exp);
      const std::uint64_t factor = std::uint64_t{1} << exponent;
      const std::uint64_t old_ps = old_quantum.ps();
      if (desired == QuantumDirection::Grow) {
        const std::uint64_t max_ps = policy.max_quantum.ps();
        new_quantum = (old_ps == 0 || old_ps > max_ps / factor)
                          ? policy.max_quantum
                          : Time::from_ps(old_ps * factor);
      } else {
        new_quantum = Time::from_ps(
            std::max(policy.min_quantum.ps(), old_ps / factor));
      }
      new_quantum = clamp_quantum(new_quantum, policy);
      if (new_quantum == old_quantum) {
        reason = "clamped";
      } else {
        state.streak++;
      }
    }
  }

  QuantumDecision& decision = state.push_decision();
  decision.serial = ++state.serial;
  decision.at = now;
  decision.old_quantum = old_quantum;
  decision.new_quantum = new_quantum;
  // Report what actually happened to the quantum, not the desire (the
  // two cannot diverge now that every horizon re-clamps first, but keep
  // the trace honest by construction).
  decision.direction = new_quantum == old_quantum ? QuantumDirection::Hold
                       : new_quantum > old_quantum ? QuantumDirection::Grow
                                                   : QuantumDirection::Shrink;
  decision.reason = reason;
  decision.syncs_quantum = churn;
  decision.syncs_accuracy = accuracy;
  decision.syncs_total = total;

  if (new_quantum != old_quantum) {
    domain.set_quantum(new_quantum);
    books.quantum_adjustments++;
    stats.sync_aggregates_stale = 1;
  }
}

}  // namespace tdsim
