// Network interfaces: packetization and arbitration between the
// accelerators' word FIFOs and the packet NoC (paper SIV.C).
//
// Two implementations with identical timing:
//
//  * SmartNetworkInterface -- the paper's design: method processes (no
//    context switch) that advance their local date with inc() while
//    assembling/deframing a packet, reading/writing the accelerator-side
//    Smart FIFOs through the guarded non-blocking interfaces. "Thanks to
//    the possibility to use inc() in a SC_METHOD, we succeeded to model
//    this module without any SC_THREAD."
//
//  * SyncNetworkInterface -- the baseline: method processes that stay
//    synchronized and pace themselves word by word with next_trigger,
//    suited to the synchronizing FIFOs of the reference model.
//
// Both share the channel configuration and the pacing discipline, so the
// word- and packet-level dates they produce are identical; only the number
// of scheduler activations (and, on the FIFO side, context switches in the
// connected accelerators) differs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fifo_interface.h"
#include "kernel/fifo.h"
#include "kernel/module.h"
#include "noc/packet.h"

namespace tdsim::noc {

/// An outbound stream: words drained from `fifo`, packetized and sent to
/// channel `dest_channel` of node `dest`.
struct TxChannelConfig {
  FifoInterface<std::uint32_t>* fifo = nullptr;
  NodeId dest = 0;
  ChannelId dest_channel = 0;
  std::size_t packet_words = 16;
  /// Packetization cost per word.
  Time per_word = 1_ns;
};

/// An inbound stream: payload words of packets addressed to this channel
/// are written into `fifo`.
struct RxChannelConfig {
  FifoInterface<std::uint32_t>* fifo = nullptr;
  /// Deframing cost per word.
  Time per_word = 1_ns;
};

/// State and statistics shared by both implementations.
class NetworkInterfaceBase : public Module {
 public:
  NetworkInterfaceBase(Module& parent, const std::string& name, NodeId id,
                       Fifo<Packet>& to_router, Fifo<Packet>& from_router);

  /// Adds an outbound (inbound) stream; returns its channel id. All
  /// channels must be added before elaborate().
  ChannelId add_tx_channel(const TxChannelConfig& config);
  ChannelId add_rx_channel(const RxChannelConfig& config);

  /// Spawns the TX/RX processes; call once after adding channels. The
  /// processes join the module's default domain, so a builder can place a
  /// whole NI (or the subtree it lives in) into a dedicated domain with
  /// Module::set_default_domain() before elaborating.
  virtual void elaborate() = 0;

  NodeId id() const { return id_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t words_sent() const { return words_sent_; }
  std::uint64_t words_received() const { return words_received_; }

  /// Network latency accounting: injection (packet.injected_at) to
  /// acceptance by this receiving interface.
  struct LatencyStats {
    std::uint64_t packets = 0;
    Time total;
    Time min = Time::max();
    Time max;

    void account(Time latency) {
      packets++;
      total += latency;
      if (latency < min) min = latency;
      if (latency > max) max = latency;
    }
    /// Mean latency (zero when no packet was received).
    Time mean() const {
      return packets == 0 ? Time{} : Time::from_ps(total.ps() / packets);
    }
  };

  const LatencyStats& rx_latency() const { return rx_latency_; }

 protected:
  NodeId id_;
  Fifo<Packet>& to_router_;
  Fifo<Packet>& from_router_;
  std::vector<TxChannelConfig> tx_channels_;
  std::vector<RxChannelConfig> rx_channels_;
  bool elaborated_ = false;

  // --- TX state ---
  std::size_t tx_rr_next_ = 0;
  std::optional<std::size_t> tx_assembling_;
  std::vector<std::uint32_t> tx_partial_;
  std::optional<Packet> tx_pending_;
  Time tx_pending_date_;
  Time tx_date_;  ///< The TX pipeline's production front.

  // --- RX state ---
  std::optional<Packet> rx_packet_;
  std::size_t rx_word_index_ = 0;
  Time rx_date_;  ///< The RX pipeline's delivery front.

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t words_sent_ = 0;
  std::uint64_t words_received_ = 0;
  LatencyStats rx_latency_;

  void check_not_elaborated() const;
  /// Called when a packet is popped from the router link.
  void account_rx(const Packet& packet);
  MethodOptions tx_sensitivity();
  MethodOptions rx_sensitivity();
};

/// The paper's NI: decoupled methods using inc() (see file header).
class SmartNetworkInterface final : public NetworkInterfaceBase {
 public:
  using NetworkInterfaceBase::NetworkInterfaceBase;
  void elaborate() override;

 private:
  void tx_step();
  void rx_step();
};

/// Baseline NI: synchronized methods paced word-by-word with next_trigger.
class SyncNetworkInterface final : public NetworkInterfaceBase {
 public:
  using NetworkInterfaceBase::NetworkInterfaceBase;
  void elaborate() override;

 private:
  void tx_step();
  void rx_step();
};

}  // namespace tdsim::noc
