// Dual-mode scenario harness (paper SIV.A): "Each test is executed in two
// modes: 1. using regular FIFOs and no temporal decoupling, 2. using the
// Smart FIFO and temporal decoupling". We additionally run the case-study
// baseline (decoupled processes + synchronizing FIFOs) as a third mode; all
// three must produce identical reordered traces.
//
// A scenario is written once against ScenarioEnv; the harness instantiates
// it per mode, runs it in a fresh kernel, and compares the recorded traces.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/fifo_interface.h"
#include "core/mutations.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "trace/trace.h"

namespace tdsim::trace {

enum class Mode {
  /// Regular FIFO + plain wait() annotations: the reference (paper "timed
  /// with no decoupling and regular FIFO").
  Reference,
  /// Smart FIFO + inc() annotations: the paper's solution ("TDfull").
  SmartDecoupled,
  /// Synchronizing FIFO + inc() annotations: the case-study baseline
  /// ("FIFOs that call sync at each access").
  SyncDecoupled,
};

inline const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Reference: return "Reference";
    case Mode::SmartDecoupled: return "SmartDecoupled";
    case Mode::SyncDecoupled: return "SyncDecoupled";
  }
  return "?";
}

/// Per-mode environment handed to a scenario. Owns the kernel, the trace
/// recorder, and every FIFO the scenario creates.
class ScenarioEnv {
 public:
  explicit ScenarioEnv(Mode mode,
                       const SmartFifoMutations* mutations = nullptr)
      : mode_(mode), mutations_(mutations), recorder_(kernel_) {}

  Kernel& kernel() { return kernel_; }
  Recorder& recorder() { return recorder_; }
  Mode mode() const { return mode_; }
  bool decoupled() const { return mode_ != Mode::Reference; }

  /// Timing annotation: inc() when decoupled, wait() otherwise. Must be
  /// called from a thread process (in decoupled modes, also from methods).
  void delay(Time d) {
    if (decoupled()) {
      kernel_.current_domain().inc(d);
    } else {
      kernel_.wait(d);
    }
  }

  /// Creates the mode-appropriate FIFO. The environment keeps ownership.
  FifoInterface<int>& fifo(const std::string& name, std::size_t depth) {
    switch (mode_) {
      case Mode::SmartDecoupled:
        fifos_.push_back(std::make_unique<SmartFifo<int>>(
            kernel_, name, depth, mutations_));
        break;
      case Mode::Reference:
      case Mode::SyncDecoupled:
        fifos_.push_back(
            std::make_unique<SyncFifo<int>>(kernel_, name, depth));
        break;
    }
    return *fifos_.back();
  }

  /// Records a trace line stamped with the current process's local date.
  void log(std::string text) { recorder_.record(std::move(text)); }
  void log(const std::string& tag, std::uint64_t value) {
    recorder_.record(tag, value);
  }

 private:
  Mode mode_;
  const SmartFifoMutations* mutations_;
  Kernel kernel_;
  Recorder recorder_;
  std::vector<std::unique_ptr<FifoInterface<int>>> fifos_;
};

/// A scenario elaborates processes against the environment; the harness
/// then runs the kernel to completion.
using Scenario = std::function<void(ScenarioEnv&)>;

/// Runs `scenario` in `mode` and returns the environment (holding the
/// recorded trace). `until` bounds runaway scenarios.
inline std::unique_ptr<ScenarioEnv> run_scenario(
    const Scenario& scenario, Mode mode,
    const SmartFifoMutations* mutations = nullptr,
    Time until = Time::max()) {
  auto env = std::make_unique<ScenarioEnv>(mode, mutations);
  scenario(*env);
  env->kernel().run(until);
  return env;
}

}  // namespace tdsim::trace
