// Scale-out hardening (PR 10): the pooled fiber-stack allocator
// (kernel/stack_pool.h), eager stack reclamation across process
// death/rebirth and snapshot forks, the elaboration arena, and O(100)
// domains / O(10k) processes elaboration -- the bench_scale regime, at
// test size. Platform sizes scale down under sanitizers (fiber
// instrumentation makes 10k fibers needlessly slow there; the full size
// runs in the plain jobs and in bench_scale).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/fiber_sanitizer.h"
#include "kernel/kernel.h"
#include "kernel/kernel_config.h"
#include "kernel/snapshot.h"
#include "kernel/stack_pool.h"
#include "kernel/sync_domain.h"
#include "kernel/time.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

#if defined(TDSIM_ASAN_FIBERS) || defined(TDSIM_TSAN_FIBERS)
constexpr std::size_t kScaleDomains = 25;
constexpr std::size_t kScaleProcs = 1'000;
#else
constexpr std::size_t kScaleDomains = 100;
constexpr std::size_t kScaleProcs = 10'000;
#endif

struct PlatformResult {
  std::uint64_t final_date_ps = 0;
  std::uint64_t checksum = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t delta_cycles = 0;
  std::uint64_t processes_spawned = 0;
  std::uint64_t stack_acquires = 0;
  std::uint64_t stack_releases = 0;
  std::uint64_t arena_reserved_bytes = 0;
};

/// The bench_scale platform, miniaturized: `domains` concurrent clusters,
/// `procs` short-lived workers per generation, `lives` generations
/// respawned by per-cluster managers.
PlatformResult run_platform(std::size_t domains, std::size_t procs,
                            std::uint64_t lives, std::uint64_t steps,
                            std::size_t workers, bool pooled = true) {
  Kernel kernel(KernelConfig{.workers = workers, .pooled_stacks = pooled});
  struct Cluster {
    SyncDomain* domain = nullptr;
    std::uint64_t sink = 0;
  };
  std::vector<Cluster> clusters(domains);
  const Time step = 10_ns;
  const Time life_span = Time::from_ps(steps * step.ps());
  for (std::size_t c = 0; c < domains; ++c) {
    clusters[c].domain =
        &kernel.create_domain({.name = "cl" + std::to_string(c),
                               .quantum = 100_ns,
                               .concurrent = true});
  }
  const auto spawn_worker = [&kernel, &clusters, steps, step](
                                std::size_t c, std::size_t slot,
                                std::uint64_t gen) {
    Cluster& cluster = clusters[c];
    ThreadOptions opts;
    opts.domain = cluster.domain;
    opts.stack_size = 64 * 1024;
    kernel.spawn_thread(
        "c" + std::to_string(c) + "_w" + std::to_string(slot) + "_g" +
            std::to_string(gen),
        [&kernel, &cluster, steps, step, c, slot, gen] {
          std::uint64_t acc = (c * 131 + slot) * 31 + gen;
          for (std::uint64_t s = 0; s < steps; ++s) {
            acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
            kernel.current_domain().inc_and_sync_if_needed(step);
          }
          cluster.sink = cluster.sink * 31 + acc;
        },
        opts);
  };
  for (std::size_t c = 0; c < domains; ++c) {
    const std::size_t slots = procs / domains + (c < procs % domains);
    for (std::size_t slot = 0; slot < slots; ++slot) {
      spawn_worker(c, slot, 0);
    }
    if (lives > 1 && slots > 0) {
      ThreadOptions opts;
      opts.domain = clusters[c].domain;
      kernel.spawn_thread(
          "mgr" + std::to_string(c),
          [&kernel, &spawn_worker, c, slots, lives, life_span] {
            for (std::uint64_t gen = 1; gen < lives; ++gen) {
              kernel.wait(life_span);
              for (std::size_t slot = 0; slot < slots; ++slot) {
                spawn_worker(c, slot, gen);
              }
            }
          },
          opts);
    }
  }
  kernel.run();
  PlatformResult result;
  result.final_date_ps = kernel.now().ps();
  for (const Cluster& cluster : clusters) {
    result.checksum = result.checksum * 1099511628211ULL + cluster.sink;
  }
  const KernelStats& stats = kernel.stats();
  result.context_switches = stats.context_switches;
  result.delta_cycles = stats.delta_cycles;
  result.processes_spawned = stats.processes_spawned;
  result.stack_acquires = stats.stack_acquires;
  result.stack_releases = stats.stack_releases;
  result.arena_reserved_bytes = stats.arena_reserved_bytes;
  return result;
}

TEST(Scale, ElaboratesAndRunsLargePlatform) {
  const PlatformResult r =
      run_platform(kScaleDomains, kScaleProcs, /*lives=*/2, /*steps=*/20,
                   /*workers=*/0);
  // procs workers x 2 generations, plus one manager per cluster.
  EXPECT_EQ(r.processes_spawned, kScaleProcs * 2 + kScaleDomains);
  // Every thread got a stack...
  EXPECT_EQ(r.stack_acquires, r.processes_spawned);
  // ...and every one terminated, so every stack was eagerly reclaimed
  // (before PR 10, dead processes kept their stacks until kernel
  // destruction -- churn leaked the whole first generation).
  EXPECT_EQ(r.stack_releases, r.processes_spawned);
  // The elaboration arena pre-sized the scheduler containers.
  EXPECT_GT(r.arena_reserved_bytes, 0u);
}

TEST(Scale, BitExactAcrossWorkersAndAllocModes) {
  const PlatformResult reference =
      run_platform(8, 200, /*lives=*/3, /*steps=*/20, /*workers=*/0);
  const PlatformResult parallel =
      run_platform(8, 200, /*lives=*/3, /*steps=*/20, /*workers=*/2);
  const PlatformResult heap =
      run_platform(8, 200, /*lives=*/3, /*steps=*/20, /*workers=*/2,
                   /*pooled=*/false);
  for (const PlatformResult* r : {&parallel, &heap}) {
    EXPECT_EQ(r->final_date_ps, reference.final_date_ps);
    EXPECT_EQ(r->checksum, reference.checksum);
    EXPECT_EQ(r->context_switches, reference.context_switches);
    EXPECT_EQ(r->delta_cycles, reference.delta_cycles);
    EXPECT_EQ(r->processes_spawned, reference.processes_spawned);
    EXPECT_EQ(r->stack_acquires, reference.stack_acquires);
    EXPECT_EQ(r->arena_reserved_bytes, reference.arena_reserved_bytes);
  }
}

TEST(Scale, StackPoolAlignsAndSizes) {
  StackPool& pool = StackPool::instance();
  // An undersized request rounds up to the minimum class.
  StackPool::Acquired small = pool.acquire(100, /*guard=*/false);
  ASSERT_TRUE(static_cast<bool>(small.block));
  EXPECT_GE(small.block.size, kMinStackClass);
  // The ucontext ABI bugfix: the stack top (ss_sp + ss_size) must be
  // 16-byte aligned. Pool blocks are page-aligned on both ends.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small.block.sp) % 4096, 0u);
  EXPECT_EQ((reinterpret_cast<std::uintptr_t>(small.block.sp) +
             small.block.size) %
                16,
            0u);
  // Size classes are powers of two.
  EXPECT_EQ(small.block.size & (small.block.size - 1), 0u);
  StackPool::Acquired big = pool.acquire(200 * 1024, /*guard=*/true);
  ASSERT_TRUE(static_cast<bool>(big.block));
  EXPECT_GE(big.block.size, 200u * 1024);
  EXPECT_TRUE(big.block.guarded);
  pool.release(small.block);
  pool.release(big.block);
  // Releasing parks the blocks for reuse; an acquire of the same class
  // must recycle rather than map fresh.
  const std::uint64_t mapped = pool.mapped_bytes();
  StackPool::Acquired again = pool.acquire(100, /*guard=*/false);
  EXPECT_TRUE(again.recycled);
  EXPECT_EQ(pool.mapped_bytes(), mapped);
  pool.release(again.block);
}

TEST(Scale, RecyclesStacksAcrossChurn) {
  const std::uint64_t recycled_before = StackPool::instance().recycled_count();
  const PlatformResult r =
      run_platform(4, 100, /*lives=*/3, /*steps=*/10, /*workers=*/0);
  // Generations 2 and 3 respawn into the blocks generation 1 (and 2)
  // released: sequentially, at least one whole generation's worth of
  // acquisitions must have been recycled.
  EXPECT_EQ(r.stack_acquires, 100u * 3 + 4);
  EXPECT_GE(StackPool::instance().recycled_count() - recycled_before, 100u);
}

TEST(Scale, ForkRespawnsIntoReleasedStacks) {
  auto source = std::make_unique<Kernel>(KernelConfig{.workers = 0});
  source->build([](Kernel& k) {
    Kernel* kp = &k;
    for (int i = 0; i < 50; ++i) {
      k.spawn_thread("t" + std::to_string(i), [kp] {
        for (int s = 0; s < 5; ++s) {
          kp->wait(10_ns);
        }
      });
    }
  });
  source->run();
  // All 50 threads terminated; their stacks went back to the pool.
  EXPECT_EQ(source->stats().stack_releases, 50u);
  const Snapshot snap = source->snapshot();
  source.reset();
  // The fork's replay respawns the same 50 threads -- into the blocks
  // the source's processes vacated (the pool is process-wide).
  std::unique_ptr<Kernel> fork = Kernel::fork(snap);
  EXPECT_EQ(fork->stats().stack_acquires, 50u);
  EXPECT_GE(fork->stats().stack_recycles, 50u);
  fork->run();
  EXPECT_EQ(fork->stats().stack_releases, 50u);
}

#if !defined(TDSIM_TSAN_FIBERS)
// A fiber blowing through its stack must fault on the guard page
// instead of silently corrupting the adjacent allocation -- the
// overflow-detection bugfix. (Skipped under TSan: death tests re-execute
// through fork, which TSan's runtime does not support reliably.)
TEST(ScaleDeathTest, StackOverflowHitsGuardPage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Kernel kernel(KernelConfig{.workers = 0});
        ThreadOptions opts;
        opts.stack_size = 16 * 1024;  // minimum class: overflows quickly
        struct Recurse {
          static std::uint64_t deep(std::uint64_t depth) {
            volatile char frame[512];
            frame[0] = static_cast<char>(depth);
            frame[511] = frame[0];
            if (depth == 0) {
              return frame[511];
            }
            return deep(depth - 1) + frame[0];
          }
        };
        kernel.spawn_thread("overflower", [] {
          // 4096 frames x ~0.5 KiB >> 16 KiB of stack.
          Recurse::deep(4096);
        });
        kernel.run();
      },
      ".*");
}
#endif

}  // namespace
}  // namespace tdsim
