// Channel-side concurrency-group discovery.
//
// Parallel per-domain execution (Kernel::set_workers) may only run two
// domains concurrently when nothing orders them -- and the things that
// order domains in this codebase are the channels between them: Smart-FIFO
// cell stamps, StartGate dates, regular FIFO hand-offs, signal updates,
// arbitration points. Each channel therefore owns a DomainLink and calls
// touch() with the calling process's domain on every public operation:
// the first time a channel sees traffic from a second domain it declares
// the pair to the kernel (Kernel::link_domains), which merges their
// concurrency groups and restores full serialization between them.
//
// The fast path is a single relaxed pointer load and compare (the previous
// caller's domain), so instrumented channels stay free on the hot path.
// Links discovered at the initialization wave -- which runs sequentially
// even in parallel mode, and is when virtually every channel meets both
// its sides -- are in place before the first parallel round. The fields
// are atomics so that the pathological case of two *concurrent* groups
// making first contact on one channel inside the same parallel round
// still records the link race-free (the kernel re-partitions at the next
// horizon); the channel's own state has no such protection, so a model
// must not let unlinked concurrent domains exchange data in the very
// round that first couples them -- declare such couplings up front with
// Kernel::link_domains, as with any coupling no channel can see (e.g. a
// plain variable shared across concurrent domains). See README "Parallel
// execution".
#pragma once

#include <atomic>
#include <string>
#include <utility>

#include "kernel/kernel.h"
#include "kernel/sync_domain.h"

namespace tdsim {

class DomainLink {
 public:
  DomainLink() = default;

  /// `label` names the owning channel in Kernel::explain_group() output --
  /// the answer to "which channel merged my concurrency group". Channels
  /// that know their name pass it here (or via set_label from a
  /// constructor body).
  explicit DomainLink(const std::string& label) { set_label(label); }

  /// Elaboration-time only (the label is read when a link is declared).
  /// The "via" string is composed here, once, so touch() stays
  /// allocation-free on the channel hot path.
  void set_label(const std::string& label) {
    via_ = "channel '" + label + "'";
  }

  /// Declares the owning channel's minimum modeling latency: the smallest
  /// simulated-time delay the channel ever imposes between a producer-side
  /// operation and its consumer-side visibility (FIFO depth x cell
  /// quantum, a bus hop latency, a NoC link's header latency...). Purely
  /// diagnostic for channel-discovered links -- the link still *merges*
  /// the concurrency groups, because both sides mutate the same channel
  /// object -- but Kernel::explain_group() prints it next to the channel
  /// label, and it is the value a model author would pass to
  /// Kernel::link_domains(a, b, min_latency) after restructuring the
  /// coupling into a lookahead-safe (horizon-mediated) one. See README
  /// "Parallel execution".
  void set_min_latency(Time latency) {
    min_latency_ps_.store(latency.ps(), std::memory_order_relaxed);
  }

  Time min_latency() const {
    return Time::from_ps(min_latency_ps_.load(std::memory_order_relaxed));
  }

  /// Records `domain` as a user of the owning channel; merges concurrency
  /// groups when the channel turns out to span domains. O(1) relaxed load
  /// and compare when the caller's domain is unchanged since the last
  /// touch.
  void touch(SyncDomain& domain) {
    if (&domain == last_.load(std::memory_order_relaxed)) {
      return;
    }
    last_.store(&domain, std::memory_order_relaxed);
    SyncDomain* expected = nullptr;
    if (first_.compare_exchange_strong(expected, &domain,
                                       std::memory_order_relaxed)) {
      return;  // we are the channel's first domain
    }
    if (expected != &domain) {
      // Idempotent and lock-free once the groups are already merged; via_
      // is passed by reference and only copied when a new link is
      // actually recorded.
      domain.kernel().link_domains(*expected, domain, via_, min_latency());
    }
  }

  /// The first domain that ever touched the owning channel, or null
  /// before any traffic. Every later toucher is merged into its
  /// concurrency group, so this single domain identifies the channel's
  /// group (chunked channels report it as their flush home -- see
  /// Kernel::ChunkFlushListener).
  SyncDomain* first_domain() const {
    return first_.load(std::memory_order_relaxed);
  }

  /// Ambient-kernel variant for components not bound to a kernel at
  /// construction (buses, register banks): resolves the calling process's
  /// domain through Kernel::current(); no-op outside a running simulation
  /// (e.g. elaboration-time peeks).
  void touch_current() {
    Kernel* kernel = Kernel::current();
    if (kernel != nullptr) {
      touch(kernel->current_domain());
    }
  }

 private:
  /// The first domain ever seen; every later domain is linked against it
  /// (transitivity in the kernel's union-find does the rest).
  std::atomic<SyncDomain*> first_{nullptr};
  /// The previous caller's domain -- the fast-path filter.
  std::atomic<SyncDomain*> last_{nullptr};
  /// Declared minimum channel latency in picoseconds (see set_min_latency);
  /// atomic for the same first-contact race the pointers tolerate.
  std::atomic<std::uint64_t> min_latency_ps_{0};
  /// Pre-composed explain_group() attribution (see set_label).
  std::string via_ = "an unnamed channel";
};

}  // namespace tdsim
