// Fault containment (kernel/failure.h, kernel/fault_plan.h,
// fleet/supervisor.h): any exception leaving run() lands the kernel in
// Health::Failed with a structured FailureReport while sibling kernels on
// the shared Scheduler stay bit-exact with their solo runs; wall-clock
// watchdogs trip at horizons instead of hanging; destruction after a
// failed run is leak-free (the ASan job holds this suite to it); and the
// fleet Supervisor separates scheduling bugs (sequential retry succeeds)
// from model bugs (quarantined). Failures are injected with the
// deterministic chaos harness, keyed on (process, activation) -- points of
// the schedule that are identical at every worker count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/mutations.h"
#include "core/smart_fifo.h"
#include "fleet/supervisor.h"
#include "kernel/event.h"
#include "kernel/failure.h"
#include "kernel/fault_plan.h"
#include "kernel/kernel.h"
#include "kernel/report.h"
#include "kernel/snapshot.h"
#include "kernel/sync_domain.h"

namespace tdsim {
namespace {

struct Fingerprint {
  std::vector<Time> dates;
  Time end;
  std::uint64_t delta_cycles = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t sync_requests = 0;

  void capture(const Kernel& k) {
    end = k.now();
    delta_cycles = k.stats().delta_cycles;
    context_switches = k.stats().context_switches;
    sync_requests = k.stats().sync_requests;
  }
};

void expect_fingerprint_equal(const Fingerprint& a, const Fingerprint& b,
                              const std::string& what) {
  EXPECT_EQ(a.end, b.end) << what;
  EXPECT_EQ(a.delta_cycles, b.delta_cycles) << what;
  EXPECT_EQ(a.context_switches, b.context_switches) << what;
  EXPECT_EQ(a.sync_requests, b.sync_requests) << what;
  EXPECT_EQ(a.dates, b.dates) << what;
}

/// Per-kernel workload state (same discipline as test_scheduler.cpp):
/// stable addresses while several kernels run side by side.
struct Model {
  std::deque<std::unique_ptr<SmartFifo<int>>> fifos;
  std::deque<std::vector<Time>> cluster_dates;

  std::vector<Time> dates() const {
    std::vector<Time> all;
    for (const std::vector<Time>& cluster : cluster_dates) {
      all.insert(all.end(), cluster.begin(), cluster.end());
    }
    return all;
  }
};

/// Two producer/consumer clusters over Smart FIFOs, seeded so different
/// kernels carry visibly different schedules. Process names are
/// "producer<seed>_<c>" / "consumer<seed>_<c>" -- the chaos specs below
/// key on them.
void build_model(Kernel& k, Model& model, int seed, int words) {
  for (int c = 0; c < 2; ++c) {
    const std::string suffix = std::to_string(seed) + "_" + std::to_string(c);
    SyncDomain& prod = k.create_domain(
        {.name = "fp" + suffix, .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = k.create_domain(
        {.name = "fc" + suffix, .quantum = 300_ns, .concurrent = true});
    model.fifos.push_back(
        std::make_unique<SmartFifo<int>>(k, "ff" + suffix, 3));
    SmartFifo<int>* fifo = model.fifos.back().get();
    model.cluster_dates.emplace_back();
    std::vector<Time>* dates = &model.cluster_dates.back();
    ThreadOptions popts;
    popts.domain = &prod;
    k.spawn_thread("producer" + suffix, [&k, fifo, seed, c, words] {
      for (int i = 0; i < words; ++i) {
        k.current_domain().inc((i % 5 + 1 + seed + c) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    k.spawn_thread("consumer" + suffix, [&k, fifo, dates, seed, c, words] {
      for (int i = 0; i < words; ++i) {
        const int v = fifo->read();
        k.current_domain().inc((i % 3 + 1 + seed + c) * 4_ns);
        dates->push_back(k.current_domain().local_time_stamp());
        if (v != i) {
          dates->push_back(Time::max());  // corruption marker
        }
      }
    }, copts);
  }
}

Fingerprint run_solo(std::size_t workers, int seed, int words) {
  Kernel k(KernelConfig{.workers = workers});
  Model model;
  build_model(k, model, seed, words);
  k.run();
  Fingerprint out;
  out.capture(k);
  out.dates = model.dates();
  return out;
}

/// Silences the report sink for a scope (injected faults emit warnings;
/// the isolation loop would spam stderr otherwise).
class QuietReports {
 public:
  QuietReports()
      : previous_(Report::set_handler([](Severity, const std::string&) {})) {}
  ~QuietReports() { Report::set_handler(previous_); }

 private:
  Report::Handler previous_;
};

// ---------------------------------------------------------------------------
// Tentpole: isolation. A deliberately crashing kernel interleaved with
// healthy siblings on the shared Scheduler must leave the siblings
// bit-identical to their solo runs, at every worker count.
// ---------------------------------------------------------------------------

TEST(FaultContainment, CrashingSiblingLeavesInterleavedKernelsBitExact) {
  QuietReports quiet;
  constexpr int kWords = 40;
  for (std::size_t workers : {0u, 1u, 4u}) {
    const std::string what = "workers=" + std::to_string(workers);
    const Fingerprint solo_a = run_solo(workers, /*seed=*/0, kWords);
    const Fingerprint solo_b = run_solo(workers, /*seed=*/7, kWords);

    Kernel ka(KernelConfig{.workers = workers});
    Kernel kb(KernelConfig{.workers = workers});
    Kernel kc(KernelConfig{.workers = workers});
    Model ma;
    Model mb;
    Model mc;
    build_model(ka, ma, /*seed=*/0, kWords);
    build_model(kb, mb, /*seed=*/7, kWords);
    build_model(kc, mc, /*seed=*/9, kWords);
    kc.arm_faults(FaultPlan::parse("throw:producer9_0@5"));

    bool crashed = false;
    auto drive_crasher = [&](Time until) {
      if (crashed) {
        return;
      }
      try {
        kc.run(until);
      } catch (const InjectedFault&) {
        crashed = true;
      }
    };
    for (Time slice : {100_ns, 300_ns, 650_ns}) {
      ka.run(slice);
      drive_crasher(slice);
      kb.run(slice);
    }
    ka.run();
    drive_crasher(Time::max());
    kb.run();

    ASSERT_TRUE(crashed) << what;
    EXPECT_EQ(kc.health(), Health::Failed) << what;
    ASSERT_NE(kc.failure(), nullptr) << what;
    EXPECT_EQ(kc.failure()->kind, FailureKind::Injected) << what;
    EXPECT_EQ(kc.failure()->process, "producer9_0") << what;
    EXPECT_EQ(kc.failure()->domain, "fp9_0") << what;

    Fingerprint inter_a;
    inter_a.capture(ka);
    inter_a.dates = ma.dates();
    Fingerprint inter_b;
    inter_b.capture(kb);
    inter_b.dates = mb.dates();
    expect_fingerprint_equal(solo_a, inter_a, "kernel A beside crash, " + what);
    expect_fingerprint_equal(solo_b, inter_b, "kernel B beside crash, " + what);
  }
}

// ---------------------------------------------------------------------------
// Defined failure states.
// ---------------------------------------------------------------------------

TEST(FaultContainment, FailedIsTerminalAndCarriesAStructuredReport) {
  QuietReports quiet;
  Kernel k;
  Model m;
  build_model(k, m, /*seed=*/1, /*words=*/20);
  EXPECT_EQ(k.health(), Health::Idle);
  k.arm_faults(FaultPlan::parse("throw:producer1_0@3"));
  EXPECT_THROW(k.run(), InjectedFault);

  EXPECT_EQ(k.health(), Health::Failed);
  ASSERT_NE(k.failure(), nullptr);
  const FailureReport& report = *k.failure();
  EXPECT_EQ(report.kind, FailureKind::Injected);
  EXPECT_EQ(report.process, "producer1_0");
  EXPECT_EQ(report.domain, "fp1_0");
  EXPECT_FALSE(report.message.empty());
  EXPECT_FALSE(report.fronts.empty());
  EXPECT_EQ(k.stats().failures, 1u);
  const std::string rendered = report.to_string();
  EXPECT_NE(rendered.find("Injected"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("producer1_0"), std::string::npos) << rendered;

  // Failed is terminal: no further run(), and the report survives.
  EXPECT_THROW(k.run(), SimulationError);
  EXPECT_EQ(k.failure()->kind, FailureKind::Injected);
}

TEST(FaultContainment, FailedKernelRefusesSnapshot) {
  QuietReports quiet;
  // Elaborate through build() so the snapshot refusal exercised is the
  // Failed check, not the external-elaboration one.
  Kernel k;
  auto fifo = std::make_shared<std::unique_ptr<SmartFifo<int>>>();
  k.build([fifo](Kernel& kk) {
    *fifo = std::make_unique<SmartFifo<int>>(kk, "snap_fifo", 2);
    SmartFifo<int>* f = fifo->get();
    kk.spawn_thread("snap_writer", [&kk, f] {
      for (int i = 0; i < 10; ++i) {
        kk.current_domain().inc(5_ns);
        f->write(i);
      }
    });
    kk.spawn_thread("snap_reader", [&kk, f] {
      for (int i = 0; i < 10; ++i) {
        (void)f->read();
        kk.current_domain().inc(7_ns);
      }
    });
  });
  k.arm_faults(FaultPlan::parse("throw:snap_writer@2"));
  EXPECT_THROW(k.run(), InjectedFault);
  try {
    (void)k.snapshot();
    FAIL() << "snapshot() must refuse a Failed kernel";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("not a replayable warm point"),
              std::string::npos)
        << e.what();
  }
  fifo->reset();  // channel dies before its kernel
}

TEST(FaultContainment, DeltaLivelockIsClassified) {
  QuietReports quiet;
  Kernel k(KernelConfig{.delta_cycle_limit = 50});
  Event ping(k, "ping");
  Event pong(k, "pong");
  MethodOptions a_opts;
  a_opts.sensitivity.push_back(&ping);
  k.spawn_method("a", [&] { pong.notify_delta(); }, a_opts);
  MethodOptions b_opts;
  b_opts.sensitivity.push_back(&pong);
  k.spawn_method("b", [&] { ping.notify_delta(); }, b_opts);
  EXPECT_THROW(k.run(), DeltaLivelockError);
  EXPECT_EQ(k.health(), Health::Failed);
  ASSERT_NE(k.failure(), nullptr);
  EXPECT_EQ(k.failure()->kind, FailureKind::DeltaLivelock);
  EXPECT_EQ(k.stats().failures, 1u);
}

// ---------------------------------------------------------------------------
// Destruction after a failed run: suspended fibers, pending timed events,
// dirty chunked spans -- all reclaimed (the ASan job enforces leak-free),
// and a fresh kernel on the same Scheduler still runs bit-exactly.
// ---------------------------------------------------------------------------

TEST(FaultContainment, DestructionAfterFailedRunIsCleanAndIsolated) {
  QuietReports quiet;
  const Fingerprint solo = run_solo(/*workers=*/2, /*seed=*/3, /*words=*/30);
  {
    Kernel k(KernelConfig{.workers = 2});
    Model m;
    build_model(k, m, /*seed=*/5, /*words=*/60);
    // A chunked channel mid-transfer: its spans are dirty when the fault
    // fires and must still tear down cleanly.
    m.fifos.push_back(std::make_unique<SmartFifo<int>>(k, "dirty", 16));
    m.fifos.back()->set_chunk_capacity(8);
    SmartFifo<int>* dirty = m.fifos.back().get();
    k.spawn_thread("dirty_writer", [&k, dirty] {
      for (int i = 0; i < 200; ++i) {
        k.current_domain().inc(2_ns);
        dirty->write(i);
      }
    });
    k.spawn_thread("dirty_reader", [&k, dirty] {
      for (int i = 0; i < 200; ++i) {
        (void)dirty->read();
        k.current_domain().inc(3_ns);
      }
    });
    // A fiber parked on a far-future timed event, still pending at the
    // failure.
    k.spawn_thread("parked", [&k] { k.wait(10_s); });
    k.arm_faults(FaultPlan::parse("throw:producer5_0@4"));
    EXPECT_THROW(k.run(), InjectedFault);
    EXPECT_EQ(k.health(), Health::Failed);
  }  // the Failed kernel, its fibers, queues and spans die here
  const Fingerprint after = run_solo(/*workers=*/2, /*seed=*/3, /*words=*/30);
  expect_fingerprint_equal(solo, after, "fresh kernel after a failed one");
}

// ---------------------------------------------------------------------------
// Watchdogs.
// ---------------------------------------------------------------------------

void spawn_spinner(Kernel& k, int waves) {
  k.spawn_thread("spinner", [&k, waves] {
    for (int i = 0; i < waves; ++i) {
      k.wait(1_ns);
    }
  });
}

TEST(FaultContainment, RunOptionsWallLimitTripsTheWatchdog) {
  QuietReports quiet;
  Kernel k;
  // Bounded spin: far more waves than 20 ms allows, but finite, so a
  // broken watchdog fails the test instead of hanging it.
  spawn_spinner(k, 5'000'000);
  try {
    k.run(RunOptions{.until = Time::max(), .wall_limit_ms = 20});
    FAIL() << "expected the wall-clock watchdog to trip";
  } catch (const WatchdogError& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(k.health(), Health::Failed);
  ASSERT_NE(k.failure(), nullptr);
  EXPECT_EQ(k.failure()->kind, FailureKind::Watchdog);
  EXPECT_FALSE(k.failure()->fronts.empty());
  EXPECT_EQ(k.stats().watchdog_trips, 1u);
  EXPECT_EQ(k.stats().failures, 1u);
  EXPECT_GT(k.now().ps(), 0u);  // it was making progress, not hung at zero
}

TEST(FaultContainment, ConfigAndEnvWallLimitsResolve) {
  QuietReports quiet;
  {
    Kernel k(KernelConfig{.wall_limit_ms = 20});
    EXPECT_EQ(k.config().wall_limit_ms.value(), 20u);
    spawn_spinner(k, 5'000'000);
    EXPECT_THROW(k.run(), WatchdogError);
    EXPECT_EQ(k.failure()->kind, FailureKind::Watchdog);
  }
  {
    ::setenv("TDSIM_WALL_LIMIT_MS", "20", 1);
    Kernel k;
    ::unsetenv("TDSIM_WALL_LIMIT_MS");
    EXPECT_EQ(k.config().wall_limit_ms.value(), 20u);
    spawn_spinner(k, 5'000'000);
    EXPECT_THROW(k.run(), WatchdogError);
  }
  {
    // A per-call override of 0 disarms a config-armed watchdog: the run
    // must complete even though it takes far longer than the 1 ms budget.
    Kernel k(KernelConfig{.wall_limit_ms = 1});
    spawn_spinner(k, 200'000);
    k.run(RunOptions{.until = Time::max(), .wall_limit_ms = 0});
    EXPECT_EQ(k.health(), Health::Idle);
  }
}

// ---------------------------------------------------------------------------
// Chaos harness actions beyond Throw, and the spec parser.
// ---------------------------------------------------------------------------

TEST(FaultContainment, FaultPlanParsesAndRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "throw:prod@3;stall:dma@5=200ns;flip:prod@7=naive_is_full;"
      "stop:sink@2;throw:px@9!par");
  ASSERT_EQ(plan.actions.size(), 5u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::Throw);
  EXPECT_EQ(plan.actions[0].process, "prod");
  EXPECT_EQ(plan.actions[0].activation, 3u);
  EXPECT_FALSE(plan.actions[0].only_parallel);
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::Stall);
  EXPECT_EQ(plan.actions[1].stall, 200_ns);
  EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::FlipMutation);
  EXPECT_TRUE(plan.actions[2].flag == &SmartFifoMutations::naive_is_full);
  EXPECT_EQ(plan.actions[2].mutations, nullptr);  // caller wires the target
  EXPECT_EQ(plan.actions[3].kind, FaultAction::Kind::Stop);
  EXPECT_TRUE(plan.actions[4].only_parallel);
  const std::string rendered = plan.to_string();
  EXPECT_NE(rendered.find("throw:prod@3"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("throw:px@9!par"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("naive_is_full"), std::string::npos) << rendered;

  EXPECT_THROW(FaultPlan::parse("zap:p@1"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("throw:p"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("throw:p@0"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("stall:p@1"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("stall:p@1=xyz"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("flip:p@1=bogus_flag"), SimulationError);
  EXPECT_THROW(FaultPlan::parse("stall:p@1=5ns!par"), SimulationError);
  EXPECT_TRUE(FaultPlan::parse("").empty());

  EXPECT_TRUE(resolve_mutation_flag("skip_sync_on_block") ==
              &SmartFifoMutations::skip_sync_on_block);
  EXPECT_TRUE(resolve_mutation_flag("nope") == nullptr);

  // Arming a flip whose mutations target was never wired is refused.
  Kernel k;
  EXPECT_THROW(k.arm_faults(FaultPlan::parse("flip:p@1=naive_is_full")),
               SimulationError);
}

TEST(FaultContainment, StopActionStopsCleanlyAndTheRunResumesBitExact) {
  const Fingerprint solo = run_solo(/*workers=*/2, /*seed=*/4, /*words=*/30);
  Kernel k(KernelConfig{.workers = 2});
  Model m;
  build_model(k, m, /*seed=*/4, /*words=*/30);
  k.arm_faults(FaultPlan::parse("stop:consumer4_0@3"));
  k.run();  // the injected stop ends this run early -- cleanly
  EXPECT_EQ(k.health(), Health::Idle);
  EXPECT_LT(k.now().ps(), solo.end.ps());
  k.run();  // resume to completion
  Fingerprint resumed;
  resumed.capture(k);
  resumed.dates = m.dates();
  // Resuming costs one extra delta cycle of scheduler bookkeeping, so the
  // comparison pins the semantic results: final date and per-word dates.
  EXPECT_EQ(resumed.end.ps(), solo.end.ps());
  EXPECT_EQ(resumed.dates, solo.dates);
}

TEST(FaultContainment, StallActionLagsTheVictimDomain) {
  const Fingerprint solo = run_solo(/*workers=*/0, /*seed=*/2, /*words=*/20);
  Kernel k;
  Model m;
  build_model(k, m, /*seed=*/2, /*words=*/20);
  k.arm_faults(FaultPlan::parse("stall:producer2_0@2=500ns"));
  k.run();
  EXPECT_EQ(k.health(), Health::Idle);
  // The stalled producer's dates (and everything downstream of them)
  // moved out; the run still completes.
  EXPECT_GT(k.now().ps(), solo.end.ps());
}

TEST(FaultContainment, FlipMutationTogglesTheFlagMidRun) {
  Kernel k;
  SmartFifoMutations mutations;
  SmartFifo<int> fifo(k, "flip_fifo", 4, &mutations);
  k.spawn_thread("flip_writer", [&k, &fifo] {
    for (int i = 0; i < 20; ++i) {
      k.current_domain().inc(5_ns);
      fifo.write(i);
    }
  });
  k.spawn_thread("flip_reader", [&k, &fifo] {
    for (int i = 0; i < 20; ++i) {
      (void)fifo.read();
      k.current_domain().inc(7_ns);
    }
  });
  // naive_get_size corrupts only get_size(), which this model never
  // calls: the flip must land without destabilizing the run.
  FaultPlan plan = FaultPlan::parse("flip:flip_writer@5=naive_get_size");
  ASSERT_EQ(plan.actions.size(), 1u);
  plan.actions[0].mutations = &mutations;
  k.arm_faults(std::move(plan));
  EXPECT_FALSE(mutations.naive_get_size);
  k.run();
  EXPECT_EQ(k.health(), Health::Idle);
  EXPECT_TRUE(mutations.naive_get_size);
}

// ---------------------------------------------------------------------------
// Satellite: exceptions from worker-run group tasks (including the
// free-running lookahead path) surface on the driving thread.
// ---------------------------------------------------------------------------

TEST(FaultContainment, ThrowFromFreeRunningGroupSurfacesOnDrivingThread) {
  QuietReports quiet;
  Kernel k;
  k.set_workers(2);
  struct Cluster {
    SyncDomain* producer_side;
    SyncDomain* consumer_side;
    std::unique_ptr<SmartFifo<int>> fifo;
  };
  std::vector<Cluster> clusters(3);
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    Cluster& cluster = clusters[c];
    const std::string suffix = std::to_string(c);
    cluster.producer_side = &k.create_domain(
        {.name = "frp" + suffix, .quantum = 40_ns, .concurrent = true});
    cluster.consumer_side = &k.create_domain(
        {.name = "frc" + suffix, .quantum = 300_ns, .concurrent = true});
    cluster.fifo = std::make_unique<SmartFifo<int>>(k, "frf" + suffix, 3);
    // Declared latency decouples the clusters, so each group may run
    // waves ahead of the global horizon (the free-running path).
    cluster.fifo->declare_cell_latency(40_ns);
    ThreadOptions popts;
    popts.domain = cluster.producer_side;
    k.spawn_thread("fr_producer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 40; ++i) {
        k.current_domain().inc((i % 5 + 1 + static_cast<int>(c)) * 3_ns);
        cluster.fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = cluster.consumer_side;
    k.spawn_thread("fr_consumer" + suffix, [&k, &cluster, c] {
      for (int i = 0; i < 40; ++i) {
        (void)cluster.fifo->read();
        k.current_domain().inc((i % 3 + 1 + static_cast<int>(c)) * 4_ns);
      }
    }, copts);
  }
  k.arm_faults(FaultPlan::parse("throw:fr_producer1@10"));
  EXPECT_THROW(k.run(), InjectedFault);
  EXPECT_EQ(k.health(), Health::Failed);
  ASSERT_NE(k.failure(), nullptr);
  // The worker-run group task captured the exception and the horizon
  // merge attributed it -- process and domain survive the thread hop.
  EXPECT_EQ(k.failure()->process, "fr_producer1");
  EXPECT_EQ(k.failure()->domain, "frp1");
}

TEST(FaultContainment, OnlyParallelFaultSkipsSequentialRuns) {
  QuietReports quiet;
  // The exact fault that models a scheduling-dependent bug: fires with
  // workers >= 2, consumed-but-skipped with workers 0 -- the Supervisor's
  // sequential retry rides on this.
  for (std::size_t workers : {0u, 2u}) {
    Kernel k(KernelConfig{.workers = workers});
    Model m;
    build_model(k, m, /*seed=*/6, /*words=*/20);
    k.arm_faults(FaultPlan::parse("throw:producer6_0@3!par"));
    if (workers >= 2) {
      EXPECT_THROW(k.run(), InjectedFault);
      EXPECT_EQ(k.health(), Health::Failed);
    } else {
      k.run();
      EXPECT_EQ(k.health(), Health::Idle);
    }
  }
}

// ---------------------------------------------------------------------------
// Supervised fleet execution.
// ---------------------------------------------------------------------------

struct SupModel {
  std::unique_ptr<SmartFifo<int>> fifo;
  std::uint64_t consumed = 0;
};

TEST(FaultContainment, SupervisorRetriesSchedulingBugsQuarantinesModelBugs) {
  QuietReports quiet;
  using fleet::FleetOptions;
  using fleet::ScenarioOutcome;
  using fleet::ScenarioSpec;
  using fleet::ScenarioStatus;
  using fleet::Supervisor;

  auto registry = std::make_shared<std::map<const Kernel*, SupModel>>();
  Kernel warm(KernelConfig{.workers = 2});
  warm.build([registry](Kernel& kk) {
    SupModel& m = (*registry)[&kk];
    SyncDomain& prod = kk.create_domain(
        {.name = "sup_prod", .quantum = 40_ns, .concurrent = true});
    SyncDomain& cons = kk.create_domain(
        {.name = "sup_cons", .quantum = 300_ns, .concurrent = true});
    m.fifo = std::make_unique<SmartFifo<int>>(kk, "sup_fifo", 4);
    SmartFifo<int>* fifo = m.fifo.get();
    SupModel* mp = &m;  // std::map nodes are address-stable
    ThreadOptions popts;
    popts.domain = &prod;
    kk.spawn_thread("sup_producer", [&kk, fifo] {
      for (int i = 0; i < 30; ++i) {
        kk.current_domain().inc((i % 5 + 1) * 3_ns);
        fifo->write(i);
      }
    }, popts);
    ThreadOptions copts;
    copts.domain = &cons;
    kk.spawn_thread("sup_consumer", [&kk, fifo, mp] {
      for (int i = 0; i < 30; ++i) {
        (void)fifo->read();
        mp->consumed++;
        kk.current_domain().inc((i % 3 + 1) * 4_ns);
      }
    }, copts);
  });
  // Snapshot at the cold warm point: forks replay elaboration only, so
  // sup_producer starts at activation 0 and the @3 faults below can fire
  // (activations consumed during a warm run would replay past them).
  const Snapshot snap = warm.snapshot();

  std::vector<ScenarioSpec> specs(3);
  specs[0].name = "ok";
  specs[1].name = "sched";  // parallel-only: the sequential retry survives
  specs[1].faults = FaultPlan::parse("throw:sup_producer@3!par");
  specs[2].name = "model";  // persistent: fails the retry too
  specs[2].faults = FaultPlan::parse("throw:sup_producer@3");

  std::map<std::string, std::uint64_t> consumed;
  std::map<std::string, std::uint64_t> kernel_retries;
  Supervisor supervisor(snap, {}, FleetOptions{.batch = 3});
  const std::vector<ScenarioOutcome> outcomes = supervisor.run(
      specs,
      [&](Kernel& kernel, const ScenarioSpec& spec, const ScenarioOutcome&) {
        consumed[spec.name] = (*registry)[&kernel].consumed;
        kernel_retries[spec.name] = kernel.stats().retries;
        registry->erase(&kernel);
      },
      [&](Kernel* kernel, const ScenarioSpec&, const FailureReport& failure) {
        EXPECT_EQ(failure.kind, FailureKind::Injected);
        if (kernel != nullptr) {
          registry->erase(kernel);
        }
      });

  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].name, "ok");
  EXPECT_EQ(outcomes[0].status, ScenarioStatus::Completed);
  EXPECT_EQ(outcomes[0].attempts, 1);
  EXPECT_FALSE(outcomes[0].first_failure.has_value());

  EXPECT_EQ(outcomes[1].status, ScenarioStatus::Retried);
  EXPECT_EQ(outcomes[1].attempts, 2);
  ASSERT_TRUE(outcomes[1].first_failure.has_value());
  EXPECT_EQ(outcomes[1].first_failure->kind, FailureKind::Injected);
  EXPECT_EQ(outcomes[1].first_failure->process, "sup_producer");
  EXPECT_FALSE(outcomes[1].final_failure.has_value());

  EXPECT_EQ(outcomes[2].status, ScenarioStatus::Quarantined);
  EXPECT_EQ(outcomes[2].attempts, 2);
  ASSERT_TRUE(outcomes[2].final_failure.has_value());
  EXPECT_EQ(outcomes[2].final_failure->kind, FailureKind::Injected);

  EXPECT_EQ(supervisor.retries(), 2u);      // both failures were retried
  EXPECT_EQ(supervisor.quarantined(), 1u);  // only "model" stayed down
  EXPECT_EQ(std::string(to_string(ScenarioStatus::Retried)), "Retried");

  // Both survivors drained the full transfer; the retried kernel carries
  // the retry mark in its stats, the first-try one does not.
  EXPECT_EQ(consumed["ok"], 30u);
  EXPECT_EQ(consumed["sched"], 30u);
  EXPECT_EQ(kernel_retries["ok"], 0u);
  EXPECT_EQ(kernel_retries["sched"], 1u);

  registry->erase(&warm);
}

// ---------------------------------------------------------------------------
// Satellite: the report sink is thread-safe (worker threads emit through
// it when faults fire inside parallel group tasks).
// ---------------------------------------------------------------------------

TEST(FaultContainment, ReportSinkIsThreadSafe) {
  const std::uint64_t before = Report::warning_count();
  std::uint64_t handled = 0;  // plain int: the emission lock serializes
  Report::Handler previous =
      Report::set_handler([&handled](Severity severity, const std::string&) {
        if (severity == Severity::Warning) {
          handled++;
        }
      });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        for (int i = 0; i < kPerThread; ++i) {
          Report::warning("concurrent warning");
        }
      });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }
  Report::set_handler(std::move(previous));
  EXPECT_EQ(handled, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(Report::warning_count() - before,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace tdsim
