// Payload event queue (TLM-2.0 peq_with_get analog, cited by the paper as
// the precedent for timestamped hand-off in memory-mapped interconnect
// models): payloads are posted with a delay and become retrievable once the
// global date reaches their annotated date.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "kernel/domain_link.h"
#include "kernel/event.h"
#include "kernel/kernel.h"

namespace tdsim {

template <typename Payload>
class PeqWithGet {
 public:
  PeqWithGet(Kernel& kernel, std::string name)
      : kernel_(kernel),
        name_(std::move(name)),
        event_(kernel, name_ + ".get_event") {}

  /// Posts `payload` for delivery at now + delay.
  void notify(Payload payload, Time delay) {
    domain_link_.touch(kernel_.current_domain());
    const Time at = kernel_.now() + delay;
    queue_.emplace(at, std::move(payload));
    event_.notify(delay);
  }

  /// Posts `payload` for immediate (next-delta) delivery.
  void notify(Payload payload) { notify(std::move(payload), Time{}); }

  /// Retrieves the next payload whose date has been reached, or nullopt.
  /// When payloads remain in the future, get_event() is re-armed for the
  /// earliest one.
  std::optional<Payload> get_next() {
    domain_link_.touch(kernel_.current_domain());
    if (queue_.empty()) {
      return std::nullopt;
    }
    auto it = queue_.begin();
    if (it->first <= kernel_.now()) {
      Payload p = std::move(it->second);
      queue_.erase(it);
      return p;
    }
    event_.notify(it->first - kernel_.now());
    return std::nullopt;
  }

  /// Notified when a payload becomes (or is about to become) retrievable.
  Event& get_event() { return event_; }

  /// Declares the minimum annotation delay payloads of this queue ever
  /// carry (see DomainLink::set_min_latency).
  void declare_min_latency(Time latency) {
    domain_link_.set_min_latency(latency);
  }

  std::size_t pending() const { return queue_.size(); }
  const std::string& name() const { return name_; }

 private:
  Kernel& kernel_;
  std::string name_;
  /// Poster and getter may live in different domains (the annotated date
  /// travels with the payload); declare the ordering. Labeled for
  /// Kernel::explain_group().
  DomainLink domain_link_{name_};
  std::multimap<Time, Payload> queue_;
  Event event_;
};

}  // namespace tdsim
