// Hierarchical module base class (sc_module analog): names, parent/child
// hierarchy, and helpers to register processes owned by the module.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/kernel.h"

namespace tdsim {

class Module {
 public:
  /// Top-level module.
  Module(Kernel& kernel, std::string name);
  /// Child module; full_name() becomes "<parent>.<name>".
  Module(Module& parent, std::string name);
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  Kernel& kernel() const { return kernel_; }
  const std::string& name() const { return name_; }
  const std::string& full_name() const { return full_name_; }
  Module* parent() const { return parent_; }
  const std::vector<Module*>& children() const { return children_; }

  /// Sets the synchronization domain that processes registered by this
  /// module (and by descendant modules that don't override it) join when
  /// their spawn options name none. Whole subsystems land in one domain
  /// with a single call on the subtree root. Must precede the affected
  /// thread()/method() registrations.
  void set_default_domain(SyncDomain& domain) { default_domain_ = &domain; }

  /// The domain this module's processes join by default: the nearest
  /// ancestor-or-self override, else the kernel default domain.
  SyncDomain& default_domain() const;

 protected:
  /// Registers a thread process named "<full_name>.<name>".
  Process* thread(const std::string& name, std::function<void()> body,
                  ThreadOptions opts = {});

  /// Registers a method process named "<full_name>.<name>".
  Process* method(const std::string& name, std::function<void()> body,
                  MethodOptions opts = {});

 private:
  Kernel& kernel_;
  Module* parent_ = nullptr;
  std::string name_;
  std::string full_name_;
  std::vector<Module*> children_;
  /// Null = inherit the parent's default (kernel default at the root).
  SyncDomain* default_domain_ = nullptr;
};

}  // namespace tdsim
