#include "tlm/bus.h"

#include <algorithm>

#include "kernel/report.h"

namespace tdsim::tlm {

void Bus::map(std::uint64_t base, std::uint64_t size, TransportIf& target) {
  if (size == 0) {
    Report::error("Bus " + name_ + ": zero-sized region at " +
                  std::to_string(base));
  }
  for (const Region& r : regions_) {
    const bool disjoint = base + size <= r.base || r.base + r.size <= base;
    if (!disjoint) {
      Report::error("Bus " + name_ + ": region [" + std::to_string(base) +
                    ", +" + std::to_string(size) + ") overlaps existing [" +
                    std::to_string(r.base) + ", +" + std::to_string(r.size) +
                    ")");
    }
  }
  regions_.push_back(Region{base, size, &target});
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
}

const Bus::Region* Bus::decode(std::uint64_t address,
                               std::size_t length) const {
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), address,
      [](std::uint64_t addr, const Region& r) { return addr < r.base; });
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  if (address + length > it->base + it->size) {
    return nullptr;  // out of region (or straddling its end)
  }
  return &*it;
}

void Bus::b_transport(Payload& payload, Time& delay) {
  domain_link_.touch_current();
  delay += hop_latency_;
  const Region* region = decode(payload.address, payload.length);
  if (region == nullptr) {
    decode_errors_++;
    payload.response = Response::AddressError;
    return;
  }
  routed_++;
  const std::uint64_t original = payload.address;
  payload.address -= region->base;
  region->target->b_transport(payload, delay);
  payload.address = original;
}

}  // namespace tdsim::tlm
