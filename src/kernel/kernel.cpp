#include "kernel/kernel.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "kernel/fiber_sanitizer.h"
#include "kernel/quantum_controller.h"
#include "kernel/report.h"
#include "kernel/scheduler.h"
#include "kernel/stack_pool.h"

namespace tdsim {

namespace {
thread_local Kernel* g_current_kernel = nullptr;

Kernel& current_kernel_checked() {
  if (g_current_kernel == nullptr) {
    Report::error("tdsim free function called outside of a running kernel");
  }
  return *g_current_kernel;
}

/// Zeroes a worker-local counter delta in place (keeping the domains
/// vector allocated for reuse across phases).
void clear_stat_delta(KernelStats& stats) {
  const std::size_t domain_count = stats.domains.size();
  std::vector<DomainStats> domains = std::move(stats.domains);
  stats = KernelStats{};
  for (DomainStats& d : domains) {
    d = DomainStats{};
  }
  domains.resize(domain_count);
  stats.domains = std::move(domains);
}

/// "No date" sentinel for the lookahead bound arithmetic (compares larger
/// than every real date).
constexpr std::uint64_t kNoDatePs = std::uint64_t(0) - 1;

/// Saturating picosecond addition: a bound beyond the representable range
/// means "unbounded", never a wrapped-around early date.
std::uint64_t sat_add_ps(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? kNoDatePs : sum;
}

/// Synthetic sequence-number base for agenda entries born inside a
/// free-running extension: sorts after every extracted (real-seq) entry of
/// the same date -- exactly where the sequential scheduler would have
/// queued them -- and identifies the entry as locally-born at the merge.
constexpr std::uint64_t kLocalSeqBase = std::uint64_t(1) << 63;

/// All delta-livelock raises funnel through here so they reach the report
/// sink AND carry the DeltaLivelockError type the failure classifier keys
/// on (FailureKind::DeltaLivelock) -- Report::error would throw the
/// untyped SimulationError.
[[noreturn]] void raise_delta_livelock(const std::string& message) {
  Report::notify(Severity::Error, message);
  throw DeltaLivelockError(message);
}
}  // namespace

Kernel::Kernel() : Kernel(KernelConfig{}) {}

Kernel::Kernel(const KernelConfig& config) {
  // The default domain always exists, so single-domain code never has to
  // know domains do.
  domains_.emplace_back(new SyncDomain(*this, "default", 0, Time{}));
  stats_.domains.emplace_back();
  stats_.domains.back().name = "default";
  group_parent_.emplace_back(0);
  published_front_ps_.emplace_back(std::uint64_t{0} - 1);
  main_exec_.kernel = this;
  main_exec_.stats = &stats_;
  // The one resolution point for every execution knob: explicit config >
  // environment > built-in default (see kernel_config.h; CI forces the
  // whole suite parallel through TDSIM_WORKERS this way). After this,
  // config_ is fully resolved -- every field set.
  config_ = config.resolved_over(KernelConfig::from_env());
  if (!config_.workers) config_.workers = 0;
  if (!config_.default_chunk_capacity) config_.default_chunk_capacity = 0;
  if (!config_.adaptive_quantum) config_.adaptive_quantum = false;
  if (!config_.quantum_trace_depth) {
    config_.quantum_trace_depth = kQuantumTraceDepth;
  }
  if (!config_.lookahead_limit) config_.lookahead_limit = lookahead_max_waves_;
  if (!config_.delta_cycle_limit) config_.delta_cycle_limit = 0;
  if (!config_.wall_limit_ms) config_.wall_limit_ms = 0;
  if (!config_.pooled_stacks) config_.pooled_stacks = true;
  if (!config_.stack_guard) config_.stack_guard = true;
  workers_ = *config_.workers;
  default_chunk_capacity_ = *config_.default_chunk_capacity;
  quantum_trace_depth_ = *config_.quantum_trace_depth;
  lookahead_max_waves_ = *config_.lookahead_limit;
  delta_limit_ = *config_.delta_cycle_limit;
  pooled_stacks_ = *config_.pooled_stacks;
  stack_guard_ = *config_.stack_guard;
  // This kernel is one client of the process-wide scheduler; workers_ is
  // its quota there (see kernel/scheduler.h).
  scheduler_client_ = Scheduler::instance().register_client(workers_);
  // Seeds a default adaptive quantum policy on every domain (the default
  // one included); an explicit policy (DomainOptions::policy,
  // set_quantum_policy) overrides.
  env_adaptive_ = *config_.adaptive_quantum;
  if (env_adaptive_) {
    set_quantum_policy(sync_domain(), QuantumPolicy{});
  }
  constructing_ = false;
}

Kernel::~Kernel() {
  kill_all_threads();
  Scheduler::instance().unregister_client(scheduler_client_);
}

Kernel* Kernel::current() {
  return g_current_kernel;
}

thread_local Kernel::ExecContext* Kernel::t_exec_ = nullptr;
thread_local Kernel::GroupTask* Kernel::t_task_ = nullptr;

Kernel::ExecContext* Kernel::thread_exec() {
  return t_exec_;
}

Kernel::GroupTask* Kernel::thread_task() {
  return t_task_;
}

Process* Kernel::current_process() const {
  ExecContext* e = thread_exec();
  return (e != nullptr && e->kernel == this) ? e->current_process : nullptr;
}

Kernel::GroupTask* Kernel::active_task() const {
  GroupTask* task = thread_task();
  return (task != nullptr && task->kernel == this) ? task : nullptr;
}

KernelStats& Kernel::active_stats() {
  // Same resolution as sync_context(): the ExecContext already knows its
  // counter sink, so one thread-local read answers both "who is running"
  // and "where do counters go".
  ExecContext* e = thread_exec();
  return (e != nullptr && e->kernel == this) ? *e->stats : stats_;
}

void Kernel::note_timed_event_stale() {
  if (GroupTask* task = active_task()) {
    task->stale_notes++;
  } else {
    timed_stale_count_++;
  }
}

// --------------------------------------------------------------------------
// Synchronization domains and concurrency groups
// --------------------------------------------------------------------------

SyncDomain& Kernel::create_domain(const DomainOptions& options) {
  SyncDomain& domain =
      create_domain_impl(options.name, options.quantum, options.concurrent);
  if (options.policy.has_value()) {
    // An explicit policy bypasses the adaptive_quantum default-policy
    // hook: attaching the default first would clamp `quantum` into *its*
    // range before the explicit policy ever saw the caller's seed.
    set_quantum_policy(domain, *options.policy);
  } else if (env_adaptive_) {
    set_quantum_policy(domain, QuantumPolicy{});
  }
  if (options.delta_cycle_limit != 0) {
    domain.set_delta_cycle_limit(options.delta_cycle_limit);
  }
  return domain;
}

SyncDomain& Kernel::create_domain(std::string name, Time quantum,
                                  bool concurrent) {
  DomainOptions options;
  options.name = std::move(name);
  options.quantum = quantum;
  options.concurrent = concurrent;
  return create_domain(options);
}

SyncDomain& Kernel::create_domain_impl(std::string name, Time quantum,
                                       bool concurrent) {
  if (active_task() != nullptr) {
    Report::error("Kernel::create_domain: cannot create domain '" + name +
                  "' from inside a parallel evaluation round");
  }
  if (find_domain(name) != nullptr) {
    Report::error("Kernel::create_domain: domain '" + name +
                  "' already exists");
  }
  note_external_elaboration();
  const std::size_t id = domains_.size();
  domains_.emplace_back(new SyncDomain(*this, name, id, quantum));
  domains_.back()->concurrent_ = concurrent;
  stats_.domains.emplace_back();
  stats_.domains.back().name = std::move(name);
  group_parent_.emplace_back(id);
  published_front_ps_.emplace_back(std::uint64_t{0} - 1);
  if (!concurrent) {
    std::lock_guard<std::mutex> lock(group_mutex_);
    unite_groups_locked(id, 0);
  }
  return *domains_.back();
}

SyncDomain& Kernel::create_domain(std::string name, Time quantum,
                                  bool concurrent,
                                  const QuantumPolicy& policy) {
  DomainOptions options;
  options.name = std::move(name);
  options.quantum = quantum;
  options.concurrent = concurrent;
  options.policy = policy;
  return create_domain(options);
}

void Kernel::set_quantum_policy(SyncDomain& domain,
                                const QuantumPolicy& policy) {
  if (&domain.kernel() != this) {
    Report::error("Kernel::set_quantum_policy: domain '" + domain.name() +
                  "' belongs to another kernel");
  }
  if (active_task() != nullptr) {
    Report::error("Kernel::set_quantum_policy: cannot attach a policy to "
                  "domain '" + domain.name() +
                  "' from inside a parallel evaluation round");
  }
  note_external_elaboration();
  if (!quantum_controller_) {
    quantum_controller_ = std::make_unique<QuantumController>(*this);
    if (quantum_trace_depth_ != 0) {
      quantum_controller_->set_trace_depth(quantum_trace_depth_);
    }
  }
  quantum_controller_->set_policy(domain, policy);
}

void Kernel::set_quantum_trace_depth(std::size_t depth) {
  if (depth == 0) {
    Report::error("Kernel::set_quantum_trace_depth: depth must be >= 1");
  }
  if (active_task() != nullptr) {
    Report::error("Kernel::set_quantum_trace_depth: cannot resize the "
                  "decision trace from inside a parallel evaluation round");
  }
  quantum_trace_depth_ = depth;
  config_.quantum_trace_depth = depth;
  if (quantum_controller_) {
    quantum_controller_->set_trace_depth(depth);
  }
}

std::size_t Kernel::quantum_trace_depth() const {
  return quantum_trace_depth_ != 0 ? quantum_trace_depth_
                                   : kQuantumTraceDepth;
}

// --------------------------------------------------------------------------
// Chunked channels (see core/chunk_protocol.h and ChunkFlushListener)
// --------------------------------------------------------------------------

void Kernel::register_chunk_flush(ChunkFlushListener* listener) {
  std::lock_guard<std::mutex> lock(chunk_flush_mutex_);
  for (ChunkFlushListener* existing : chunk_flush_listeners_) {
    if (existing == listener) {
      return;
    }
  }
  chunk_flush_listeners_.push_back(listener);
  chunk_flush_count_.store(chunk_flush_listeners_.size(),
                           std::memory_order_relaxed);
}

void Kernel::unregister_chunk_flush(ChunkFlushListener* listener) {
  std::lock_guard<std::mutex> lock(chunk_flush_mutex_);
  chunk_flush_listeners_.erase(
      std::remove(chunk_flush_listeners_.begin(), chunk_flush_listeners_.end(),
                  listener),
      chunk_flush_listeners_.end());
  chunk_flush_count_.store(chunk_flush_listeners_.size(),
                           std::memory_order_relaxed);
}

bool Kernel::flush_chunked_channels() {
  // Main-loop horizon flush: the workers are quiescent, but a listener's
  // registration may have raced in from the last round -- take the lock
  // (uncontended here) rather than reason about it.
  std::lock_guard<std::mutex> lock(chunk_flush_mutex_);
  bool any = false;
  for (ChunkFlushListener* listener : chunk_flush_listeners_) {
    any = listener->flush_chunks() || any;
  }
  return any;
}

bool Kernel::flush_group_chunks(GroupTask& task) {
  // Local-wave flush inside a free-running extension: only this group's
  // channels (both sides of a channel always share one group, so the
  // flush is serialized with every user of the channel). The lock guards
  // the *list* against concurrent register/unregister from other groups'
  // processes; a foreign listener added mid-walk belongs to a foreign
  // group and is skipped by the group check either way.
  std::lock_guard<std::mutex> lock(chunk_flush_mutex_);
  bool any = false;
  for (ChunkFlushListener* listener : chunk_flush_listeners_) {
    SyncDomain* home = listener->chunk_home_domain();
    if (home == nullptr || find_group(home->id()) != task.group) {
      continue;
    }
    any = listener->flush_chunks() || any;
  }
  return any;
}

namespace {

/// Domain ids are only meaningful within their own kernel; resolving a
/// foreign kernel's domain by id here would silently act on the wrong
/// domain (set_quantum_policy errors loudly -- so do its siblings).
void require_same_kernel(const Kernel* kernel, const SyncDomain& domain,
                         const char* what) {
  if (&domain.kernel() != kernel) {
    Report::error(std::string("Kernel::") + what + ": domain '" +
                  domain.name() + "' belongs to another kernel");
  }
}

}  // namespace

void Kernel::clear_quantum_policy(SyncDomain& domain) {
  require_same_kernel(this, domain, "clear_quantum_policy");
  note_external_elaboration();
  if (quantum_controller_) {
    quantum_controller_->clear_policy(domain);
  }
}

const QuantumPolicy* Kernel::quantum_policy(const SyncDomain& domain) const {
  require_same_kernel(this, domain, "quantum_policy");
  return quantum_controller_ ? quantum_controller_->policy(domain) : nullptr;
}

const QuantumDecision* Kernel::last_quantum_decision(
    const SyncDomain& domain) const {
  require_same_kernel(this, domain, "last_quantum_decision");
  return quantum_controller_ ? quantum_controller_->last_decision(domain)
                             : nullptr;
}

std::vector<QuantumDecision> Kernel::decision_trace(
    const SyncDomain& domain) const {
  require_same_kernel(this, domain, "decision_trace");
  return quantum_controller_ ? quantum_controller_->decision_trace(domain)
                             : std::vector<QuantumDecision>{};
}

SyncDomain* Kernel::find_domain(const std::string& name) const {
  for (const auto& domain : domains_) {
    if (domain->name() == name) {
      return domain.get();
    }
  }
  return nullptr;
}

std::size_t Kernel::find_group(std::size_t domain_id) const {
  // Lock-free root chase: parents are atomics and only ever move toward
  // smaller roots, so a read racing a unite returns one of the two (still
  // valid) roots.
  std::size_t i = domain_id;
  for (;;) {
    const std::size_t parent = group_parent_[i].load(std::memory_order_relaxed);
    if (parent == i) {
      return i;
    }
    i = parent;
  }
}

void Kernel::unite_groups_locked(std::size_t a, std::size_t b) {
  const std::size_t ra = find_group(a);
  const std::size_t rb = find_group(b);
  if (ra == rb) {
    return;
  }
  // The smaller id always wins the root, so the final grouping (and with
  // it the parallel schedule) is independent of link declaration order.
  const std::size_t root = std::min(ra, rb);
  const std::size_t child = std::max(ra, rb);
  group_parent_[child].store(root, std::memory_order_relaxed);
  group_version_++;
}

void Kernel::rebuild_groups_locked() {
  for (std::size_t i = 0; i < group_parent_.size(); ++i) {
    group_parent_[i].store(i, std::memory_order_relaxed);
  }
  for (const auto& domain : domains_) {
    if (!domain->concurrent_) {
      unite_groups_locked(domain->id(), 0);
    }
  }
  for (const DomainLinkRecord& link : domain_links_) {
    if (link.decoupled) {
      continue;  // weighted lookahead edges never merge groups
    }
    unite_groups_locked(link.a, link.b);
  }
  group_version_++;
}

void Kernel::link_domains(SyncDomain& a, SyncDomain& b, const std::string& via,
                          Time min_latency) {
  if (&a.kernel() != this || &b.kernel() != this) {
    Report::error("Kernel::link_domains: domains '" + a.name() + "' and '" +
                  b.name() + "' must both belong to this kernel");
  }
  if (&a == &b || find_group(a.id()) == find_group(b.id())) {
    return;  // already ordered; keep the channel fast path lock-free
  }
  note_external_elaboration();
  std::lock_guard<std::mutex> lock(group_mutex_);
  domain_links_.push_back({a.id(), b.id(),
                           via.empty() ? "Kernel::link_domains" : via,
                           min_latency, false});
  unite_groups_locked(a.id(), b.id());
}

void Kernel::link_domains(SyncDomain& a, SyncDomain& b, Time min_latency,
                          const std::string& via) {
  if (min_latency.is_zero()) {
    // Zero lookahead means barrier: degenerate to the merging overload.
    link_domains(a, b, via);
    return;
  }
  if (&a.kernel() != this || &b.kernel() != this) {
    Report::error("Kernel::link_domains: domains '" + a.name() + "' and '" +
                  b.name() + "' must both belong to this kernel");
  }
  if (&a == &b) {
    return;
  }
  note_external_elaboration();
  std::lock_guard<std::mutex> lock(group_mutex_);
  domain_links_.push_back(
      {a.id(), b.id(),
       via.empty() ? "Kernel::link_domains (decoupled)" : via, min_latency,
       true});
  // No unite: the groups stay separate, and the lookahead scheduler reads
  // this record at the next horizon (which is what makes a mid-run
  // redeclaration re-tighten the bound).
}

std::vector<std::string> Kernel::explain_group(const SyncDomain& domain) const {
  // Replay the grouping from scratch on a scratch union-find, keeping only
  // the load-bearing merges (a link between already-united groups explains
  // nothing); then filter to the queried domain's final group.
  std::vector<std::size_t> parent(domains_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](std::size_t i) {
    while (parent[i] != i) {
      i = parent[i];
    }
    return i;
  };
  const auto unite = [&](std::size_t a, std::size_t b) {
    const std::size_t ra = find(a);
    const std::size_t rb = find(b);
    if (ra == rb) {
      return false;
    }
    parent[std::max(ra, rb)] = std::min(ra, rb);
    return true;
  };
  struct Merge {
    std::size_t a;
    std::string text;
  };
  std::vector<Merge> merges;
  std::lock_guard<std::mutex> lock(group_mutex_);
  for (const auto& d : domains_) {
    if (!d->concurrent_ && unite(d->id(), 0)) {
      merges.push_back({d->id(), "'" + d->name() +
                                     "' never opted into concurrency "
                                     "(SyncDomain::set_concurrent), so it is "
                                     "serialized with the default group"});
    }
  }
  for (const DomainLinkRecord& link : domain_links_) {
    if (link.decoupled) {
      continue;
    }
    if (unite(link.a, link.b)) {
      merges.push_back({link.a, "'" + domains_[link.a]->name() + "' <-> '" +
                                    domains_[link.b]->name() + "' via " +
                                    link.via +
                                    (link.min_latency.is_zero()
                                         ? std::string()
                                         : " (min latency " +
                                               link.min_latency.to_string() +
                                               ")")});
    }
  }
  const std::size_t root = find(domain.id());
  std::vector<std::string> out;
  for (const Merge& merge : merges) {
    if (find(merge.a) == root) {
      out.push_back(merge.text);
    }
  }
  // Decoupled (weighted, non-merging) edges touching this group: the
  // lookahead topology, printed with their latencies so "why is this
  // group's bound what it is" is answerable from the CLI.
  for (const DomainLinkRecord& link : domain_links_) {
    if (!link.decoupled) {
      continue;
    }
    if (find(link.a) == root || find(link.b) == root) {
      out.push_back("'" + domains_[link.a]->name() + "' <-> '" +
                    domains_[link.b]->name() + "' via " + link.via +
                    ": decoupled, min latency " +
                    link.min_latency.to_string() +
                    " (lookahead edge; groups stay separate)");
    }
  }
  return out;
}

std::size_t Kernel::domain_group(const SyncDomain& domain) const {
  return find_group(domain.id());
}

void Kernel::set_domain_concurrent(SyncDomain& domain, bool concurrent) {
  if (initialized_) {
    Report::error("SyncDomain::set_concurrent: domain '" + domain.name() +
                  "' can only change concurrency during elaboration (the "
                  "first run() has already initialized processes)");
  }
  note_external_elaboration();
  domain.concurrent_ = concurrent;
  std::lock_guard<std::mutex> lock(group_mutex_);
  rebuild_groups_locked();
}

void Kernel::set_workers(std::size_t n) {
  if (current_process() != nullptr || active_task() != nullptr) {
    Report::error(
        "Kernel::set_workers is only callable from outside a running "
        "simulation");
  }
  if (initialized_) {
    // The worker count is this kernel's quota on the process-wide
    // Scheduler; renegotiating it after the first run() would resize a
    // shared resource under other live kernels mid-fleet. Elaboration-only
    // since PR 8 -- prefer KernelConfig{.workers = n} at construction.
    Report::error(
        "Kernel::set_workers is elaboration-only: the first run() has "
        "already initialized processes; construct the kernel with "
        "KernelConfig{.workers = n} instead");
  }
  workers_ = n;
  config_.workers = n;
  Scheduler::instance().set_client_quota(scheduler_client_, n);
}

void Kernel::note_external_elaboration() {
  // Construction seeding, build() steps, fork() replay, and anything a
  // running simulation process does are all replayable; everything else
  // makes the construction log incomplete.
  if (constructing_ || in_build_ || replaying_) {
    return;
  }
  if (current_process() != nullptr || active_task() != nullptr) {
    return;
  }
  external_elaboration_ = true;
}

SyncDomain* Kernel::lagging_domain() const {
  SyncDomain* lagging = nullptr;
  Time lagging_front;
  for (const auto& domain : domains_) {
    const std::optional<Time> front = domain->execution_front();
    if (!front.has_value()) {
      continue;
    }
    if (lagging == nullptr || *front < lagging_front) {
      lagging = domain.get();
      lagging_front = *front;
    }
  }
  return lagging;
}

bool Kernel::foreign_group_read(const SyncDomain& domain) const {
  GroupTask* task = active_task();
  return task != nullptr && find_group(domain.id()) != task->group;
}

std::optional<Time> Kernel::published_front(std::size_t domain_id) const {
  const std::uint64_t ps =
      published_front_ps_[domain_id].value.load(std::memory_order_relaxed);
  if (ps == std::uint64_t{0} - 1) {
    return std::nullopt;
  }
  return Time::from_ps(ps);
}

void Kernel::publish_domain_fronts() {
  // Called with no parallel round in flight, so the exact computation is
  // safe; the atomics are for the mid-round readers on worker threads.
  for (const auto& domain : domains_) {
    const std::optional<Time> front = domain->execution_front();
    published_front_ps_[domain->id()].value.store(
        front.has_value() ? front->ps() : std::uint64_t{0} - 1,
        std::memory_order_relaxed);
  }
}

void Kernel::assign_domain(Process& process, SyncDomain& domain) {
  if (&process.kernel() != this || &domain.kernel() != this) {
    Report::error("Kernel::assign_domain: process '" + process.name() +
                  "' and domain '" + domain.name() +
                  "' must both belong to this kernel");
  }
  if (initialized_) {
    Report::error("Kernel::assign_domain: cannot move process '" +
                  process.name() + "' to domain '" + domain.name() +
                  "' after elaboration; domain membership is fixed once "
                  "the first run() has initialized processes");
  }
  if (process.domain_ == &domain) {
    return;
  }
  note_external_elaboration();
  auto& members = process.domain_->members_;
  members.erase(std::remove(members.begin(), members.end(), &process),
                members.end());
  process.domain_ = &domain;
  domain.members_.push_back(&process);
}

// --------------------------------------------------------------------------
// Statistics views
// --------------------------------------------------------------------------

const KernelStats& Kernel::stats() const {
  GroupTask* task = active_task();
  if (task == nullptr) {
    // The aggregate sync fields are a derived cache over the per-domain
    // entries (the hot path books only into its own domain); refresh them
    // when booking left them stale. Staleness only exists while the
    // kernel is running (syncs happen inside run(), and run() folds on
    // exit), so the fold never races: a quiescent kernel's stats() is a
    // pure read, safe from concurrent threads.
    if (stats_.sync_aggregates_stale != 0) {
      const_cast<Kernel*>(this)->stats_.fold_domain_sync_aggregates();
    }
    return stats_;
  }
  // Mid-round view: the last-horizon aggregate (only mutated between
  // rounds, so copying it here is race-free) plus this group's own
  // in-flight counters.
  if (!task->stats_view) {
    task->stats_view = std::make_unique<KernelStats>();
  }
  *task->stats_view = stats_;
  accumulate(*task->stats_view, task->stat_delta);
  task->stats_view->fold_domain_sync_aggregates();
  return *task->stats_view;
}

// --------------------------------------------------------------------------
// Elaboration
// --------------------------------------------------------------------------

namespace {

/// Validates an explicit spawn-time domain and falls back to the default.
SyncDomain& resolve_spawn_domain(Kernel& kernel, SyncDomain* requested,
                                 const std::string& process_name) {
  if (requested == nullptr) {
    return kernel.sync_domain();
  }
  if (&requested->kernel() != &kernel) {
    Report::error("process '" + process_name + "' spawned into domain '" +
                  requested->name() + "' of a different kernel");
  }
  return *requested;
}

}  // namespace

void Kernel::acquire_fiber_stack(Process& p) {
  KernelStats& stats = active_stats();
  stats.stack_acquires++;
  if (!pooled_stacks_) {
    // Legacy mode (TDSIM_STACK_POOL=0): the pre-pool value-initializing
    // heap allocation -- zeroes the whole stack at spawn. Kept as the
    // comparison baseline for bench_scale's alloc-mode rows.
    p.heap_stack_ = std::make_unique<char[]>(p.stack_size_);
    return;
  }
  StackPool::Acquired acquired =
      StackPool::instance().acquire(p.stack_size_, stack_guard_);
  p.stack_block_ = acquired.block;
  if (acquired.recycled) {
    stats.stack_recycles++;  // timing-dependent in parallel mode, see stats.h
  }
}

void Kernel::note_fiber_stack_released() {
  active_stats().stack_releases++;
}

Process* Kernel::spawn_thread(std::string name, std::function<void()> body,
                              ThreadOptions opts) {
  note_external_elaboration();
  GroupTask* task = active_task();
  std::unique_lock<std::mutex> lock(spawn_mutex_, std::defer_lock);
  if (task != nullptr) {
    lock.lock();  // concurrent groups may spawn in the same round
  }
  auto process = std::unique_ptr<Process>(
      new Process(*this, std::move(name), ProcessKind::Thread, std::move(body),
                  opts.stack_size, next_process_id_++));
  process->dont_initialize_ = opts.dont_initialize;
  process->domain_ = &resolve_spawn_domain(*this, opts.domain,
                                           process->name());
  if (task != nullptr &&
      find_group(process->domain_->id()) != task->group) {
    Report::error("process '" + process->name() + "' spawned into domain '" +
                  process->domain_->name() + "' of another concurrency "
                  "group from inside a parallel round; spawn it from its "
                  "own group or link the domains");
  }
  process->domain_->members_.push_back(process.get());
  Process* raw = process.get();
  processes_.push_back(std::move(process));
  active_stats().processes_spawned++;
  if (initialized_ && !raw->dont_initialize_) {
    make_runnable(raw);  // dynamically spawned: runs in the current phase
    if (task == nullptr && current_process() == nullptr) {
      graft_init_pending_ = true;  // grafted between runs, see kernel.h
    }
  }
  return raw;
}

Process* Kernel::spawn_method(std::string name, std::function<void()> body,
                              MethodOptions opts) {
  note_external_elaboration();
  GroupTask* task = active_task();
  std::unique_lock<std::mutex> lock(spawn_mutex_, std::defer_lock);
  if (task != nullptr) {
    lock.lock();
  }
  auto process = std::unique_ptr<Process>(
      new Process(*this, std::move(name), ProcessKind::Method, std::move(body),
                  0, next_process_id_++));
  process->dont_initialize_ = opts.dont_initialize;
  process->domain_ = &resolve_spawn_domain(*this, opts.domain,
                                           process->name());
  if (task != nullptr &&
      find_group(process->domain_->id()) != task->group) {
    Report::error("process '" + process->name() + "' spawned into domain '" +
                  process->domain_->name() + "' of another concurrency "
                  "group from inside a parallel round; spawn it from its "
                  "own group or link the domains");
  }
  process->domain_->members_.push_back(process.get());
  Process* raw = process.get();
  processes_.push_back(std::move(process));
  active_stats().processes_spawned++;
  for (Event* e : opts.sensitivity) {
    add_static_sensitivity(raw, *e);
  }
  if (initialized_ && !raw->dont_initialize_) {
    make_runnable(raw);
    if (task == nullptr && current_process() == nullptr) {
      graft_init_pending_ = true;  // grafted between runs, see kernel.h
    }
  }
  return raw;
}

void Kernel::add_static_sensitivity(Process* method, Event& event) {
  if (method->kind() != ProcessKind::Method) {
    Report::error("static sensitivity is only supported for method processes");
  }
  note_external_elaboration();
  event.static_waiters_.push_back(method);
  method->static_sensitivity_.push_back(&event);
}

// --------------------------------------------------------------------------
// Scheduling core
// --------------------------------------------------------------------------

void Kernel::make_runnable(Process* p) {
  if (p->in_runnable_ || p->state_ == ProcessState::Terminated) {
    return;
  }
  GroupTask* task = active_task();
  if (task != nullptr && find_group(p->domain_->id()) != task->group) {
    // A wake reaching into another concurrency group (an event shared
    // across groups no channel declared): defer it to the horizon, where
    // it is applied in deterministic group order -- still within the
    // current evaluation phase, matching the sequential schedule. The
    // grouping has usually been merged by the channel layer by the time
    // this happens again.
    task->cross_wakes.push_back(p);
    return;
  }
  p->in_runnable_ = true;
  p->domain_->runnable_count_++;
  if (p->state_ == ProcessState::Waiting) {
    p->state_ = ProcessState::Ready;
  }
  if (task != nullptr) {
    task->queue.push_back(p);
  } else {
    runnable_.push_back(p);
  }
}

void Kernel::bump_wake_generation(Process& p) {
  p.wake_generation_++;
  if (p.has_live_resume_entry_) {
    // The entry scheduled under the previous generation is now stale.
    p.has_live_resume_entry_ = false;
    note_timed_event_stale();
  }
}

void Kernel::trigger_event(Event& e) {
  active_stats().event_triggers++;
  for (Process* m : e.static_waiters_) {
    if (!m->trigger_override_) {
      make_runnable(m);
    }
  }
  // Move the dynamic list out first: woken processes may immediately wait on
  // this very event again (from a method re-arming next_trigger).
  std::vector<Process*> waiters = std::move(e.dynamic_waiters_);
  e.dynamic_waiters_.clear();
  for (Process* p : waiters) {
    p->waiting_event_ = nullptr;
    p->trigger_override_ = false;
    p->woke_by_event_ = true;
    bump_wake_generation(*p);  // invalidate a pending timeout, if any
    make_runnable(p);
  }
}

void Kernel::queue_delta_notification(Event& e) {
  if (GroupTask* task = active_task()) {
    task->delta_notifications.emplace_back(&e, e.generation_);
  } else {
    delta_notifications_.emplace_back(&e, e.generation_);
  }
}

void Kernel::timed_push(const TimedEntry& entry) {
  timed_queue_.push_back(entry);
  std::push_heap(timed_queue_.begin(), timed_queue_.end(),
                 std::greater<TimedEntry>{});
}

void Kernel::timed_pop() {
  std::pop_heap(timed_queue_.begin(), timed_queue_.end(),
                std::greater<TimedEntry>{});
  timed_queue_.pop_back();
}

void Kernel::timed_reheap() {
  std::make_heap(timed_queue_.begin(), timed_queue_.end(),
                 std::greater<TimedEntry>{});
}

void Kernel::schedule_event_fire(Event& e, Time at) {
  e.queued_timed_entries_++;
  if (GroupTask* task = active_task()) {
    task->timed.push_back({at, TimedEntry::Kind::EventFire, &e,
                           e.generation_, nullptr, 0});
    return;
  }
  TimedEntry entry;
  entry.when = at;
  entry.seq = next_timed_seq_++;
  entry.kind = TimedEntry::Kind::EventFire;
  entry.event = &e;
  entry.event_generation = e.generation_;
  timed_push(entry);
  maybe_compact_timed_queue();
}

void Kernel::purge_timed_event_entries(Event& e) {
  if (e.queued_timed_entries_ == 0) {
    return;
  }
  if (GroupTask* task = active_task()) {
    // Entries buffered this round live in the group's own TimedReq list
    // (the event is group-private, so they cannot be in another group's).
    auto& reqs = task->timed;
    for (auto it = reqs.begin(); it != reqs.end();) {
      if (it->kind == TimedEntry::Kind::EventFire && it->event == &e) {
        const bool stale = e.pending_ != Event::Pending::Timed ||
                           e.generation_ != it->event_generation;
        if (stale && task->stale_notes > 0) {
          task->stale_notes--;
        }
        e.queued_timed_entries_--;
        it = reqs.erase(it);
      } else {
        ++it;
      }
    }
    if (task->free_running) {
      // Extracted (or absorbed) entries living in the extension's private
      // agenda also count as queued; drop the unexecuted ones now so the
      // wave loop never dereferences the destroyed event.
      auto& agenda = task->agenda;
      for (std::size_t i = task->agenda_pos; i < agenda.size();) {
        if (agenda[i].kind == TimedEntry::Kind::EventFire &&
            agenda[i].event == &e) {
          const bool stale = e.pending_ != Event::Pending::Timed ||
                             e.generation_ != agenda[i].event_generation;
          if (stale && task->stale_notes > 0) {
            task->stale_notes--;
          }
          e.queued_timed_entries_--;
          agenda.erase(agenda.begin() +
                       static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    if (e.queued_timed_entries_ == 0) {
      return;
    }
  }
  // Entries already merged into the global queue. Workers purging
  // concurrently serialize here; the main thread never touches the queue
  // while a round is in flight. (An entry made stale earlier this round
  // has its stale note still buffered, so the count can drift by the rare
  // destroy-during-round case -- compaction stays safe either way.) The
  // filter runs in place on the heap storage: no allocation.
  std::lock_guard<std::mutex> lock(timed_purge_mutex_);
  const auto keep_end = std::remove_if(
      timed_queue_.begin(), timed_queue_.end(), [&](const TimedEntry& entry) {
        if (entry.kind != TimedEntry::Kind::EventFire || entry.event != &e) {
          return false;
        }
        // Superseded entries were counted stale; the live one was not.
        if (is_stale(entry) && timed_stale_count_ > 0) {
          timed_stale_count_--;
        }
        return true;
      });
  timed_queue_.erase(keep_end, timed_queue_.end());
  timed_reheap();
  e.queued_timed_entries_ = 0;
}

void Kernel::schedule_process_resume(Process& p, Time at) {
  p.has_live_resume_entry_ = true;
  if (GroupTask* task = active_task()) {
    task->timed.push_back({at, TimedEntry::Kind::ProcessResume, nullptr, 0,
                           &p, p.wake_generation_});
    return;
  }
  TimedEntry entry;
  entry.when = at;
  entry.seq = next_timed_seq_++;
  entry.kind = TimedEntry::Kind::ProcessResume;
  entry.process = &p;
  entry.process_generation = p.wake_generation_;
  timed_push(entry);
  maybe_compact_timed_queue();
}

void Kernel::maybe_compact_timed_queue() {
  // Compact when stale entries outnumber live ones; the size floor keeps
  // small queues on the cheap lazy-deletion path. The stale entries are
  // filtered out of the heap storage in place and the heap rebuilt --
  // allocation-free in steady state (the vector keeps its capacity), where
  // the adapter-based rebuild used to allocate a fresh container every
  // compaction under cancel/supersede-heavy workloads.
  constexpr std::size_t kMinSizeForCompaction = 64;
  if (timed_queue_.size() < kMinSizeForCompaction ||
      timed_stale_count_ * 2 <= timed_queue_.size()) {
    return;
  }
  const auto live_end = std::remove_if(
      timed_queue_.begin(), timed_queue_.end(), [&](const TimedEntry& entry) {
        if (!is_stale(entry)) {
          return false;
        }
        if (entry.kind == TimedEntry::Kind::EventFire) {
          entry.event->queued_timed_entries_--;
        }
        return true;
      });
  timed_queue_.erase(live_end, timed_queue_.end());
  timed_reheap();
  timed_stale_count_ = 0;
  stats_.timed_queue_compactions++;
}

bool Kernel::is_stale(const TimedEntry& entry) const {
  switch (entry.kind) {
    case TimedEntry::Kind::EventFire:
      return entry.event->pending_ != Event::Pending::Timed ||
             entry.event->generation_ != entry.event_generation;
    case TimedEntry::Kind::ProcessResume:
      return entry.process->wake_generation_ != entry.process_generation ||
             entry.process->state_ == ProcessState::Terminated;
  }
  return true;
}

void Kernel::initialize_processes() {
  initialized_ = true;
  reserve_scheduler_arena();
  for (const auto& p : processes_) {
    if (!p->dont_initialize_) {
      make_runnable(p.get());
    }
  }
}

void Kernel::reserve_scheduler_arena() {
  // Pre-size the scheduler's event containers to the elaborated platform:
  // in steady state every process has at most one live timed entry and
  // one delta record, so capacity == process count means the hot loops
  // never reallocate mid-run. Runs once, sequentially, before the first
  // wave -- the booked byte count is deterministic.
  const std::size_t n = processes_.size();
  if (n == 0) {
    return;
  }
  const auto reserved_bytes = [this] {
    return static_cast<std::uint64_t>(timed_queue_.capacity()) *
               sizeof(TimedEntry) +
           static_cast<std::uint64_t>(delta_notifications_.capacity()) *
               sizeof(delta_notifications_[0]) +
           static_cast<std::uint64_t>(delta_resume_.capacity()) *
               sizeof(Process*);
  };
  const std::uint64_t before = reserved_bytes();
  timed_queue_.reserve(n);
  delta_notifications_.reserve(n);
  delta_resume_.reserve(n);
  const std::uint64_t after = reserved_bytes();
  stats_.arena_reserved_bytes += after - before;
}

void Kernel::run_update_phase() {
  // Updates may request further updates (rare); process until drained.
  while (!update_requests_.empty()) {
    std::vector<UpdateListener*> batch = std::move(update_requests_);
    update_requests_.clear();
    for (UpdateListener* listener : batch) {
      listener->update();
    }
  }
}

void Kernel::fire_delta_notifications() {
  std::vector<std::pair<Event*, std::uint64_t>> batch =
      std::move(delta_notifications_);
  delta_notifications_.clear();
  for (auto& [event, generation] : batch) {
    if (event->pending_ == Event::Pending::Delta &&
        event->generation_ == generation) {
      event->pending_ = Event::Pending::None;
      trigger_event(*event);
    }
  }
}

// --------------------------------------------------------------------------
// Parallel evaluation (see README "Parallel execution")
//
// The evaluation phase partitions the runnable set by concurrency group
// (preserving kernel schedule order within each group) and dispatches every
// runnable group onto a worker. A group's processes run strictly in order
// under one worker, so each group's execution is exactly its slice of the
// sequential schedule; groups share no mutable state (that is what the
// grouping means), so the interleaving between workers cannot be observed.
// All side effects on kernel-global structures -- timed notifications,
// delta notifications, update requests, counters -- are buffered per group
// and merged in group order at the synchronization horizon, which makes
// dates, delta counts and per-cause sync counts bit-identical to the
// sequential scheduler by construction.
// --------------------------------------------------------------------------

Kernel::GroupTask& Kernel::task_for_group(std::size_t group_root) {
  if (GroupTask* existing = task_by_root_[group_root]) {
    return *existing;
  }
  if (tasks_in_use_ == tasks_.size()) {
    tasks_.emplace_back(new GroupTask);
  }
  GroupTask& task = *tasks_[tasks_in_use_++];
  task.kernel = this;
  task.group = group_root;
  task.exec.kernel = this;
  task.exec.stats = &task.stat_delta;
  task.stat_delta.domains.resize(stats_.domains.size());
  task_by_root_[group_root] = &task;
  phase_tasks_.push_back(&task);
  return task;
}

void Kernel::execute_group_task(GroupTask& task) {
  // Workers arrive with clean thread-locals; the main thread (running one
  // group inline) temporarily trades its scheduler context for the
  // group's.
  Kernel* previous_kernel = std::exchange(g_current_kernel, this);
  ExecContext* previous_exec = std::exchange(t_exec_, &task.exec);
  GroupTask* previous_task = std::exchange(t_task_, &task);
  task.exec.tsan_fiber = fiber::tsan_current_fiber();
  try {
    while (!task.queue.empty()) {
      Process* p = task.queue.front();
      task.queue.pop_front();
      p->in_runnable_ = false;
      p->domain_->runnable_count_--;
      if (p->state_ == ProcessState::Terminated) {
        continue;
      }
      dispatch(p);
      if (task.stop) {
        break;  // sequential stop semantics, scoped to this group
      }
    }
  } catch (...) {
    task.exception = std::current_exception();
  }
  t_task_ = previous_task;
  t_exec_ = previous_exec;
  g_current_kernel = previous_kernel;
}

void Kernel::apply_cross_wake(Process* p) {
  // Horizon-time version of make_runnable: called between rounds, so the
  // target group's worker is quiescent and its queue is safe to extend.
  if (p->in_runnable_ || p->state_ == ProcessState::Terminated) {
    return;
  }
  p->in_runnable_ = true;
  p->domain_->runnable_count_++;
  if (p->state_ == ProcessState::Waiting) {
    p->state_ = ProcessState::Ready;
  }
  task_for_group(find_group(p->domain_->id())).queue.push_back(p);
}

void Kernel::flush_group_task(GroupTask& task) {
  // Leftover runnables (stop or error mid-round) return to the kernel
  // queue so a later run() resumes them, like the sequential scheduler.
  for (Process* p : task.queue) {
    runnable_.push_back(p);
  }
  task.queue.clear();
  for (Process* p : task.cross_wakes) {
    if (!p->in_runnable_ && p->state_ != ProcessState::Terminated) {
      p->in_runnable_ = true;
      p->domain_->runnable_count_++;
      if (p->state_ == ProcessState::Waiting) {
        p->state_ = ProcessState::Ready;
      }
      runnable_.push_back(p);
    }
  }
  task.cross_wakes.clear();
  for (Process* p : task.delta_resume) {
    delta_resume_.push_back(p);
  }
  task.delta_resume.clear();
  for (const auto& notification : task.delta_notifications) {
    delta_notifications_.push_back(notification);
  }
  task.delta_notifications.clear();
  for (UpdateListener* listener : task.update_requests) {
    update_requests_.push_back(listener);
  }
  task.update_requests.clear();
  for (const GroupTask::TimedReq& req : task.timed) {
    TimedEntry entry;
    entry.when = req.when;
    entry.seq = next_timed_seq_++;
    entry.kind = req.kind;
    entry.event = req.event;
    entry.event_generation = req.event_generation;
    entry.process = req.process;
    entry.process_generation = req.process_generation;
    timed_push(entry);
  }
  task.timed.clear();
  timed_stale_count_ += task.stale_notes;
  task.stale_notes = 0;
  accumulate(stats_, task.stat_delta);
  clear_stat_delta(task.stat_delta);
  task.stop = false;
}

void Kernel::run_parallel_evaluation_phase() {
  phase_tasks_.clear();
  tasks_in_use_ = 0;
  task_by_root_.assign(domains_.size(), nullptr);
  while (!runnable_.empty()) {
    Process* p = runnable_.front();
    runnable_.pop_front();
    task_for_group(find_group(p->domain_->id())).queue.push_back(p);
  }
  const auto by_group = [](const GroupTask* a, const GroupTask* b) {
    return a->group < b->group;
  };
  std::exception_ptr first_exception;
  std::vector<GroupTask*> active;
  for (;;) {
    std::sort(phase_tasks_.begin(), phase_tasks_.end(), by_group);
    active.clear();
    for (GroupTask* task : phase_tasks_) {
      if (!task->queue.empty()) {
        active.push_back(task);
      }
    }
    if (active.empty()) {
      break;
    }
    stats_.parallel_rounds++;
    const std::uint64_t groups_before = group_version_;
    if (active.size() == 1) {
      execute_group_task(*active.front());
    } else {
      stats_.horizon_waits += active.size() - 1;
      Scheduler& scheduler = Scheduler::instance();
      for (std::size_t i = 1; i < active.size(); ++i) {
        GroupTask* task = active[i];
        scheduler.submit(
            scheduler_client_,
            [](void* t) {
              GroupTask& group_task = *static_cast<GroupTask*>(t);
              group_task.kernel->execute_group_task(group_task);
            },
            task);
      }
      execute_group_task(*active.front());
      // Work stealing: instead of parking at the barrier, the driving
      // thread pulls this kernel's queued group tasks off the shared
      // scheduler and runs them.
      stats_.steals += scheduler.help_until_done(scheduler_client_);
    }
    // Horizon: surface errors and stops, then route cross-group wakes --
    // all in group order, so the next round's queues are deterministic.
    for (GroupTask* task : active) {
      if (task->exception != nullptr && first_exception == nullptr) {
        first_exception = task->exception;
        failing_process_ = std::move(task->failed_process);
        failing_domain_ = std::move(task->failed_domain);
      }
      task->exception = nullptr;
      task->failed_process.clear();
      task->failed_domain.clear();
      if (task->stop) {
        stop_requested_ = true;
      }
    }
    for (GroupTask* task : active) {
      std::vector<Process*> wakes = std::move(task->cross_wakes);
      task->cross_wakes.clear();
      for (Process* p : wakes) {
        apply_cross_wake(p);
      }
    }
    if (first_exception != nullptr || stop_requested_) {
      break;
    }
    if (group_version_ != groups_before) {
      // The channel layer merged groups mid-round (first cross-domain
      // traffic on some channel). Re-partition the remaining work under
      // the new grouping before running another round.
      std::sort(phase_tasks_.begin(), phase_tasks_.end(), by_group);
      std::deque<Process*> pending;
      for (GroupTask* task : phase_tasks_) {
        for (Process* p : task->queue) {
          pending.push_back(p);
        }
        task->queue.clear();
      }
      for (Process* p : pending) {
        task_for_group(find_group(p->domain_->id())).queue.push_back(p);
      }
    }
  }
  // Merge every group's buffered side effects, in group order.
  std::sort(phase_tasks_.begin(), phase_tasks_.end(), by_group);
  for (GroupTask* task : phase_tasks_) {
    flush_group_task(*task);
  }
  maybe_compact_timed_queue();
  publish_domain_fronts();
  if (first_exception != nullptr) {
    std::rethrow_exception(first_exception);
  }
}

// --------------------------------------------------------------------------
// Conservative per-group lookahead (see README "Parallel execution")
//
// The parallel evaluation phase above still rendezvouses every group at
// every timed wave. When the model declares *weighted* inter-group edges
// (link_domains(a, b, min_latency): nothing one side does can affect the
// other sooner than min_latency of simulated time), the kernel can do
// better: per group g it derives the Chandy-Misra-Bryant bound
//
//   E(g) = min(N(g), min over inbound edges (h, lat) of E(h) + lat)
//
// where N(g) is g's earliest live timed entry, and lets each group whose
// entries all fall strictly below its inbound bound execute whole timed
// waves -- dispatch, update, delta cascades, and locally-born follow-up
// waves -- privately on its worker, without a barrier per wave. Everything
// the barrier scheduler buffers per round is still buffered per task, and
// the merge reconstructs the wave/delta accounting (the prepaid ledger in
// run()), so parallel runs stay bit-identical to the sequential schedule.
// Zero-latency links never produce decoupled records (link_domains merges
// instead), so zero-lookahead cycles degrade to the barrier path.
// --------------------------------------------------------------------------

Time Kernel::resolve_now() const {
  GroupTask* task = active_task();
  if (task != nullptr && task->free_running) {
    return task->local_now;
  }
  return now_;
}

std::optional<std::size_t> Kernel::sole_waiter_group(const Event& e) const {
  std::optional<std::size_t> group;
  for (const Process* m : e.static_waiters_) {
    const std::size_t g = find_group(m->domain_->id());
    if (group.has_value() && *group != g) {
      return std::nullopt;
    }
    group = g;
  }
  for (const Process* p : e.dynamic_waiters_) {
    const std::size_t g = find_group(p->domain_->id());
    if (group.has_value() && *group != g) {
      return std::nullopt;
    }
    group = g;
  }
  return group;  // nullopt when the event has no waiters at all
}

void Kernel::compute_lookahead_state(std::vector<std::uint64_t>& earliest,
                                     std::vector<std::uint64_t>& window) const {
  const std::size_t n = domains_.size();
  earliest.assign(n, kNoDatePs);
  std::vector<std::uint64_t> clamp(n, kNoDatePs);
  // Entries no single group owns (events with no or cross-group waiters)
  // choke every window: any group could observe their firing.
  std::uint64_t choke = kNoDatePs;
  for (const TimedEntry& entry : timed_queue_) {
    if (is_stale(entry)) {
      continue;
    }
    const std::uint64_t when = entry.when.ps();
    if (entry.kind == TimedEntry::Kind::ProcessResume) {
      const std::size_t g = find_group(entry.process->domain_->id());
      earliest[g] = std::min(earliest[g], when);
      continue;
    }
    const std::optional<std::size_t> owner = sole_waiter_group(*entry.event);
    if (!owner.has_value()) {
      choke = std::min(choke, when);
      continue;
    }
    earliest[*owner] = std::min(earliest[*owner], when);
    if (entry.event->cross_group_notified()) {
      // Declared relay: fired only at global waves (the notifier may be
      // mid-flight); until then it bounds the waiter group's free-run.
      clamp[*owner] = std::min(clamp[*owner], when);
    }
  }
  // The weighted inter-group edges, both directions per record.
  struct Edge {
    std::size_t from;
    std::size_t to;
    std::uint64_t latency;
  };
  std::vector<Edge> edges;
  {
    std::lock_guard<std::mutex> lock(group_mutex_);
    for (const DomainLinkRecord& link : domain_links_) {
      if (!link.decoupled) {
        continue;
      }
      const std::size_t ra = find_group(link.a);
      const std::size_t rb = find_group(link.b);
      if (ra == rb) {
        continue;  // merged since the declaration; the edge is moot
      }
      const std::uint64_t latency = link.min_latency.ps();
      edges.push_back({ra, rb, latency});
      edges.push_back({rb, ra, latency});
    }
  }
  // The CMB fixed point. All latencies are positive (zero-latency
  // declarations merge instead), so this is shortest-path relaxation with
  // positive weights: at most n full rounds.
  std::vector<std::uint64_t> reach = earliest;
  for (std::size_t iter = 0; iter < n; ++iter) {
    bool changed = false;
    for (const Edge& edge : edges) {
      const std::uint64_t via = sat_add_ps(reach[edge.from], edge.latency);
      if (via < reach[edge.to]) {
        reach[edge.to] = via;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  window.assign(n, kNoDatePs);
  for (const Edge& edge : edges) {
    window[edge.to] = std::min(window[edge.to],
                               sat_add_ps(reach[edge.from], edge.latency));
  }
  for (std::size_t g = 0; g < n; ++g) {
    window[g] = std::min(window[g], std::min(clamp[g], choke));
  }
}

std::optional<Time> Kernel::lookahead_bound(const SyncDomain& domain) const {
  std::vector<std::uint64_t> earliest;
  std::vector<std::uint64_t> window;
  compute_lookahead_state(earliest, window);
  const std::uint64_t bound = window[find_group(domain.id())];
  if (bound == kNoDatePs) {
    return std::nullopt;
  }
  return Time::from_ps(bound);
}

bool Kernel::run_lookahead_extension(Time until) {
  if (lookahead_max_waves_ == 0 || !parallel_enabled()) {
    return false;
  }
  if (quantum_controller_ && quantum_controller_->any_active()) {
    // The controller's cost signal reads every domain's execution front at
    // the horizon; a free-running group would feed it fronts the
    // sequential schedule never produces. Adaptive kernels keep the
    // barrier.
    return false;
  }
  if (timed_queue_.size() < 2) {
    return false;
  }
  const std::size_t n = domains_.size();
  std::vector<std::uint64_t> earliest;
  std::vector<std::uint64_t> window;
  compute_lookahead_state(earliest, window);
  // Exclusive per-group date cap for this extension: the lookahead window
  // clipped to the run limit (entries at `until` itself may still run --
  // hence the +1 -- matching the global loop, which advances to `until`).
  const std::uint64_t until_cap = sat_add_ps(until.ps(), 1);
  std::vector<std::uint64_t> cap(n, 0);
  std::size_t eligible = 0;
  for (std::size_t g = 0; g < n; ++g) {
    if (earliest[g] == kNoDatePs) {
      continue;
    }
    cap[g] = std::min(window[g], until_cap);
    if (earliest[g] < cap[g]) {
      eligible++;
    }
  }
  if (eligible < 2) {
    return false;  // nothing to overlap; the barrier wave is just as good
  }
  // Extract every eligible group's executable entries into its private
  // agenda: in-place filter over the heap storage plus one re-heapify,
  // like the compaction paths.
  phase_tasks_.clear();
  tasks_in_use_ = 0;
  task_by_root_.assign(n, nullptr);
  const auto live_end = std::remove_if(
      timed_queue_.begin(), timed_queue_.end(), [&](const TimedEntry& entry) {
        if (is_stale(entry)) {
          return false;  // leave stale entries to the global loop's pops
        }
        std::size_t g;
        if (entry.kind == TimedEntry::Kind::ProcessResume) {
          g = find_group(entry.process->domain_->id());
        } else {
          if (entry.event->cross_group_notified()) {
            return false;  // relays fire at global waves only
          }
          const std::optional<std::size_t> owner =
              sole_waiter_group(*entry.event);
          if (!owner.has_value()) {
            return false;
          }
          g = *owner;
        }
        if (earliest[g] == kNoDatePs || earliest[g] >= cap[g] ||
            entry.when.ps() >= cap[g]) {
          return false;
        }
        task_for_group(g).agenda.push_back(entry);
        return true;
      });
  timed_queue_.erase(live_end, timed_queue_.end());
  timed_reheap();
  const auto by_group = [](const GroupTask* a, const GroupTask* b) {
    return a->group < b->group;
  };
  std::sort(phase_tasks_.begin(), phase_tasks_.end(), by_group);
  const auto agenda_less = [](const TimedEntry& a, const TimedEntry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  };
  for (GroupTask* task : phase_tasks_) {
    std::sort(task->agenda.begin(), task->agenda.end(), agenda_less);
    task->agenda_pos = 0;
    task->free_running = true;
    task->local_now = now_;
    task->window_cap = Time::from_ps(cap[task->group]);
    task->local_seq = 0;
    task->timed_scan_pos = 0;
    task->wave_log.clear();
    task->member_domains.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (find_group(i) == task->group) {
        task->member_domains.push_back(domains_[i].get());
      }
    }
  }
  // Dispatch: every group goes onto the shared deque; the main thread
  // steals from it until the extension drains.
  stats_.parallel_rounds++;
  stats_.horizon_waits += phase_tasks_.size() - 1;
  Scheduler& scheduler = Scheduler::instance();
  free_run_live_ = true;
  for (GroupTask* task : phase_tasks_) {
    scheduler.submit(
        scheduler_client_,
        [](void* t) {
          GroupTask& group_task = *static_cast<GroupTask*>(t);
          group_task.kernel->free_run_group(group_task);
        },
        task);
  }
  stats_.steals += scheduler.help_until_done(scheduler_client_);
  free_run_live_ = false;
  // Horizon: surface errors and stops first (mirroring the round loop),
  // then merge every group in group order.
  std::exception_ptr first_exception;
  for (GroupTask* task : phase_tasks_) {
    if (task->exception != nullptr && first_exception == nullptr) {
      first_exception = task->exception;
      failing_process_ = std::move(task->failed_process);
      failing_domain_ = std::move(task->failed_domain);
    }
    task->exception = nullptr;
    task->failed_process.clear();
    task->failed_domain.clear();
    if (task->stop) {
      stop_requested_ = true;
    }
  }
  for (GroupTask* task : phase_tasks_) {
    // (a) Prepaid accounting: pay the merged schedule's wave and delta
    // increments for the dates this group ran through. Same-date waves
    // line up by index (offset by rows the global loop already consumed),
    // and per index the merged delta count is the elementwise max across
    // groups -- a shared delta iteration runs every group's chain at once.
    std::map<std::uint64_t, std::size_t> next_index;
    for (const auto& [date_ps, deltas] : task->wave_log) {
      PrepaidDate& row = prepaid_waves_[date_ps];
      const auto it = next_index.try_emplace(date_ps, row.consumed).first;
      const std::size_t index = it->second++;
      if (index < row.wave_deltas.size()) {
        if (deltas > row.wave_deltas[index]) {
          stats_.delta_cycles += deltas - row.wave_deltas[index];
          row.wave_deltas[index] = deltas;
        }
      } else {
        row.wave_deltas.push_back(deltas);
        stats_.timed_waves++;
        stats_.delta_cycles += 1 + deltas;
      }
    }
    if (!task->wave_log.empty() &&
        task->wave_log.back().first > free_run_end_.ps()) {
      // Furthest date any extension has executed: when the queue later
      // drains, the final now_ must land here, like the sequential
      // schedule's last wave.
      free_run_end_ = Time::from_ps(task->wave_log.back().first);
    }
    task->wave_log.clear();
    // (b) Unexecuted agenda entries (wave cap, stop, error): extracted
    // entries return to the global queue with their original sequence
    // numbers; locally-born ones go back into the timed buffer at the
    // absorb scan point, in birth order -- everything after that point
    // was born later.
    std::vector<TimedEntry> leftover_local;
    for (std::size_t i = task->agenda_pos; i < task->agenda.size(); ++i) {
      const TimedEntry& entry = task->agenda[i];
      if (entry.seq >= kLocalSeqBase) {
        leftover_local.push_back(entry);
      } else {
        timed_push(entry);
      }
    }
    if (!leftover_local.empty()) {
      std::sort(leftover_local.begin(), leftover_local.end(),
                [](const TimedEntry& a, const TimedEntry& b) {
                  return a.seq < b.seq;
                });
      std::vector<GroupTask::TimedReq> reqs;
      reqs.reserve(leftover_local.size());
      for (const TimedEntry& entry : leftover_local) {
        reqs.push_back({entry.when, entry.kind, entry.event,
                        entry.event_generation, entry.process,
                        entry.process_generation});
      }
      task->timed.insert(
          task->timed.begin() +
              static_cast<std::ptrdiff_t>(task->timed_scan_pos),
          reqs.begin(), reqs.end());
    }
    task->agenda.clear();
    task->agenda_pos = 0;
    task->free_running = false;
    task->member_domains.clear();
    // (c) The regular horizon merge: queues, wakes, timed buffer, stats.
    flush_group_task(*task);
  }
  maybe_compact_timed_queue();
  publish_domain_fronts();
  if (first_exception != nullptr) {
    std::rethrow_exception(first_exception);
  }
  return true;
}

void Kernel::free_run_group(GroupTask& task) {
  Kernel* previous_kernel = std::exchange(g_current_kernel, this);
  ExecContext* previous_exec = std::exchange(t_exec_, &task.exec);
  GroupTask* previous_task = std::exchange(t_task_, &task);
  task.exec.tsan_fiber = fiber::tsan_current_fiber();
  try {
    std::size_t waves = 0;
    while (task.agenda_pos < task.agenda.size() && !task.stop &&
           waves < lookahead_max_waves_) {
      const Time date = task.agenda[task.agenda_pos].when;
      task.local_now = date;
      if (domain_delta_limits_enabled_) {
        for (SyncDomain* domain : task.member_domains) {
          domain->deltas_at_current_date_ = 0;
        }
      }
      task.wave_log.emplace_back(date.ps(), 0);
      waves++;
      task.stat_delta.lookahead_advances++;
      while (task.agenda_pos < task.agenda.size() &&
             task.agenda[task.agenda_pos].when == date) {
        fire_agenda_entry(task, task.agenda[task.agenda_pos]);
        task.agenda_pos++;
      }
      run_local_cascade(task);
      if (task.stop) {
        break;
      }
      absorb_local_timed(task);
    }
  } catch (...) {
    task.exception = std::current_exception();
  }
  t_task_ = previous_task;
  t_exec_ = previous_exec;
  g_current_kernel = previous_kernel;
}

void Kernel::fire_agenda_entry(GroupTask& task, TimedEntry& entry) {
  // Mirrors the global timed phase's firing semantics exactly, with the
  // stale bookkeeping going to the task's buffered notes (that is where
  // in-extension cancels and supersedes booked theirs).
  if (entry.kind == TimedEntry::Kind::EventFire) {
    entry.event->queued_timed_entries_--;
    if (is_stale(entry)) {
      if (task.stale_notes > 0) {
        task.stale_notes--;
      }
      return;
    }
    entry.event->pending_ = Event::Pending::None;
    trigger_event(*entry.event);
    return;
  }
  if (is_stale(entry)) {
    if (task.stale_notes > 0) {
      task.stale_notes--;
    }
    return;
  }
  cancel_dynamic_wait(*entry.process);
  entry.process->woke_by_event_ = false;
  // The live entry is the one being consumed right now, so the generation
  // bump must not count it stale.
  entry.process->has_live_resume_entry_ = false;
  entry.process->wake_generation_++;
  make_runnable(entry.process);
}

void Kernel::run_local_cascade(GroupTask& task) {
  // One wave's evaluate -> update -> delta loop, against the task's own
  // buffers (make_runnable and queue_delta_notification land there because
  // this thread's t_task_ is the task).
  for (;;) {
    while (!task.queue.empty()) {
      Process* p = task.queue.front();
      task.queue.pop_front();
      p->in_runnable_ = false;
      p->domain_->runnable_count_--;
      if (p->state_ == ProcessState::Terminated) {
        continue;
      }
      dispatch(p);
      if (task.stop) {
        return;
      }
    }
    while (!task.update_requests.empty()) {
      std::vector<UpdateListener*> batch = std::move(task.update_requests);
      task.update_requests.clear();
      for (UpdateListener* listener : batch) {
        listener->update();
      }
    }
    // Per-iteration chunk flush, group-filtered -- the free-running analog
    // of the main loop's post-update flush (see Kernel::run): keeps this
    // group's flush-induced delta iterations at the same chain depth as
    // the sequential schedule, and never lets the local date outrun one of
    // the group's own unpublished chunks.
    if (chunk_flush_count_.load(std::memory_order_relaxed) != 0) {
      flush_group_chunks(task);
    }
    if (task.delta_notifications.empty() && task.delta_resume.empty()) {
      return;
    }
    std::uint32_t& deltas = task.wave_log.back().second;
    deltas++;
    if (delta_limit_ != 0 && deltas > delta_limit_) {
      const SyncDomain* lagging = lagging_domain();
      raise_delta_livelock(
          "delta-cycle limit (" + std::to_string(delta_limit_) +
          ") exceeded at date " + task.local_now.to_string() +
          (lagging != nullptr
               ? " (lagging domain: '" + lagging->name() + "')"
               : std::string()) +
          "; livelocked model?");
    }
    for (Process* p : std::exchange(task.delta_resume, {})) {
      if (p->state_ != ProcessState::Terminated) {
        make_runnable(p);
      }
    }
    std::vector<std::pair<Event*, std::uint64_t>> batch =
        std::move(task.delta_notifications);
    task.delta_notifications.clear();
    for (auto& [event, generation] : batch) {
      if (event->pending_ == Event::Pending::Delta &&
          event->generation_ == generation) {
        event->pending_ = Event::Pending::None;
        trigger_event(*event);
      }
    }
    if (domain_delta_limits_enabled_) {
      // Member domains only: foreign domains' counters belong to other
      // workers.
      for (SyncDomain* domain : task.member_domains) {
        if (domain->runnable_count_ == 0) {
          domain->deltas_at_current_date_ = 0;
          continue;
        }
        domain->deltas_at_current_date_++;
        if (domain->delta_limit_ != 0 &&
            domain->deltas_at_current_date_ > domain->delta_limit_) {
          raise_delta_livelock("domain '" + domain->name() + "' exceeded its "
                               "delta-cycle limit (" +
                               std::to_string(domain->delta_limit_) +
                               ") at date " + task.local_now.to_string() +
                               "; livelocked subsystem?");
        }
      }
    }
  }
}

void Kernel::absorb_local_timed(GroupTask& task) {
  // Timed requests born during the extension that fall inside this group's
  // window join the agenda (with synthetic sequence numbers, so they sort
  // after every extracted entry of their date); everything else stays
  // buffered for the horizon flush. The already-scanned prefix is never
  // revisited.
  auto& reqs = task.timed;
  const std::uint64_t cap = task.window_cap.ps();
  std::size_t write = task.timed_scan_pos;
  for (std::size_t read = task.timed_scan_pos; read < reqs.size(); ++read) {
    GroupTask::TimedReq& req = reqs[read];
    bool local = false;
    if (req.when.ps() < cap) {
      if (req.kind == TimedEntry::Kind::ProcessResume) {
        local = find_group(req.process->domain_->id()) == task.group;
      } else if (!req.event->cross_group_notified()) {
        const std::optional<std::size_t> owner = sole_waiter_group(*req.event);
        // A notification this group issued on an event nobody is waiting
        // for (yet) is the group's own to fire: sequentially it would fire
        // at its date and clear the pending state, letting later notifies
        // reschedule. Leaving it buffered would swallow those reschedules
        // ("earlier notification already pending") for the whole window.
        local = owner.has_value() ? *owner == task.group
                                  : req.event->static_waiters_.empty() &&
                                        req.event->dynamic_waiters_.empty();
      }
    }
    if (!local) {
      if (write != read) {
        reqs[write] = reqs[read];
      }
      write++;
      continue;
    }
    TimedEntry entry;
    entry.when = req.when;
    entry.seq = kLocalSeqBase + task.local_seq++;
    entry.kind = req.kind;
    entry.event = req.event;
    entry.event_generation = req.event_generation;
    entry.process = req.process;
    entry.process_generation = req.process_generation;
    const auto agenda_less = [](const TimedEntry& a, const TimedEntry& b) {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      return a.seq < b.seq;
    };
    task.agenda.insert(
        std::upper_bound(task.agenda.begin() +
                             static_cast<std::ptrdiff_t>(task.agenda_pos),
                         task.agenda.end(), entry, agenda_less),
        entry);
  }
  reqs.resize(write);
  task.timed_scan_pos = write;
}

// --------------------------------------------------------------------------
// The scheduler main loop
// --------------------------------------------------------------------------

void Kernel::run(Time until) {
  run(RunOptions{.until = until});
}

void Kernel::run(const RunOptions& options) {
  const Time until = options.until;
  if (current_process() != nullptr || active_task() != nullptr) {
    Report::error("Kernel::run() called from inside a simulation process");
  }
  if (health_ == Health::Failed) {
    Report::error("Kernel::run(): kernel is Failed (" +
                  std::string(to_string(failure_report_.kind)) + ": " +
                  failure_report_.message +
                  "); Failed is terminal -- fork a fresh kernel");
  }
  if (!build_log_.empty() && !in_build_ && !replaying_) {
    // A snapshot-capable kernel's warm-up is part of its construction
    // log: fork() replays these run() calls in order (see
    // kernel/snapshot.h).
    build_log_.push_back([options](Kernel& k) { k.run(options); });
  }
  Kernel* previous = std::exchange(g_current_kernel, this);
  ExecContext* previous_exec = std::exchange(t_exec_, &main_exec_);
  main_exec_.tsan_fiber = fiber::tsan_current_fiber();
  stop_requested_ = false;
  prepaid_skip_deltas_ = 0;
  health_ = Health::Running;
  failing_process_.clear();
  failing_domain_.clear();
  arm_watchdog(options.wall_limit_ms);
  bool force_sequential_phase = false;
  if (!initialized_) {
    initialize_processes();
    // The initialization wave always runs sequentially, even in parallel
    // mode: it is where channels first see their callers' domains and
    // record the links the concurrency grouping is derived from.
    force_sequential_phase = true;
  } else if (graft_init_pending_) {
    // Same rule for processes grafted between runs (e.g. a fork's diverge
    // step): their first dispatch is their initialization wave.
    force_sequential_phase = true;
  }
  graft_init_pending_ = false;
  if (parallel_enabled()) {
    publish_domain_fronts();
  }
  try {
    while (!stop_requested_) {
      // Wall-clock watchdog, checked once per scheduler iteration -- a
      // synchronization horizon (delta or timed-wave boundary), where
      // every group is quiescent. One branch while disarmed.
      check_watchdog();
      // Evaluation phase.
      if (parallel_enabled() && !force_sequential_phase) {
        run_parallel_evaluation_phase();
      } else {
        while (!runnable_.empty()) {
          Process* p = runnable_.front();
          runnable_.pop_front();
          p->in_runnable_ = false;
          p->domain_->runnable_count_--;
          if (p->state_ == ProcessState::Terminated) {
            continue;
          }
          dispatch(p);
          if (stop_requested_) {
            break;
          }
        }
      }
      force_sequential_phase = false;
      if (stop_requested_) {
        break;
      }
      // Update phase.
      run_update_phase();
      // Chunked-channel flush, folded into every cascade iteration: a
      // group's flush-induced notifications enter the iteration right
      // after its chunks became pending -- a depth determined by the
      // group's own delta chain, so the lookahead extensions' per-group
      // cascades (which flush at the same point in run_local_cascade)
      // line up with the sequential schedule index-for-index and the
      // prepaid elementwise-max merge stays exact. It also maintains the
      // chunked-mode invariant: nothing unpublished survives a drained
      // cascade, so time never advances past a dirty chunk.
      if (chunk_flush_count_.load(std::memory_order_relaxed) != 0) {
        flush_chunked_channels();
      }
      // Delta-notification phase.
      if (!delta_notifications_.empty() || !delta_resume_.empty()) {
        if (prepaid_skip_deltas_ > 0) {
          // A lookahead extension already counted this iteration at its
          // merge (prepaid ledger); counting it again would break the
          // bit-identity with the sequential schedule.
          prepaid_skip_deltas_--;
        } else {
          stats_.delta_cycles++;
        }
        if (delta_limit_ != 0 && ++deltas_at_current_date_ > delta_limit_) {
          const SyncDomain* lagging = lagging_domain();
          raise_delta_livelock(
              "delta-cycle limit (" + std::to_string(delta_limit_) +
              ") exceeded at date " + now_.to_string() +
              (lagging != nullptr
                   ? " (lagging domain: '" + lagging->name() + "')"
                   : std::string()) +
              "; livelocked model?");
        }
        for (Process* p : std::exchange(delta_resume_, {})) {
          if (p->state_ != ProcessState::Terminated) {
            make_runnable(p);
          }
        }
        fire_delta_notifications();
        check_domain_delta_limits();
        continue;
      }
      // Quantum-control horizon: every group is quiescent and the books
      // are merged, so adaptive decisions here read the same deterministic
      // inputs under any worker count (see kernel/quantum_controller.h).
      if (quantum_controller_ && quantum_controller_->any_active()) {
        quantum_controller_->on_horizon(stats_, now_);
      }
      // Timed-notification phase. Drop stale entries (cancelled or
      // superseded notifications) first so they never advance time.
      while (!timed_queue_.empty() && is_stale(timed_queue_.front())) {
        const TimedEntry& top = timed_queue_.front();
        if (top.kind == TimedEntry::Kind::EventFire) {
          top.event->queued_timed_entries_--;
        }
        timed_pop();
        if (timed_stale_count_ > 0) {
          timed_stale_count_--;
        }
      }
      if (timed_queue_.empty()) {
        if (free_run_end_ > now_) {
          now_ = free_run_end_;  // the last wave ran inside an extension
        }
        break;
      }
      const Time next = timed_queue_.front().when;
      if (next > until) {
        now_ = until;
        break;
      }
      // Conservative lookahead: groups whose bound clears the next horizon
      // free-run to it in parallel; on progress, re-enter the loop without
      // advancing the global date (extensions may leave cross wakes or
      // re-inserted entries behind).
      if (run_lookahead_extension(until)) {
        continue;
      }
      now_ = next;
      deltas_at_current_date_ = 0;
      if (domain_delta_limits_enabled_) {
        for (const auto& domain : domains_) {
          domain->deltas_at_current_date_ = 0;
        }
      }
      // Consume the prepaid ledger: if an extension already executed (and
      // paid for) this date's next wave, skip the increments it covered.
      prepaid_skip_deltas_ = 0;
      bool wave_prepaid = false;
      if (!prepaid_waves_.empty()) {
        prepaid_waves_.erase(prepaid_waves_.begin(),
                             prepaid_waves_.lower_bound(next.ps()));
        const auto it = prepaid_waves_.find(next.ps());
        if (it != prepaid_waves_.end() &&
            it->second.consumed < it->second.wave_deltas.size()) {
          prepaid_skip_deltas_ = it->second.wave_deltas[it->second.consumed++];
          wave_prepaid = true;
        }
      }
      if (!wave_prepaid) {
        stats_.timed_waves++;
        stats_.delta_cycles++;
      }
      while (!timed_queue_.empty() && timed_queue_.front().when == now_) {
        TimedEntry entry = timed_queue_.front();
        timed_pop();
        if (entry.kind == TimedEntry::Kind::EventFire) {
          entry.event->queued_timed_entries_--;
        }
        if (is_stale(entry)) {
          if (timed_stale_count_ > 0) {
            timed_stale_count_--;
          }
          continue;
        }
        switch (entry.kind) {
          case TimedEntry::Kind::EventFire:
            entry.event->pending_ = Event::Pending::None;
            trigger_event(*entry.event);
            break;
          case TimedEntry::Kind::ProcessResume:
            cancel_dynamic_wait(*entry.process);
            entry.process->woke_by_event_ = false;
            // The live entry is the one being consumed right now, so the
            // generation bump must not count it stale.
            entry.process->has_live_resume_entry_ = false;
            entry.process->wake_generation_++;
            make_runnable(entry.process);
            break;
        }
      }
      check_domain_delta_limits();
    }
  } catch (...) {
    stats_.fold_domain_sync_aggregates();
    // Running -> Failed: assemble the post-mortem, terminate live fibers,
    // release this kernel's slots on the shared Scheduler. The buffered
    // GroupTask side effects were already merged -- both parallel paths
    // flush every task before rethrowing the first exception -- so the
    // kernel is inert and leak-free to destroy, and sibling kernels on
    // the scheduler are unaffected.
    enter_failed_state(std::current_exception());
    t_exec_ = previous_exec;
    g_current_kernel = previous;
    throw;
  }
  watchdog_armed_ = false;
  health_ = Health::Idle;
  // Leave with the aggregate cache current, so post-run stats() reads are
  // pure (see stats()).
  stats_.fold_domain_sync_aggregates();
  t_exec_ = previous_exec;
  g_current_kernel = previous;
}

void Kernel::stop() {
  if (GroupTask* task = active_task()) {
    // Scoped to the stopping group until the horizon: its queue breaks
    // immediately (sequential semantics); other groups finish their round
    // deterministically before the kernel-wide stop is observed.
    task->stop = true;
    return;
  }
  stop_requested_ = true;
}

void Kernel::dispatch(Process* p) {
  p->activation_count_++;
  // Chaos harness: armed faults trigger on (process, activation) -- a
  // deterministic point of the schedule. One relaxed load on fault-free
  // kernels.
  if (faults_pending_.load(std::memory_order_relaxed) != 0) {
    apply_faults(*p);
  }
  if (p->kind() == ProcessKind::Thread) {
    dispatch_thread(p);
  } else {
    dispatch_method(p);
  }
}

void Kernel::dispatch_thread(Process* p) {
  active_stats().context_switches++;
  ExecContext& exec = *t_exec_;
  if (!p->thread_started_) {
    p->start_thread_context();
  }
  p->state_ = ProcessState::Running;
  Process* previous = std::exchange(exec.current_process, p);
  fiber::start_switch(&exec.scheduler_fake_stack, p->stack_bottom(),
                      p->stack_usable_size(), p->tsan_fiber_);
  swapcontext(&exec.scheduler_context, &p->context_);
  fiber::finish_switch(exec.scheduler_fake_stack, nullptr, nullptr);
  exec.current_process = previous;
  if (p->state_ == ProcessState::Terminated) {
    // Eager stack reclamation: a platform that churns processes (kill /
    // respawn generations, snapshot-fork fan-out) would otherwise hold
    // every dead fiber's stack until kernel destruction. The fiber just
    // made its final switch off this stack (and ASan freed its fake
    // stack via the trampoline's null save), so the block can go back to
    // the pool now.
    p->release_stack(/*abandoned=*/false);
  }
  if (p->pending_exception_) {
    std::exception_ptr ex = std::exchange(p->pending_exception_, nullptr);
    note_failing_process(*p);
    std::rethrow_exception(ex);
  }
}

void Kernel::dispatch_method(Process* p) {
  active_stats().method_activations++;
  // The next_trigger override is consumed by this activation: unless the
  // body re-arms one, the method falls back to its static sensitivity
  // (SystemC semantics). The event-trigger path already cleared it; the
  // timed-resume path relies on this reset.
  p->trigger_override_ = false;
  // A method activation starts synchronized: its local date is the global
  // date at which it was triggered. inc() may then advance it within the
  // activation (used by packetizing network interfaces, paper SIV.C).
  p->clock_.set_offset(Time{});
  p->state_ = ProcessState::Running;
  ExecContext& exec = *t_exec_;
  Process* previous = std::exchange(exec.current_process, p);
  try {
    p->body_();
  } catch (...) {
    exec.current_process = previous;
    p->state_ = ProcessState::Terminated;
    note_failing_process(*p);
    throw;
  }
  exec.current_process = previous;
  if (p->state_ == ProcessState::Running) {
    // A method is perpetually waiting on its (static or overridden)
    // sensitivity between activations.
    p->state_ = ProcessState::Waiting;
  }
}

void Kernel::yield_current_thread() {
  // This function runs on the fiber's stack and spans a suspension, so
  // both thread-local reads go through the noinline accessor (see
  // thread_exec() in kernel.h).
  ExecContext& from = *thread_exec();
  Process* p = from.current_process;
  fiber::start_switch(&p->fake_stack_, from.scheduler_stack_bottom,
                      from.scheduler_stack_size, from.tsan_fiber);
  swapcontext(&p->context_, &from.scheduler_context);
  // Resumed -- in parallel mode possibly under a different worker's
  // execution context; re-read the thread-local before refreshing the
  // scheduler-stack bookkeeping.
  ExecContext& to = *thread_exec();
  fiber::finish_switch(p->fake_stack_, &to.scheduler_stack_bottom,
                       &to.scheduler_stack_size);
  // If the kernel is tearing down, unwind this stack now.
  if (p->kill_requested_) {
    throw ProcessKilled{};
  }
}

Process* Kernel::require_thread(const char* what) const {
  Process* p = current_process();
  if (p == nullptr || p->kind() != ProcessKind::Thread) {
    Report::error(std::string(what) +
                  " may only be called from a thread process");
  }
  return p;
}

Process* Kernel::require_method(const char* what) const {
  Process* p = current_process();
  if (p == nullptr || p->kind() != ProcessKind::Method) {
    Report::error(std::string(what) +
                  " may only be called from a method process");
  }
  return p;
}

// --------------------------------------------------------------------------
// Process-facing API
// --------------------------------------------------------------------------

void Kernel::wait(Time duration) {
  Process* p = require_thread("wait(duration)");
  wait_for(*p, duration);
}

void Kernel::wait_for(Process& p, Time duration) {
  // now() not now_: inside a free-running lookahead extension the resume
  // date is relative to the group's local date.
  schedule_process_resume(p, now() + duration);
  p.state_ = ProcessState::Waiting;
  yield_current_thread();
}

void Kernel::wait(Event& event) {
  Process* p = require_thread("wait(event)");
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
}

bool Kernel::wait(Event& event, Time timeout) {
  Process* p = require_thread("wait(event, timeout)");
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  schedule_process_resume(*p, now() + timeout);
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
  return p->woke_by_event_;
}

void Kernel::wait_delta() {
  Process* p = require_thread("wait_delta()");
  if (GroupTask* task = active_task()) {
    task->delta_resume.push_back(p);
  } else {
    delta_resume_.push_back(p);
  }
  bump_wake_generation(*p);  // invalidate any stale timers
  p->state_ = ProcessState::Waiting;
  yield_current_thread();
}

void Kernel::next_trigger(Event& event) {
  Process* p = require_method("next_trigger(event)");
  cancel_dynamic_wait(*p);     // last call wins
  bump_wake_generation(*p);    // cancel a pending next_trigger(delay)
  event.dynamic_waiters_.push_back(p);
  p->waiting_event_ = &event;
  p->trigger_override_ = true;
}

void Kernel::next_trigger(Time delay) {
  Process* p = require_method("next_trigger(delay)");
  cancel_dynamic_wait(*p);
  bump_wake_generation(*p);
  schedule_process_resume(*p, now() + delay);
  p->trigger_override_ = true;
}

void Kernel::check_domain_delta_limits() {
  if (!domain_delta_limits_enabled_) {
    return;  // keep the no-limit default free on the scheduler hot path
  }
  for (const auto& domain : domains_) {
    if (domain->runnable_count_ == 0) {
      // Only *consecutive* delta activity counts toward the limit.
      domain->deltas_at_current_date_ = 0;
      continue;
    }
    domain->deltas_at_current_date_++;
    if (domain->delta_limit_ != 0 &&
        domain->deltas_at_current_date_ > domain->delta_limit_) {
      raise_delta_livelock("domain '" + domain->name() + "' exceeded its "
                           "delta-cycle limit (" +
                           std::to_string(domain->delta_limit_) +
                           ") at date " + now_.to_string() +
                           "; livelocked subsystem?");
    }
  }
}

void Kernel::cancel_dynamic_wait(Process& p) {
  if (p.waiting_event_ != nullptr) {
    auto& waiters = p.waiting_event_->dynamic_waiters_;
    waiters.erase(std::remove(waiters.begin(), waiters.end(), &p),
                  waiters.end());
    p.waiting_event_ = nullptr;
  }
}

void Kernel::request_update(UpdateListener* listener) {
  if (GroupTask* task = active_task()) {
    task->update_requests.push_back(listener);
  } else {
    update_requests_.push_back(listener);
  }
}

void Kernel::kill_all_threads() {
  // Resume every suspended thread so ProcessKilled unwinds its stack and
  // destructors of stack objects run.
  ExecContext* previous_exec = std::exchange(t_exec_, &main_exec_);
  main_exec_.tsan_fiber = fiber::tsan_current_fiber();
  for (const auto& p : processes_) {
    if (p->kind() == ProcessKind::Thread && p->thread_started_ &&
        p->state_ != ProcessState::Terminated) {
      p->kill_requested_ = true;
      Process* previous = std::exchange(main_exec_.current_process, p.get());
      fiber::start_switch(&main_exec_.scheduler_fake_stack, p->stack_bottom(),
                          p->stack_usable_size(), p->tsan_fiber_);
      swapcontext(&main_exec_.scheduler_context, &p->context_);
      fiber::finish_switch(main_exec_.scheduler_fake_stack, nullptr, nullptr);
      main_exec_.current_process = previous;
      if (p->state_ != ProcessState::Terminated) {
        Report::warning("process " + p->name() +
                        " survived kill request; abandoning its stack");
      } else {
        p->release_stack(/*abandoned=*/false);
      }
      p->pending_exception_ = nullptr;
    }
  }
  t_exec_ = previous_exec;
}

// --------------------------------------------------------------------------
// Failure semantics, watchdog, chaos harness (see kernel/failure.h)
// --------------------------------------------------------------------------

void Kernel::note_failing_process(Process& p) {
  // First attribution wins: the exception the horizon surfaces is the
  // first one raised in group order, and so is the first note.
  if (GroupTask* task = active_task()) {
    if (task->failed_process.empty()) {
      task->failed_process = p.name();
      task->failed_domain = p.domain().name();
    }
    return;
  }
  if (failing_process_.empty()) {
    failing_process_ = p.name();
    failing_domain_ = p.domain().name();
  }
}

void Kernel::enter_failed_state(std::exception_ptr cause) {
  health_ = Health::Failed;
  stats_.failures++;
  FailureReport& report = failure_report_;
  report = FailureReport{};
  // Classify by exception type; the typed raises (raise_delta_livelock,
  // check_watchdog, apply_faults) already notified the report sink.
  try {
    std::rethrow_exception(cause);
  } catch (const DeltaLivelockError& e) {
    report.kind = FailureKind::DeltaLivelock;
    report.message = e.what();
  } catch (const WatchdogError& e) {
    report.kind = FailureKind::Watchdog;
    report.message = e.what();
  } catch (const InjectedFault& e) {
    report.kind = FailureKind::Injected;
    report.message = e.what();
  } catch (const std::exception& e) {
    report.kind = FailureKind::ModelError;
    report.message = e.what();
  } catch (...) {
    report.kind = FailureKind::Unknown;
    report.message = "non-std::exception payload escaped run()";
  }
  report.process = std::move(failing_process_);
  report.domain = std::move(failing_domain_);
  failing_process_.clear();
  failing_domain_.clear();
  report.at = now_;
  report.delta_cycles = stats_.delta_cycles;
  report.timed_waves = stats_.timed_waves;
  for (const auto& domain : domains_) {
    DomainFront front;
    front.domain = domain->name();
    front.front = domain->execution_front().value_or(Time::max());
    front.syncs = stats_.domains[domain->id()].syncs_performed();
    report.fronts.push_back(std::move(front));
    if (const QuantumDecision* decision = last_quantum_decision(*domain)) {
      report.last_decisions.push_back(*decision);
    }
  }
  if (report.kind == FailureKind::Watchdog ||
      report.kind == FailureKind::DeltaLivelock) {
    if (SyncDomain* lagging = lagging_domain()) {
      if (report.domain.empty()) {
        report.domain = lagging->name();
      }
      report.has_lookahead_bound = true;
      report.lookahead_bound = lookahead_bound(*lagging).value_or(Time::max());
    }
  }
  // Terminate live fibers now (ProcessKilled unwind, destructors run), so
  // a Failed kernel holds no suspended stacks regardless of when it is
  // destroyed.
  kill_all_threads();
  // Release this kernel's worker slots on the process-wide Scheduler --
  // a Failed kernel never runs again, and the quota belongs to the
  // surviving siblings. The client stays registered until destruction.
  if (workers_ > 1) {
    Scheduler::instance().set_client_quota(scheduler_client_, 0);
  }
  workers_ = 0;
  watchdog_armed_ = false;
}

void Kernel::arm_watchdog(const std::optional<std::uint64_t>& override_ms) {
  const std::uint64_t limit =
      override_ms.has_value() ? *override_ms : config_.wall_limit_ms.value_or(0);
  watchdog_limit_ms_ = limit;
  watchdog_armed_ = limit != 0;
  if (watchdog_armed_) {
    watchdog_deadline_ = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(limit);
  }
}

void Kernel::check_watchdog() {
  if (!watchdog_armed_) {
    return;
  }
  if (std::chrono::steady_clock::now() < watchdog_deadline_) {
    return;
  }
  stats_.watchdog_trips++;
  std::string message = "watchdog: wall limit (" +
                        std::to_string(watchdog_limit_ms_) +
                        " ms) exceeded at date " + now_.to_string();
  if (const SyncDomain* lagging = lagging_domain()) {
    message += " (lagging domain: '" + lagging->name() + "')";
  }
  Report::notify(Severity::Error, message);
  throw WatchdogError(message);
}

void Kernel::arm_faults(FaultPlan plan) {
  for (const FaultAction& action : plan.actions) {
    if (action.kind == FaultAction::Kind::FlipMutation &&
        (action.mutations == nullptr || action.flag == nullptr)) {
      Report::error("Kernel::arm_faults: FlipMutation action '" +
                    action.to_string() +
                    "' has no target SmartFifoMutations instance");
    }
  }
  fault_plan_ = std::move(plan);
  fault_fired_.assign(fault_plan_.actions.size(), 0);
  faults_pending_.store(fault_plan_.actions.size(),
                        std::memory_order_relaxed);
}

void Kernel::apply_faults(Process& p) {
  for (std::size_t i = 0; i < fault_plan_.actions.size(); ++i) {
    if (fault_fired_[i] != 0) {
      continue;
    }
    const FaultAction& action = fault_plan_.actions[i];
    if (p.activation_count_ != action.activation ||
        p.name() != action.process) {
      continue;
    }
    // Latch before acting: a fault fires (or is consumed) exactly once.
    // Only the thread dispatching the trigger process writes here, and a
    // process is dispatched by one thread at a time (scheduler-serialized
    // within its group), so relaxed ordering suffices.
    fault_fired_[i] = 1;
    faults_pending_.fetch_sub(1, std::memory_order_relaxed);
    switch (action.kind) {
      case FaultAction::Kind::Throw: {
        if (action.only_parallel && workers_ <= 1) {
          break;  // scheduling-dependent bug: sequential retry survives
        }
        const std::string message =
            "fault injection: throw in '" + p.name() + "' at activation " +
            std::to_string(action.activation);
        note_failing_process(p);
        Report::notify(Severity::Warning, message);
        throw InjectedFault(message);
      }
      case FaultAction::Kind::Stall:
        // Advance the process's local clock: its domain falls behind by
        // `stall`, which the lagging-domain / watchdog machinery reports.
        p.clock_.set_offset(p.clock_.offset() + action.stall);
        break;
      case FaultAction::Kind::FlipMutation:
        action.mutations->*(action.flag) =
            !(action.mutations->*(action.flag));
        break;
      case FaultAction::Kind::Stop:
        // stop() routes to the active GroupTask's buffered stop when this
        // dispatch runs on a worker -- the "stop from a worker-run group"
        // path.
        stop();
        break;
    }
  }
}

// --------------------------------------------------------------------------
// Free functions
// --------------------------------------------------------------------------

void wait(Time duration) {
  current_kernel_checked().wait(duration);
}

void wait(Event& event) {
  current_kernel_checked().wait(event);
}

bool wait(Event& event, Time timeout) {
  return current_kernel_checked().wait(event, timeout);
}

void wait_delta() {
  current_kernel_checked().wait_delta();
}

void next_trigger(Event& event) {
  current_kernel_checked().next_trigger(event);
}

void next_trigger(Time delay) {
  current_kernel_checked().next_trigger(delay);
}

Time sim_time_stamp() {
  return current_kernel_checked().now();
}

}  // namespace tdsim
