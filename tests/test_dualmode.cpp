// Dual-mode validation (paper SIV.A): every scenario runs in the reference
// mode (regular FIFO, no decoupling), in the Smart FIFO mode (full temporal
// decoupling) and in the case-study baseline mode (decoupled processes,
// synchronizing FIFOs). After reordering by date, the traces must be
// identical -- behavior and timing unchanged, only the schedule differs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "trace/scenario.h"

namespace tdsim {
namespace {

using trace::Mode;
using trace::Scenario;
using trace::ScenarioEnv;

/// Runs `scenario` in all three modes and asserts sorted-trace equality.
void expect_all_modes_equal(const Scenario& scenario) {
  auto reference = trace::run_scenario(scenario, Mode::Reference);
  auto smart = trace::run_scenario(scenario, Mode::SmartDecoupled);
  auto sync = trace::run_scenario(scenario, Mode::SyncDecoupled);
  ASSERT_GT(reference->recorder().size(), 0u) << "scenario recorded nothing";
  auto diff = trace::compare_sorted(reference->recorder(), smart->recorder());
  EXPECT_FALSE(diff.has_value()) << "Reference vs SmartDecoupled: " << *diff;
  diff = trace::compare_sorted(reference->recorder(), sync->recorder());
  EXPECT_FALSE(diff.has_value()) << "Reference vs SyncDecoupled: " << *diff;
}

/// Writer writes then delays `write_period`; reader delays `read_period`
/// then reads. The paper's Fig. 1 shape, parameterized.
Scenario producer_consumer(std::size_t depth, Time write_period,
                           Time read_period, int items) {
  return [=](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", depth);
    env.kernel().spawn_thread("writer", [&env, &fifo, write_period, items] {
      for (int i = 0; i < items; ++i) {
        fifo.write(i);
        env.log("wrote", static_cast<std::uint64_t>(i));
        env.delay(write_period);
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo, read_period, items] {
      for (int i = 0; i < items; ++i) {
        env.delay(read_period);
        const int v = fifo.read();
        env.log("read", static_cast<std::uint64_t>(v));
      }
    });
  };
}

TEST(DualMode, Fig1Basic) {
  expect_all_modes_equal(producer_consumer(1, 20_ns, 15_ns, 3));
}

TEST(DualMode, FastProducerSlowConsumer) {
  expect_all_modes_equal(producer_consumer(4, 2_ns, 50_ns, 40));
}

TEST(DualMode, SlowProducerFastConsumer) {
  expect_all_modes_equal(producer_consumer(4, 50_ns, 2_ns, 40));
}

TEST(DualMode, MatchedRates) {
  expect_all_modes_equal(producer_consumer(8, 10_ns, 10_ns, 100));
}

TEST(DualMode, ZeroDelayWriter) {
  // All writes carry the same date; reads are paced.
  expect_all_modes_equal(producer_consumer(2, Time{}, 7_ns, 20));
}

class DualModeDepthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DualModeDepthSweep, Fig1ParametersAcrossDepths) {
  expect_all_modes_equal(producer_consumer(GetParam(), 20_ns, 15_ns, 30));
}

TEST_P(DualModeDepthSweep, InvertedRatesAcrossDepths) {
  expect_all_modes_equal(producer_consumer(GetParam(), 15_ns, 20_ns, 30));
}

INSTANTIATE_TEST_SUITE_P(Depths, DualModeDepthSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 64));

TEST(DualMode, BurstyProducer) {
  // Bursts of back-to-back writes separated by long gaps.
  expect_all_modes_equal([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 4);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int burst = 0; burst < 6; ++burst) {
        for (int i = 0; i < 5; ++i) {
          fifo.write(burst * 5 + i);
          env.log("wrote", static_cast<std::uint64_t>(burst * 5 + i));
          env.delay(1_ns);
        }
        env.delay(200_ns);
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo] {
      for (int i = 0; i < 30; ++i) {
        const int v = fifo.read();
        env.log("read", static_cast<std::uint64_t>(v));
        env.delay(12_ns);
      }
    });
  });
}

TEST(DualMode, ThreeStagePipeline) {
  // The Fig. 5 topology: source -> transmitter -> sink over two FIFOs.
  expect_all_modes_equal([](ScenarioEnv& env) {
    auto& f1 = env.fifo("f1", 2);
    auto& f2 = env.fifo("f2", 2);
    env.kernel().spawn_thread("source", [&env, &f1] {
      for (int i = 0; i < 25; ++i) {
        f1.write(i);
        env.delay(10_ns);
      }
    });
    env.kernel().spawn_thread("transmitter", [&env, &f1, &f2] {
      for (int i = 0; i < 25; ++i) {
        const int v = f1.read();
        env.delay(4_ns);
        f2.write(v * 2);
        env.log("forwarded", static_cast<std::uint64_t>(v));
      }
    });
    env.kernel().spawn_thread("sink", [&env, &f2] {
      for (int i = 0; i < 25; ++i) {
        const int v = f2.read();
        env.log("sink", static_cast<std::uint64_t>(v));
        env.delay(11_ns);
      }
    });
  });
}

TEST(DualMode, FeedbackLoop) {
  // Request/response ping-pong through two FIFOs: blocking happens on both
  // sides alternately.
  expect_all_modes_equal([](ScenarioEnv& env) {
    auto& req = env.fifo("req", 1);
    auto& rsp = env.fifo("rsp", 1);
    env.kernel().spawn_thread("client", [&env, &req, &rsp] {
      for (int i = 0; i < 15; ++i) {
        req.write(i);
        env.delay(3_ns);
        const int v = rsp.read();
        env.log("response", static_cast<std::uint64_t>(v));
        env.delay(5_ns);
      }
    });
    env.kernel().spawn_thread("server", [&env, &req, &rsp] {
      for (int i = 0; i < 15; ++i) {
        const int v = req.read();
        env.delay(7_ns);
        rsp.write(v + 100);
        env.log("served", static_cast<std::uint64_t>(v));
      }
    });
  });
}

TEST(DualMode, ManyParallelStreams) {
  // Several independent producer/consumer pairs with different cadences in
  // one simulation; decoupling reorders their execution heavily.
  expect_all_modes_equal([](ScenarioEnv& env) {
    for (int s = 0; s < 5; ++s) {
      auto& fifo = env.fifo("f" + std::to_string(s), 1 + s);
      const Time wp = Time::from_ps(1000 * (s + 1));
      const Time rp = Time::from_ps(1500 * (5 - s));
      const std::string tag = "s" + std::to_string(s);
      env.kernel().spawn_thread(tag + ".writer", [&env, &fifo, wp, tag] {
        for (int i = 0; i < 20; ++i) {
          fifo.write(i);
          env.log(tag + ".wrote", static_cast<std::uint64_t>(i));
          env.delay(wp);
        }
      });
      env.kernel().spawn_thread(tag + ".reader", [&env, &fifo, rp, tag] {
        for (int i = 0; i < 20; ++i) {
          env.delay(rp);
          env.log(tag + ".read",
                  static_cast<std::uint64_t>(fifo.read()));
        }
      });
    }
  });
}

TEST(DualMode, WriterFinishesEarly) {
  // Writer terminates long before the reader drains the FIFO.
  expect_all_modes_equal([](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 8);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int i = 0; i < 8; ++i) {
        fifo.write(i);
      }
      env.log("writer-done");
    });
    env.kernel().spawn_thread("reader", [&env, &fifo] {
      for (int i = 0; i < 8; ++i) {
        env.delay(100_ns);
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
  });
}

// ---------------------------------------------------------------------
// Seeded random scenarios (paper: "some are random... random tests use
// twice the same seed").
// ---------------------------------------------------------------------

struct RandomParams {
  std::uint32_t seed;
  std::size_t depth;
};

class DualModeRandom : public ::testing::TestWithParam<RandomParams> {};

TEST_P(DualModeRandom, RandomRatesAndJitter) {
  const RandomParams params = GetParam();
  expect_all_modes_equal([params](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", params.depth);
    env.kernel().spawn_thread("writer", [&env, &fifo, params] {
      std::mt19937 rng(params.seed);  // same seed in every mode
      std::uniform_int_distribution<int> delay(0, 30);
      for (int i = 0; i < 60; ++i) {
        fifo.write(i);
        env.log("wrote", static_cast<std::uint64_t>(i));
        env.delay(Time(static_cast<std::uint64_t>(delay(rng)), TimeUnit::NS));
      }
    });
    env.kernel().spawn_thread("reader", [&env, &fifo, params] {
      std::mt19937 rng(params.seed ^ 0x9e3779b9u);
      std::uniform_int_distribution<int> delay(0, 30);
      for (int i = 0; i < 60; ++i) {
        env.delay(Time(static_cast<std::uint64_t>(delay(rng)), TimeUnit::NS));
        env.log("read", static_cast<std::uint64_t>(fifo.read()));
      }
    });
  });
}

TEST_P(DualModeRandom, RandomPipeline) {
  const RandomParams params = GetParam();
  expect_all_modes_equal([params](ScenarioEnv& env) {
    auto& f1 = env.fifo("f1", params.depth);
    auto& f2 = env.fifo("f2", 1 + params.depth / 2);
    env.kernel().spawn_thread("source", [&env, &f1, params] {
      std::mt19937 rng(params.seed * 3 + 1);
      std::uniform_int_distribution<int> delay(0, 12);
      for (int i = 0; i < 50; ++i) {
        f1.write(i);
        env.delay(Time(static_cast<std::uint64_t>(delay(rng)), TimeUnit::NS));
      }
    });
    env.kernel().spawn_thread("stage", [&env, &f1, &f2, params] {
      std::mt19937 rng(params.seed * 7 + 5);
      std::uniform_int_distribution<int> delay(0, 12);
      for (int i = 0; i < 50; ++i) {
        const int v = f1.read();
        env.delay(Time(static_cast<std::uint64_t>(delay(rng)), TimeUnit::NS));
        f2.write(v);
      }
    });
    env.kernel().spawn_thread("sink", [&env, &f2, params] {
      std::mt19937 rng(params.seed * 11 + 13);
      std::uniform_int_distribution<int> delay(0, 12);
      for (int i = 0; i < 50; ++i) {
        env.log("sink", static_cast<std::uint64_t>(f2.read()));
        env.delay(Time(static_cast<std::uint64_t>(delay(rng)), TimeUnit::NS));
      }
    });
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DualModeRandom,
    ::testing::Values(RandomParams{1, 1}, RandomParams{2, 2},
                      RandomParams{3, 4}, RandomParams{4, 8},
                      RandomParams{5, 3}, RandomParams{42, 1},
                      RandomParams{77, 16}, RandomParams{123, 5},
                      RandomParams{2024, 2}, RandomParams{31337, 7}),
    [](const ::testing::TestParamInfo<RandomParams>& info) {
      return "seed" + std::to_string(info.param.seed) + "_depth" +
             std::to_string(info.param.depth);
    });

// ---------------------------------------------------------------------
// Context-switch comparison: the decoupled mode must not only be equal in
// timing but strictly cheaper in context switches once depth > 1.
// ---------------------------------------------------------------------

TEST(DualMode, SmartModeUsesFewerContextSwitches) {
  const Scenario scenario = producer_consumer(16, 10_ns, 10_ns, 200);
  auto reference = trace::run_scenario(scenario, Mode::Reference);
  auto smart = trace::run_scenario(scenario, Mode::SmartDecoupled);
  const auto& ref_stats = reference->kernel().stats();
  const auto& smart_stats = smart->kernel().stats();
  // Reference: ~1 context switch per access (2 processes x 200 accesses).
  EXPECT_GT(ref_stats.context_switches, 300u);
  // Smart: only at internal full/empty boundaries.
  EXPECT_LT(smart_stats.context_switches, ref_stats.context_switches / 4);
}

}  // namespace
}  // namespace tdsim
