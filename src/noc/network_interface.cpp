#include "noc/network_interface.h"

#include "kernel/sync_domain.h"
#include "kernel/report.h"

namespace tdsim::noc {

NetworkInterfaceBase::NetworkInterfaceBase(Module& parent,
                                           const std::string& name, NodeId id,
                                           Fifo<Packet>& to_router,
                                           Fifo<Packet>& from_router)
    : Module(parent, name),
      id_(id),
      to_router_(to_router),
      from_router_(from_router) {}

void NetworkInterfaceBase::check_not_elaborated() const {
  if (elaborated_) {
    Report::error("NetworkInterface " + full_name() +
                  ": channels must be added before elaborate()");
  }
}

ChannelId NetworkInterfaceBase::add_tx_channel(const TxChannelConfig& config) {
  check_not_elaborated();
  if (config.fifo == nullptr || config.packet_words == 0) {
    Report::error("NetworkInterface " + full_name() +
                  ": invalid TX channel configuration");
  }
  tx_channels_.push_back(config);
  // A packet is only injected after its whole payload is packetized, so
  // the router-side link imposes at least packet_words x per_word between
  // the accelerator side and the NoC; keep the smallest bound over the
  // channels sharing the link.
  const Time packetization =
      Time::from_ps(config.per_word.ps() * config.packet_words);
  const Time declared = to_router_.declared_min_latency();
  if (declared.is_zero() || packetization < declared) {
    to_router_.declare_min_latency(packetization);
  }
  return static_cast<ChannelId>(tx_channels_.size() - 1);
}

ChannelId NetworkInterfaceBase::add_rx_channel(const RxChannelConfig& config) {
  check_not_elaborated();
  if (config.fifo == nullptr) {
    Report::error("NetworkInterface " + full_name() +
                  ": invalid RX channel configuration");
  }
  rx_channels_.push_back(config);
  // Deframing costs at least per_word before the first word reaches the
  // accelerator side.
  const Time declared = from_router_.declared_min_latency();
  if (declared.is_zero() || config.per_word < declared) {
    from_router_.declare_min_latency(config.per_word);
  }
  return static_cast<ChannelId>(rx_channels_.size() - 1);
}

MethodOptions NetworkInterfaceBase::tx_sensitivity() {
  MethodOptions opts;
  for (auto& ch : tx_channels_) {
    opts.sensitivity.push_back(&ch.fifo->not_empty_event());
  }
  opts.sensitivity.push_back(&to_router_.data_read_event());
  return opts;
}

void NetworkInterfaceBase::account_rx(const Packet& packet) {
  // Acceptance happens at the global date (both NI flavors pop packets
  // synchronized), so now - injected_at is the network transit latency.
  rx_latency_.account(kernel().now() - packet.injected_at);
}

MethodOptions NetworkInterfaceBase::rx_sensitivity() {
  MethodOptions opts;
  for (auto& ch : rx_channels_) {
    opts.sensitivity.push_back(&ch.fifo->not_full_event());
  }
  opts.sensitivity.push_back(&from_router_.data_written_event());
  return opts;
}

// ---------------------------------------------------------------------
// SmartNetworkInterface
// ---------------------------------------------------------------------

void SmartNetworkInterface::elaborate() {
  elaborated_ = true;
  if (!tx_channels_.empty()) {
    method("tx", [this] { tx_step(); }, tx_sensitivity());
  }
  if (!rx_channels_.empty()) {
    method("rx", [this] { rx_step(); }, rx_sensitivity());
  }
}

void SmartNetworkInterface::tx_step() {
  SyncDomain& domain = kernel().current_domain();
  // Resume the production front: the method's offset restarts at zero each
  // activation, but the pipeline may be ahead of the global date.
  domain.advance_local_to(tx_date_);
  for (;;) {
    if (tx_pending_.has_value()) {
      // A fully assembled packet waits for injection at its real date.
      if (kernel().now() < tx_pending_date_) {
        tx_date_ = domain.local_time_stamp();
        kernel().next_trigger(tx_pending_date_ - kernel().now());
        return;
      }
      if (to_router_.full()) {
        tx_date_ = domain.local_time_stamp();
        return;  // woken by to_router_ data_read
      }
      tx_pending_->injected_at = tx_pending_date_;
      words_sent_ += tx_pending_->size_words();
      packets_sent_++;
      to_router_.nb_write(std::move(*tx_pending_));
      tx_pending_.reset();
      continue;
    }
    if (!tx_assembling_.has_value()) {
      // Round-robin arbitration among the incoming streams.
      for (std::size_t n = 0; n < tx_channels_.size(); ++n) {
        const std::size_t c = (tx_rr_next_ + n) % tx_channels_.size();
        if (!tx_channels_[c].fifo->is_empty()) {
          tx_assembling_ = c;
          tx_rr_next_ = (c + 1) % tx_channels_.size();
          break;
        }
      }
      if (!tx_assembling_.has_value()) {
        tx_date_ = domain.local_time_stamp();
        return;  // woken by any channel's not_empty
      }
    }
    TxChannelConfig& ch = tx_channels_[*tx_assembling_];
    while (tx_partial_.size() < ch.packet_words) {
      if (ch.fifo->is_empty()) {
        // Head-of-line: keep assembling this packet once data arrives.
        tx_date_ = domain.local_time_stamp();
        return;
      }
      tx_partial_.push_back(ch.fifo->read());
      domain.inc(ch.per_word);  // packetization cost, inside the activation
    }
    Packet packet;
    packet.src = id_;
    packet.dest = ch.dest;
    packet.channel = ch.dest_channel;
    packet.words = std::move(tx_partial_);
    tx_partial_.clear();
    tx_pending_ = std::move(packet);
    tx_pending_date_ = domain.local_time_stamp();
    tx_assembling_.reset();
  }
}

void SmartNetworkInterface::rx_step() {
  SyncDomain& domain = kernel().current_domain();
  domain.advance_local_to(rx_date_);
  for (;;) {
    if (!rx_packet_.has_value()) {
      // Only accept the next packet once the previous one has really been
      // delivered: popping early would release link backpressure too soon.
      if (kernel().now() < rx_date_) {
        kernel().next_trigger(rx_date_ - kernel().now());
        return;
      }
      if (from_router_.empty()) {
        return;  // woken by from_router_ data_written
      }
      Packet packet;
      from_router_.nb_read(packet);
      if (packet.channel >= rx_channels_.size()) {
        Report::error("NetworkInterface " + full_name() +
                      ": packet for unknown channel " +
                      std::to_string(packet.channel));
      }
      account_rx(packet);
      rx_packet_ = std::move(packet);
      rx_word_index_ = 0;
    }
    RxChannelConfig& ch = rx_channels_[rx_packet_->channel];
    while (rx_word_index_ < rx_packet_->words.size()) {
      if (ch.fifo->is_full()) {
        rx_date_ = domain.local_time_stamp();
        return;  // woken by the channel's not_full
      }
      ch.fifo->write(rx_packet_->words[rx_word_index_++]);
      domain.inc(ch.per_word);
      words_received_++;
    }
    packets_received_++;
    rx_packet_.reset();
    rx_date_ = domain.local_time_stamp();
  }
}

// ---------------------------------------------------------------------
// SyncNetworkInterface
// ---------------------------------------------------------------------

void SyncNetworkInterface::elaborate() {
  elaborated_ = true;
  if (!tx_channels_.empty()) {
    method("tx", [this] { tx_step(); }, tx_sensitivity());
  }
  if (!rx_channels_.empty()) {
    method("rx", [this] { rx_step(); }, rx_sensitivity());
  }
}

void SyncNetworkInterface::tx_step() {
  // Fully synchronized: at most one word (or one injection) per
  // activation, paced to the production front with next_trigger.
  if (kernel().now() < tx_date_) {
    kernel().next_trigger(tx_date_ - kernel().now());
    return;
  }
  if (tx_pending_.has_value()) {
    if (kernel().now() < tx_pending_date_) {
      kernel().next_trigger(tx_pending_date_ - kernel().now());
      return;
    }
    if (to_router_.full()) {
      return;
    }
    tx_pending_->injected_at = tx_pending_date_;
    words_sent_ += tx_pending_->size_words();
    packets_sent_++;
    to_router_.nb_write(std::move(*tx_pending_));
    tx_pending_.reset();
    // Fall through: maybe a next word is already available now.
  }
  for (;;) {
    if (!tx_assembling_.has_value()) {
      for (std::size_t n = 0; n < tx_channels_.size(); ++n) {
        const std::size_t c = (tx_rr_next_ + n) % tx_channels_.size();
        if (!tx_channels_[c].fifo->is_empty()) {
          tx_assembling_ = c;
          tx_rr_next_ = (c + 1) % tx_channels_.size();
          break;
        }
      }
      if (!tx_assembling_.has_value()) {
        return;
      }
    }
    TxChannelConfig& ch = tx_channels_[*tx_assembling_];
    if (ch.fifo->is_empty()) {
      return;  // head-of-line wait for this channel
    }
    tx_partial_.push_back(ch.fifo->read());
    tx_date_ = kernel().now() + ch.per_word;
    if (tx_partial_.size() == ch.packet_words) {
      Packet packet;
      packet.src = id_;
      packet.dest = ch.dest;
      packet.channel = ch.dest_channel;
      packet.words = std::move(tx_partial_);
      tx_partial_.clear();
      tx_pending_ = std::move(packet);
      tx_pending_date_ = tx_date_;
      tx_assembling_.reset();
    }
    kernel().next_trigger(ch.per_word);  // pace to the next word
    return;
  }
}

void SyncNetworkInterface::rx_step() {
  if (kernel().now() < rx_date_) {
    kernel().next_trigger(rx_date_ - kernel().now());
    return;
  }
  if (!rx_packet_.has_value()) {
    if (from_router_.empty()) {
      return;
    }
    Packet packet;
    from_router_.nb_read(packet);
    if (packet.channel >= rx_channels_.size()) {
      Report::error("NetworkInterface " + full_name() +
                    ": packet for unknown channel " +
                    std::to_string(packet.channel));
    }
    account_rx(packet);
    rx_packet_ = std::move(packet);
    rx_word_index_ = 0;
  }
  RxChannelConfig& ch = rx_channels_[rx_packet_->channel];
  if (ch.fifo->is_full()) {
    return;  // woken by not_full
  }
  ch.fifo->write(rx_packet_->words[rx_word_index_++]);
  words_received_++;
  rx_date_ = kernel().now() + ch.per_word;
  if (rx_word_index_ == rx_packet_->words.size()) {
    packets_received_++;
    rx_packet_.reset();
  }
  kernel().next_trigger(ch.per_word);
  return;
}

}  // namespace tdsim::noc
