// fleet::Supervisor -- batched, interleaved, supervised scenario execution
// (see fleet/supervisor.h for the control-flow contract).
#include "fleet/supervisor.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace tdsim::fleet {

namespace {

/// A batch member's live state during the first attempt.
struct LiveRun {
  std::size_t index = 0;  ///< scenario index in the input vector
  std::unique_ptr<Kernel> kernel;
  bool failed = false;
  FailureReport failure;
};

/// Post-mortem for `kernel` after a caught exception: the kernel's own
/// structured report when it reached Failed, else a synthetic ModelError
/// (fork/replay/diverge threw before or outside run()).
FailureReport post_mortem(const Kernel* kernel, const std::exception& e) {
  if (kernel != nullptr && kernel->failure() != nullptr) {
    return *kernel->failure();
  }
  FailureReport report;
  report.kind = FailureKind::ModelError;
  report.message = e.what();
  return report;
}

}  // namespace

const char* to_string(ScenarioStatus status) {
  switch (status) {
    case ScenarioStatus::Completed:
      return "Completed";
    case ScenarioStatus::Retried:
      return "Retried";
    case ScenarioStatus::Quarantined:
      return "Quarantined";
  }
  return "?";
}

Supervisor::Supervisor(Snapshot snapshot, RetryPolicy retry,
                       FleetOptions fleet)
    : snapshot_(std::move(snapshot)), retry_(retry), fleet_(std::move(fleet)) {}

std::vector<ScenarioOutcome> Supervisor::run(
    const std::vector<ScenarioSpec>& scenarios,
    const CompletionFn& on_complete, const FailureFn& on_failure) {
  std::vector<ScenarioOutcome> outcomes(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    outcomes[i].name = scenarios[i].name;
  }

  const std::size_t batch_size = std::max<std::size_t>(1, fleet_.batch);
  for (std::size_t base = 0; base < scenarios.size(); base += batch_size) {
    const std::size_t end = std::min(scenarios.size(), base + batch_size);

    // --- First attempt: fork the whole batch, drive it interleaved. ---
    std::vector<LiveRun> batch;
    batch.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      LiveRun live;
      live.index = i;
      try {
        live.kernel = Kernel::fork(snapshot_, scenarios[i].fork);
        if (!scenarios[i].faults.empty()) {
          live.kernel->arm_faults(scenarios[i].faults);
        }
      } catch (const std::exception& e) {
        live.failed = true;
        live.failure = post_mortem(live.kernel.get(), e);
        if (on_failure) {
          on_failure(live.kernel.get(), scenarios[i], live.failure);
        }
        live.kernel.reset();
      }
      batch.push_back(std::move(live));
    }

    // One milestone at a time across the whole batch, so every member is
    // genuinely multiplexed on the shared Scheduler, then run each
    // survivor to completion. A member that fails is destroyed on the
    // spot and skipped for the remaining milestones.
    auto drive = [&](Time until) {
      for (LiveRun& live : batch) {
        if (live.failed) {
          continue;
        }
        try {
          live.kernel->run(
              RunOptions{.until = until,
                         .wall_limit_ms = fleet_.wall_limit_ms});
        } catch (const std::exception& e) {
          live.failed = true;
          live.failure = post_mortem(live.kernel.get(), e);
          if (on_failure) {
            on_failure(live.kernel.get(), scenarios[live.index],
                       live.failure);
          }
          live.kernel.reset();
        }
      }
    };
    for (Time window : fleet_.windows) {
      drive(window);
    }
    drive(Time::max());

    // --- Classify, complete, retry. Sequential retries run one at a
    // time, after the parallel batch has fully drained. ---
    for (LiveRun& live : batch) {
      const ScenarioSpec& spec = scenarios[live.index];
      ScenarioOutcome& outcome = outcomes[live.index];
      outcome.attempts = 1;
      if (!live.failed) {
        outcome.status = ScenarioStatus::Completed;
        if (on_complete) {
          on_complete(*live.kernel, spec, outcome);
        }
        live.kernel.reset();
        continue;
      }

      outcome.first_failure = live.failure;
      if (retry_.max_attempts <= 1) {
        outcome.status = ScenarioStatus::Quarantined;
        outcome.final_failure = std::move(live.failure);
        ++quarantined_;
        continue;
      }

      ForkOptions retry_fork = spec.fork;
      if (retry_.retry_sequential) {
        retry_fork.config.workers = 0;
      }
      ++retries_;
      outcome.attempts = 2;
      std::unique_ptr<Kernel> kernel;
      try {
        kernel = Kernel::fork(snapshot_, std::move(retry_fork));
        kernel->note_retry();
        if (!spec.faults.empty()) {
          kernel->arm_faults(spec.faults);
        }
        for (Time window : fleet_.windows) {
          kernel->run(RunOptions{.until = window,
                                 .wall_limit_ms = fleet_.wall_limit_ms});
        }
        kernel->run(RunOptions{.until = Time::max(),
                               .wall_limit_ms = fleet_.wall_limit_ms});
        outcome.status = ScenarioStatus::Retried;
        if (on_complete) {
          on_complete(*kernel, spec, outcome);
        }
      } catch (const std::exception& e) {
        outcome.status = ScenarioStatus::Quarantined;
        outcome.final_failure = post_mortem(kernel.get(), e);
        if (on_failure) {
          on_failure(kernel.get(), spec, *outcome.final_failure);
        }
        ++quarantined_;
      }
    }
  }
  return outcomes;
}

}  // namespace tdsim::fleet
