// 2D mesh of routers with local attachment points for network interfaces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/fifo.h"
#include "kernel/module.h"
#include "noc/packet.h"
#include "noc/router.h"

namespace tdsim::noc {

class Mesh : public Module {
 public:
  struct Config {
    std::uint16_t columns = 2;
    std::uint16_t rows = 2;
    /// Depth (in packets) of every link FIFO.
    std::size_t link_depth = 2;
    Router::Timing timing;
  };

  Mesh(Kernel& kernel, const std::string& name, Config config);

  /// Link carrying packets from node `id`'s network interface into the
  /// mesh, and out of the mesh towards it.
  Fifo<Packet>& local_in(NodeId id);
  Fifo<Packet>& local_out(NodeId id);

  Router& router(NodeId id);
  std::uint16_t columns() const { return config_.columns; }
  std::uint16_t rows() const { return config_.rows; }
  std::size_t node_count() const {
    return static_cast<std::size_t>(config_.columns) * config_.rows;
  }

  /// Total packets forwarded by all routers.
  std::uint64_t total_forwarded() const;

 private:
  Fifo<Packet>& make_link(const std::string& name);

  Config config_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Fifo<Packet>>> links_;
  std::vector<Fifo<Packet>*> local_in_;
  std::vector<Fifo<Packet>*> local_out_;
};

}  // namespace tdsim::noc
