// Side arbiters for the Smart FIFO (paper SIII: "if it is not the case in
// the design, then an arbiter must be added to ensure that two successive
// accesses on the same side cannot have decreasing local dates").
//
// The arbiter synchronizes each caller before forwarding the access: all
// arbitrated accesses then carry the global date, which is monotonic, so
// the side-ordering requirement holds for any number of client processes.
// The price is one context switch per arbitrated access -- decoupling
// cannot be preserved across an arbitration point without lookahead, which
// is exactly why the paper models heavy arbitration (NoC routers) with
// method processes instead.
#pragma once

#include "core/fifo_interface.h"
#include "kernel/domain_link.h"
#include "kernel/sync_domain.h"

namespace tdsim {

template <typename T>
class WriteArbiter {
 public:
  explicit WriteArbiter(FifoInterface<T>& target) : target_(target) {}

  /// Synchronizing write; safe from any number of thread processes. The
  /// caller may additionally be advanced to the date of the last access
  /// that went through this arbiter (queuing at the arbitration point):
  /// a previous client's access can carry a future date when the FIFO
  /// bumped it to a cell's freeing date.
  void write(T value) {
    SyncDomain& domain = current_sync_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::SyncPoint);
    domain.advance_local_to(last_date_);
    target_.write(std::move(value));
    last_date_ = domain.local_time_stamp();
  }

  bool is_full() {
    SyncDomain& domain = current_sync_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::SyncPoint);
    return target_.is_full();
  }

  Event& not_full_event() { return target_.not_full_event(); }

 private:
  FifoInterface<T>& target_;
  /// Arbitrated clients may span domains; last_date_ orders them all.
  DomainLink domain_link_{"write arbiter"};
  Time last_date_{};
};

template <typename T>
class ReadArbiter {
 public:
  explicit ReadArbiter(FifoInterface<T>& target) : target_(target) {}

  /// Synchronizing read; safe from any number of thread processes. As for
  /// WriteArbiter, the caller queues behind the last arbitrated access.
  T read() {
    SyncDomain& domain = current_sync_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::SyncPoint);
    domain.advance_local_to(last_date_);
    T value = target_.read();
    last_date_ = domain.local_time_stamp();
    return value;
  }

  bool is_empty() {
    SyncDomain& domain = current_sync_domain();
    domain_link_.touch(domain);
    domain.sync(SyncCause::SyncPoint);
    return target_.is_empty();
  }

  Event& not_empty_event() { return target_.not_empty_event(); }

 private:
  FifoInterface<T>& target_;
  /// Arbitrated clients may span domains; last_date_ orders them all.
  DomainLink domain_link_{"read arbiter"};
  Time last_date_{};
};

}  // namespace tdsim
