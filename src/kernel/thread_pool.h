// A minimal fixed-size worker-thread pool for the kernel's parallel
// evaluation rounds (see README "Parallel execution").
//
// The kernel submits one task per runnable concurrency group and then
// blocks on wait_idle() -- the synchronization horizon. The pool is
// deliberately dumb: no futures, no stealing, no priorities; determinism
// comes from the kernel's group scheduling, not from here. Tasks must not
// throw (the kernel routes simulation errors through
// GroupTask::exception).
//
// Tasks are a raw (function pointer, argument) pair rather than a
// std::function: the kernel submits every runnable group on every
// evaluation round, and a bare pair can never allocate or indirect through
// a type-erased callable on that path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tdsim {

class ThreadPool {
 public:
  /// A pool task: `fn(arg)`.
  using TaskFn = void (*)(void*);

  /// Spawns `threads` workers (0 is legal: submit() then runs inline).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues `fn(arg)` for execution on some worker.
  void submit(TaskFn fn, void* arg);

  /// Blocks until every submitted task has finished (the barrier the
  /// kernel's synchronization horizons are made of).
  void wait_idle();

 private:
  void worker_main();

  std::vector<std::thread> threads_;
  std::deque<std::pair<TaskFn, void*>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t busy_ = 0;
  bool shutdown_ = false;
};

}  // namespace tdsim
