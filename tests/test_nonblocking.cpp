// Non-blocking interfaces (paper SIII.B): is_empty / is_full external
// views, delayed not_empty / not_full notifications, and the guarded
// access pattern from method processes.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/kernel.h"
#include "trace/scenario.h"

namespace tdsim {
namespace {

using trace::Mode;
using trace::Scenario;
using trace::ScenarioEnv;

TEST(NonBlocking, IsEmptySeesFutureInsertionAsEmpty) {
  // A decoupled writer inserts with a future date; a synchronized observer
  // must still see the FIFO as empty until that date.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  std::vector<bool> empties;
  k.spawn_thread("writer", [&] {
    k.sync_domain().inc(30_ns);
    f.write(1);  // executes at global 0, dated 30
    k.wait(100_ns);
  });
  k.spawn_thread("observer", [&] {
    k.wait(10_ns);
    empties.push_back(f.is_empty());  // at 10: still empty for real
    k.wait(25_ns);
    empties.push_back(f.is_empty());  // at 35: data arrived at 30
  });
  k.run();
  EXPECT_EQ(empties, (std::vector<bool>{true, false}));
}

TEST(NonBlocking, IsFullSeesFutureFreeingAsFull) {
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  std::vector<bool> fulls;
  k.spawn_thread("writer", [&] { f.write(1); });
  k.spawn_thread("reader", [&] {
    k.wait_delta();
    k.sync_domain().inc(50_ns);
    (void)f.read();  // frees at 50, executes immediately
    k.wait(100_ns);
  });
  k.spawn_thread("observer", [&] {
    k.wait(10_ns);
    fulls.push_back(f.is_full());  // at 10: still full for real
    k.wait(50_ns);
    fulls.push_back(f.is_full());  // at 60: freed at 50
  });
  k.run();
  EXPECT_EQ(fulls, (std::vector<bool>{true, false}));
}

TEST(NonBlocking, IsEmptyConstantTimeViewTracksFirstBusyCell) {
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  k.spawn_thread("t", [&] {
    EXPECT_TRUE(f.is_empty());
    f.write(1);
    EXPECT_FALSE(f.is_empty());  // caller local date == insertion date
    (void)f.read();
    EXPECT_TRUE(f.is_empty());
  });
  k.run();
}

TEST(NonBlocking, NotEmptyNotificationDelayedToInsertionDate) {
  // Paper: "the notification is delayed until the insertion date of the
  // new first busy cell".
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  Time woken_at;
  k.spawn_thread("writer", [&] {
    k.sync_domain().inc(40_ns);
    f.write(1);  // executes at global 0
  });
  k.spawn_thread("waiter", [&] {
    k.wait(f.not_empty_event());
    woken_at = k.now();
    EXPECT_FALSE(f.is_empty());
  });
  k.run();
  EXPECT_EQ(woken_at, 40_ns);
}

TEST(NonBlocking, NotFullNotificationDelayedToFreeingDate) {
  Kernel k;
  SmartFifo<int> f(k, "f", 1);
  Time woken_at;
  k.spawn_thread("writer", [&] { f.write(1); });
  k.spawn_thread("reader", [&] {
    k.wait_delta();
    k.sync_domain().inc(35_ns);
    (void)f.read();  // frees at 35
  });
  k.spawn_thread("waiter", [&] {
    k.wait_delta();  // let the writer fill the FIFO first
    EXPECT_TRUE(f.is_full());
    k.wait(f.not_full_event());
    woken_at = k.now();
    EXPECT_FALSE(f.is_full());
  });
  k.run();
  EXPECT_EQ(woken_at, 35_ns);
}

TEST(NonBlocking, ReadExposingFutureCellSchedulesNotEmpty) {
  // Paper SIII.B notification case 2 for not_empty: a read leaves a next
  // busy cell whose insertion date is in the future.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  std::vector<Time> method_reads;
  // Reader is a method using the guarded pattern.
  Process* reader = nullptr;
  MethodOptions opts;
  opts.dont_initialize = false;
  reader = k.spawn_method("reader", [&] {
    if (f.is_empty()) {
      k.next_trigger(f.not_empty_event());
      return;
    }
    (void)f.read();
    method_reads.push_back(k.now());
    k.next_trigger(f.not_empty_event());
  });
  (void)reader;
  k.spawn_thread("writer", [&] {
    f.write(1);       // inserted at 0
    k.sync_domain().inc(25_ns);
    f.write(2);       // inserted at 25, executes at global 0
  });
  k.run();
  EXPECT_EQ(method_reads, (std::vector<Time>{Time{}, 25_ns}));
}

TEST(NonBlocking, MethodWriterGuardedByIsFull) {
  // A method process produces into the FIFO using is_full + not_full_event;
  // a decoupled thread consumes. Because the method advances its local
  // time *within* an activation (per-word latency), it must carry its own
  // date across activations -- a wake-up (e.g. a not_full notification for
  // a cell freed early) may arrive before its last access date, and Smart
  // FIFO sides require non-decreasing dates. This is the pattern the
  // paper's packetizing network interface relies on.
  Kernel k;
  SmartFifo<int> f(k, "f", 2);
  int next = 0;
  Time own_date;  // the method's production front
  constexpr int kCount = 10;
  std::vector<Time> read_dates;
  k.spawn_method("writer", [&] {
    k.sync_domain().advance_local_to(own_date);
    while (next < kCount) {
      if (f.is_full()) {
        k.next_trigger(f.not_full_event());
        own_date = k.sync_domain().local_time_stamp();
        return;
      }
      f.write(next++);
      k.sync_domain().inc(5_ns);  // per-word production latency inside the activation
    }
    own_date = k.sync_domain().local_time_stamp();
  });
  k.spawn_thread("reader", [&] {
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(f.read(), i);
      read_dates.push_back(k.sync_domain().local_time_stamp());
      k.sync_domain().inc(20_ns);
    }
  });
  k.run();
  ASSERT_EQ(read_dates.size(), static_cast<std::size_t>(kCount));
  EXPECT_EQ(next, kCount);
}

TEST(NonBlocking, MethodReaderDatesMatchReferenceAcrossModes) {
  // Dual-mode scenario: decoupled thread writer, method reader with the
  // guarded pattern. Trace equality proves the delayed notifications
  // reproduce the reference dates exactly.
  const Scenario scenario = [](ScenarioEnv& env) {
    auto& fifo = env.fifo("f", 3);
    env.kernel().spawn_thread("writer", [&env, &fifo] {
      for (int i = 0; i < 20; ++i) {
        fifo.write(i);
        env.log("wrote", static_cast<std::uint64_t>(i));
        env.delay(13_ns);
      }
    });
    // The counter outlives the elaboration scope via the shared_ptr bound
    // into the method's lambda.
    auto counter = std::make_shared<int>(0);
    env.kernel().spawn_method("reader", [&env, &fifo, counter] {
      while (*counter < 20) {
        if (fifo.is_empty()) {
          env.kernel().next_trigger(fifo.not_empty_event());
          return;
        }
        const int v = fifo.read();
        env.log("read", static_cast<std::uint64_t>(v));
        (*counter)++;
      }
    });
  };
  auto reference = trace::run_scenario(scenario, Mode::Reference);
  auto smart = trace::run_scenario(scenario, Mode::SmartDecoupled);
  auto diff = trace::compare_sorted(reference->recorder(), smart->recorder());
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(NonBlocking, ReadSideViewVersusMonitorView) {
  // The read-side is_empty() answers "is there data left for the reading
  // process", while the monitor get_size() reconstructs the real hardware
  // occupancy. After a decoupled reader consumed data ahead of real time,
  // the two legitimately disagree: the item is gone for the reader but
  // still occupies the real FIFO until the freeing date.
  Kernel k;
  SmartFifo<int> f(k, "f", 4);
  bool read_side_empty = false;
  std::size_t monitor_size = 0;
  k.spawn_thread("writer", [&] {
    k.sync_domain().inc(30_ns);
    f.write(1);  // inserted at 30, executes at global 0
  });
  k.spawn_thread("reader", [&] {
    k.sync_domain().inc(60_ns);
    (void)f.read();  // freed at 60, executes at global 0
    k.wait(100_ns);
  });
  k.spawn_thread("observer", [&] {
    k.wait(45_ns);  // between insertion (30) and freeing (60)
    read_side_empty = f.is_empty();
    monitor_size = f.get_size();
  });
  k.run(200_ns);
  EXPECT_TRUE(read_side_empty);   // nothing left to read
  EXPECT_EQ(monitor_size, 1u);    // but the real FIFO still holds the item
}

}  // namespace
}  // namespace tdsim
