#include "noc/mesh.h"

#include "kernel/report.h"

namespace tdsim::noc {

Mesh::Mesh(Kernel& kernel, const std::string& name, Config config)
    : Module(kernel, name), config_(config) {
  if (config_.columns == 0 || config_.rows == 0) {
    Report::error("Mesh " + full_name() + ": degenerate geometry");
  }
  const std::size_t nodes = node_count();
  routers_.reserve(nodes);
  local_in_.resize(nodes);
  local_out_.resize(nodes);
  for (std::uint16_t y = 0; y < config_.rows; ++y) {
    for (std::uint16_t x = 0; x < config_.columns; ++x) {
      routers_.push_back(std::make_unique<Router>(
          *this, "r" + std::to_string(x) + "_" + std::to_string(y), x, y,
          config_.columns, config_.rows, config_.timing));
    }
  }
  auto at = [&](std::uint16_t x, std::uint16_t y) -> Router& {
    return *routers_[static_cast<std::size_t>(y) * config_.columns + x];
  };
  // Neighbor links (one FIFO per direction).
  for (std::uint16_t y = 0; y < config_.rows; ++y) {
    for (std::uint16_t x = 0; x < config_.columns; ++x) {
      const std::string base =
          full_name() + ".l" + std::to_string(x) + "_" + std::to_string(y);
      if (x + 1 < config_.columns) {
        Fifo<Packet>& east = make_link(base + ".E");
        at(x, y).connect_output(Port::East, east);
        at(x + 1, y).connect_input(Port::West, east);
        Fifo<Packet>& west = make_link(base + ".Wrev");
        at(x + 1, y).connect_output(Port::West, west);
        at(x, y).connect_input(Port::East, west);
      }
      if (y + 1 < config_.rows) {
        Fifo<Packet>& south = make_link(base + ".S");
        at(x, y).connect_output(Port::South, south);
        at(x, y + 1).connect_input(Port::North, south);
        Fifo<Packet>& north = make_link(base + ".Nrev");
        at(x, y + 1).connect_output(Port::North, north);
        at(x, y).connect_input(Port::South, north);
      }
    }
  }
  // Local attachment links.
  for (std::size_t id = 0; id < nodes; ++id) {
    Fifo<Packet>& in = make_link(full_name() + ".local_in" +
                                 std::to_string(id));
    Fifo<Packet>& out = make_link(full_name() + ".local_out" +
                                  std::to_string(id));
    routers_[id]->connect_input(Port::Local, in);
    routers_[id]->connect_output(Port::Local, out);
    local_in_[id] = &in;
    local_out_[id] = &out;
  }
  for (auto& router : routers_) {
    router->elaborate();
  }
}

Fifo<Packet>& Mesh::make_link(const std::string& name) {
  links_.push_back(
      std::make_unique<Fifo<Packet>>(kernel(), name, config_.link_depth));
  return *links_.back();
}

Fifo<Packet>& Mesh::local_in(NodeId id) {
  return *local_in_.at(id);
}

Fifo<Packet>& Mesh::local_out(NodeId id) {
  return *local_out_.at(id);
}

Router& Mesh::router(NodeId id) {
  return *routers_.at(id);
}

std::uint64_t Mesh::total_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& router : routers_) {
    total += router->forwarded();
  }
  return total;
}

}  // namespace tdsim::noc
