// DMA engine: register programming, copy correctness, timing of the
// date-accurate completion, quantum decoupling of the copy loop, and
// misuse reporting.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "kernel/sync_domain.h"
#include "kernel/report.h"
#include "tlm/bus.h"
#include "tlm/dma.h"
#include "tlm/memory.h"

namespace tdsim {
namespace {

using tlm::Bus;
using tlm::DmaEngine;
using tlm::Memory;

constexpr std::uint64_t kMemBase = 0x1000;
constexpr std::uint64_t kDmaBase = 0x9000;

struct Fixture {
  Kernel kernel;
  Module top;
  Bus bus;
  Memory memory;
  DmaEngine dma;

  explicit Fixture(DmaEngine::Config config = {})
      : top(kernel, "top"),
        bus("bus", Time(2, TimeUnit::NS)),
        memory("mem", 4096, Time(1, TimeUnit::NS)),
        dma(top, "dma", config) {
    bus.map(kMemBase, memory.size(), memory);
    bus.map(kDmaBase, DmaEngine::kRegisterCount * 4, dma.registers());
    dma.socket().bind(bus);
  }

  void fill_source(std::size_t offset, std::size_t bytes) {
    std::iota(memory.backdoor() + offset, memory.backdoor() + offset + bytes,
              std::uint8_t{1});
  }

  bool copied_correctly(std::size_t src, std::size_t dst, std::size_t bytes) {
    return std::memcmp(memory.backdoor() + src, memory.backdoor() + dst,
                       bytes) == 0;
  }
};

TEST(Dma, CopiesABlock) {
  Fixture f;
  f.fill_source(0, 256);
  f.kernel.spawn_thread("sw", [&] {
    f.dma.start(kMemBase + 0, kMemBase + 1024, 256);
  });
  f.kernel.run();
  EXPECT_TRUE(f.copied_correctly(0, 1024, 256));
  EXPECT_EQ(f.dma.words_copied(), 64u);
  EXPECT_EQ(f.dma.transfers_completed(), 1u);
  EXPECT_EQ(f.dma.registers().peek(DmaEngine::kStatus), DmaEngine::kDone);
}

TEST(Dma, ProgrammableThroughTheBus) {
  // Software programs the engine exactly as the control core programs
  // accelerators: decoupled register writes through the bus.
  Fixture f;
  f.fill_source(0, 64);
  f.kernel.set_global_quantum(Time(1, TimeUnit::US));
  tlm::InitiatorSocket cpu("cpu");
  cpu.bind(f.bus);
  f.kernel.spawn_thread("sw", [&] {
    cpu.write32(kDmaBase + DmaEngine::kSrc * 4,
                static_cast<std::uint32_t>(kMemBase));
    cpu.write32(kDmaBase + DmaEngine::kDst * 4,
                static_cast<std::uint32_t>(kMemBase + 512));
    cpu.write32(kDmaBase + DmaEngine::kLen * 4, 64);
    cpu.write32(kDmaBase + DmaEngine::kCtrl * 4, 1);
    // Poll for completion.
    while (cpu.read32(kDmaBase + DmaEngine::kStatus * 4) != DmaEngine::kDone) {
      f.kernel.sync_domain().inc(Time(100, TimeUnit::NS));
      f.kernel.sync_domain().sync();
    }
  });
  f.kernel.run();
  EXPECT_TRUE(f.copied_correctly(0, 512, 64));
}

TEST(Dma, CompletionDateScalesWithLength) {
  const auto run_len = [](std::uint32_t bytes) {
    Fixture f;
    f.fill_source(0, bytes);
    Time done_date;
    f.kernel.spawn_thread("sw", [&] {
      f.dma.start(kMemBase, kMemBase + 2048, bytes);
    });
    f.kernel.spawn_thread("observer", [&] {
      tdsim::wait(f.dma.done_event());
      done_date = sim_time_stamp();
    });
    f.kernel.run();
    return done_date;
  };
  const Time d64 = run_len(64);
  const Time d256 = run_len(256);
  ASSERT_GT(d64, Time{});
  // 4x the words: roughly 4x the date (within the constant start offset).
  EXPECT_GT(d256, d64 * 3);
  EXPECT_LT(d256, d64 * 5);
}

TEST(Dma, StartDateIsTheProgrammersLocalDate) {
  // A decoupled programmer starts the engine at local date 300 ns without
  // synchronizing; the copy timing must begin there (timestamped hand-off).
  Fixture f;
  f.fill_source(0, 4);
  Time done_date;
  f.kernel.spawn_thread("sw", [&] {
    f.kernel.sync_domain().inc(Time(300, TimeUnit::NS));
    f.dma.start(kMemBase, kMemBase + 512, 4);
  });
  f.kernel.spawn_thread("observer", [&] {
    tdsim::wait(f.dma.done_event());
    done_date = sim_time_stamp();
  });
  f.kernel.run();
  EXPECT_GE(done_date, Time(300, TimeUnit::NS));
}

TEST(Dma, QuantumBoundsTheEnginesRunAhead) {
  // With a small quantum the engine syncs often (many context switches);
  // with a large one it runs ahead (few). Timing of the completion is
  // unchanged -- the sync before raising done keeps it date-accurate.
  const auto run_quantum = [](Time quantum) {
    Fixture f;
    f.fill_source(0, 1024);
    f.kernel.set_global_quantum(quantum);
    Time done_date;
    f.kernel.spawn_thread("sw", [&] {
      f.dma.start(kMemBase, kMemBase + 2048, 1024);
    });
    f.kernel.spawn_thread("observer", [&] {
      tdsim::wait(f.dma.done_event());
      done_date = sim_time_stamp();
    });
    f.kernel.run();
    return std::pair(done_date, f.kernel.stats().context_switches);
  };
  const auto [date_small, switches_small] =
      run_quantum(Time(20, TimeUnit::NS));
  const auto [date_large, switches_large] = run_quantum(Time(1, TimeUnit::MS));
  EXPECT_EQ(date_small, date_large);
  EXPECT_LT(switches_large, switches_small / 4);
}

TEST(Dma, RejectsUnalignedLength) {
  Fixture f;
  f.kernel.spawn_thread("sw", [&] { f.dma.start(kMemBase, kMemBase + 64, 6); });
  EXPECT_THROW(f.kernel.run(), SimulationError);
}

TEST(Dma, RejectsStartWhileBusy) {
  Fixture f;
  f.fill_source(0, 1024);
  f.kernel.spawn_thread("sw", [&] {
    f.dma.start(kMemBase, kMemBase + 2048, 1024);
    tdsim::wait(Time(1, TimeUnit::NS));  // engine is now mid-copy
    f.dma.start(kMemBase, kMemBase + 2048, 4);
  });
  EXPECT_THROW(f.kernel.run(), SimulationError);
}

TEST(Dma, RejectsOutOfRangeTransfer) {
  Fixture f;
  f.kernel.spawn_thread("sw", [&] {
    f.dma.start(0xDEAD0000, kMemBase, 16);  // unmapped source
  });
  EXPECT_THROW(f.kernel.run(), SimulationError);
}

TEST(Dma, BackToBackTransfers) {
  Fixture f;
  f.fill_source(0, 128);
  f.kernel.spawn_thread("sw", [&] {
    f.dma.start(kMemBase, kMemBase + 1024, 128);
    tdsim::wait(f.dma.done_event());
    f.dma.start(kMemBase + 1024, kMemBase + 2048, 128);
    tdsim::wait(f.dma.done_event());
  });
  f.kernel.run();
  EXPECT_TRUE(f.copied_correctly(0, 2048, 128));
  EXPECT_EQ(f.dma.transfers_completed(), 2u);
}

}  // namespace
}  // namespace tdsim
