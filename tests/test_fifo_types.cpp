// Payload-type robustness of the FIFO channels: move-only types must move
// (never copy), non-trivial types must destruct correctly, and the Smart
// FIFO's cell recycling must not resurrect stale payloads.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "core/sync_fifo.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

TEST(FifoTypes, SmartFifoCarriesMoveOnlyPayloads) {
  Kernel kernel;
  SmartFifo<std::unique_ptr<int>> fifo(kernel, "fifo", 2);
  int sum = 0;
  kernel.spawn_thread("producer", [&] {
    for (int i = 1; i <= 5; ++i) {
      fifo.write(std::make_unique<int>(i));
      kernel.sync_domain().inc(10_ns);
    }
  });
  kernel.spawn_thread("consumer", [&] {
    for (int i = 0; i < 5; ++i) {
      std::unique_ptr<int> p = fifo.read();
      ASSERT_NE(p, nullptr);
      sum += *p;
      kernel.sync_domain().inc(15_ns);
    }
  });
  kernel.run();
  EXPECT_EQ(sum, 15);
}

TEST(FifoTypes, RegularFifoCarriesMoveOnlyPayloads) {
  Kernel kernel;
  Fifo<std::unique_ptr<std::string>> fifo(kernel, "fifo", 1);
  std::string got;
  kernel.spawn_thread("producer", [&] {
    fifo.write(std::make_unique<std::string>("hello"));
  });
  kernel.spawn_thread("consumer", [&] { got = *fifo.read(); });
  kernel.run();
  EXPECT_EQ(got, "hello");
}

/// Counts copies/moves to prove the hot path never copies.
struct Tracked {
  static int copies;
  static int moves;
  int value = 0;

  Tracked() = default;
  explicit Tracked(int v) : value(v) {}
  Tracked(const Tracked& o) : value(o.value) { copies++; }
  Tracked& operator=(const Tracked& o) {
    value = o.value;
    copies++;
    return *this;
  }
  Tracked(Tracked&& o) noexcept : value(o.value) { moves++; }
  Tracked& operator=(Tracked&& o) noexcept {
    value = o.value;
    moves++;
    return *this;
  }
};
int Tracked::copies = 0;
int Tracked::moves = 0;

TEST(FifoTypes, SmartFifoMovesNotCopies) {
  Tracked::copies = 0;
  Tracked::moves = 0;
  Kernel kernel;
  SmartFifo<Tracked> fifo(kernel, "fifo", 4);
  kernel.spawn_thread("producer", [&] {
    for (int i = 0; i < 10; ++i) {
      fifo.write(Tracked(i));
      kernel.sync_domain().inc(1_ns);
    }
  });
  kernel.spawn_thread("consumer", [&] {
    int sum = 0;
    for (int i = 0; i < 10; ++i) {
      sum += fifo.read().value;
      kernel.sync_domain().inc(1_ns);
    }
    EXPECT_EQ(sum, 45);
  });
  kernel.run();
  EXPECT_EQ(Tracked::copies, 0);
  EXPECT_GT(Tracked::moves, 0);
}

TEST(FifoTypes, CellRecyclingDoesNotResurrectStalePayloads) {
  // After a cell is freed and refilled, the old shared_ptr must have been
  // released (moved out on read), not retained by the ring.
  Kernel kernel;
  SmartFifo<std::shared_ptr<int>> fifo(kernel, "fifo", 2);
  std::weak_ptr<int> first;
  kernel.spawn_thread("producer", [&] {
    auto p = std::make_shared<int>(1);
    first = p;
    fifo.write(std::move(p));
    for (int i = 2; i <= 6; ++i) {
      fifo.write(std::make_shared<int>(i));
      kernel.sync_domain().inc(5_ns);
    }
  });
  kernel.spawn_thread("consumer", [&] {
    for (int i = 0; i < 6; ++i) {
      auto p = fifo.read();
      p.reset();
      kernel.sync_domain().inc(5_ns);
    }
    // All payloads consumed and dropped: nothing may keep #1 alive.
    EXPECT_TRUE(first.expired());
  });
  kernel.run();
}

TEST(FifoTypes, LargePayloadStructs) {
  struct Block {
    std::array<std::uint64_t, 64> words{};
  };
  Kernel kernel;
  SmartFifo<Block> fifo(kernel, "fifo", 2);
  std::uint64_t sum = 0;
  kernel.spawn_thread("producer", [&] {
    for (int b = 0; b < 4; ++b) {
      Block block;
      for (std::size_t w = 0; w < block.words.size(); ++w) {
        block.words[w] = b * 1000 + w;
      }
      fifo.write(block);
      kernel.sync_domain().inc(3_ns);
    }
  });
  kernel.spawn_thread("consumer", [&] {
    for (int b = 0; b < 4; ++b) {
      const Block block = fifo.read();
      for (std::uint64_t w : block.words) {
        sum += w;
      }
      kernel.sync_domain().inc(3_ns);
    }
  });
  kernel.run();
  std::uint64_t expect = 0;
  for (int b = 0; b < 4; ++b) {
    for (std::size_t w = 0; w < 64; ++w) {
      expect += b * 1000 + w;
    }
  }
  EXPECT_EQ(sum, expect);
}

}  // namespace
}  // namespace tdsim
