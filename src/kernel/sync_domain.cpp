#include "kernel/sync_domain.h"

#include "kernel/kernel.h"
#include "kernel/local_clock.h"
#include "kernel/process.h"
#include "kernel/report.h"

namespace tdsim {

bool SyncDomain::quantum_exceeded(const LocalClock& clock) const {
  if (quantum_.is_zero()) {
    // A zero quantum means "synchronize at every annotation", matching the
    // paper's remark that decoupling can be disabled by setting it to zero.
    return true;
  }
  return clock.offset() >= quantum_;
}

LocalClock& SyncDomain::current_clock() const {
  Process* p = kernel_.current_process();
  if (p == nullptr) {
    Report::error("temporal decoupling used outside of a simulation process");
  }
  return p->clock();
}

Time SyncDomain::local_time_stamp() const {
  Process* p = kernel_.current_process();
  // From the scheduler context (e.g. callbacks), the local date degenerates
  // to the global date.
  return p != nullptr ? p->clock().now() : kernel_.now();
}

Time SyncDomain::local_offset() const {
  return current_clock().offset();
}

void SyncDomain::inc(Time duration) {
  current_clock().inc(duration);
}

void SyncDomain::advance_local_to(Time date) {
  current_clock().advance_to(date);
}

void SyncDomain::sync(SyncCause cause) {
  perform_sync(current_clock(), cause);
}

void SyncDomain::inc_and_sync_if_needed(Time duration, SyncCause cause) {
  LocalClock& clock = current_clock();
  clock.inc(duration);
  if (quantum_exceeded(clock)) {
    perform_sync(clock, cause);
  }
}

bool SyncDomain::is_synchronized() const {
  return current_clock().is_synchronized();
}

bool SyncDomain::needs_sync() const {
  return quantum_exceeded(current_clock());
}

void SyncDomain::method_sync_trigger(SyncCause cause) {
  perform_method_rearm(current_clock(), cause);
}

Time SyncDomain::local_time_of(const Process& process) const {
  return process.clock().now();
}

std::uint64_t SyncDomain::syncs(SyncCause cause) const {
  return kernel_.stats().syncs(cause);
}

std::uint64_t SyncDomain::syncs_performed() const {
  return kernel_.stats().syncs_performed();
}

std::uint64_t SyncDomain::syncs_elided() const {
  return kernel_.stats().syncs_elided;
}

void SyncDomain::perform_sync(LocalClock& clock, SyncCause cause) {
  Process& p = clock.owner();
  // Suspension acts on the currently executing process, so only the owner
  // may sync its own clock; anything else would clear one process's offset
  // while suspending another.
  if (kernel_.current_process() != &p) {
    Report::error("sync() invoked on the clock of process '" + p.name() +
                  "', which is not the currently executing process");
  }
  KernelStats& stats = kernel_.stats_;
  stats.sync_requests++;
  const Time offset = clock.offset();
  if (offset.is_zero()) {
    stats.syncs_elided++;
    return;
  }
  if (p.kind() == ProcessKind::Method) {
    Report::error("sync() called from method process '" + p.name() +
                  "' with a non-zero local offset; use "
                  "method_sync_trigger() instead");
  }
  stats.syncs_by_cause[static_cast<std::size_t>(cause)]++;
  clock.set_offset(Time{});
  kernel_.wait(offset);
}

void SyncDomain::perform_method_rearm(LocalClock& clock, SyncCause cause) {
  Process& p = clock.owner();
  if (p.kind() != ProcessKind::Method) {
    Report::error("method_sync_trigger() called from non-method process '" +
                  p.name() + "'");
  }
  if (kernel_.current_process() != &p) {
    Report::error("method_sync_trigger() invoked on the clock of process '" +
                  p.name() + "', which is not the currently executing process");
  }
  KernelStats& stats = kernel_.stats_;
  // A re-arm is a performed synchronization request (never elided), so it
  // counts on both sides of the requests == performed + elided invariant.
  stats.sync_requests++;
  stats.method_rearms++;
  stats.syncs_by_cause[static_cast<std::size_t>(cause)]++;
  // next_trigger bumps the process's wake generation, so a previously
  // scheduled re-arm or timeout for this method can never fire stale.
  kernel_.next_trigger(clock.offset());
}

SyncDomain& current_sync_domain() {
  Kernel* k = Kernel::current();
  if (k == nullptr) {
    Report::error("temporal decoupling used outside of a running kernel");
  }
  return k->sync_domain();
}

// --------------------------------------------------------------------------
// QuantumKeeper
// --------------------------------------------------------------------------

SyncDomain& QuantumKeeper::domain() const {
  return kernel_.sync_domain();
}

void QuantumKeeper::inc(Time duration) {
  domain().inc(duration);
}

Time QuantumKeeper::local_time() const {
  return domain().local_time_stamp();
}

bool QuantumKeeper::need_sync() const {
  return domain().needs_sync();
}

void QuantumKeeper::sync() {
  domain().sync(SyncCause::Quantum);
}

void QuantumKeeper::inc_and_sync_if_needed(Time duration) {
  domain().inc_and_sync_if_needed(duration, SyncCause::Quantum);
}

}  // namespace tdsim
