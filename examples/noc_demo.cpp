// Stream NoC demo: six word streams crossing a 3x3 mesh through
// packetizing network interfaces (paper SIV.C architecture).
//
// Producers and sinks are temporally decoupled threads on Smart FIFOs; the
// network interfaces are the paper's decoupled method processes ("without
// any SC_THREAD"); the routers are plain synchronized methods with regular
// FIFOs -- the exact division of modeling styles the case study describes.
//
// Build & run:  ./examples/noc_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "kernel/sync_domain.h"
#include "core/smart_fifo.h"
#include "kernel/module.h"
#include "noc/mesh.h"
#include "noc/network_interface.h"

using namespace tdsim;
using namespace tdsim::time_literals;
namespace noc = tdsim::noc;

int main() {
  constexpr std::size_t kWords = 4096;
  constexpr std::size_t kPacketWords = 16;
  constexpr std::size_t kDepth = 32;
  // (source node, destination node) pairs crossing the 3x3 mesh.
  const std::vector<std::pair<noc::NodeId, noc::NodeId>> streams = {
      {0, 8}, {8, 0}, {2, 6}, {6, 2}, {4, 1}, {3, 5}};

  Kernel kernel;
  Module top(kernel, "demo");

  noc::Mesh::Config mesh_config;
  mesh_config.columns = 3;
  mesh_config.rows = 3;
  noc::Mesh mesh(kernel, "demo.noc", mesh_config);

  std::vector<std::unique_ptr<noc::SmartNetworkInterface>> nis;
  for (noc::NodeId n = 0; n < mesh.node_count(); ++n) {
    nis.push_back(std::make_unique<noc::SmartNetworkInterface>(
        top, "ni" + std::to_string(n), n, mesh.local_in(n),
        mesh.local_out(n)));
  }

  std::vector<std::unique_ptr<SmartFifo<std::uint32_t>>> fifos;
  const auto make_fifo = [&](const std::string& name) -> auto& {
    fifos.push_back(
        std::make_unique<SmartFifo<std::uint32_t>>(kernel, name, kDepth));
    return *fifos.back();
  };

  std::vector<std::uint64_t> received(streams.size(), 0);
  std::vector<bool> in_order(streams.size(), true);

  for (std::size_t s = 0; s < streams.size(); ++s) {
    const auto [src, dst] = streams[s];
    auto& to_ni = make_fifo("demo.s" + std::to_string(s) + ".tx");
    auto& from_ni = make_fifo("demo.s" + std::to_string(s) + ".rx");

    noc::RxChannelConfig rx;
    rx.fifo = &from_ni;
    rx.per_word = 1_ns;
    const noc::ChannelId channel = nis[dst]->add_rx_channel(rx);

    noc::TxChannelConfig tx;
    tx.fifo = &to_ni;
    tx.dest = dst;
    tx.dest_channel = channel;
    tx.packet_words = kPacketWords;
    tx.per_word = 1_ns;
    nis[src]->add_tx_channel(tx);

    kernel.spawn_thread("producer" + std::to_string(s), [&kernel, &to_ni, s] {
      for (std::size_t i = 0; i < kWords; ++i) {
        kernel.sync_domain().inc(2_ns);
        to_ni.write(static_cast<std::uint32_t>(s << 16 | i));
      }
    });
    kernel.spawn_thread("sink" + std::to_string(s), [&kernel, &from_ni,
                                                     &received, &in_order, s] {
      for (std::size_t i = 0; i < kWords; ++i) {
        const std::uint32_t word = from_ni.read();
        kernel.sync_domain().inc(2_ns);
        if (word != static_cast<std::uint32_t>(s << 16 | i)) {
          in_order[s] = false;
        }
        received[s]++;
      }
    });
  }

  for (auto& ni : nis) {
    ni->elaborate();
  }

  kernel.run();

  std::printf("%8s %5s %7s %9s %22s\n", "stream", "path", "words",
              "in-order", "rx latency min/avg/max");
  bool ok = true;
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const auto& latency = nis[streams[s].second]->rx_latency();
    std::printf("%8zu %2u->%-2u %7llu %9s %6s /%6s /%6s\n", s,
                streams[s].first, streams[s].second,
                static_cast<unsigned long long>(received[s]),
                in_order[s] ? "yes" : "NO",
                latency.min.to_string().c_str(),
                latency.mean().to_string().c_str(),
                latency.max.to_string().c_str());
    ok = ok && in_order[s] && received[s] == kWords;
  }

  std::uint64_t forwarded = mesh.total_forwarded();
  std::printf("\nfinished at %s; routers forwarded %llu packets, "
              "%llu method activations, %llu context switches\n",
              kernel.now().to_string().c_str(),
              static_cast<unsigned long long>(forwarded),
              static_cast<unsigned long long>(
                  kernel.stats().method_activations),
              static_cast<unsigned long long>(
                  kernel.stats().context_switches));
  return ok ? 0 : 1;
}
