// The trace recorder and its date-reordered comparison -- the measuring
// instrument of the paper's SIV.A validation protocol, tested directly.
#include <gtest/gtest.h>

#include "kernel/sync_domain.h"
#include "kernel/kernel.h"
#include "trace/trace.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;
using trace::Recorder;

TEST(TraceRecorder, StampsLocalDateAndProcessName) {
  Kernel kernel;
  Recorder recorder(kernel);
  kernel.spawn_thread("worker", [&] {
    kernel.sync_domain().inc(42_ns);
    recorder.record("hello");
  });
  kernel.run();
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.entries()[0].date, Time(42, TimeUnit::NS));
  EXPECT_EQ(recorder.entries()[0].process, "worker");
  EXPECT_EQ(recorder.entries()[0].text, "hello");
}

TEST(TraceRecorder, TagValueHelper) {
  Kernel kernel;
  Recorder recorder(kernel);
  kernel.spawn_thread("w", [&] { recorder.record("level", 7); });
  kernel.run();
  EXPECT_EQ(recorder.entries()[0].text, "level=7");
}

TEST(TraceRecorder, LinesKeepEmissionOrderSortedLinesReorderByDate) {
  // With decoupling, dates may decrease when the scheduler switches
  // process; lines() shows that, sorted_lines() repairs it.
  Kernel kernel;
  Recorder recorder(kernel);
  kernel.spawn_thread("ahead", [&] {
    kernel.sync_domain().inc(100_ns);
    recorder.record("late event");
  });
  kernel.spawn_thread("behind", [&] {
    kernel.sync_domain().inc(10_ns);
    recorder.record("early event");
  });
  kernel.run();

  const auto raw = recorder.lines();
  const auto sorted = recorder.sorted_lines();
  ASSERT_EQ(raw.size(), 2u);
  // Emission order: "ahead" ran first (spawn order) with the later date.
  EXPECT_NE(raw[0].find("late"), std::string::npos);
  EXPECT_NE(sorted[0].find("early"), std::string::npos);
}

TEST(TraceRecorder, CompareSortedAcceptsReorderedEqualTraces) {
  // Two runs recording the same (date, process, text) set in different
  // orders must compare equal -- the paper's acceptance criterion.
  Kernel k1, k2;
  Recorder a(k1), b(k2);
  k1.spawn_thread("p", [&] {
    k1.sync_domain().inc(5_ns);
    a.record("x");
    k1.sync_domain().inc(5_ns);
    a.record("y");
  });
  k2.spawn_thread("q", [&] {
    k2.sync_domain().inc(10_ns);
    b.record("y");
  });
  k2.spawn_thread("p", [&] {
    k2.sync_domain().inc(5_ns);
    b.record("x");
  });
  k1.run();
  k2.run();
  // Process names differ for "y" (p vs q) -> traces differ.
  EXPECT_TRUE(trace::compare_sorted(a, b).has_value());
}

TEST(TraceRecorder, CompareSortedReportsFirstDivergence) {
  Kernel k1, k2;
  Recorder a(k1), b(k2);
  k1.spawn_thread("p", [&] {
    a.record("same");
    k1.sync_domain().inc(3_ns);
    a.record("differs here");
  });
  k2.spawn_thread("p", [&] {
    b.record("same");
    k2.sync_domain().inc(3_ns);
    b.record("differs THERE");
  });
  k1.run();
  k2.run();
  const auto diff = trace::compare_sorted(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("differs"), std::string::npos);
}

TEST(TraceRecorder, CompareSortedDetectsLengthMismatch) {
  Kernel k1, k2;
  Recorder a(k1), b(k2);
  k1.spawn_thread("p", [&] { a.record("only one"); });
  k2.spawn_thread("p", [&] {
    b.record("only one");
    b.record("and another");
  });
  k1.run();
  k2.run();
  EXPECT_TRUE(trace::compare_sorted(a, b).has_value());
}

TEST(TraceRecorder, IdenticalRunsCompareEqual) {
  const auto run = [](Recorder*& out, Kernel& kernel) {
    out = new Recorder(kernel);
    Recorder& recorder = *out;
    kernel.spawn_thread("p", [&recorder, &kernel] {
      for (int i = 0; i < 5; ++i) {
        kernel.sync_domain().inc(7_ns);
        recorder.record("tick", static_cast<std::uint64_t>(i));
      }
    });
    kernel.run();
  };
  Kernel k1, k2;
  Recorder *a = nullptr, *b = nullptr;
  run(a, k1);
  run(b, k2);
  EXPECT_FALSE(trace::compare_sorted(*a, *b).has_value());
  delete a;
  delete b;
}

TEST(TraceRecorder, RecordOutsideProcessUsesEmptyName) {
  Kernel kernel;
  Recorder recorder(kernel);
  recorder.record("elaboration note");  // before run(), no current process
  kernel.run();
  ASSERT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.entries()[0].process, "");
}

}  // namespace
}  // namespace tdsim
