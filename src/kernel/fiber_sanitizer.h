// AddressSanitizer fiber annotations for the ucontext-based stackful
// processes. ASan tracks one stack per OS thread; every swapcontext between
// the scheduler stack and a process stack must be bracketed with
// __sanitizer_start_switch_fiber / __sanitizer_finish_switch_fiber or ASan
// corrupts its shadow on the first throw/no-return inside a fiber. The
// helpers compile to nothing outside ASan builds.
//
// Switch protocol (all tdsim switches are scheduler <-> fiber, never
// fiber <-> fiber):
//   * before swapcontext: start_switch(&save, dest_bottom, dest_size);
//     pass save == nullptr when the departing stack is about to die (the
//     trampoline's final switch), so ASan frees its fake stack.
//   * right after resuming on the destination stack:
//     finish_switch(save_of_that_stack, &old_bottom, &old_size); the old
//     bounds are those of the stack we came from -- the fiber side uses
//     them to learn the scheduler stack's bounds.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define TDSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TDSIM_ASAN_FIBERS 1
#endif
#endif

#ifdef TDSIM_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace tdsim::fiber {

inline void start_switch(void** fake_stack_save, const void* dest_bottom,
                         std::size_t dest_size) {
#ifdef TDSIM_ASAN_FIBERS
  __sanitizer_start_switch_fiber(fake_stack_save, dest_bottom, dest_size);
#else
  (void)fake_stack_save;
  (void)dest_bottom;
  (void)dest_size;
#endif
}

inline void finish_switch(void* fake_stack_save, const void** old_bottom,
                          std::size_t* old_size) {
#ifdef TDSIM_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fake_stack_save, old_bottom, old_size);
#else
  (void)fake_stack_save;
  (void)old_bottom;
  (void)old_size;
#endif
}

}  // namespace tdsim::fiber
