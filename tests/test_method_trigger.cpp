// Method-process trigger semantics: the next_trigger override and its
// interaction with static sensitivity. These are the semantics the
// paper's network interfaces lean on ("Thanks to the possibility to use
// inc() in a SC_METHOD, we succeeded to model this module without any
// SC_THREAD"): a method paces itself with next_trigger(delay) some
// activations and falls back to its static FIFO events on others.
#include <gtest/gtest.h>

#include "kernel/sync_domain.h"
#include "kernel/event.h"
#include "kernel/kernel.h"

namespace tdsim {
namespace {

using namespace tdsim::time_literals;

TEST(MethodTrigger, StaticSensitivityResumesAfterTimedNextTrigger) {
  // Regression: a method that paces itself once with next_trigger(delay)
  // must hear its static sensitivity again afterwards. (The override is
  // consumed by the activation it causes.)
  Kernel kernel;
  Event data(kernel, "data");
  int activations = 0;
  MethodOptions opts;
  opts.sensitivity.push_back(&data);
  kernel.spawn_method(
      "m",
      [&] {
        activations++;
        if (activations == 1) {
          next_trigger(5_ns);  // initialization run paces itself once
        }
        // Activations 2+ rely on the static sensitivity.
      },
      opts);
  kernel.spawn_thread("stimulus", [&] {
    wait(20_ns);
    data.notify_delta();  // must reach the method
    wait(20_ns);
    data.notify_delta();
  });
  kernel.run();
  EXPECT_EQ(activations, 4);  // init + timer + two notifications
}

TEST(MethodTrigger, OverrideSuppressesStaticEventsUntilConsumed) {
  // While a next_trigger(delay) is armed, static events must NOT run the
  // method (SystemC override semantics).
  Kernel kernel;
  Event data(kernel, "data");
  std::vector<Time> activation_dates;
  MethodOptions opts;
  opts.sensitivity.push_back(&data);
  kernel.spawn_method(
      "m",
      [&] {
        activation_dates.push_back(kernel.now());
        if (activation_dates.size() == 1) {
          next_trigger(100_ns);
        }
      },
      opts);
  kernel.spawn_thread("stimulus", [&] {
    wait(30_ns);
    data.notify_delta();  // suppressed: override armed until 100 ns
  });
  kernel.run();
  ASSERT_EQ(activation_dates.size(), 2u);
  EXPECT_EQ(activation_dates[1], Time(100, TimeUnit::NS));
}

TEST(MethodTrigger, LastNextTriggerWins) {
  Kernel kernel;
  Event a(kernel, "a");
  Event b(kernel, "b");
  std::vector<std::string> log;
  kernel.spawn_method("m", [&] {
    if (log.empty()) {
      log.push_back("init");
      next_trigger(a);
      next_trigger(b);  // replaces the wait on a
    } else {
      log.push_back("woken@" + kernel.now().to_string());
    }
  });
  kernel.spawn_thread("stimulus", [&] {
    wait(10_ns);
    a.notify_delta();  // must be ignored (method re-armed onto b)
    wait(10_ns);
    b.notify_delta();
  });
  kernel.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "woken@20 ns");
}

TEST(MethodTrigger, EventOverridesPendingTimer) {
  Kernel kernel;
  Event a(kernel, "a");
  std::vector<Time> dates;
  kernel.spawn_method("m", [&] {
    dates.push_back(kernel.now());
    if (dates.size() == 1) {
      next_trigger(5_ns);
      next_trigger(a);  // cancels the 5 ns timer
    }
  });
  kernel.spawn_thread("stimulus", [&] {
    wait(50_ns);
    a.notify_delta();
  });
  kernel.run();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[1], Time(50, TimeUnit::NS));  // not 5 ns
}

TEST(MethodTrigger, TimerOverridesPendingEventWait) {
  Kernel kernel;
  Event a(kernel, "a");
  std::vector<Time> dates;
  kernel.spawn_method("m", [&] {
    dates.push_back(kernel.now());
    if (dates.size() == 1) {
      next_trigger(a);
      next_trigger(5_ns);  // replaces the event wait
    }
  });
  kernel.spawn_thread("stimulus", [&] {
    wait(2_ns);
    a.notify_delta();  // ignored
  });
  kernel.run();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[1], Time(5, TimeUnit::NS));
}

TEST(MethodTrigger, MethodLocalOffsetResetsEachActivation) {
  // dispatch_method starts every activation synchronized; inc() advances
  // the local date only within the activation (paper SIV.C usage).
  Kernel kernel;
  std::vector<Time> local_dates;
  std::uint64_t remaining = 3;
  kernel.spawn_method("m", [&] {
    EXPECT_TRUE(kernel.sync_domain().is_synchronized());
    kernel.sync_domain().inc(7_ns);
    local_dates.push_back(kernel.sync_domain().local_time_stamp());
    if (--remaining > 0) {
      next_trigger(10_ns);
    }
  });
  kernel.run();
  ASSERT_EQ(local_dates.size(), 3u);
  EXPECT_EQ(local_dates[0], Time(7, TimeUnit::NS));
  EXPECT_EQ(local_dates[1], Time(17, TimeUnit::NS));
  EXPECT_EQ(local_dates[2], Time(27, TimeUnit::NS));
}

TEST(MethodTrigger, MethodSyncTriggerReactivatesAtLocalDate) {
  // kernel.sync_domain().method_sync_trigger(): the method-process sync() -- re-run once
  // the global date reaches the method's local date.
  Kernel kernel;
  std::vector<Time> dates;
  bool first = true;
  kernel.spawn_method("m", [&] {
    dates.push_back(kernel.now());
    if (first) {
      first = false;
      kernel.sync_domain().inc(25_ns);
      kernel.sync_domain().method_sync_trigger();
    }
  });
  kernel.run();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_EQ(dates[1], Time(25, TimeUnit::NS));
}

TEST(MethodTrigger, SensitivityToMultipleEventsTriggersOnEach) {
  Kernel kernel;
  Event a(kernel, "a");
  Event b(kernel, "b");
  int activations = 0;
  MethodOptions opts;
  opts.sensitivity.push_back(&a);
  opts.sensitivity.push_back(&b);
  opts.dont_initialize = true;
  kernel.spawn_method("m", [&] { activations++; }, opts);
  kernel.spawn_thread("stimulus", [&] {
    wait(1_ns);
    a.notify_delta();
    wait(1_ns);
    b.notify_delta();
    wait(1_ns);
    a.notify_delta();
    b.notify_delta();  // same delta: one activation, not two
  });
  kernel.run();
  EXPECT_EQ(activations, 3);
}

TEST(MethodTrigger, DontInitializeMethodWaitsForSensitivity) {
  Kernel kernel;
  Event a(kernel, "a");
  int activations = 0;
  MethodOptions opts;
  opts.sensitivity.push_back(&a);
  opts.dont_initialize = true;
  kernel.spawn_method("m", [&] { activations++; }, opts);
  kernel.run();
  EXPECT_EQ(activations, 0);
}

}  // namespace
}  // namespace tdsim
