// The process-wide worker-thread scheduler behind every kernel's parallel
// execution (see README "Fleet / scheduler").
//
// Before PR 8 each Kernel owned a private ThreadPool, so N concurrently
// constructed kernels meant N pools' worth of OS threads -- untenable for
// the simulation-as-a-service model where thousands of cheap Kernel
// instances (scenario forks, parameter sweeps) multiplex over one machine.
// The Scheduler is the lifted pool: one process-wide singleton that every
// kernel registers with as a *client*, holding
//
//   * a per-client task queue (one task per runnable concurrency group,
//     submitted by that kernel's phase driver),
//   * a per-client worker *quota* -- the kernel's configured worker count
//     (KernelConfig::workers). At most quota-1 pool workers execute a
//     client's tasks at any moment; the client's own driving thread is the
//     quota's remaining slot (it steals its own tasks inside
//     help_until_done, exactly like the old pool's help_until_idle), so a
//     kernel configured for n workers never occupies more than n threads
//     even when the shared pool is larger;
//   * fair round-robin dispatch: idle workers scan clients starting after
//     the last client served, so a burst from one kernel cannot starve
//     the others' queues.
//
// The pool grows lazily to the largest quota any live client has declared
// (max over clients of quota-1 threads) and never shrinks; threads park on
// a condition variable when no client has eligible work, so an idle pool
// costs nothing but the parked threads.
//
// Determinism is unchanged from the per-kernel pool: which OS thread runs
// a task is timing-dependent, but tasks only touch their concurrency
// group's exclusive state and each kernel merges side effects in
// deterministic group order on its own driving thread at the horizon.
// That per-kernel guarantee composes: kernels share no simulation state,
// so N kernels multiplexed over one pool each produce bit-identical
// results to their solo runs (tests/test_scheduler.cpp enforces it, and
// bench_fleet's in-bench assertion rides on it).
//
// Tasks must not throw. Kernels uphold this by construction: both group
// execution paths (Kernel::execute_group_task and Kernel::free_run_group)
// wrap their entire body in a catch-all that captures into
// GroupTask::exception, and both horizon merges drain every task's
// buffers before rethrowing the first captured exception on the driving
// thread -- where it transitions that kernel (and only that kernel) to
// Health::Failed (see kernel/failure.h). A throwing task would otherwise
// unwind a worker every sibling kernel depends on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace tdsim {

class Scheduler {
 public:
  /// A scheduler task: `fn(arg)`. A raw pair, not a std::function --
  /// kernels submit every runnable group on every evaluation round, and a
  /// bare pair never allocates on that path.
  using TaskFn = void (*)(void*);

  /// Client handle; returned by register_client, passed to everything
  /// else.
  using ClientId = std::size_t;

  /// The process-wide instance. Constructed on first use, joined at
  /// process exit.
  static Scheduler& instance();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a client (one per Kernel) with the given worker quota.
  /// Slots are recycled, so churning kernels do not grow the table.
  ClientId register_client(std::size_t quota);

  /// Drops the client. Must not be called with tasks still queued or
  /// running (the owning kernel's horizons guarantee quiescence).
  void unregister_client(ClientId id);

  /// Updates the client's worker quota; the pool grows to match at the
  /// client's next dispatch. Kernels call this from set_workers during
  /// elaboration -- the quota is fixed while the client has work in
  /// flight.
  void set_client_quota(ClientId id, std::size_t quota);

  /// Enqueues `fn(arg)` on the client's queue. With a zero effective
  /// allowance (quota <= 1) pool workers never pick the task up; the
  /// client's own help_until_done runs it -- degenerate but legal, and
  /// how a sequential kernel would behave if it ever submitted.
  void submit(ClientId id, TaskFn fn, void* arg);

  /// Blocks until every task the client submitted has finished -- the
  /// barrier each kernel's synchronization horizons are made of. While
  /// tasks of *this client* are still queued, the calling thread pulls
  /// them off and runs them itself instead of sleeping (it never runs
  /// another client's tasks: its stack carries kernel-specific fiber
  /// state, and blocking semantics must not couple kernels). Returns the
  /// number of tasks the caller ran this way (the kernel's steal
  /// counter).
  std::uint64_t help_until_done(ClientId id);

  /// Current pool thread count (diagnostics/tests).
  std::size_t threads() const;

  /// Live registered clients (diagnostics/tests).
  std::size_t clients() const;

 private:
  struct Client {
    std::deque<std::pair<TaskFn, void*>> queue;
    /// Tasks of this client currently executing on pool workers (not
    /// counting the client's own helping thread).
    std::size_t pool_running = 0;
    /// Tasks the client's own thread is executing inside help_until_done.
    std::size_t self_running = 0;
    /// Pool-worker concurrency allowance: quota-1 (the driving thread is
    /// the last quota slot).
    std::size_t allowance = 0;
    bool in_use = false;
  };

  Scheduler() = default;
  ~Scheduler();

  /// Grows the pool to `want` threads. Caller holds mutex_.
  void ensure_threads_locked(std::size_t want);

  /// Round-robin pick: the first client at or after rr_cursor_ with
  /// queued work and pool_running < allowance. Caller holds mutex_.
  /// Returns false when no client has eligible work.
  bool pick_task_locked(ClientId& id, TaskFn& fn, void*& arg);

  void worker_main();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  /// Broadcast whenever any task completes; help_until_done waits on it.
  std::condition_variable done_cv_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<ClientId> free_slots_;
  std::size_t live_clients_ = 0;
  /// One past the last client served; workers scan from here.
  std::size_t rr_cursor_ = 0;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace tdsim
