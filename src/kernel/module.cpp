#include "kernel/module.h"

namespace tdsim {

Module::Module(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)), full_name_(name_) {}

Module::Module(Module& parent, std::string name)
    : kernel_(parent.kernel_),
      parent_(&parent),
      name_(std::move(name)),
      full_name_(parent.full_name_ + "." + name_) {
  parent.children_.push_back(this);
}

Process* Module::thread(const std::string& name, std::function<void()> body,
                        ThreadOptions opts) {
  return kernel_.spawn_thread(full_name_ + "." + name, std::move(body), opts);
}

Process* Module::method(const std::string& name, std::function<void()> body,
                        MethodOptions opts) {
  return kernel_.spawn_method(full_name_ + "." + name, std::move(body),
                              std::move(opts));
}

}  // namespace tdsim
